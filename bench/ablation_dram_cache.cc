/**
 * @file
 * Ablation: the on-board DRAM write-back cache the SDF removed (§2.2).
 *
 * Sweeping the cache size on the conventional device shows that no cache
 * size buys predictability: mean latency stays drain-limited, and GC
 * bursts still bleed through (a small cache couples them to every ack;
 * a large one only smooths them). SDF's answer is to remove the cache,
 * acknowledge on flash, and get Figure 8's flat latency by construction
 * — saving the DRAM and its backup battery (§2.2).
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Ablation — DRAM write-back cache size",
                         "§2.2 'no DRAM cache' design choice, Figure 8");

    util::TablePrinter table("8 MB random writes vs cache size (ms)");
    table.SetHeader({"Cache", "mean", "min", "max", "stddev/mean"});

    for (uint64_t cache_mib : {0ull, 16ull, 64ull, 256ull}) {
        ssd::ConventionalSsdConfig cfg = ssd::HuaweiGen3Config(0.04);
        // 0 = writes effectively synchronous (one request of headroom).
        cfg.dram_cache_bytes =
            cache_mib == 0 ? 8 * util::kMiB : cache_mib * util::kMiB;

        sim::Simulator sim;

        bench::BindObs(sim);
        ssd::ConventionalSsd device(sim, cfg);
        host::IoStack stack(sim, host::KernelIoStackSpec());
        device.PreconditionFillRandom(1.0);
        workload::RawRunConfig run;
        run.warmup = util::SecToNs(2.0);
        run.duration = util::SecToNs(20.0);
        const auto r = workload::RunConvWrites(sim, device, stack, 2,
                                               8 * util::kMiB,
                                               workload::Pattern::kRandom,
                                               run);
        const auto &l = r.latencies;
        table.AddRow({cache_mib == 0 ? "~none (8 MiB)"
                                     : (std::to_string(cache_mib) + " MiB"),
                      util::TablePrinter::Num(l.MeanMs(), 1),
                      util::TablePrinter::Num(l.MinMs(), 1),
                      util::TablePrinter::Num(l.MaxMs(), 1),
                      util::TablePrinter::Num(
                          l.StdDevMs() / std::max(l.MeanMs(), 1e-9), 3)});
    }
    table.Print();
    std::printf("SDF's position (§2.2): drop the cache (and its battery),\n"
                "acknowledge only when data is on flash, and get the flat\n"
                "latency of Figure 8 instead.\n");
    bench::GlobalObs().AddMeta("experiment", "ablation_dram_cache");
    return bench::GlobalObs().Export();
}
