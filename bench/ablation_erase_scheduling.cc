/**
 * @file
 * Ablation: erase scheduling policy in the block layer.
 *
 * The paper exposes erase so software can schedule it (§2.3): erasing
 * inline before every write (their measured configuration) versus erasing
 * dirty units in the background during idle periods. Background erasing
 * removes the ~3 ms erase from the write's critical path whenever the
 * workload has any idle time — and on a bursty write workload the p99
 * write latency drops accordingly.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/assert.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

struct Result
{
    double mean_ms;
    double p99_ms;
    uint64_t inline_erases;
    uint64_t bg_erases;
};

Result
RunPolicy(blocklayer::ErasePolicy policy)
{
    sim::Simulator sim;
    bench::BindObs(sim);
    core::SdfDevice device(sim, core::BaiduSdfConfig(0.04));
    blocklayer::BlockLayerConfig cfg;
    cfg.erase_policy = policy;
    blocklayer::BlockLayer layer(sim, device, cfg);

    // Fill the device completely so every subsequent write reuses a
    // previously written unit — erases are then real physical erases.
    const uint64_t total =
        uint64_t{device.channel_count()} * device.units_per_channel();
    for (uint64_t id = 0; id < total; ++id) {
        const bool installed = layer.DebugInstall(id);
        SDF_CHECK(installed);
    }

    // Bursty workload: a batch of deletes, an idle period (the background
    // eraser's opportunity), then a burst of writes reusing those units.
    util::LatencyRecorder lat(false);
    uint64_t next_id = total;
    for (int burst = 0; burst < 40; ++burst) {
        for (int i = 0; i < 10; ++i) {
            layer.Delete(next_id - total + i);
        }
        sim.RunUntil(sim.Now() + util::MsToNs(40));  // Idle gap.
        for (int i = 0; i < 10; ++i) {
            const util::TimeNs start = sim.Now();
            layer.Put(next_id++, [&lat, &sim, start](bool) {
                lat.Record(sim.Now() - start);
            });
            sim.Run();
        }
    }

    return Result{lat.MeanMs(), lat.PercentileMs(99),
                  layer.stats().inline_erases,
                  layer.stats().background_erases};
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Ablation — erase scheduling policy",
                         "§2.3 motivation for the explicit erase command");

    util::TablePrinter table("Erase scheduling: write latency (ms)");
    table.SetHeader({"Policy", "mean", "p99", "inline erases", "bg erases"});
    for (auto [name, policy] :
         {std::pair{"erase-on-write (paper setup)",
                    blocklayer::ErasePolicy::kEraseOnWrite},
          std::pair{"background (idle-time) erase",
                    blocklayer::ErasePolicy::kBackground}}) {
        const auto r = RunPolicy(policy);
        table.AddRow({name, util::TablePrinter::Num(r.mean_ms, 1),
                      util::TablePrinter::Num(r.p99_ms, 1),
                      util::TablePrinter::Int(static_cast<int64_t>(
                          r.inline_erases)),
                      util::TablePrinter::Int(static_cast<int64_t>(
                          r.bg_erases))});
    }
    table.Print();
    std::printf("Expectation: background erasing removes the ~3 ms erase\n"
                "from the write path when idle time exists; the paper\n"
                "measured with erase-on-write (Figure 8's 383 ms includes\n"
                "the erase).\n");
    bench::GlobalObs().AddMeta("experiment", "ablation_erase_scheduling");
    return bench::GlobalObs().Export();
}
