/**
 * @file
 * Ablation: GC victim selection policy on the conventional baseline —
 * greedy (fewest valid pages, what vendors ship) vs cost-benefit
 * (age-weighted) — under uniform random and hot/cold skewed writes.
 *
 * Greedy is optimal for uniform traffic; cost-benefit wins when a cold
 * majority shouldn't be repeatedly migrated alongside a hot minority.
 */
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

struct Outcome
{
    double mbps;
    double wa;
};

Outcome
Run(ssd::GcPolicy policy, double hot_fraction)
{
    ssd::ConventionalSsdConfig cfg = ssd::Intel320Config(1.0);
    cfg.op_ratio = 0.12;
    cfg.flash.geometry.channels = 4;
    cfg.flash.geometry.blocks_per_plane = 120;
    cfg.flash.geometry.pages_per_block = 32;
    cfg.gc_low_watermark = 3;
    cfg.gc_high_watermark = 5;
    cfg.gc_policy = policy;
    cfg.static_wear_leveling = false;  // Isolate the victim policy.
    cfg.dram_cache_bytes = 8 * util::kMiB;

    sim::Simulator sim;

    bench::BindObs(sim);
    ssd::ConventionalSsd device(sim, cfg);
    host::IoStack stack(sim, host::KernelIoStackSpec());
    device.PreconditionFillRandom(1.0);

    const uint32_t page = cfg.flash.geometry.page_size;
    const uint64_t pages = device.user_capacity() / page;
    const uint64_t hot_pages = std::max<uint64_t>(pages / 10, 1);

    util::Rng rng(23);
    uint64_t bytes = 0;
    bool measuring = false;
    std::vector<std::unique_ptr<host::ClosedLoopActor>> writers;
    for (int w = 0; w < 32; ++w) {
        writers.push_back(std::make_unique<host::ClosedLoopActor>(
            sim, [&, page, pages, hot_pages,
                  hot_fraction](sim::Callback done) {
                // hot_fraction of writes hit the first 10 % of pages.
                const uint64_t p = rng.NextDouble() < hot_fraction
                                       ? rng.NextBelow(hot_pages)
                                       : rng.NextBelow(pages);
                stack.Issue(
                    [&, p, page](sim::Callback d) {
                        auto dp =
                            std::make_shared<sim::Callback>(std::move(d));
                        device.Write(p * page, page,
                                     [dp](bool) { (*dp)(); });
                    },
                    [&, page, done = std::move(done)]() {
                        if (measuring) bytes += page;
                        done();
                    });
            }));
    }
    for (auto &w : writers) w->Start();
    sim.RunUntil(util::SecToNs(120.0));
    measuring = true;
    const util::TimeNs t0 = sim.Now();
    sim.RunUntil(t0 + util::SecToNs(40.0));
    for (auto &w : writers) w->Stop();
    return Outcome{util::BandwidthMBps(bytes, util::SecToNs(40.0)),
                   device.stats().WriteAmplification()};
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Ablation — GC victim selection policy",
                         "FTL design space behind §2.2's 'no GC at all'");

    util::TablePrinter table("4 KB random writes, greedy vs cost-benefit");
    table.SetHeader({"Workload", "greedy MB/s", "greedy WA",
                     "cost-benefit MB/s", "cost-benefit WA"});
    for (double hot : {0.0, 0.9}) {
        const auto g = Run(ssd::GcPolicy::kGreedy, hot);
        const auto cb = Run(ssd::GcPolicy::kCostBenefit, hot);
        table.AddRow({hot == 0.0 ? "uniform random"
                                 : "90% writes to 10% of pages",
                      util::TablePrinter::Num(g.mbps, 1),
                      util::TablePrinter::Num(g.wa, 2),
                      util::TablePrinter::Num(cb.mbps, 1),
                      util::TablePrinter::Num(cb.wa, 2)});
    }
    table.Print();
    std::printf("SDF's answer to this whole design space: an interface\n"
                "where no on-device GC exists and the application, which\n"
                "knows data lifetimes, does the reclamation (§2.3).\n");
    bench::GlobalObs().AddMeta("experiment", "ablation_gc_policy");
    return bench::GlobalObs().Export();
}
