/**
 * @file
 * Extension bench: in-storage scan offload (§5 future work, "moving
 * compute to the storage"; the Active SSD work the paper cites).
 *
 * A full-repository filter scan either (a) reads every unit over PCIe and
 * filters on the host, or (b) filters inside the 44 channel engines and
 * ships only matches. The host-side scan is PCIe-bound (1.61 GB/s); the
 * offloaded scan runs at raw flash speed and, at low selectivity, barely
 * touches the link.
 */
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

/** Scan `per_channel` units on every channel; returns effective GB/s of
 *  data examined. */
double
RunScan(bool offload, double selectivity)
{
    sim::Simulator sim;
    bench::BindObs(sim);
    core::SdfDevice device(sim, core::BaiduSdfConfig(0.04));
    workload::PreconditionSdf(device);

    const uint32_t per_channel = 12;
    auto remaining =
        std::make_shared<uint32_t>(per_channel * device.channel_count());
    for (uint32_t ch = 0; ch < device.channel_count(); ++ch) {
        // Chain the units of one channel serially (a scanning thread).
        auto next = std::make_shared<std::function<void(uint32_t)>>();
        *next = [&, ch, next, remaining](uint32_t unit) {
            if (unit >= per_channel) return;
            auto advance = [&, ch, next, remaining, unit]() {
                --*remaining;
                (*next)(unit + 1);
            };
            if (offload) {
                device.ScanUnit(ch, unit, selectivity,
                                [advance](bool, uint64_t) { advance(); });
            } else {
                device.Read(ch, unit, 0, device.unit_bytes(),
                            [advance](bool) { advance(); });
            }
        };
        (*next)(0);
    }
    sim.RunWhileNot([&]() { return *remaining == 0; });
    const uint64_t examined = uint64_t{per_channel} *
                              device.channel_count() * device.unit_bytes();
    return util::BandwidthMBps(examined, sim.Now()) / 1000.0;
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Extension — in-storage scan offload",
                         "§5 future work / Active SSD [17]");

    util::TablePrinter table("Repository filter scan (GB/s examined)");
    table.SetHeader({"Selectivity", "Host-side scan", "In-storage scan"});
    for (double sel : {1.0, 0.25, 0.01}) {
        const double host_gbps = RunScan(false, sel);
        const double off_gbps = RunScan(true, sel);
        table.AddRow({util::TablePrinter::Num(sel * 100, 0) + "%",
                      util::TablePrinter::Num(host_gbps, 2),
                      util::TablePrinter::Num(off_gbps, 2)});
    }
    table.Print();
    std::printf("Host-side scans cap at the PCIe limit (1.61 GB/s) no\n"
                "matter the selectivity; the offloaded scan examines data\n"
                "at raw flash speed (1.67 GB/s) and frees the link.\n");
    bench::GlobalObs().AddMeta("experiment", "ablation_instorage_scan");
    return bench::GlobalObs().Export();
}
