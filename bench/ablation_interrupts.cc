/**
 * @file
 * Ablation: SDF's two-level interrupt merging (§2.1).
 *
 * With merging, the interrupt rate is 1/4 to 1/5 of the completion rate,
 * cutting host CPU spent in handlers, at the cost of a bounded added
 * completion delay. Measured on the 8 KB random-read workload (the
 * IOPS-bound case the feature exists for).
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Ablation — interrupt coalescing",
                         "§2.1 interrupt merging (1/4-1/5 of max IOPS)");

    util::TablePrinter table("8 KB random reads, 44 channels");
    table.SetHeader({"Coalescing", "MB/s", "IOPS (k)", "interrupts/s (k)",
                     "merge factor", "IRQ CPU (ms/s)"});

    for (bool coalesce : {false, true}) {
        core::SdfConfig cfg = core::BaiduSdfConfig(0.04);
        cfg.irq.coalesce = coalesce;

        sim::Simulator sim;

        bench::BindObs(sim);
        core::SdfDevice device(sim, cfg);
        host::IoStack stack(sim, host::SdfUserStackSpec());
        workload::PreconditionSdf(device);
        workload::RawRunConfig run;
        run.warmup = util::MsToNs(200);
        run.duration = util::SecToNs(2.0);
        const auto r = workload::RunSdfRandomReads(sim, device, stack, 44,
                                                   8 * util::kKiB, run);
        const double secs = util::NsToSec(sim.Now());
        table.AddRow(
            {coalesce ? "on (2-level merge)" : "off",
             util::TablePrinter::Num(r.mbps, 0),
             util::TablePrinter::Num(
                 static_cast<double>(r.operations) /
                     util::NsToSec(run.duration) / 1000.0,
                 1),
             util::TablePrinter::Num(
                 static_cast<double>(device.irq().interrupts()) / secs / 1000.0,
                 1),
             util::TablePrinter::Num(device.irq().MergeFactor(), 2),
             util::TablePrinter::Num(
                 util::NsToMs(device.irq().cpu_time()) / secs, 1)});
    }
    table.Print();
    std::printf("Paper: merging reduces the interrupt rate to 1/5-1/4 of\n"
                "the IOPS; the throughput cost of the added delay is small\n"
                "while the interrupt-handling CPU drops ~4x.\n");
    bench::GlobalObs().AddMeta("experiment", "ablation_interrupts");
    return bench::GlobalObs().Export();
}
