/**
 * @file
 * Ablation: a finer-grained Figure 1 — continuous over-provisioning
 * sweep, plus the paper's §1 claim that for a mixed workload raising OP
 * from 22 % to 30 % lifted sustained throughput dramatically because
 * random writes trigger GC that degrades concurrent reads.
 */
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

ssd::ConventionalSsdConfig
SmallIntel(double op)
{
    ssd::ConventionalSsdConfig cfg = ssd::Intel320Config(1.0);
    cfg.op_ratio = op;
    cfg.flash.geometry.channels = 4;
    cfg.flash.geometry.blocks_per_plane = 120;
    cfg.flash.geometry.pages_per_block = 32;
    cfg.gc_low_watermark = 3;
    cfg.gc_high_watermark = 5;
    cfg.dram_cache_bytes = 8 * util::kMiB;
    return cfg;
}

/** Sequential reads measured while random 4 KB writes run concurrently.
 *  Uses a mid-range-style controller (cheap request handling) so the
 *  write+GC stream can actually saturate the flash planes, which is what
 *  degrades reads in the paper's production anecdote (§1). */
std::pair<double, double>
RunMixed(double op)
{
    sim::Simulator sim;
    bench::BindObs(sim);
    ssd::ConventionalSsdConfig cfg = SmallIntel(op);
    cfg.fw_cost_per_write_request = util::UsToNs(15);
    cfg.fw_cost_per_read_request = util::UsToNs(15);
    cfg.fw_cost_write_page = util::UsToNs(10);
    cfg.fw_cost_read_page = util::UsToNs(10);
    ssd::ConventionalSsd device(sim, cfg);
    host::IoStack stack(sim, host::KernelIoStackSpec());
    device.PreconditionFillRandom(1.0);

    const uint32_t page = device.config().flash.geometry.page_size;
    const uint64_t cap = device.user_capacity();
    util::Rng rng(11);
    uint64_t read_bytes = 0, write_bytes = 0;
    bool measuring = false;

    std::vector<std::unique_ptr<host::ClosedLoopActor>> actors;
    // Open-loop random-write ingest at a fixed rate chosen between the
    // two OP points' sustainable GC throughput — at the low-OP point the
    // device falls behind and concurrent reads starve (the paper's §1
    // production scenario). Ingest backlog is bounded like a real
    // bounded writer pool.
    const double ingest_per_sec = 1850.0;
    auto outstanding = std::make_shared<int64_t>(0);
    std::function<void()> submit_write = [&, page, cap]() {
        if (*outstanding < 4000) {
            ++*outstanding;
            const uint64_t off = rng.NextBelow(cap / page) * page;
            // N.B. capture page by value: this closure outlives the
            // scheduled copy of submit_write.
            device.Write(off, page,
                         [&write_bytes, &measuring, outstanding, page](bool) {
                             --*outstanding;
                             if (measuring) write_bytes += page;
                         });
        }
        sim.Schedule(static_cast<util::TimeNs>(
                         rng.NextExponential(1e9 / ingest_per_sec)),
                     submit_write);
    };
    sim.Post(submit_write);
    // Four sequential readers of 128 KB.
    auto cursor = std::make_shared<uint64_t>(0);
    const uint64_t req = 128 * util::kKiB;
    for (int r = 0; r < 4; ++r) {
        actors.push_back(std::make_unique<host::ClosedLoopActor>(
            sim, [&, cursor, req, cap](sim::Callback done) {
                const uint64_t off = (*cursor)++ * req % (cap - req);
                stack.Issue(
                    [&, off, req](sim::Callback d) {
                        auto dp =
                            std::make_shared<sim::Callback>(std::move(d));
                        device.Read(off, req, [dp](bool) { (*dp)(); });
                    },
                    [&, done = std::move(done)]() {
                        if (measuring) read_bytes += req;
                        done();
                    });
            }));
    }

    for (auto &a : actors) a->Start();
    sim.RunUntil(util::SecToNs(90.0));  // GC steady state.
    measuring = true;
    const util::TimeNs t0 = sim.Now();
    const util::TimeNs window = util::SecToNs(40.0);
    sim.RunUntil(t0 + window);
    for (auto &a : actors) a->Stop();
    return {util::BandwidthMBps(read_bytes, window),
            util::BandwidthMBps(write_bytes, window)};
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Ablation — over-provisioning sweep",
                         "Figure 1 (fine-grained) + §1 mixed-workload claim");

    util::TablePrinter table("Random 4 KB write throughput vs OP");
    table.SetHeader({"OP", "MB/s", "WA"});
    for (double op : {0.0, 0.03, 0.07, 0.12, 0.18, 0.25, 0.35, 0.50}) {
        sim::Simulator sim;
        bench::BindObs(sim);
        ssd::ConventionalSsd device(sim, SmallIntel(op));
        host::IoStack stack(sim, host::KernelIoStackSpec());
        device.PreconditionFillRandom(1.0);
        workload::RawRunConfig meas;
        meas.warmup = util::SecToNs(120.0);
        meas.duration = util::SecToNs(30.0);
        const auto r = workload::RunConvWrites(
            sim, device, stack, 32, device.config().flash.geometry.page_size,
            workload::Pattern::kRandom, meas);
        table.AddRow({util::TablePrinter::Num(op * 100, 0) + "%",
                      util::TablePrinter::Num(r.mbps, 1),
                      util::TablePrinter::Num(
                          device.stats().WriteAmplification(), 2)});
    }
    table.Print();

    // §1: mixed random writes + sequential reads at 22 % vs 30 % OP.
    util::TablePrinter mixed(
        "Mixed workload: sequential reads under random-write pressure");
    mixed.SetHeader({"OP", "Read MB/s", "Write MB/s"});
    for (double op : {0.22, 0.30}) {
        const auto [read_mbps, write_mbps] = RunMixed(op);
        mixed.AddRow({util::TablePrinter::Num(op * 100, 0) + "%",
                      util::TablePrinter::Num(read_mbps, 0),
                      util::TablePrinter::Num(write_mbps, 1)});
    }
    mixed.Print();
    std::printf("Paper: Figure 1 is monotonic with a steep knee below\n"
                "~10%% OP; §1 reports 22%%->30%% OP raising mixed-workload\n"
                "read throughput more than 4x.\n");
    bench::GlobalObs().AddMeta("experiment", "ablation_op_sweep");
    return bench::GlobalObs().Export();
}
