/**
 * @file
 * Extension bench: the load-balance-aware scheduler (§2.4/§5 future work).
 *
 * The deployed block layer hashes IDs round-robin; "should a skewed
 * workload occur", the paper plans a load-balance-aware scheduler. Here a
 * Zipf-skewed ID stream drives both placements; least-loaded placement
 * restores the lost write bandwidth.
 */
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

double
RunPlacement(blocklayer::PlacementPolicy policy, double skew)
{
    sim::Simulator sim;
    bench::BindObs(sim);
    core::SdfDevice device(sim, core::BaiduSdfConfig(0.04));
    blocklayer::BlockLayerConfig cfg;
    cfg.placement_policy = policy;
    blocklayer::BlockLayer layer(sim, device, cfg);

    // Writers draw target IDs whose hash channel is Zipf-ish skewed:
    // a fraction `skew` of blocks land on 8 hot channels under kIdHash.
    util::Rng rng(17);
    uint64_t next_unique = 0;
    const uint32_t channels = device.channel_count();

    uint64_t bytes = 0;
    bool measuring = false;
    std::vector<std::unique_ptr<host::ClosedLoopActor>> writers;
    for (int w = 0; w < 64; ++w) {
        writers.push_back(std::make_unique<host::ClosedLoopActor>(
            sim, [&, channels](sim::Callback done) {
                uint64_t id = next_unique++ * channels;  // channel 0 base
                if (rng.NextDouble() < skew) {
                    id += rng.NextBelow(8);  // Hot: channels 0-7.
                } else {
                    id += rng.NextBelow(channels);  // Uniform remainder.
                }
                auto dp = std::make_shared<sim::Callback>(std::move(done));
                layer.Put(id, [&, dp](bool ok) {
                    if (ok && measuring) bytes += 8 * util::kMiB;
                    (*dp)();
                });
            }));
    }
    for (auto &wtr : writers) wtr->Start();
    sim.RunUntil(util::SecToNs(2.0));
    measuring = true;
    const util::TimeNs t0 = sim.Now();
    sim.RunUntil(t0 + util::SecToNs(6.0));
    for (auto &wtr : writers) wtr->Stop();
    return util::BandwidthMBps(bytes, util::SecToNs(6.0));
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Extension — load-balance-aware scheduler",
                         "§2.4/§5 future work");

    util::TablePrinter table("Write throughput under ID skew (MB/s)");
    table.SetHeader({"Skew to 8 hot channels", "id-hash (deployed)",
                     "least-loaded (future work)"});
    for (double skew : {0.0, 0.5, 0.9}) {
        const double hash_mbps =
            RunPlacement(blocklayer::PlacementPolicy::kIdHash, skew);
        const double lb_mbps =
            RunPlacement(blocklayer::PlacementPolicy::kLeastLoaded, skew);
        table.AddRow({util::TablePrinter::Num(skew * 100, 0) + "%",
                      util::TablePrinter::Num(hash_mbps, 0),
                      util::TablePrinter::Num(lb_mbps, 0)});
    }
    table.Print();
    std::printf("Expectation: identical when uniform; under skew, id-hash\n"
                "bottlenecks on the hot channels while least-loaded keeps\n"
                "all 44 channels writing (~1 GB/s).\n");
    bench::GlobalObs().AddMeta("experiment", "ablation_scheduler");
    return bench::GlobalObs().Export();
}
