/**
 * @file
 * Ablation: striping unit of the conventional SSD.
 *
 * The Huawei Gen3 stripes at 8 KB so one request parallelizes across all
 * channels; SDF takes the opposite extreme (whole-unit channel affinity).
 * Sweeping the stripe unit shows the trade: small stripes help a single
 * large request's latency; large stripes preserve per-channel locality
 * (lower split/merge overhead) and help highly concurrent small requests.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Ablation — conventional SSD striping unit",
                         "§2.3 'exposing internal parallelism' design choice");

    util::TablePrinter table("Striping unit vs throughput (MB/s)");
    table.SetHeader({"Stripe", "512KB read QD1", "512KB read QD64",
                     "8MB read QD16"});

    for (uint32_t stripe_kib : {8u, 64u, 512u, 2048u}) {
        ssd::ConventionalSsdConfig cfg = ssd::HuaweiGen3Config(0.04);
        cfg.stripe_bytes = stripe_kib * util::kKiB;
        std::vector<std::string> row{std::to_string(stripe_kib) + " KiB"};

        for (auto [qd, req] : {std::pair{1u, 512 * util::kKiB},
                               std::pair{64u, 512 * util::kKiB},
                               std::pair{16u, 8 * util::kMiB}}) {
            sim::Simulator sim;
            bench::BindObs(sim);
            ssd::ConventionalSsd device(sim, cfg);
            host::IoStack stack(sim, host::KernelIoStackSpec());
            device.PreconditionFill(0.9);
            workload::RawRunConfig run;
            run.warmup = util::MsToNs(300);
            run.duration = util::SecToNs(1.5);
            const double mbps =
                workload::RunConvReads(sim, device, stack, qd, req,
                                       workload::Pattern::kRandom, run)
                    .mbps;
            row.push_back(util::TablePrinter::Num(mbps, 0));
        }
        table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("Expectation: 8 KiB stripes win at QD1 (one request uses\n"
                "all channels); channel-affine large stripes catch up or\n"
                "win once concurrency supplies the parallelism — the\n"
                "workload property SDF's design leans on.\n");
    bench::GlobalObs().AddMeta("experiment", "ablation_striping");
    return bench::GlobalObs().Export();
}
