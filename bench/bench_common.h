/**
 * @file
 * Shared setup for the benchmark binaries: assembles the full CCDB stack
 * (device + block layer / extent store + slices + network) on either the
 * SDF or a conventional SSD, with the capacity scaling and preloading the
 * experiments need.
 *
 * Every experiment uses capacity-scaled devices (structure and all ratios
 * preserved) so a full table regenerates in seconds; EXPERIMENTS.md
 * documents the scaling.
 */
#ifndef SDF_BENCH_BENCH_COMMON_H
#define SDF_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "blocklayer/block_layer.h"
#include "host/io_stack.h"
#include "kv/patch_storage.h"
#include "kv/slice.h"
#include "net/network.h"
#include "obs/hub.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "ssd/conventional_ssd.h"
#include "workload/kv_driver.h"
#include "workload/raw_device.h"

namespace sdf::bench {

/** Which storage device backs the KV stack. */
enum class DeviceKind
{
    kBaiduSdf,
    kHuaweiGen3,
    kIntel320,
};

inline const char *
DeviceName(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::kBaiduSdf: return "Baidu SDF";
      case DeviceKind::kHuaweiGen3: return "Huawei Gen3";
      case DeviceKind::kIntel320: return "Intel 320";
    }
    return "?";
}

/**
 * Observability flags shared by the benchmark binaries and sdfsim:
 * --stats-json=<path>, --stats-csv=<path>, --trace=<path> and
 * --trace-limit=<n>. When any export is requested the helper owns an
 * obs::Hub ready to install on a Simulator (before device construction);
 * otherwise hub() stays null and the run is unchanged.
 */
class ObsCli
{
  public:
    /** One --key=value pair; @return true when it was an obs flag. */
    bool
    TryFlag(const std::string &key, const std::string &val)
    {
        if (key == "--stats-json") stats_json_ = val;
        else if (key == "--stats-csv") stats_csv_ = val;
        else if (key == "--trace") trace_path_ = val;
        else if (key == "--trace-limit") trace_limit_ = std::stoull(val);
        else return false;
        return true;
    }

    /** Consume recognised "--key=value" args, compacting argv in place. */
    void
    ParseAndStrip(int &argc, char **argv)
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto eq = arg.find('=');
            const std::string key = arg.substr(0, eq);
            const std::string val =
                eq == std::string::npos ? "" : arg.substr(eq + 1);
            if (!TryFlag(key, val)) argv[out++] = argv[i];
        }
        argc = out;
    }

    bool
    enabled() const
    {
        return !stats_json_.empty() || !stats_csv_.empty() ||
               !trace_path_.empty();
    }

    /** The hub to install with sim.set_hub(), or null when disabled. */
    obs::Hub *
    hub()
    {
        if (!enabled()) return nullptr;
        if (!hub_) {
            hub_ = std::make_unique<obs::Hub>();
            if (!trace_path_.empty()) hub_->EnableTrace(trace_limit_);
        }
        return hub_.get();
    }

    void AddMeta(const std::string &k, const std::string &v) { meta_[k] = v; }
    void AddDerived(const std::string &k, double v) { derived_[k] = v; }

    /** Write the requested files. @return 0 on success. */
    int
    Export()
    {
        if (!enabled()) return 0;
        int rc = 0;
        obs::Hub &h = *hub();
        if (!stats_json_.empty() &&
            !obs::WriteFile(stats_json_, obs::StatsJson(h, meta_, derived_))) {
            std::fprintf(stderr, "cannot write %s\n", stats_json_.c_str());
            rc = 1;
        }
        if (!stats_csv_.empty() &&
            !obs::WriteFile(stats_csv_, obs::StatsCsv(h, meta_, derived_))) {
            std::fprintf(stderr, "cannot write %s\n", stats_csv_.c_str());
            rc = 1;
        }
        if (!trace_path_.empty()) {
            if (!h.trace()->WriteJson(trace_path_)) {
                std::fprintf(stderr, "cannot write %s\n", trace_path_.c_str());
                rc = 1;
            } else if (h.trace()->dropped() > 0) {
                std::fprintf(stderr,
                             "trace: dropped %llu events past the "
                             "--trace-limit cap\n",
                             static_cast<unsigned long long>(
                                 h.trace()->dropped()));
            }
        }
        return rc;
    }

    static const char *
    HelpText()
    {
        return "observability:\n"
               "  --stats-json=<file>  export metrics+stage stats as JSON\n"
               "  --stats-csv=<file>   same document as key,value CSV\n"
               "  --trace=<file>       Perfetto/chrome://tracing JSON trace\n"
               "  --trace-limit=<n>    trace event cap (default 1048576)\n";
    }

  private:
    std::string stats_json_;
    std::string stats_csv_;
    std::string trace_path_;
    size_t trace_limit_ = obs::TraceSink::kDefaultMaxEvents;
    std::unique_ptr<obs::Hub> hub_;
    obs::MetaMap meta_;
    obs::DerivedMap derived_;
};

/**
 * Process-wide ObsCli for the benchmark binaries. main() calls
 * ParseAndStrip(argc, argv) on it, every Simulator creation site calls
 * BindObs(sim), and main() ends with GlobalObs().Export(). With no obs
 * flags on the command line all of it is inert.
 */
inline ObsCli &
GlobalObs()
{
    static ObsCli cli;
    return cli;
}

/** Install the global hub (when exports were requested) on @p sim. */
inline void
BindObs(sim::Simulator &sim)
{
    if (obs::Hub *hub = GlobalObs().hub()) sim.set_hub(hub);
}

/** A complete single-node CCDB deployment for one experiment run. */
class KvTestbed
{
  public:
    /**
     * @param kind Backing device.
     * @param slice_count Slices hosted on the node.
     * @param clients Network clients (usually == slice_count).
     * @param capacity_scale Device scale factor.
     * @param hub Optional observability hub, installed on the testbed's
     *     simulator before any component is built so that every layer
     *     self-registers its metrics.
     */
    KvTestbed(DeviceKind kind, uint32_t slice_count, uint32_t clients,
              double capacity_scale, kv::SliceConfig slice_cfg = {},
              obs::Hub *hub = nullptr)
        : hub_bind_(sim_, hub != nullptr ? hub : GlobalObs().hub()),
          net_(sim_, net::NetworkSpec{}, clients)
    {
        if (kind == DeviceKind::kBaiduSdf) {
            sdf_device_ = std::make_unique<core::SdfDevice>(
                sim_, core::BaiduSdfConfig(capacity_scale));
            layer_ = std::make_unique<blocklayer::BlockLayer>(
                sim_, *sdf_device_, blocklayer::BlockLayerConfig{});
            stack_ = std::make_unique<host::IoStack>(
                sim_, host::SdfUserStackSpec());
            storage_ = std::make_unique<kv::SdfPatchStorage>(*layer_,
                                                             stack_.get());
        } else {
            auto cfg = kind == DeviceKind::kHuaweiGen3
                           ? ssd::HuaweiGen3Config(capacity_scale)
                           : ssd::Intel320Config(capacity_scale);
            ssd_device_ = std::make_unique<ssd::ConventionalSsd>(sim_, cfg);
            stack_ = std::make_unique<host::IoStack>(
                sim_, host::KernelIoStackSpec());
            storage_ = std::make_unique<kv::SsdPatchStorage>(
                *ssd_device_, 8 * util::kMiB, stack_.get());
        }
        for (uint32_t s = 0; s < slice_count; ++s) {
            slices_.push_back(std::make_unique<kv::Slice>(sim_, *storage_,
                                                          ids_, slice_cfg));
        }
    }

    /**
     * Preload each slice with @p bytes_per_slice of @p value_size values;
     * conventional devices are also brought to a matching fill level.
     * @return per-slice key lists.
     */
    std::vector<std::vector<uint64_t>>
    Preload(uint64_t bytes_per_slice, uint32_t value_size)
    {
        auto keys =
            workload::PreloadSlices(SlicePtrs(), bytes_per_slice, value_size);
        if (ssd_device_) {
            const double fill =
                static_cast<double>(bytes_per_slice) * slices_.size() /
                static_cast<double>(ssd_device_->user_capacity());
            ssd_device_->PreconditionFill(std::min(fill * 1.02, 1.0));
        }
        return keys;
    }

    std::vector<kv::Slice *>
    SlicePtrs()
    {
        std::vector<kv::Slice *> out;
        out.reserve(slices_.size());
        for (auto &s : slices_) out.push_back(s.get());
        return out;
    }

    sim::Simulator &sim() { return sim_; }
    net::Network &net() { return net_; }
    core::SdfDevice *sdf_device() { return sdf_device_.get(); }
    ssd::ConventionalSsd *ssd_device() { return ssd_device_.get(); }

  private:
    /** Installs the hub on the simulator before later members construct. */
    struct HubBind
    {
        HubBind(sim::Simulator &sim, obs::Hub *hub)
        {
            if (hub != nullptr) sim.set_hub(hub);
        }
    };

    sim::Simulator sim_;
    HubBind hub_bind_;
    std::unique_ptr<core::SdfDevice> sdf_device_;
    std::unique_ptr<ssd::ConventionalSsd> ssd_device_;
    std::unique_ptr<blocklayer::BlockLayer> layer_;
    std::unique_ptr<host::IoStack> stack_;
    std::unique_ptr<kv::PatchStorage> storage_;
    kv::IdAllocator ids_;
    std::vector<std::unique_ptr<kv::Slice>> slices_;
    net::Network net_;
};

/** Print the standard bench preamble. */
inline void
PrintPreamble(const char *experiment, const char *paper_ref)
{
    std::printf("SDF reproduction — %s\n", experiment);
    std::printf("Paper reference: %s\n", paper_ref);
    std::printf("(capacity-scaled devices; see EXPERIMENTS.md)\n\n");
    std::fflush(stdout);
}

}  // namespace sdf::bench

#endif  // SDF_BENCH_BENCH_COMMON_H
