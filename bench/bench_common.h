/**
 * @file
 * Shared setup for the benchmark binaries, now thin aliases over the
 * repo-wide building blocks: the testbed library assembles the CCDB stack
 * (device + block layer / extent store + slices + network) on any backend,
 * and obs::ObsCli provides the --stats-json/--stats-csv/--trace flags.
 *
 * Every experiment uses capacity-scaled devices (structure and all ratios
 * preserved) so a full table regenerates in seconds; EXPERIMENTS.md
 * documents the scaling.
 */
#ifndef SDF_BENCH_BENCH_COMMON_H
#define SDF_BENCH_BENCH_COMMON_H

#include <cstdio>

#include "obs/obs_cli.h"
#include "testbed/testbed.h"
#include "workload/kv_driver.h"
#include "workload/raw_device.h"

namespace sdf::bench {

/** Which storage device backs the KV stack. */
using DeviceKind = testbed::Backend;

inline const char *
DeviceName(DeviceKind kind)
{
    return testbed::BackendName(kind);
}

using ObsCli = obs::ObsCli;

/** Process-wide ObsCli shared with the other binaries (see obs/obs_cli.h). */
inline ObsCli &
GlobalObs()
{
    return obs::GlobalObs();
}

/** Install the global hub (when exports were requested) on @p sim. */
inline void
BindObs(sim::Simulator &sim)
{
    obs::BindObs(sim);
}

/** A complete single-node CCDB deployment for one experiment run. */
using KvTestbed = testbed::KvTestbed;

/** Print the standard bench preamble. */
inline void
PrintPreamble(const char *experiment, const char *paper_ref)
{
    std::printf("SDF reproduction — %s\n", experiment);
    std::printf("Paper reference: %s\n", paper_ref);
    std::printf("(capacity-scaled devices; see EXPERIMENTS.md)\n\n");
    std::fflush(stdout);
}

}  // namespace sdf::bench

#endif  // SDF_BENCH_BENCH_COMMON_H
