/**
 * @file
 * Shared setup for the benchmark binaries: assembles the full CCDB stack
 * (device + block layer / extent store + slices + network) on either the
 * SDF or a conventional SSD, with the capacity scaling and preloading the
 * experiments need.
 *
 * Every experiment uses capacity-scaled devices (structure and all ratios
 * preserved) so a full table regenerates in seconds; EXPERIMENTS.md
 * documents the scaling.
 */
#ifndef SDF_BENCH_BENCH_COMMON_H
#define SDF_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "blocklayer/block_layer.h"
#include "host/io_stack.h"
#include "kv/patch_storage.h"
#include "kv/slice.h"
#include "net/network.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "ssd/conventional_ssd.h"
#include "workload/kv_driver.h"
#include "workload/raw_device.h"

namespace sdf::bench {

/** Which storage device backs the KV stack. */
enum class DeviceKind
{
    kBaiduSdf,
    kHuaweiGen3,
    kIntel320,
};

inline const char *
DeviceName(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::kBaiduSdf: return "Baidu SDF";
      case DeviceKind::kHuaweiGen3: return "Huawei Gen3";
      case DeviceKind::kIntel320: return "Intel 320";
    }
    return "?";
}

/** A complete single-node CCDB deployment for one experiment run. */
class KvTestbed
{
  public:
    /**
     * @param kind Backing device.
     * @param slice_count Slices hosted on the node.
     * @param clients Network clients (usually == slice_count).
     * @param capacity_scale Device scale factor.
     */
    KvTestbed(DeviceKind kind, uint32_t slice_count, uint32_t clients,
              double capacity_scale, kv::SliceConfig slice_cfg = {})
        : net_(sim_, net::NetworkSpec{}, clients)
    {
        if (kind == DeviceKind::kBaiduSdf) {
            sdf_device_ = std::make_unique<core::SdfDevice>(
                sim_, core::BaiduSdfConfig(capacity_scale));
            layer_ = std::make_unique<blocklayer::BlockLayer>(
                sim_, *sdf_device_, blocklayer::BlockLayerConfig{});
            stack_ = std::make_unique<host::IoStack>(
                sim_, host::SdfUserStackSpec());
            storage_ = std::make_unique<kv::SdfPatchStorage>(*layer_,
                                                             stack_.get());
        } else {
            auto cfg = kind == DeviceKind::kHuaweiGen3
                           ? ssd::HuaweiGen3Config(capacity_scale)
                           : ssd::Intel320Config(capacity_scale);
            ssd_device_ = std::make_unique<ssd::ConventionalSsd>(sim_, cfg);
            stack_ = std::make_unique<host::IoStack>(
                sim_, host::KernelIoStackSpec());
            storage_ = std::make_unique<kv::SsdPatchStorage>(
                *ssd_device_, 8 * util::kMiB, stack_.get());
        }
        for (uint32_t s = 0; s < slice_count; ++s) {
            slices_.push_back(std::make_unique<kv::Slice>(sim_, *storage_,
                                                          ids_, slice_cfg));
        }
    }

    /**
     * Preload each slice with @p bytes_per_slice of @p value_size values;
     * conventional devices are also brought to a matching fill level.
     * @return per-slice key lists.
     */
    std::vector<std::vector<uint64_t>>
    Preload(uint64_t bytes_per_slice, uint32_t value_size)
    {
        auto keys =
            workload::PreloadSlices(SlicePtrs(), bytes_per_slice, value_size);
        if (ssd_device_) {
            const double fill =
                static_cast<double>(bytes_per_slice) * slices_.size() /
                static_cast<double>(ssd_device_->user_capacity());
            ssd_device_->PreconditionFill(std::min(fill * 1.02, 1.0));
        }
        return keys;
    }

    std::vector<kv::Slice *>
    SlicePtrs()
    {
        std::vector<kv::Slice *> out;
        out.reserve(slices_.size());
        for (auto &s : slices_) out.push_back(s.get());
        return out;
    }

    sim::Simulator &sim() { return sim_; }
    net::Network &net() { return net_; }
    core::SdfDevice *sdf_device() { return sdf_device_.get(); }
    ssd::ConventionalSsd *ssd_device() { return ssd_device_.get(); }

  private:
    sim::Simulator sim_;
    std::unique_ptr<core::SdfDevice> sdf_device_;
    std::unique_ptr<ssd::ConventionalSsd> ssd_device_;
    std::unique_ptr<blocklayer::BlockLayer> layer_;
    std::unique_ptr<host::IoStack> stack_;
    std::unique_ptr<kv::PatchStorage> storage_;
    kv::IdAllocator ids_;
    std::vector<std::unique_ptr<kv::Slice>> slices_;
    net::Network net_;
};

/** Print the standard bench preamble. */
inline void
PrintPreamble(const char *experiment, const char *paper_ref)
{
    std::printf("SDF reproduction — %s\n", experiment);
    std::printf("Paper reference: %s\n", paper_ref);
    std::printf("(capacity-scaled devices; see EXPERIMENTS.md)\n\n");
    std::fflush(stdout);
}

}  // namespace sdf::bench

#endif  // SDF_BENCH_BENCH_COMMON_H
