/**
 * @file
 * The headline capacity and cost claims (§1, §2.2, §5):
 *
 *  - SDF exposes ~99 % of raw flash for user data; commodity SSDs expose
 *    50-70 % (over-provisioning + parity + reserves).
 *  - SDF delivers ~95 % of raw flash bandwidth; the commodity stack ~50 %.
 *  - Per-GB hardware cost drops ~50 % vs the high-OP commodity setup.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Capacity, bandwidth, and cost utilization",
                         "§1 abstract + §2.2 + §5 headline claims");

    // ---- Capacity utilization (full-scale devices, no simulation) ------
    util::TablePrinter cap("Usable capacity as a fraction of raw flash");
    cap.SetHeader({"Configuration", "Raw", "Usable", "Fraction"});
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        core::SdfDevice sdf_dev(sim, core::BaiduSdfConfig(1.0));
        cap.AddRow({"Baidu SDF (BBM spares only)",
                    util::FormatBytes(sdf_dev.raw_capacity()),
                    util::FormatBytes(sdf_dev.user_capacity()),
                    util::TablePrinter::Num(100.0 * sdf_dev.user_capacity() /
                                                sdf_dev.raw_capacity(),
                                            1) +
                        "%"});
    }
    for (double op : {0.10, 0.25, 0.40}) {
        sim::Simulator sim;
        bench::BindObs(sim);
        auto cfg = ssd::HuaweiGen3Config(1.0);
        cfg.op_ratio = op;
        ssd::ConventionalSsd dev(sim, cfg);
        char name[96];
        std::snprintf(name, sizeof(name),
                      "Commodity (parity + %.0f%% OP)", op * 100);
        cap.AddRow({name, util::FormatBytes(dev.raw_capacity()),
                    util::FormatBytes(dev.user_capacity()),
                    util::TablePrinter::Num(100.0 * dev.user_capacity() /
                                                dev.raw_capacity(),
                                            1) +
                        "%"});
    }
    cap.Print();

    // ---- Bandwidth utilization -----------------------------------------
    util::TablePrinter bw("Delivered read bandwidth vs raw flash bandwidth");
    bw.SetHeader({"Device", "Raw (MB/s)", "Delivered (MB/s)", "Fraction"});
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        core::SdfDevice device(sim, core::BaiduSdfConfig(0.04));
        host::IoStack stack(sim, host::SdfUserStackSpec());
        workload::PreconditionSdf(device);
        workload::RawRunConfig run;
        run.warmup = util::SecToNs(1.5);
        run.duration = util::SecToNs(10.0);
        const double raw = device.flash().RawReadBandwidth() / 1e6;
        // PCIe caps below raw; the paper quotes 95 % of raw delivered.
        const double got = workload::RunSdfSequentialReads(
                               sim, device, stack, 44, 8 * util::kMiB, run)
                               .mbps;
        bw.AddRow({"Baidu SDF", util::TablePrinter::Num(raw, 0),
                   util::TablePrinter::Num(got, 0),
                   util::TablePrinter::Num(100.0 * got / raw, 0) + "%"});
    }
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        ssd::ConventionalSsd device(sim, ssd::HuaweiGen3Config(0.04));
        host::IoStack stack(sim, host::KernelIoStackSpec());
        device.PreconditionFill(0.95);
        workload::RawRunConfig run;
        run.warmup = util::MsToNs(300);
        run.duration = util::SecToNs(1.5);
        const double raw = device.flash().RawReadBandwidth() / 1e6;
        // Production-like mixed 512 KB random reads (what Baidu's storage
        // system actually achieved: ~50 %).
        const double got = workload::RunConvReads(
                               sim, device, stack, 64, 512 * util::kKiB,
                               workload::Pattern::kRandom, run)
                               .mbps;
        bw.AddRow({"Huawei Gen3 (512 KB random)",
                   util::TablePrinter::Num(raw, 0),
                   util::TablePrinter::Num(got, 0),
                   util::TablePrinter::Num(100.0 * got / raw, 0) + "%"});
    }
    bw.Print();

    // ---- Cost model -------------------------------------------------------
    // Per-GB cost: identical flash BOM; SDF drops DRAM cache + battery and
    // uses a smaller controller, and all of raw becomes usable.
    util::TablePrinter cost("Relative per-usable-GB hardware cost");
    cost.SetHeader({"Configuration", "BOM (rel.)", "Usable fraction",
                    "Cost per usable GB", "vs commodity 40% OP"});
    struct Row
    {
        const char *name;
        double bom;      // Relative board cost.
        double usable;   // Usable fraction of raw.
    };
    const Row rows[] = {
        {"Commodity, parity + 40% OP", 1.00, 0.546},
        {"Commodity, parity + 25% OP", 1.00, 0.682},
        {"Baidu SDF", 0.92, 0.994},  // -8% BOM: no DRAM/battery, less logic
    };
    const double baseline = rows[0].bom / rows[0].usable;
    for (const Row &r : rows) {
        const double per_gb = r.bom / r.usable;
        cost.AddRow({r.name, util::TablePrinter::Num(r.bom, 2),
                     util::TablePrinter::Num(r.usable, 3),
                     util::TablePrinter::Num(per_gb, 2),
                     util::TablePrinter::Num(100.0 * (1.0 - per_gb / baseline),
                                             0) +
                         "% cheaper"});
    }
    cost.Print();
    std::printf("Paper: 99%% capacity for user data, ~95%% of raw bandwidth\n"
                "delivered, and ~50%% per-GB cost reduction vs the 40%%-OP\n"
                "commodity configuration (20-50%% depending on OP).\n");
    bench::GlobalObs().AddMeta("experiment", "capacity_cost");
    return bench::GlobalObs().Export();
}
