/**
 * @file
 * Cluster scaling and degraded-mode operation (§2.4, §5 deployment model).
 *
 * Phase A — scaling: the same read-heavy mixed workload runs against
 * clusters of 2, 4 and 8 storage nodes (R=2). Aggregate throughput should
 * grow with the node count: each node brings its own device channels,
 * slices and network endpoint, and the consistent-hash router spreads
 * keys across all of them.
 *
 * Phase B — degraded mode: a 3-node R=2 cluster loses one node's entire
 * device (all 44 channels die) in the middle of a mixed read/write
 * window. Replication must absorb it: reads fail over to surviving
 * replicas (and read-repair restores redundancy), and *every acknowledged
 * write must still be readable* — the process exits nonzero if any acked
 * key is lost.
 *
 * Phase C — recovery: a 4-node R=2 cluster rolls node 1 (process stop at
 * 150 ms, restart + recovery scan + rebalance at 300 ms) under a mixed
 * load, then loses node 3 for good and heals with one anti-entropy pass.
 * The audit reads back every key the cluster ever acknowledged and the
 * pass must leave zero keys under-replicated — nonzero exit otherwise.
 */
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "cluster/rebalancer.h"
#include "fault/fault.h"
#include "util/assert.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

constexpr double kScale = 0.02;
constexpr uint32_t kSlicesPerNode = 4;
constexpr uint32_t kPreloadKeys = 120;
constexpr uint32_t kValueBytes = 64 * util::kKiB;

cluster::ClusterConfig
MakeConfig(uint32_t nodes, uint32_t replication)
{
    cluster::ClusterConfig cc;
    cc.nodes = nodes;
    cc.replication = replication;
    cc.node.kv.stack.backend = testbed::Backend::kBaiduSdf;
    cc.node.kv.stack.capacity_scale = kScale;
    cc.node.kv.store.slice_count = kSlicesPerNode;
    return cc;
}

/** Preload via the router; @return the keys (aborts on a failed put). */
std::vector<uint64_t>
Preload(sim::Simulator &sim, cluster::Cluster &cl, uint32_t count)
{
    std::vector<uint64_t> keys;
    uint64_t acked = 0;
    for (uint32_t k = 0; k < count; ++k) {
        keys.push_back(k + 1);
        cl.router().Put(k + 1, kValueBytes,
                        [&acked](bool ok) { acked += ok ? 1 : 0; });
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();
    SDF_CHECK_MSG(acked == count, "cluster preload failed");
    return keys;
}

int
RunScaling(bench::ObsCli &obs)
{
    std::printf("-- phase A: throughput vs node count (R=2) --\n");
    util::TablePrinter table("cluster scaling, 90%% reads, 64 KiB values");
    table.SetHeader({"nodes", "ops/s", "read MB/s", "write MB/s",
                     "read p99 ms"});
    double prev_ops = 0;
    bool monotonic = true;
    for (uint32_t nodes : {2u, 4u, 8u}) {
        sim::Simulator sim;
        bench::BindObs(sim);
        cluster::Cluster cl(sim, MakeConfig(nodes, 2));
        const auto keys = Preload(sim, cl, kPreloadKeys);

        workload::MixedRunConfig mc;
        mc.read_fraction = 0.9;
        mc.value_bytes = kValueBytes;
        mc.duration = util::SecToNs(0.4);
        const workload::KvService svc = cl.Service();
        const auto r = workload::RunMixedLoad(sim, svc, keys, mc);

        table.AddRow({std::to_string(nodes),
                      util::TablePrinter::Num(r.ops_per_sec, 0),
                      util::TablePrinter::Num(r.read_mbps),
                      util::TablePrinter::Num(r.write_mbps),
                      util::TablePrinter::Num(r.read_p99_ms, 2)});
        obs.AddDerived("scaling.nodes" + std::to_string(nodes) + ".ops_per_sec",
                       r.ops_per_sec);
        if (r.ops_per_sec < prev_ops) monotonic = false;
        prev_ops = r.ops_per_sec;
    }
    table.Print();
    std::printf("throughput %s with node count\n\n",
                monotonic ? "scales monotonically" : "did NOT scale");
    return monotonic ? 0 : 1;
}

int
RunDegraded(bench::ObsCli &obs)
{
    std::printf("-- phase B: node death under load (3 nodes, R=2) --\n");
    sim::Simulator sim;
    bench::BindObs(sim);
    cluster::Cluster cl(sim, MakeConfig(3, 2));
    const auto keys = Preload(sim, cl, kPreloadKeys);

    // Kill every channel of node 0's device mid-window.
    const util::TimeNs t_kill = sim.Now() + util::MsToNs(200);
    std::vector<fault::FaultEvent> events;
    for (uint32_t ch = 0; ch < cl.node(0).sdf_device()->channel_count();
         ++ch) {
        fault::FaultEvent e;
        e.when = t_kill;
        e.kind = fault::FaultKind::kChannelDeath;
        e.device = 0;
        e.channel = ch;
        events.push_back(e);
    }
    fault::FaultInjector injector(sim, cl.SdfDevices(),
                                  fault::FaultPlan(std::move(events)));

    workload::MixedRunConfig mc;
    mc.read_fraction = 0.7;  // Write-heavier: exercises acked-write safety.
    mc.value_bytes = kValueBytes;
    mc.duration = util::SecToNs(0.4);
    const workload::KvService svc = cl.Service();
    const auto r = workload::RunMixedLoad(sim, svc, keys, mc);

    // Audit: every acknowledged write must still be readable. Closed-loop
    // with a few streams — flooding every key at once would overflow the
    // RPC timeout and report congestion as data loss.
    uint64_t lost = 0, audited = 0;
    size_t next = 0;
    std::function<void()> audit_step = [&]() {
        if (next >= r.acked_writes.size()) return;
        const uint64_t key = r.acked_writes[next++];
        cl.router().Get(key, [&](const kv::GetResult &res) {
            ++audited;
            if (!res.ok || !res.found) ++lost;
            audit_step();
        });
    };
    for (uint32_t s = 0; s < 8; ++s) audit_step();
    sim.Run();

    const kv::ReplicatedKvStats &rs = cl.router().stats();
    std::printf("node 0 died at t=%.0f ms (%llu channel deaths applied)\n",
                util::NsToMs(t_kill),
                static_cast<unsigned long long>(injector.stats().deaths));
    std::printf("load: %llu reads (%llu degraded, %llu failed), "
                "%llu writes (%llu acked, %llu failed)\n",
                static_cast<unsigned long long>(r.reads),
                static_cast<unsigned long long>(rs.degraded_reads),
                static_cast<unsigned long long>(rs.failed_reads),
                static_cast<unsigned long long>(r.writes),
                static_cast<unsigned long long>(r.acked_writes.size()),
                static_cast<unsigned long long>(r.write_errors));
    std::printf("read-repair: %llu re-replications, recovery p99 %.2f ms\n",
                static_cast<unsigned long long>(rs.re_replications),
                cl.router().recovery_latencies().count() > 0
                    ? cl.router().recovery_latencies().PercentileMs(99)
                    : 0.0);
    std::printf("audit: %llu acked writes, %llu lost\n\n",
                static_cast<unsigned long long>(audited),
                static_cast<unsigned long long>(lost));
    obs.AddDerived("degraded.acked_writes", static_cast<double>(audited));
    obs.AddDerived("degraded.lost", static_cast<double>(lost));
    obs.AddDerived("degraded.degraded_reads",
                   static_cast<double>(rs.degraded_reads));
    if (lost != 0) {
        std::printf("FAIL: %llu acknowledged writes lost\n",
                    static_cast<unsigned long long>(lost));
        return 1;
    }
    std::printf("PASS: zero acknowledged writes lost in degraded mode\n");
    return 0;
}

int
RunRecovery(bench::ObsCli &obs)
{
    std::printf("-- phase C: rolling restart + anti-entropy (4 nodes, "
                "R=2) --\n");
    sim::Simulator sim;
    bench::BindObs(sim);
    cluster::Cluster cl(sim, MakeConfig(4, 2));
    const auto keys = Preload(sim, cl, kPreloadKeys);

    // Roll node 1 in the middle of the load window: process stop at
    // 150 ms, restart (recovery scan + rebalance pass) at 300 ms.
    const util::TimeNs t0 = sim.Now();
    sim.ScheduleAt(t0 + util::MsToNs(150), [&cl]() { cl.StopNode(1); });
    bool rebalanced = false;
    sim.ScheduleAt(t0 + util::MsToNs(300), [&cl, &rebalanced]() {
        cl.RestartNode(1, [&rebalanced]() { rebalanced = true; });
    });

    workload::MixedRunConfig mc;
    mc.read_fraction = 0.7;  // Write-heavier: exercises acked-write safety.
    mc.value_bytes = kValueBytes;
    mc.duration = util::SecToNs(0.5);
    const workload::KvService svc = cl.Service();
    const auto r = workload::RunMixedLoad(sim, svc, keys, mc);
    sim.Run();
    SDF_CHECK_MSG(rebalanced, "restart rebalance never completed");
    const auto &rec = cl.node(1).recovery();

    // Permanent loss: node 3's process dies for good. One anti-entropy
    // pass must restore full R-way redundancy from the survivors.
    cl.StopNode(3);
    const uint64_t degraded = cl.rebalancer().CountUnderReplicated();
    bool healed = false;
    cl.anti_entropy().Run([&healed]() { healed = true; });
    sim.Run();
    SDF_CHECK_MSG(healed, "anti-entropy pass never completed");
    const cluster::Rebalancer::Stats &rb = cl.rebalancer().stats();
    const uint64_t under = cl.rebalancer().CountUnderReplicated();

    // Audit everything the cluster ever acknowledged — the preload plus
    // every acked mixed-load write — through the 3 surviving nodes.
    std::vector<uint64_t> audit_keys = keys;
    audit_keys.insert(audit_keys.end(), r.acked_writes.begin(),
                      r.acked_writes.end());
    uint64_t lost = 0, audited = 0;
    size_t next = 0;
    std::function<void()> audit_step = [&]() {
        if (next >= audit_keys.size()) return;
        const uint64_t key = audit_keys[next++];
        cl.router().Get(key, [&](const kv::GetResult &res) {
            ++audited;
            if (!res.ok || !res.found) ++lost;
            audit_step();
        });
    };
    for (uint32_t s = 0; s < 8; ++s) audit_step();
    sim.Run();

    std::printf("during-restart load: %.0f ops/s, read %.1f MB/s, "
                "write %.1f MB/s, read p99 %.2f ms\n",
                r.ops_per_sec, r.read_mbps, r.write_mbps, r.read_p99_ms);
    std::printf("node 1 recovery: %llu patches (%.1f MiB) scanned, %llu WAL "
                "records, %.2f ms to serving\n",
                static_cast<unsigned long long>(rec.patches_scanned),
                static_cast<double>(rec.bytes_scanned) / (1 << 20),
                static_cast<unsigned long long>(rec.wal_records_replayed),
                static_cast<double>(rec.last_recovery_ns) / 1e6);
    std::printf("anti-entropy after losing node 3: %llu keys degraded, "
                "%llu moves (%.1f MiB) in %.2f ms, %llu still "
                "under-replicated\n",
                static_cast<unsigned long long>(degraded),
                static_cast<unsigned long long>(rb.keys_moved),
                static_cast<double>(rb.bytes_moved) / (1 << 20),
                static_cast<double>(rb.last_pass_ns) / 1e6,
                static_cast<unsigned long long>(under));
    std::printf("audit: %llu acked keys, %llu lost\n\n",
                static_cast<unsigned long long>(audited),
                static_cast<unsigned long long>(lost));
    obs.AddDerived("recovery.node1_recovery_ms",
                   static_cast<double>(rec.last_recovery_ns) / 1e6);
    obs.AddDerived("recovery.during_restart_ops_per_sec", r.ops_per_sec);
    obs.AddDerived("recovery.anti_entropy_ms",
                   static_cast<double>(rb.last_pass_ns) / 1e6);
    obs.AddDerived("recovery.keys_moved",
                   static_cast<double>(rb.keys_moved));
    obs.AddDerived("recovery.under_replicated", static_cast<double>(under));
    obs.AddDerived("recovery.lost", static_cast<double>(lost));
    if (lost != 0 || under != 0) {
        std::printf("FAIL: %llu keys lost, %llu under-replicated\n",
                    static_cast<unsigned long long>(lost),
                    static_cast<unsigned long long>(under));
        return 1;
    }
    std::printf("PASS: restart + anti-entropy preserved every acked key at "
                "full redundancy\n");
    return 0;
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    sdf::bench::ObsCli &obs = sdf::bench::GlobalObs();
    obs.ParseAndStrip(argc, argv);
    sdf::bench::PrintPreamble("cluster scaling + degraded mode",
                              "deployment model of §2.4/§5");
    int rc = sdf::RunScaling(obs);
    rc |= sdf::RunDegraded(obs);
    rc |= sdf::RunRecovery(obs);
    obs.AddMeta("experiment", "cluster_scaling");
    if (const int orc = obs.Export(); orc != 0) return orc;
    return rc;
}
