/**
 * @file
 * End-to-end fault-injection campaign (robustness headline experiment).
 *
 * The paper's SDF deployment strips the drive of internal redundancy and
 * relies on the distributed software layer for fault tolerance (§2, §5).
 * This campaign stresses that claim: R replicated storage stacks take a
 * barrage of injected hardware faults (channel stalls and deaths, latent
 * page corruption, link CRC windows, elevated RBER) while clients keep
 * reading through a timeout-and-retry network path. With 3-way replication
 * the expected outcome is zero data loss and every request completing —
 * degraded, not down.
 *
 * Usage:
 *   fault_campaign [--replicas=3] [--faults=120] [--keys=300] [--reads=1500]
 *                  [--seed=42] [--horizon-ms=400] [--plan=<file>]
 *                  [--retry-levels=4] [--print-plan]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "fault_common.h"

namespace {

bool
MatchArg(const char *arg, const char *name, const char **value)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
    *value = arg + n + 1;
    return true;
}

}  // namespace

int
main(int argc, char **argv)
{
    sdf::bench::GlobalObs().ParseAndStrip(argc, argv);
    sdf::bench::FaultCampaignConfig cfg;
    bool print_plan = false;
    std::string plan_path;
    for (int i = 1; i < argc; ++i) {
        const char *v = nullptr;
        if (MatchArg(argv[i], "--replicas", &v)) {
            cfg.replicas = static_cast<uint32_t>(std::atoi(v));
        } else if (MatchArg(argv[i], "--faults", &v)) {
            cfg.fault_count = static_cast<uint32_t>(std::atoi(v));
        } else if (MatchArg(argv[i], "--keys", &v)) {
            cfg.keys = static_cast<uint32_t>(std::atoi(v));
        } else if (MatchArg(argv[i], "--reads", &v)) {
            cfg.reads = static_cast<uint32_t>(std::atoi(v));
        } else if (MatchArg(argv[i], "--seed", &v)) {
            cfg.seed = static_cast<uint64_t>(std::atoll(v));
        } else if (MatchArg(argv[i], "--horizon-ms", &v)) {
            cfg.horizon_sec = std::atof(v) / 1000.0;
        } else if (MatchArg(argv[i], "--retry-levels", &v)) {
            cfg.read_retry_levels = static_cast<uint32_t>(std::atoi(v));
        } else if (MatchArg(argv[i], "--plan", &v)) {
            plan_path = v;
        } else if (std::strcmp(argv[i], "--print-plan") == 0) {
            print_plan = true;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }
    if (cfg.replicas == 0) {
        std::fprintf(stderr, "--replicas must be >= 1\n");
        return 2;
    }
    if (!plan_path.empty()) {
        std::ifstream in(plan_path);
        if (!in) {
            std::fprintf(stderr, "cannot open plan file %s\n",
                         plan_path.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        cfg.plan_text = text.str();
    }

    if (print_plan) {
        // Emit the plan this configuration would run, without running it
        // (pipe to a file, edit, replay with --plan=).
        std::fputs(sdf::fault::FaultPlan::Random(
                       sdf::bench::CampaignFaultSpec(cfg),
                       sdf::bench::CampaignPlanSeed(cfg))
                       .ToText()
                       .c_str(),
                   stdout);
        return 0;
    }

    cfg.hub = sdf::bench::GlobalObs().hub();
    std::printf("== fault campaign: %u-way replication, %u faults over "
                "%.0f ms, seed %llu ==\n",
                cfg.replicas, cfg.fault_count, cfg.horizon_sec * 1000.0,
                static_cast<unsigned long long>(cfg.seed));
    const sdf::bench::FaultCampaignResult r = sdf::bench::RunFaultCampaign(cfg);
    if (!r.plan_error.empty()) return 2;  // Parse error already printed.
    sdf::bench::PrintFaultCampaignResult(cfg, r);

    const bool ok = r.keys_lost == 0 &&
                    r.requests_completed == r.requests_issued;
    std::printf("verdict:       %s\n",
                ok ? "PASS (no data loss, all requests completed)"
                   : "FAIL");
    sdf::bench::GlobalObs().AddMeta("experiment", "fault_campaign");
    sdf::bench::GlobalObs().AddDerived("result.availability", r.availability);
    if (const int rc = sdf::bench::GlobalObs().Export(); rc != 0) return rc;
    return ok ? 0 : 1;
}
