/**
 * @file
 * Shared fault-campaign runner used by bench/fault_campaign and the
 * `sdfsim --workload=faults` subcommand.
 *
 * A campaign assembles R independent replica stacks (SdfDevice + block
 * layer + CCDB store each — separate failure domains, as the paper's
 * no-drive-internal-redundancy design assumes), loads a key population,
 * then replays a deterministic FaultPlan against the hardware while
 * clients read over a timeout-and-retry network path. Afterwards every
 * acknowledged key is audited through the replicated read path.
 *
 * Reported metrics: data loss (keys unreadable from every replica),
 * availability (fraction of in-window requests answered successfully —
 * every request completes, bounded by timeout x retries), and recovery
 * latency (read-retry ladder recoveries on the device, replica failovers
 * in the store). A stats fingerprint makes determinism checkable: equal
 * seeds must produce equal fingerprints.
 */
#ifndef SDF_BENCH_FAULT_COMMON_H
#define SDF_BENCH_FAULT_COMMON_H

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "kv/replicated_store.h"
#include "kv/store.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"
#include "util/fingerprint.h"
#include "util/rng.h"
#include "util/units.h"

namespace sdf::bench {

/**
 * Network spec tuned for fault campaigns: a tight per-attempt timeout so
 * requests stuck behind a multi-millisecond channel stall abandon the
 * attempt and retry instead of waiting it out.
 */
inline net::NetworkSpec
CampaignNetSpec()
{
    net::NetworkSpec spec;
    spec.rpc_timeout = util::MsToNs(5);
    spec.rpc_max_retries = 4;
    spec.rpc_backoff_base = util::MsToNs(1);
    return spec;
}

/** Campaign knobs. */
struct FaultCampaignConfig
{
    uint32_t replicas = 3;
    uint32_t slices_per_replica = 4;
    double capacity_scale = 0.02;
    uint32_t keys = 800;
    uint32_t value_bytes = 64 * util::kKiB;
    uint32_t reads = 1500;  ///< Network reads issued during the fault window.
    uint32_t writes = 200;  ///< Network writes during the window (redirects).
    double horizon_sec = 0.4;
    uint64_t seed = 42;
    uint32_t fault_count = 120;
    uint32_t read_retry_levels = 4;
    /** Optional plan text (FaultPlan format); empty = random from seed. */
    std::string plan_text;
    /**
     * Device error model (faults ride on top of it). The elevated base
     * RBER puts ~1.3 expected bit errors in an 8 KiB page — harmless
     * against a 40-bit BCH budget, but an injected RBER elevation of
     * 30-100x pushes pages into read-retry or terminal-retirement range.
     */
    bool errors_enabled = true;
    double base_rber = 2e-5;
    double wear_rber_factor = 50.0;
    uint32_t endurance_cycles = 3000;
    uint32_t ecc_bits = 40;
    uint32_t retry_extra_bits = 10;
    net::NetworkSpec net = CampaignNetSpec();
    /** Optional observability hub, installed on the campaign's simulator
     *  before the replica stacks are built (see obs/hub.h). */
    obs::Hub *hub = nullptr;
};

/** Campaign outcome. */
struct FaultCampaignResult
{
    fault::FaultInjectorStats faults;
    uint64_t keys_stored = 0;
    uint64_t keys_lost = 0;  ///< Unreadable from every replica post-run.
    uint64_t requests_issued = 0;
    uint64_t requests_completed = 0;  ///< Every request must complete.
    uint64_t requests_ok = 0;
    double availability = 1.0;  ///< requests_ok / requests_issued.
    core::SdfStats device;      ///< Summed over replicas.
    kv::ReplicatedKvStats kv;
    net::RpcStats rpc;
    uint64_t ladder_recoveries = 0;   ///< Pages saved by read retries.
    double ladder_recovery_mean_ms = 0;
    uint64_t failovers = 0;           ///< Reads served by a backup replica.
    double failover_p99_ms = 0;
    /** Equal seeds must yield equal fingerprints (determinism check). */
    uint64_t fingerprint = 0;
    /** Non-empty when the supplied plan failed to parse; the campaign did
     *  not run and none of the counters above are meaningful. */
    std::string plan_error;
};

/** The plan spec a campaign uses when no plan text is supplied. Exposed so
 *  `--print-plan` style tooling can emit exactly the plan a run would use. */
inline fault::FaultPlanSpec
CampaignFaultSpec(const FaultCampaignConfig &cfg)
{
    fault::FaultPlanSpec spec;
    spec.fault_count = cfg.fault_count;
    spec.horizon = util::SecToNs(cfg.horizon_sec);
    spec.devices = cfg.replicas;
    const nand::Geometry geo =
        core::BaiduSdfConfig(cfg.capacity_scale).flash.geometry;
    spec.channels = geo.channels;
    spec.planes = geo.PlanesPerChannel();
    // Target the low block indices: the allocator hands out blocks in
    // order, so that's where a lightly filled device keeps its data. A
    // uniformly random block would nearly always hit unwritten flash.
    spec.blocks_per_plane = std::min(geo.blocks_per_plane, 8u);
    spec.pages_per_block = geo.pages_per_block;
    spec.max_deaths = cfg.replicas;  // At most ~one dead channel per replica.
    // Long enough to outlast CampaignNetSpec's 5 ms RPC timeout: stalled
    // requests must exercise the client's timeout-and-retry path.
    spec.stall_max = util::MsToNs(8);
    return spec;
}

/** The seed the campaign derives for plan synthesis (distinct stream from
 *  device RNGs and the read schedule). */
inline uint64_t
CampaignPlanSeed(const FaultCampaignConfig &cfg)
{
    return cfg.seed ^ 0xfa011700ULL;
}

inline FaultCampaignResult
RunFaultCampaign(const FaultCampaignConfig &cfg)
{
    sim::Simulator sim;
    if (cfg.hub != nullptr) sim.set_hub(cfg.hub);

    // --- replica stacks: independent devices = independent failure domains.
    // Wiring is the shared testbed builder's; only the error-model tuning
    // is campaign-specific.
    std::vector<testbed::KvStack> stacks;
    std::vector<kv::Store *> stores;
    std::vector<core::SdfDevice *> devices;
    for (uint32_t r = 0; r < cfg.replicas; ++r) {
        testbed::KvStackConfig kc;
        kc.stack.backend = testbed::Backend::kBaiduSdf;
        kc.stack.capacity_scale = cfg.capacity_scale;
        kc.stack.with_io_stack = false;
        kc.stack.tune_sdf = [&cfg, r](core::SdfConfig &dc) {
            dc.flash.errors.enabled = cfg.errors_enabled;
            dc.flash.errors.base_rber = cfg.base_rber;
            dc.flash.errors.wear_rber_factor = cfg.wear_rber_factor;
            dc.flash.errors.endurance_cycles = cfg.endurance_cycles;
            dc.flash.ecc_correctable_bits = cfg.ecc_bits;
            dc.flash.retry_extra_correctable_bits = cfg.retry_extra_bits;
            dc.flash.seed = cfg.seed + 0x9e3779b9ULL * (r + 1);
            dc.read_retry_levels = cfg.read_retry_levels;
        };
        kc.store.slice_count = cfg.slices_per_replica;
        stacks.push_back(testbed::BuildKvStack(sim, kc));
        stores.push_back(stacks.back().store.get());
        devices.push_back(stacks.back().storage.sdf.get());
    }
    kv::ReplicatedKv replicated(sim, stores);
    net::Network net(sim, cfg.net, /*clients=*/1);

    FaultCampaignResult result;

    // --- load phase: populate every replica, remember acknowledged keys.
    std::vector<uint64_t> acked;
    acked.reserve(cfg.keys);
    for (uint64_t k = 0; k < cfg.keys; ++k) {
        replicated.Put(k, cfg.value_bytes, [k, &acked](bool ok) {
            if (ok) acked.push_back(k);
        });
    }
    sim.Run();
    // Force memtables onto flash so the fault window reads real media.
    for (auto &s : stacks) {
        for (uint32_t i = 0; i < s.store->slice_count(); ++i)
            s.store->slice(i).Flush();
    }
    sim.Run();

    // --- fault window: replay the plan while clients read with retry.
    const util::TimeNs horizon = util::SecToNs(cfg.horizon_sec);
    fault::FaultPlan plan;
    if (!cfg.plan_text.empty()) {
        std::string error;
        if (!fault::FaultPlan::Parse(cfg.plan_text, &plan, &error)) {
            std::fprintf(stderr, "fault plan: %s\n", error.c_str());
            result.plan_error = error;
            return result;
        }
    } else {
        plan = fault::FaultPlan::Random(CampaignFaultSpec(cfg),
                                        CampaignPlanSeed(cfg));
    }
    const util::TimeNs t0 = sim.Now();
    fault::FaultInjector injector(
        sim, devices,
        fault::FaultPlan([&] {
            // Shift the plan into the current window.
            std::vector<fault::FaultEvent> ev = plan.events();
            for (auto &e : ev) e.when += t0;
            return ev;
        }()));

    util::Rng read_rng(cfg.seed ^ 0x5ca1ab1eULL);
    for (uint32_t i = 0; i < cfg.reads; ++i) {
        const util::TimeNs at =
            t0 + static_cast<util::TimeNs>(
                     (static_cast<double>(i) / cfg.reads) *
                     static_cast<double>(horizon));
        const uint64_t key =
            acked.empty() ? 0 : acked[read_rng.NextBelow(acked.size())];
        sim.ScheduleAt(at, [&, key]() {
            ++result.requests_issued;
            net.RpcWithRetry(
                0, 256,
                [&, key](std::function<void(uint64_t)> reply) {
                    replicated.Get(key,
                                   [reply = std::move(reply)](
                                       const kv::GetResult &res) {
                                       reply(res.ok && res.found
                                                 ? res.value_size
                                                 : 16);
                                   });
                },
                [&](bool ok) {
                    ++result.requests_completed;
                    if (ok) ++result.requests_ok;
                });
        });
    }
    // Fresh writes land while channels are stalling and dying, exercising
    // dead-channel avoidance and write redirection in the block layer.
    // Acknowledged keys join the audit set: an acked write must survive.
    for (uint32_t i = 0; i < cfg.writes; ++i) {
        const util::TimeNs at =
            t0 + static_cast<util::TimeNs>(
                     ((static_cast<double>(i) + 0.5) / cfg.writes) *
                     static_cast<double>(horizon));
        const uint64_t key = cfg.keys + i;
        sim.ScheduleAt(at, [&, key]() {
            ++result.requests_issued;
            net.RpcWithRetry(
                0, cfg.value_bytes,
                [&, key](std::function<void(uint64_t)> reply) {
                    replicated.Put(key, cfg.value_bytes,
                                   [&acked, key, reply = std::move(reply)](
                                       bool ok) {
                                       if (ok) acked.push_back(key);
                                       reply(16);
                                   });
                },
                [&](bool ok) {
                    ++result.requests_completed;
                    if (ok) ++result.requests_ok;
                });
        });
    }
    sim.RunUntil(t0 + horizon);
    sim.Run();  // Drain in-flight requests, retries, and repairs.

    // --- audit phase: every acknowledged key must be readable somewhere.
    // An RPC-retried Put can ack twice; dedupe so each key is audited once.
    std::sort(acked.begin(), acked.end());
    acked.erase(std::unique(acked.begin(), acked.end()), acked.end());
    result.keys_stored = acked.size();
    for (uint64_t key : acked) {
        replicated.Get(key, [&result](const kv::GetResult &res) {
            if (!(res.ok && res.found)) ++result.keys_lost;
        });
    }
    sim.Run();

    // --- aggregate metrics.
    result.faults = injector.stats();
    for (auto &s : stacks) {
        const core::SdfStats &d = s.storage.sdf->stats();
        result.device.unit_writes += d.unit_writes;
        result.device.unit_erases += d.unit_erases;
        result.device.page_reads += d.page_reads;
        result.device.read_failures += d.read_failures;
        result.device.read_retries += d.read_retries;
        result.device.retry_recoveries += d.retry_recoveries;
        result.device.read_retirements += d.read_retirements;
        result.device.blocks_retired += d.blocks_retired;
        result.device.units_lost += d.units_lost;
        result.device.contract_violations += d.contract_violations;
        result.ladder_recoveries += s.storage.sdf->recovery_latencies().count();
        result.ladder_recovery_mean_ms +=
            s.storage.sdf->recovery_latencies().count() > 0
                ? s.storage.sdf->recovery_latencies().MeanMs()
                : 0;
    }
    if (cfg.replicas > 0) {
        result.ladder_recovery_mean_ms /= cfg.replicas;
    }
    result.kv = replicated.stats();
    result.rpc = net.rpc_stats();
    result.failovers = replicated.recovery_latencies().count();
    result.failover_p99_ms = result.failovers > 0
                                 ? replicated.recovery_latencies()
                                       .PercentileMs(99)
                                 : 0;
    result.availability =
        result.requests_issued > 0
            ? static_cast<double>(result.requests_ok) /
                  static_cast<double>(result.requests_issued)
            : 1.0;

    // --- determinism fingerprint over everything observable.
    char digest[512];
    std::snprintf(
        digest, sizeof digest,
        "f%llu s%llu l%llu i%llu c%llu o%llu pr%llu rf%llu rr%llu rc%llu "
        "rt%llu ul%llu dg%llu fr%llu rp%llu to%llu nr%llu",
        static_cast<unsigned long long>(result.faults.total()),
        static_cast<unsigned long long>(result.keys_stored),
        static_cast<unsigned long long>(result.keys_lost),
        static_cast<unsigned long long>(result.requests_issued),
        static_cast<unsigned long long>(result.requests_completed),
        static_cast<unsigned long long>(result.requests_ok),
        static_cast<unsigned long long>(result.device.page_reads),
        static_cast<unsigned long long>(result.device.read_failures),
        static_cast<unsigned long long>(result.device.read_retries),
        static_cast<unsigned long long>(result.device.retry_recoveries),
        static_cast<unsigned long long>(result.device.read_retirements),
        static_cast<unsigned long long>(result.device.units_lost),
        static_cast<unsigned long long>(result.kv.degraded_reads),
        static_cast<unsigned long long>(result.kv.failed_reads),
        static_cast<unsigned long long>(result.kv.re_replications),
        static_cast<unsigned long long>(result.rpc.timeouts),
        static_cast<unsigned long long>(result.rpc.retries));
    result.fingerprint = util::Fingerprint(digest, std::strlen(digest));
    return result;
}

/** Print a campaign result in the standard bench table style. */
inline void
PrintFaultCampaignResult(const FaultCampaignConfig &cfg,
                         const FaultCampaignResult &r)
{
    std::printf("replicas %u, %llu keys stored, faults applied: %llu "
                "(%llu stalls, %llu deaths, %llu corruptions, %llu crc "
                "windows, %llu rber)\n",
                cfg.replicas,
                static_cast<unsigned long long>(r.keys_stored),
                static_cast<unsigned long long>(r.faults.total()),
                static_cast<unsigned long long>(r.faults.stalls),
                static_cast<unsigned long long>(r.faults.deaths),
                static_cast<unsigned long long>(r.faults.corruptions),
                static_cast<unsigned long long>(r.faults.crc_windows),
                static_cast<unsigned long long>(r.faults.rber_elevations));
    std::printf("data loss:     %llu / %llu keys\n",
                static_cast<unsigned long long>(r.keys_lost),
                static_cast<unsigned long long>(r.keys_stored));
    std::printf("availability:  %.4f (%llu/%llu requests ok, all %llu "
                "completed)\n",
                r.availability,
                static_cast<unsigned long long>(r.requests_ok),
                static_cast<unsigned long long>(r.requests_issued),
                static_cast<unsigned long long>(r.requests_completed));
    std::printf("device:        %llu page reads, %llu retries, %llu ladder "
                "recoveries (mean %.3f ms), %llu terminal failures, %llu "
                "blocks retired, %llu units lost\n",
                static_cast<unsigned long long>(r.device.page_reads),
                static_cast<unsigned long long>(r.device.read_retries),
                static_cast<unsigned long long>(r.ladder_recoveries),
                r.ladder_recovery_mean_ms,
                static_cast<unsigned long long>(r.device.read_failures),
                static_cast<unsigned long long>(r.device.blocks_retired),
                static_cast<unsigned long long>(r.device.units_lost));
    std::printf("store:         %llu degraded reads (failover p99 %.3f ms), "
                "%llu re-replications, %llu reads failed on all replicas\n",
                static_cast<unsigned long long>(r.kv.degraded_reads),
                r.failover_p99_ms,
                static_cast<unsigned long long>(r.kv.re_replications),
                static_cast<unsigned long long>(r.kv.failed_reads));
    std::printf("network:       %llu timeouts, %llu retries, %llu permanent "
                "failures\n",
                static_cast<unsigned long long>(r.rpc.timeouts),
                static_cast<unsigned long long>(r.rpc.retries),
                static_cast<unsigned long long>(r.rpc.failures));
    std::printf("fingerprint:   %016llx (same seed => same value)\n",
                static_cast<unsigned long long>(r.fingerprint));
}

}  // namespace sdf::bench

#endif  // SDF_BENCH_FAULT_COMMON_H
