/**
 * @file
 * Figure 10: one CCDB slice serving random 512 KB KV reads over the
 * network, with the request batch size swept from 1 to 44.
 *
 * Paper shape: the Huawei Gen3 wins at small batches (245 MB/s at batch 1
 * vs SDF's 38 MB/s — its 8 KB striping parallelizes a single request) and
 * flattens; SDF starts low (one channel per request) and climbs steadily
 * as batching exposes channel concurrency, catching up around batch 32.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    using bench::DeviceKind;
    bench::PrintPreamble("Figure 10 — one slice, batched 512 KB random reads",
                         "Figure 10");

    util::TablePrinter table("Figure 10: throughput (MB/s), 1 slice");
    table.SetHeader({"Batch size", "Baidu SDF", "Huawei Gen3"});

    for (uint32_t batch : {1u, 4u, 8u, 16u, 32u, 44u}) {
        double mbps[2] = {0, 0};
        int col = 0;
        for (DeviceKind kind :
             {DeviceKind::kBaiduSdf, DeviceKind::kHuaweiGen3}) {
            bench::KvTestbed bed(kind, 1, 1, 0.06);
            const auto keys = bed.Preload(1200 * util::kMiB, 512 * util::kKiB);
            workload::KvRunConfig run;
            run.warmup = util::MsToNs(400);
            run.duration = util::SecToNs(3.0);
            mbps[col++] = workload::RunBatchedRandomReads(
                              bed.sim(), bed.net(), bed.SlicePtrs(), keys,
                              batch, run)
                              .client_mbps;
        }
        table.AddRow({util::TablePrinter::Int(batch),
                      util::TablePrinter::Num(mbps[0], 0),
                      util::TablePrinter::Num(mbps[1], 0)});
    }

    table.Print();
    std::printf("Paper: SDF 38 (batch 1) rising past 600; Huawei 245 (batch\n"
                "1) rising to ~700 then declining slightly; crossover ~32.\n");
    bench::GlobalObs().AddMeta("experiment", "fig10_batch_one_slice");
    return bench::GlobalObs().Export();
}
