/**
 * @file
 * Figure 11: four and eight slices serving batched random 512 KB reads.
 *
 * Paper shape: SDF scales with slices x batch to ~1.5 GB/s (all channels
 * busy); the Huawei Gen3 peaks near 700 MB/s, does not improve from 4 to
 * 8 slices, and degrades slightly at the highest concurrency.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    using bench::DeviceKind;
    bench::PrintPreamble("Figure 11 — multi-slice batched 512 KB reads",
                         "Figure 11");

    util::TablePrinter table("Figure 11: throughput (MB/s)");
    table.SetHeader({"Batch size", "SDF 4 slices", "SDF 8 slices",
                     "Huawei 4 slices", "Huawei 8 slices"});

    for (uint32_t batch : {1u, 4u, 8u, 16u, 32u, 44u}) {
        std::vector<std::string> row{util::TablePrinter::Int(batch)};
        for (DeviceKind kind :
             {DeviceKind::kBaiduSdf, DeviceKind::kHuaweiGen3}) {
            for (uint32_t slices : {4u, 8u}) {
                bench::KvTestbed bed(kind, slices, slices, 0.06);
                const auto keys =
                    bed.Preload(300 * util::kMiB, 512 * util::kKiB);
                workload::KvRunConfig run;
                run.warmup = util::MsToNs(400);
                run.duration = util::SecToNs(2.5);
                const double mbps = workload::RunBatchedRandomReads(
                                        bed.sim(), bed.net(), bed.SlicePtrs(),
                                        keys, batch, run)
                                        .client_mbps;
                row.push_back(util::TablePrinter::Num(mbps, 0));
            }
        }
        // Reorder: SDF4, SDF8, HW4, HW8 already in that order.
        table.AddRow(std::move(row));
    }

    table.Print();
    std::printf("Paper: SDF 8-slice throughput reaches ~1.5 GB/s (e.g.\n"
                "270 -> 1081 MB/s going from batch 1 to 4); Huawei is flat\n"
                "~700 MB/s with 4- and 8-slice curves nearly coincident.\n");
    bench::GlobalObs().AddMeta("experiment", "fig11_batch_multi_slice");
    return bench::GlobalObs().Export();
}
