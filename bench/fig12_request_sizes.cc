/**
 * @file
 * Figure 12: batched random reads (batch size 44) with value sizes of
 * 32 KB, 128 KB, and 512 KB — web pages, thumbnails, and images — at 1,
 * 4, and 8 slices.
 *
 * Paper shape: with enough concurrency SDF serves small and large values
 * at similar (high) throughput, larger values moderately faster; only the
 * 1-slice case is as slow as the Huawei Gen3.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    using bench::DeviceKind;
    bench::PrintPreamble("Figure 12 — value size x slice count, batch 44",
                         "Figure 12");

    util::TablePrinter table("Figure 12: throughput (MB/s), batch size 44");
    table.SetHeader({"Config", "32KB values", "128KB values", "512KB values"});

    for (uint32_t slices : {1u, 4u, 8u}) {
        for (DeviceKind kind :
             {DeviceKind::kHuaweiGen3, DeviceKind::kBaiduSdf}) {
            std::vector<std::string> row{
                std::string(bench::DeviceName(kind)) + "-" +
                std::to_string(slices) + (slices == 1 ? " slice" : " slices")};
            for (uint32_t value :
                 {32 * util::kKiB, 128 * util::kKiB, 512 * util::kKiB}) {
                bench::KvTestbed bed(kind, slices, slices, 0.06);
                const uint64_t per_slice =
                    slices == 1 ? 1200 * util::kMiB : 300 * util::kMiB;
                const auto keys =
                    bed.Preload(per_slice, static_cast<uint32_t>(value));
                workload::KvRunConfig run;
                run.warmup = util::MsToNs(400);
                run.duration = util::SecToNs(2.0);
                const double mbps = workload::RunBatchedRandomReads(
                                        bed.sim(), bed.net(), bed.SlicePtrs(),
                                        keys, 44, run)
                                        .client_mbps;
                row.push_back(util::TablePrinter::Num(mbps, 0));
            }
            table.AddRow(std::move(row));
        }
    }

    table.Print();
    std::printf("Paper: SDF with >= 4 slices serves all sizes at high\n"
                "throughput (larger moderately faster, up to ~1.5 GB/s);\n"
                "only SDF-1slice drops to Huawei levels.\n");
    bench::GlobalObs().AddMeta("experiment", "fig12_request_sizes");
    return bench::GlobalObs().Export();
}
