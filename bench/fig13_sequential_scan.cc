/**
 * @file
 * Figure 13: inverted-index building — sequential scans over web-page
 * tables, six synchronous threads per slice, slice count swept 1 to 32.
 *
 * Paper shape: SDF scales nearly linearly to its peak (~1.4 GB/s) at 16
 * slices; the Huawei Gen3 does not scale at all (and worsens at high
 * slice counts); the Intel 320 is constant and low.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    using bench::DeviceKind;
    bench::PrintPreamble("Figure 13 — sequential scans vs slice count",
                         "Figure 13 (6 threads per slice)");

    util::TablePrinter table("Figure 13: scan throughput (MB/s)");
    table.SetHeader({"Slices", "Baidu SDF", "Huawei Gen3", "Intel 320"});

    for (uint32_t slices : {1u, 2u, 4u, 8u, 16u, 32u}) {
        std::vector<std::string> row{util::TablePrinter::Int(slices)};
        for (DeviceKind kind : {DeviceKind::kBaiduSdf,
                                DeviceKind::kHuaweiGen3,
                                DeviceKind::kIntel320}) {
            const double scale = kind == DeviceKind::kIntel320 ? 0.3 : 0.08;
            bench::KvTestbed bed(kind, slices, slices, scale);
            bed.Preload(160 * util::kMiB, 512 * util::kKiB);
            workload::KvRunConfig run;
            run.warmup = util::SecToNs(1.0);
            run.duration = util::SecToNs(4.0);
            const double mbps =
                workload::RunSequentialScan(bed.sim(), bed.SlicePtrs(), 6, run)
                    .client_mbps;
            row.push_back(util::TablePrinter::Num(mbps, 0));
        }
        table.AddRow(std::move(row));
    }

    table.Print();
    std::printf("Paper: SDF scales to a ~1.4 GB/s peak at 16 slices; Huawei\n"
                "~650-700 MB/s flat (slightly worse at 32); Intel ~220 MB/s\n"
                "constant.\n");
    bench::GlobalObs().AddMeta("experiment", "fig13_sequential_scan");
    return bench::GlobalObs().Export();
}
