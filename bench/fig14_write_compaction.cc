/**
 * @file
 * Figure 14: the write path — clients write 100 KB-1 MB values; patch
 * flushes and LSM compactions generate the device traffic. Slice count
 * swept 1 to 32; reports the write and (compaction-) read components of
 * storage throughput.
 *
 * Paper shape: SDF throughput grows with slice count, peaking ~1 GB/s at
 * >= 16 slices with a healthy compaction (read) share that shrinks as
 * client writes take priority at 32. The Huawei Gen3 starts much higher
 * at 1-2 slices (channel striping parallelizes a single patch write) but
 * is flat beyond that, and its compaction share collapses (< 15 %),
 * leaving data unsorted.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    using bench::DeviceKind;
    bench::PrintPreamble("Figure 14 — KV writes with compaction",
                         "Figure 14 (values 100 KB - 1 MB, unbatched)");

    util::TablePrinter table(
        "Figure 14: storage throughput (MB/s) = write + compaction read");
    table.SetHeader({"Slices", "SDF write", "SDF read", "SDF read%",
                     "Huawei write", "Huawei read", "Huawei read%"});

    for (uint32_t slices : {1u, 2u, 4u, 8u, 16u, 32u}) {
        std::vector<std::string> row{util::TablePrinter::Int(slices)};
        for (DeviceKind kind :
             {DeviceKind::kBaiduSdf, DeviceKind::kHuaweiGen3}) {
            kv::SliceConfig scfg;
            scfg.compaction_trigger = 4;
            bench::KvTestbed bed(kind, slices, slices, 0.10, scfg);
            workload::KvRunConfig run;
            run.warmup = util::SecToNs(1.0);
            run.duration = util::SecToNs(6.0);
            const auto r = workload::RunKvWrites(
                bed.sim(), bed.net(), bed.SlicePtrs(), 100 * util::kKiB,
                util::kMiB, run);
            const double total = r.device_write_mbps + r.device_read_mbps;
            row.push_back(util::TablePrinter::Num(r.device_write_mbps, 0));
            row.push_back(util::TablePrinter::Num(r.device_read_mbps, 0));
            row.push_back(util::TablePrinter::Num(
                total > 0 ? 100.0 * r.device_read_mbps / total : 0.0, 0) +
                "%");
        }
        table.AddRow(std::move(row));
    }

    table.Print();
    std::printf("Paper: SDF peaks ~1 GB/s total at >= 16 slices; the read\n"
                "(compaction) share shrinks from 16 to 32 slices as client\n"
                "writes take priority. Huawei is high at 1-2 slices but\n"
                "flat after, with compaction share < 15 %% at 32 slices.\n");
    bench::GlobalObs().AddMeta("experiment", "fig14_write_compaction");
    return bench::GlobalObs().Export();
}
