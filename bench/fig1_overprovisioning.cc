/**
 * @file
 * Figure 1: random 4 KB write throughput of the low-end SSD (Intel 320)
 * as a function of the over-provisioning ratio {0 %, 7 %, 25 %, 50 %}.
 *
 * Paper shape: ~2 MB/s at 0 %, a steep rise to ~8 MB/s at 7 %, then a
 * flattening curve (~9.7 at 25 %, ~11.5 at 50 %) — GC write amplification
 * explodes as spare space vanishes.
 *
 * Setup: the device starts from a fragmented steady-state layout
 * (PreconditionFillRandom) — the state a long random-write history leaves
 * behind — then serves uniform random 4 KB writes. The device is
 * capacity-scaled with a reduced erase-block page count so each point
 * runs in seconds; GC behaviour depends on the spare-space *fraction*,
 * which is preserved (see EXPERIMENTS.md).
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble(
        "Figure 1 — random-write throughput vs over-provisioning",
        "Figure 1 (Intel 320, 4 KB random writes)");

    util::TablePrinter table("Figure 1: throughput vs over-provisioning");
    table.SetHeader({"OP ratio", "Throughput (MB/s)", "Write amp",
                     "GC erases", "vs 0% OP"});

    double baseline = 0.0;
    for (double op : {0.0, 0.07, 0.25, 0.50}) {
        ssd::ConventionalSsdConfig cfg = ssd::Intel320Config(1.0);
        cfg.op_ratio = op;
        // Tractable geometry: small enough that the warmup overwrites the
        // device several times (true GC steady state), with the per-channel
        // spare-space *fraction* — what GC behaviour depends on — kept
        // small as on the real device.
        cfg.flash.geometry.channels = 4;
        cfg.flash.geometry.blocks_per_plane = 120;
        cfg.flash.geometry.pages_per_block = 32;
        cfg.gc_low_watermark = 3;
        cfg.gc_high_watermark = 5;
        cfg.dram_cache_bytes = 8 * util::kMiB;

        sim::Simulator sim;

        bench::BindObs(sim);
        ssd::ConventionalSsd device(sim, cfg);
        host::IoStack stack(sim, host::KernelIoStackSpec());
        device.PreconditionFillRandom(1.0);

        const uint32_t page = cfg.flash.geometry.page_size;
        workload::RawRunConfig meas;
        meas.warmup = util::SecToNs(150.0);  // ~2-3 device overwrites.
        meas.duration = util::SecToNs(40.0);
        const auto result = workload::RunConvWrites(
            sim, device, stack, 32, page, workload::Pattern::kRandom, meas);

        if (op == 0.0) baseline = result.mbps;
        table.AddRow({util::TablePrinter::Num(op * 100, 0) + "%",
                      util::TablePrinter::Num(result.mbps, 1),
                      util::TablePrinter::Num(
                          device.stats().WriteAmplification(), 2),
                      util::TablePrinter::Int(static_cast<int64_t>(
                          device.stats().gc_erases)),
                      "+" + util::TablePrinter::Num(
                                100.0 * (result.mbps / baseline - 1.0), 0) +
                          "%"});
    }

    table.Print();
    std::printf("Paper: ~2 (0%%), ~8 (7%%), ~9.7 (25%%), ~11.5 (50%%) MB/s;\n"
                "25%% OP improves ~21%% over 7%%, and >400%% over 0%%.\n");
    bench::GlobalObs().AddMeta("experiment", "fig1_overprovisioning");
    return bench::GlobalObs().Export();
}
