/**
 * @file
 * Figure 7: SDF throughput for sequential 8 MB reads (a) and erase+write
 * cycles (b) as the number of concurrently driven channels grows from 4
 * to 44 — throughput must scale linearly until the PCIe limit (reads) or
 * the flash raw write bandwidth is reached.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Figure 7 — throughput vs active channel count",
                         "Figure 7(a) reads, 7(b) writes");

    util::TablePrinter table("Figure 7: SDF channel scaling (MB/s)");
    table.SetHeader({"Channels", "Seq read 8MB", "Write 8MB (erase+write)",
                     "Read MB/s per ch", "Write MB/s per ch"});

    for (uint32_t channels : {4u, 8u, 12u, 16u, 20u, 24u, 28u, 32u, 36u, 40u,
                              44u}) {
        double read_mbps = 0, write_mbps = 0;
        {
            sim::Simulator sim;
            bench::BindObs(sim);
            core::SdfDevice device(sim, core::BaiduSdfConfig(0.04));
            host::IoStack stack(sim, host::SdfUserStackSpec());
            workload::PreconditionSdf(device);
            workload::RawRunConfig run;
            run.warmup = util::SecToNs(1.0);
            run.duration = util::SecToNs(5.0);
            read_mbps = workload::RunSdfSequentialReads(sim, device, stack,
                                                        channels,
                                                        8 * util::kMiB, run)
                            .mbps;
        }
        {
            sim::Simulator sim;
            bench::BindObs(sim);
            core::SdfDevice device(sim, core::BaiduSdfConfig(0.04));
            host::IoStack stack(sim, host::SdfUserStackSpec());
            workload::PreconditionSdf(device);
            workload::RawRunConfig run;
            run.warmup = util::MsToNs(500);
            run.duration = util::SecToNs(2.0);
            write_mbps =
                workload::RunSdfWrites(sim, device, stack, channels, run).mbps;
        }
        table.AddRow({util::TablePrinter::Int(channels),
                      util::TablePrinter::Num(read_mbps, 0),
                      util::TablePrinter::Num(write_mbps, 0),
                      util::TablePrinter::Num(read_mbps / channels, 1),
                      util::TablePrinter::Num(write_mbps / channels, 1)});
    }

    table.Print();
    std::printf("Paper: linear scaling; reads saturate PCIe (~1.59 GB/s)\n"
                "near 44 channels, writes scale to ~0.96 GB/s.\n");
    bench::GlobalObs().AddMeta("experiment", "fig7_channel_scaling");
    return bench::GlobalObs().Export();
}
