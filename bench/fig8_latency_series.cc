/**
 * @file
 * Figure 8: per-request write latency series on nearly-full devices.
 *
 *  - Huawei Gen3, 8 MB writes: wild variation (paper: 7-650 ms, avg 73 ms)
 *    from write-back caching vs GC bursts.
 *  - Huawei Gen3, 352 MB writes (8 MB per channel): variance narrows to
 *    ~25 % of a much larger mean (paper: 2.94 s).
 *  - Baidu SDF, explicit 8 MB erase+write per channel: flat ~383 ms.
 */
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

void
PrintSeries(const char *name, const util::LatencyRecorder &lat, int max_print)
{
    std::printf("%s — first %d request latencies (ms):\n  ", name, max_print);
    const auto &series = lat.series();
    const int n = std::min<int>(max_print, static_cast<int>(series.size()));
    for (int i = 0; i < n; ++i) {
        std::printf("%.0f ", util::NsToMs(series[i]));
        if ((i + 1) % 20 == 0) std::printf("\n  ");
    }
    std::printf("\n");
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Figure 8 — write latency predictability",
                         "Figure 8 (200 writes, devices almost full)");

    util::TablePrinter table("Figure 8: write latency statistics (ms)");
    table.SetHeader({"Device / request", "n", "mean", "min", "max", "stddev",
                     "stddev/mean"});

    workload::RawRunConfig run;
    run.warmup = util::SecToNs(2.0);
    run.duration = util::SecToNs(25.0);

    // (a) Huawei Gen3, 8 MB writes on a fragmented, almost-full device.
    util::LatencyRecorder huawei8(true);
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        ssd::ConventionalSsd device(sim, ssd::HuaweiGen3Config(0.04));
        host::IoStack stack(sim, host::KernelIoStackSpec());
        device.PreconditionFillRandom(1.0);
        auto r = workload::RunConvWrites(sim, device, stack, 2,
                                         8 * util::kMiB,
                                         workload::Pattern::kRandom, run);
        huawei8 = std::move(r.latencies);
    }

    // (b) Huawei Gen3, 352 MB writes (8 MB per channel's worth).
    util::LatencyRecorder huawei352(true);
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        ssd::ConventionalSsd device(sim, ssd::HuaweiGen3Config(0.04));
        host::IoStack stack(sim, host::KernelIoStackSpec());
        device.PreconditionFillRandom(1.0);
        workload::RawRunConfig long_run = run;
        long_run.warmup = util::SecToNs(6.0);
        long_run.duration = util::SecToNs(150.0);
        auto r = workload::RunConvWrites(sim, device, stack, 2,
                                         352 * util::kMiB,
                                         workload::Pattern::kRandom, long_run);
        huawei352 = std::move(r.latencies);
    }

    // (c) Baidu SDF: explicit erase + 8 MB write per channel.
    util::LatencyRecorder sdf8(true);
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        core::SdfDevice device(sim, core::BaiduSdfConfig(0.04));
        host::IoStack stack(sim, host::SdfUserStackSpec());
        workload::PreconditionSdf(device);
        auto r = workload::RunSdfWrites(sim, device, stack, 44, run);
        sdf8 = std::move(r.latencies);
    }

    auto add = [&table](const char *name, const util::LatencyRecorder &l) {
        table.AddRow({name, util::TablePrinter::Int(static_cast<int64_t>(
                                l.count())),
                      util::TablePrinter::Num(l.MeanMs(), 1),
                      util::TablePrinter::Num(l.MinMs(), 1),
                      util::TablePrinter::Num(l.MaxMs(), 1),
                      util::TablePrinter::Num(l.StdDevMs(), 1),
                      util::TablePrinter::Num(
                          l.StdDevMs() / std::max(l.MeanMs(), 1e-9), 3)});
    };
    add("Huawei Gen3, 8 MB", huawei8);
    add("Huawei Gen3, 352 MB", huawei352);
    add("Baidu SDF, 8 MB erase+write", sdf8);
    table.Print();

    PrintSeries("Huawei Gen3 8 MB", huawei8, 60);
    PrintSeries("Baidu SDF 8 MB erase+write", sdf8, 60);

    std::printf("\nPaper: Huawei 8 MB varies 7-650 ms (avg 73 ms); Huawei\n"
                "352 MB has stddev ~25%% of a 2.94 s mean; SDF is flat at\n"
                "~383 ms with little variation.\n");
    bench::GlobalObs().AddMeta("experiment", "fig8_latency_series");
    return bench::GlobalObs().Export();
}
