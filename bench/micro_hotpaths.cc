/**
 * @file
 * google-benchmark microbenchmarks for the hot paths of the simulator and
 * the library algorithms: event queue throughput, FTL map operations, GC
 * victim selection, BCH encode/decode, the compaction merge kernel, and
 * the striping address math.
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "controller/bch.h"
#include "ftl/page_map.h"
#include "ftl/striping.h"
#include "ftl/wear_leveler.h"
#include "kv/patch.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace sdf {
namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        int fired = 0;
        for (int i = 0; i < batch; ++i) {
            sim.Schedule(i % 1000, [&fired]() { ++fired; });
        }
        sim.Run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_PageMapUpdate(benchmark::State &state)
{
    ftl::PageMap map(1 << 16, 1 << 17, 256);
    util::Rng rng(1);
    uint32_t ppn = 0;
    for (auto _ : state) {
        const auto lpn = static_cast<uint32_t>(rng.NextBelow(1 << 16));
        map.Update(lpn, ppn);
        ppn = (ppn + 1) % (1 << 17);
        // Keep the target physical page free.
        if (map.ReverseLookup(ppn) != ftl::kUnmappedPage) {
            map.Invalidate(map.ReverseLookup(ppn));
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageMapUpdate);

void
BM_GreedyVictimSelection(benchmark::State &state)
{
    const auto blocks = static_cast<uint32_t>(state.range(0));
    ftl::PageMap map(blocks * 128, blocks * 256, 256);
    util::Rng rng(2);
    std::vector<uint32_t> candidates;
    for (uint32_t b = 0; b < blocks; ++b) candidates.push_back(b);
    // Distinct physical pages, interleaved over blocks.
    for (uint32_t lpn = 0; lpn < blocks * 128; ++lpn) {
        map.Update(lpn, lpn * 2 + static_cast<uint32_t>(rng.NextBelow(2)));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(ftl::PickGreedyVictim(map, candidates));
    }
    state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_GreedyVictimSelection)->Arg(256)->Arg(2048);

void
BM_WearLevelerChurn(benchmark::State &state)
{
    ftl::DynamicWearLeveler wl;
    for (uint32_t b = 0; b < 2048; ++b) wl.Release(b, 0);
    uint32_t ec = 0;
    for (auto _ : state) {
        const uint32_t b = wl.Allocate();
        wl.Release(b, ++ec);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WearLevelerChurn);

void
BM_BchEncode(benchmark::State &state)
{
    controller::BchCodec code(10, 4);
    util::Rng rng(3);
    std::vector<uint8_t> msg(code.k());
    for (auto &b : msg) b = static_cast<uint8_t>(rng.NextBelow(2));
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.Encode(msg));
    }
    state.SetItemsProcessed(state.iterations() * code.k());
}
BENCHMARK(BM_BchEncode);

void
BM_BchDecodeWithErrors(benchmark::State &state)
{
    controller::BchCodec code(10, 4);
    util::Rng rng(4);
    std::vector<uint8_t> msg(code.k());
    for (auto &b : msg) b = static_cast<uint8_t>(rng.NextBelow(2));
    const auto clean = code.Encode(msg);
    for (auto _ : state) {
        auto cw = clean;
        for (int e = 0; e < 3; ++e) cw[rng.NextBelow(code.n())] ^= 1;
        benchmark::DoNotOptimize(code.Decode(cw));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BchDecodeWithErrors);

void
BM_CompactionMerge(benchmark::State &state)
{
    const auto runs = static_cast<int>(state.range(0));
    util::Rng rng(5);
    std::vector<kv::PatchMeta> metas;
    for (int r = 0; r < runs; ++r) {
        std::vector<kv::KvItem> items;
        for (int i = 0; i < 64; ++i) {
            items.push_back(kv::KvItem{rng.NextBelow(100000), 100 * 1024,
                                       nullptr});
        }
        metas.push_back(kv::PatchMeta::Build(static_cast<uint64_t>(r),
                                             static_cast<uint64_t>(r), items,
                                             64ULL * 100 * 1024));
    }
    std::vector<const kv::PatchMeta *> inputs;
    for (const auto &m : metas) inputs.push_back(&m);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kv::MergeEntries(inputs, 8 * 1024 * 1024));
    }
    state.SetItemsProcessed(state.iterations() * runs * 64);
}
BENCHMARK(BM_CompactionMerge)->Arg(4)->Arg(16);

void
BM_StripingSplit(benchmark::State &state)
{
    ftl::StripingLayout layout(44, 8192);
    util::Rng rng(6);
    for (auto _ : state) {
        const uint64_t off = rng.NextBelow(1ULL << 37) / 8192 * 8192;
        benchmark::DoNotOptimize(layout.Split(off, 512 * 1024));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StripingSplit);

}  // namespace
}  // namespace sdf

BENCHMARK_MAIN();
