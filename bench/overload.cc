/**
 * @file
 * Overload control and fail-slow tolerance (web-scale serving model, §2).
 *
 * The paper's setting is open-loop internet traffic: arrivals do not slow
 * down because the system is busy. This bench drives that regime through
 * the async client front door (bounded windows, coalescing, hedged reads)
 * against a cluster with server-side admission control, deadline
 * propagation and a fail-slow circuit breaker.
 *
 * Phase A — storm sweep: the same 4-node R=2 cluster serves 0.5x, 1x and
 * 2x of its measured capacity. Degradation must be graceful: goodput
 * plateaus instead of collapsing, every request not served gets a typed
 * kOverloaded/kDeadlineExceeded outcome (issued == completed, no silent
 * drops), and every acknowledged write survives a consistency audit.
 *
 * Phase B — fail-slow reads: one node serves 6x slower for the middle
 * half of the run. With the breaker disabled (to isolate the client-side
 * defense), hedged reads must measurably cut read p99 versus unhedged;
 * with the full stack (breaker + hedge) the tail should shrink further.
 * Exits nonzero if hedging does not beat unhedged, or any acked write is
 * lost.
 */
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "client/kv_client.h"
#include "cluster/cluster.h"
#include "fault/fault.h"
#include "util/assert.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

constexpr double kScale = 0.02;
constexpr uint32_t kNodes = 4;
constexpr uint32_t kReplication = 2;
constexpr uint32_t kSlicesPerNode = 4;
constexpr uint32_t kPreloadKeys = 200;
constexpr uint32_t kValueBytes = 4 * util::kKiB;
constexpr double kBaseRate = 110000.0;  // ~cluster capacity, ops/s.

cluster::ClusterConfig
MakeConfig(bool breaker)
{
    cluster::ClusterConfig cc;
    cc.nodes = kNodes;
    cc.replication = kReplication;
    cc.node.kv.stack.backend = testbed::Backend::kBaiduSdf;
    cc.node.kv.stack.capacity_scale = kScale;
    cc.node.kv.store.slice_count = kSlicesPerNode;
    // Sized so the worst in-system wait (client queue + window + server
    // admission backlog) stays under the op deadline: work we admit can
    // still finish in time, and the overflow is shed fast with a typed
    // kOverloaded instead of timing out after burning server resources.
    cc.node.admission_cap = 32;
    cc.breaker.enabled = breaker;
    return cc;
}

std::vector<uint64_t>
Preload(sim::Simulator &sim, cluster::Cluster &cl)
{
    std::vector<uint64_t> keys;
    uint64_t acked = 0;
    for (uint32_t k = 0; k < kPreloadKeys; ++k) {
        keys.push_back(k + 1);
        cl.router().Put(k + 1, kValueBytes,
                        [&acked](bool ok) { acked += ok ? 1 : 0; });
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();
    SDF_CHECK_MSG(acked == kPreloadKeys, "cluster preload failed");
    return keys;
}

/** Audit every acked write back through the router; @return keys lost. */
uint64_t
AuditAckedWrites(sim::Simulator &sim, cluster::Cluster &cl,
                 const std::vector<uint64_t> &acked)
{
    uint64_t lost = 0;
    size_t next = 0;
    std::function<void()> step = [&]() {
        if (next >= acked.size()) return;
        const uint64_t key = acked[next++];
        cl.router().Get(key, [&](const kv::GetResult &res) {
            if (!res.ok || !res.found) ++lost;
            step();
        });
    };
    for (uint32_t s = 0; s < 8; ++s) step();
    sim.Run();
    return lost;
}

struct RunOutcome
{
    workload::OpenRunResult r;
    client::ClientStats cs;
    client::HedgeStats hs;
    uint64_t admission_shed = 0;
    uint64_t breaker_trips = 0;
    uint64_t lost = 0;
};

RunOutcome
RunOnce(const std::string &label, double rate, double storm,
        int64_t fail_slow_node, double fail_slow_factor, bool hedge,
        bool breaker)
{
    sim::Simulator sim;
    bench::BindObs(sim);
    cluster::Cluster cl(sim, MakeConfig(breaker));
    const auto keys = Preload(sim, cl);

    const util::TimeNs dur = util::SecToNs(0.4);
    const util::TimeNs t0 = sim.Now();

    // Fail-slow through the replayable fault plan: the injector's sink
    // delivers the multiplier and restores health when the window ends.
    std::unique_ptr<fault::FaultInjector> injector;
    if (fail_slow_node >= 0) {
        fault::FaultEvent e;
        e.when = t0 + dur / 4;
        e.kind = fault::FaultKind::kFailSlow;
        e.device = static_cast<uint32_t>(fail_slow_node);
        e.duration = dur / 2;
        e.magnitude = fail_slow_factor;
        injector = std::make_unique<fault::FaultInjector>(
            sim, cl.SdfDevices(), fault::FaultPlan({e}),
            [&cl](uint32_t node, double m) {
                if (node < cl.node_count()) cl.node(node).SetFailSlow(m);
            });
    }

    client::KvClientConfig kc;
    kc.window_per_node = 16;
    kc.queue_cap = 64;
    kc.deadline = util::MsToNs(10.0);
    kc.hedge_reads = hedge;
    client::KvClient client(sim, cl.router(), kc);

    workload::OpenRunConfig oc;
    oc.arrival_rate = rate;
    oc.read_fraction = 0.9;
    oc.value_bytes = kValueBytes;
    oc.duration = dur;
    oc.storm_factor = storm;
    oc.storm_start = dur / 3;
    oc.storm_end = 2 * dur / 3;

    // Each configuration gets its own labelled series segment, so a
    // --stats-series export shows every run's storm timeline separately.
    bench::GlobalObs().StartSeries(sim, label, dur);

    RunOutcome out;
    out.r = workload::RunOpenLoad(sim, client.Service(), keys, oc);
    out.cs = client.stats();
    out.hs = client.hedge_stats();
    for (uint32_t n = 0; n < cl.node_count(); ++n) {
        out.admission_shed += cl.node(n).admission().shed_overload;
    }
    out.breaker_trips = cl.router().breaker().stats().trips;
    out.lost = AuditAckedWrites(sim, cl, out.r.acked_writes);
    return out;
}

int
RunStormSweep(bench::ObsCli &obs)
{
    std::printf("-- phase A: storm sweep (4 nodes, R=2, open loop, "
                "2x storm mid-run) --\n");
    util::TablePrinter table("offered vs goodput, 90%% reads, 4 KiB values");
    table.SetHeader({"offered ops/s", "goodput ops/s", "shed overl.",
                     "shed deadl.", "p50 ms", "p99 ms", "lost"});
    double goodput_1x = 0, goodput_2x = 0;
    uint64_t lost_total = 0;
    bool all_typed = true;
    for (double mult : {0.5, 1.0, 2.0}) {
        const RunOutcome out =
            RunOnce("storm.x" + util::TablePrinter::Num(mult, 1),
                    kBaseRate * mult, 2.0, -1, 1.0, true, true);
        table.AddRow({util::TablePrinter::Num(out.r.offered_ops_per_sec, 0),
                      util::TablePrinter::Num(out.r.goodput_ops_per_sec, 0),
                      std::to_string(out.r.shed_overloaded),
                      std::to_string(out.r.shed_deadline),
                      util::TablePrinter::Num(out.r.p50_ms, 2),
                      util::TablePrinter::Num(out.r.p99_ms, 2),
                      std::to_string(out.lost)});
        // Silent drops would show as issued != completed: an op neither
        // served nor given a typed refusal.
        if (out.r.issued != out.r.completed) all_typed = false;
        if (mult == 1.0) goodput_1x = out.r.goodput_ops_per_sec;
        if (mult == 2.0) goodput_2x = out.r.goodput_ops_per_sec;
        lost_total += out.lost;
        const std::string tag =
            "storm.x" + util::TablePrinter::Num(mult, 1);
        obs.AddDerived(tag + ".goodput_ops_per_sec",
                       out.r.goodput_ops_per_sec);
        obs.AddDerived(tag + ".shed_overloaded",
                       static_cast<double>(out.r.shed_overloaded));
        obs.AddDerived(tag + ".p99_ms", out.r.p99_ms);
    }
    table.Print();

    // Graceful degradation: doubling offered load past capacity must not
    // collapse goodput (plateau, not cliff).
    const bool plateau = goodput_2x >= 0.7 * goodput_1x;
    obs.AddDerived("storm.plateau", plateau ? 1.0 : 0.0);
    std::printf("goodput at 2x capacity: %.0f ops/s (%.0f%% of 1x) — %s\n",
                goodput_2x, 100.0 * goodput_2x / goodput_1x,
                plateau ? "plateaus" : "COLLAPSED");
    std::printf("%s\n", all_typed
                            ? "every arrival completed or was shed "
                              "with a typed error"
                            : "FAIL: silent drops (issued != completed)");
    std::printf("%s\n\n", lost_total == 0
                              ? "PASS: zero acked writes lost under storm"
                              : "FAIL: acked writes lost under storm");
    return plateau && all_typed && lost_total == 0 ? 0 : 1;
}

int
RunFailSlow(bench::ObsCli &obs)
{
    std::printf("-- phase B: one fail-slow node (6x slower, middle half "
                "of the run) --\n");
    util::TablePrinter table("read tail with node 1 fail-slow, light load");
    table.SetHeader({"config", "read p99 ms", "p99.9 ms", "hedges",
                     "hedge wins", "breaker trips", "lost"});
    // Light load so the tail comes from the slow node, not queueing —
    // fail-slow is a latency fault, and conflating it with saturation
    // would let the admission path take credit for the hedge's work.
    const double rate = 25000.0;
    const RunOutcome unhedged =
        RunOnce("failslow.unhedged", rate, 1.0, 1, 6.0, false, false);
    const RunOutcome hedged =
        RunOnce("failslow.hedged", rate, 1.0, 1, 6.0, true, false);
    const RunOutcome full =
        RunOnce("failslow.hedge_breaker", rate, 1.0, 1, 6.0, true, true);
    auto add = [&table](const char *name, const RunOutcome &o) {
        table.AddRow({name, util::TablePrinter::Num(o.r.read_p99_ms, 2),
                      util::TablePrinter::Num(o.r.p999_ms, 2),
                      std::to_string(o.hs.launched),
                      std::to_string(o.hs.wins),
                      std::to_string(o.breaker_trips),
                      std::to_string(o.lost)});
    };
    add("unhedged", unhedged);
    add("hedged", hedged);
    add("hedged+breaker", full);
    table.Print();

    const bool hedge_wins = hedged.r.read_p99_ms < unhedged.r.read_p99_ms;
    const uint64_t lost =
        unhedged.lost + hedged.lost + full.lost;
    obs.AddDerived("failslow.unhedged_read_p99_ms", unhedged.r.read_p99_ms);
    obs.AddDerived("failslow.hedged_read_p99_ms", hedged.r.read_p99_ms);
    obs.AddDerived("failslow.full_read_p99_ms", full.r.read_p99_ms);
    obs.AddDerived("failslow.hedge_wins",
                   static_cast<double>(hedged.hs.wins));
    std::printf("hedging cut read p99 %.2f -> %.2f ms (%.0f%%); "
                "breaker+hedge: %.2f ms\n",
                unhedged.r.read_p99_ms, hedged.r.read_p99_ms,
                100.0 * (unhedged.r.read_p99_ms - hedged.r.read_p99_ms) /
                    unhedged.r.read_p99_ms,
                full.r.read_p99_ms);
    std::printf("%s\n\n",
                hedge_wins && lost == 0
                    ? "PASS: hedged reads beat unhedged with zero loss"
                    : "FAIL: hedging did not beat unhedged (or data lost)");
    return hedge_wins && lost == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    sdf::bench::ObsCli &obs = sdf::bench::GlobalObs();
    obs.ParseAndStrip(argc, argv);
    sdf::bench::PrintPreamble("overload control + fail-slow tolerance",
                              "open-loop serving model of §2");
    int rc = sdf::RunStormSweep(obs);
    rc |= sdf::RunFailSlow(obs);
    obs.AddMeta("experiment", "overload");
    if (const int orc = obs.Export(); orc != 0) return orc;
    return rc;
}
