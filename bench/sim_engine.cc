/**
 * @file
 * Event-engine microbenchmark: wall-clock events/sec for the calendar
 * queue vs the reference heap engine, over the four load shapes that
 * dominate real runs:
 *
 *  - mixed_schedule: self-rescheduling actors with delays spanning the
 *    current bucket, the wheel, and the overflow heap;
 *  - cancel_heavy: the hedge-timer pattern — most scheduled events are
 *    cancelled before they fire;
 *  - self_post: completion-ring chains (the batched-completion seam);
 *  - cluster_replay: FifoResource pipelines shaped like the cluster's
 *    NIC -> CPU -> worker RPC chains.
 *
 * Prints a comparison table; --json=<path> additionally writes the raw
 * numbers for scripts/bench_to_json.sh to embed in the PR snapshot.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/fifo_resource.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

using sim::EngineKind;
using sim::Simulator;
using util::TimeNs;

/** Wall-clock seconds consumed by @p fn. */
template <typename Fn>
double
Timed(Fn &&fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Self-rescheduling actor: fires, draws a new delay, reschedules. */
struct MixedActor
{
    Simulator *sim;
    util::Rng *rng;
    uint64_t *remaining;

    void
    operator()() const
    {
        if (*remaining == 0) return;
        --*remaining;
        // 1/16 of delays land past the calendar window (overflow heap);
        // the rest spread over the wheel and the current bucket.
        const uint64_t draw = rng->NextBelow(16);
        const TimeNs d =
            draw == 0 ? static_cast<TimeNs>(100000000 + rng->NextBelow(100000000))
                      : static_cast<TimeNs>(rng->NextBelow(2000000));
        sim->Schedule(d, MixedActor{sim, rng, remaining});
    }
};

double
MixedSchedule(EngineKind kind, uint64_t events)
{
    Simulator sim(kind);
    util::Rng rng(42);
    uint64_t remaining = events;
    const double secs = Timed([&]() {
        for (int i = 0; i < 16384; ++i) {
            MixedActor{&sim, &rng, &remaining}();
        }
        sim.Run();
    });
    return static_cast<double>(sim.events_processed()) / secs;
}

/** Hedge-timer pattern: schedule four, cancel three, fire one. */
struct CancelActor
{
    Simulator *sim;
    util::Rng *rng;
    uint64_t *remaining;

    void
    operator()() const
    {
        if (*remaining == 0) return;
        --*remaining;
        sim::EventId doomed[3];
        for (auto &id : doomed) {
            id = sim->Schedule(
                static_cast<TimeNs>(1000 + rng->NextBelow(1000000)),
                []() {});
        }
        sim->Schedule(static_cast<TimeNs>(rng->NextBelow(100000)),
                      CancelActor{sim, rng, remaining});
        for (const auto id : doomed) sim->Cancel(id);
    }
};

double
CancelHeavy(EngineKind kind, uint64_t events)
{
    Simulator sim(kind);
    util::Rng rng(43);
    uint64_t remaining = events;
    const double secs = Timed([&]() {
        for (int i = 0; i < 4096; ++i) {
            CancelActor{&sim, &rng, &remaining}();
        }
        sim.Run();
    });
    return static_cast<double>(sim.events_processed()) / secs;
}

/** Completion-ring chain: each posted callback posts its successor. */
struct PostActor
{
    Simulator *sim;
    uint64_t *remaining;

    void
    operator()() const
    {
        if (*remaining == 0) return;
        --*remaining;
        sim->Post(PostActor{sim, remaining});
    }
};

double
SelfPost(EngineKind kind, uint64_t events)
{
    Simulator sim(kind);
    uint64_t remaining = events;
    const double secs = Timed([&]() {
        for (int i = 0; i < 64; ++i) {
            PostActor{&sim, &remaining}();
        }
        sim.Run();
    });
    return static_cast<double>(sim.events_processed()) / secs;
}

/** Closed-loop RPC chain through NIC -> CPU -> worker FIFOs. */
struct ChainActor
{
    Simulator *sim;
    sim::FifoResource *nic;
    sim::FifoResource *cpu;
    sim::FifoResource *worker;
    uint64_t *remaining;

    void
    operator()() const
    {
        if (*remaining == 0) return;
        --*remaining;
        const ChainActor next = *this;
        nic->Submit(500, [next]() {
            next.cpu->Submit(2000, [next]() {
                next.worker->Submit(1500, [next]() { next(); });
            });
        });
    }
};

double
ClusterReplay(EngineKind kind, uint64_t chains)
{
    Simulator sim(kind);
    sim::FifoResource nic(sim);
    sim::FifoResource cpu(sim);
    sim::FifoResource worker(sim);
    uint64_t remaining = chains;
    const double secs = Timed([&]() {
        for (int i = 0; i < 256; ++i) {
            ChainActor{&sim, &nic, &cpu, &worker, &remaining}();
        }
        sim.Run();
    });
    return static_cast<double>(sim.events_processed()) / secs;
}

struct Row
{
    const char *name;
    double heap_eps;
    double calendar_eps;
};

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    using namespace sdf;

    std::string json_path;
    uint64_t scale = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            scale = 8;  // CI-friendly: ~1/8 of the default event budget.
        }
    }

    const uint64_t kMixed = 4000000 / scale;
    const uint64_t kCancel = 1000000 / scale;
    const uint64_t kPost = 8000000 / scale;
    const uint64_t kChains = 1000000 / scale;

    std::printf("sim_engine: calendar queue vs reference heap\n\n");

    std::vector<Row> rows;
    // Warm each scenario once at 1/8 budget so page faults and slab
    // growth don't land inside the measured pass.
    (void)MixedSchedule(EngineKind::kHeap, kMixed / 8);
    (void)MixedSchedule(EngineKind::kCalendar, kMixed / 8);
    rows.push_back(Row{"mixed_schedule",
                       MixedSchedule(EngineKind::kHeap, kMixed),
                       MixedSchedule(EngineKind::kCalendar, kMixed)});
    rows.push_back(Row{"cancel_heavy",
                       CancelHeavy(EngineKind::kHeap, kCancel),
                       CancelHeavy(EngineKind::kCalendar, kCancel)});
    rows.push_back(Row{"self_post", SelfPost(EngineKind::kHeap, kPost),
                       SelfPost(EngineKind::kCalendar, kPost)});
    rows.push_back(Row{"cluster_replay",
                       ClusterReplay(EngineKind::kHeap, kChains),
                       ClusterReplay(EngineKind::kCalendar, kChains)});

    util::TablePrinter table("events/sec (wall clock)");
    table.SetHeader({"Scenario", "heap M/s", "calendar M/s", "speedup"});
    for (const Row &r : rows) {
        table.AddRow({r.name, util::TablePrinter::Num(r.heap_eps / 1e6, 2),
                      util::TablePrinter::Num(r.calendar_eps / 1e6, 2),
                      util::TablePrinter::Num(r.calendar_eps / r.heap_eps, 2) +
                          "x"});
    }
    table.Print();

    if (!json_path.empty()) {
        FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n \"scenarios\": {\n");
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(f,
                         "  \"%s\": {\"heap_events_per_sec\": %.0f, "
                         "\"calendar_events_per_sec\": %.0f, "
                         "\"speedup\": %.3f}%s\n",
                         r.name, r.heap_eps, r.calendar_eps,
                         r.calendar_eps / r.heap_eps,
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, " }\n}\n");
        std::fclose(f);
    }
    return 0;
}
