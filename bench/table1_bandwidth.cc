/**
 * @file
 * Table 1: specifications and measured vs raw bandwidths of the three
 * commodity SSD classes (Intel 320 low-end, Huawei Gen3 mid-range,
 * Memblaze Q520 high-end), each with ~20-25 % over-provisioning, driven
 * with sequential erase-block-unit reads and writes.
 *
 * Paper values: measured read 73-81 % of raw; measured write 41-51 %.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

struct DeviceRow
{
    const char *name;
    ssd::ConventionalSsdConfig config;
    double raw_read_mbps;   // From Table 1.
    double raw_write_mbps;  // From Table 1.
    /**
     * Fragmentation level left by the (unspecified) preconditioning of
     * the paper's measurement; a free parameter per device chosen so the
     * modeled GC produces the paper's write utilization — the mechanism
     * (fragmentation -> GC -> ~halved writes) is what is reproduced.
     */
    double precondition_fraction;
};

void
RunDevice(util::TablePrinter &table, const DeviceRow &row)
{
    // Sequential reads in erase-block units on a preconditioned device.
    const uint64_t request = row.config.flash.geometry.BlockBytes();

    workload::RawRunConfig run;
    run.warmup = util::MsToNs(400);
    run.duration = util::SecToNs(2.0);

    double read_mbps = 0;
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        ssd::ConventionalSsd device(sim, row.config);
        host::IoStack stack(sim, host::KernelIoStackSpec());
        device.PreconditionFill(0.95);
        read_mbps = workload::RunConvReads(sim, device, stack, 32, request,
                                           workload::Pattern::kSequential,
                                           run)
                        .mbps;
    }

    double write_mbps = 0;
    double wa = 0;
    {
        // A deployed device's steady state: fragmented layout with GC
        // active, then sequential writes in erase-block units (the
        // paper's measurement procedure).
        sim::Simulator sim;
        bench::BindObs(sim);
        ssd::ConventionalSsd device(sim, row.config);
        host::IoStack stack(sim, host::KernelIoStackSpec());
        device.PreconditionFillRandom(row.precondition_fraction);
        // Measure across the first sequential pass over the fragmented
        // device: GC relaxes from random-history write amplification
        // toward WA~1 as the pass proceeds (SNIA-style conditioning).
        workload::RawRunConfig meas = run;
        meas.warmup = util::SecToNs(2.0);
        meas.duration = util::SecToNs(8.0);
        write_mbps = workload::RunConvWrites(sim, device, stack, 16, request,
                                             workload::Pattern::kSequential,
                                             meas)
                         .mbps;
        wa = device.stats().WriteAmplification();
    }

    table.AddRow({row.name,
                  util::TablePrinter::Int(static_cast<int64_t>(
                      row.config.flash.geometry.channels)),
                  util::TablePrinter::Int(static_cast<int64_t>(
                      row.config.flash.geometry.PlanesPerChannel())),
                  util::TablePrinter::Num(row.raw_read_mbps, 0) + "/" +
                      util::TablePrinter::Num(row.raw_write_mbps, 0),
                  util::TablePrinter::Num(read_mbps, 0) + "/" +
                      util::TablePrinter::Num(write_mbps, 0),
                  util::TablePrinter::Num(100 * read_mbps / row.raw_read_mbps,
                                          0) +
                      "%/" +
                      util::TablePrinter::Num(
                          100 * write_mbps / row.raw_write_mbps, 0) +
                      "%",
                  util::TablePrinter::Num(wa, 2)});
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Table 1 — commodity SSD raw vs measured bandwidth",
                         "Table 1 (measured R 73-81 %, W 41-51 % of raw)");

    util::TablePrinter table("Table 1: specifications and bandwidths");
    table.SetHeader({"SSD", "Ch", "Planes/ch", "Raw R/W (MB/s)",
                     "Measured R/W (MB/s)", "Utilization R/W", "WA"});

    const double scale = 0.04;
    // 20 % over-provisioning for this experiment, per the paper's setup.
    auto low = ssd::Intel320Config(scale);
    low.op_ratio = 0.20;
    auto mid = ssd::HuaweiGen3Config(scale);
    mid.op_ratio = 0.20;
    auto high = ssd::MemblazeQ520Config(scale);
    high.op_ratio = 0.20;

    RunDevice(table, {"Low-end (Intel 320, SATA 2.0)", low, 300, 300, 0.12});
    RunDevice(table, {"Mid-range (Huawei Gen3, PCIe x8)", mid, 1600, 950, 0.42});
    RunDevice(table, {"High-end (Memblaze Q520, PCIe x8)", high, 1600, 1500, 0.15});

    table.Print();
    std::printf("Paper: low 219/153, mid 1200/460, high 1300/620 MB/s.\n");
    bench::GlobalObs().AddMeta("experiment", "table1_bandwidth");
    return bench::GlobalObs().Export();
}
