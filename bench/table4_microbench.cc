/**
 * @file
 * Table 4: device throughput for random reads of 8 KB / 16 KB / 64 KB /
 * 8 MB and 8 MB writes on the Baidu SDF, Huawei Gen3, and Intel 320.
 *
 * SDF is driven by 44 synchronous threads (one per channel); the
 * conventional devices by one thread issuing asynchronous requests.
 * Also reports the architectural context of §3.2: PCIe limits, raw flash
 * bandwidths, and SDF's aggregate erase throughput.
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/table_printer.h"

namespace sdf {
namespace {

constexpr double kScale = 0.04;

std::vector<double>
RunSdfRow()
{
    std::vector<double> row;
    for (uint64_t req :
         {8 * util::kKiB, 16 * util::kKiB, 64 * util::kKiB, 8 * util::kMiB}) {
        sim::Simulator sim;
        bench::BindObs(sim);
        core::SdfDevice device(sim, core::BaiduSdfConfig(kScale));
        host::IoStack stack(sim, host::SdfUserStackSpec());
        workload::PreconditionSdf(device);
        workload::RawRunConfig run;
        // Large sequential reads saturate the PCIe link; a long window
        // lets the link queue reach steady state (see EXPERIMENTS.md).
        run.warmup = req >= util::kMiB ? util::SecToNs(1.5) : util::MsToNs(150);
        run.duration = req >= util::kMiB ? util::SecToNs(10.0)
                                         : util::MsToNs(600);
        row.push_back(workload::RunSdfRandomReads(sim, device, stack, 44, req,
                                                  run)
                          .mbps);
    }
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        core::SdfDevice device(sim, core::BaiduSdfConfig(kScale));
        host::IoStack stack(sim, host::SdfUserStackSpec());
        workload::PreconditionSdf(device);
        workload::RawRunConfig run;
        run.warmup = util::MsToNs(500);
        run.duration = util::SecToNs(2.0);
        row.push_back(workload::RunSdfWrites(sim, device, stack, 44, run).mbps);
    }
    return row;
}

std::vector<double>
RunConvRow(const ssd::ConventionalSsdConfig &cfg)
{
    std::vector<double> row;
    for (uint64_t req :
         {8 * util::kKiB, 16 * util::kKiB, 64 * util::kKiB, 8 * util::kMiB}) {
        sim::Simulator sim;
        bench::BindObs(sim);
        ssd::ConventionalSsd device(sim, cfg);
        host::IoStack stack(sim, host::KernelIoStackSpec());
        device.PreconditionFill(0.95);
        workload::RawRunConfig run;
        run.warmup = util::MsToNs(300);
        run.duration = util::SecToNs(1.0);
        row.push_back(workload::RunConvReads(sim, device, stack, 64, req,
                                             workload::Pattern::kRandom, run)
                          .mbps);
    }
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        ssd::ConventionalSsd device(sim, cfg);
        host::IoStack stack(sim, host::KernelIoStackSpec());
        workload::RawRunConfig run;
        run.warmup = util::MsToNs(600);
        run.duration = util::SecToNs(2.0);
        row.push_back(workload::RunConvWrites(sim, device, stack, 16,
                                              8 * util::kMiB,
                                              workload::Pattern::kSequential,
                                              run)
                          .mbps);
    }
    return row;
}

void
AddRow(util::TablePrinter &table, const char *name,
       const std::vector<double> &gbps_row)
{
    std::vector<std::string> cells{name};
    for (double mbps : gbps_row) {
        cells.push_back(util::TablePrinter::Num(mbps / 1000.0, 2));
    }
    table.AddRow(std::move(cells));
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    using namespace sdf;
    bench::GlobalObs().ParseAndStrip(argc, argv);
    bench::PrintPreamble("Table 4 — throughput by request size",
                         "Table 4 + §3.2 architectural limits");

    // Architectural context (§3.2).
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        core::SdfDevice device(sim, core::BaiduSdfConfig(kScale));
        std::printf("PCIe 1.1 x8 effective: 1.61 GB/s read, 1.40 GB/s write\n");
        std::printf("SDF raw flash: %.2f GB/s read, %.2f GB/s write\n\n",
                    device.flash().RawReadBandwidth() / 1e9,
                    device.flash().RawWriteBandwidth() / 1e9);
    }

    util::TablePrinter table("Table 4: throughput (GB/s)");
    table.SetHeader({"Device", "8KB read", "16KB read", "64KB read",
                     "8MB read", "8MB write"});
    AddRow(table, "Baidu SDF", RunSdfRow());
    AddRow(table, "Huawei Gen3", RunConvRow(ssd::HuaweiGen3Config(kScale)));
    AddRow(table, "Intel 320", RunConvRow(ssd::Intel320Config(kScale)));
    table.Print();
    std::printf("Paper:   SDF 1.23/1.42/1.51/1.59/0.96; Huawei "
                "0.92/1.02/1.15/1.20/0.67; Intel 0.17/0.20/0.22/0.22/0.13\n\n");

    // §2.3/§3.2: erase bandwidth — all channels erasing in parallel.
    {
        sim::Simulator sim;
        bench::BindObs(sim);
        core::SdfDevice device(sim, core::BaiduSdfConfig(kScale));
        workload::PreconditionSdf(device);
        int done = 0;
        const int erases = 200;
        uint64_t bytes = 0;
        for (int i = 0; i < erases; ++i) {
            const uint32_t ch = i % device.channel_count();
            const uint32_t unit =
                (i / device.channel_count()) % device.units_per_channel();
            bytes += device.unit_bytes();
            device.EraseUnit(ch, unit, [&](bool) { ++done; });
        }
        sim.Run();
        std::printf("Erase throughput: %.1f GB/s erased "
                    "(paper: ~40 GB/s; %d x 8 MB units)\n",
                    util::BandwidthMBps(bytes, sim.Now()) / 1000.0, done);
    }
    bench::GlobalObs().AddMeta("experiment", "table4_microbench");
    return bench::GlobalObs().Export();
}
