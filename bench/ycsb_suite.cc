/**
 * @file
 * YCSB-style workload suite over the cluster front door (web-scale
 * serving model, §2).
 *
 * The paper's production setting is skewed, phased internet traffic, not
 * the uniform closed loops of the device benches. This suite drives the
 * YCSB core workloads through the async client against a 4-node R=2
 * cluster:
 *
 * Phase A — profile sweep: workloads A (50/50 read/update), B (95/5),
 * C (read-only) under Zipfian skew, and E (95% range scans / 5% inserts)
 * at a scan-appropriate rate. Every run must drain (issued == completed,
 * no silent drops) and pass the acked-write consistency audit.
 *
 * Phase B — flash crowd: the storm profile spikes arrivals 3x onto a hot
 * 5% key range mid-run. SLO violations must localize to the spike phase
 * (attribution is by issue time), with clean steady/recovery phases.
 *
 * Phase C — diurnal: a four-phase rate ramp with an evening write-heavy
 * shift; per-phase issue counts must track the schedule's multipliers.
 *
 * Exits nonzero if a run fails to drain, violations smear outside the
 * storm window, or any acked write is lost.
 */
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "client/kv_client.h"
#include "cluster/cluster.h"
#include "util/assert.h"
#include "util/table_printer.h"
#include "workload/ycsb.h"

namespace sdf {
namespace {

constexpr double kScale = 0.02;
constexpr uint32_t kNodes = 4;
constexpr uint32_t kReplication = 2;
constexpr uint32_t kPreloadKeys = 400;
constexpr uint32_t kValueBytes = 4 * util::kKiB;

cluster::ClusterConfig
MakeConfig()
{
    cluster::ClusterConfig cc;
    cc.nodes = kNodes;
    cc.replication = kReplication;
    cc.node.kv.stack.backend = testbed::Backend::kBaiduSdf;
    cc.node.kv.stack.capacity_scale = kScale;
    cc.node.kv.store.slice_count = 4;
    cc.node.admission_cap = 64;
    return cc;
}

std::vector<uint64_t>
Preload(sim::Simulator &sim, cluster::Cluster &cl)
{
    std::vector<uint64_t> keys;
    uint64_t acked = 0;
    for (uint32_t k = 0; k < kPreloadKeys; ++k) {
        keys.push_back(k + 1);
        cl.router().Put(k + 1, kValueBytes,
                        [&acked](bool ok) { acked += ok ? 1 : 0; });
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();
    SDF_CHECK_MSG(acked == kPreloadKeys, "cluster preload failed");
    return keys;
}

uint64_t
AuditAckedWrites(sim::Simulator &sim, cluster::Cluster &cl,
                 const std::vector<uint64_t> &acked)
{
    uint64_t lost = 0;
    size_t next = 0;
    std::function<void()> step = [&]() {
        if (next >= acked.size()) return;
        const uint64_t key = acked[next++];
        cl.router().Get(key, [&](const kv::GetResult &res) {
            if (!res.ok || !res.found) ++lost;
            step();
        });
    };
    for (uint32_t s = 0; s < 8; ++s) step();
    sim.Run();
    return lost;
}

struct SuiteOutcome
{
    workload::YcsbResult r;
    uint64_t lost = 0;
};

SuiteOutcome
RunProfile(const std::string &profile, double rate, util::TimeNs dur,
           uint64_t seed)
{
    sim::Simulator sim;
    bench::BindObs(sim);
    cluster::Cluster cl(sim, MakeConfig());
    const auto keys = Preload(sim, cl);

    client::KvClientConfig kc;
    kc.window_per_node = 32;
    kc.queue_cap = 128;
    kc.deadline = util::MsToNs(10.0);
    client::KvClient client(sim, cl.router(), kc);

    workload::YcsbConfig base;
    base.arrival_rate = rate;
    base.duration = dur;
    base.seed = seed;
    base.value_bytes = kValueBytes;
    base.scan_limit_max = 20;
    base.first_insert_key = 1 << 20;
    base.slo = util::MsToNs(5.0);
    // One labelled series segment per schedule phase, so the storm's
    // windows separate from steady state in a --stats-series export.
    base.on_phase_start = [&sim, &profile](size_t,
                                           const workload::YcsbPhase &p,
                                           util::TimeNs, util::TimeNs d) {
        bench::GlobalObs().StartSeries(
            sim, "ycsb." + profile + "." + p.name, d);
    };
    const workload::YcsbConfig cfg = workload::YcsbProfile(profile, base);

    SuiteOutcome out;
    out.r = workload::RunYcsb(sim, client.Service(), keys, cfg);
    out.lost = AuditAckedWrites(sim, cl, out.r.acked_writes);
    return out;
}

int
RunProfileSweep(bench::ObsCli &obs)
{
    std::printf("-- phase A: YCSB profile sweep (4 nodes, R=2, Zipfian "
                "theta 0.99, 4 KiB values) --\n");
    util::TablePrinter table("profiles A/B/C at 40k ops/s, E at 500 ops/s");
    table.SetHeader({"profile", "goodput/s", "ok", "misses", "shed",
                     "scans", "p50 ms", "p99 ms"});

    const util::TimeNs dur = util::SecToNs(0.4);
    bool drained = true;
    uint64_t lost_total = 0;
    for (const std::string profile : {"a", "b", "c", "e"}) {
        // Scans touch up to scan_limit keys each and fan out to every
        // node, so E offers ~scan_limit fewer arrivals for equal work.
        const double rate = profile == "e" ? 500 : 40000;
        const SuiteOutcome out = RunProfile(profile, rate, dur, 42);
        const workload::YcsbResult &r = out.r;
        drained = drained && r.completed == r.issued;
        lost_total += out.lost;
        char p50[32], p99[32], gp[32];
        std::snprintf(p50, sizeof p50, "%.3f", r.p50_ms);
        std::snprintf(p99, sizeof p99, "%.3f", r.p99_ms);
        std::snprintf(gp, sizeof gp, "%.0f", r.goodput_ops_per_sec);
        table.AddRow(
            {profile, gp,
             std::to_string(r.ok_reads + r.ok_updates + r.ok_inserts +
                            r.ok_scans),
             std::to_string(r.misses),
             std::to_string(r.shed_overloaded + r.shed_deadline),
             std::to_string(r.ok_scans), p50, p99});
        obs.AddDerived("result." + profile + ".goodput_ops_per_sec",
                       r.goodput_ops_per_sec);
        obs.AddDerived("result." + profile + ".p99_ms", r.p99_ms);
        obs.AddDerived("result." + profile + ".slo_violations",
                       static_cast<double>(r.slo_violations));
    }
    table.Print();
    std::printf("%s\n", drained ? "PASS: every profile drained "
                                  "(issued == completed)"
                                : "FAIL: silent drops detected");
    std::printf("%s\n\n", lost_total == 0
                              ? "PASS: zero acked writes lost"
                              : "FAIL: consistency audit lost keys");
    return drained && lost_total == 0 ? 0 : 1;
}

int
RunStorm(bench::ObsCli &obs)
{
    std::printf("-- phase B: flash crowd (3x arrivals on a hot 5%% range, "
                "middle fifth of the run) --\n");
    const SuiteOutcome out =
        RunProfile("storm", 40000, util::SecToNs(0.5), 42);
    const workload::YcsbResult &r = out.r;

    util::TablePrinter table("storm phases (SLO 5 ms)");
    table.SetHeader(
        {"phase", "issued", "slo viol", "p50 ms", "p99 ms", "p99.9 ms"});
    uint64_t spike_viol = 0;
    for (const workload::YcsbPhaseResult &p : r.phases) {
        if (p.name == "spike") spike_viol = p.slo_violations;
        char p50[32], p99[32], p999[32];
        std::snprintf(p50, sizeof p50, "%.3f", p.p50_ms);
        std::snprintf(p99, sizeof p99, "%.3f", p.p99_ms);
        std::snprintf(p999, sizeof p999, "%.3f", p.p999_ms);
        table.AddRow({p.name, std::to_string(p.issued),
                      std::to_string(p.slo_violations), p50, p99, p999});
        obs.AddDerived("result.storm." + p.name + ".p99_ms", p.p99_ms);
        obs.AddDerived("result.storm." + p.name + ".slo_violations",
                       static_cast<double>(p.slo_violations));
    }
    table.Print();

    // Attribution is by issue time: if the spike hurts, the spike's
    // numbers must say so — not the run average, not its neighbors.
    const bool localized =
        r.slo_violations == 0 ||
        spike_viol * 10 >= r.slo_violations * 8;  // >= 80% in the spike.
    const bool drained = r.completed == r.issued;
    std::printf("%llu/%llu SLO violations issued inside the spike\n",
                static_cast<unsigned long long>(spike_viol),
                static_cast<unsigned long long>(r.slo_violations));
    std::printf("%s\n\n",
                localized && drained && out.lost == 0
                    ? "PASS: violations localize to the storm window, "
                      "no drops, no loss"
                    : "FAIL: violations smeared outside the storm window "
                      "(or drops/loss)");
    return localized && drained && out.lost == 0 ? 0 : 1;
}

int
RunDiurnal(bench::ObsCli &obs)
{
    std::printf("-- phase C: diurnal ramp (0.5x/1x/2x/1x, write-heavy "
                "evening) --\n");
    const SuiteOutcome out =
        RunProfile("diurnal", 40000, util::SecToNs(0.5), 42);
    const workload::YcsbResult &r = out.r;

    util::TablePrinter table("diurnal phases");
    table.SetHeader({"phase", "issued", "reads", "writes", "p99 ms"});
    for (const workload::YcsbPhaseResult &p : r.phases) {
        char p99[32];
        std::snprintf(p99, sizeof p99, "%.3f", p.p99_ms);
        table.AddRow({p.name, std::to_string(p.issued),
                      std::to_string(p.ok_reads),
                      std::to_string(p.ok_updates + p.ok_inserts), p99});
        obs.AddDerived("result.diurnal." + p.name + ".issued",
                       static_cast<double>(p.issued));
    }
    table.Print();

    // The schedule is visible in the arrivals: noon (2x) issues about
    // twice morning (1x), morning about twice night (0.5x).
    const double night = static_cast<double>(r.phases[0].issued);
    const double morning = static_cast<double>(r.phases[1].issued);
    const double noon = static_cast<double>(r.phases[2].issued);
    const bool ramped = morning > 1.6 * night && morning < 2.4 * night &&
                        noon > 1.6 * morning && noon < 2.4 * morning;
    // The evening shift really writes: more acked writes than any other
    // phase despite equal arrival rate to morning.
    const uint64_t evening_writes =
        r.phases[3].ok_updates + r.phases[3].ok_inserts;
    const uint64_t morning_writes =
        r.phases[1].ok_updates + r.phases[1].ok_inserts;
    const bool shifted = evening_writes > 2 * morning_writes;
    std::printf("%s\n\n",
                ramped && shifted && out.lost == 0
                    ? "PASS: arrivals track the schedule, evening goes "
                      "write-heavy, no loss"
                    : "FAIL: phase schedule not visible in the traffic");
    return ramped && shifted && out.lost == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    sdf::bench::ObsCli &obs = sdf::bench::GlobalObs();
    obs.ParseAndStrip(argc, argv);
    sdf::bench::PrintPreamble("YCSB workload suite",
                              "skewed, phased web-scale traffic of §2");
    int rc = sdf::RunProfileSweep(obs);
    rc |= sdf::RunStorm(obs);
    rc |= sdf::RunDiurnal(obs);
    obs.AddMeta("experiment", "ycsb_suite");
    if (const int orc = obs.Export(); orc != 0) return orc;
    return rc;
}
