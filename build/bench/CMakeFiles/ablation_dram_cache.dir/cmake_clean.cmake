file(REMOVE_RECURSE
  "CMakeFiles/ablation_dram_cache.dir/ablation_dram_cache.cc.o"
  "CMakeFiles/ablation_dram_cache.dir/ablation_dram_cache.cc.o.d"
  "ablation_dram_cache"
  "ablation_dram_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
