# Empty dependencies file for ablation_dram_cache.
# This may be replaced when dependencies are built.
