file(REMOVE_RECURSE
  "CMakeFiles/ablation_erase_scheduling.dir/ablation_erase_scheduling.cc.o"
  "CMakeFiles/ablation_erase_scheduling.dir/ablation_erase_scheduling.cc.o.d"
  "ablation_erase_scheduling"
  "ablation_erase_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_erase_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
