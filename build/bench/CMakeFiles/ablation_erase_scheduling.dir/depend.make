# Empty dependencies file for ablation_erase_scheduling.
# This may be replaced when dependencies are built.
