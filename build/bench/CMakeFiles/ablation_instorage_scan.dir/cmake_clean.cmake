file(REMOVE_RECURSE
  "CMakeFiles/ablation_instorage_scan.dir/ablation_instorage_scan.cc.o"
  "CMakeFiles/ablation_instorage_scan.dir/ablation_instorage_scan.cc.o.d"
  "ablation_instorage_scan"
  "ablation_instorage_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_instorage_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
