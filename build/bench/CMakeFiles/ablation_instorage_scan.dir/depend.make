# Empty dependencies file for ablation_instorage_scan.
# This may be replaced when dependencies are built.
