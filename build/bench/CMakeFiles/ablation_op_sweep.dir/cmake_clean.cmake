file(REMOVE_RECURSE
  "CMakeFiles/ablation_op_sweep.dir/ablation_op_sweep.cc.o"
  "CMakeFiles/ablation_op_sweep.dir/ablation_op_sweep.cc.o.d"
  "ablation_op_sweep"
  "ablation_op_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_op_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
