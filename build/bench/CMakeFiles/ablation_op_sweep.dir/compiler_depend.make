# Empty compiler generated dependencies file for ablation_op_sweep.
# This may be replaced when dependencies are built.
