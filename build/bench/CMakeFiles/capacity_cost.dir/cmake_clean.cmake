file(REMOVE_RECURSE
  "CMakeFiles/capacity_cost.dir/capacity_cost.cc.o"
  "CMakeFiles/capacity_cost.dir/capacity_cost.cc.o.d"
  "capacity_cost"
  "capacity_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
