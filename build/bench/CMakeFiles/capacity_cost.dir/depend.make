# Empty dependencies file for capacity_cost.
# This may be replaced when dependencies are built.
