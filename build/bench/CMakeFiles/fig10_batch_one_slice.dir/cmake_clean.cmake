file(REMOVE_RECURSE
  "CMakeFiles/fig10_batch_one_slice.dir/fig10_batch_one_slice.cc.o"
  "CMakeFiles/fig10_batch_one_slice.dir/fig10_batch_one_slice.cc.o.d"
  "fig10_batch_one_slice"
  "fig10_batch_one_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_batch_one_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
