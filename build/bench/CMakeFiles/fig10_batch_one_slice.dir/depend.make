# Empty dependencies file for fig10_batch_one_slice.
# This may be replaced when dependencies are built.
