file(REMOVE_RECURSE
  "CMakeFiles/fig11_batch_multi_slice.dir/fig11_batch_multi_slice.cc.o"
  "CMakeFiles/fig11_batch_multi_slice.dir/fig11_batch_multi_slice.cc.o.d"
  "fig11_batch_multi_slice"
  "fig11_batch_multi_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_batch_multi_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
