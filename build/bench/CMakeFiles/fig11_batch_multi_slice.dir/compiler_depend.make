# Empty compiler generated dependencies file for fig11_batch_multi_slice.
# This may be replaced when dependencies are built.
