file(REMOVE_RECURSE
  "CMakeFiles/fig12_request_sizes.dir/fig12_request_sizes.cc.o"
  "CMakeFiles/fig12_request_sizes.dir/fig12_request_sizes.cc.o.d"
  "fig12_request_sizes"
  "fig12_request_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_request_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
