# Empty dependencies file for fig12_request_sizes.
# This may be replaced when dependencies are built.
