file(REMOVE_RECURSE
  "CMakeFiles/fig13_sequential_scan.dir/fig13_sequential_scan.cc.o"
  "CMakeFiles/fig13_sequential_scan.dir/fig13_sequential_scan.cc.o.d"
  "fig13_sequential_scan"
  "fig13_sequential_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sequential_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
