# Empty compiler generated dependencies file for fig13_sequential_scan.
# This may be replaced when dependencies are built.
