file(REMOVE_RECURSE
  "CMakeFiles/fig14_write_compaction.dir/fig14_write_compaction.cc.o"
  "CMakeFiles/fig14_write_compaction.dir/fig14_write_compaction.cc.o.d"
  "fig14_write_compaction"
  "fig14_write_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_write_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
