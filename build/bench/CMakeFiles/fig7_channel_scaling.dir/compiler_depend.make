# Empty compiler generated dependencies file for fig7_channel_scaling.
# This may be replaced when dependencies are built.
