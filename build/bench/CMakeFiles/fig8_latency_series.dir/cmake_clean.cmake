file(REMOVE_RECURSE
  "CMakeFiles/fig8_latency_series.dir/fig8_latency_series.cc.o"
  "CMakeFiles/fig8_latency_series.dir/fig8_latency_series.cc.o.d"
  "fig8_latency_series"
  "fig8_latency_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_latency_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
