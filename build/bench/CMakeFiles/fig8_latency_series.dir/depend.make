# Empty dependencies file for fig8_latency_series.
# This may be replaced when dependencies are built.
