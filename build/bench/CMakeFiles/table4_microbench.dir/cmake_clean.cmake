file(REMOVE_RECURSE
  "CMakeFiles/table4_microbench.dir/table4_microbench.cc.o"
  "CMakeFiles/table4_microbench.dir/table4_microbench.cc.o.d"
  "table4_microbench"
  "table4_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
