# Empty compiler generated dependencies file for table4_microbench.
# This may be replaced when dependencies are built.
