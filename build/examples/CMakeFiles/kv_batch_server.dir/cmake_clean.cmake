file(REMOVE_RECURSE
  "CMakeFiles/kv_batch_server.dir/kv_batch_server.cpp.o"
  "CMakeFiles/kv_batch_server.dir/kv_batch_server.cpp.o.d"
  "kv_batch_server"
  "kv_batch_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_batch_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
