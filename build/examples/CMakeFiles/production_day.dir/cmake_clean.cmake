file(REMOVE_RECURSE
  "CMakeFiles/production_day.dir/production_day.cpp.o"
  "CMakeFiles/production_day.dir/production_day.cpp.o.d"
  "production_day"
  "production_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
