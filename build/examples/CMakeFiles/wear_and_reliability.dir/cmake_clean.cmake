file(REMOVE_RECURSE
  "CMakeFiles/wear_and_reliability.dir/wear_and_reliability.cpp.o"
  "CMakeFiles/wear_and_reliability.dir/wear_and_reliability.cpp.o.d"
  "wear_and_reliability"
  "wear_and_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wear_and_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
