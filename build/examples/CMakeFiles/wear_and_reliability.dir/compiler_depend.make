# Empty compiler generated dependencies file for wear_and_reliability.
# This may be replaced when dependencies are built.
