file(REMOVE_RECURSE
  "CMakeFiles/webpage_repository.dir/webpage_repository.cpp.o"
  "CMakeFiles/webpage_repository.dir/webpage_repository.cpp.o.d"
  "webpage_repository"
  "webpage_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webpage_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
