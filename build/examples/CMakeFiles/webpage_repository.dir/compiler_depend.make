# Empty compiler generated dependencies file for webpage_repository.
# This may be replaced when dependencies are built.
