# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("nand")
subdirs("controller")
subdirs("ftl")
subdirs("ssd")
subdirs("sdf")
subdirs("fault")
subdirs("host")
subdirs("net")
subdirs("blocklayer")
subdirs("kv")
subdirs("workload")
