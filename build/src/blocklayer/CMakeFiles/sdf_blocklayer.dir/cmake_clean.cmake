file(REMOVE_RECURSE
  "CMakeFiles/sdf_blocklayer.dir/block_layer.cc.o"
  "CMakeFiles/sdf_blocklayer.dir/block_layer.cc.o.d"
  "libsdf_blocklayer.a"
  "libsdf_blocklayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_blocklayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
