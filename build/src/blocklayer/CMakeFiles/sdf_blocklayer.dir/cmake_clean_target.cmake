file(REMOVE_RECURSE
  "libsdf_blocklayer.a"
)
