# Empty compiler generated dependencies file for sdf_blocklayer.
# This may be replaced when dependencies are built.
