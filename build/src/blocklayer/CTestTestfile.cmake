# CMake generated Testfile for 
# Source directory: /root/repo/src/blocklayer
# Build directory: /root/repo/build/src/blocklayer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
