file(REMOVE_RECURSE
  "CMakeFiles/sdf_controller.dir/bch.cc.o"
  "CMakeFiles/sdf_controller.dir/bch.cc.o.d"
  "CMakeFiles/sdf_controller.dir/interrupts.cc.o"
  "CMakeFiles/sdf_controller.dir/interrupts.cc.o.d"
  "CMakeFiles/sdf_controller.dir/link.cc.o"
  "CMakeFiles/sdf_controller.dir/link.cc.o.d"
  "libsdf_controller.a"
  "libsdf_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
