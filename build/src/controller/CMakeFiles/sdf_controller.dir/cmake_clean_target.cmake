file(REMOVE_RECURSE
  "libsdf_controller.a"
)
