# Empty compiler generated dependencies file for sdf_controller.
# This may be replaced when dependencies are built.
