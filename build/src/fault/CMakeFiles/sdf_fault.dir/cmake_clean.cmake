file(REMOVE_RECURSE
  "CMakeFiles/sdf_fault.dir/fault.cc.o"
  "CMakeFiles/sdf_fault.dir/fault.cc.o.d"
  "libsdf_fault.a"
  "libsdf_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
