file(REMOVE_RECURSE
  "libsdf_fault.a"
)
