# Empty dependencies file for sdf_fault.
# This may be replaced when dependencies are built.
