
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/bad_block_manager.cc" "src/ftl/CMakeFiles/sdf_ftl.dir/bad_block_manager.cc.o" "gcc" "src/ftl/CMakeFiles/sdf_ftl.dir/bad_block_manager.cc.o.d"
  "/root/repo/src/ftl/page_map.cc" "src/ftl/CMakeFiles/sdf_ftl.dir/page_map.cc.o" "gcc" "src/ftl/CMakeFiles/sdf_ftl.dir/page_map.cc.o.d"
  "/root/repo/src/ftl/wear_leveler.cc" "src/ftl/CMakeFiles/sdf_ftl.dir/wear_leveler.cc.o" "gcc" "src/ftl/CMakeFiles/sdf_ftl.dir/wear_leveler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
