file(REMOVE_RECURSE
  "CMakeFiles/sdf_ftl.dir/bad_block_manager.cc.o"
  "CMakeFiles/sdf_ftl.dir/bad_block_manager.cc.o.d"
  "CMakeFiles/sdf_ftl.dir/page_map.cc.o"
  "CMakeFiles/sdf_ftl.dir/page_map.cc.o.d"
  "CMakeFiles/sdf_ftl.dir/wear_leveler.cc.o"
  "CMakeFiles/sdf_ftl.dir/wear_leveler.cc.o.d"
  "libsdf_ftl.a"
  "libsdf_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
