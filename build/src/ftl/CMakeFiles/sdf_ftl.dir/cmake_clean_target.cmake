file(REMOVE_RECURSE
  "libsdf_ftl.a"
)
