# Empty dependencies file for sdf_ftl.
# This may be replaced when dependencies are built.
