file(REMOVE_RECURSE
  "CMakeFiles/sdf_host.dir/io_stack.cc.o"
  "CMakeFiles/sdf_host.dir/io_stack.cc.o.d"
  "libsdf_host.a"
  "libsdf_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
