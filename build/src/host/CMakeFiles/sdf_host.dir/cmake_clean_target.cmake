file(REMOVE_RECURSE
  "libsdf_host.a"
)
