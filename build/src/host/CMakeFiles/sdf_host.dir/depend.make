# Empty dependencies file for sdf_host.
# This may be replaced when dependencies are built.
