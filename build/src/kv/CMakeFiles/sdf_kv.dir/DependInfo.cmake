
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/memtable.cc" "src/kv/CMakeFiles/sdf_kv.dir/memtable.cc.o" "gcc" "src/kv/CMakeFiles/sdf_kv.dir/memtable.cc.o.d"
  "/root/repo/src/kv/patch.cc" "src/kv/CMakeFiles/sdf_kv.dir/patch.cc.o" "gcc" "src/kv/CMakeFiles/sdf_kv.dir/patch.cc.o.d"
  "/root/repo/src/kv/patch_storage.cc" "src/kv/CMakeFiles/sdf_kv.dir/patch_storage.cc.o" "gcc" "src/kv/CMakeFiles/sdf_kv.dir/patch_storage.cc.o.d"
  "/root/repo/src/kv/replicated_store.cc" "src/kv/CMakeFiles/sdf_kv.dir/replicated_store.cc.o" "gcc" "src/kv/CMakeFiles/sdf_kv.dir/replicated_store.cc.o.d"
  "/root/repo/src/kv/slice.cc" "src/kv/CMakeFiles/sdf_kv.dir/slice.cc.o" "gcc" "src/kv/CMakeFiles/sdf_kv.dir/slice.cc.o.d"
  "/root/repo/src/kv/store.cc" "src/kv/CMakeFiles/sdf_kv.dir/store.cc.o" "gcc" "src/kv/CMakeFiles/sdf_kv.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blocklayer/CMakeFiles/sdf_blocklayer.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/sdf_host.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/sdf_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/sdf/CMakeFiles/sdf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/sdf_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/sdf_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/sdf_controller.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
