file(REMOVE_RECURSE
  "CMakeFiles/sdf_kv.dir/memtable.cc.o"
  "CMakeFiles/sdf_kv.dir/memtable.cc.o.d"
  "CMakeFiles/sdf_kv.dir/patch.cc.o"
  "CMakeFiles/sdf_kv.dir/patch.cc.o.d"
  "CMakeFiles/sdf_kv.dir/patch_storage.cc.o"
  "CMakeFiles/sdf_kv.dir/patch_storage.cc.o.d"
  "CMakeFiles/sdf_kv.dir/replicated_store.cc.o"
  "CMakeFiles/sdf_kv.dir/replicated_store.cc.o.d"
  "CMakeFiles/sdf_kv.dir/slice.cc.o"
  "CMakeFiles/sdf_kv.dir/slice.cc.o.d"
  "CMakeFiles/sdf_kv.dir/store.cc.o"
  "CMakeFiles/sdf_kv.dir/store.cc.o.d"
  "libsdf_kv.a"
  "libsdf_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
