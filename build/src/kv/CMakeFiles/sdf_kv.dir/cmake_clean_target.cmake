file(REMOVE_RECURSE
  "libsdf_kv.a"
)
