# Empty compiler generated dependencies file for sdf_kv.
# This may be replaced when dependencies are built.
