
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nand/channel.cc" "src/nand/CMakeFiles/sdf_nand.dir/channel.cc.o" "gcc" "src/nand/CMakeFiles/sdf_nand.dir/channel.cc.o.d"
  "/root/repo/src/nand/error_model.cc" "src/nand/CMakeFiles/sdf_nand.dir/error_model.cc.o" "gcc" "src/nand/CMakeFiles/sdf_nand.dir/error_model.cc.o.d"
  "/root/repo/src/nand/flash_array.cc" "src/nand/CMakeFiles/sdf_nand.dir/flash_array.cc.o" "gcc" "src/nand/CMakeFiles/sdf_nand.dir/flash_array.cc.o.d"
  "/root/repo/src/nand/geometry.cc" "src/nand/CMakeFiles/sdf_nand.dir/geometry.cc.o" "gcc" "src/nand/CMakeFiles/sdf_nand.dir/geometry.cc.o.d"
  "/root/repo/src/nand/types.cc" "src/nand/CMakeFiles/sdf_nand.dir/types.cc.o" "gcc" "src/nand/CMakeFiles/sdf_nand.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sdf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
