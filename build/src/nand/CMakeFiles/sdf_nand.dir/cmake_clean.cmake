file(REMOVE_RECURSE
  "CMakeFiles/sdf_nand.dir/channel.cc.o"
  "CMakeFiles/sdf_nand.dir/channel.cc.o.d"
  "CMakeFiles/sdf_nand.dir/error_model.cc.o"
  "CMakeFiles/sdf_nand.dir/error_model.cc.o.d"
  "CMakeFiles/sdf_nand.dir/flash_array.cc.o"
  "CMakeFiles/sdf_nand.dir/flash_array.cc.o.d"
  "CMakeFiles/sdf_nand.dir/geometry.cc.o"
  "CMakeFiles/sdf_nand.dir/geometry.cc.o.d"
  "CMakeFiles/sdf_nand.dir/types.cc.o"
  "CMakeFiles/sdf_nand.dir/types.cc.o.d"
  "libsdf_nand.a"
  "libsdf_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
