file(REMOVE_RECURSE
  "libsdf_nand.a"
)
