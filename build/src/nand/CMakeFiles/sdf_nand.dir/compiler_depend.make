# Empty compiler generated dependencies file for sdf_nand.
# This may be replaced when dependencies are built.
