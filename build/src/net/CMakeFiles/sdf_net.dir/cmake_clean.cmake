file(REMOVE_RECURSE
  "CMakeFiles/sdf_net.dir/network.cc.o"
  "CMakeFiles/sdf_net.dir/network.cc.o.d"
  "libsdf_net.a"
  "libsdf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
