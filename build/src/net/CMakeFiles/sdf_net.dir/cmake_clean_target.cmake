file(REMOVE_RECURSE
  "libsdf_net.a"
)
