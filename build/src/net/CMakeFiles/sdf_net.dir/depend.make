# Empty dependencies file for sdf_net.
# This may be replaced when dependencies are built.
