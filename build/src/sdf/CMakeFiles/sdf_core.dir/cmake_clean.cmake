file(REMOVE_RECURSE
  "CMakeFiles/sdf_core.dir/io_status.cc.o"
  "CMakeFiles/sdf_core.dir/io_status.cc.o.d"
  "CMakeFiles/sdf_core.dir/sdf_device.cc.o"
  "CMakeFiles/sdf_core.dir/sdf_device.cc.o.d"
  "libsdf_core.a"
  "libsdf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
