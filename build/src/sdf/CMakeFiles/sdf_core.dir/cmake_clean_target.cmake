file(REMOVE_RECURSE
  "libsdf_core.a"
)
