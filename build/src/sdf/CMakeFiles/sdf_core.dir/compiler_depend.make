# Empty compiler generated dependencies file for sdf_core.
# This may be replaced when dependencies are built.
