file(REMOVE_RECURSE
  "CMakeFiles/sdf_sim.dir/simulator.cc.o"
  "CMakeFiles/sdf_sim.dir/simulator.cc.o.d"
  "libsdf_sim.a"
  "libsdf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
