file(REMOVE_RECURSE
  "libsdf_sim.a"
)
