# Empty compiler generated dependencies file for sdf_sim.
# This may be replaced when dependencies are built.
