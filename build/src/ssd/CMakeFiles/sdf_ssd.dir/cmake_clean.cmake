file(REMOVE_RECURSE
  "CMakeFiles/sdf_ssd.dir/conventional_ssd.cc.o"
  "CMakeFiles/sdf_ssd.dir/conventional_ssd.cc.o.d"
  "libsdf_ssd.a"
  "libsdf_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
