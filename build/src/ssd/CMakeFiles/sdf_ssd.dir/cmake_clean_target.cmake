file(REMOVE_RECURSE
  "libsdf_ssd.a"
)
