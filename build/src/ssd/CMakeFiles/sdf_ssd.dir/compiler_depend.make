# Empty compiler generated dependencies file for sdf_ssd.
# This may be replaced when dependencies are built.
