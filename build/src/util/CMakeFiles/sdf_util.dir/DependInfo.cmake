
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/fingerprint.cc" "src/util/CMakeFiles/sdf_util.dir/fingerprint.cc.o" "gcc" "src/util/CMakeFiles/sdf_util.dir/fingerprint.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/sdf_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/sdf_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/latency_recorder.cc" "src/util/CMakeFiles/sdf_util.dir/latency_recorder.cc.o" "gcc" "src/util/CMakeFiles/sdf_util.dir/latency_recorder.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/util/CMakeFiles/sdf_util.dir/rng.cc.o" "gcc" "src/util/CMakeFiles/sdf_util.dir/rng.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/util/CMakeFiles/sdf_util.dir/table_printer.cc.o" "gcc" "src/util/CMakeFiles/sdf_util.dir/table_printer.cc.o.d"
  "/root/repo/src/util/throughput_meter.cc" "src/util/CMakeFiles/sdf_util.dir/throughput_meter.cc.o" "gcc" "src/util/CMakeFiles/sdf_util.dir/throughput_meter.cc.o.d"
  "/root/repo/src/util/units.cc" "src/util/CMakeFiles/sdf_util.dir/units.cc.o" "gcc" "src/util/CMakeFiles/sdf_util.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
