file(REMOVE_RECURSE
  "CMakeFiles/sdf_util.dir/fingerprint.cc.o"
  "CMakeFiles/sdf_util.dir/fingerprint.cc.o.d"
  "CMakeFiles/sdf_util.dir/histogram.cc.o"
  "CMakeFiles/sdf_util.dir/histogram.cc.o.d"
  "CMakeFiles/sdf_util.dir/latency_recorder.cc.o"
  "CMakeFiles/sdf_util.dir/latency_recorder.cc.o.d"
  "CMakeFiles/sdf_util.dir/rng.cc.o"
  "CMakeFiles/sdf_util.dir/rng.cc.o.d"
  "CMakeFiles/sdf_util.dir/table_printer.cc.o"
  "CMakeFiles/sdf_util.dir/table_printer.cc.o.d"
  "CMakeFiles/sdf_util.dir/throughput_meter.cc.o"
  "CMakeFiles/sdf_util.dir/throughput_meter.cc.o.d"
  "CMakeFiles/sdf_util.dir/units.cc.o"
  "CMakeFiles/sdf_util.dir/units.cc.o.d"
  "libsdf_util.a"
  "libsdf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
