file(REMOVE_RECURSE
  "libsdf_util.a"
)
