file(REMOVE_RECURSE
  "CMakeFiles/sdf_workload.dir/kv_driver.cc.o"
  "CMakeFiles/sdf_workload.dir/kv_driver.cc.o.d"
  "CMakeFiles/sdf_workload.dir/raw_device.cc.o"
  "CMakeFiles/sdf_workload.dir/raw_device.cc.o.d"
  "CMakeFiles/sdf_workload.dir/trace.cc.o"
  "CMakeFiles/sdf_workload.dir/trace.cc.o.d"
  "libsdf_workload.a"
  "libsdf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
