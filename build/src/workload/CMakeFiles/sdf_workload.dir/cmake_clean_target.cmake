file(REMOVE_RECURSE
  "libsdf_workload.a"
)
