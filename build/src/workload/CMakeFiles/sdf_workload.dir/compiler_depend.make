# Empty compiler generated dependencies file for sdf_workload.
# This may be replaced when dependencies are built.
