file(REMOVE_RECURSE
  "CMakeFiles/test_blocklayer.dir/test_blocklayer.cc.o"
  "CMakeFiles/test_blocklayer.dir/test_blocklayer.cc.o.d"
  "test_blocklayer"
  "test_blocklayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocklayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
