# Empty compiler generated dependencies file for test_blocklayer.
# This may be replaced when dependencies are built.
