file(REMOVE_RECURSE
  "CMakeFiles/test_host_net.dir/test_host_net.cc.o"
  "CMakeFiles/test_host_net.dir/test_host_net.cc.o.d"
  "test_host_net"
  "test_host_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
