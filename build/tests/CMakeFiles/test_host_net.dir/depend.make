# Empty dependencies file for test_host_net.
# This may be replaced when dependencies are built.
