file(REMOVE_RECURSE
  "CMakeFiles/test_sdf_device.dir/test_sdf_device.cc.o"
  "CMakeFiles/test_sdf_device.dir/test_sdf_device.cc.o.d"
  "test_sdf_device"
  "test_sdf_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdf_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
