# Empty compiler generated dependencies file for test_sdf_device.
# This may be replaced when dependencies are built.
