file(REMOVE_RECURSE
  "CMakeFiles/sdfsim.dir/sdfsim.cc.o"
  "CMakeFiles/sdfsim.dir/sdfsim.cc.o.d"
  "sdfsim"
  "sdfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
