# Empty dependencies file for sdfsim.
# This may be replaced when dependencies are built.
