/**
 * @file
 * A storage node serving batched KV reads over the network — the
 * production scenario of the paper's Figures 10-12, runnable end to end.
 *
 * Eight slices are preloaded with 512 KB values; eight clients send
 * batched synchronous read requests; values stream back per sub-request.
 * Prints per-batch-size throughput so you can watch SDF's exposed channel
 * parallelism turn request batching into bandwidth.
 *
 * Build & run:  ./build/examples/kv_batch_server
 */
#include <cstdio>

#include "blocklayer/block_layer.h"
#include "host/io_stack.h"
#include "kv/patch_storage.h"
#include "kv/slice.h"
#include "net/network.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "workload/kv_driver.h"

int
main()
{
    using namespace sdf;

    std::printf("KV batch server on SDF: 8 slices, 8 clients, 512 KB "
                "values\n\n");
    std::printf("  batch   node throughput   per-client\n");
    std::printf("  -------------------------------------\n");

    for (uint32_t batch : {1u, 8u, 44u}) {
        // A fresh node per batch size keeps the runs independent.
        sim::Simulator sim;
        core::SdfDevice device(sim, core::BaiduSdfConfig(0.06));
        blocklayer::BlockLayer layer(sim, device,
                                     blocklayer::BlockLayerConfig{});
        host::IoStack stack(sim, host::SdfUserStackSpec());
        kv::SdfPatchStorage storage(layer, &stack);
        kv::IdAllocator ids;

        const uint32_t slice_count = 8;
        std::vector<std::unique_ptr<kv::Slice>> slices;
        std::vector<kv::Slice *> slice_ptrs;
        for (uint32_t s = 0; s < slice_count; ++s) {
            slices.push_back(std::make_unique<kv::Slice>(sim, storage, ids,
                                                         kv::SliceConfig{}));
            slice_ptrs.push_back(slices.back().get());
        }
        const auto keys = workload::PreloadSlices(slice_ptrs,
                                                  300 * util::kMiB,
                                                  512 * util::kKiB);

        net::Network net(sim, net::NetworkSpec{}, slice_count);
        workload::KvRunConfig run;
        run.warmup = util::MsToNs(400);
        run.duration = util::SecToNs(2.0);
        const auto result = workload::RunBatchedRandomReads(
            sim, net, slice_ptrs, keys, batch, run);

        std::printf("  %-6u  %7.0f MB/s      %6.0f MB/s\n", batch,
                    result.client_mbps, result.client_mbps / slice_count);
    }

    std::printf("\nBatching exposes concurrency to the 44 channels: the\n"
                "node goes from network-latency-bound to device-bandwidth-\n"
                "bound (the paper's Figure 11 effect).\n");
    return 0;
}
