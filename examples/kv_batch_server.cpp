/**
 * @file
 * A storage node serving batched KV reads over the network — the
 * production scenario of the paper's Figures 10-12, runnable end to end.
 *
 * Eight slices are preloaded with 512 KB values; eight clients send
 * batched synchronous read requests; values stream back per sub-request.
 * Prints per-batch-size throughput so you can watch SDF's exposed channel
 * parallelism turn request batching into bandwidth. The whole node comes
 * from the shared testbed builder — one line instead of hand-wiring
 * device + block layer + slices + network.
 *
 * Build & run:  ./build/examples/kv_batch_server
 * Optional:     --stats-json=out.json --trace=out.trace.json
 */
#include <cstdio>

#include "obs/obs_cli.h"
#include "testbed/testbed.h"
#include "workload/kv_driver.h"

int
main(int argc, char **argv)
{
    using namespace sdf;

    obs::ObsCli &obs = obs::GlobalObs();
    obs.ParseAndStrip(argc, argv);

    std::printf("KV batch server on SDF: 8 slices, 8 clients, 512 KB "
                "values\n\n");
    std::printf("  batch   node throughput   per-client\n");
    std::printf("  -------------------------------------\n");

    const uint32_t slice_count = 8;
    for (uint32_t batch : {1u, 8u, 44u}) {
        // A fresh node per batch size keeps the runs independent.
        testbed::KvTestbed bed(testbed::Backend::kBaiduSdf, slice_count,
                               slice_count, 0.06);
        const auto keys = bed.Preload(300 * util::kMiB, 512 * util::kKiB);

        workload::KvRunConfig run;
        run.warmup = util::MsToNs(400);
        run.duration = util::SecToNs(2.0);
        const auto result = workload::RunBatchedRandomReads(
            bed.sim(), bed.net(), bed.SlicePtrs(), keys, batch, run);

        std::printf("  %-6u  %7.0f MB/s      %6.0f MB/s\n", batch,
                    result.client_mbps, result.client_mbps / slice_count);
        obs.AddDerived("batch" + std::to_string(batch) + ".client_mbps",
                       result.client_mbps);
    }

    std::printf("\nBatching exposes concurrency to the 44 channels: the\n"
                "node goes from network-latency-bound to device-bandwidth-\n"
                "bound (the paper's Figure 11 effect).\n");
    obs.AddMeta("example", "kv_batch_server");
    return obs.Export();
}
