/**
 * @file
 * A compressed production day on one SDF storage node.
 *
 * Replays a synthetic diurnal trace — overnight crawl ingestion, a mixed
 * morning, daytime query serving, an evening hot-spot — against a
 * preloaded CCDB node and prints per-phase throughput, latency, and the
 * device's wear report at the end of the "day". The node is assembled by
 * the shared testbed builder.
 *
 * Build & run:  ./build/examples/production_day
 * Optional:     --stats-json=out.json --trace=out.trace.json
 */
#include <cstdio>

#include "obs/obs_cli.h"
#include "testbed/testbed.h"
#include "util/table_printer.h"
#include "workload/kv_driver.h"
#include "workload/trace.h"

int
main(int argc, char **argv)
{
    using namespace sdf;

    obs::ObsCli &obs = obs::GlobalObs();
    obs.ParseAndStrip(argc, argv);

    const uint32_t slice_count = 4;
    kv::SliceConfig scfg;
    scfg.compaction_trigger = 4;
    testbed::KvTestbed bed(testbed::Backend::kBaiduSdf, slice_count,
                           slice_count, 0.05, scfg);
    core::SdfDevice &device = *bed.sdf_device();
    const auto slice_ptrs = bed.SlicePtrs();

    // Yesterday's data: 256 MiB of 64 KB pages per slice.
    const auto keys = bed.Preload(256 * util::kMiB, 64 * util::kKiB);
    const uint64_t keys_per_slice = keys[0].size();
    std::printf("Node up: %u slices, %llu keys/slice preloaded, "
                "%s user capacity\n\n",
                slice_count, static_cast<unsigned long long>(keys_per_slice),
                util::FormatBytes(device.user_capacity()).c_str());

    const auto phases = workload::ProductionDayPhases(1.0);
    const auto trace = workload::GenerateTrace(phases, slice_count,
                                               keys_per_slice, 2026);
    std::printf("Replaying %zu operations over %zu phases...\n\n",
                trace.size(), phases.size());
    const auto results =
        workload::ReplayTrace(bed.sim(), slice_ptrs, phases, trace);

    util::TablePrinter table("A compressed production day");
    table.SetHeader({"Phase", "gets", "puts", "dels", "miss", "read MB/s",
                     "write MB/s", "get p99 (ms)", "put p99 (ms)"});
    for (const auto &r : results) {
        table.AddRow({r.name,
                      util::TablePrinter::Int(static_cast<int64_t>(r.gets)),
                      util::TablePrinter::Int(static_cast<int64_t>(r.puts)),
                      util::TablePrinter::Int(static_cast<int64_t>(r.deletes)),
                      util::TablePrinter::Int(
                          static_cast<int64_t>(r.get_misses)),
                      util::TablePrinter::Num(r.read_mbps, 1),
                      util::TablePrinter::Num(r.write_mbps, 1),
                      util::TablePrinter::Num(r.get_latency.PercentileMs(99),
                                              1),
                      util::TablePrinter::Num(r.put_latency.PercentileMs(99),
                                              1)});
        obs.AddDerived(r.name + ".read_mbps", r.read_mbps);
        obs.AddDerived(r.name + ".write_mbps", r.write_mbps);
    }
    table.Print();

    kv::SliceStats totals;
    for (kv::Slice *s : slice_ptrs) {
        totals.flushes += s->stats().flushes;
        totals.compactions += s->stats().compactions;
        totals.put_stalls += s->stats().put_stalls;
    }
    std::printf("LSM: %llu flushes, %llu compactions, %llu put stalls\n",
                static_cast<unsigned long long>(totals.flushes),
                static_cast<unsigned long long>(totals.compactions),
                static_cast<unsigned long long>(totals.put_stalls));

    const auto wear = device.GetWearReport();
    std::printf("Wear after the day: erase counts %u..%u (mean %.2f), "
                "%.4f %% of rated life used\n",
                wear.min_erase_count, wear.max_erase_count,
                wear.mean_erase_count, 100.0 * wear.life_used);
    obs.AddMeta("example", "production_day");
    return obs.Export();
}
