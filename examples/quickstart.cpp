/**
 * @file
 * Quickstart: the SDF device API in one file.
 *
 * Creates a (scaled) Baidu SDF, walks the asymmetric interface — explicit
 * erase, whole-unit 8 MB write, 8 KB-granularity read — verifies the data
 * round-trips, and prints what the device did. The device is driven
 * through the backend-neutral core::BlockDevice interface; everything
 * runs inside the discrete-event simulator and simulated time is reported
 * at the end.
 *
 * Build & run:  ./build/examples/quickstart
 * Optional:     --stats-json=out.json --trace=out.trace.json
 */
#include <cstdio>

#include "obs/obs_cli.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "util/fingerprint.h"

int
main(int argc, char **argv)
{
    using namespace sdf;

    obs::ObsCli &obs = obs::GlobalObs();
    obs.ParseAndStrip(argc, argv);

    // One simulator clocks everything.
    sim::Simulator sim;
    obs::BindObs(sim);

    // A Baidu SDF at 5 % capacity scale (35 GB instead of 704 GB raw),
    // storing real payloads so we can verify what we read back.
    core::SdfConfig config = core::BaiduSdfConfig(0.05);
    config.flash.store_payloads = true;
    core::SdfDevice sdf_device(sim, config);

    // Everything below talks to the capability descriptor + async I/O
    // interface only — a ConventionalSsd behind ssd::SsdBlockDevice would
    // serve the same calls.
    core::BlockDevice &device = sdf_device;
    const core::DeviceCaps &caps = device.caps();

    std::printf("Device: %s\n", caps.name.c_str());
    std::printf("  channels:        %u (each exposed to software)\n",
                caps.channels);
    std::printf("  write/erase unit: %s (explicit erase: %s)\n",
                util::FormatBytes(caps.unit_bytes).c_str(),
                caps.explicit_erase ? "yes" : "no");
    std::printf("  read unit:        %s\n",
                util::FormatBytes(caps.read_unit_bytes).c_str());
    std::printf("  user capacity:    %s of %s raw (%.1f %%)\n\n",
                util::FormatBytes(caps.user_capacity).c_str(),
                util::FormatBytes(caps.raw_capacity).c_str(),
                100.0 * caps.user_capacity / caps.raw_capacity);

    const uint32_t channel = 7;
    const uint32_t unit = 3;
    const auto payload =
        util::MakeDeterministicPayload(device.unit_bytes(), 2026);

    // 1. The software contract: erase before write. Writing a non-erased
    //    unit is refused.
    device.WriteUnit(channel, unit, [](bool ok) {
        std::printf("write without erase -> %s (contract enforced)\n",
                    ok ? "accepted?!" : "refused");
    });

    // 2. Explicit erase, then a full-unit write, then partial reads.
    device.EraseUnit(channel, unit, [&](bool ok) {
        std::printf("erase unit (%u, %u)  -> %s at t=%.1f ms\n", channel,
                    unit, ok ? "ok" : "failed", util::NsToMs(sim.Now()));
        device.WriteUnit(
            channel, unit,
            [&](bool write_ok) {
                std::printf("write 8 MB unit    -> %s at t=%.1f ms\n",
                            write_ok ? "ok" : "failed",
                            util::NsToMs(sim.Now()));

                // Read one page from the middle of the unit.
                auto out = std::make_shared<std::vector<uint8_t>>();
                const uint64_t offset = 3 * util::kMiB;
                device.Read(
                    channel, unit, offset, device.read_unit_bytes(),
                    [&, out, offset](bool read_ok) {
                        const bool match =
                            read_ok &&
                            std::equal(out->begin(), out->end(),
                                       payload.begin() + offset);
                        std::printf(
                            "read 8 KB @ +3 MB  -> %s, data %s, t=%.1f ms\n",
                            read_ok ? "ok" : "failed",
                            match ? "matches" : "MISMATCH",
                            util::NsToMs(sim.Now()));
                    },
                    out.get());
            },
            payload.data());
    });

    // Run the simulation to completion.
    sim.Run();

    const core::SdfStats &stats = sdf_device.stats();
    std::printf("\nDevice counters: %llu unit writes, %llu unit erases, "
                "%llu page reads, %llu contract violations\n",
                static_cast<unsigned long long>(stats.unit_writes),
                static_cast<unsigned long long>(stats.unit_erases),
                static_cast<unsigned long long>(stats.page_reads),
                static_cast<unsigned long long>(stats.contract_violations));
    std::printf("Total simulated time: %.1f ms\n", util::NsToMs(sim.Now()));
    obs.AddMeta("example", "quickstart");
    return obs.Export();
}
