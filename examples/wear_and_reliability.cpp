/**
 * @file
 * Reliability walkthrough: wear leveling, wear-out, bad-block management,
 * and BCH error correction — the machinery behind §2.2's decision to drop
 * inter-channel parity and rely on per-chip ECC plus replication.
 *
 * Part 1 hammers one SDF unit with erase/write cycles on a flash model
 * with a tiny endurance budget and watches dynamic wear leveling spread
 * the damage, blocks retire into spares, and the unit eventually die.
 *
 * Part 2 pushes random bit errors through a real BCH codec at increasing
 * raw bit error rates and reports corrected vs uncorrectable pages.
 *
 * Build & run:  ./build/examples/wear_and_reliability
 * Optional:     --stats-json=out.json --trace=out.trace.json
 */
#include <algorithm>
#include <cstdio>

#include "controller/bch.h"
#include "nand/error_model.h"
#include "obs/obs_cli.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "util/rng.h"

int
main(int argc, char **argv)
{
    using namespace sdf;

    obs::ObsCli &obs = obs::GlobalObs();
    obs.ParseAndStrip(argc, argv);

    // ---- Part 1: wear-out on a fragile flash ---------------------------
    std::printf("Part 1 — dynamic wear leveling and wear-out\n");
    sim::Simulator sim;
    obs::BindObs(sim);
    core::SdfConfig cfg;
    cfg.flash.geometry = nand::TinyTestGeometry();
    cfg.flash.geometry.channels = 1;
    cfg.flash.geometry.blocks_per_plane = 16;
    cfg.flash.timing = nand::FastTestTiming();
    cfg.flash.errors.enabled = true;
    cfg.flash.errors.endurance_cycles = 60;   // Absurdly fragile, on purpose.
    cfg.flash.errors.wearout_fail_scale = 0.5;
    cfg.spare_blocks_per_plane = 4;
    core::SdfDevice device(sim, cfg);

    std::printf("  %u units exposed over %u blocks/plane (%u spares)\n",
                device.units_per_channel(),
                cfg.flash.geometry.blocks_per_plane,
                cfg.spare_blocks_per_plane);

    int cycles = 0;
    bool dead = false;
    while (!dead && cycles < 5000) {
        device.EraseUnit(0, 0, [&](bool ok) {
            if (!ok) dead = true;
        });
        sim.Run();
        if (dead || device.unit_state(0, 0) == core::UnitState::kDead) {
            dead = true;
            break;
        }
        device.WriteUnit(0, 0, nullptr);
        sim.Run();
        ++cycles;
    }

    uint32_t max_ec = 0, worn_blocks = 0;
    for (uint32_t b = 0; b < cfg.flash.geometry.blocks_per_plane; ++b) {
        const auto &meta = device.flash().channel(0).block_meta({0, b});
        max_ec = std::max(max_ec, meta.erase_count);
        worn_blocks += meta.bad;
    }
    std::printf("  unit survived %d erase/write cycles — %.1fx its rated\n"
                "  endurance, because wear spread over the pool "
                "(max erase count %u)\n",
                cycles,
                static_cast<double>(cycles) / cfg.flash.errors.endurance_cycles,
                max_ec);
    std::printf("  blocks retired to spares: %llu (plane 0 bad blocks: %u)\n\n",
                static_cast<unsigned long long>(device.stats().blocks_retired),
                worn_blocks);

    // ---- Part 2: BCH against rising raw bit error rates ----------------
    std::printf("Part 2 — BCH(8191, t=4) vs raw bit error rate\n");
    controller::BchCodec code(13, 4);
    nand::ErrorModel model;
    model.enabled = true;
    util::Rng rng(5);
    std::printf("  code: n=%d bits, k=%d data bits, %d parity bits\n",
                code.n(), code.k(), code.parity_bits());

    std::printf("  %-10s %-10s %-12s %-14s\n", "RBER", "pages", "corrected",
                "uncorrectable");
    for (double rber : {1e-5, 1e-4, 3e-4, 1e-3}) {
        const int pages = 200;
        int uncorrectable = 0;
        long corrected_bits = 0;
        for (int p = 0; p < pages; ++p) {
            // One codeword stands in for a page's ECC chunk.
            std::vector<uint8_t> msg(code.k());
            for (auto &b : msg) b = static_cast<uint8_t>(rng.NextBelow(2));
            auto cw = code.Encode(msg);
            for (int bit = 0; bit < code.n(); ++bit) {
                if (rng.NextBool(rber)) cw[bit] ^= 1;
            }
            const auto result = code.Decode(cw);
            if (!result.ok || code.ExtractMessage(cw) != msg) {
                ++uncorrectable;
            } else {
                corrected_bits += result.corrected;
            }
        }
        std::printf("  %-10.0e %-10d %-12ld %-14d\n", rber, pages,
                    corrected_bits, uncorrectable);
    }
    std::printf("\nAt nominal RBER the BCH absorbs everything; past its\n"
                "t-bit budget pages fail — which is when SDF falls back on\n"
                "system-level replication (one uncorrectable error in six\n"
                "months across 2000+ devices, per §2.2).\n");
    obs.AddMeta("example", "wear_and_reliability");
    obs.AddDerived("wear.cycles_survived", cycles);
    return obs.Export();
}
