/**
 * @file
 * The paper's motivating application (Figure 9): a web-page repository on
 * CCDB backed by SDF.
 *
 * A crawler writes pages into a Table; when enough pages accumulate, an
 * index-building pass scans the repository's patches sequentially — the
 * workload of the paper's Figure 13 — while fresh crawls keep arriving.
 * The storage node (SDF + user-space block layer + CCDB store) comes from
 * the shared testbed builder.
 *
 * Build & run:  ./build/examples/webpage_repository
 * Optional:     --stats-json=out.json --trace=out.trace.json
 */
#include <cstdio>

#include "obs/obs_cli.h"
#include "testbed/testbed.h"
#include "util/rng.h"

int
main(int argc, char **argv)
{
    using namespace sdf;

    obs::ObsCli &obs = obs::GlobalObs();
    obs.ParseAndStrip(argc, argv);

    sim::Simulator sim;
    obs::BindObs(sim);

    // The storage node: SDF + user-space block layer + CCDB store.
    testbed::KvStackConfig kc;
    kc.stack.backend = testbed::Backend::kBaiduSdf;
    kc.stack.capacity_scale = 0.05;
    kc.store.slice_count = 4;
    kc.store.slice.compaction_trigger = 4;
    testbed::KvStack node = testbed::BuildKvStack(sim, kc);
    kv::Store &store = *node.store;
    kv::TableView webpages(store, "central-webpage-repository");

    // --- Phase 1: the crawler stores pages (10-200 KB each). -----------
    util::Rng rng(14);
    const int page_count = 2000;
    int stored = 0;
    for (int row = 0; row < page_count; ++row) {
        const auto size =
            static_cast<uint32_t>(10 * util::kKiB +
                                  rng.NextBelow(190 * util::kKiB));
        webpages.PutRow(row, size, [&](bool ok) {
            if (ok) ++stored;
        });
    }
    sim.Run();
    const auto t_crawl = sim.Now();
    std::printf("crawl:  stored %d/%d pages in %.2f s simulated\n", stored,
                page_count, util::NsToSec(t_crawl));

    const kv::SliceStats after_crawl = store.TotalStats();
    std::printf("        %llu patch flushes, %llu compactions so far\n",
                static_cast<unsigned long long>(after_crawl.flushes),
                static_cast<unsigned long long>(after_crawl.compactions));

    // --- Phase 2: random page lookups (query serving). ------------------
    int found = 0, probes = 0;
    uint64_t bytes = 0;
    for (int i = 0; i < 200; ++i) {
        ++probes;
        webpages.GetRow(rng.NextBelow(page_count), [&](const kv::GetResult &r) {
            if (r.found) {
                ++found;
                bytes += r.value_size;
            }
        });
    }
    sim.Run();
    std::printf("query:  %d/%d lookups hit, %s served, in %.1f ms\n", found,
                probes, util::FormatBytes(bytes).c_str(),
                util::NsToMs(sim.Now() - t_crawl));

    // --- Phase 3: inverted-index building — scan every patch. -----------
    const auto t_scan_start = sim.Now();
    uint64_t scanned = 0;
    uint32_t patches = 0;
    for (uint32_t s = 0; s < store.slice_count(); ++s) {
        for (uint64_t id : store.slice(s).AllPatchIds()) {
            ++patches;
            store.slice(s).ReadPatchFully(id, [&](bool ok) {
                if (ok) scanned += 8 * util::kMiB;
            });
        }
    }
    sim.Run();
    const double scan_secs = util::NsToSec(sim.Now() - t_scan_start);
    std::printf("index:  scanned %u patches (%s) in %.2f s -> %.0f MB/s\n",
                patches, util::FormatBytes(scanned).c_str(), scan_secs,
                util::BandwidthMBps(scanned, sim.Now() - t_scan_start));

    const core::SdfStats &dstats = node.storage.sdf->stats();
    std::printf("\nSDF stats: %llu unit writes, %llu erases, %llu page "
                "reads; block layer: %llu puts, %llu gets\n",
                static_cast<unsigned long long>(dstats.unit_writes),
                static_cast<unsigned long long>(dstats.unit_erases),
                static_cast<unsigned long long>(dstats.page_reads),
                static_cast<unsigned long long>(node.storage.layer->stats().puts),
                static_cast<unsigned long long>(node.storage.layer->stats().gets));
    obs.AddMeta("example", "webpage_repository");
    obs.AddDerived("scan_mbps",
                   util::BandwidthMBps(scanned, sim.Now() - t_scan_start));
    return obs.Export();
}
