#!/usr/bin/env bash
# Regenerate the machine-readable perf snapshot (BENCH_pr10.json by
# default) from a fixed set of sdfsim runs with --stats-json. Every run is
# on the simulated clock with a fixed seed, so the snapshot is
# deterministic and diffs meaningfully across PRs: counters, per-stage
# latency means, and derived throughput for the canonical workloads,
# including the open-loop overload runs (storm goodput, typed sheds,
# hedge/breaker accounting) and the YCSB runs (Zipfian skew, phased
# arrivals, cluster range scans, per-phase p99/SLO accounting; the
# bench/ycsb_suite export rides along as the ycsb_suite run).
# The time-axis runs also capture --stats-series windowed timelines, which
# are merged into the snapshot under each run's "series" key so the storm
# and fail-slow windows are diffable across PRs too. The bench/sim_engine
# microbench (calendar queue vs reference heap, wall-clock events/sec) is
# embedded under the "sim_engine" key — the one intentionally
# non-deterministic section, since it measures the real machine.
#
# Usage: scripts/bench_to_json.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr10.json}"

cmake -B build -S . > /dev/null
cmake --build build -j --target sdfsim --target sim_engine \
    --target ycsb_suite > /dev/null

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run() {
    local name="$1"
    shift
    echo "bench_to_json: $name"
    ./build/tools/sdfsim "$@" --stats-json="$tmp/$name.json" > /dev/null
}

# Time-axis runs additionally export the windowed series.
run_series() {
    local name="$1"
    shift
    echo "bench_to_json: $name (+series)"
    ./build/tools/sdfsim "$@" --stats-json="$tmp/$name.json" \
        --stats-series="$tmp/$name.series.json" > /dev/null
}

# The paper's canonical operating points (capacity-scaled).
run sdf_seqread_8m   --device=sdf --workload=seqread  --request=8m --duration=1
run sdf_randread_8k  --device=sdf --workload=randread --request=8k --duration=0.5
run sdf_write_unit   --device=sdf --workload=write    --duration=0.5
run conv_randread_8k --device=huawei --workload=randread --request=8k --duration=0.5
run conv_write_8m    --device=huawei --workload=write --request=8m --duration=0.5
run cluster_3n_r2    --workload=cluster --nodes=3 --replication=2 --duration=0.5
run cluster_restart  --workload=cluster --nodes=4 --replication=2 --duration=0.5 --restart-node=1
run cluster_rebal    --workload=cluster --nodes=4 --replication=2 --duration=0.5 --kill-node=0 --rebalance
run_series overload_storm   --workload=overload --nodes=3 --replication=2 --duration=0.3 --arrival-rate=60000 --storm=2.0
run_series overload_failslow --workload=overload --nodes=3 --replication=2 --duration=0.3 --arrival-rate=20000 --fail-slow-node=1 --fail-slow-factor=4
# YCSB: skewed phased traffic (per-phase p99/SLO in derived result.phase.*)
# and the scan-heavy profile E through the cluster front door.
run_series ycsb_storm --workload=ycsb --profile=storm --nodes=3 --replication=2 --duration=0.3 --arrival-rate=40000
run_series ycsb_diurnal --workload=ycsb --profile=diurnal --nodes=3 --replication=2 --duration=0.3 --arrival-rate=30000
run ycsb_e --workload=ycsb --profile=e --nodes=3 --replication=2 --duration=0.3 --arrival-rate=400 --keys=200

echo "bench_to_json: ycsb_suite (+series)"
./build/bench/ycsb_suite --stats-json="$tmp/ycsb_suite.json" \
    --stats-series="$tmp/ycsb_suite.series.json" > /dev/null

echo "bench_to_json: sim_engine microbench"
./build/bench/sim_engine --json="$tmp/sim_engine.bench.json" > /dev/null

python3 - "$out" "$tmp" <<'EOF'
import json
import os
import sys

out_path, tmp = sys.argv[1], sys.argv[2]
runs = {}
for fn in sorted(os.listdir(tmp)):
    if fn.endswith(".series.json") or fn.endswith(".bench.json"):
        continue
    if fn.endswith(".json"):
        name = fn[:-5]
        with open(os.path.join(tmp, fn)) as f:
            runs[name] = json.load(f)
        series_fn = os.path.join(tmp, name + ".series.json")
        if os.path.exists(series_fn):
            with open(series_fn) as f:
                runs[name]["series"] = json.load(f)["series"]
doc = {"generated_by": "scripts/bench_to_json.sh", "runs": runs}
with open(os.path.join(tmp, "sim_engine.bench.json")) as f:
    doc["sim_engine"] = json.load(f)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1, sort_keys=True)
    f.write("\n")
print("bench_to_json: wrote %s (%d runs)" % (out_path, len(runs)))
EOF
