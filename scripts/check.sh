#!/usr/bin/env bash
# Build and run the full test suite three times: a normal RelWithDebInfo
# build, a warnings-as-errors build (-DSDF_WERROR=ON), and an ASan+UBSan
# build (-DSDF_SANITIZE=ON), each in its own build tree. Also smoke-tests
# the observability exports (stats JSON invariants, trace well-formedness,
# same-seed byte identity) via tools/validate_stats.py, the cluster
# workload (same-seed determinism + degraded-mode zero-loss), and the
# open-loop overload workload (typed sheds, fail-slow hedging/breaker).
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== normal build =="
cmake -B build -S . > /dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$@")

echo "== observability smoke =="
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
./build/tools/sdfsim --device=sdf --workload=write --duration=0.5 \
    --stats-json="$obs_tmp/a.json" --stats-csv="$obs_tmp/a.csv" \
    --trace="$obs_tmp/a.trace.json" > /dev/null
./build/tools/sdfsim --device=sdf --workload=write --duration=0.5 \
    --stats-json="$obs_tmp/b.json" --stats-csv="$obs_tmp/b.csv" > /dev/null
cmp "$obs_tmp/a.json" "$obs_tmp/b.json"   # Same seed => byte-identical.
cmp "$obs_tmp/a.csv" "$obs_tmp/b.csv"
python3 tools/validate_stats.py "$obs_tmp/a.json" \
    --trace="$obs_tmp/a.trace.json" --channels=44
./build/tools/sdfsim --device=sdf --workload=randread --request=8k \
    --duration=0.3 --stats-json="$obs_tmp/r.json" > /dev/null
python3 tools/validate_stats.py "$obs_tmp/r.json"

echo "== cluster smoke =="
./build/tools/sdfsim --workload=cluster --nodes=3 --replication=2 \
    --duration=0.3 --stats-json="$obs_tmp/c1.json" > /dev/null
./build/tools/sdfsim --workload=cluster --nodes=3 --replication=2 \
    --duration=0.3 --stats-json="$obs_tmp/c2.json" > /dev/null
cmp "$obs_tmp/c1.json" "$obs_tmp/c2.json"  # Same seed => byte-identical.
python3 tools/validate_stats.py "$obs_tmp/c1.json"
# Degraded mode: kill a node mid-run; exit is nonzero on any lost ack.
./build/tools/sdfsim --workload=cluster --nodes=3 --replication=2 \
    --duration=0.3 --kill-node=0 > /dev/null

echo "== recovery smoke =="
# Permanent node loss + anti-entropy: nonzero exit on lost acks or any
# key left under-replicated after the pass.
./build/tools/sdfsim --workload=cluster --nodes=3 --replication=2 \
    --duration=0.3 --kill-node=0 --rebalance > /dev/null
# Rolling restart: stop at T/3, recover + rebalance at 2T/3.
./build/tools/sdfsim --workload=cluster --nodes=3 --replication=2 \
    --duration=0.3 --restart-node=1 > /dev/null

echo "== overload smoke =="
# Open-loop storm through the client front door: nonzero exit on any
# lost acked write; storms, sheds, hedges, the distributed trace and the
# windowed series all stay seed-deterministic (byte-identical exports).
./build/tools/sdfsim --workload=overload --nodes=3 --replication=2 \
    --duration=0.2 --arrival-rate=60000 --storm=2.0 \
    --stats-json="$obs_tmp/o1.json" --trace="$obs_tmp/o1.trace.json" \
    --stats-series="$obs_tmp/o1.series.json" > /dev/null
./build/tools/sdfsim --workload=overload --nodes=3 --replication=2 \
    --duration=0.2 --arrival-rate=60000 --storm=2.0 \
    --stats-json="$obs_tmp/o2.json" --trace="$obs_tmp/o2.trace.json" \
    --stats-series="$obs_tmp/o2.series.json" > /dev/null
cmp "$obs_tmp/o1.json" "$obs_tmp/o2.json"  # Same seed => byte-identical.
cmp "$obs_tmp/o1.trace.json" "$obs_tmp/o2.trace.json"
cmp "$obs_tmp/o1.series.json" "$obs_tmp/o2.series.json"
# Cluster critical-path tiling (client.path.*) + window contiguity.
python3 tools/validate_stats.py "$obs_tmp/o1.json" \
    --trace="$obs_tmp/o1.trace.json" --series="$obs_tmp/o1.series.json" \
    --require-op=client.path.get --require-op=client.path.put
# One fail-slow node mid-run; hedged reads + breaker route around it.
./build/tools/sdfsim --workload=overload --nodes=3 --replication=2 \
    --duration=0.2 --fail-slow-node=1 --fail-slow-factor=4 > /dev/null

echo "== ycsb smoke =="
# Skewed phased traffic with range scans through the client front door:
# same seed => byte-identical stats/trace/series; the scan critical path
# (client.path.scan) is attributed, and per-phase counts sum exactly to
# the run totals (--check-phases).
./build/tools/sdfsim --workload=ycsb --profile=e --nodes=3 --replication=2 \
    --duration=0.2 --arrival-rate=400 --keys=200 \
    --stats-json="$obs_tmp/y1.json" --trace="$obs_tmp/y1.trace.json" \
    --stats-series="$obs_tmp/y1.series.json" > /dev/null
./build/tools/sdfsim --workload=ycsb --profile=e --nodes=3 --replication=2 \
    --duration=0.2 --arrival-rate=400 --keys=200 \
    --stats-json="$obs_tmp/y2.json" --trace="$obs_tmp/y2.trace.json" \
    --stats-series="$obs_tmp/y2.series.json" > /dev/null
cmp "$obs_tmp/y1.json" "$obs_tmp/y2.json"  # Same seed => byte-identical.
cmp "$obs_tmp/y1.trace.json" "$obs_tmp/y2.trace.json"
cmp "$obs_tmp/y1.series.json" "$obs_tmp/y2.series.json"
python3 tools/validate_stats.py "$obs_tmp/y1.json" \
    --trace="$obs_tmp/y1.trace.json" --series="$obs_tmp/y1.series.json" \
    --require-op=client.path.scan --check-phases
# The storm profile's flash crowd: per-phase accounting over a schedule
# with a hot-range spike (3 labelled series segments).
./build/tools/sdfsim --workload=ycsb --profile=storm --nodes=3 \
    --replication=2 --duration=0.3 --arrival-rate=40000 \
    --stats-json="$obs_tmp/ystorm.json" > /dev/null
python3 tools/validate_stats.py "$obs_tmp/ystorm.json" --check-phases

echo "== engine cross-check (heap vs calendar) =="
# The two event engines must produce byte-identical runs: same seed, same
# dispatch order, same stats/trace/series exports. The overload workload
# exercises every scheduling path (device, network retry ladders, client
# hedges, completion ring), so it is the cross-check workload of record.
for eng in heap calendar; do
    ./build/tools/sdfsim --workload=overload --nodes=3 --replication=2 \
        --duration=0.2 --arrival-rate=60000 --storm=2.0 --engine="$eng" \
        --stats-json="$obs_tmp/x-$eng.json" \
        --trace="$obs_tmp/x-$eng.trace.json" \
        --stats-series="$obs_tmp/x-$eng.series.json" > /dev/null
    ./build/tools/sdfsim --workload=cluster --nodes=3 --replication=2 \
        --duration=0.3 --engine="$eng" \
        --stats-json="$obs_tmp/xc-$eng.json" > /dev/null
    # The ycsb storm adds phased arrivals + cluster scans to the
    # cross-checked surface (per-phase p99s and SLO counters must be
    # byte-identical across engines too).
    ./build/tools/sdfsim --workload=ycsb --profile=storm --nodes=3 \
        --replication=2 --duration=0.2 --arrival-rate=30000 \
        --engine="$eng" \
        --stats-json="$obs_tmp/xy-$eng.json" \
        --stats-series="$obs_tmp/xy-$eng.series.json" > /dev/null
done
cmp "$obs_tmp/x-heap.json" "$obs_tmp/x-calendar.json"
cmp "$obs_tmp/x-heap.trace.json" "$obs_tmp/x-calendar.trace.json"
cmp "$obs_tmp/x-heap.series.json" "$obs_tmp/x-calendar.series.json"
cmp "$obs_tmp/xc-heap.json" "$obs_tmp/xc-calendar.json"
cmp "$obs_tmp/xy-heap.json" "$obs_tmp/xy-calendar.json"
cmp "$obs_tmp/xy-heap.series.json" "$obs_tmp/xy-calendar.series.json"

echo "== warnings-as-errors build =="
cmake -B build-werror -S . -DSDF_WERROR=ON > /dev/null
cmake --build build-werror -j
(cd build-werror && ctest --output-on-failure -j "$@")

echo "== sanitizer build (ASan+UBSan) =="
cmake -B build-asan -S . -DSDF_SANITIZE=ON > /dev/null
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j "$@")
# The recovery paths (restart scan, rebalance streaming, zombie-store
# detach) under the sanitizers as well.
./build-asan/tools/sdfsim --workload=cluster --nodes=3 --replication=2 \
    --duration=0.3 --kill-node=0 --rebalance > /dev/null
./build-asan/tools/sdfsim --workload=cluster --nodes=3 --replication=2 \
    --duration=0.3 --restart-node=1 > /dev/null
# The overload path (open-loop driver, client windows/batches/hedges,
# admission sheds, fail-slow deferral) under the sanitizers as well.
./build-asan/tools/sdfsim --workload=overload --nodes=3 --replication=2 \
    --duration=0.2 --arrival-rate=60000 --storm=2.0 > /dev/null
./build-asan/tools/sdfsim --workload=overload --nodes=3 --replication=2 \
    --duration=0.2 --fail-slow-node=1 --no-breaker > /dev/null
# Both engines under the sanitizers (ctest above runs the default
# calendar engine; this covers the reference heap path too).
./build-asan/tools/sdfsim --workload=overload --nodes=3 --replication=2 \
    --duration=0.2 --arrival-rate=60000 --storm=2.0 --engine=heap \
    > /dev/null
# The ycsb storm under the sanitizers: phased arrivals, hot-range skew,
# cluster scan fan-out/merge, and per-phase accounting.
./build-asan/tools/sdfsim --workload=ycsb --profile=storm --nodes=3 \
    --replication=2 --duration=0.2 --arrival-rate=30000 > /dev/null
./build-asan/tools/sdfsim --workload=ycsb --profile=e --nodes=3 \
    --replication=2 --duration=0.2 --arrival-rate=400 --keys=200 \
    > /dev/null

echo "All checks passed."
