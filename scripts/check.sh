#!/usr/bin/env bash
# Build and run the full test suite twice: a normal RelWithDebInfo build,
# then an ASan+UBSan build (-DSDF_SANITIZE=ON) in a separate build tree.
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== normal build =="
cmake -B build -S . > /dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$@")

echo "== sanitizer build (ASan+UBSan) =="
cmake -B build-asan -S . -DSDF_SANITIZE=ON > /dev/null
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j "$@")

echo "All checks passed."
