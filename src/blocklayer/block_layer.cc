#include "blocklayer/block_layer.h"

#include <utility>

#include "obs/hub.h"
#include "util/assert.h"

namespace sdf::blocklayer {

BlockLayer::BlockLayer(sim::Simulator &sim, core::BlockDevice &device,
                       const BlockLayerConfig &config)
    : sim_(sim), device_(device), config_(config),
      channels_(device.channel_count())
{
    for (auto &ch : channels_) {
        for (uint32_t u = 0; u < device.units_per_channel(); ++u)
            ch.clean_units.push_back(u);
    }

    if (obs::Hub *hub = sim.hub()) {
        hub_ = hub;
        obs::MetricsRegistry &m = hub->metrics();
        metric_prefix_ = m.UniquePrefix("blocklayer");
        m.RegisterCounter(metric_prefix_ + ".puts", &stats_.puts);
        m.RegisterCounter(metric_prefix_ + ".gets", &stats_.gets);
        m.RegisterCounter(metric_prefix_ + ".deletes", &stats_.deletes);
        m.RegisterCounter(metric_prefix_ + ".inline_erases",
                          &stats_.inline_erases);
        m.RegisterCounter(metric_prefix_ + ".background_erases",
                          &stats_.background_erases);
        m.RegisterCounter(metric_prefix_ + ".failed_ops", &stats_.failed_ops);
        m.RegisterCounter(metric_prefix_ + ".lost_blocks",
                          &stats_.lost_blocks);
        m.RegisterCounter(metric_prefix_ + ".redirected_writes",
                          &stats_.redirected_writes);
        m.RegisterGauge(metric_prefix_ + ".free_units",
                        [this]() { return static_cast<double>(FreeUnits()); });
    }
}

BlockLayer::~BlockLayer()
{
    if (hub_ != nullptr) hub_->metrics().UnregisterPrefix(metric_prefix_);
}

uint64_t
BlockLayer::FreeUnits() const
{
    uint64_t total = 0;
    for (const auto &ch : channels_)
        total += ch.clean_units.size() + ch.dirty_units.size();
    return total;
}

void
BlockLayer::Fail(IoCallback done, core::IoError error)
{
    ++stats_.failed_ops;
    if (done) {
        sim_.Post([done = std::move(done), error]() { done(error); });
    }
}

uint32_t
BlockLayer::ChannelLoad(uint32_t channel) const
{
    const ChannelState &cs = channels_[channel];
    return static_cast<uint32_t>(cs.queues[0].size() + cs.queues[1].size()) +
           cs.reads_inflight + cs.writes_inflight;
}

uint32_t
BlockLayer::PickWriteChannel(uint64_t id) const
{
    if (config_.placement_policy == PlacementPolicy::kIdHash) {
        // Degraded mode: a dead channel's hash slots probe forward to the
        // next surviving channel so writes keep completing.
        const auto n = static_cast<uint32_t>(channels_.size());
        uint32_t c = ChannelOf(id);
        for (uint32_t i = 0; i < n && device_.ChannelDead(c); ++i)
            c = (c + 1) % n;
        return c;
    }
    // Least-loaded placement (the paper's future-work scheduler): lowest
    // queue depth wins; ties broken by free-unit count, then by the hash
    // channel so an idle system still round-robins.
    uint32_t best = ChannelOf(id);
    auto better = [this](uint32_t a, uint32_t b) {
        const bool da = device_.ChannelDead(a), db = device_.ChannelDead(b);
        if (da != db) return !da;  // A surviving channel beats a dead one.
        const uint32_t la = ChannelLoad(a), lb = ChannelLoad(b);
        if (la != lb) return la < lb;
        const size_t fa =
            channels_[a].clean_units.size() + channels_[a].dirty_units.size();
        const size_t fb =
            channels_[b].clean_units.size() + channels_[b].dirty_units.size();
        return fa > fb;
    };
    for (uint32_t c = 0; c < channels_.size(); ++c) {
        if (better(c, best)) best = c;
    }
    return best;
}

void
BlockLayer::Put(uint64_t id, IoCallback done, const uint8_t *data,
                int priority)
{
    ++stats_.puts;
    if (id_map_.count(id)) {
        Fail(std::move(done), core::IoError::kContractViolation);  // Write-once.
        return;
    }
    const uint32_t ch = PickWriteChannel(id);
    ChannelState &cs = channels_[ch];
    if (cs.clean_units.empty() && cs.dirty_units.empty() &&
        !cs.bg_erase_running) {
        Fail(std::move(done), core::IoError::kNoSpace);
        return;
    }
    Enqueue(ch, Op{false, id, 0, device_.unit_bytes(), std::move(done), data,
                   nullptr, priority, next_seq_++});
}

void
BlockLayer::Get(uint64_t id, uint64_t offset, uint64_t length,
                IoCallback done, std::vector<uint8_t> *out, int priority)
{
    ++stats_.gets;
    auto it = id_map_.find(id);
    if (it == id_map_.end()) {
        Fail(std::move(done), core::IoError::kNotFound);
        return;
    }
    const uint32_t ch = it->second.first;
    Op op{true, id, offset, length, std::move(done), nullptr, out, priority,
          next_seq_++};
    Enqueue(ch, std::move(op));
}

bool
BlockLayer::Delete(uint64_t id)
{
    auto it = id_map_.find(id);
    if (it == id_map_.end()) return false;
    ++stats_.deletes;
    const auto [ch, unit] = it->second;
    id_map_.erase(it);
    channels_[ch].dirty_units.push_back(unit);
    if (config_.erase_policy == ErasePolicy::kBackground)
        MaybeBackgroundErase(ch);
    return true;
}

bool
BlockLayer::DebugInstall(uint64_t id)
{
    if (id_map_.count(id)) return false;
    const uint32_t ch = ChannelOf(id);
    ChannelState &cs = channels_[ch];
    if (cs.clean_units.empty()) return false;
    const uint32_t unit = cs.clean_units.front();
    if (device_.unit_state(ch, unit) != core::UnitState::kUnwritten)
        return false;  // Only fresh units can be force-installed.
    cs.clean_units.pop_front();
    device_.DebugForceWritten(ch, unit);
    id_map_[id] = {ch, unit};
    return true;
}

void
BlockLayer::Enqueue(uint32_t ch, Op op)
{
    const int cls = op.priority == kClientPriority ? 0 : 1;
    channels_[ch].queues[cls].push_back(std::move(op));
    Dispatch(ch);
}

void
BlockLayer::Dispatch(uint32_t ch)
{
    ChannelState &cs = channels_[ch];
    // Issue from the high-priority class first; within a class, reads may
    // overtake writes under kReadPriority.
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (auto &queue : cs.queues) {
            if (queue.empty()) continue;
            if (TryIssue(ch, queue, /*allow_write=*/true)) {
                progressed = true;
                break;
            }
            // Blocked: don't let the low class overtake the high class.
            break;
        }
    }
    if (config_.erase_policy == ErasePolicy::kBackground)
        MaybeBackgroundErase(ch);
}

bool
BlockLayer::TryIssue(uint32_t ch, std::deque<Op> &queue, bool allow_write)
{
    ChannelState &cs = channels_[ch];
    // Find the op to issue: front, or the first read under kReadPriority.
    size_t idx = 0;
    if (config_.sched_policy == SchedPolicy::kReadPriority &&
        !queue.front().is_read) {
        for (size_t i = 0; i < queue.size(); ++i) {
            if (queue[i].is_read) {
                idx = i;
                break;
            }
        }
    }
    Op &candidate = queue[idx];
    if (candidate.is_read) {
        if (cs.writes_inflight > 0 ||
            cs.reads_inflight >= config_.read_concurrency) {
            return false;
        }
        Op op = std::move(candidate);
        queue.erase(queue.begin() + static_cast<long>(idx));
        IssueRead(ch, std::move(op));
        return true;
    }
    if (!allow_write || cs.writes_inflight > 0 || cs.reads_inflight > 0)
        return false;
    // Hold the write while its only candidate unit is mid-background-erase;
    // the erase completion re-dispatches.
    if (cs.clean_units.empty() && cs.dirty_units.empty() &&
        cs.bg_erase_running) {
        return false;
    }
    Op op = std::move(queue.front());
    queue.pop_front();
    IssueWrite(ch, std::move(op));
    return true;
}

void
BlockLayer::IssueRead(uint32_t ch, Op op)
{
    ChannelState &cs = channels_[ch];
    ++cs.reads_inflight;
    auto it = id_map_.find(op.id);
    if (it == id_map_.end()) {
        // Deleted while queued.
        --cs.reads_inflight;
        Fail(std::move(op.done), core::IoError::kNotFound);
        Dispatch(ch);
        return;
    }
    const uint32_t unit = it->second.second;
    device_.Read(ch, unit, op.offset, op.length,
                 [this, ch, unit, id = op.id,
                  done = std::move(op.done)](core::IoStatus st) {
                     ChannelState &cs2 = channels_[ch];
                     --cs2.reads_inflight;
                     if (st.error == core::IoError::kReadUncorrectable) {
                         // The device exhausted its retry ladder and
                         // retired the pages: the block's data is gone.
                         // Drop the id so the store falls back to a
                         // replica and re-replicates, and recycle the
                         // unit for future writes.
                         auto it2 = id_map_.find(id);
                         if (it2 != id_map_.end() &&
                             it2->second.second == unit) {
                             id_map_.erase(it2);
                             cs2.dirty_units.push_back(unit);
                             ++stats_.lost_blocks;
                         }
                     }
                     if (done) done(st);
                     Dispatch(ch);
                 },
                 op.out);
}

bool
BlockLayer::RedirectWrite(uint64_t id, const uint8_t *data, int priority,
                          uint32_t redirects, uint32_t from, IoCallback &done)
{
    if (redirects + 1 >= channels_.size()) return false;
    for (uint32_t i = 1; i < channels_.size(); ++i) {
        const auto c =
            static_cast<uint32_t>((from + i) % channels_.size());
        if (device_.ChannelDead(c)) continue;
        ChannelState &cs = channels_[c];
        if (cs.clean_units.empty() && cs.dirty_units.empty() &&
            !cs.bg_erase_running) {
            continue;
        }
        ++stats_.redirected_writes;
        Enqueue(c, Op{false, id, 0, device_.unit_bytes(), std::move(done),
                      data, nullptr, priority, next_seq_++, redirects + 1});
        return true;
    }
    return false;
}

void
BlockLayer::IssueWrite(uint32_t ch, Op op)
{
    ChannelState &cs = channels_[ch];
    ++cs.writes_inflight;

    // Pick a destination unit: prefer an already-clean unit; fall back to a
    // dirty one (its erase then runs inline, on the write's critical path).
    uint32_t unit;
    if (!cs.clean_units.empty()) {
        unit = cs.clean_units.front();
        cs.clean_units.pop_front();
    } else if (!cs.dirty_units.empty()) {
        unit = cs.dirty_units.front();
        cs.dirty_units.pop_front();
    } else {
        --cs.writes_inflight;
        Fail(std::move(op.done), core::IoError::kNoSpace);
        Dispatch(ch);
        return;
    }

    auto write_step = [this, ch, unit, id = op.id, data = op.data,
                       priority = op.priority, redirects = op.redirects,
                       done = std::move(op.done)](core::IoStatus erased) mutable {
        if (!erased.ok()) {
            ChannelState &cs2 = channels_[ch];
            --cs2.writes_inflight;
            if (erased.error == core::IoError::kChannelDead &&
                RedirectWrite(id, data, priority, redirects, ch, done)) {
                Dispatch(ch);
                return;
            }
            Fail(std::move(done), erased.error);
            Dispatch(ch);
            return;
        }
        device_.WriteUnit(
            ch, unit,
            [this, ch, unit, id, data, priority, redirects,
             done = std::move(done)](core::IoStatus st) mutable {
                ChannelState &cs2 = channels_[ch];
                --cs2.writes_inflight;
                if (st.ok()) {
                    id_map_[id] = {ch, unit};
                    if (done) done(st);
                } else {
                    cs2.dirty_units.push_back(unit);
                    if (st.error == core::IoError::kChannelDead &&
                        RedirectWrite(id, data, priority, redirects, ch,
                                      done)) {
                        // Rerouted; completion comes from the new channel.
                    } else {
                        ++stats_.failed_ops;
                        if (done) done(st);
                    }
                }
                Dispatch(ch);
            },
            data);
    };

    if (device_.unit_state(ch, unit) == core::UnitState::kErased) {
        write_step(true);
    } else {
        ++stats_.inline_erases;
        device_.EraseUnit(ch, unit, std::move(write_step));
    }
}

void
BlockLayer::MaybeBackgroundErase(uint32_t ch)
{
    ChannelState &cs = channels_[ch];
    if (cs.bg_erase_running || cs.dirty_units.empty()) return;
    // Only erase while the channel is otherwise idle.
    if (cs.reads_inflight > 0 || cs.writes_inflight > 0) return;
    if (!cs.queues[0].empty() || !cs.queues[1].empty()) return;

    cs.bg_erase_running = true;
    const uint32_t unit = cs.dirty_units.front();
    cs.dirty_units.pop_front();
    device_.EraseUnit(ch, unit, [this, ch, unit](bool ok) {
        ChannelState &cs2 = channels_[ch];
        cs2.bg_erase_running = false;
        ++stats_.background_erases;
        if (ok) {
            cs2.clean_units.push_back(unit);
        }
        Dispatch(ch);
        MaybeBackgroundErase(ch);
    });
}

}  // namespace sdf::blocklayer
