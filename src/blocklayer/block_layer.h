/**
 * @file
 * Baidu's user-space block layer over SDF (§2.4).
 *
 * The layer accepts fixed-size (8 MB) writes identified by unique 64-bit
 * IDs, hashes consecutive IDs round-robin over the 44 channels, manages
 * per-channel pools of erased/dirty units, and schedules the explicit
 * erase operations the SDF interface exposes. Erase scheduling is the
 * design lever the paper highlights: erases can run inline before each
 * write (their measured configuration, Figure 8) or in the background
 * during idle periods (their stated motivation for exposing erase).
 * Client requests can be prioritized over internal (compaction) traffic.
 */
#ifndef SDF_BLOCKLAYER_BLOCK_LAYER_H
#define SDF_BLOCKLAYER_BLOCK_LAYER_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sdf/block_device.h"
#include "sim/simulator.h"

namespace sdf::obs {
class Hub;
}  // namespace sdf::obs

namespace sdf::blocklayer {

using core::IoCallback;
using util::TimeNs;

/** When physical erases run relative to writes. */
enum class ErasePolicy : uint8_t
{
    kEraseOnWrite,  ///< Erase immediately before each write (paper's setup).
    kBackground,    ///< Erase dirty units during channel idle time.
};

/** How the per-channel queue is ordered. */
enum class SchedPolicy : uint8_t
{
    kPriorityFifo,   ///< Client-priority, FIFO within a priority class.
    kReadPriority,   ///< Additionally lets reads overtake writes (§2.4
                     ///< future work: on-demand reads first).
};

/** How Put() picks the channel for a new block. */
enum class PlacementPolicy : uint8_t
{
    kIdHash,       ///< id % channels (the paper's deployed round-robin).
    kLeastLoaded,  ///< §2.4/§5 future work: the load-balance-aware
                   ///< scheduler — place on the least-loaded channel so a
                   ///< skewed ID stream cannot overload one channel.
};

/** Request priority classes. */
inline constexpr int kClientPriority = 0;
inline constexpr int kInternalPriority = 1;

/** Block layer construction options. */
struct BlockLayerConfig
{
    ErasePolicy erase_policy = ErasePolicy::kEraseOnWrite;
    SchedPolicy sched_policy = SchedPolicy::kPriorityFifo;
    PlacementPolicy placement_policy = PlacementPolicy::kIdHash;
    /** Concurrent reads dispatched per channel (writes are exclusive). */
    uint32_t read_concurrency = 2;
};

/** Cumulative layer statistics. */
struct BlockLayerStats
{
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t deletes = 0;
    uint64_t inline_erases = 0;
    uint64_t background_erases = 0;
    uint64_t failed_ops = 0;
    /** Blocks whose data became unreadable (device retired the pages). */
    uint64_t lost_blocks = 0;
    /** Writes rerouted from a dead channel to a surviving one. */
    uint64_t redirected_writes = 0;
};

/**
 * The user-space block layer. IDs are write-once: a Put of an existing ID
 * fails (CCDB allocates fresh IDs from a counter service; §2.4).
 */
class BlockLayer
{
  public:
    BlockLayer(sim::Simulator &sim, core::BlockDevice &device,
               const BlockLayerConfig &config);
    ~BlockLayer();

    BlockLayer(const BlockLayer &) = delete;
    BlockLayer &operator=(const BlockLayer &) = delete;

    /** Bytes in one block (the device's 8 MB write unit). */
    uint64_t block_bytes() const { return device_.unit_bytes(); }

    /** Total units the layer can still write without reuse. */
    uint64_t FreeUnits() const;

    /** Store one 8 MB block under @p id. */
    void Put(uint64_t id, IoCallback done, const uint8_t *data = nullptr,
             int priority = kClientPriority);

    /** Read @p length bytes at @p offset within block @p id. */
    void Get(uint64_t id, uint64_t offset, uint64_t length, IoCallback done,
             std::vector<uint8_t> *out = nullptr,
             int priority = kClientPriority);

    /** Drop block @p id; its unit becomes erase-pending. */
    bool Delete(uint64_t id);

    /** True if @p id is stored. */
    bool Exists(uint64_t id) const { return id_map_.count(id) != 0; }

    /** IDs of every stored block, ascending (recovery scans). */
    std::vector<uint64_t>
    StoredIds() const
    {
        std::vector<uint64_t> ids;
        ids.reserve(id_map_.size());
        for (const auto &[id, loc] : id_map_) ids.push_back(id);
        std::sort(ids.begin(), ids.end());
        return ids;
    }

    /**
     * Instantly install block @p id as already written (simulation
     * backdoor for preconditioning). @return false if the channel is full.
     */
    bool DebugInstall(uint64_t id);

    const BlockLayerStats &stats() const { return stats_; }
    core::BlockDevice &device() { return device_; }

    /** Round-robin hash channel for @p id (kIdHash placement). */
    uint32_t ChannelOf(uint64_t id) const
    {
        return static_cast<uint32_t>(id % device_.channel_count());
    }

    /** Queued + in-flight operations on @p channel (load metric). */
    uint32_t ChannelLoad(uint32_t channel) const;

  private:
    struct Op
    {
        bool is_read;
        uint64_t id;
        uint64_t offset;
        uint64_t length;
        IoCallback done;
        const uint8_t *data;
        std::vector<uint8_t> *out;
        int priority;
        uint64_t seq;
        uint32_t redirects = 0;  ///< Dead-channel reroutes so far.
    };

    struct ChannelState
    {
        std::deque<uint32_t> clean_units;  ///< Erased or never written.
        std::deque<uint32_t> dirty_units;  ///< Deleted; erase pending.
        std::deque<Op> queues[2];          ///< Indexed by priority class.
        uint32_t reads_inflight = 0;
        uint32_t writes_inflight = 0;
        bool bg_erase_running = false;
    };

    uint32_t PickWriteChannel(uint64_t id) const;
    void Enqueue(uint32_t ch, Op op);
    void Dispatch(uint32_t ch);
    bool TryIssue(uint32_t ch, std::deque<Op> &queue, bool allow_write);
    void IssueRead(uint32_t ch, Op op);
    void IssueWrite(uint32_t ch, Op op);
    void MaybeBackgroundErase(uint32_t ch);
    void Fail(IoCallback done, core::IoError error);

    /**
     * Re-enqueue a write that failed because its channel died onto a
     * surviving channel with space. Consumes @p done on success. Returns
     * false (leaving @p done intact) when no live channel can take it.
     */
    bool RedirectWrite(uint64_t id, const uint8_t *data, int priority,
                       uint32_t redirects, uint32_t from, IoCallback &done);

    sim::Simulator &sim_;
    core::BlockDevice &device_;
    BlockLayerConfig config_;
    std::vector<ChannelState> channels_;
    std::unordered_map<uint64_t, std::pair<uint32_t, uint32_t>> id_map_;
    uint64_t next_seq_ = 0;
    BlockLayerStats stats_;

    obs::Hub *hub_ = nullptr;       ///< Metrics registration (see obs/hub.h).
    std::string metric_prefix_;
};

}  // namespace sdf::blocklayer

#endif  // SDF_BLOCKLAYER_BLOCK_LAYER_H
