#include "client/kv_client.h"

#include <algorithm>
#include <utility>

#include "obs/hub.h"
#include "obs/metrics.h"
#include "util/assert.h"

namespace sdf::client {

KvClient::KvClient(sim::Simulator &sim, cluster::ClusterRouter &router,
                   const KvClientConfig &cfg)
    : sim_(sim), router_(router), cfg_(cfg),
      queues_(router.endpoint_count())
{
    SDF_CHECK(cfg_.window_per_node > 0);
    SDF_CHECK(cfg_.batch_max > 0);
    if (obs::Hub *hub = sim.hub()) {
        hub_ = hub;
        obs::MetricsRegistry &m = hub->metrics();
        metric_prefix_ = m.UniquePrefix("client");
        m.RegisterCounter(metric_prefix_ + ".puts", &stats_.puts);
        m.RegisterCounter(metric_prefix_ + ".gets", &stats_.gets);
        m.RegisterCounter(metric_prefix_ + ".scans", &stats_.scans);
        m.RegisterCounter(metric_prefix_ + ".shed_queue_full",
                          &stats_.shed_queue_full);
        m.RegisterCounter(metric_prefix_ + ".queued", &stats_.queued);
        m.RegisterCounter(metric_prefix_ + ".batches", &stats_.batches);
        m.RegisterCounter(metric_prefix_ + ".batched_gets",
                          &stats_.batched_gets);
        m.RegisterCounter(metric_prefix_ + ".fallback_walks",
                          &stats_.fallback_walks);
        m.RegisterCounter(metric_prefix_ + ".ok", &stats_.ok);
        m.RegisterCounter(metric_prefix_ + ".misses", &stats_.misses);
        m.RegisterCounter(metric_prefix_ + ".overloaded",
                          &stats_.overloaded);
        m.RegisterCounter(metric_prefix_ + ".deadline_exceeded",
                          &stats_.deadline_exceeded);
        m.RegisterCounter(metric_prefix_ + ".errors", &stats_.errors);
        m.RegisterCounter(metric_prefix_ + ".hedge.launched",
                          &hedge_.launched);
        m.RegisterCounter(metric_prefix_ + ".hedge.wins", &hedge_.wins);
        m.RegisterCounter(metric_prefix_ + ".hedge.losses",
                          &hedge_.losses);
        m.RegisterCounter(metric_prefix_ + ".hedge.cancelled",
                          &hedge_.cancelled);
        m.RegisterGauge(metric_prefix_ + ".hedge.threshold_ms", [this]() {
            return static_cast<double>(HedgeThreshold()) / 1e6;
        });
        m.RegisterGauge(metric_prefix_ + ".pending", [this]() {
            size_t n = 0;
            for (const NodeQueue &q : queues_) n += q.pending.size();
            return static_cast<double>(n);
        });
        m.RegisterHistogram(metric_prefix_ + ".read_latency_ns",
                            [this]() { return &read_lat_.histogram(); });
        m.RegisterHistogram(metric_prefix_ + ".op_latency_ns",
                            [this]() { return &op_lat_.histogram(); });
        if (hub->trace() != nullptr) {
            trace_ = hub->trace();
            trace_track_ = trace_->RegisterTrack("cluster", "client");
        }
    }
}

void
KvClient::BeginPath(PendingOp &op)
{
    if (hub_ == nullptr) return;
    op.trace.trace_id = next_trace_id_++;
    op.span = sim::MakePooledShared<obs::IoSpan>(span_pool_);
    op.span->Start(sim_.Now());
    // The submit-side host work is instantaneous in the model; the op
    // waits in the client queue/window until dispatch.
    op.span->Enter(obs::Stage::kClientQueue, sim_.Now());
}

void
KvClient::EmitClientEvent(const char *name, TimeNs start, uint64_t trace_id)
{
    if (trace_ == nullptr || trace_id == 0) return;
    trace_->Complete(trace_track_, name, start, sim_.Now() - start,
                     trace_id);
}

void
KvClient::FinishPath(const std::shared_ptr<obs::IoSpan> &span,
                     const char *name, const char *stat_op,
                     uint64_t trace_id)
{
    if (!span) return;
    span->Finish(sim_.Now());
    hub_->stages().Record(stat_op, *span);
    op_lat_.Record(span->total_ns());
    EmitClientEvent(name, span->start_ns(), trace_id);
}

KvClient::~KvClient()
{
    if (hub_ != nullptr) hub_->metrics().UnregisterPrefix(metric_prefix_);
}

TimeNs
KvClient::DeadlineFromNow() const
{
    return cfg_.deadline == 0 ? 0 : sim_.Now() + cfg_.deadline;
}

TimeNs
KvClient::HedgeThreshold() const
{
    if (!cfg_.hedge_reads) return 0;
    if (read_lat_.count() < cfg_.hedge_min_samples) return 0;
    auto thr = static_cast<TimeNs>(
        read_lat_.histogram().Percentile(cfg_.hedge_quantile));
    if (cfg_.hedge_median_clamp > 0) {
        const auto clamp = static_cast<TimeNs>(
            cfg_.hedge_median_clamp * read_lat_.histogram().Percentile(50));
        if (clamp > 0) thr = std::min(thr, clamp);
    }
    return std::max(thr, cfg_.hedge_min);
}

void
KvClient::Put(uint64_t key, uint32_t value_size, PutDone done)
{
    ++stats_.puts;
    const std::vector<uint32_t> order = router_.ReadOrder(key);
    if (order.empty()) {
        ++stats_.errors;
        sim_.Post([done = std::move(done)]() {
            if (done) done(kv::OpStatus::kError);
        });
        return;
    }
    PendingOp op;
    op.is_put = true;
    op.key = key;
    op.value_size = value_size;
    op.put_done = std::move(done);
    BeginPath(op);
    Submit(order.front(), std::move(op));
}

void
KvClient::Get(uint64_t key, GetDone done)
{
    ++stats_.gets;
    const std::vector<uint32_t> order = router_.ReadOrder(key);
    if (order.empty()) {
        ++stats_.errors;
        sim_.Post([done = std::move(done)]() {
            kv::GetResult res;
            res.ok = false;
            res.status = kv::OpStatus::kError;
            if (done) done(res);
        });
        return;
    }
    PendingOp op;
    op.key = key;
    op.get_done = std::move(done);
    BeginPath(op);
    Submit(order.front(), std::move(op));
}

void
KvClient::Scan(uint64_t start_key, uint32_t limit, ScanDone done)
{
    ++stats_.scans;
    kv::OpContext ctx;
    ctx.deadline = DeadlineFromNow();
    std::shared_ptr<obs::IoSpan> span;
    if (hub_ != nullptr) {
        ctx.trace.trace_id = next_trace_id_++;
        span = sim::MakePooledShared<obs::IoSpan>(span_pool_);
        span->Start(sim_.Now());
        span->Enter(obs::Stage::kClientQueue, sim_.Now());
        // Dispatch is immediate (no window), so the queue stage is a
        // zero-length cut and the wire stage opens right away; the span
        // rides the fan-out's first member RPC (single-writer rule).
        span->Enter(obs::Stage::kRpcWire, sim_.Now());
        ctx.path = span;
    }
    router_.Scan(start_key, limit, ctx,
                 [this, span, trace_id = ctx.trace.trace_id,
                  done = std::move(done)](kv::ScanResult r) {
                     FinishPath(span, "scan", "client.path.scan", trace_id);
                     if (r.ok) {
                         ++stats_.ok;
                     } else {
                         switch (r.status) {
                             case kv::OpStatus::kOverloaded:
                                 ++stats_.overloaded;
                                 break;
                             case kv::OpStatus::kDeadlineExceeded:
                                 ++stats_.deadline_exceeded;
                                 break;
                             default: ++stats_.errors; break;
                         }
                     }
                     if (done) done(std::move(r));
                 });
}

void
KvClient::Submit(uint32_t node, PendingOp op)
{
    NodeQueue &q = queues_[node];
    if (cfg_.queue_cap != 0 && q.inflight >= cfg_.window_per_node &&
        q.pending.size() >= cfg_.queue_cap) {
        // Both the window and the queue behind it are full: shed here,
        // before this request costs anyone else anything.
        ++stats_.shed_queue_full;
        ++stats_.overloaded;
        sim_.Post([this, op = std::move(op)]() {
            // A client-side shed still settles the span: its whole (tiny)
            // lifetime is client_queue time, and the tiling stays exact.
            FinishPath(op.span, op.is_put ? "put" : "get",
                       op.is_put ? "client.path.put" : "client.path.get",
                       op.trace.trace_id);
            if (op.is_put) {
                if (op.put_done) op.put_done(kv::OpStatus::kOverloaded);
            } else if (op.get_done) {
                kv::GetResult res;
                res.ok = false;
                res.status = kv::OpStatus::kOverloaded;
                op.get_done(res);
            }
        });
        return;
    }
    if (q.inflight >= cfg_.window_per_node || !q.pending.empty()) {
        ++stats_.queued;
    }
    q.pending.push_back(std::move(op));
    Pump(node);
}

void
KvClient::Pump(uint32_t node)
{
    NodeQueue &q = queues_[node];
    while (q.inflight < cfg_.window_per_node && !q.pending.empty()) {
        if (q.pending.front().is_put) {
            PendingOp op = std::move(q.pending.front());
            q.pending.pop_front();
            DispatchPut(node, std::move(op));
            continue;
        }
        // Coalesce the contiguous run of reads at the head (FIFO order is
        // preserved; a put in between is a barrier). The batch costs one
        // window slot however many reads it carries, so depth that built
        // up while the window was full drains as batches.
        std::vector<PendingOp> gets;
        const uint32_t cap = cfg_.batch_max;
        while (gets.size() < cap && !q.pending.empty() &&
               !q.pending.front().is_put) {
            gets.push_back(std::move(q.pending.front()));
            q.pending.pop_front();
        }
        DispatchGets(node, std::move(gets));
    }
}

void
KvClient::ReleaseSlot(uint32_t node)
{
    NodeQueue &q = queues_[node];
    if (q.inflight > 0) --q.inflight;
    Pump(node);
}

void
KvClient::DispatchPut(uint32_t node, PendingOp op)
{
    NodeQueue &q = queues_[node];
    ++q.inflight;
    kv::OpContext ctx;
    ctx.deadline = DeadlineFromNow();
    ctx.trace = op.trace;
    ctx.path = op.span;
    // Dispatch closes the client-queue segment; the request is on the wire.
    if (op.span) op.span->Enter(obs::Stage::kRpcWire, sim_.Now());
    router_.PutTyped(
        op.key, op.value_size,
        [this, node, span = op.span, trace_id = op.trace.trace_id,
         done = std::move(op.put_done)](kv::OpStatus s) {
            switch (s) {
                case kv::OpStatus::kOk: ++stats_.ok; break;
                case kv::OpStatus::kOverloaded: ++stats_.overloaded; break;
                case kv::OpStatus::kDeadlineExceeded:
                    ++stats_.deadline_exceeded;
                    break;
                case kv::OpStatus::kError: ++stats_.errors; break;
            }
            FinishPath(span, "put", "client.path.put", trace_id);
            ReleaseSlot(node);
            if (done) done(s);
        },
        nullptr, ctx);
}

void
KvClient::DispatchGets(uint32_t node, std::vector<PendingOp> ops)
{
    SDF_CHECK(!ops.empty());
    NodeQueue &q = queues_[node];
    ++q.inflight;  // One RPC, one slot — batched or not.

    kv::OpContext ctx;
    ctx.deadline = DeadlineFromNow();

    std::vector<std::shared_ptr<GetOp>> recs;
    recs.reserve(ops.size());
    const TimeNs hedge_after = HedgeThreshold();
    for (PendingOp &p : ops) {
        auto op = sim::MakePooledShared<GetOp>(get_op_pool_);
        op->key = p.key;
        op->node = node;
        op->t0 = sim_.Now();
        op->deadline = ctx.deadline;
        op->done = std::move(p.get_done);
        op->trace = p.trace;
        op->span = std::move(p.span);
        // Every member's queue segment ends at dispatch. Only the first
        // member's span rides the RPC (single writer); the rest spend the
        // round trip in rpc_wire — coarse but still a correct tiling.
        if (op->span) op->span->Enter(obs::Stage::kRpcWire, sim_.Now());
        if (hedge_after != 0) {
            op->hedge_timer = sim_.Schedule(
                hedge_after, [this, op]() { LaunchHedge(op); });
        }
        recs.push_back(std::move(op));
    }
    ctx.trace = recs.front()->trace;
    ctx.path = recs.front()->span;

    if (recs.size() == 1) {
        auto op = recs.front();
        router_.GetAt(node, op->key, ctx,
                      [this, node, op](const kv::GetResult &res) {
                          ReleaseSlot(node);
                          OnPrimaryResult(op, res);
                      });
        return;
    }

    ++stats_.batches;
    stats_.batched_gets += recs.size();
    std::vector<uint64_t> keys;
    keys.reserve(recs.size());
    for (const auto &r : recs) keys.push_back(r->key);
    router_.BatchGetAt(
        node, std::move(keys), ctx,
        [this, node,
         recs = std::move(recs)](std::vector<kv::GetResult> results) {
            SDF_CHECK(results.size() == recs.size());
            ReleaseSlot(node);
            for (size_t i = 0; i < recs.size(); ++i) {
                OnPrimaryResult(recs[i], results[i]);
            }
        });
}

void
KvClient::OnPrimaryResult(const std::shared_ptr<GetOp> &op,
                          const kv::GetResult &res)
{
    if (op->settled) return;  // Hedge won; this arrival is the loser.
    if (res.ok && res.found) {
        Settle(op, res, /*from_hedge=*/false);
        return;
    }
    if (!res.ok && res.status == kv::OpStatus::kDeadlineExceeded) {
        // Out of time: a failover walk would blow the budget again.
        Settle(op, res, /*from_hedge=*/false);
        return;
    }
    // Primary missed, shed, or failed: let the replication engine walk
    // the replicas (it owns miss-authority semantics and read-repair).
    ++stats_.fallback_walks;
    kv::OpContext ctx;
    ctx.deadline = op->deadline;
    ctx.trace = op->trace;
    // The primary RPC has settled, so the walk takes over as the span's
    // (single) writer; its hops extend the same timeline.
    ctx.path = op->span;
    router_.Get(
        op->key,
        [this, op](const kv::GetResult &walked) {
            if (op->settled) return;
            Settle(op, walked, /*from_hedge=*/false);
        },
        ctx);
}

void
KvClient::LaunchHedge(const std::shared_ptr<GetOp> &op)
{
    op->hedge_timer = sim::kInvalidEvent;
    if (op->settled) return;
    // Next-best replica under current policy (breaker-aware), excluding
    // the node the primary attempt went to.
    const std::vector<uint32_t> order = router_.ReadOrder(op->key);
    uint32_t target = op->node;
    for (uint32_t n : order) {
        if (n != op->node) {
            target = n;
            break;
        }
    }
    if (target == op->node) return;  // No second replica to hedge at.
    op->hedged = true;
    ++hedge_.launched;
    // From here the parent is racing its own duplicate: attribute the
    // remaining wait to hedge_wait, not to the primary's wire time.
    if (op->span) op->span->Enter(obs::Stage::kHedgeWait, sim_.Now());
    kv::OpContext ctx;
    ctx.deadline = op->deadline;
    // The duplicate shares the parent's trace id (and names it as parent)
    // but carries no span: the parent owns the one timeline.
    ctx.trace.trace_id = op->trace.trace_id;
    ctx.trace.parent_span = op->trace.trace_id;
    const TimeNs t_hedge = sim_.Now();
    router_.GetAt(target, op->key, ctx,
                  [this, op, t_hedge](const kv::GetResult &res) {
                      // The hedge attempt's own lifetime, win or lose.
                      EmitClientEvent("hedge", t_hedge,
                                      op->trace.trace_id);
                      if (op->settled) return;
                      // Only a served value settles via the hedge; a miss
                      // or failure is not authoritative for one replica.
                      if (res.ok && res.found) {
                          Settle(op, res, /*from_hedge=*/true);
                      }
                  });
}

void
KvClient::Settle(const std::shared_ptr<GetOp> &op, const kv::GetResult &res,
                 bool from_hedge)
{
    op->settled = true;
    if (op->hedge_timer != sim::kInvalidEvent) {
        // Primary came back under the threshold: the hedge never fired.
        sim_.Cancel(op->hedge_timer);
        op->hedge_timer = sim::kInvalidEvent;
        ++hedge_.cancelled;
    } else if (op->hedged) {
        if (from_hedge) {
            ++hedge_.wins;
        } else {
            ++hedge_.losses;
        }
    }
    if (res.ok) read_lat_.Record(sim_.Now() - op->t0);
    FinishPath(op->span, "get", "client.path.get", op->trace.trace_id);
    CountOutcome(res);
    // The window slot belongs to the primary RPC, not this op — it was
    // released when that RPC returned.
    if (op->done) op->done(res);
}

void
KvClient::CountOutcome(const kv::GetResult &res)
{
    if (res.ok) {
        if (res.found) {
            ++stats_.ok;
        } else {
            ++stats_.misses;
        }
        return;
    }
    switch (res.status) {
        case kv::OpStatus::kOverloaded: ++stats_.overloaded; break;
        case kv::OpStatus::kDeadlineExceeded:
            ++stats_.deadline_exceeded;
            break;
        default: ++stats_.errors; break;
    }
}

workload::KvService
KvClient::Service()
{
    workload::KvService svc;
    svc.put = [this](uint64_t key, uint32_t value_size,
                     kv::PutCallback done) {
        Put(key, value_size, [done = std::move(done)](kv::OpStatus s) {
            if (done) done(s == kv::OpStatus::kOk);
        });
    };
    svc.put_typed = [this](uint64_t key, uint32_t value_size,
                           kv::PutStatusCallback done) {
        Put(key, value_size, std::move(done));
    };
    svc.get = [this](uint64_t key, kv::GetCallback done) {
        Get(key, std::move(done));
    };
    svc.scan = [this](uint64_t start_key, uint32_t limit,
                      std::function<void(const kv::ScanResult &)> done) {
        Scan(start_key, limit,
             [done = std::move(done)](kv::ScanResult r) { done(r); });
    };
    return svc;
}

}  // namespace sdf::client
