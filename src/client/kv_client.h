/**
 * @file
 * Async client front door for the sharded KV cluster.
 *
 * The paper's web-scale setting serves open-loop traffic: requests arrive
 * when users click, not when the previous response returns. A client
 * library facing that traffic needs three defenses the raw router lacks:
 *
 *  - a bounded outstanding-request window per destination node, with a
 *    bounded submit queue behind it — when both fill, new work is shed
 *    *at the client* with a typed kOverloaded, before it burns a NIC or
 *    a server admission slot;
 *  - request coalescing: queued reads headed for the same node ride one
 *    batched RPC (StorageNode::BatchGet), amortizing per-message dispatch
 *    cost exactly when pressure is highest — the queue only has depth
 *    when the window is full;
 *  - hedged reads: when a primary read exceeds an adaptive threshold
 *    (the observed read-latency p99, floored), a second request fires at
 *    the next replica and the first result wins. This converts one
 *    fail-slow node's latency into a bounded detour instead of a tail.
 *
 * Every operation carries an absolute deadline (OpContext) that
 * propagates through net::Network to the server, so overload turns into
 * fast typed sheds rather than unbounded queueing.
 */
#ifndef SDF_CLIENT_KV_CLIENT_H
#define SDF_CLIENT_KV_CLIENT_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "sim/pool.h"
#include "sim/simulator.h"
#include "util/latency_recorder.h"
#include "util/units.h"
#include "workload/kv_driver.h"

namespace sdf::client {

using util::TimeNs;

/** Front-door policy knobs. */
struct KvClientConfig
{
    /** Outstanding RPCs per destination node before submits queue. A
     *  coalesced read batch counts once — it also occupies exactly one
     *  server admission slot — so pressure makes batches, not stalls. */
    uint32_t window_per_node = 64;
    /** Queued ops per node behind a full window before submits are shed
     *  client-side with kOverloaded. 0 = unbounded queue (no client shed). */
    uint32_t queue_cap = 1024;
    /** Max reads coalesced into one BatchGet RPC; 1 disables batching. */
    uint32_t batch_max = 8;
    /** Per-op deadline budget (absolute deadline = submit + this);
     *  0 = none — the transport's timeout ladder still applies. */
    TimeNs deadline = 0;
    /** Fire a second replica read past the adaptive threshold. */
    bool hedge_reads = true;
    /** Latency quantile the hedge threshold adapts to. */
    double hedge_quantile = 99.0;
    /** Clamp the threshold to this multiple of the median read latency.
     *  A fail-slow replica inflates the very p99 the threshold adapts to
     *  (the slow reads ARE the tail), so unclamped it would chase the
     *  latency it exists to cut; the median stays healthy as long as most
     *  replicas are. 0 disables the clamp. */
    double hedge_median_clamp = 3.0;
    /** Threshold floor: never hedge earlier than this. */
    TimeNs hedge_min = util::UsToNs(500);
    /** Completed reads needed before hedging activates (threshold is
     *  noise until the histogram has mass). */
    uint64_t hedge_min_samples = 64;
};

/** Cumulative front-door counters ("client.*"). */
struct ClientStats
{
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t scans = 0;
    uint64_t shed_queue_full = 0;  ///< Client-side typed kOverloaded.
    uint64_t queued = 0;           ///< Submits that waited for a slot.
    uint64_t batches = 0;          ///< Coalesced BatchGet RPCs issued.
    uint64_t batched_gets = 0;     ///< Reads carried inside those RPCs.
    uint64_t fallback_walks = 0;   ///< Primary read failed -> engine walk.
    uint64_t ok = 0;               ///< Ops served (incl. clean misses' put acks).
    uint64_t misses = 0;
    uint64_t overloaded = 0;       ///< Typed kOverloaded outcomes.
    uint64_t deadline_exceeded = 0;
    uint64_t errors = 0;
};

/** Hedged-read accounting ("client.hedge.*"). */
struct HedgeStats
{
    uint64_t launched = 0;   ///< Second requests actually sent.
    uint64_t wins = 0;       ///< Hedge delivered the value first.
    uint64_t losses = 0;     ///< Primary settled after the hedge fired.
    uint64_t cancelled = 0;  ///< Timer cancelled — primary beat the threshold.
};

/**
 * Asynchronous KV client over a ClusterRouter. Submit never blocks: it
 * either dispatches, queues, or sheds (typed, via the callback, on the
 * next simulator step). Single-simulator-threaded like everything else.
 */
class KvClient
{
  public:
    using PutDone = kv::PutStatusCallback;
    using GetDone = kv::GetCallback;
    using ScanDone = cluster::StorageNode::ScanDoneCallback;

    KvClient(sim::Simulator &sim, cluster::ClusterRouter &router,
             const KvClientConfig &cfg = {});
    ~KvClient();

    KvClient(const KvClient &) = delete;
    KvClient &operator=(const KvClient &) = delete;

    /** Async write through replication; @p done gets the typed outcome. */
    void Put(uint64_t key, uint32_t value_size, PutDone done);

    /**
     * Async read: primary replica first (coalesced when queued), hedged
     * past the adaptive threshold, falling back to the engine's failover
     * walk when the primary cannot serve.
     */
    void Get(uint64_t key, GetDone done);

    /**
     * Async range scan (see ClusterRouter::Scan). Scans bypass the
     * per-node window and queue — they fan out to every live node, so no
     * single destination window applies and they are never coalesced —
     * but they carry the same deadline, a trace id, and their own
     * critical-path span recorded under `client.path.scan`.
     */
    void Scan(uint64_t start_key, uint32_t limit, ScanDone done);

    /** The front door as a generic workload target. */
    workload::KvService Service();

    const ClientStats &stats() const { return stats_; }
    const HedgeStats &hedge_stats() const { return hedge_; }
    /** Completed-read latencies (feeds the hedge threshold). */
    const util::LatencyRecorder &read_latencies() const { return read_lat_; }
    /** Current hedge threshold, 0 while inactive. */
    TimeNs HedgeThreshold() const;

  private:
    struct PendingOp
    {
        bool is_put = false;
        uint64_t key = 0;
        uint32_t value_size = 0;
        PutDone put_done;
        GetDone get_done;
        obs::TraceContext trace;           ///< Distributed-trace identity.
        std::shared_ptr<obs::IoSpan> span; ///< Critical-path timeline.
    };

    /** One read in flight; shared by primary, hedge and fallback paths. */
    struct GetOp
    {
        uint64_t key = 0;
        uint32_t node = 0;       ///< Primary node (the hedge avoids it).
        TimeNs t0 = 0;           ///< Dispatch time.
        TimeNs deadline = 0;     ///< Absolute, 0 = none.
        bool settled = false;
        bool hedged = false;     ///< Hedge request actually launched.
        sim::EventId hedge_timer = sim::kInvalidEvent;
        GetDone done;
        obs::TraceContext trace;
        std::shared_ptr<obs::IoSpan> span;
    };

    struct NodeQueue
    {
        uint32_t inflight = 0;
        std::deque<PendingOp> pending;
    };

    void Submit(uint32_t node, PendingOp op);
    void Pump(uint32_t node);
    void ReleaseSlot(uint32_t node);
    void DispatchPut(uint32_t node, PendingOp op);
    void DispatchGets(uint32_t node, std::vector<PendingOp> ops);
    void OnPrimaryResult(const std::shared_ptr<GetOp> &op,
                         const kv::GetResult &res);
    void LaunchHedge(const std::shared_ptr<GetOp> &op);
    void Settle(const std::shared_ptr<GetOp> &op, const kv::GetResult &res,
                bool from_hedge);
    void CountOutcome(const kv::GetResult &res);
    TimeNs DeadlineFromNow() const;
    /** Start the op's trace identity + critical-path span (hub only). */
    void BeginPath(PendingOp &op);
    /** Finish @p span, fold it into `client.path.<op>`, emit the client
     *  track event. Safe on null spans (no hub). */
    void FinishPath(const std::shared_ptr<obs::IoSpan> &span,
                    const char *name, const char *stat_op,
                    uint64_t trace_id);
    /** Complete-event on the client track; no-op unless tracing. */
    void EmitClientEvent(const char *name, TimeNs start, uint64_t trace_id);

    sim::Simulator &sim_;
    cluster::ClusterRouter &router_;
    KvClientConfig cfg_;
    /** Per-request allocation pools: every get allocates one GetOp record
     *  and (under a hub) one IoSpan timeline — both on the hot path.
     *  Declared before the queues so outstanding pooled pointers drain
     *  back before the pools are torn down. */
    sim::BlockPool get_op_pool_;
    sim::BlockPool span_pool_;
    std::vector<NodeQueue> queues_;
    ClientStats stats_;
    HedgeStats hedge_;
    util::LatencyRecorder read_lat_;
    /** All settled front-door ops (puts + gets); feeds windowed series. */
    util::LatencyRecorder op_lat_;
    /** Deterministic trace-id source: ids are handed out in submit order,
     *  so same-seed runs produce byte-identical traces. */
    uint64_t next_trace_id_ = 1;

    obs::Hub *hub_ = nullptr;
    obs::TraceSink *trace_ = nullptr;
    int32_t trace_track_ = -1;
    std::string metric_prefix_;
};

}  // namespace sdf::client

#endif  // SDF_CLIENT_KV_CLIENT_H
