#include "cluster/breaker.h"

#include <algorithm>

#include "util/assert.h"

namespace sdf::cluster {

FailSlowBreaker::FailSlowBreaker(uint32_t nodes, const BreakerConfig &cfg)
    : cfg_(cfg), ewma_(nodes, 0.0), samples_(nodes, 0), open_(nodes, 0)
{
    SDF_CHECK(nodes > 0);
    SDF_CHECK(cfg_.trip_factor > cfg_.reset_factor);
    SDF_CHECK(cfg_.alpha > 0.0 && cfg_.alpha <= 1.0);
}

double
FailSlowBreaker::PeerMedian(uint32_t node) const
{
    // Median over *other* nodes with enough history; a fleet-wide slowdown
    // (overload storm) raises the median and trips nobody — the breaker
    // targets divergence, not load.
    std::vector<double> peers;
    peers.reserve(ewma_.size());
    for (uint32_t i = 0; i < ewma_.size(); ++i) {
        if (i != node && samples_[i] >= cfg_.min_samples) {
            peers.push_back(ewma_[i]);
        }
    }
    if (peers.empty()) return 0.0;
    const size_t mid = peers.size() / 2;
    std::nth_element(peers.begin(), peers.begin() + mid, peers.end());
    return peers[mid];
}

void
FailSlowBreaker::Record(uint32_t node, util::TimeNs service_time)
{
    if (!cfg_.enabled) return;
    SDF_CHECK(node < ewma_.size());
    const auto x = static_cast<double>(service_time);
    ewma_[node] = samples_[node] == 0
                      ? x
                      : cfg_.alpha * x + (1.0 - cfg_.alpha) * ewma_[node];
    ++samples_[node];
    if (samples_[node] < cfg_.min_samples) return;

    const double median = PeerMedian(node);
    if (median <= 0.0) return;
    if (open_[node] == 0) {
        if (ewma_[node] > cfg_.trip_factor * median) {
            open_[node] = 1;
            ++open_count_;
            ++stats_.trips;
        }
    } else if (ewma_[node] < cfg_.reset_factor * median) {
        open_[node] = 0;
        --open_count_;
        ++stats_.resets;
    }
}

}  // namespace sdf::cluster
