/**
 * @file
 * Fail-slow detection for the cluster router.
 *
 * Fail-stop nodes are easy: they time out and the membership drops them.
 * The expensive failure mode in production is the node that keeps
 * answering — just 5-50x slower than its peers (degraded NIC, a dying
 * flash channel, a noisy neighbor stealing its CPU). Because replication
 * reads walk replicas in placement order, one such node poisons the tail
 * latency of every key it is primary for while every health check passes.
 *
 * The breaker watches the per-node service time the router observes
 * (request out -> typed completion back), smooths it with an EWMA, and
 * compares each node against the median of its peers. A node whose EWMA
 * exceeds trip_factor x the peer median is "open": placement is
 * untouched — the node keeps its keys and keeps receiving writes, so its
 * data stays fresh — but read ordering demotes it to the back of every
 * replica list until its EWMA falls back under reset_factor x median
 * (hysteresis so a node on the boundary does not flap).
 */
#ifndef SDF_CLUSTER_BREAKER_H
#define SDF_CLUSTER_BREAKER_H

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace sdf::cluster {

/** Fail-slow breaker tuning. Disabled by default: demoting a replica is
 *  a policy decision benches/tools opt into. */
struct BreakerConfig
{
    bool enabled = false;
    /** Samples a node needs before it can be judged (or judged against). */
    uint32_t min_samples = 32;
    /** Open when EWMA > trip_factor x peer median. */
    double trip_factor = 3.0;
    /** Close again when EWMA < reset_factor x peer median. */
    double reset_factor = 1.5;
    /** EWMA smoothing weight for each new sample. */
    double alpha = 0.05;
};

/** Per-node service-time EWMA + open/closed state. */
class FailSlowBreaker
{
  public:
    struct Stats
    {
        uint64_t trips = 0;     ///< Closed -> open transitions.
        uint64_t resets = 0;    ///< Open -> closed transitions.
        uint64_t reroutes = 0;  ///< Replica orders changed by demotion.
    };

    FailSlowBreaker(uint32_t nodes, const BreakerConfig &cfg);

    /** Feed one observed service time for @p node and re-judge it. */
    void Record(uint32_t node, util::TimeNs service_time);

    bool IsOpen(uint32_t node) const { return open_[node] != 0; }
    bool AnyOpen() const { return open_count_ > 0; }
    uint32_t open_count() const { return open_count_; }
    double ewma_ms(uint32_t node) const { return ewma_[node] / 1e6; }

    void CountReroute() { ++stats_.reroutes; }
    const Stats &stats() const { return stats_; }

  private:
    double PeerMedian(uint32_t node) const;

    BreakerConfig cfg_;
    std::vector<double> ewma_;        ///< Smoothed service time, ns.
    std::vector<uint64_t> samples_;
    std::vector<uint8_t> open_;
    uint32_t open_count_ = 0;
    Stats stats_;
};

}  // namespace sdf::cluster

#endif  // SDF_CLUSTER_BREAKER_H
