#include "cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "cluster/rebalancer.h"
#include "obs/hub.h"
#include "obs/metrics.h"
#include "util/assert.h"

namespace sdf::cluster {

namespace {

/** Request-framing overhead charged on top of the payload. */
constexpr uint64_t kRpcHeaderBytes = 64;
/** Small fixed responses: a put ack, or a get miss/failure notice. */
constexpr uint64_t kAckBytes = 64;
constexpr uint64_t kNackBytes = 16;

/** Map a transport disposition onto the KV-level one. */
kv::OpStatus
CodeToStatus(net::RpcCode code)
{
    switch (code) {
        case net::RpcCode::kOk: return kv::OpStatus::kOk;
        case net::RpcCode::kOverloaded: return kv::OpStatus::kOverloaded;
        case net::RpcCode::kDeadlineExceeded:
            return kv::OpStatus::kDeadlineExceeded;
    }
    return kv::OpStatus::kError;
}

}  // namespace

StorageNode::StorageNode(sim::Simulator &sim, uint32_t id,
                         const NodeConfig &cfg)
    : sim_(sim), id_(id), clients_(cfg.clients),
      admission_cap_(cfg.admission_cap), store_cfg_(cfg.kv.store)
{
    SDF_CHECK(clients_ > 0);
    // Everything built inside this scope — the network endpoint, the
    // device, the block layer, every slice — self-registers its metrics
    // under "node<id>.*".
    obs::Hub *hub = sim.hub();
    obs::MetricsScope scope(hub != nullptr ? &hub->metrics() : nullptr,
                            "node" + std::to_string(id));
    net_ = std::make_unique<net::Network>(sim, cfg.net, clients_);
    stack_ = testbed::BuildKvStack(sim, cfg.kv, &journal_);

    if (hub != nullptr) {
        obs::MetricsRegistry &m = hub->metrics();
        metric_prefix_ = m.UniquePrefix("recovery");
        hub_ = hub;
        m.RegisterCounter(metric_prefix_ + ".restarts", &recovery_.restarts);
        m.RegisterCounter(metric_prefix_ + ".patches_scanned",
                          &recovery_.patches_scanned);
        m.RegisterCounter(metric_prefix_ + ".bytes_scanned",
                          &recovery_.bytes_scanned);
        m.RegisterCounter(metric_prefix_ + ".wal_records_replayed",
                          &recovery_.wal_records_replayed);
        m.RegisterGauge(metric_prefix_ + ".last_recovery_ms", [this]() {
            return static_cast<double>(recovery_.last_recovery_ns) / 1e6;
        });
        m.RegisterGauge(metric_prefix_ + ".running", [this]() {
            return running_ ? 1.0 : 0.0;
        });
        admission_prefix_ = m.UniquePrefix("admission");
        m.RegisterCounter(admission_prefix_ + ".admitted",
                          &admission_.admitted);
        m.RegisterCounter(admission_prefix_ + ".shed_overload",
                          &admission_.shed_overload);
        m.RegisterCounter(admission_prefix_ + ".peak_inflight",
                          &admission_.peak_inflight);
        m.RegisterGauge(admission_prefix_ + ".inflight", [this]() {
            return static_cast<double>(inflight_);
        });
        if (hub->trace() != nullptr) {
            trace_ = hub->trace();
            trace_track_ = trace_->RegisterTrack(
                "cluster", "node" + std::to_string(id));
        }
    }
}

void
StorageNode::EmitServerEvent(const char *name, util::TimeNs start,
                             uint64_t trace_id)
{
    if (trace_ == nullptr || trace_id == 0) return;
    trace_->Complete(trace_track_, name, start, sim_.Now() - start,
                     trace_id);
}

StorageNode::~StorageNode()
{
    if (hub_ != nullptr) {
        hub_->metrics().UnregisterPrefix(metric_prefix_);
        hub_->metrics().UnregisterPrefix(admission_prefix_);
    }
}

bool
StorageNode::Admit()
{
    if (admission_cap_ != 0 && inflight_ >= admission_cap_) {
        ++admission_.shed_overload;
        return false;
    }
    ++admission_.admitted;
    ++inflight_;
    admission_.peak_inflight = std::max(admission_.peak_inflight, inflight_);
    return true;
}

void
StorageNode::Release(uint64_t inc)
{
    if (inc != incarnation_ || inflight_ == 0) return;
    --inflight_;
}

void
StorageNode::Slowed(util::TimeNs start, std::function<void()> fn)
{
    if (fail_slow_mult_ <= 1.0) {
        fn();
        return;
    }
    const auto extra = static_cast<util::TimeNs>(
        (fail_slow_mult_ - 1.0) * static_cast<double>(sim_.Now() - start));
    if (extra == 0) {
        fn();
        return;
    }
    sim_.Schedule(extra, std::move(fn));
}

void
StorageNode::Stop()
{
    SDF_CHECK_MSG(running_, "node already stopped");
    running_ = false;
    // In-flight admissions die with the process; their Release()s carry
    // the old incarnation and become no-ops.
    ++incarnation_;
    inflight_ = 0;
    stack_.store->Detach();
    retired_.push_back(std::move(stack_.store));
}

void
StorageNode::Restart(sim::Callback done)
{
    SDF_CHECK_MSG(!running_, "node is still running");
    SDF_CHECK_MSG(stack_.store == nullptr, "restart already in progress");
    ++recovery_.restarts;
    const util::TimeNs t0 = sim_.Now();
    recovery_.wal_records_replayed += journal_.TotalWalRecords();
    // Patches to scan: snapshot before the store replays the WAL (replay
    // can flush new patches, which need no scan — they were just written).
    std::vector<uint64_t> scan;
    for (const kv::SliceJournal &sj : journal_.slices) {
        for (const auto &[pid, footer] : sj.patches) scan.push_back(pid);
    }
    {
        obs::Hub *hub = sim_.hub();
        obs::MetricsScope scope(hub != nullptr ? &hub->metrics() : nullptr,
                                "node" + std::to_string(id_));
        stack_.store = std::make_unique<kv::Store>(
            sim_, *stack_.storage.storage, store_cfg_, &journal_);
    }
    // The recovery scan: one full read of every recovered patch (footer +
    // entry table) at internal priority. Only after the last read lands
    // does the node serve again.
    auto finish = [this, t0, done = std::move(done)]() {
        recovery_.last_recovery_ns = sim_.Now() - t0;
        running_ = true;
        if (done) done();
    };
    if (scan.empty()) {
        sim_.Post(std::move(finish));
        return;
    }
    auto remaining = std::make_shared<size_t>(scan.size());
    auto shared_finish =
        std::make_shared<sim::Callback>(std::move(finish));
    for (uint64_t pid : scan) {
        ++recovery_.patches_scanned;
        recovery_.bytes_scanned += stack_.storage.storage->patch_bytes();
        stack_.storage.storage->GetRange(
            pid, 0, stack_.storage.storage->patch_bytes(),
            [remaining, shared_finish](core::IoStatus) {
                if (--*remaining == 0) (*shared_finish)();
            },
            nullptr, blocklayer::kInternalPriority);
    }
}

void
StorageNode::CollectLive(std::map<uint64_t, uint32_t> &out) const
{
    if (!running_ || stack_.store == nullptr) return;
    stack_.store->CollectLive(out);
}

void
StorageNode::StreamIn(uint64_t key, uint32_t value_size,
                      kv::PutCallback done,
                      std::shared_ptr<std::vector<uint8_t>> payload)
{
    if (!running_) {
        sim_.Post([done = std::move(done)]() {
            if (done) done(false);
        });
        return;
    }
    const uint32_t client = next_client_++ % clients_;
    net_->Bulk(client, uint64_t{value_size} + kRpcHeaderBytes,
               [this, key, value_size, done = std::move(done),
                payload = std::move(payload)]() mutable {
                   if (!running_) {
                       if (done) done(false);
                       return;
                   }
                   store().Put(key, value_size, std::move(done),
                               std::move(payload));
               });
}

void
StorageNode::StreamOut(uint64_t key, kv::GetCallback done)
{
    if (!running_) {
        sim_.Post([done = std::move(done)]() {
            kv::GetResult dead;
            dead.ok = false;
            done(dead);
        });
        return;
    }
    store().Get(key, [this, done = std::move(done)](const kv::GetResult &r) {
        if (!running_) {
            kv::GetResult dead;
            dead.ok = false;
            done(dead);
            return;
        }
        done(r);
    });
}

kv::ReplicaEndpoint
StorageNode::Endpoint()
{
    kv::ReplicaEndpoint ep;
    ep.put = [this](uint64_t key, uint32_t value_size,
                    kv::PutStatusCallback done,
                    std::shared_ptr<std::vector<uint8_t>> payload,
                    kv::OpContext ctx) {
        const uint32_t client = next_client_++ % clients_;
        net_->RpcTyped(
            client, uint64_t{value_size} + kRpcHeaderBytes, ctx.deadline,
            [this, key, value_size, payload, span = ctx.path,
             trace_id = ctx.trace.trace_id](
                util::TimeNs /*deadline*/, net::Network::TypedReply reply) {
                // A stopped process doesn't answer: the request just dies
                // and the client times out + fails over.
                if (!running_) return;
                const util::TimeNs t0 = sim_.Now();
                if (!Admit()) {
                    // Shed before any storage work: a fast typed nack the
                    // caller must not blindly retry.
                    EmitServerEvent("server.put", t0, trace_id);
                    reply(kNackBytes, net::RpcCode::kOverloaded);
                    return;
                }
                const uint64_t inc = incarnation_;
                if (span) span->Enter(obs::Stage::kStorage, t0);
                // Re-puts from RPC retries are idempotent: the LSM just
                // writes the same (key, size) again.
                store().Put(
                    key, value_size,
                    [this, inc, t0, span, trace_id,
                     reply = std::move(reply)](bool ok) {
                        Release(inc);
                        if (span) {
                            span->Enter(obs::Stage::kServerHandle,
                                        sim_.Now());
                        }
                        // Only a durable put acks; a storage failure stays
                        // silent so the client times out and retries
                        // (and the engine eventually fails over). The same
                        // goes for an ack racing a Stop(): the process died
                        // before replying.
                        if (ok && running_) {
                            Slowed(t0, [this, reply, t0, trace_id]() {
                                if (running_) {
                                    EmitServerEvent("server.put", t0,
                                                    trace_id);
                                    reply(kAckBytes, net::RpcCode::kOk);
                                }
                            });
                        }
                    },
                    std::move(payload));
            },
            [done = std::move(done)](net::RpcCode code) {
                if (done) done(CodeToStatus(code));
            },
            ctx.path);
    };
    ep.get = [this](uint64_t key, kv::GetCallback done, kv::OpContext ctx) {
        const uint32_t client = next_client_++ % clients_;
        auto res = std::make_shared<kv::GetResult>();
        net_->RpcTyped(
            client, kRpcHeaderBytes, ctx.deadline,
            [this, key, res, span = ctx.path,
             trace_id = ctx.trace.trace_id](util::TimeNs /*deadline*/,
                                            net::Network::TypedReply reply) {
                if (!running_) return;
                const util::TimeNs t0 = sim_.Now();
                if (!Admit()) {
                    EmitServerEvent("server.get", t0, trace_id);
                    reply(kNackBytes, net::RpcCode::kOverloaded);
                    return;
                }
                const uint64_t inc = incarnation_;
                if (span) span->Enter(obs::Stage::kStorage, t0);
                store().Get(key, [this, inc, res, t0, span, trace_id,
                                  reply = std::move(reply)](
                                     const kv::GetResult &r) {
                    Release(inc);
                    if (!running_) return;
                    if (span) {
                        span->Enter(obs::Stage::kServerHandle, sim_.Now());
                    }
                    *res = r;
                    // Failures/misses reply fast (small nack) so the
                    // router fails over to the next replica immediately
                    // instead of waiting out the retry ladder.
                    const uint64_t bytes =
                        r.ok && r.found
                            ? uint64_t{r.value_size} + kRpcHeaderBytes
                            : kNackBytes;
                    Slowed(t0, [this, reply, bytes, t0, trace_id]() {
                        if (running_) {
                            EmitServerEvent("server.get", t0, trace_id);
                            reply(bytes, net::RpcCode::kOk);
                        }
                    });
                });
            },
            [res, done = std::move(done)](net::RpcCode code) {
                if (code != net::RpcCode::kOk) {
                    kv::GetResult dead;
                    dead.ok = false;
                    dead.status = CodeToStatus(code);
                    done(dead);
                } else {
                    done(*res);
                }
            },
            ctx.path);
    };
    return ep;
}

void
StorageNode::BatchGet(std::vector<uint64_t> keys, kv::OpContext ctx,
                      BatchGetCallback done)
{
    SDF_CHECK_MSG(!keys.empty(), "empty batch");
    const uint32_t client = next_client_++ % clients_;
    const uint64_t request_bytes = kRpcHeaderBytes + 8 * keys.size();
    auto results = std::make_shared<std::vector<kv::GetResult>>();
    const size_t n = keys.size();
    net_->RpcTyped(
        client, request_bytes, ctx.deadline,
        [this, keys = std::move(keys), results, span = ctx.path,
         trace_id = ctx.trace.trace_id](
            util::TimeNs /*deadline*/, net::Network::TypedReply reply) {
            if (!running_) return;
            const util::TimeNs t0 = sim_.Now();
            // The whole batch costs one admission slot: coalescing is how
            // a client *reduces* pressure, so it must not multiply it.
            if (!Admit()) {
                EmitServerEvent("server.batch_get", t0, trace_id);
                reply(kNackBytes, net::RpcCode::kOverloaded);
                return;
            }
            const uint64_t inc = incarnation_;
            if (span) span->Enter(obs::Stage::kStorage, t0);
            results->assign(keys.size(), kv::GetResult{});
            auto remaining = std::make_shared<size_t>(keys.size());
            auto shared_reply = std::make_shared<net::Network::TypedReply>(
                std::move(reply));
            for (size_t i = 0; i < keys.size(); ++i) {
                store().Get(
                    keys[i],
                    [this, inc, i, t0, results, remaining, span, trace_id,
                     shared_reply](const kv::GetResult &r) {
                        (*results)[i] = r;
                        if (--*remaining > 0) return;
                        Release(inc);
                        if (!running_) return;
                        if (span) {
                            span->Enter(obs::Stage::kServerHandle,
                                        sim_.Now());
                        }
                        uint64_t bytes = kRpcHeaderBytes;
                        for (const kv::GetResult &res : *results) {
                            bytes += res.ok && res.found
                                         ? uint64_t{res.value_size} +
                                               kRpcHeaderBytes
                                         : kNackBytes;
                        }
                        Slowed(t0, [this, shared_reply, bytes, t0,
                                    trace_id]() {
                            if (running_) {
                                EmitServerEvent("server.batch_get", t0,
                                                trace_id);
                                (*shared_reply)(bytes, net::RpcCode::kOk);
                            }
                        });
                    });
            }
        },
        [results, n, done = std::move(done)](net::RpcCode code) {
            if (code != net::RpcCode::kOk || results->size() != n) {
                std::vector<kv::GetResult> fail(n);
                for (kv::GetResult &r : fail) {
                    r.ok = false;
                    r.status = CodeToStatus(code);
                }
                done(std::move(fail));
            } else {
                done(*results);
            }
        },
        ctx.path);
}

void
StorageNode::Scan(uint64_t start_key, uint32_t limit,
                  std::function<bool(uint64_t)> owned, kv::OpContext ctx,
                  ScanDoneCallback done)
{
    const uint32_t client = next_client_++ % clients_;
    // The request carries (start_key, limit) plus the caller's owned
    // vnode ranges; the range list is modeled at a flat 256 bytes.
    const uint64_t request_bytes = kRpcHeaderBytes + 16 + 256;
    auto result = std::make_shared<kv::ScanResult>();
    net_->RpcTyped(
        client, request_bytes, ctx.deadline,
        [this, start_key, limit, owned = std::move(owned), result,
         span = ctx.path, trace_id = ctx.trace.trace_id](
            util::TimeNs /*deadline*/, net::Network::TypedReply reply) {
            if (!running_) return;
            const util::TimeNs t0 = sim_.Now();
            // Like a batch, the whole scan costs one admission slot: it
            // is one request however many keys it touches.
            if (!Admit()) {
                EmitServerEvent("server.scan", t0, trace_id);
                reply(kNackBytes, net::RpcCode::kOverloaded);
                return;
            }
            const uint64_t inc = incarnation_;
            if (span) span->Enter(obs::Stage::kStorage, t0);
            store().Scan(
                start_key, limit,
                [this, inc, t0, result, span, trace_id,
                 reply = std::move(reply)](const kv::ScanResult &r) {
                    Release(inc);
                    if (!running_) return;
                    if (span) {
                        span->Enter(obs::Stage::kServerHandle, sim_.Now());
                    }
                    *result = r;
                    // The response streams the scanned values plus 16
                    // bytes of (key, size) framing per entry.
                    const uint64_t bytes =
                        r.ok ? kRpcHeaderBytes + r.scanned_bytes +
                                   16 * r.entries.size()
                             : kNackBytes;
                    Slowed(t0, [this, reply, bytes, t0, trace_id]() {
                        if (running_) {
                            EmitServerEvent("server.scan", t0, trace_id);
                            reply(bytes, net::RpcCode::kOk);
                        }
                    });
                },
                owned);
        },
        [result, done = std::move(done)](net::RpcCode code) {
            if (code != net::RpcCode::kOk) {
                kv::ScanResult fail;
                fail.ok = false;
                fail.status = CodeToStatus(code);
                done(std::move(fail));
            } else {
                done(std::move(*result));
            }
        },
        ctx.path);
}

void
StorageNode::FlushAll()
{
    if (!running_) return;
    kv::Store &s = store();
    for (uint32_t i = 0; i < s.slice_count(); ++i) s.slice(i).Flush();
}

ClusterRouter::ClusterRouter(sim::Simulator &sim,
                             const std::vector<StorageNode *> &nodes,
                             uint32_t replication, uint32_t vnodes_per_node,
                             const BreakerConfig &breaker)
    : sim_(sim),
      ring_(static_cast<uint32_t>(nodes.size()), vnodes_per_node),
      replication_(replication),
      node_puts_(nodes.size(), 0),
      node_gets_(nodes.size(), 0),
      nodes_(nodes),
      breaker_(static_cast<uint32_t>(nodes.size()), breaker),
      direct_(BuildEndpoints(nodes)),
      engine_(sim, BuildEndpoints(nodes),
              [this](uint64_t key) { return ReadOrder(key); })
{
    SDF_CHECK_MSG(replication >= 1 && replication <= nodes.size(),
                  "replication must be in [1, nodes]");
    // Placement moves whenever membership does; gets that straddle a
    // membership change restart against the fresh replica set.
    engine_.set_epoch_provider([this]() { return epoch_; });
    hub_ = sim.hub();
    if (hub_ != nullptr) {
        obs::MetricsRegistry &m = hub_->metrics();
        metric_prefix_ = m.UniquePrefix("cluster");
        const kv::ReplicatedKvStats &st = engine_.stats();
        m.RegisterCounter(metric_prefix_ + ".puts", &st.puts);
        m.RegisterCounter(metric_prefix_ + ".gets", &st.gets);
        m.RegisterCounter(metric_prefix_ + ".put_failures",
                          &st.put_failures);
        m.RegisterCounter(metric_prefix_ + ".put_replica_failures",
                          &st.put_replica_failures);
        m.RegisterCounter(metric_prefix_ + ".degraded_reads",
                          &st.degraded_reads);
        m.RegisterCounter(metric_prefix_ + ".failed_reads",
                          &st.failed_reads);
        m.RegisterCounter(metric_prefix_ + ".re_replications",
                          &st.re_replications);
        m.RegisterCounter(metric_prefix_ + ".epoch_restarts",
                          &st.epoch_restarts);
        m.RegisterCounter(metric_prefix_ + ".no_replica_rejects",
                          &st.no_replica_rejects);
        m.RegisterCounter(metric_prefix_ + ".scans", &scans_);
        m.RegisterCounter(metric_prefix_ + ".scan_keys", &scan_keys_);
        m.RegisterCounter(metric_prefix_ + ".scan_failures",
                          &scan_failures_);
        m.RegisterGauge(metric_prefix_ + ".epoch", [this]() {
            return static_cast<double>(epoch_);
        });
        m.RegisterGauge(metric_prefix_ + ".live_nodes", [this]() {
            return static_cast<double>(ring_.node_count());
        });
        m.RegisterHistogram(metric_prefix_ + ".recovery_latency_ns",
                            [this]() {
                                return &recovery_latencies().histogram();
                            });
        m.RegisterCounter(metric_prefix_ + ".breaker.trips",
                          &breaker_.stats().trips);
        m.RegisterCounter(metric_prefix_ + ".breaker.resets",
                          &breaker_.stats().resets);
        m.RegisterCounter(metric_prefix_ + ".breaker.reroutes",
                          &breaker_.stats().reroutes);
        m.RegisterGauge(metric_prefix_ + ".breaker.open_nodes", [this]() {
            return static_cast<double>(breaker_.open_count());
        });
    }
}

std::vector<uint32_t>
ClusterRouter::ReadOrder(uint64_t key)
{
    std::vector<uint32_t> order = ring_.ReplicasFor(key, replication_);
    if (!breaker_.AnyOpen() || order.size() < 2) return order;
    const uint32_t head = order.front();
    std::stable_partition(order.begin(), order.end(), [this](uint32_t n) {
        return !breaker_.IsOpen(n);
    });
    if (order.front() != head) breaker_.CountReroute();
    return order;
}

void
ClusterRouter::GetAt(uint32_t node, uint64_t key, kv::OpContext ctx,
                     kv::GetCallback done)
{
    SDF_CHECK(node < direct_.size());
    direct_[node].get(key, std::move(done), ctx);
}

void
ClusterRouter::BatchGetAt(uint32_t node, std::vector<uint64_t> keys,
                          kv::OpContext ctx,
                          StorageNode::BatchGetCallback done)
{
    SDF_CHECK(node < nodes_.size());
    node_gets_[node] += keys.size();
    const util::TimeNs t0 = sim_.Now();
    nodes_[node]->BatchGet(
        std::move(keys), ctx,
        [this, node, t0,
         done = std::move(done)](std::vector<kv::GetResult> results) {
            // One service-time sample per batch RPC; sheds excluded (a
            // fast refusal must not make an overloaded node look healthy).
            const bool shed =
                !results.empty() && !results.front().ok &&
                results.front().status == kv::OpStatus::kOverloaded;
            if (!shed) breaker_.Record(node, sim_.Now() - t0);
            done(std::move(results));
        });
}

void
ClusterRouter::Scan(uint64_t start_key, uint32_t limit, kv::OpContext ctx,
                    StorageNode::ScanDoneCallback done)
{
    ++scans_;
    const std::vector<uint32_t> members = ring_.node_ids();
    if (members.empty() || limit == 0) {
        kv::ScanResult r;
        if (members.empty()) {
            r.ok = false;
            r.status = kv::OpStatus::kError;
            ++scan_failures_;
        }
        sim_.Post([done = std::move(done), r]() mutable {
            done(std::move(r));
        });
        return;
    }
    const uint64_t start_epoch = epoch_;
    auto merged = std::make_shared<std::map<uint64_t, uint32_t>>();
    auto ok = std::make_shared<bool>(true);
    auto status = std::make_shared<kv::OpStatus>(kv::OpStatus::kOk);
    auto remaining = std::make_shared<size_t>(members.size());
    auto boxed = std::make_shared<StorageNode::ScanDoneCallback>(
        std::move(done));
    for (size_t i = 0; i < members.size(); ++i) {
        const uint32_t node = members[i];
        kv::OpContext member_ctx = ctx;
        // Single span writer: the critical path rides the first member
        // RPC; the rest keep the trace id only.
        if (i != 0) member_ctx.path = nullptr;
        nodes_[node]->Scan(
            start_key, limit,
            [this, node](uint64_t key) {
                return ring_.PrimaryOf(key) == node;
            },
            member_ctx,
            [this, merged, ok, status, remaining, boxed, start_epoch,
             limit](kv::ScanResult r) {
                if (!r.ok) {
                    *ok = false;
                    *status = kv::WorseStatus(*status, r.status);
                } else {
                    for (const kv::ScanEntry &e : r.entries)
                        (*merged)[e.key] = e.value_size;
                }
                if (--*remaining > 0) return;
                kv::ScanResult out;
                // Placement moved under the cursor: the per-node
                // ownership predicates no longer tile the key space, so
                // the union may have holes — fail typed, caller retries.
                if (epoch_ != start_epoch) {
                    *ok = false;
                    *status = kv::WorseStatus(*status,
                                              kv::OpStatus::kError);
                }
                out.ok = *ok;
                out.status = *status;
                if (*ok) {
                    for (const auto &[key, value_size] : *merged) {
                        if (out.entries.size() >= limit) break;
                        out.entries.push_back(
                            kv::ScanEntry{key, value_size});
                        out.scanned_bytes += value_size;
                    }
                    scan_keys_ += out.entries.size();
                } else {
                    ++scan_failures_;
                }
                (*boxed)(std::move(out));
            });
    }
}

void
ClusterRouter::MarkNodeDown(uint32_t id)
{
    SDF_CHECK_MSG(ring_.Contains(id), "node not in membership");
    ring_.RemoveNode(id);
    ++epoch_;
}

void
ClusterRouter::MarkNodeUp(uint32_t id)
{
    SDF_CHECK_MSG(!ring_.Contains(id), "node already in membership");
    ring_.AddNode(id);
    ++epoch_;
}

ClusterRouter::~ClusterRouter()
{
    if (hub_ != nullptr) hub_->metrics().UnregisterPrefix(metric_prefix_);
}

std::vector<kv::ReplicaEndpoint>
ClusterRouter::BuildEndpoints(const std::vector<StorageNode *> &nodes)
{
    // Every completion that is not an admission shed feeds the breaker's
    // per-node service-time EWMA: a shed is a fast refusal, not service.
    std::vector<kv::ReplicaEndpoint> eps;
    eps.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        kv::ReplicaEndpoint ep = nodes[i]->Endpoint();
        eps.push_back(kv::ReplicaEndpoint{
            [this, i, put = std::move(ep.put)](
                uint64_t key, uint32_t value_size,
                kv::PutStatusCallback done,
                std::shared_ptr<std::vector<uint8_t>> payload,
                kv::OpContext ctx) {
                ++node_puts_[i];
                const util::TimeNs t0 = sim_.Now();
                put(
                    key, value_size,
                    [this, i, t0,
                     done = std::move(done)](kv::OpStatus s) {
                        if (s != kv::OpStatus::kOverloaded) {
                            breaker_.Record(static_cast<uint32_t>(i),
                                            sim_.Now() - t0);
                        }
                        if (done) done(s);
                    },
                    std::move(payload), ctx);
            },
            [this, i, get = std::move(ep.get)](
                uint64_t key, kv::GetCallback done, kv::OpContext ctx) {
                ++node_gets_[i];
                const util::TimeNs t0 = sim_.Now();
                get(
                    key,
                    [this, i, t0,
                     done = std::move(done)](const kv::GetResult &r) {
                        if (r.ok ||
                            r.status != kv::OpStatus::kOverloaded) {
                            breaker_.Record(static_cast<uint32_t>(i),
                                            sim_.Now() - t0);
                        }
                        done(r);
                    },
                    ctx);
            }});
    }
    return eps;
}

workload::KvService
ClusterRouter::Service()
{
    workload::KvService svc;
    svc.put = [this](uint64_t key, uint32_t value_size,
                     kv::PutCallback done) {
        Put(key, value_size, std::move(done));
    };
    svc.put_typed = [this](uint64_t key, uint32_t value_size,
                           kv::PutStatusCallback done) {
        PutTyped(key, value_size, std::move(done));
    };
    svc.get = [this](uint64_t key, kv::GetCallback done) {
        Get(key, std::move(done));
    };
    svc.scan = [this](uint64_t start_key, uint32_t limit,
                      std::function<void(const kv::ScanResult &)> done) {
        Scan(start_key, limit, kv::OpContext{},
             [done = std::move(done)](kv::ScanResult r) { done(r); });
    };
    return svc;
}

Cluster::Cluster(sim::Simulator &sim, const ClusterConfig &cfg)
{
    SDF_CHECK(cfg.nodes > 0);
    nodes_.reserve(cfg.nodes);
    for (uint32_t i = 0; i < cfg.nodes; ++i) {
        nodes_.push_back(std::make_unique<StorageNode>(sim, i, cfg.node));
    }
    std::vector<StorageNode *> ptrs;
    ptrs.reserve(nodes_.size());
    for (auto &n : nodes_) ptrs.push_back(n.get());
    router_ = std::make_unique<ClusterRouter>(sim, ptrs, cfg.replication,
                                              cfg.vnodes_per_node,
                                              cfg.breaker);
    RebalanceConfig rc;
    rc.max_inflight = cfg.rebalance_max_inflight;
    rebalancer_ = std::make_unique<Rebalancer>(sim, ptrs, *router_, rc);
    anti_entropy_ = std::make_unique<AntiEntropy>(*rebalancer_);
}

Cluster::~Cluster() = default;

void
Cluster::StopNode(uint32_t id)
{
    SDF_CHECK(id < nodes_.size());
    router_->MarkNodeDown(id);
    nodes_[id]->Stop();
}

void
Cluster::RestartNode(uint32_t id, sim::Callback done)
{
    SDF_CHECK(id < nodes_.size());
    nodes_[id]->Restart([this, id, done = std::move(done)]() mutable {
        router_->MarkNodeUp(id);
        rebalancer_->RunPass(std::move(done));
    });
}

void
Cluster::FlushAll()
{
    for (auto &n : nodes_) n->FlushAll();
}

std::vector<core::SdfDevice *>
Cluster::SdfDevices()
{
    std::vector<core::SdfDevice *> out;
    for (auto &n : nodes_) {
        if (n->sdf_device() != nullptr) out.push_back(n->sdf_device());
    }
    return out;
}

}  // namespace sdf::cluster
