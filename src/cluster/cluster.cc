#include "cluster/cluster.h"

#include <utility>

#include "obs/hub.h"
#include "obs/metrics.h"
#include "util/assert.h"

namespace sdf::cluster {

namespace {

/** Request-framing overhead charged on top of the payload. */
constexpr uint64_t kRpcHeaderBytes = 64;
/** Small fixed responses: a put ack, or a get miss/failure notice. */
constexpr uint64_t kAckBytes = 64;
constexpr uint64_t kNackBytes = 16;

}  // namespace

StorageNode::StorageNode(sim::Simulator &sim, uint32_t id,
                         const NodeConfig &cfg)
    : sim_(sim), id_(id), clients_(cfg.clients)
{
    SDF_CHECK(clients_ > 0);
    // Everything built inside this scope — the network endpoint, the
    // device, the block layer, every slice — self-registers its metrics
    // under "node<id>.*".
    obs::Hub *hub = sim.hub();
    obs::MetricsScope scope(hub != nullptr ? &hub->metrics() : nullptr,
                            "node" + std::to_string(id));
    net_ = std::make_unique<net::Network>(sim, cfg.net, clients_);
    stack_ = testbed::BuildKvStack(sim, cfg.kv);
}

kv::ReplicaEndpoint
StorageNode::Endpoint()
{
    kv::ReplicaEndpoint ep;
    ep.put = [this](uint64_t key, uint32_t value_size, kv::PutCallback done,
                    std::shared_ptr<std::vector<uint8_t>> payload) {
        const uint32_t client = next_client_++ % clients_;
        net_->RpcWithRetry(
            client, uint64_t{value_size} + kRpcHeaderBytes,
            [this, key, value_size, payload](
                std::function<void(uint64_t)> reply) {
                // Re-puts from RPC retries are idempotent: the LSM just
                // writes the same (key, size) again.
                store().Put(
                    key, value_size,
                    [reply = std::move(reply)](bool ok) {
                        // Only a durable put acks; a storage failure stays
                        // silent so the client times out and retries
                        // (and the engine eventually fails over).
                        if (ok) reply(kAckBytes);
                    },
                    std::move(payload));
            },
            std::move(done));
    };
    ep.get = [this](uint64_t key, kv::GetCallback done) {
        const uint32_t client = next_client_++ % clients_;
        auto res = std::make_shared<kv::GetResult>();
        net_->RpcWithRetry(
            client, kRpcHeaderBytes,
            [this, key, res](std::function<void(uint64_t)> reply) {
                store().Get(key, [res, reply = std::move(reply)](
                                     const kv::GetResult &r) {
                    *res = r;
                    // Failures/misses reply fast (small nack) so the
                    // router fails over to the next replica immediately
                    // instead of waiting out the retry ladder.
                    reply(r.ok && r.found
                              ? uint64_t{r.value_size} + kRpcHeaderBytes
                              : kNackBytes);
                });
            },
            [res, done = std::move(done)](bool ok) {
                if (!ok) {
                    kv::GetResult dead;
                    dead.ok = false;
                    done(dead);
                } else {
                    done(*res);
                }
            });
    };
    return ep;
}

void
StorageNode::FlushAll()
{
    kv::Store &s = store();
    for (uint32_t i = 0; i < s.slice_count(); ++i) s.slice(i).Flush();
}

ClusterRouter::ClusterRouter(sim::Simulator &sim,
                             const std::vector<StorageNode *> &nodes,
                             uint32_t replication, uint32_t vnodes_per_node)
    : ring_(static_cast<uint32_t>(nodes.size()), vnodes_per_node),
      replication_(replication),
      node_puts_(nodes.size(), 0),
      node_gets_(nodes.size(), 0),
      engine_(sim, BuildEndpoints(nodes),
              [this](uint64_t key) {
                  return ring_.ReplicasFor(key, replication_);
              })
{
    SDF_CHECK_MSG(replication >= 1 && replication <= nodes.size(),
                  "replication must be in [1, nodes]");
    hub_ = sim.hub();
    if (hub_ != nullptr) {
        obs::MetricsRegistry &m = hub_->metrics();
        metric_prefix_ = m.UniquePrefix("cluster");
        const kv::ReplicatedKvStats &st = engine_.stats();
        m.RegisterCounter(metric_prefix_ + ".puts", &st.puts);
        m.RegisterCounter(metric_prefix_ + ".gets", &st.gets);
        m.RegisterCounter(metric_prefix_ + ".put_failures",
                          &st.put_failures);
        m.RegisterCounter(metric_prefix_ + ".put_replica_failures",
                          &st.put_replica_failures);
        m.RegisterCounter(metric_prefix_ + ".degraded_reads",
                          &st.degraded_reads);
        m.RegisterCounter(metric_prefix_ + ".failed_reads",
                          &st.failed_reads);
        m.RegisterCounter(metric_prefix_ + ".re_replications",
                          &st.re_replications);
        m.RegisterHistogram(metric_prefix_ + ".recovery_latency_ns",
                            [this]() {
                                return &recovery_latencies().histogram();
                            });
    }
}

ClusterRouter::~ClusterRouter()
{
    if (hub_ != nullptr) hub_->metrics().UnregisterPrefix(metric_prefix_);
}

std::vector<kv::ReplicaEndpoint>
ClusterRouter::BuildEndpoints(const std::vector<StorageNode *> &nodes)
{
    std::vector<kv::ReplicaEndpoint> eps;
    eps.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        kv::ReplicaEndpoint ep = nodes[i]->Endpoint();
        eps.push_back(kv::ReplicaEndpoint{
            [this, i, put = std::move(ep.put)](
                uint64_t key, uint32_t value_size, kv::PutCallback done,
                std::shared_ptr<std::vector<uint8_t>> payload) {
                ++node_puts_[i];
                put(key, value_size, std::move(done), std::move(payload));
            },
            [this, i, get = std::move(ep.get)](uint64_t key,
                                               kv::GetCallback done) {
                ++node_gets_[i];
                get(key, std::move(done));
            }});
    }
    return eps;
}

workload::KvService
ClusterRouter::Service()
{
    workload::KvService svc;
    svc.put = [this](uint64_t key, uint32_t value_size,
                     kv::PutCallback done) {
        Put(key, value_size, std::move(done));
    };
    svc.get = [this](uint64_t key, kv::GetCallback done) {
        Get(key, std::move(done));
    };
    return svc;
}

Cluster::Cluster(sim::Simulator &sim, const ClusterConfig &cfg)
{
    SDF_CHECK(cfg.nodes > 0);
    nodes_.reserve(cfg.nodes);
    for (uint32_t i = 0; i < cfg.nodes; ++i) {
        nodes_.push_back(std::make_unique<StorageNode>(sim, i, cfg.node));
    }
    std::vector<StorageNode *> ptrs;
    ptrs.reserve(nodes_.size());
    for (auto &n : nodes_) ptrs.push_back(n.get());
    router_ = std::make_unique<ClusterRouter>(sim, ptrs, cfg.replication,
                                              cfg.vnodes_per_node);
}

void
Cluster::FlushAll()
{
    for (auto &n : nodes_) n->FlushAll();
}

std::vector<core::SdfDevice *>
Cluster::SdfDevices()
{
    std::vector<core::SdfDevice *> out;
    for (auto &n : nodes_) {
        if (n->sdf_device() != nullptr) out.push_back(n->sdf_device());
    }
    return out;
}

}  // namespace sdf::cluster
