/**
 * @file
 * Sharded multi-node KV cluster over the pluggable device interface.
 *
 * The paper's deployment model (§2.4, §5): a web-scale store is many
 * storage servers, each running the CCDB slice stack on one SDF, with
 * durability provided by cross-node replication rather than drive-internal
 * redundancy. This module reproduces that shape inside one simulator:
 *
 *  - StorageNode: one storage server — its own network endpoint, storage
 *    stack (any testbed::Backend) and multi-slice kv::Store. All its
 *    metrics self-register under "node<N>.*".
 *  - ClusterRouter: the client-side library that consistent-hash-shards
 *    keys over the nodes with R-way replication, reusing
 *    kv::ReplicationEngine for fan-out, failover and read-repair; RPCs go
 *    through net::Network's timeout/backoff path, so a dead node degrades
 *    into retries + failover instead of a hang.
 *  - Cluster: convenience bundle (N nodes + router) for benches/tools.
 */
#ifndef SDF_CLUSTER_CLUSTER_H
#define SDF_CLUSTER_CLUSTER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "kv/replicated_store.h"
#include "kv/store.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"
#include "workload/kv_driver.h"

namespace sdf::cluster {

/** How to build one storage node. */
struct NodeConfig
{
    /** Per-node storage stack + store (device, slices, ...). */
    testbed::KvStackConfig kv;
    /** Link/RPC parameters for the node's network endpoint. */
    net::NetworkSpec net;
    /** Router connections into this node (round-robined per request). */
    uint32_t clients = 4;
};

/**
 * One storage server: a network endpoint in front of a full KV stack.
 * Requests enter as RPCs and are served by the node's Store; the node
 * never sees other nodes — placement is entirely the router's job.
 */
class StorageNode
{
  public:
    StorageNode(sim::Simulator &sim, uint32_t id, const NodeConfig &cfg);

    StorageNode(const StorageNode &) = delete;
    StorageNode &operator=(const StorageNode &) = delete;

    uint32_t id() const { return id_; }
    kv::Store &store() { return *stack_.store; }
    testbed::KvStack &stack() { return stack_; }
    net::Network &net() { return *net_; }
    /** The node's device behind the pluggable interface (never null). */
    core::BlockDevice *device() { return stack_.storage.device(); }
    core::SdfDevice *sdf_device() { return stack_.storage.sdf.get(); }

    /**
     * How the replication engine reaches this node: put/get as RPCs with
     * client-side timeout + retry. A put acks only once the store made the
     * value durable (a storage failure is surfaced as a timeout, so the
     * router retries and eventually fails over); a get that fails at
     * storage level replies quickly with res.ok == false so the router can
     * fail over without burning the retry budget.
     */
    kv::ReplicaEndpoint Endpoint();

    /** Flush every slice's memtable (for preloading/fault audits). */
    void FlushAll();

  private:
    sim::Simulator &sim_;
    uint32_t id_;
    uint32_t clients_;
    uint32_t next_client_ = 0;
    std::unique_ptr<net::Network> net_;
    testbed::KvStack stack_;
};

/**
 * Client-side shard router: key -> R distinct nodes via the consistent-
 * hash ring, fan-out/failover/read-repair via kv::ReplicationEngine. The
 * nodes must outlive the router.
 */
class ClusterRouter
{
  public:
    ClusterRouter(sim::Simulator &sim,
                  const std::vector<StorageNode *> &nodes,
                  uint32_t replication, uint32_t vnodes_per_node = 64);
    ~ClusterRouter();

    ClusterRouter(const ClusterRouter &) = delete;
    ClusterRouter &operator=(const ClusterRouter &) = delete;

    uint32_t node_count() const { return ring_.node_count(); }
    uint32_t replication() const { return replication_; }
    const HashRing &ring() const { return ring_; }

    /** See ReplicationEngine::Put (ack == at least one durable copy). */
    void
    Put(uint64_t key, uint32_t value_size, kv::PutCallback done,
        std::shared_ptr<std::vector<uint8_t>> payload = nullptr)
    {
        engine_.Put(key, value_size, std::move(done), std::move(payload));
    }

    /** See ReplicationEngine::Get (transparent failover + read-repair). */
    void Get(uint64_t key, kv::GetCallback done)
    {
        engine_.Get(key, std::move(done));
    }

    /** The router as a generic workload target. */
    workload::KvService Service();

    const kv::ReplicatedKvStats &stats() const { return engine_.stats(); }
    const util::LatencyRecorder &recovery_latencies() const
    {
        return engine_.recovery_latencies();
    }

    /** Requests this router sent to node @p i (placement balance). */
    uint64_t node_puts(uint32_t i) const { return node_puts_[i]; }
    uint64_t node_gets(uint32_t i) const { return node_gets_[i]; }

  private:
    std::vector<kv::ReplicaEndpoint>
    BuildEndpoints(const std::vector<StorageNode *> &nodes);

    HashRing ring_;
    uint32_t replication_;
    std::vector<uint64_t> node_puts_;
    std::vector<uint64_t> node_gets_;
    kv::ReplicationEngine engine_;
    obs::Hub *hub_ = nullptr;
    std::string metric_prefix_;
};

/** Whole-cluster construction parameters. */
struct ClusterConfig
{
    uint32_t nodes = 4;
    uint32_t replication = 2;
    uint32_t vnodes_per_node = 64;
    /** Template for every node (same hardware per Table 2). */
    NodeConfig node;
};

/** N storage nodes plus the router, built on one simulator. */
class Cluster
{
  public:
    Cluster(sim::Simulator &sim, const ClusterConfig &cfg);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    uint32_t node_count() const
    {
        return static_cast<uint32_t>(nodes_.size());
    }
    StorageNode &node(uint32_t i) { return *nodes_[i]; }
    ClusterRouter &router() { return *router_; }
    workload::KvService Service() { return router_->Service(); }

    void FlushAll();

    /** The nodes' SDF devices (for fault::FaultInjector); skips nodes on
     *  conventional-SSD backends. */
    std::vector<core::SdfDevice *> SdfDevices();

  private:
    std::vector<std::unique_ptr<StorageNode>> nodes_;
    std::unique_ptr<ClusterRouter> router_;
};

}  // namespace sdf::cluster

#endif  // SDF_CLUSTER_CLUSTER_H
