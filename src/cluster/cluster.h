/**
 * @file
 * Sharded multi-node KV cluster over the pluggable device interface.
 *
 * The paper's deployment model (§2.4, §5): a web-scale store is many
 * storage servers, each running the CCDB slice stack on one SDF, with
 * durability provided by cross-node replication rather than drive-internal
 * redundancy. This module reproduces that shape inside one simulator:
 *
 *  - StorageNode: one storage server — its own network endpoint, storage
 *    stack (any testbed::Backend) and multi-slice kv::Store. All its
 *    metrics self-register under "node<N>.*".
 *  - ClusterRouter: the client-side library that consistent-hash-shards
 *    keys over the nodes with R-way replication, reusing
 *    kv::ReplicationEngine for fan-out, failover and read-repair; RPCs go
 *    through net::Network's timeout/backoff path, so a dead node degrades
 *    into retries + failover instead of a hang.
 *  - Cluster: convenience bundle (N nodes + router) for benches/tools.
 */
#ifndef SDF_CLUSTER_CLUSTER_H
#define SDF_CLUSTER_CLUSTER_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/breaker.h"
#include "cluster/hash_ring.h"
#include "kv/recovery.h"
#include "kv/replicated_store.h"
#include "kv/store.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"
#include "workload/kv_driver.h"

namespace sdf::cluster {

class Rebalancer;
class AntiEntropy;
struct RebalanceConfig;

/** How to build one storage node. */
struct NodeConfig
{
    /** Per-node storage stack + store (device, slices, ...). */
    testbed::KvStackConfig kv;
    /** Link/RPC parameters for the node's network endpoint. */
    net::NetworkSpec net;
    /** Router connections into this node (round-robined per request). */
    uint32_t clients = 4;
    /**
     * Admission control: requests concurrently admitted past the RPC
     * dispatcher before new arrivals are shed with a typed kOverloaded
     * nack. 0 disables shedding (every request queues, however deep).
     */
    uint32_t admission_cap = 0;
};

/**
 * One storage server: a network endpoint in front of a full KV stack.
 * Requests enter as RPCs and are served by the node's Store; the node
 * never sees other nodes — placement is entirely the router's job.
 *
 * The node has a process lifecycle: Stop() models the serving process
 * dying (in-flight work becomes zombie callbacks that can no longer
 * touch durable state; clients time out and fail over), and Restart()
 * rebuilds the store from the node's durable state — the WAL and the
 * patch footers on its (simulated) device — via a recovery scan that
 * charges real device reads before the node serves again.
 */
class StorageNode
{
  public:
    /** Per-node restart/recovery statistics ("node<N>.recovery.*"). */
    struct RecoveryStats
    {
        uint64_t restarts = 0;
        uint64_t patches_scanned = 0;
        uint64_t bytes_scanned = 0;
        uint64_t wal_records_replayed = 0;
        uint64_t last_recovery_ns = 0;
    };

    /** Admission-control counters ("node<N>.admission.*"). */
    struct AdmissionStats
    {
        uint64_t admitted = 0;       ///< Requests let past the cap.
        uint64_t shed_overload = 0;  ///< Typed kOverloaded nacks sent.
        uint64_t peak_inflight = 0;
    };

    /** Completion of a BatchGet: one result per requested key, in order. */
    using BatchGetCallback =
        std::function<void(std::vector<kv::GetResult> results)>;

    /** Completion of a node- or cluster-level range scan. */
    using ScanDoneCallback = std::function<void(kv::ScanResult result)>;

    StorageNode(sim::Simulator &sim, uint32_t id, const NodeConfig &cfg);
    ~StorageNode();

    StorageNode(const StorageNode &) = delete;
    StorageNode &operator=(const StorageNode &) = delete;

    uint32_t id() const { return id_; }
    kv::Store &store() { return *stack_.store; }
    testbed::KvStack &stack() { return stack_; }
    net::Network &net() { return *net_; }
    /** The node's device behind the pluggable interface (never null). */
    core::BlockDevice *device() { return stack_.storage.device(); }
    core::SdfDevice *sdf_device() { return stack_.storage.sdf.get(); }

    /** False between Stop() and the end of Restart()'s recovery scan. */
    bool running() const { return running_; }

    /**
     * Kill the serving process. The store is detached (its in-flight
     * flush/compaction callbacks become no-ops and may no longer delete
     * patches or ack anything) and kept only as a zombie until the node
     * is destroyed. RPC handlers stop replying, so clients see timeouts.
     * The device, its contents, and the WAL mirror survive.
     */
    void Stop();

    /**
     * Bring the process back: rebuild the store from the journal (WAL +
     * patch footers), reclaim orphan blocks, then run the recovery scan —
     * one full read of every recovered patch at internal priority, the
     * cost of rebuilding the DRAM index from the on-flash footers. @p done
     * fires once the node is serving again (running() == true).
     */
    void Restart(sim::Callback done = nullptr);

    const RecoveryStats &recovery() const { return recovery_; }

    /** Live keys on this node (empty when stopped); see Store::CollectLive. */
    void CollectLive(std::map<uint64_t, uint32_t> &out) const;

    /**
     * Rebalance/anti-entropy ingest path: ship one key into this node as
     * a bulk transfer (NIC + dispatch cost, no per-item RPC round trip)
     * and store it durably. @p done receives the put's durability ack.
     */
    void StreamIn(uint64_t key, uint32_t value_size, kv::PutCallback done,
                  std::shared_ptr<std::vector<uint8_t>> payload = nullptr);

    /** Rebalance egress: read one key from the local store. */
    void StreamOut(uint64_t key, kv::GetCallback done);

    /**
     * How the replication engine reaches this node: put/get as RPCs with
     * client-side timeout + retry. A put acks only once the store made the
     * value durable (a storage failure is surfaced as a timeout, so the
     * router retries and eventually fails over); a get that fails at
     * storage level replies quickly with res.ok == false so the router can
     * fail over without burning the retry budget.
     */
    kv::ReplicaEndpoint Endpoint();

    /**
     * Coalesced read: one RPC carrying @p keys, served as parallel local
     * gets, answered with one response once all complete. Costs one
     * admission slot and one dispatch regardless of batch size — the
     * client front door uses this to amortize per-message overhead. On a
     * transport-level failure (deadline, shed, dead node) every result
     * carries the same typed status.
     */
    void BatchGet(std::vector<uint64_t> keys, kv::OpContext ctx,
                  BatchGetCallback done);

    /**
     * Range scan RPC: one request carrying (start_key, limit) plus the
     * caller's ownership predicate — modeling the owned vnode ranges the
     * router ships in the request so each key is scanned by exactly one
     * node cluster-wide. Served by Store::Scan (DRAM index cut + one
     * device read per selected value), answered with one response whose
     * size charges the entries' value bytes over the wire. Costs one
     * admission slot regardless of how many keys match.
     */
    void Scan(uint64_t start_key, uint32_t limit,
              std::function<bool(uint64_t)> owned, kv::OpContext ctx,
              ScanDoneCallback done);

    /**
     * Fail-slow injection: scale everything this node does by
     * @p multiplier — RPC dispatch and payload work (via
     * net::Network::SetServiceTimeMultiplier) plus the storage service
     * time itself (replies are deferred by (m-1)x the time the local
     * store took). 1.0 restores health. The node keeps answering, just
     * slowly — the failure mode RAID-style fail-stop handling misses.
     */
    void SetFailSlow(double multiplier)
    {
        fail_slow_mult_ = multiplier;
        net_->SetServiceTimeMultiplier(multiplier);
    }

    const AdmissionStats &admission() const { return admission_; }
    uint64_t inflight() const { return inflight_; }

    /** Flush every slice's memtable (for preloading/fault audits). */
    void FlushAll();

  private:
    /** Admission check at the RPC dispatcher; counts the decision. */
    bool Admit();
    /** Emit a server-side trace event on this node's track: the handler
     *  occupancy from @p start to now, tagged with the request's
     *  distributed trace id (0 or tracing off = no-op). */
    void EmitServerEvent(const char *name, util::TimeNs start,
                         uint64_t trace_id);
    /** Release an admission slot taken in incarnation @p inc (no-op if
     *  the process restarted meanwhile — the slot died with it). */
    void Release(uint64_t inc);
    /** Run @p fn now — or, when fail-slow, after (mult-1)x the service
     *  time elapsed since @p start. Inline when healthy, so runs without
     *  injection are byte-identical to before the knob existed. */
    void Slowed(util::TimeNs start, std::function<void()> fn);

    sim::Simulator &sim_;
    uint32_t id_;
    uint32_t clients_;
    uint32_t next_client_ = 0;
    bool running_ = true;
    double fail_slow_mult_ = 1.0;
    uint32_t admission_cap_ = 0;
    uint64_t inflight_ = 0;
    /** Bumped by Stop(): lets in-flight Release()s from the previous
     *  process detect they are stale. */
    uint64_t incarnation_ = 0;
    AdmissionStats admission_;
    std::unique_ptr<net::Network> net_;
    testbed::KvStack stack_;
    /** Store construction recipe, reused by Restart(). */
    kv::StoreConfig store_cfg_;
    /** The node's durable mirror (WAL + patch footers); survives Stop(). */
    kv::StoreJournal journal_;
    /** Detached stores from previous incarnations (zombie callbacks may
     *  still reference them until the simulation drains). */
    std::vector<std::unique_ptr<kv::Store>> retired_;
    RecoveryStats recovery_;

    obs::Hub *hub_ = nullptr;       ///< Metrics registration (see obs/hub.h).
    std::string metric_prefix_;
    std::string admission_prefix_;
    /** This node's Perfetto track ("cluster"/"node<N>"); null when off. */
    obs::TraceSink *trace_ = nullptr;
    int32_t trace_track_ = -1;
};

/**
 * Client-side shard router: key -> R distinct nodes via the consistent-
 * hash ring, fan-out/failover/read-repair via kv::ReplicationEngine. The
 * nodes must outlive the router.
 */
class ClusterRouter
{
  public:
    ClusterRouter(sim::Simulator &sim,
                  const std::vector<StorageNode *> &nodes,
                  uint32_t replication, uint32_t vnodes_per_node = 64,
                  const BreakerConfig &breaker = {});
    ~ClusterRouter();

    ClusterRouter(const ClusterRouter &) = delete;
    ClusterRouter &operator=(const ClusterRouter &) = delete;

    /** Nodes currently in the membership (live nodes). */
    uint32_t node_count() const { return ring_.node_count(); }
    /** All nodes this router can reach, live or not. */
    uint32_t endpoint_count() const { return engine_.endpoint_count(); }
    uint32_t replication() const { return replication_; }
    const HashRing &ring() const { return ring_; }

    /**
     * Membership epoch: bumped on every MarkNodeDown/MarkNodeUp. The
     * replication engine snapshots it per get and restarts against fresh
     * placement when it moves mid-operation.
     */
    uint64_t epoch() const { return epoch_; }
    bool node_live(uint32_t id) const { return ring_.Contains(id); }

    /** Take @p id out of the membership (died or was stopped). */
    void MarkNodeDown(uint32_t id);

    /** Re-admit @p id (restarted and recovered). */
    void MarkNodeUp(uint32_t id);

    /** Current target replica set for @p key (clamped to live nodes). */
    std::vector<uint32_t> ReplicaNodes(uint64_t key) const
    {
        return ring_.ReplicasFor(key, replication_);
    }

    /**
     * Placement order with fail-slow policy applied: the ring's replica
     * set, with breaker-open nodes demoted to the back. This is the
     * order the engine walks and the order the client front door hedges
     * against.
     */
    std::vector<uint32_t> ReadOrder(uint64_t key);

    /** See ReplicationEngine::Put (ack == at least one durable copy). */
    void
    Put(uint64_t key, uint32_t value_size, kv::PutCallback done,
        std::shared_ptr<std::vector<uint8_t>> payload = nullptr,
        kv::OpContext ctx = {})
    {
        engine_.Put(key, value_size, std::move(done), std::move(payload),
                    ctx);
    }

    /** See ReplicationEngine::PutTyped (typed overall disposition). */
    void
    PutTyped(uint64_t key, uint32_t value_size, kv::PutStatusCallback done,
             std::shared_ptr<std::vector<uint8_t>> payload = nullptr,
             kv::OpContext ctx = {})
    {
        engine_.PutTyped(key, value_size, std::move(done),
                         std::move(payload), ctx);
    }

    /** See ReplicationEngine::Get (transparent failover + read-repair). */
    void Get(uint64_t key, kv::GetCallback done, kv::OpContext ctx = {})
    {
        engine_.Get(key, std::move(done), ctx);
    }

    /**
     * Direct single-node read, no failover — the client front door's
     * primary/hedge attempts. Counted and breaker-sampled like every
     * routed request.
     */
    void GetAt(uint32_t node, uint64_t key, kv::OpContext ctx,
               kv::GetCallback done);

    /** Direct coalesced read on one node; see StorageNode::BatchGet. */
    void BatchGetAt(uint32_t node, std::vector<uint64_t> keys,
                    kv::OpContext ctx, StorageNode::BatchGetCallback done);

    /**
     * Cluster range scan: fan one Scan RPC out to every live node, each
     * carrying the ownership predicate `PrimaryOf(key) == node` so every
     * live key is scanned by exactly its primary, then merge the per-node
     * sorted streams and truncate to @p limit. Correct by construction:
     * a key among the global first `limit` has fewer than `limit` owned
     * predecessors on its primary, so it is always inside that node's
     * window. All-or-nothing: any node's typed failure — or a membership
     * epoch change while the scan is in flight (placement moved under
     * the cursor) — fails the whole scan with a typed status so the
     * caller retries against fresh membership. The span in @p ctx rides
     * the first member RPC only (single-writer rule).
     */
    void Scan(uint64_t start_key, uint32_t limit, kv::OpContext ctx,
              StorageNode::ScanDoneCallback done);

    /** The router as a generic workload target. */
    workload::KvService Service();

    const kv::ReplicatedKvStats &stats() const { return engine_.stats(); }
    const util::LatencyRecorder &recovery_latencies() const
    {
        return engine_.recovery_latencies();
    }

    /** Requests this router sent to node @p i (placement balance). */
    uint64_t node_puts(uint32_t i) const { return node_puts_[i]; }
    uint64_t node_gets(uint32_t i) const { return node_gets_[i]; }

    /** Cluster scan accounting (also exported as cluster.scan*). */
    uint64_t scans() const { return scans_; }
    uint64_t scan_keys() const { return scan_keys_; }
    uint64_t scan_failures() const { return scan_failures_; }

    /** Fail-slow breaker state (trips/resets/reroutes, open nodes). */
    const FailSlowBreaker &breaker() const { return breaker_; }

  private:
    std::vector<kv::ReplicaEndpoint>
    BuildEndpoints(const std::vector<StorageNode *> &nodes);

    sim::Simulator &sim_;
    HashRing ring_;
    uint32_t replication_;
    uint64_t epoch_ = 0;
    std::vector<uint64_t> node_puts_;
    std::vector<uint64_t> node_gets_;
    uint64_t scans_ = 0;
    uint64_t scan_keys_ = 0;
    uint64_t scan_failures_ = 0;
    std::vector<StorageNode *> nodes_;
    FailSlowBreaker breaker_;
    /** Unwrapped per-node endpoints for GetAt (engine_ owns its own). */
    std::vector<kv::ReplicaEndpoint> direct_;
    kv::ReplicationEngine engine_;
    obs::Hub *hub_ = nullptr;
    std::string metric_prefix_;
};

/** Whole-cluster construction parameters. */
struct ClusterConfig
{
    uint32_t nodes = 4;
    uint32_t replication = 2;
    uint32_t vnodes_per_node = 64;
    /** Rebalance/anti-entropy streaming concurrency cap. */
    uint32_t rebalance_max_inflight = 4;
    /** Fail-slow breaker policy for the router (off by default). */
    BreakerConfig breaker;
    /** Template for every node (same hardware per Table 2). */
    NodeConfig node;
};

/** N storage nodes plus router, rebalancer and anti-entropy pass. */
class Cluster
{
  public:
    Cluster(sim::Simulator &sim, const ClusterConfig &cfg);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    uint32_t node_count() const
    {
        return static_cast<uint32_t>(nodes_.size());
    }
    StorageNode &node(uint32_t i) { return *nodes_[i]; }
    ClusterRouter &router() { return *router_; }
    Rebalancer &rebalancer() { return *rebalancer_; }
    AntiEntropy &anti_entropy() { return *anti_entropy_; }
    workload::KvService Service() { return router_->Service(); }

    /**
     * Stop node @p id's process and take it out of the membership. Keys
     * it held stay under-replicated until a rebalance/anti-entropy pass
     * (or its restart) heals them.
     */
    void StopNode(uint32_t id);

    /**
     * Restart node @p id, re-admit it once its recovery scan completes,
     * and run a rebalance pass to stream back the keys whose ownership
     * returned to it. @p done fires when the rebalance pass finished.
     */
    void RestartNode(uint32_t id, sim::Callback done = nullptr);

    void FlushAll();

    /** The nodes' SDF devices (for fault::FaultInjector); skips nodes on
     *  conventional-SSD backends. */
    std::vector<core::SdfDevice *> SdfDevices();

  private:
    std::vector<std::unique_ptr<StorageNode>> nodes_;
    std::unique_ptr<ClusterRouter> router_;
    std::unique_ptr<Rebalancer> rebalancer_;
    std::unique_ptr<AntiEntropy> anti_entropy_;
};

}  // namespace sdf::cluster

#endif  // SDF_CLUSTER_CLUSTER_H
