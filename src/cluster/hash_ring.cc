#include "cluster/hash_ring.h"

#include <algorithm>

#include "util/assert.h"
#include "util/rng.h"

namespace sdf::cluster {

HashRing::HashRing(uint32_t nodes, uint32_t vnodes_per_node)
    : vnodes_per_node_(vnodes_per_node)
{
    SDF_CHECK_MSG(nodes > 0, "ring needs at least one node");
    SDF_CHECK_MSG(vnodes_per_node > 0, "ring needs at least one vnode");
    for (uint32_t n = 0; n < nodes; ++n) ids_.insert(n);
    Rebuild();
}

HashRing::HashRing(const std::vector<uint32_t> &node_ids,
                   uint32_t vnodes_per_node)
    : vnodes_per_node_(vnodes_per_node), ids_(node_ids.begin(), node_ids.end())
{
    SDF_CHECK_MSG(vnodes_per_node > 0, "ring needs at least one vnode");
    Rebuild();
}

void
HashRing::AddNode(uint32_t node)
{
    SDF_CHECK_MSG(ids_.insert(node).second, "node already on the ring");
    Rebuild();
}

void
HashRing::RemoveNode(uint32_t node)
{
    SDF_CHECK_MSG(ids_.erase(node) == 1, "node not on the ring");
    Rebuild();
}

void
HashRing::Rebuild()
{
    points_.clear();
    points_.reserve(uint64_t{ids_.size()} * vnodes_per_node_);
    for (uint32_t n : ids_) {
        for (uint32_t v = 0; v < vnodes_per_node_; ++v) {
            uint64_t state =
                uint64_t{n} * 0x9e3779b97f4a7c15ULL + v + 1;
            points_.emplace_back(util::SplitMix64(state), n);
        }
    }
    std::sort(points_.begin(), points_.end());
}

std::vector<uint32_t>
HashRing::ReplicasFor(uint64_t key, uint32_t replication) const
{
    SDF_CHECK_MSG(replication >= 1, "replication must be >= 1");
    const uint32_t want =
        std::min(replication, static_cast<uint32_t>(ids_.size()));
    std::vector<uint32_t> out;
    if (want == 0) return out;
    uint64_t state = key;
    const uint64_t h = util::SplitMix64(state);
    out.reserve(want);
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               std::make_pair(h, uint32_t{0}));
    for (size_t scanned = 0;
         scanned < points_.size() && out.size() < want; ++scanned) {
        if (it == points_.end()) it = points_.begin();
        const uint32_t node = it->second;
        if (std::find(out.begin(), out.end(), node) == out.end()) {
            out.push_back(node);
        }
        ++it;
    }
    SDF_CHECK(out.size() == want);
    return out;
}

std::pair<uint64_t, uint32_t>
HashRing::OwnerVnode(uint64_t key) const
{
    SDF_CHECK_MSG(!points_.empty(), "empty ring");
    uint64_t state = key;
    const uint64_t h = util::SplitMix64(state);
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               std::make_pair(h, uint32_t{0}));
    if (it == points_.end()) it = points_.begin();
    return *it;
}

}  // namespace sdf::cluster
