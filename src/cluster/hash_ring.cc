#include "cluster/hash_ring.h"

#include <algorithm>

#include "util/assert.h"
#include "util/rng.h"

namespace sdf::cluster {

HashRing::HashRing(uint32_t nodes, uint32_t vnodes_per_node) : nodes_(nodes)
{
    SDF_CHECK_MSG(nodes > 0, "ring needs at least one node");
    SDF_CHECK_MSG(vnodes_per_node > 0, "ring needs at least one vnode");
    points_.reserve(uint64_t{nodes} * vnodes_per_node);
    for (uint32_t n = 0; n < nodes; ++n) {
        for (uint32_t v = 0; v < vnodes_per_node; ++v) {
            uint64_t state =
                uint64_t{n} * 0x9e3779b97f4a7c15ULL + v + 1;
            points_.emplace_back(util::SplitMix64(state), n);
        }
    }
    std::sort(points_.begin(), points_.end());
}

std::vector<uint32_t>
HashRing::ReplicasFor(uint64_t key, uint32_t replication) const
{
    SDF_CHECK_MSG(replication >= 1 && replication <= nodes_,
                  "replication must be in [1, nodes]");
    uint64_t state = key;
    const uint64_t h = util::SplitMix64(state);
    std::vector<uint32_t> out;
    out.reserve(replication);
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               std::make_pair(h, uint32_t{0}));
    for (size_t scanned = 0;
         scanned < points_.size() && out.size() < replication; ++scanned) {
        if (it == points_.end()) it = points_.begin();
        const uint32_t node = it->second;
        if (std::find(out.begin(), out.end(), node) == out.end()) {
            out.push_back(node);
        }
        ++it;
    }
    SDF_CHECK(out.size() == replication);
    return out;
}

}  // namespace sdf::cluster
