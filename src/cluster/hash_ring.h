/**
 * @file
 * Consistent-hash ring with virtual nodes for key -> node placement.
 *
 * Each physical node contributes `vnodes_per_node` points on a 64-bit
 * ring; a key's replicas are the first R *distinct* nodes clockwise from
 * the key's hash. Virtual nodes smooth the load split (the classic
 * consistent-hashing construction), and the ring property keeps data
 * movement ~1/(N+1) when a node is added — the reason web-scale stores
 * shard this way rather than by `key % N`.
 *
 * Deterministic by construction: ring points come from SplitMix64 over
 * (node, vnode), so every process builds the identical ring.
 */
#ifndef SDF_CLUSTER_HASH_RING_H
#define SDF_CLUSTER_HASH_RING_H

#include <cstdint>
#include <utility>
#include <vector>

namespace sdf::cluster {

/** Key placement over N nodes. */
class HashRing
{
  public:
    explicit HashRing(uint32_t nodes, uint32_t vnodes_per_node = 64);

    uint32_t node_count() const { return nodes_; }

    /**
     * The ordered distinct nodes holding @p key: first is the primary,
     * the next @p replication - 1 are the clockwise successors.
     */
    std::vector<uint32_t> ReplicasFor(uint64_t key,
                                      uint32_t replication) const;

    /** Primary node for @p key. */
    uint32_t PrimaryOf(uint64_t key) const { return ReplicasFor(key, 1)[0]; }

  private:
    uint32_t nodes_;
    /** Sorted (hash point, node) pairs. */
    std::vector<std::pair<uint64_t, uint32_t>> points_;
};

}  // namespace sdf::cluster

#endif  // SDF_CLUSTER_HASH_RING_H
