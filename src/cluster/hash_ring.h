/**
 * @file
 * Consistent-hash ring with virtual nodes for key -> node placement.
 *
 * Each physical node contributes `vnodes_per_node` points on a 64-bit
 * ring; a key's replicas are the first R *distinct* nodes clockwise from
 * the key's hash. Virtual nodes smooth the load split (the classic
 * consistent-hashing construction), and the ring property keeps data
 * movement ~1/(N+1) when a node is added — the reason web-scale stores
 * shard this way rather than by `key % N`.
 *
 * Membership is dynamic: nodes can leave (failure) and rejoin (recovery).
 * Deterministic by construction: a node's ring points come from SplitMix64
 * over (node id, vnode) only, so every process builds the identical ring
 * and re-adding a previously removed node id reproduces the exact same
 * vnode layout it had before.
 */
#ifndef SDF_CLUSTER_HASH_RING_H
#define SDF_CLUSTER_HASH_RING_H

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace sdf::cluster {

/** Key placement over a dynamic set of nodes. */
class HashRing
{
  public:
    /** Ring over node ids 0 .. @p nodes - 1. */
    explicit HashRing(uint32_t nodes, uint32_t vnodes_per_node = 64);

    /** Ring over an explicit id set (may be empty: a fully failed cluster). */
    HashRing(const std::vector<uint32_t> &node_ids,
             uint32_t vnodes_per_node = 64);

    uint32_t node_count() const
    {
        return static_cast<uint32_t>(ids_.size());
    }
    bool Contains(uint32_t node) const { return ids_.count(node) != 0; }
    /** Member ids in ascending order. */
    std::vector<uint32_t> node_ids() const
    {
        return {ids_.begin(), ids_.end()};
    }

    /** Join @p node (its vnode points depend only on its id). */
    void AddNode(uint32_t node);

    /** Leave: every key owned by @p node falls to its clockwise successor. */
    void RemoveNode(uint32_t node);

    /**
     * The ordered distinct nodes holding @p key: first is the primary,
     * the next are the clockwise successors. Returns
     * min(replication, node_count()) nodes — a ring smaller than the
     * replication factor degrades to as many distinct replicas as exist
     * (empty on an empty ring).
     */
    std::vector<uint32_t> ReplicasFor(uint64_t key,
                                      uint32_t replication) const;

    /** Primary node for @p key (ring must be non-empty). */
    uint32_t PrimaryOf(uint64_t key) const { return ReplicasFor(key, 1)[0]; }

    /**
     * The vnode owning @p key: its ring point and the node it belongs to
     * (first point clockwise from the key's hash). For debugging lost-key
     * reports. Ring must be non-empty.
     */
    std::pair<uint64_t, uint32_t> OwnerVnode(uint64_t key) const;

  private:
    void Rebuild();

    uint32_t vnodes_per_node_;
    std::set<uint32_t> ids_;
    /** Sorted (hash point, node) pairs. */
    std::vector<std::pair<uint64_t, uint32_t>> points_;
};

}  // namespace sdf::cluster

#endif  // SDF_CLUSTER_HASH_RING_H
