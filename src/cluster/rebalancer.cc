#include "cluster/rebalancer.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/hub.h"
#include "obs/metrics.h"
#include "util/assert.h"

namespace sdf::cluster {

namespace {

/** Who holds a key right now (live nodes only), and at what size. */
struct Holder
{
    uint32_t value_size = 0;
    std::vector<uint32_t> nodes;  ///< Ascending node ids.
};

}  // namespace

Rebalancer::Rebalancer(sim::Simulator &sim, std::vector<StorageNode *> nodes,
                       ClusterRouter &router, RebalanceConfig cfg)
    : sim_(sim), nodes_(std::move(nodes)), router_(router), cfg_(cfg)
{
    SDF_CHECK(cfg_.max_inflight > 0);
    if (obs::Hub *hub = sim.hub()) {
        hub_ = hub;
        obs::MetricsRegistry &m = hub->metrics();
        metric_prefix_ = m.UniquePrefix("cluster.rebalance");
        m.RegisterCounter(metric_prefix_ + ".passes", &stats_.passes);
        m.RegisterCounter(metric_prefix_ + ".anti_entropy_passes",
                          &stats_.anti_entropy_passes);
        m.RegisterCounter(metric_prefix_ + ".keys_examined",
                          &stats_.keys_examined);
        m.RegisterCounter(metric_prefix_ + ".keys_moved",
                          &stats_.keys_moved);
        m.RegisterCounter(metric_prefix_ + ".bytes_moved",
                          &stats_.bytes_moved);
        m.RegisterCounter(metric_prefix_ + ".move_failures",
                          &stats_.move_failures);
        m.RegisterGauge(metric_prefix_ + ".inflight", [this]() {
            return static_cast<double>(inflight_);
        });
        m.RegisterGauge(metric_prefix_ + ".queue_depth", [this]() {
            return static_cast<double>(queue_.size());
        });
        m.RegisterGauge(metric_prefix_ + ".last_pass_ms", [this]() {
            return static_cast<double>(stats_.last_pass_ns) / 1e6;
        });
        m.RegisterGauge(metric_prefix_ + ".under_replicated", [this]() {
            return static_cast<double>(CountUnderReplicated());
        });
    }
}

Rebalancer::~Rebalancer()
{
    if (hub_ != nullptr) hub_->metrics().UnregisterPrefix(metric_prefix_);
}

std::vector<KeyMove>
Rebalancer::ComputeDelta() const
{
    // Audit: merge every live node's key set. std::map keeps the key
    // order (and thus the move schedule) deterministic.
    std::map<uint64_t, Holder> holders;
    std::map<uint64_t, uint32_t> node_keys;
    for (const StorageNode *n : nodes_) {
        if (!n->running() || !router_.node_live(n->id())) continue;
        node_keys.clear();
        n->CollectLive(node_keys);
        for (const auto &[key, size] : node_keys) {
            Holder &h = holders[key];
            h.value_size = std::max(h.value_size, size);
            h.nodes.push_back(n->id());
        }
    }

    std::vector<KeyMove> delta;
    for (const auto &[key, h] : holders) {
        const std::vector<uint32_t> targets = router_.ReplicaNodes(key);
        // Prefer sourcing from a replica that keeps the key under the new
        // placement (it holds a copy the router still reads from).
        uint32_t source = h.nodes.front();
        for (uint32_t t : targets) {
            if (std::find(h.nodes.begin(), h.nodes.end(), t) !=
                h.nodes.end()) {
                source = t;
                break;
            }
        }
        for (uint32_t t : targets) {
            if (std::find(h.nodes.begin(), h.nodes.end(), t) !=
                h.nodes.end()) {
                continue;  // Target already holds a copy.
            }
            delta.push_back(KeyMove{key, h.value_size, source, t});
        }
    }
    return delta;
}

uint64_t
Rebalancer::CountUnderReplicated() const
{
    const std::vector<KeyMove> delta = ComputeDelta();
    uint64_t keys = 0;
    uint64_t prev_key = 0;
    bool first = true;
    for (const KeyMove &m : delta) {
        if (first || m.key != prev_key) ++keys;
        prev_key = m.key;
        first = false;
    }
    return keys;
}

void
Rebalancer::RunPass(sim::Callback done)
{
    if (active_) {
        // Back-to-back passes: re-audit once the current one settles.
        pending_.push_back(std::move(done));
        return;
    }
    StartPass(std::move(done));
}

void
Rebalancer::StartPass(sim::Callback done)
{
    SDF_CHECK(!active_);
    active_ = true;
    pass_start_ = sim_.Now();
    pass_done_ = std::move(done);
    ++stats_.passes;

    std::vector<KeyMove> delta = ComputeDelta();
    uint64_t prev_key = 0;
    bool first = true;
    for (const KeyMove &m : delta) {
        if (first || m.key != prev_key) ++stats_.keys_examined;
        prev_key = m.key;
        first = false;
    }
    last_moves_ = delta;
    queue_.assign(delta.begin(), delta.end());
    if (queue_.empty()) {
        sim_.Post([this]() { FinishPass(); });
        return;
    }
    Pump();
}

void
Rebalancer::Pump()
{
    while (inflight_ < cfg_.max_inflight && !queue_.empty()) {
        const KeyMove m = queue_.front();
        queue_.pop_front();
        ++inflight_;
        StorageNode *src = nodes_[m.source];
        StorageNode *dst = nodes_[m.dest];
        src->StreamOut(m.key, [this, m, dst](const kv::GetResult &r) {
            auto settle = [this]() {
                --inflight_;
                if (queue_.empty() && inflight_ == 0) {
                    FinishPass();
                    return;
                }
                Pump();
            };
            if (!r.ok || !r.found) {
                // Source died mid-pass or the key vanished under us; the
                // next pass re-audits and retries from a fresh holder.
                ++stats_.move_failures;
                settle();
                return;
            }
            dst->StreamIn(
                m.key, r.value_size,
                [this, m, r, settle](bool ok) {
                    if (ok) {
                        ++stats_.keys_moved;
                        stats_.bytes_moved += r.value_size;
                    } else {
                        ++stats_.move_failures;
                    }
                    settle();
                },
                r.payload);
        });
    }
}

void
Rebalancer::FinishPass()
{
    SDF_CHECK(active_ && inflight_ == 0 && queue_.empty());
    stats_.last_pass_ns = sim_.Now() - pass_start_;
    active_ = false;
    sim::Callback done = std::move(pass_done_);
    pass_done_ = nullptr;
    if (done) done();
    if (!active_ && !pending_.empty()) {
        sim::Callback next = std::move(pending_.front());
        pending_.pop_front();
        StartPass(std::move(next));
    }
}

}  // namespace sdf::cluster
