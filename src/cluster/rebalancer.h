/**
 * @file
 * Ring rebalancing and anti-entropy for the sharded cluster.
 *
 * When membership changes — a node dies permanently, or a restarted node
 * rejoins — the consistent-hash ring reassigns a slice of the key space.
 * The Rebalancer computes the ownership delta (which live keys are missing
 * from which of their current target replicas) and streams exactly those
 * keys between nodes over net::Network's bulk-transfer path, bounded by a
 * configurable in-flight cap so rebalance traffic shares the NICs with
 * foreground load instead of swamping it.
 *
 * AntiEntropy is the repair-after-permanent-loss form of the same pass:
 * after a node is marked down for good, one pass restores full R-way
 * redundancy for every key the dead node held (the surviving replica
 * streams each key to the new owner the ring picked).
 */
#ifndef SDF_CLUSTER_REBALANCER_H
#define SDF_CLUSTER_REBALANCER_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "sim/simulator.h"

namespace sdf::cluster {

/** Rebalance pass tuning. */
struct RebalanceConfig
{
    /** Concurrent key transfers per pass. */
    uint32_t max_inflight = 4;
};

/** One key transfer the pass decided to make. */
struct KeyMove
{
    uint64_t key = 0;
    uint32_t value_size = 0;
    uint32_t source = 0;  ///< Node the copy is read from.
    uint32_t dest = 0;    ///< Target replica that is missing the key.
};

/**
 * Streams keys to the replicas the current ring says should hold them.
 * A pass is: audit every live node's contents, diff against the ring's
 * target placement, then pump the resulting move list through the nodes'
 * StreamOut -> StreamIn path with bounded concurrency.
 */
class Rebalancer
{
  public:
    struct Stats
    {
        uint64_t passes = 0;
        uint64_t anti_entropy_passes = 0;
        uint64_t keys_examined = 0;
        uint64_t keys_moved = 0;
        uint64_t bytes_moved = 0;
        uint64_t move_failures = 0;
        uint64_t last_pass_ns = 0;
    };

    Rebalancer(sim::Simulator &sim, std::vector<StorageNode *> nodes,
               ClusterRouter &router, RebalanceConfig cfg = {});
    ~Rebalancer();

    Rebalancer(const Rebalancer &) = delete;
    Rebalancer &operator=(const Rebalancer &) = delete;

    /**
     * The ownership delta under the *current* ring: every (key, source,
     * dest) where dest is a target replica for key but holds no copy.
     * Pure audit — no traffic; this is what a pass would move.
     */
    std::vector<KeyMove> ComputeDelta() const;

    /** Distinct live keys currently short of their target replica count. */
    uint64_t CountUnderReplicated() const;

    /**
     * Run one rebalance pass: ComputeDelta(), then stream every move.
     * @p done fires when the last transfer settled. Passes requested while
     * one is active are queued and run back-to-back.
     */
    void RunPass(sim::Callback done = nullptr);

    const Stats &stats() const { return stats_; }
    /** The moves performed by the most recently *started* pass. */
    const std::vector<KeyMove> &last_moves() const { return last_moves_; }
    bool active() const { return active_; }

  private:
    friend class AntiEntropy;

    void StartPass(sim::Callback done);
    void Pump();
    void FinishPass();

    sim::Simulator &sim_;
    std::vector<StorageNode *> nodes_;
    ClusterRouter &router_;
    RebalanceConfig cfg_;

    bool active_ = false;
    util::TimeNs pass_start_ = 0;
    std::deque<KeyMove> queue_;
    uint32_t inflight_ = 0;
    sim::Callback pass_done_;
    std::deque<sim::Callback> pending_;
    std::vector<KeyMove> last_moves_;
    Stats stats_;

    obs::Hub *hub_ = nullptr;
    std::string metric_prefix_;
};

/**
 * Redundancy repair after permanent node loss: a thin wrapper that runs a
 * rebalance pass and counts it as anti-entropy. Call after MarkNodeDown()
 * on a node that will not come back; afterwards every surviving key is
 * back to min(R, live nodes) copies.
 */
class AntiEntropy
{
  public:
    explicit AntiEntropy(Rebalancer &rebalancer) : rebalancer_(rebalancer) {}

    /** Run one repair pass; @p done fires when redundancy is restored. */
    void Run(sim::Callback done = nullptr)
    {
        ++rebalancer_.stats_.anti_entropy_passes;
        rebalancer_.RunPass(std::move(done));
    }

  private:
    Rebalancer &rebalancer_;
};

}  // namespace sdf::cluster

#endif  // SDF_CLUSTER_REBALANCER_H
