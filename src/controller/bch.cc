#include "controller/bch.h"

#include <algorithm>
#include <set>

#include "util/assert.h"

namespace sdf::controller {

namespace {

// Primitive polynomials for GF(2^m), bit i = coefficient of x^i.
constexpr uint32_t kPrimitivePoly[] = {
    0,      0,      0,
    0xB,    // m=3:  x^3 + x + 1
    0x13,   // m=4:  x^4 + x + 1
    0x25,   // m=5:  x^5 + x^2 + 1
    0x43,   // m=6:  x^6 + x + 1
    0x89,   // m=7:  x^7 + x^3 + 1
    0x11D,  // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,  // m=9:  x^9 + x^4 + 1
    0x409,  // m=10: x^10 + x^3 + 1
    0x805,  // m=11: x^11 + x^2 + 1
    0x1053, // m=12: x^12 + x^6 + x^4 + x + 1
    0x201B, // m=13: x^13 + x^4 + x^3 + x + 1
};

}  // namespace

GaloisField::GaloisField(int m) : m_(m), n_((1 << m) - 1)
{
    SDF_CHECK_MSG(m >= 3 && m <= 13, "GF degree out of supported range");
    const uint32_t poly = kPrimitivePoly[m];
    exp_.assign(n_, 0);
    log_.assign(size_t{1} << m, -1);
    uint32_t x = 1;
    for (int i = 0; i < n_; ++i) {
        exp_[i] = x;
        log_[x] = i;
        x <<= 1;
        if (x & (1u << m)) x ^= poly;
    }
}

int
GaloisField::Log(uint32_t x) const
{
    SDF_CHECK_MSG(x != 0 && x <= static_cast<uint32_t>(n_), "log of 0");
    return log_[x];
}

uint32_t
GaloisField::Inv(uint32_t a) const
{
    SDF_CHECK_MSG(a != 0, "inverse of 0");
    return exp_[(n_ - log_[a]) % n_];
}

BchCodec::BchCodec(int m, int t) : gf_(m), n_(gf_.n()), k_(0), t_(t)
{
    SDF_CHECK(t >= 1);

    // Build g(x) = lcm of minimal polynomials of alpha^1 .. alpha^{2t}.
    // Coefficients of minimal polynomials live in GF(2); we compute them
    // with GF(2^m) arithmetic and check they collapse to {0, 1}.
    std::set<int> covered;
    std::vector<uint8_t> g{1};  // g(x) = 1

    for (int i = 1; i <= 2 * t; ++i) {
        if (covered.count(i)) continue;
        // Cyclotomic coset of i: {i, 2i, 4i, ...} mod n.
        std::vector<int> coset;
        int c = i;
        do {
            coset.push_back(c);
            covered.insert(c);
            c = (2 * c) % n_;
        } while (c != i);

        // Minimal polynomial: product of (x + alpha^j) over the coset,
        // computed in GF(2^m).
        std::vector<uint32_t> min_poly{1};
        for (int j : coset) {
            const uint32_t root = gf_.Exp(j);
            std::vector<uint32_t> next(min_poly.size() + 1, 0);
            for (size_t d = 0; d < min_poly.size(); ++d) {
                next[d + 1] ^= min_poly[d];                 // x * term
                next[d] ^= gf_.Mul(min_poly[d], root);      // root * term
            }
            min_poly = std::move(next);
        }

        // Multiply into g(x) over GF(2).
        std::vector<uint8_t> next_g(g.size() + min_poly.size() - 1, 0);
        for (size_t a = 0; a < g.size(); ++a) {
            if (!g[a]) continue;
            for (size_t b = 0; b < min_poly.size(); ++b) {
                SDF_CHECK_MSG(min_poly[b] <= 1, "minimal polynomial not binary");
                next_g[a + b] ^= g[a] & static_cast<uint8_t>(min_poly[b]);
            }
        }
        g = std::move(next_g);
    }

    generator_ = std::move(g);
    const int parity = static_cast<int>(generator_.size()) - 1;
    k_ = n_ - parity;
    if (k_ <= 0) SDF_FATAL("BCH(t) too strong for this field: no data bits left");
}

std::vector<uint8_t>
BchCodec::Encode(const std::vector<uint8_t> &msg_bits) const
{
    SDF_CHECK_MSG(static_cast<int>(msg_bits.size()) == k_, "message size != k");
    const int parity = n_ - k_;

    // Systematic encoding: codeword = [parity | message], message occupying
    // the high-order coefficients. Compute rem(m(x) * x^parity, g(x)) via
    // LFSR-style long division.
    std::vector<uint8_t> rem(parity, 0);
    for (int i = k_ - 1; i >= 0; --i) {
        const uint8_t feedback = msg_bits[i] ^ (parity ? rem[parity - 1] : 0);
        for (int j = parity - 1; j > 0; --j)
            rem[j] = rem[j - 1] ^ (feedback & generator_[j]);
        if (parity) rem[0] = feedback & generator_[0];
    }

    std::vector<uint8_t> codeword(n_, 0);
    for (int i = 0; i < parity; ++i) codeword[i] = rem[i];
    for (int i = 0; i < k_; ++i) codeword[parity + i] = msg_bits[i];
    return codeword;
}

std::vector<uint8_t>
BchCodec::ExtractMessage(const std::vector<uint8_t> &codeword) const
{
    SDF_CHECK(static_cast<int>(codeword.size()) == n_);
    return {codeword.begin() + (n_ - k_), codeword.end()};
}

BchCodec::DecodeResult
BchCodec::Decode(std::vector<uint8_t> &codeword) const
{
    SDF_CHECK(static_cast<int>(codeword.size()) == n_);

    // Syndromes S_j = r(alpha^j) for j = 1 .. 2t.
    std::vector<uint32_t> synd(2 * t_ + 1, 0);
    bool all_zero = true;
    for (int j = 1; j <= 2 * t_; ++j) {
        uint32_t s = 0;
        for (int i = 0; i < n_; ++i) {
            if (codeword[i]) s ^= gf_.Exp(i * j);
        }
        synd[j] = s;
        if (s) all_zero = false;
    }
    if (all_zero) return DecodeResult{true, 0};

    // Berlekamp–Massey: find error locator sigma(x).
    std::vector<uint32_t> sigma{1};
    std::vector<uint32_t> prev_sigma{1};
    uint32_t prev_discrepancy = 1;
    int l = 0;       // current LFSR length
    int shift = 1;   // x^shift multiplier for the correction term

    for (int step = 1; step <= 2 * t_; ++step) {
        uint32_t d = synd[step];
        for (int i = 1; i <= l; ++i) {
            if (i < static_cast<int>(sigma.size()) && sigma[i] && synd[step - i])
                d ^= gf_.Mul(sigma[i], synd[step - i]);
        }
        if (d == 0) {
            ++shift;
            continue;
        }
        if (2 * l <= step - 1) {
            std::vector<uint32_t> saved = sigma;
            const uint32_t scale = gf_.Div(d, prev_discrepancy);
            if (sigma.size() < prev_sigma.size() + shift)
                sigma.resize(prev_sigma.size() + shift, 0);
            for (size_t i = 0; i < prev_sigma.size(); ++i)
                sigma[i + shift] ^= gf_.Mul(scale, prev_sigma[i]);
            l = step - l;
            prev_sigma = std::move(saved);
            prev_discrepancy = d;
            shift = 1;
        } else {
            const uint32_t scale = gf_.Div(d, prev_discrepancy);
            if (sigma.size() < prev_sigma.size() + shift)
                sigma.resize(prev_sigma.size() + shift, 0);
            for (size_t i = 0; i < prev_sigma.size(); ++i)
                sigma[i + shift] ^= gf_.Mul(scale, prev_sigma[i]);
            ++shift;
        }
    }

    while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
    const int degree = static_cast<int>(sigma.size()) - 1;
    if (degree > t_) return DecodeResult{false, 0};

    // Chien search: roots alpha^{-i} of sigma give error positions i.
    std::vector<int> error_positions;
    for (int i = 0; i < n_; ++i) {
        uint32_t v = 0;
        for (size_t d = 0; d < sigma.size(); ++d) {
            if (sigma[d])
                v ^= gf_.Mul(sigma[d], gf_.Exp(static_cast<int>(d) * (n_ - i)));
        }
        if (v == 0) error_positions.push_back(i);
    }
    if (static_cast<int>(error_positions.size()) != degree)
        return DecodeResult{false, 0};

    for (int pos : error_positions) codeword[pos] ^= 1;
    return DecodeResult{true, degree};
}

}  // namespace sdf::controller
