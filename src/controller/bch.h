/**
 * @file
 * Binary BCH error-correcting code over GF(2^m).
 *
 * SDF keeps per-chip BCH ECC as the only on-device protection (inter-channel
 * parity is removed; §2.2). This is a functional implementation: systematic
 * encoding, syndrome computation, Berlekamp–Massey, and Chien search. The
 * flash channel timing model uses only the correction *budget* (t bits per
 * page); this codec exists so the reproduction actually detects/corrects the
 * bit errors injected by the reliability model in end-to-end tests.
 */
#ifndef SDF_CONTROLLER_BCH_H
#define SDF_CONTROLLER_BCH_H

#include <cstdint>
#include <vector>

namespace sdf::controller {

/** Galois field GF(2^m) arithmetic with log/antilog tables. */
class GaloisField
{
  public:
    /** @param m Field degree in [3, 13]. */
    explicit GaloisField(int m);

    int m() const { return m_; }
    /** Field size minus one (multiplicative group order). */
    int n() const { return n_; }

    /** alpha^power (power taken mod n). */
    uint32_t
    Exp(int power) const
    {
        power %= n_;
        if (power < 0) power += n_;
        return exp_[power];
    }

    /** Discrete log base alpha of a nonzero element. */
    int Log(uint32_t x) const;

    uint32_t
    Mul(uint32_t a, uint32_t b) const
    {
        if (a == 0 || b == 0) return 0;
        return exp_[(log_[a] + log_[b]) % n_];
    }

    uint32_t Inv(uint32_t a) const;

    uint32_t
    Div(uint32_t a, uint32_t b) const
    {
        return Mul(a, Inv(b));
    }

  private:
    int m_;
    int n_;
    std::vector<uint32_t> exp_;
    std::vector<int> log_;
};

/**
 * A binary (n, k) BCH code with designed correction capability t.
 *
 * Bit vectors use one byte per bit (values 0/1); index 0 is the lowest-order
 * coefficient of the codeword polynomial.
 */
class BchCodec
{
  public:
    /**
     * @param m Field degree; codeword length n = 2^m - 1.
     * @param t Designed number of correctable bit errors.
     * Aborts (fatal) if the requested t leaves no data bits.
     */
    BchCodec(int m, int t);

    int n() const { return n_; }
    int k() const { return k_; }
    int t() const { return t_; }
    int parity_bits() const { return n_ - k_; }

    /** Systematically encode @p msg_bits (size k) into a codeword (size n). */
    std::vector<uint8_t> Encode(const std::vector<uint8_t> &msg_bits) const;

    /** Extract the message bits from a (corrected) codeword. */
    std::vector<uint8_t> ExtractMessage(const std::vector<uint8_t> &codeword) const;

    /** Outcome of a decode attempt. */
    struct DecodeResult
    {
        bool ok = false;        ///< Codeword valid after correction.
        int corrected = 0;      ///< Number of bit errors corrected.
    };

    /**
     * Correct @p codeword (size n) in place.
     * @return ok=false when the error count exceeded the code's capability
     *     (detected decode failure).
     */
    DecodeResult Decode(std::vector<uint8_t> &codeword) const;

  private:
    GaloisField gf_;
    int n_;
    int k_;
    int t_;
    std::vector<uint8_t> generator_;  ///< g(x) coefficients in GF(2).
};

}  // namespace sdf::controller

#endif  // SDF_CONTROLLER_BCH_H
