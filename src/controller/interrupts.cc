#include "controller/interrupts.h"

#include <utility>

#include "util/assert.h"

namespace sdf::controller {

InterruptCoalescer::InterruptCoalescer(sim::Simulator &sim,
                                       const InterruptConfig &config,
                                       uint32_t channel_count)
    : sim_(sim), config_(config)
{
    SDF_CHECK(config_.channels_per_group > 0);
    const uint32_t groups =
        (channel_count + config_.channels_per_group - 1) /
        config_.channels_per_group;
    groups_.resize(std::max(groups, 1u));
}

void
InterruptCoalescer::OnCompletion(uint32_t channel, sim::Callback deliver)
{
    ++completions_;
    if (!config_.coalesce) {
        ++interrupts_;
        cpu_time_ += config_.cpu_cost_per_interrupt;
        if (deliver) deliver();
        return;
    }

    const uint32_t g = channel / config_.channels_per_group;
    SDF_CHECK(g < groups_.size());
    Group &group = groups_[g];
    group.pending.push_back(std::move(deliver));

    if (group.pending.size() >= config_.merge_count) {
        if (group.timer != sim::kInvalidEvent) {
            sim_.Cancel(group.timer);
            group.timer = sim::kInvalidEvent;
        }
        Fire(g);
    } else if (group.timer == sim::kInvalidEvent) {
        group.timer = sim_.Schedule(config_.merge_window, [this, g]() {
            groups_[g].timer = sim::kInvalidEvent;
            Fire(g);
        });
    }
}

void
InterruptCoalescer::Fire(uint32_t group_idx)
{
    // Level 1 (Spartan-6): the group's batch moves to the global stage.
    Group &group = groups_[group_idx];
    if (group.pending.empty()) return;
    for (auto &cb : group.pending) {
        global_pending_.push_back(std::move(cb));
    }
    group.pending.clear();
    ++global_batches_;

    if (global_batches_ >= config_.global_merge_count) {
        if (global_timer_ != sim::kInvalidEvent) {
            sim_.Cancel(global_timer_);
            global_timer_ = sim::kInvalidEvent;
        }
        GlobalFire();
    } else if (global_timer_ == sim::kInvalidEvent) {
        global_timer_ = sim_.Schedule(config_.global_merge_window, [this]() {
            global_timer_ = sim::kInvalidEvent;
            GlobalFire();
        });
    }
}

void
InterruptCoalescer::GlobalFire()
{
    // Level 2 (Virtex-5): one MSI for everything pending. The whole batch
    // is handed to the completion ring as a single posted event — one
    // dispatch step drains every coalesced completion, mirroring how the
    // host ISR walks the merged completion queue in one pass.
    if (global_pending_.empty()) return;
    ++interrupts_;
    cpu_time_ += config_.cpu_cost_per_interrupt;
    global_batches_ = 0;
    sim_.Post([batch = std::move(global_pending_)]() {
        for (const auto &cb : batch) {
            if (cb) cb();
        }
    });
    global_pending_.clear();
}

double
InterruptCoalescer::MergeFactor() const
{
    return interrupts_ ? static_cast<double>(completions_) /
                             static_cast<double>(interrupts_)
                       : 0.0;
}

}  // namespace sdf::controller
