/**
 * @file
 * Interrupt generation and coalescing.
 *
 * SDF merges completion interrupts twice — once per Spartan-6 (11 channels)
 * and once globally in the Virtex-5 — so the host sees only 1/5 to 1/4 as
 * many interrupts as completions (§2.1). Fewer interrupts mean less host CPU
 * burned in handlers, which matters for IOPS-bound small reads.
 */
#ifndef SDF_CONTROLLER_INTERRUPTS_H
#define SDF_CONTROLLER_INTERRUPTS_H

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "util/units.h"

namespace sdf::controller {

using util::TimeNs;

/** Coalescing policy. */
struct InterruptConfig
{
    /** Coalescing on/off (off = one interrupt per completion). */
    bool coalesce = true;
    /** Channels per merge group (11 per Spartan-6 on the SDF board). */
    uint32_t channels_per_group = 11;
    /** Fire when this many completions are pending in a group. */
    uint32_t merge_count = 4;
    /** ... or when the oldest pending completion is this old. */
    TimeNs merge_window = util::UsToNs(20);
    /** Second level (Virtex-5): fire when this many group batches pend. */
    uint32_t global_merge_count = 2;
    /** ... or when the oldest pending batch is this old. */
    TimeNs global_merge_window = util::UsToNs(15);
    /** Host CPU time consumed by one interrupt (handler + wakeup). */
    TimeNs cpu_cost_per_interrupt = util::UsToNs(6);
};

/**
 * Collects per-channel completion signals and delivers them to the host in
 * merged batches. Completion callbacks are deferred until their group's
 * interrupt fires.
 */
class InterruptCoalescer
{
  public:
    InterruptCoalescer(sim::Simulator &sim, const InterruptConfig &config,
                       uint32_t channel_count);

    InterruptCoalescer(const InterruptCoalescer &) = delete;
    InterruptCoalescer &operator=(const InterruptCoalescer &) = delete;

    /**
     * Signal a completion on @p channel; @p deliver runs when the merged
     * interrupt for the channel's group fires.
     */
    void OnCompletion(uint32_t channel, sim::Callback deliver);

    uint64_t completions() const { return completions_; }
    uint64_t interrupts() const { return interrupts_; }
    /** Total host CPU time charged to interrupt handling. */
    TimeNs cpu_time() const { return cpu_time_; }
    /** Completions per interrupt (the paper's merge factor, 4-5x). */
    double MergeFactor() const;

  private:
    struct Group
    {
        std::vector<sim::Callback> pending;
        sim::EventId timer = sim::kInvalidEvent;
    };

    void Fire(uint32_t group_idx);
    void GlobalFire();

    sim::Simulator &sim_;
    InterruptConfig config_;
    std::vector<Group> groups_;
    /** Level-2 stage: batches from group fires awaiting the global merge. */
    std::vector<sim::Callback> global_pending_;
    uint32_t global_batches_ = 0;
    sim::EventId global_timer_ = sim::kInvalidEvent;
    uint64_t completions_ = 0;
    uint64_t interrupts_ = 0;
    TimeNs cpu_time_ = 0;
};

}  // namespace sdf::controller

#endif  // SDF_CONTROLLER_INTERRUPTS_H
