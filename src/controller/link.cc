#include "controller/link.h"

namespace sdf::controller {

LinkSpec
Pcie11x8Spec()
{
    LinkSpec s;
    s.name = "PCIe 1.1 x8";
    s.to_host_bytes_per_sec = 1.61e9;
    s.to_device_bytes_per_sec = 1.40e9;
    s.dma_setup = util::UsToNs(2);
    s.full_duplex = true;
    return s;
}

LinkSpec
Sata2Spec()
{
    LinkSpec s;
    s.name = "SATA 2.0";
    s.to_host_bytes_per_sec = 275e6;
    s.to_device_bytes_per_sec = 275e6;
    s.dma_setup = util::UsToNs(4);
    s.full_duplex = false;
    return s;
}

LinkSpec
UnlimitedLinkSpec()
{
    LinkSpec s;
    s.name = "unlimited";
    s.to_host_bytes_per_sec = 0;  // TransferTimeNs treats 0 as infinite speed
    s.to_device_bytes_per_sec = 0;
    s.dma_setup = 0;
    s.full_duplex = true;
    return s;
}

Link::Link(sim::Simulator &sim, const LinkSpec &spec)
    : sim_(sim), spec_(spec), to_host_(sim), to_device_(sim)
{
}

TimeNs
Link::TransferToHost(TimeNs earliest, uint64_t bytes, sim::Callback done)
{
    to_host_bytes_ += bytes;
    const TimeNs service =
        spec_.dma_setup +
        util::TransferTimeNs(bytes, spec_.to_host_bytes_per_sec);
    // Half-duplex links serialize both directions through one pipe.
    sim::FifoResource &pipe = spec_.full_duplex ? to_host_ : to_host_;
    if (!spec_.full_duplex) {
        // Ensure ordering against writes as well by chaining on both.
        earliest = std::max(earliest, to_device_.free_at());
    }
    const TimeNs end = pipe.SubmitAfter(earliest, service, std::move(done));
    if (!spec_.full_duplex) {
        // Block the other direction until this transfer drains.
        to_device_.SubmitAfter(end, 0, nullptr);
    }
    return end;
}

TimeNs
Link::TransferToDevice(TimeNs earliest, uint64_t bytes, sim::Callback done)
{
    to_device_bytes_ += bytes;
    const TimeNs service =
        spec_.dma_setup +
        util::TransferTimeNs(bytes, spec_.to_device_bytes_per_sec);
    if (!spec_.full_duplex) {
        earliest = std::max(earliest, to_host_.free_at());
    }
    const TimeNs end = to_device_.SubmitAfter(earliest, service, std::move(done));
    if (!spec_.full_duplex) {
        to_host_.SubmitAfter(end, 0, nullptr);
    }
    return end;
}

}  // namespace sdf::controller
