/**
 * @file
 * Host interface link models (PCIe 1.1 x8, SATA 2.0).
 *
 * The link is the ceiling the paper's Table 4 runs into: SDF's 8 MB read
 * throughput of 1.59 GB/s is 99 % of the PCIe 1.1 x8 effective read limit
 * of 1.61 GB/s. We model each direction as an independently utilized
 * pipe with a fixed effective bandwidth plus a per-transfer DMA setup cost.
 */
#ifndef SDF_CONTROLLER_LINK_H
#define SDF_CONTROLLER_LINK_H

#include <cstdint>
#include <string>

#include "sim/fifo_resource.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace sdf::controller {

using util::TimeNs;

/** Static description of a host link. */
struct LinkSpec
{
    std::string name;
    /** Effective device-to-host bandwidth (read data path), bytes/s. */
    double to_host_bytes_per_sec = 0;
    /** Effective host-to-device bandwidth (write data path), bytes/s. */
    double to_device_bytes_per_sec = 0;
    /** Per-transfer DMA descriptor/doorbell overhead. */
    TimeNs dma_setup = 0;
    /** True for full-duplex links (PCIe); SATA is half-duplex. */
    bool full_duplex = true;
};

/** PCIe 1.1 x8: measured effective 1.61 GB/s read, 1.40 GB/s write (§3.2). */
LinkSpec Pcie11x8Spec();

/** SATA 2.0: 300 MB/s line rate, ~275 MB/s effective, half-duplex. */
LinkSpec Sata2Spec();

/** Unlimited link for unit tests isolating flash-side behaviour. */
LinkSpec UnlimitedLinkSpec();

/**
 * A host link instance accounting transfer time in each direction.
 *
 * Transfers queue FIFO per direction (both directions share one pipe when
 * half-duplex) and complete after setup + bytes/bandwidth.
 */
class Link
{
  public:
    Link(sim::Simulator &sim, const LinkSpec &spec);

    Link(const Link &) = delete;
    Link &operator=(const Link &) = delete;

    /**
     * Move @p bytes device -> host; @p done fires at completion, which
     * cannot begin before @p earliest (data availability).
     * @return completion time.
     */
    TimeNs TransferToHost(TimeNs earliest, uint64_t bytes, sim::Callback done);

    /** Move @p bytes host -> device. @return completion time. */
    TimeNs TransferToDevice(TimeNs earliest, uint64_t bytes, sim::Callback done);

    const LinkSpec &spec() const { return spec_; }
    uint64_t to_host_bytes() const { return to_host_bytes_; }
    uint64_t to_device_bytes() const { return to_device_bytes_; }

  private:
    sim::Simulator &sim_;
    LinkSpec spec_;
    sim::FifoResource to_host_;
    sim::FifoResource to_device_;
    uint64_t to_host_bytes_ = 0;
    uint64_t to_device_bytes_ = 0;
};

}  // namespace sdf::controller

#endif  // SDF_CONTROLLER_LINK_H
