#include "fault/fault.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/hub.h"
#include "util/assert.h"

namespace sdf::fault {

const char *
FaultKindName(FaultKind k)
{
    switch (k) {
        case FaultKind::kChannelStall: return "stall";
        case FaultKind::kChannelDeath: return "death";
        case FaultKind::kPageCorruption: return "corrupt";
        case FaultKind::kLinkCrcWindow: return "crc";
        case FaultKind::kRberElevation: return "rber";
        case FaultKind::kFailSlow: return "failslow";
    }
    return "?";
}

namespace {

bool
KindFromName(const std::string &name, FaultKind *out)
{
    for (FaultKind k :
         {FaultKind::kChannelStall, FaultKind::kChannelDeath,
          FaultKind::kPageCorruption, FaultKind::kLinkCrcWindow,
          FaultKind::kRberElevation, FaultKind::kFailSlow}) {
        if (name == FaultKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

void
SortByTime(std::vector<FaultEvent> &events)
{
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.when < b.when;
                     });
}

}  // namespace

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events))
{
    SortByTime(events_);
}

FaultPlan
FaultPlan::Random(const FaultPlanSpec &spec, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<FaultEvent> events;
    events.reserve(spec.fault_count);

    const double weights[] = {spec.weight_stall, spec.weight_death,
                              spec.weight_corrupt, spec.weight_crc,
                              spec.weight_rber, spec.weight_failslow};
    double total_weight = 0;
    for (double w : weights) total_weight += w;
    SDF_CHECK_MSG(total_weight > 0, "all fault weights zero");

    uint32_t deaths = 0;
    for (uint32_t i = 0; i < spec.fault_count; ++i) {
        FaultEvent e;
        e.when = static_cast<TimeNs>(
            rng.NextBelow(static_cast<uint64_t>(spec.horizon)));
        e.device = static_cast<uint32_t>(rng.NextBelow(spec.devices));
        e.channel = static_cast<uint32_t>(rng.NextBelow(spec.channels));

        double pick = rng.NextDouble() * total_weight;
        int kind = 0;
        while (kind < 5 && pick >= weights[kind]) pick -= weights[kind++];
        if (kind == 1 && deaths >= spec.max_deaths) kind = 0;  // Demote.

        switch (kind) {
            case 0:
                e.kind = FaultKind::kChannelStall;
                e.duration = 1 + static_cast<TimeNs>(rng.NextBelow(
                                     static_cast<uint64_t>(spec.stall_max)));
                break;
            case 1:
                e.kind = FaultKind::kChannelDeath;
                ++deaths;
                break;
            case 2:
                e.kind = FaultKind::kPageCorruption;
                e.plane = static_cast<uint32_t>(rng.NextBelow(spec.planes));
                e.block = static_cast<uint32_t>(
                    rng.NextBelow(spec.blocks_per_plane));
                e.page = static_cast<uint32_t>(
                    rng.NextBelow(spec.pages_per_block));
                break;
            case 3:
                e.kind = FaultKind::kLinkCrcWindow;
                e.duration =
                    1 + static_cast<TimeNs>(rng.NextBelow(
                            static_cast<uint64_t>(spec.crc_window_max)));
                e.magnitude = rng.NextDouble() * spec.crc_prob_max;
                break;
            case 4:
                e.kind = FaultKind::kRberElevation;
                e.plane = static_cast<uint32_t>(rng.NextBelow(spec.planes));
                e.block = static_cast<uint32_t>(
                    rng.NextBelow(spec.blocks_per_plane));
                // Factor in [2, rber_factor_max]: always a real elevation.
                e.magnitude =
                    2.0 + rng.NextDouble() * (spec.rber_factor_max - 2.0);
                break;
            default:
                e.kind = FaultKind::kFailSlow;
                e.channel = 0;  // Node-level fault; channel is meaningless.
                e.duration =
                    1 + static_cast<TimeNs>(rng.NextBelow(
                            static_cast<uint64_t>(spec.fail_slow_max)));
                // Factor in [2, fail_slow_factor_max]: always a real slowdown.
                e.magnitude =
                    2.0 + rng.NextDouble() * (spec.fail_slow_factor_max - 2.0);
                break;
        }
        events.push_back(e);
    }
    return FaultPlan(std::move(events));
}

bool
FaultPlan::Parse(const std::string &text, FaultPlan *out, std::string *error)
{
    std::vector<FaultEvent> events;
    std::istringstream stream(text);
    std::string line;
    int lineno = 0;
    auto fail = [&](const std::string &why) {
        if (error) {
            *error = "line " + std::to_string(lineno) + ": " + why;
        }
        return false;
    };
    while (std::getline(stream, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        std::istringstream fields(line);
        double when_us;
        std::string kind_name;
        if (!(fields >> when_us)) {
            // Blank and comment-only lines are fine; anything else that
            // fails to start with a time is a malformed plan.
            if (line.find_first_not_of(" \t\r") != std::string::npos) {
                return fail("expected a time in microseconds");
            }
            continue;
        }
        if (!(fields >> kind_name)) return fail("missing fault kind");
        FaultEvent e;
        if (when_us < 0) return fail("negative time");
        e.when = util::UsToNs(when_us);
        if (!KindFromName(kind_name, &e.kind))
            return fail("unknown fault kind '" + kind_name + "'");
        if (!(fields >> e.device >> e.channel))
            return fail("missing device/channel");
        double dur_us;
        switch (e.kind) {
            case FaultKind::kChannelStall:
                if (!(fields >> dur_us) || dur_us <= 0)
                    return fail("stall needs a positive duration (us)");
                e.duration = util::UsToNs(dur_us);
                break;
            case FaultKind::kChannelDeath:
                break;
            case FaultKind::kPageCorruption:
                if (!(fields >> e.plane >> e.block >> e.page))
                    return fail("corrupt needs plane block page");
                break;
            case FaultKind::kLinkCrcWindow:
                if (!(fields >> dur_us >> e.magnitude) || dur_us <= 0 ||
                    e.magnitude < 0 || e.magnitude > 1) {
                    return fail("crc needs duration (us) and prob in [0,1]");
                }
                e.duration = util::UsToNs(dur_us);
                break;
            case FaultKind::kRberElevation:
                if (!(fields >> e.plane >> e.block >> e.magnitude) ||
                    e.magnitude <= 0) {
                    return fail("rber needs plane block factor");
                }
                break;
            case FaultKind::kFailSlow:
                if (!(fields >> dur_us >> e.magnitude) || dur_us <= 0 ||
                    e.magnitude <= 0) {
                    return fail(
                        "failslow needs duration (us) and a positive factor");
                }
                e.duration = util::UsToNs(dur_us);
                break;
        }
        events.push_back(e);
    }
    *out = FaultPlan(std::move(events));
    return true;
}

std::string
FaultPlan::ToText() const
{
    std::string text = "# <when_us> <kind> <device> <channel> [fields]\n";
    char buf[160];
    for (const FaultEvent &e : events_) {
        const double us = util::NsToUs(e.when);
        switch (e.kind) {
            case FaultKind::kChannelStall:
                std::snprintf(buf, sizeof buf, "%.3f stall %u %u %.3f\n", us,
                              e.device, e.channel, util::NsToUs(e.duration));
                break;
            case FaultKind::kChannelDeath:
                std::snprintf(buf, sizeof buf, "%.3f death %u %u\n", us,
                              e.device, e.channel);
                break;
            case FaultKind::kPageCorruption:
                std::snprintf(buf, sizeof buf, "%.3f corrupt %u %u %u %u %u\n",
                              us, e.device, e.channel, e.plane, e.block,
                              e.page);
                break;
            case FaultKind::kLinkCrcWindow:
                std::snprintf(buf, sizeof buf, "%.3f crc %u %u %.3f %g\n", us,
                              e.device, e.channel, util::NsToUs(e.duration),
                              e.magnitude);
                break;
            case FaultKind::kRberElevation:
                std::snprintf(buf, sizeof buf, "%.3f rber %u %u %u %u %g\n",
                              us, e.device, e.channel, e.plane, e.block,
                              e.magnitude);
                break;
            case FaultKind::kFailSlow:
                std::snprintf(buf, sizeof buf, "%.3f failslow %u %u %.3f %g\n",
                              us, e.device, e.channel,
                              util::NsToUs(e.duration), e.magnitude);
                break;
        }
        text += buf;
    }
    return text;
}

FaultInjector::FaultInjector(sim::Simulator &sim,
                             std::vector<core::SdfDevice *> devices,
                             const FaultPlan &plan, FailSlowSink fail_slow)
    : sim_(sim), devices_(std::move(devices)), fail_slow_(std::move(fail_slow))
{
    for (const FaultEvent &e : plan.events()) {
        sim_.ScheduleAt(std::max(e.when, sim_.Now()),
                        [this, e]() { Apply(e); });
    }

    if (obs::Hub *hub = sim.hub()) {
        hub_ = hub;
        obs::MetricsRegistry &m = hub->metrics();
        metric_prefix_ = m.UniquePrefix("fault");
        m.RegisterCounter(metric_prefix_ + ".stalls", &stats_.stalls);
        m.RegisterCounter(metric_prefix_ + ".deaths", &stats_.deaths);
        m.RegisterCounter(metric_prefix_ + ".corruptions",
                          &stats_.corruptions);
        m.RegisterCounter(metric_prefix_ + ".crc_windows",
                          &stats_.crc_windows);
        m.RegisterCounter(metric_prefix_ + ".rber_elevations",
                          &stats_.rber_elevations);
        m.RegisterCounter(metric_prefix_ + ".fail_slows", &stats_.fail_slows);
        m.RegisterCounter(metric_prefix_ + ".skipped", &stats_.skipped);
    }
}

FaultInjector::~FaultInjector()
{
    if (hub_ != nullptr) hub_->metrics().UnregisterPrefix(metric_prefix_);
}

void
FaultInjector::Apply(const FaultEvent &e)
{
    if (e.kind == FaultKind::kFailSlow) {
        // Node-level fault: `device` names a storage node, delivered via the
        // sink rather than a NAND channel. No sink wired means this plan was
        // built for a device-only rig — count it as clamped, like an
        // out-of-range channel.
        if (!fail_slow_) {
            ++stats_.skipped;
            return;
        }
        fail_slow_(e.device, e.magnitude);
        ++stats_.fail_slows;
        if (e.duration > 0) {
            const uint32_t node = e.device;
            sim_.Schedule(e.duration, [this, node]() {
                fail_slow_(node, 1.0);
            });
        }
        return;
    }
    if (e.device >= devices_.size()) {
        ++stats_.skipped;
        return;
    }
    core::SdfDevice &dev = *devices_[e.device];
    if (e.channel >= dev.channel_count()) {
        ++stats_.skipped;
        return;
    }
    nand::Channel &ch = dev.flash().channel(e.channel);
    const nand::Geometry &geo = dev.flash().geometry();
    switch (e.kind) {
        case FaultKind::kChannelStall:
            ch.InjectStall(e.duration);
            ++stats_.stalls;
            break;
        case FaultKind::kChannelDeath:
            ch.InjectDeath();
            ++stats_.deaths;
            break;
        case FaultKind::kPageCorruption:
            if (e.plane >= geo.PlanesPerChannel() ||
                e.block >= geo.blocks_per_plane ||
                e.page >= geo.pages_per_block) {
                ++stats_.skipped;
                return;
            }
            ch.CorruptPage(nand::PageAddr{e.plane, e.block, e.page});
            ++stats_.corruptions;
            break;
        case FaultKind::kLinkCrcWindow:
            ch.InjectTransientErrors(e.duration, e.magnitude);
            ++stats_.crc_windows;
            break;
        case FaultKind::kRberElevation:
            if (e.plane >= geo.PlanesPerChannel() ||
                e.block >= geo.blocks_per_plane) {
                ++stats_.skipped;
                return;
            }
            ch.ElevateRber(nand::BlockAddr{e.plane, e.block}, e.magnitude);
            ++stats_.rber_elevations;
            break;
        case FaultKind::kFailSlow:
            break;  // Handled above; unreachable.
    }
}

}  // namespace sdf::fault
