/**
 * @file
 * Deterministic fault injection for end-to-end recovery experiments.
 *
 * The paper deploys SDF with no drive-internal redundancy (no parity
 * across channels, no over-provisioned spare area beyond a handful of
 * blocks), betting that the distributed software layer absorbs hardware
 * failure. This subsystem makes that bet testable: a FaultPlan is a
 * deterministic, replayable schedule of hardware faults (chip stalls and
 * deaths, latent page corruption, transient link CRC windows, elevated
 * raw bit-error rates) that a FaultInjector applies to the NAND channels
 * of one or more SdfDevices at simulated times.
 *
 * Plans come from two places: Random() synthesizes one from a seeded Rng
 * (same seed, same plan — campaigns are bit-reproducible), and
 * Parse()/ToText() round-trip a one-fault-per-line text format so
 * interesting scenarios can be saved and replayed from a file:
 *
 *   # <when_us> <kind> <device> <channel> [kind-specific fields]
 *   1000 stall 0 3 500          # at 1ms, stall dev0/ch3 for 500us
 *   2000 death 0 7              # at 2ms, kill dev0/ch7
 *   3000 corrupt 0 1 2 14 9     # corrupt dev0/ch1 plane2 block14 page9
 *   4000 crc 0 5 800 0.25       # 800us window of 25% read CRC errors
 *   5000 rber 0 2 0 3 50.0      # multiply ch2 plane0 block3 RBER by 50
 *   6000 failslow 2 0 2000 4.0  # node2 serves 4x slower for 2000us
 *
 * kFailSlow is a node-level fault, not a NAND one: the `device` field
 * names a storage node, and the injector delivers it through a sink
 * callback (typically wired to cluster::StorageNode::SetFailSlow). The
 * multiplier is restored to 1.0 when the window ends.
 */
#ifndef SDF_FAULT_FAULT_H
#define SDF_FAULT_FAULT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace sdf::fault {

using util::TimeNs;

/** The hardware failure modes the injector can produce. */
enum class FaultKind : uint8_t
{
    kChannelStall,    ///< Bus + planes busy for `duration` (firmware hiccup).
    kChannelDeath,    ///< Channel permanently dead (chip/engine failure).
    kPageCorruption,  ///< One page uncorrectable at every retry level.
    kLinkCrcWindow,   ///< Reads fail with `magnitude` prob for `duration`.
    kRberElevation,   ///< One block's RBER multiplied by `magnitude`.
    kFailSlow,        ///< Node `device` serves `magnitude`x slower for `duration`.
};

const char *FaultKindName(FaultKind k);

/** One scheduled fault. Fields beyond (when, kind, device, channel) are
 *  kind-specific; unused ones stay zero. */
struct FaultEvent
{
    TimeNs when = 0;
    FaultKind kind = FaultKind::kChannelStall;
    uint32_t device = 0;
    uint32_t channel = 0;
    uint32_t plane = 0;     ///< kPageCorruption, kRberElevation.
    uint32_t block = 0;     ///< kPageCorruption, kRberElevation.
    uint32_t page = 0;      ///< kPageCorruption.
    TimeNs duration = 0;    ///< kChannelStall, kLinkCrcWindow.
    double magnitude = 0;   ///< kLinkCrcWindow prob / kRberElevation factor.
};

/** Knobs for FaultPlan::Random(). */
struct FaultPlanSpec
{
    uint32_t fault_count = 100;
    TimeNs horizon = util::MsToNs(1000);  ///< Faults spread over [0, horizon).
    uint32_t devices = 1;
    uint32_t channels = 44;
    uint32_t planes = 4;
    uint32_t blocks_per_plane = 16;
    uint32_t pages_per_block = 256;
    /** Relative weights per kind (stall, death, corrupt, crc, rber,
     *  failslow). Fail-slow defaults to 0 so plans without a sink — and
     *  pre-existing seeded campaigns — are unchanged. */
    double weight_stall = 3.0;
    double weight_death = 0.5;
    double weight_corrupt = 4.0;
    double weight_crc = 2.0;
    double weight_rber = 4.0;
    double weight_failslow = 0.0;
    /** At most this many channel deaths total (keep the system alive). */
    uint32_t max_deaths = 2;
    TimeNs stall_max = util::UsToNs(2000);
    TimeNs crc_window_max = util::UsToNs(5000);
    double crc_prob_max = 0.5;
    double rber_factor_max = 100.0;
    /** kFailSlow windows: duration in (0, fail_slow_max], factor in
     *  [2, fail_slow_factor_max]. `device` is rolled below `devices`
     *  and names a storage node. */
    TimeNs fail_slow_max = util::MsToNs(50);
    double fail_slow_factor_max = 8.0;
};

/** A deterministic, replayable schedule of faults, sorted by time. */
class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(std::vector<FaultEvent> events);

    /** Synthesize a plan from @p spec; equal seeds give equal plans. */
    static FaultPlan Random(const FaultPlanSpec &spec, uint64_t seed);

    /**
     * Parse the text format (see file header). Comment ('#') and blank
     * lines are skipped. Returns false on malformed input and leaves
     * @p error describing the first bad line.
     */
    static bool Parse(const std::string &text, FaultPlan *out,
                      std::string *error);

    /** Serialize to the text format Parse() accepts. */
    std::string ToText() const;

    const std::vector<FaultEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }
    size_t size() const { return events_.size(); }

  private:
    std::vector<FaultEvent> events_;
};

/** Counters of what the injector actually applied. */
struct FaultInjectorStats
{
    uint64_t stalls = 0;
    uint64_t deaths = 0;
    uint64_t corruptions = 0;
    uint64_t crc_windows = 0;
    uint64_t rber_elevations = 0;
    uint64_t fail_slows = 0;
    uint64_t skipped = 0;  ///< Out-of-range targets (clamped plans).

    uint64_t total() const
    {
        return stalls + deaths + corruptions + crc_windows + rber_elevations +
               fail_slows;
    }
};

/**
 * Applies a FaultPlan to live devices on the simulator clock. Construction
 * schedules every event; the faults then fire as the simulation runs.
 * Events targeting nonexistent devices/channels/blocks are counted as
 * skipped rather than crashing, so one plan can drive differently sized
 * configurations.
 */
class FaultInjector
{
  public:
    /** Delivers kFailSlow events: (node, multiplier); the injector calls it
     *  again with 1.0 when the window expires. */
    using FailSlowSink = std::function<void(uint32_t node, double multiplier)>;

    FaultInjector(sim::Simulator &sim, std::vector<core::SdfDevice *> devices,
                  const FaultPlan &plan, FailSlowSink fail_slow = nullptr);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    const FaultInjectorStats &stats() const { return stats_; }

  private:
    void Apply(const FaultEvent &e);

    sim::Simulator &sim_;
    std::vector<core::SdfDevice *> devices_;
    FailSlowSink fail_slow_;
    FaultInjectorStats stats_;

    obs::Hub *hub_ = nullptr;       ///< Metrics registration (see obs/hub.h).
    std::string metric_prefix_;
};

}  // namespace sdf::fault

#endif  // SDF_FAULT_FAULT_H
