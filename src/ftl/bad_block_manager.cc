#include "ftl/bad_block_manager.h"

#include <algorithm>

#include "util/assert.h"

namespace sdf::ftl {

BadBlockManager::BadBlockManager(uint32_t total_blocks,
                                 const std::vector<uint32_t> &factory_bad,
                                 uint32_t spare_count)
    : bad_(total_blocks, false)
{
    for (uint32_t b : factory_bad) {
        SDF_CHECK(b < total_blocks);
        bad_[b] = true;
    }
    std::vector<uint32_t> good;
    good.reserve(total_blocks);
    for (uint32_t b = 0; b < total_blocks; ++b) {
        if (!bad_[b]) good.push_back(b);
    }
    SDF_CHECK_MSG(good.size() > spare_count,
                  "not enough good blocks for the spare pool");
    // Spares come from the tail so the usable range stays dense and low.
    spares_.assign(good.end() - spare_count, good.end());
    usable_.assign(good.begin(), good.end() - spare_count);
}

uint32_t
BadBlockManager::RetireBlock(uint32_t block)
{
    SDF_CHECK(block < bad_.size());
    if (!bad_[block]) {
        bad_[block] = true;
        ++grown_bad_;
    }
    if (spares_.empty()) return kNoSpare;
    const uint32_t replacement = spares_.back();
    spares_.pop_back();
    return replacement;
}

}  // namespace sdf::ftl
