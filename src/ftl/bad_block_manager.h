/**
 * @file
 * Bad block management: presents a stable logical block space over a
 * physical space with factory and grown bad blocks, remapping into a spare
 * pool. Both the SDF channel engines and the conventional-SSD FTL use this.
 */
#ifndef SDF_FTL_BAD_BLOCK_MANAGER_H
#define SDF_FTL_BAD_BLOCK_MANAGER_H

#include <cstdint>
#include <vector>

namespace sdf::ftl {

/** Returned by RetireBlock when the spare pool is exhausted. */
inline constexpr uint32_t kNoSpare = UINT32_MAX;

/**
 * Tracks usable physical blocks in one channel and remaps grown bad blocks
 * to spares.
 *
 * On construction the manager scans the provided factory-bad list, reserves
 * @p spare_count good blocks as the replacement pool, and exposes the rest
 * as the usable set.
 */
class BadBlockManager
{
  public:
    /**
     * @param total_blocks Physical blocks in the channel (flat indices).
     * @param factory_bad Flat indices of blocks bad at manufacture.
     * @param spare_count Good blocks reserved for future remaps.
     */
    BadBlockManager(uint32_t total_blocks,
                    const std::vector<uint32_t> &factory_bad,
                    uint32_t spare_count);

    /** Usable (non-bad, non-spare) physical block indices, ascending. */
    const std::vector<uint32_t> &usable_blocks() const { return usable_; }

    /** True if @p block is currently marked bad. */
    bool IsBad(uint32_t block) const { return bad_[block]; }

    /**
     * Record that @p block failed; returns the spare that replaces it, or
     * kNoSpare if the spare pool is exhausted (the caller must shrink its
     * logical space — on SDF the unit goes kDead).
     */
    uint32_t RetireBlock(uint32_t block);

    uint32_t spares_left() const { return static_cast<uint32_t>(spares_.size()); }
    uint32_t grown_bad_count() const { return grown_bad_; }

  private:
    std::vector<bool> bad_;
    std::vector<uint32_t> usable_;
    std::vector<uint32_t> spares_;
    uint32_t grown_bad_ = 0;
};

}  // namespace sdf::ftl

#endif  // SDF_FTL_BAD_BLOCK_MANAGER_H
