/**
 * @file
 * Block-level logical-to-physical mapping — the one-lookup LA2PA table of
 * the SDF channel engine (§2.1: a lookup costs one SRAM clock cycle).
 */
#ifndef SDF_FTL_BLOCK_MAP_H
#define SDF_FTL_BLOCK_MAP_H

#include <cstdint>
#include <vector>

namespace sdf::ftl {

/** Sentinel for an unmapped logical block. */
inline constexpr uint32_t kUnmappedBlock = 0xFFFFFFFFu;

/** Dense logical-block to physical-block table for one plane. */
class BlockMap
{
  public:
    explicit BlockMap(uint32_t logical_blocks)
        : map_(logical_blocks, kUnmappedBlock) {}

    uint32_t size() const { return static_cast<uint32_t>(map_.size()); }

    /** Physical block for @p lb, or kUnmappedBlock. */
    uint32_t
    Lookup(uint32_t lb) const
    {
        return map_[lb];
    }

    /** Map @p lb to @p pb. @return the previously mapped block or sentinel. */
    uint32_t
    Set(uint32_t lb, uint32_t pb)
    {
        const uint32_t old = map_[lb];
        map_[lb] = pb;
        return old;
    }

    /** Unmap @p lb. @return the previously mapped block or sentinel. */
    uint32_t
    Clear(uint32_t lb)
    {
        const uint32_t old = map_[lb];
        map_[lb] = kUnmappedBlock;
        return old;
    }

  private:
    std::vector<uint32_t> map_;
};

}  // namespace sdf::ftl

#endif  // SDF_FTL_BLOCK_MAP_H
