#include "ftl/page_map.h"

#include <limits>

#include "util/assert.h"

namespace sdf::ftl {

PageMap::PageMap(uint32_t logical_pages, uint32_t physical_pages,
                 uint32_t pages_per_block)
    : pages_per_block_(pages_per_block),
      map_(logical_pages, kUnmappedPage),
      rmap_(physical_pages, kUnmappedPage),
      valid_count_(physical_pages / pages_per_block, 0)
{
    SDF_CHECK(pages_per_block > 0);
    SDF_CHECK(physical_pages % pages_per_block == 0);
}

uint32_t
PageMap::Lookup(uint32_t lpn) const
{
    SDF_CHECK(lpn < map_.size());
    return map_[lpn];
}

uint32_t
PageMap::ReverseLookup(uint32_t ppn) const
{
    SDF_CHECK(ppn < rmap_.size());
    return rmap_[ppn];
}

uint32_t
PageMap::Update(uint32_t lpn, uint32_t ppn)
{
    SDF_CHECK(lpn < map_.size());
    SDF_CHECK(ppn < rmap_.size());
    SDF_CHECK_MSG(rmap_[ppn] == kUnmappedPage, "physical page already mapped");
    const uint32_t old = map_[lpn];
    if (old != kUnmappedPage) {
        rmap_[old] = kUnmappedPage;
        --valid_count_[BlockOf(old)];
    } else {
        ++mapped_;
    }
    map_[lpn] = ppn;
    rmap_[ppn] = lpn;
    ++valid_count_[BlockOf(ppn)];
    return old;
}

uint32_t
PageMap::Invalidate(uint32_t lpn)
{
    SDF_CHECK(lpn < map_.size());
    const uint32_t old = map_[lpn];
    if (old != kUnmappedPage) {
        rmap_[old] = kUnmappedPage;
        --valid_count_[BlockOf(old)];
        map_[lpn] = kUnmappedPage;
        --mapped_;
    }
    return old;
}

std::vector<uint32_t>
PageMap::ValidLogicalPages(uint32_t block) const
{
    std::vector<uint32_t> result;
    result.reserve(valid_count_[block]);
    const uint32_t first = block * pages_per_block_;
    for (uint32_t p = first; p < first + pages_per_block_; ++p) {
        if (rmap_[p] != kUnmappedPage) result.push_back(rmap_[p]);
    }
    return result;
}

size_t
PickGreedyVictim(const PageMap &map, const std::vector<uint32_t> &candidates)
{
    size_t best = std::numeric_limits<size_t>::max();
    uint32_t best_valid = std::numeric_limits<uint32_t>::max();
    for (size_t i = 0; i < candidates.size(); ++i) {
        const uint32_t v = map.ValidCount(candidates[i]);
        if (v < best_valid) {
            best_valid = v;
            best = i;
        }
    }
    return best;
}

size_t
PickCostBenefitVictim(const PageMap &map,
                      const std::vector<uint32_t> &candidates,
                      const std::vector<uint64_t> &ages,
                      uint32_t pages_per_block)
{
    SDF_CHECK(ages.size() == candidates.size());
    size_t best = std::numeric_limits<size_t>::max();
    double best_score = -1.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
        const double u = static_cast<double>(map.ValidCount(candidates[i])) /
                         static_cast<double>(pages_per_block);
        const double score =
            (1.0 - u) * static_cast<double>(ages[i]) / (1.0 + u);
        if (score > best_score) {
            best_score = score;
            best = i;
        }
    }
    return best;
}

}  // namespace sdf::ftl
