/**
 * @file
 * Page-level address mapping with per-block validity accounting — the core
 * state of a conventional SSD FTL (the baseline the paper's SDF replaces).
 */
#ifndef SDF_FTL_PAGE_MAP_H
#define SDF_FTL_PAGE_MAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sdf::ftl {

/** Sentinel for an unmapped logical or physical page. */
inline constexpr uint32_t kUnmappedPage = 0xFFFFFFFFu;

/**
 * Logical-to-physical page map for one channel of a conventional SSD.
 *
 * Physical pages are flat per-channel indices (block * pages_per_block +
 * page). The map maintains the reverse map and per-block valid-page counts
 * that garbage collection needs.
 */
class PageMap
{
  public:
    /**
     * @param logical_pages Logical pages assigned to this channel.
     * @param physical_pages Physical pages in this channel.
     * @param pages_per_block For block-index derivation.
     */
    PageMap(uint32_t logical_pages, uint32_t physical_pages,
            uint32_t pages_per_block);

    /** Physical page for @p lpn, or kUnmappedPage. */
    uint32_t Lookup(uint32_t lpn) const;

    /** Logical page stored at @p ppn, or kUnmappedPage. */
    uint32_t ReverseLookup(uint32_t ppn) const;

    /**
     * Map @p lpn to @p ppn, invalidating any previous mapping.
     * @return the previous physical page (now invalid) or kUnmappedPage.
     */
    uint32_t Update(uint32_t lpn, uint32_t ppn);

    /** Drop the mapping for @p lpn (trim). @return old ppn or sentinel. */
    uint32_t Invalidate(uint32_t lpn);

    /** Valid pages currently stored in @p block. */
    uint32_t ValidCount(uint32_t block) const { return valid_count_[block]; }

    /** Logical pages with valid data in @p block (for GC migration). */
    std::vector<uint32_t> ValidLogicalPages(uint32_t block) const;

    /** Total mapped logical pages. */
    uint32_t mapped_pages() const { return mapped_; }

    uint32_t logical_pages() const { return static_cast<uint32_t>(map_.size()); }

  private:
    uint32_t BlockOf(uint32_t ppn) const { return ppn / pages_per_block_; }

    uint32_t pages_per_block_;
    std::vector<uint32_t> map_;          ///< lpn -> ppn
    std::vector<uint32_t> rmap_;         ///< ppn -> lpn
    std::vector<uint32_t> valid_count_;  ///< block -> valid pages
    uint32_t mapped_ = 0;
};

/**
 * Greedy GC victim selection: the candidate with the fewest valid pages.
 * @return index into @p candidates, or SIZE_MAX if empty.
 */
size_t PickGreedyVictim(const PageMap &map,
                        const std::vector<uint32_t> &candidates);

/**
 * Cost-benefit victim selection (ablation): maximizes
 * benefit = (1 - u) * age / (1 + u) where u is the valid fraction.
 * @param ages Per-candidate age (e.g. time since the block was closed).
 */
size_t PickCostBenefitVictim(const PageMap &map,
                             const std::vector<uint32_t> &candidates,
                             const std::vector<uint64_t> &ages,
                             uint32_t pages_per_block);

}  // namespace sdf::ftl

#endif  // SDF_FTL_PAGE_MAP_H
