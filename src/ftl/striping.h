/**
 * @file
 * Address striping across channels.
 *
 * Conventional SSDs stripe the logical address space round-robin over all
 * channels with a small unit (8 KB on the Huawei Gen3) so one request is
 * served by many channels. SDF deliberately does the opposite — whole-unit
 * channel affinity — so this helper is the baseline's distinguishing layout.
 */
#ifndef SDF_FTL_STRIPING_H
#define SDF_FTL_STRIPING_H

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace sdf::ftl {

/** One contiguous piece of a request that lands on a single channel. */
struct StripeChunk
{
    uint32_t channel = 0;
    uint64_t channel_offset = 0;  ///< Byte offset within the channel's space.
    uint32_t length = 0;          ///< Bytes in this chunk.
};

/** Round-robin striping of a flat byte space over channels. */
class StripingLayout
{
  public:
    StripingLayout(uint32_t channels, uint32_t stripe_bytes)
        : channels_(channels), stripe_bytes_(stripe_bytes)
    {
        SDF_CHECK(channels > 0 && stripe_bytes > 0);
    }

    uint32_t channels() const { return channels_; }
    uint32_t stripe_bytes() const { return stripe_bytes_; }

    /** Channel serving the byte at @p offset. */
    uint32_t
    ChannelOf(uint64_t offset) const
    {
        return static_cast<uint32_t>((offset / stripe_bytes_) % channels_);
    }

    /** Byte offset within the owning channel's private space. */
    uint64_t
    ChannelOffset(uint64_t offset) const
    {
        const uint64_t stripe = offset / stripe_bytes_;
        const uint64_t row = stripe / channels_;
        return row * stripe_bytes_ + offset % stripe_bytes_;
    }

    /** Split [offset, offset + length) into per-channel chunks. */
    std::vector<StripeChunk>
    Split(uint64_t offset, uint64_t length) const
    {
        std::vector<StripeChunk> chunks;
        while (length > 0) {
            const uint64_t in_stripe = offset % stripe_bytes_;
            const uint64_t take = std::min<uint64_t>(stripe_bytes_ - in_stripe, length);
            chunks.push_back(StripeChunk{ChannelOf(offset), ChannelOffset(offset),
                                         static_cast<uint32_t>(take)});
            offset += take;
            length -= take;
        }
        return chunks;
    }

  private:
    uint32_t channels_;
    uint32_t stripe_bytes_;
};

}  // namespace sdf::ftl

#endif  // SDF_FTL_STRIPING_H
