#include "ftl/wear_leveler.h"

#include "util/assert.h"

namespace sdf::ftl {

void
DynamicWearLeveler::Release(uint32_t block, uint32_t erase_count)
{
    heap_.push(Entry{erase_count, block});
}

uint32_t
DynamicWearLeveler::Allocate()
{
    SDF_CHECK_MSG(!heap_.empty(), "allocating from empty free pool");
    const uint32_t block = heap_.top().block;
    heap_.pop();
    return block;
}

uint32_t
DynamicWearLeveler::MinEraseCount() const
{
    SDF_CHECK(!heap_.empty());
    return heap_.top().erase_count;
}

}  // namespace sdf::ftl
