/**
 * @file
 * Dynamic wear leveling: free-block allocation that always hands out the
 * block with the lowest erase count.
 *
 * The SDF channel engine keeps its erase-count table in banked SRAM so the
 * minimum search can run in parallel (§2.1); here a binary heap provides the
 * same policy.
 */
#ifndef SDF_FTL_WEAR_LEVELER_H
#define SDF_FTL_WEAR_LEVELER_H

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace sdf::ftl {

/**
 * Pool of free (erased) physical blocks ordered by erase count.
 *
 * Blocks are identified by flat per-channel indices. The pool does not talk
 * to the flash itself; callers erase blocks and then Release() them here.
 */
class DynamicWearLeveler
{
  public:
    DynamicWearLeveler() = default;

    /** Add a free block with its current erase count. */
    void Release(uint32_t block, uint32_t erase_count);

    /** True if no free block is available. */
    bool Empty() const { return heap_.empty(); }

    /** Number of free blocks in the pool. */
    size_t FreeCount() const { return heap_.size(); }

    /**
     * Remove and return the least-worn free block.
     * Precondition: !Empty().
     */
    uint32_t Allocate();

    /** Erase count of the block Allocate() would return next. */
    uint32_t MinEraseCount() const;

  private:
    struct Entry
    {
        uint32_t erase_count;
        uint32_t block;
        bool
        operator>(const Entry &o) const
        {
            if (erase_count != o.erase_count) return erase_count > o.erase_count;
            return block > o.block;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
};

}  // namespace sdf::ftl

#endif  // SDF_FTL_WEAR_LEVELER_H
