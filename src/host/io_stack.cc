#include "host/io_stack.h"

#include <utility>

#include "util/assert.h"

namespace sdf::host {

IoStackSpec
KernelIoStackSpec()
{
    // §4.3: 9100 cycles to issue, 21900 to complete, at 2.4 GHz.
    IoStackSpec s;
    s.name = "linux-kernel";
    s.issue_cost = util::UsToNs(3.8);
    s.completion_cost = util::UsToNs(9.1);
    return s;
}

IoStackSpec
SdfUserStackSpec()
{
    // §2.4: 2-4 µs total, mostly MSI handling on completion.
    IoStackSpec s;
    s.name = "sdf-userspace";
    s.issue_cost = util::UsToNs(1.0);
    s.completion_cost = util::UsToNs(2.0);
    return s;
}

IoStackSpec
NullIoStackSpec()
{
    return IoStackSpec{"null", 0, 0};
}

IoStack::IoStack(sim::Simulator &sim, const IoStackSpec &spec,
                 uint32_t cpu_count)
    : sim_(sim), spec_(spec)
{
    SDF_CHECK(cpu_count > 0);
    cpus_.reserve(cpu_count);
    for (uint32_t i = 0; i < cpu_count; ++i)
        cpus_.push_back(std::make_unique<sim::FifoResource>(sim));
}

sim::FifoResource &
IoStack::PickCpu()
{
    // Least-loaded CPU: earliest drain horizon.
    sim::FifoResource *best = cpus_[0].get();
    for (auto &cpu : cpus_) {
        if (cpu->free_at() < best->free_at()) best = cpu.get();
    }
    return *best;
}

void
IoStack::Issue(Operation op, sim::Callback done, obs::IoSpan *span)
{
    ++requests_;
    cpu_time_ += spec_.issue_cost + spec_.completion_cost;
    PickCpu().Submit(spec_.issue_cost, [this, op = std::move(op), span,
                                        done = std::move(done)]() mutable {
        // Whatever the device does next is its own stage; mark the default
        // (kDevice) in case it records nothing finer.
        if (span != nullptr) span->Enter(obs::Stage::kDevice, sim_.Now());
        op([this, span, done = std::move(done)]() mutable {
            if (span != nullptr) {
                span->Enter(obs::Stage::kHostComplete, sim_.Now());
            }
            PickCpu().Submit(spec_.completion_cost, std::move(done));
        });
    });
}

}  // namespace sdf::host
