/**
 * @file
 * Host I/O stack models.
 *
 * The paper (§2.4, §4.3) measures the Linux kernel I/O path at ~9100 CPU
 * cycles to issue and ~21900 cycles to complete a request — about 12.9 µs
 * on the 2.4 GHz E5620 — while SDF's user-space IOCTRL path costs only
 * 2–4 µs. This module charges those costs against a pool of host CPUs so
 * that IOPS-heavy workloads see both the latency and the CPU saturation.
 */
#ifndef SDF_HOST_IO_STACK_H
#define SDF_HOST_IO_STACK_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/span.h"
#include "sim/fifo_resource.h"
#include "sim/simulator.h"

namespace sdf::host {

using util::TimeNs;

/** Per-request CPU costs of one software stack. */
struct IoStackSpec
{
    std::string name;
    TimeNs issue_cost = 0;       ///< Before the device sees the request.
    TimeNs completion_cost = 0;  ///< Interrupt/completion processing.
};

/** Linux VFS + block + SCSI/SATA path (Figure 6a): ~12.9 µs per request. */
IoStackSpec KernelIoStackSpec();

/** SDF's user-space IOCTRL + thin PCIe driver (Figure 6b): ~2-4 µs. */
IoStackSpec SdfUserStackSpec();

/** Zero-cost stack for experiments isolating the device. */
IoStackSpec NullIoStackSpec();

/**
 * Charges stack CPU costs around asynchronous device operations.
 *
 * An operation is a callable that takes a completion callback; Issue()
 * charges the issue cost on a host CPU, invokes the operation, and charges
 * the completion cost before delivering the final callback.
 */
class IoStack
{
  public:
    /** @param cpu_count Host hardware threads (2x E5620 = 16 in Table 2). */
    IoStack(sim::Simulator &sim, const IoStackSpec &spec,
            uint32_t cpu_count = 16);

    IoStack(const IoStack &) = delete;
    IoStack &operator=(const IoStack &) = delete;

    /** Operation: called with the callback it must invoke when done. */
    using Operation = std::function<void(sim::Callback done)>;

    /**
     * Run @p op through the stack; @p done fires after completion cost.
     * @p span, when non-null, gets the host-side cuts: everything before
     * the CPU hands the request to @p op is host_issue, everything between
     * the device's completion and @p done is host_complete.
     */
    void Issue(Operation op, sim::Callback done, obs::IoSpan *span = nullptr);

    /** Total CPU time consumed by stack processing. */
    TimeNs cpu_time() const { return cpu_time_; }
    uint64_t requests() const { return requests_; }
    const IoStackSpec &spec() const { return spec_; }

  private:
    sim::FifoResource &PickCpu();

    sim::Simulator &sim_;
    IoStackSpec spec_;
    std::vector<std::unique_ptr<sim::FifoResource>> cpus_;
    TimeNs cpu_time_ = 0;
    uint64_t requests_ = 0;
};

/**
 * A closed-loop "thread": issues one operation, waits for completion, and
 * immediately issues the next — the synchronous client model used
 * throughout the paper's evaluation.
 */
class ClosedLoopActor
{
  public:
    /** Body: one iteration; must invoke the callback when complete. */
    using Body = std::function<void(sim::Callback done)>;

    ClosedLoopActor(sim::Simulator &sim, Body body)
        : sim_(sim), body_(std::move(body)) {}

    /** Begin iterating. */
    void
    Start()
    {
        running_ = true;
        sim_.Post([this]() { Iterate(); });
    }

    /** Stop after the in-flight iteration completes. */
    void Stop() { running_ = false; }

    bool running() const { return running_; }
    uint64_t completed() const { return completed_; }

  private:
    void
    Iterate()
    {
        if (!running_) return;
        body_([this]() {
            ++completed_;
            if (running_) Iterate();
        });
    }

    sim::Simulator &sim_;
    Body body_;
    bool running_ = false;
    uint64_t completed_ = 0;
};

}  // namespace sdf::host

#endif  // SDF_HOST_IO_STACK_H
