#include "kv/memtable.h"

#include <utility>

#include "util/assert.h"

namespace sdf::kv {

void
MemTable::Add(KvItem item)
{
    SDF_CHECK_MSG(!WouldOverflow(item.StorageCharge()),
                  "memtable overflow: flush before adding");
    auto it = by_key_.find(item.key);
    if (it != by_key_.end()) {
        KvItem &old = items_[it->second];
        SDF_CHECK(bytes_ >= old.StorageCharge());
        bytes_ -= old.StorageCharge();
        bytes_ += item.StorageCharge();
        old = std::move(item);
        return;
    }
    by_key_[item.key] = items_.size();
    bytes_ += item.StorageCharge();
    items_.push_back(std::move(item));
}

const KvItem *
MemTable::Lookup(uint64_t key) const
{
    auto it = by_key_.find(key);
    return it == by_key_.end() ? nullptr : &items_[it->second];
}

std::vector<KvItem>
MemTable::TakeAll()
{
    std::vector<KvItem> out = std::move(items_);
    items_.clear();
    by_key_.clear();
    bytes_ = 0;
    return out;
}

}  // namespace sdf::kv
