/**
 * @file
 * The in-memory write container of a CCDB slice (§2.4): KV items
 * accumulate here (mirrored to a log on a separate device) until the
 * container reaches the 8 MB patch size and is flushed to flash.
 */
#ifndef SDF_KV_MEMTABLE_H
#define SDF_KV_MEMTABLE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kv/types.h"

namespace sdf::kv {

/** Bounded in-memory container of KV items, newest version per key. */
class MemTable
{
  public:
    /** @param capacity_bytes Flush threshold (the patch size, 8 MB). */
    explicit MemTable(uint64_t capacity_bytes)
        : capacity_bytes_(capacity_bytes) {}

    /** True if adding a value of @p value_size would overflow. */
    bool
    WouldOverflow(uint32_t value_size) const
    {
        return bytes_ + value_size > capacity_bytes_;
    }

    /**
     * Insert or replace @p item. Callers must flush first when
     * WouldOverflow(); inserting past capacity is a programming error.
     */
    void Add(KvItem item);

    /** Newest in-memory version of @p key, or nullptr. */
    const KvItem *Lookup(uint64_t key) const;

    /** Visit the newest version of every key (unspecified order). */
    template <typename Fn>
    void
    ForEachNewest(Fn &&fn) const
    {
        for (const auto &[key, idx] : by_key_) fn(items_[idx]);
    }

    /** Move out all items (unsorted) and reset. */
    std::vector<KvItem> TakeAll();

    uint64_t bytes() const { return bytes_; }
    size_t count() const { return items_.size(); }
    bool empty() const { return items_.empty(); }
    uint64_t capacity_bytes() const { return capacity_bytes_; }

  private:
    uint64_t capacity_bytes_;
    uint64_t bytes_ = 0;
    std::vector<KvItem> items_;
    std::unordered_map<uint64_t, size_t> by_key_;  ///< key -> items_ index.
};

}  // namespace sdf::kv

#endif  // SDF_KV_MEMTABLE_H
