#include "kv/patch.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "util/assert.h"

namespace sdf::kv {

PatchMeta
PatchMeta::Build(uint64_t id, uint64_t seq, std::vector<KvItem> items,
                 uint64_t patch_bytes)
{
    std::sort(items.begin(), items.end(),
              [](const KvItem &a, const KvItem &b) { return a.key < b.key; });
    PatchMeta meta;
    meta.id_ = id;
    meta.entries_.reserve(items.size());
    uint64_t offset = 0;
    for (const KvItem &item : items) {
        meta.entries_.push_back(PatchEntry{item.key, offset, item.value_size,
                                           seq, item.tombstone});
        offset += item.value_size;
    }
    SDF_CHECK_MSG(offset <= patch_bytes, "items exceed patch capacity");
    meta.data_bytes_ = offset;
    return meta;
}

PatchMeta
PatchMeta::FromEntries(uint64_t id, std::vector<PatchEntry> entries,
                       uint64_t patch_bytes)
{
    PatchMeta meta;
    meta.id_ = id;
    uint64_t offset = 0;
    for (PatchEntry &e : entries) {
        e.offset = offset;
        offset += e.value_size;
    }
    SDF_CHECK_MSG(offset <= patch_bytes, "entries exceed patch capacity");
    meta.entries_ = std::move(entries);
    meta.data_bytes_ = offset;
    return meta;
}

const PatchEntry *
PatchMeta::Find(uint64_t key) const
{
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const PatchEntry &e, uint64_t k) { return e.key < k; });
    if (it == entries_.end() || it->key != key) return nullptr;
    return &*it;
}

std::vector<uint8_t>
PatchMeta::AssembleBuffer(const PatchMeta &meta,
                          const std::vector<KvItem> &items,
                          uint64_t patch_bytes)
{
    std::vector<uint8_t> buf(patch_bytes, 0);
    for (const KvItem &item : items) {
        const PatchEntry *e = meta.Find(item.key);
        SDF_CHECK(e != nullptr);
        if (item.payload) {
            SDF_CHECK(item.payload->size() == item.value_size);
            std::memcpy(buf.data() + e->offset, item.payload->data(),
                        item.value_size);
        }
    }
    return buf;
}

std::vector<std::vector<PatchEntry>>
MergeEntries(const std::vector<const PatchMeta *> &inputs,
             uint64_t patch_bytes, bool drop_tombstones)
{
    // Gather and sort by (key, seq desc); newest version per key survives.
    std::vector<PatchEntry> all;
    size_t total = 0;
    for (const PatchMeta *m : inputs) total += m->entries().size();
    all.reserve(total);
    for (const PatchMeta *m : inputs) {
        all.insert(all.end(), m->entries().begin(), m->entries().end());
    }
    std::sort(all.begin(), all.end(),
              [](const PatchEntry &a, const PatchEntry &b) {
                  if (a.key != b.key) return a.key < b.key;
                  return a.seq > b.seq;
              });

    std::vector<std::vector<PatchEntry>> outputs;
    std::vector<PatchEntry> current;
    uint64_t current_bytes = 0;
    uint64_t prev_key = 0;
    bool have_prev = false;
    for (const PatchEntry &e : all) {
        if (have_prev && e.key == prev_key) continue;  // Older version.
        prev_key = e.key;
        have_prev = true;
        if (e.tombstone && drop_tombstones) continue;
        if (current_bytes + e.value_size > patch_bytes && !current.empty()) {
            outputs.push_back(std::move(current));
            current.clear();
            current_bytes = 0;
        }
        current_bytes += e.value_size;
        current.push_back(e);
    }
    if (!current.empty()) outputs.push_back(std::move(current));
    return outputs;
}

}  // namespace sdf::kv
