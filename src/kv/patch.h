/**
 * @file
 * Patch metadata: the host-side description of one immutable 8 MB patch
 * (CCDB's SSTable analogue). Items are laid out key-sorted; all metadata
 * stays in DRAM so a Get costs exactly one device read (§2.4).
 */
#ifndef SDF_KV_PATCH_H
#define SDF_KV_PATCH_H

#include <cstdint>
#include <memory>
#include <vector>

#include "kv/types.h"

namespace sdf::kv {

/** One record inside a patch. */
struct PatchEntry
{
    uint64_t key = 0;
    uint64_t offset = 0;      ///< Byte offset of the value in the patch.
    uint32_t value_size = 0;
    uint64_t seq = 0;         ///< Version: higher = newer.
    bool tombstone = false;   ///< Deletion marker.
};

/** Immutable, key-sorted description of one patch. */
class PatchMeta
{
  public:
    /**
     * Lay out @p items key-sorted from offset 0 and stamp them with
     * version @p seq. Total item bytes must fit in @p patch_bytes.
     */
    static PatchMeta Build(uint64_t id, uint64_t seq,
                           std::vector<KvItem> items, uint64_t patch_bytes);

    /** Build from pre-sorted entries (compaction output). */
    static PatchMeta FromEntries(uint64_t id, std::vector<PatchEntry> entries,
                                 uint64_t patch_bytes);

    uint64_t id() const { return id_; }
    const std::vector<PatchEntry> &entries() const { return entries_; }
    uint64_t data_bytes() const { return data_bytes_; }
    bool empty() const { return entries_.empty(); }
    uint64_t min_key() const { return entries_.front().key; }
    uint64_t max_key() const { return entries_.back().key; }

    /** Binary search for @p key; nullptr if absent. */
    const PatchEntry *Find(uint64_t key) const;

    /**
     * Assemble the patch's byte image from items carrying payloads
     * (integrity tests). @p items must be the same set passed to Build().
     */
    static std::vector<uint8_t> AssembleBuffer(const PatchMeta &meta,
                                               const std::vector<KvItem> &items,
                                               uint64_t patch_bytes);

  private:
    PatchMeta() = default;

    uint64_t id_ = 0;
    std::vector<PatchEntry> entries_;
    uint64_t data_bytes_ = 0;
};

/**
 * Merge-sort patch runs, newest version (highest seq) wins per key, and
 * repartition into output patches of at most @p patch_bytes each — the
 * compaction kernel.
 *
 * @param drop_tombstones When compacting into the bottom level there is
 *     nothing older left to shadow, so deletion markers are discarded.
 */
std::vector<std::vector<PatchEntry>>
MergeEntries(const std::vector<const PatchMeta *> &inputs,
             uint64_t patch_bytes, bool drop_tombstones = false);

}  // namespace sdf::kv

#endif  // SDF_KV_PATCH_H
