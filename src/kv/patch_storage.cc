#include "kv/patch_storage.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace sdf::kv {

namespace {

/**
 * Run @p op through @p stack when present; otherwise call it directly.
 * Adapts the status-carrying PatchCallback to the IoStack's plain
 * callbacks, preserving the typed error across the stack transit.
 */
void
ThroughStack(host::IoStack *stack,
             std::function<void(PatchCallback)> op, PatchCallback done)
{
    if (!stack) {
        op(std::move(done));
        return;
    }
    auto st = std::make_shared<core::IoStatus>(core::IoError::kWriteFailed);
    stack->Issue(
        [op = std::move(op), st](sim::Callback d) {
            // PatchCallback is a copyable std::function; box the move-only
            // stack completion so the adapter closure stays copyable.
            auto dp = std::make_shared<sim::Callback>(std::move(d));
            op([st, dp](core::IoStatus status) {
                *st = status;
                (*dp)();
            });
        },
        [st, done = std::move(done)]() {
            if (done) done(*st);
        });
}

}  // namespace

void
BlockPatchStorage::PutPatch(uint64_t id, PatchCallback done,
                            const uint8_t *data, int priority)
{
    ThroughStack(stack_,
                 [this, id, data, priority](PatchCallback d) {
                     layer_.Put(id, std::move(d), data, priority);
                 },
                 std::move(done));
}

void
BlockPatchStorage::GetRange(uint64_t id, uint64_t offset, uint64_t length,
                            PatchCallback done, std::vector<uint8_t> *out,
                            int priority)
{
    ThroughStack(stack_,
                 [this, id, offset, length, out, priority](PatchCallback d) {
                     layer_.Get(id, offset, length, std::move(d), out,
                                priority);
                 },
                 std::move(done));
}

SsdPatchStorage::SsdPatchStorage(ssd::ConventionalSsd &device,
                                 uint64_t patch_bytes, host::IoStack *stack)
    : device_(device), patch_bytes_(patch_bytes), stack_(stack)
{
    SDF_CHECK(patch_bytes > 0);
    const uint64_t extents = device.user_capacity() / patch_bytes;
    SDF_CHECK_MSG(extents > 0, "SSD smaller than one patch");
    for (uint64_t e = 0; e < extents; ++e)
        free_extents_.push_back(e * patch_bytes);
}

uint32_t
SsdPatchStorage::alignment() const
{
    return device_.config().flash.geometry.page_size;
}

void
SsdPatchStorage::PutPatch(uint64_t id, PatchCallback done,
                          const uint8_t *data, int priority)
{
    (void)priority;  // A conventional SSD cannot distinguish traffic classes.
    SDF_CHECK_MSG(!extent_of_.count(id), "patch id reused");
    if (free_extents_.empty()) {
        if (done) done(core::IoError::kNoSpace);
        return;
    }
    const uint64_t offset = free_extents_.front();
    free_extents_.pop_front();
    extent_of_[id] = offset;
    ThroughStack(stack_,
                 [this, offset, data](PatchCallback d) {
                     device_.Write(offset, patch_bytes_, std::move(d), data);
                 },
                 std::move(done));
}

void
SsdPatchStorage::GetRange(uint64_t id, uint64_t offset, uint64_t length,
                          PatchCallback done, std::vector<uint8_t> *out,
                          int priority)
{
    (void)priority;
    auto it = extent_of_.find(id);
    if (it == extent_of_.end() || offset + length > patch_bytes_) {
        if (done) done(core::IoError::kNotFound);
        return;
    }
    const uint64_t base = it->second;
    ThroughStack(stack_,
                 [this, base, offset, length, out](PatchCallback d) {
                     device_.Read(base + offset, length, std::move(d), out);
                 },
                 std::move(done));
}

std::vector<uint64_t>
SsdPatchStorage::StoredIds() const
{
    std::vector<uint64_t> ids;
    ids.reserve(extent_of_.size());
    for (const auto &[id, offset] : extent_of_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

void
SsdPatchStorage::DeletePatch(uint64_t id)
{
    auto it = extent_of_.find(id);
    if (it == extent_of_.end()) return;
    free_extents_.push_back(it->second);
    extent_of_.erase(it);
}

bool
SsdPatchStorage::DebugInstallPatch(uint64_t id)
{
    // The extent space itself needs no device-side state: callers must
    // PreconditionFill() the SSD to cover the installed extents.
    if (extent_of_.count(id) || free_extents_.empty()) return false;
    const uint64_t offset = free_extents_.front();
    free_extents_.pop_front();
    extent_of_[id] = offset;
    return true;
}

}  // namespace sdf::kv
