/**
 * @file
 * Storage abstraction for 8 MB patches.
 *
 * CCDB writes immutable 8 MB patches (the analogue of BigTable SSTables).
 * On SDF the patches go through the user-space block layer; on a
 * conventional SSD they go to 8 MB extents of the device's logical space.
 * The same Slice code runs over both, which is exactly the comparison the
 * paper's production experiments make (Figures 10-14).
 */
#ifndef SDF_KV_PATCH_STORAGE_H
#define SDF_KV_PATCH_STORAGE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "blocklayer/block_layer.h"
#include "sim/callback.h"
#include "host/io_stack.h"
#include "ssd/conventional_ssd.h"

namespace sdf::kv {

/**
 * Completion callback for patch I/O. Carries the typed device error so
 * upper layers can distinguish lost data (kReadUncorrectable — fall back
 * to a replica) from a dead channel or plain congestion. Callables taking
 * bool still work: IoStatus converts to bool (true == ok).
 */
using PatchCallback = sim::Func<void(core::IoStatus)>;

/** Abstract home for immutable fixed-size patches. */
class PatchStorage
{
  public:
    virtual ~PatchStorage() = default;

    /** Size of every patch (the 8 MB write unit). */
    virtual uint64_t patch_bytes() const = 0;

    /**
     * Required alignment for GetRange offsets/lengths (the device read
     * unit: 8 KB on SDF, one page on a conventional SSD). Callers reading
     * an unaligned value must round outward and trim.
     */
    virtual uint32_t alignment() const = 0;

    /** Persist patch @p id. @p priority: block-layer priority class. */
    virtual void PutPatch(uint64_t id, PatchCallback done,
                          const uint8_t *data, int priority) = 0;

    /** Read @p length bytes at @p offset within patch @p id. */
    virtual void GetRange(uint64_t id, uint64_t offset, uint64_t length,
                          PatchCallback done, std::vector<uint8_t> *out,
                          int priority) = 0;

    /** Drop patch @p id and reclaim its space. */
    virtual void DeletePatch(uint64_t id) = 0;

    /**
     * IDs of every stored patch, ascending. A restarting node reconciles
     * this against its journal: stored patches no footer references were
     * in flight at the stop and get reclaimed as orphans.
     */
    virtual std::vector<uint64_t> StoredIds() const = 0;

    /** Remaining capacity in patches. */
    virtual uint64_t FreePatchSlots() const = 0;

    /**
     * Instantly install patch @p id as already stored (simulation backdoor
     * for preconditioning; timing-only — no payload).
     */
    virtual bool DebugInstallPatch(uint64_t id) = 0;
};

/**
 * Patches through the user-space block layer, over any core::BlockDevice
 * backend (the SDF device or the conventional-SSD adapter). Per-request
 * costs of the thin user-space I/O stack (2-4 us, §2.4) are charged when
 * an IoStack is supplied.
 */
class BlockPatchStorage : public PatchStorage
{
  public:
    explicit BlockPatchStorage(blocklayer::BlockLayer &layer,
                               host::IoStack *stack = nullptr)
        : layer_(layer), stack_(stack) {}

    uint64_t patch_bytes() const override { return layer_.block_bytes(); }

    uint32_t
    alignment() const override
    {
        return layer_.device().read_unit_bytes();
    }

    void PutPatch(uint64_t id, PatchCallback done, const uint8_t *data,
                  int priority) override;
    void GetRange(uint64_t id, uint64_t offset, uint64_t length,
                  PatchCallback done, std::vector<uint8_t> *out,
                  int priority) override;

    void DeletePatch(uint64_t id) override { layer_.Delete(id); }

    std::vector<uint64_t> StoredIds() const override
    {
        return layer_.StoredIds();
    }

    uint64_t FreePatchSlots() const override { return layer_.FreeUnits(); }

    bool DebugInstallPatch(uint64_t id) override
    {
        return layer_.DebugInstall(id);
    }

  private:
    blocklayer::BlockLayer &layer_;
    host::IoStack *stack_;
};

/** Historical name from when the block layer only ran on SDF. */
using SdfPatchStorage = BlockPatchStorage;

/**
 * Patches on a conventional SSD: a trivial extent allocator over the
 * device's flat logical space. Deleted extents are reused by overwriting
 * (no TRIM — matching how the production system drove commodity SSDs, and
 * the source of their GC pressure).
 */
class SsdPatchStorage : public PatchStorage
{
  public:
    /**
     * @param patch_bytes Extent size; must divide the SSD's capacity.
     * @param stack Optional kernel I/O stack charged per request
     *     (~12.9 us on the Linux path of Figure 6a).
     */
    SsdPatchStorage(ssd::ConventionalSsd &device, uint64_t patch_bytes,
                    host::IoStack *stack = nullptr);

    uint64_t patch_bytes() const override { return patch_bytes_; }
    uint32_t alignment() const override;
    void PutPatch(uint64_t id, PatchCallback done, const uint8_t *data,
                  int priority) override;
    void GetRange(uint64_t id, uint64_t offset, uint64_t length,
                  PatchCallback done, std::vector<uint8_t> *out,
                  int priority) override;
    void DeletePatch(uint64_t id) override;
    std::vector<uint64_t> StoredIds() const override;
    uint64_t FreePatchSlots() const override { return free_extents_.size(); }
    bool DebugInstallPatch(uint64_t id) override;

  private:
    ssd::ConventionalSsd &device_;
    uint64_t patch_bytes_;
    host::IoStack *stack_;
    std::deque<uint64_t> free_extents_;  ///< Byte offsets of free extents.
    std::unordered_map<uint64_t, uint64_t> extent_of_;  ///< id -> offset.
};

}  // namespace sdf::kv

#endif  // SDF_KV_PATCH_STORAGE_H
