/**
 * @file
 * The durable state a storage node can rebuild itself from.
 *
 * A CCDB node's persistent footprint is (a) the write-ahead log on a
 * separate log device and (b) the immutable patches on flash, each of
 * which carries a self-describing footer (entry table + sequence
 * numbers). The simulator models both as a `StoreJournal`: a mirror of
 * what the log device and the patch footers would contain at any instant.
 * Restart hands the journal back to a fresh `Store`, which reinstalls the
 * patch metadata, replays the WAL into the memtables, and reconciles the
 * device against the journal (blocks not referenced by any footer were
 * in flight at the crash and are reclaimed as orphans).
 *
 * The journal is bookkeeping, not timing: the device reads a real
 * recovery would issue (one scan over every patch footer) are charged
 * separately by the node's recovery scan before it rejoins the ring.
 */
#ifndef SDF_KV_RECOVERY_H
#define SDF_KV_RECOVERY_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "kv/patch.h"

namespace sdf::kv {

/**
 * One WAL record: an acknowledged put/delete whose item has not yet
 * become durable inside a flushed patch.
 */
struct WalRecord
{
    uint64_t key = 0;
    uint32_t value_size = 0;
    bool tombstone = false;
    /** Real payload, kept only in payload mode. */
    std::shared_ptr<std::vector<uint8_t>> payload;
};

/** What a patch's on-flash footer describes: its entry table and level. */
struct PatchFooter
{
    uint32_t level = 0;
    std::shared_ptr<PatchMeta> meta;
    /** Patch byte image, kept only in payload mode. */
    std::shared_ptr<std::vector<uint8_t>> image;
};

/** Durable mirror of one slice: its WAL plus its patch footers. */
struct SliceJournal
{
    /** Acked items not yet covered by a flushed patch, oldest first. */
    std::deque<WalRecord> wal;
    /** Patch id -> footer, for every live patch of this slice. */
    std::map<uint64_t, PatchFooter> patches;
};

/** Durable state of a whole store; survives node stop/restart. */
struct StoreJournal
{
    std::vector<SliceJournal> slices;
    /**
     * High-water mark of the external ID counter service (§2.4). Restart
     * resumes allocation above every ID ever issued, so blocks written by
     * I/O that was still in flight at the stop can never collide with the
     * recovered allocator.
     */
    uint64_t next_patch_id = 0;

    uint64_t
    TotalWalRecords() const
    {
        uint64_t n = 0;
        for (const SliceJournal &s : slices) n += s.wal.size();
        return n;
    }

    uint64_t
    TotalPatches() const
    {
        uint64_t n = 0;
        for (const SliceJournal &s : slices) n += s.patches.size();
        return n;
    }
};

}  // namespace sdf::kv

#endif  // SDF_KV_RECOVERY_H
