#include "kv/replicated_store.h"

#include <memory>
#include <utility>

#include "util/assert.h"

namespace sdf::kv {

ReplicatedKv::ReplicatedKv(sim::Simulator &sim, std::vector<Store *> replicas)
    : sim_(sim), replicas_(std::move(replicas))
{
    SDF_CHECK_MSG(!replicas_.empty(), "need at least one replica");
    for (Store *s : replicas_) SDF_CHECK(s != nullptr);
}

void
ReplicatedKv::Put(uint64_t key, uint32_t value_size, PutCallback done,
                  std::shared_ptr<std::vector<uint8_t>> payload)
{
    ++stats_.puts;
    const auto r = static_cast<uint32_t>(replicas_.size());
    auto remaining = std::make_shared<uint32_t>(r);
    auto successes = std::make_shared<uint32_t>(0);
    for (uint32_t i = 0; i < r; ++i) {
        replicas_[i]->Put(
            key, value_size,
            [this, remaining, successes,
             done = i + 1 == r ? std::move(done) : done](bool ok) mutable {
                if (ok) {
                    ++*successes;
                } else {
                    ++stats_.put_replica_failures;
                }
                if (--*remaining > 0) return;
                if (*successes == 0) ++stats_.put_failures;
                if (done) done(*successes > 0);
            },
            payload);
    }
}

void
ReplicatedKv::Get(uint64_t key, GetCallback done)
{
    ++stats_.gets;
    DoGet(key, std::move(done), 0, 0);
}

void
ReplicatedKv::DoGet(uint64_t key, GetCallback done, uint32_t attempt,
                    util::TimeNs first_fail)
{
    const auto r = static_cast<uint32_t>(replicas_.size());
    if (attempt == r) {
        ++stats_.failed_reads;
        GetResult res;
        res.found = false;
        res.ok = false;
        if (done) done(res);
        return;
    }
    const uint32_t replica = (PrimaryOf(key) + attempt) % r;
    replicas_[replica]->Get(
        key, [this, key, done = std::move(done), attempt,
              first_fail](const GetResult &res) mutable {
            if (!res.ok) {
                // Storage-level failure on this replica: fail over.
                const util::TimeNs t0 =
                    attempt == 0 ? sim_.Now() : first_fail;
                DoGet(key, std::move(done), attempt + 1, t0);
                return;
            }
            if (attempt > 0) {
                ++stats_.degraded_reads;
                recovery_latencies_.Record(sim_.Now() - first_fail);
                // Read-repair: restore redundancy on the replicas that
                // failed ahead of this one.
                if (res.found) Repair(key, res, attempt);
            }
            if (done) done(res);
        });
}

void
ReplicatedKv::Repair(uint64_t key, const GetResult &good,
                     uint32_t failed_count)
{
    const auto r = static_cast<uint32_t>(replicas_.size());
    for (uint32_t i = 0; i < failed_count; ++i) {
        const uint32_t replica = (PrimaryOf(key) + i) % r;
        ++stats_.re_replications;
        replicas_[replica]->Put(
            key, good.value_size,
            [this](bool ok) {
                if (!ok) ++stats_.re_replication_failures;
            },
            good.payload);
    }
}

}  // namespace sdf::kv
