#include "kv/replicated_store.h"

#include <memory>
#include <utility>

#include "util/assert.h"

namespace sdf::kv {

ReplicationEngine::ReplicationEngine(sim::Simulator &sim,
                                     std::vector<ReplicaEndpoint> endpoints,
                                     Selector selector)
    : sim_(sim), endpoints_(std::move(endpoints)), selector_(std::move(selector))
{
    SDF_CHECK_MSG(!endpoints_.empty(), "need at least one replica endpoint");
    SDF_CHECK(selector_ != nullptr);
    for (const ReplicaEndpoint &e : endpoints_) {
        SDF_CHECK(e.put != nullptr && e.get != nullptr);
    }
}

void
ReplicationEngine::Put(uint64_t key, uint32_t value_size, PutCallback done,
                       std::shared_ptr<std::vector<uint8_t>> payload,
                       OpContext ctx)
{
    PutTyped(
        key, value_size,
        [done = std::move(done)](OpStatus s) {
            if (done) done(s == OpStatus::kOk);
        },
        std::move(payload), ctx);
}

void
ReplicationEngine::PutTyped(uint64_t key, uint32_t value_size,
                            PutStatusCallback done,
                            std::shared_ptr<std::vector<uint8_t>> payload,
                            OpContext ctx)
{
    ++stats_.puts;
    const std::vector<uint32_t> order = selector_(key);
    if (order.empty()) {
        // Every node that could hold the key is out of the membership.
        ++stats_.no_replica_rejects;
        ++stats_.put_failures;
        sim_.Post([done = std::move(done)]() {
            if (done) done(OpStatus::kError);
        });
        return;
    }
    const auto r = static_cast<uint32_t>(order.size());
    auto remaining = std::make_shared<uint32_t>(r);
    auto successes = std::make_shared<uint32_t>(0);
    auto worst = std::make_shared<OpStatus>(OpStatus::kOk);
    // All replicas' acks join on the move-only `done`; park it in one
    // shared box every branch can reach.
    auto done_box = std::make_shared<PutStatusCallback>(std::move(done));
    for (uint32_t i = 0; i < r; ++i) {
        const uint32_t replica = order[i];
        SDF_CHECK(replica < endpoints_.size());
        endpoints_[replica].put(
            key, value_size,
            [this, remaining, successes, worst, done_box](OpStatus s) {
                if (s == OpStatus::kOk) {
                    ++*successes;
                } else {
                    ++stats_.put_replica_failures;
                    *worst = WorseStatus(*worst, s);
                }
                if (--*remaining > 0) return;
                if (*successes > 0) {
                    if (*done_box) (*done_box)(OpStatus::kOk);
                    return;
                }
                ++stats_.put_failures;
                if (*done_box) {
                    (*done_box)(*worst == OpStatus::kOk ? OpStatus::kError
                                                        : *worst);
                }
            },
            payload, ctx);
        // Only the first replica's RPC writes the request's critical-path
        // span; a second concurrent writer would corrupt the timeline.
        // Later replicas keep the trace identity but no span.
        ctx.path = nullptr;
    }
}

void
ReplicationEngine::Get(uint64_t key, GetCallback done, OpContext ctx)
{
    ++stats_.gets;
    auto order =
        std::make_shared<const std::vector<uint32_t>>(selector_(key));
    if (order->empty()) {
        ++stats_.no_replica_rejects;
        ++stats_.failed_reads;
        sim_.Post([done = std::move(done)]() {
            if (done) {
                GetResult res;
                res.ok = false;
                res.status = OpStatus::kError;
                done(res);
            }
        });
        return;
    }
    DoGet(key, std::move(done), std::move(order), 0, 0, OpStatus::kOk,
          CurrentEpoch(), ctx);
}

namespace {

/** Typed failure a replica's GetResult contributes (kOk = clean miss). */
OpStatus
FailureStatus(const GetResult &res)
{
    if (res.ok) return OpStatus::kOk;
    // Endpoints predating typed statuses leave status at kOk on failure.
    return res.status == OpStatus::kOk ? OpStatus::kError : res.status;
}

}  // namespace

void
ReplicationEngine::DoGet(uint64_t key, GetCallback done,
                         std::shared_ptr<const std::vector<uint32_t>> order,
                         uint32_t attempt, util::TimeNs first_fail,
                         OpStatus worst, uint64_t epoch, OpContext ctx)
{
    if (attempt == order->size()) {
        // Exhausted. All clean misses -> an authoritative miss; any
        // storage failure along the way -> a failed read.
        GetResult res;
        res.found = false;
        res.ok = worst == OpStatus::kOk;
        res.status = worst;
        if (!res.ok) ++stats_.failed_reads;
        if (done) done(res);
        return;
    }
    const uint32_t replica = (*order)[attempt];
    SDF_CHECK(replica < endpoints_.size());
    endpoints_[replica].get(
        key,
        [this, key, done = std::move(done), order, attempt, first_fail,
         worst, epoch, ctx](const GetResult &res) mutable {
            if (!res.ok || !res.found) {
                const util::TimeNs t0 =
                    attempt == 0 ? sim_.Now() : first_fail;
                const OpStatus next_worst =
                    WorseStatus(worst, FailureStatus(res));
                // Membership moved while we were waiting (a node died or
                // rejoined): the replica list is stale — restart against
                // fresh placement. Bounded by the number of epoch bumps.
                if (const uint64_t now_epoch = CurrentEpoch();
                    now_epoch != epoch) {
                    ++stats_.epoch_restarts;
                    auto fresh = std::make_shared<
                        const std::vector<uint32_t>>(selector_(key));
                    if (fresh->empty()) {
                        ++stats_.no_replica_rejects;
                        ++stats_.failed_reads;
                        if (done) {
                            GetResult fail;
                            fail.ok = false;
                            fail.status = WorseStatus(next_worst,
                                                      OpStatus::kError);
                            done(fail);
                        }
                        return;
                    }
                    DoGet(key, std::move(done), std::move(fresh), 0, t0,
                          next_worst, now_epoch, ctx);
                    return;
                }
                // Storage failure — or a miss on this replica, which may
                // just have lost the put that a later replica acked
                // (degraded-mode write). Either way, ask the next one.
                DoGet(key, std::move(done), std::move(order), attempt + 1,
                      t0, next_worst, epoch, ctx);
                return;
            }
            if (attempt > 0) {
                ++stats_.degraded_reads;
                recovery_latencies_.Record(sim_.Now() - first_fail);
                // Read-repair: restore redundancy on the replicas that
                // failed or missed ahead of this one.
                Repair(key, res, *order, attempt);
            }
            if (done) done(res);
        },
        ctx);
}

void
ReplicationEngine::Repair(uint64_t key, const GetResult &good,
                          const std::vector<uint32_t> &order,
                          uint32_t failed_count)
{
    for (uint32_t i = 0; i < failed_count; ++i) {
        ++stats_.re_replications;
        endpoints_[order[i]].put(
            key, good.value_size,
            [this](OpStatus s) {
                if (s != OpStatus::kOk) ++stats_.re_replication_failures;
            },
            good.payload, OpContext{});
    }
}

namespace {

/** Every store holds every key; primary rotates by key hash. */
std::vector<ReplicaEndpoint>
StoreEndpoints(const std::vector<Store *> &replicas)
{
    SDF_CHECK_MSG(!replicas.empty(), "need at least one replica");
    std::vector<ReplicaEndpoint> endpoints;
    endpoints.reserve(replicas.size());
    for (Store *s : replicas) {
        SDF_CHECK(s != nullptr);
        ReplicaEndpoint e;
        e.put = [s](uint64_t key, uint32_t value_size,
                    PutStatusCallback done,
                    std::shared_ptr<std::vector<uint8_t>> payload,
                    OpContext /*ctx*/) {
            // Local stores know nothing of deadlines; map bool -> typed.
            s->Put(
                key, value_size,
                [done = std::move(done)](bool ok) {
                    if (done) done(ok ? OpStatus::kOk : OpStatus::kError);
                },
                std::move(payload));
        };
        e.get = [s](uint64_t key, GetCallback done, OpContext /*ctx*/) {
            s->Get(key, std::move(done));
        };
        endpoints.push_back(std::move(e));
    }
    return endpoints;
}

}  // namespace

ReplicatedKv::ReplicatedKv(sim::Simulator &sim, std::vector<Store *> replicas)
    : replica_count_(static_cast<uint32_t>(replicas.size())),
      engine_(sim, StoreEndpoints(replicas),
              [n = replicas.size()](uint64_t key) {
                  std::vector<uint32_t> order(n);
                  for (size_t i = 0; i < n; ++i) {
                      order[i] = static_cast<uint32_t>((key + i) % n);
                  }
                  return order;
              })
{
}

}  // namespace sdf::kv
