/**
 * @file
 * R-way replicated KV frontend for degraded-mode operation.
 *
 * The paper's web-scale setting (§2.4, §5) keeps replicas of every object
 * on independent devices precisely because SDF drops the drive-internal
 * safety nets (no parity across channels, no super-capacitors): durability
 * is the distributed system's job. This frontend models that contract over
 * R independent Store stacks (each typically backed by its own SdfDevice):
 *
 *  - Put fans out to every replica; the ack carries overall success
 *    (at least one durable copy) and per-replica failures are counted.
 *  - Get reads the primary replica (key-hash order) and transparently
 *    fails over to the next replica when storage reports a typed error
 *    (uncorrectable data, dead channel, lost block).
 *  - A degraded read triggers read-repair: the value recovered from a
 *    surviving replica is re-replicated onto the replicas that failed,
 *    restoring R-way redundancy in the background.
 */
#ifndef SDF_KV_REPLICATED_STORE_H
#define SDF_KV_REPLICATED_STORE_H

#include <cstdint>
#include <vector>

#include "kv/store.h"
#include "sim/simulator.h"
#include "util/latency_recorder.h"

namespace sdf::kv {

/** Cumulative replication-layer statistics. */
struct ReplicatedKvStats
{
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t put_replica_failures = 0;  ///< Individual replica puts failed.
    uint64_t put_failures = 0;          ///< Puts with zero durable copies.
    uint64_t degraded_reads = 0;        ///< Served by a non-primary replica.
    uint64_t failed_reads = 0;          ///< Every replica errored.
    uint64_t re_replications = 0;       ///< Read-repair puts issued.
    uint64_t re_replication_failures = 0;
};

/** R-way replication over independent Store instances. */
class ReplicatedKv
{
  public:
    /** @param replicas One Store per failure domain; all must outlive us. */
    ReplicatedKv(sim::Simulator &sim, std::vector<Store *> replicas);

    ReplicatedKv(const ReplicatedKv &) = delete;
    ReplicatedKv &operator=(const ReplicatedKv &) = delete;

    uint32_t replica_count() const
    {
        return static_cast<uint32_t>(replicas_.size());
    }

    /** Primary replica index for @p key. */
    uint32_t PrimaryOf(uint64_t key) const
    {
        return static_cast<uint32_t>(key % replicas_.size());
    }

    /**
     * Store @p key on every replica. @p done receives true when at least
     * one replica persisted the value (the others are repaired by later
     * degraded reads).
     */
    void Put(uint64_t key, uint32_t value_size, PutCallback done,
             std::shared_ptr<std::vector<uint8_t>> payload = nullptr);

    /**
     * Read @p key with transparent failover: replicas are tried in
     * primary order until one completes without a storage error. The
     * result's ok flag is false only when every replica failed.
     */
    void Get(uint64_t key, GetCallback done);

    const ReplicatedKvStats &stats() const { return stats_; }

    /**
     * Latency from the primary replica's failure to the moment a
     * surviving replica served the value (per degraded read).
     */
    const util::LatencyRecorder &recovery_latencies() const
    {
        return recovery_latencies_;
    }

  private:
    void DoGet(uint64_t key, GetCallback done, uint32_t attempt,
               util::TimeNs first_fail);
    void Repair(uint64_t key, const GetResult &good, uint32_t failed_count);

    sim::Simulator &sim_;
    std::vector<Store *> replicas_;
    ReplicatedKvStats stats_;
    util::LatencyRecorder recovery_latencies_;
};

}  // namespace sdf::kv

#endif  // SDF_KV_REPLICATED_STORE_H
