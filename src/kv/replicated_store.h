/**
 * @file
 * R-way replication for degraded-mode operation.
 *
 * The paper's web-scale setting (§2.4, §5) keeps replicas of every object
 * on independent devices precisely because SDF drops the drive-internal
 * safety nets (no parity across channels, no super-capacitors): durability
 * is the distributed system's job.
 *
 * The mechanism lives in ReplicationEngine and is deliberately abstract
 * over *where* replicas are: an endpoint is just a put/get function pair,
 * and a selector maps a key to the ordered endpoints holding it. The same
 * engine therefore serves two deployments:
 *
 *  - ReplicatedKv: every key on every one of R local Store stacks (the
 *    single-box fault-tolerance model used by the fault campaign);
 *  - cluster::ClusterRouter: keys consistent-hash-sharded over N storage
 *    nodes with R-way replication, endpoints reached over the network.
 *
 * Semantics, in both cases:
 *
 *  - Put fans out to every selected replica; the ack carries overall
 *    success (at least one durable copy) and per-replica failures are
 *    counted.
 *  - Get reads the primary replica (selector order) and transparently
 *    fails over to the next replica when storage reports a typed error
 *    (uncorrectable data, dead channel, lost block).
 *  - A degraded read triggers read-repair: the value recovered from a
 *    surviving replica is re-replicated onto the replicas that failed,
 *    restoring R-way redundancy in the background.
 */
#ifndef SDF_KV_REPLICATED_STORE_H
#define SDF_KV_REPLICATED_STORE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "kv/store.h"
#include "sim/simulator.h"
#include "util/latency_recorder.h"

namespace sdf::kv {

/** Cumulative replication-layer statistics. */
struct ReplicatedKvStats
{
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t put_replica_failures = 0;  ///< Individual replica puts failed.
    uint64_t put_failures = 0;          ///< Puts with zero durable copies.
    uint64_t degraded_reads = 0;        ///< Served by a non-primary replica.
    uint64_t failed_reads = 0;          ///< Every replica errored.
    uint64_t re_replications = 0;       ///< Read-repair puts issued.
    uint64_t re_replication_failures = 0;
    /** Gets restarted with fresh placement after a membership change. */
    uint64_t epoch_restarts = 0;
    /** Ops rejected because the selector had no replicas (all nodes down). */
    uint64_t no_replica_rejects = 0;
};

/**
 * How the engine reaches one replica: a direct Store call, an RPC into a
 * cluster node, or anything else with put/get semantics. `put` must ack
 * true only once the value is durable on that replica; `get` must report
 * res.ok == false on storage-level failure so the engine can fail over.
 */
struct ReplicaEndpoint
{
    std::function<void(uint64_t key, uint32_t value_size,
                       PutStatusCallback done,
                       std::shared_ptr<std::vector<uint8_t>> payload,
                       OpContext ctx)>
        put;
    std::function<void(uint64_t key, GetCallback done, OpContext ctx)> get;
};

/** Replica placement/failover mechanics over abstract endpoints. */
class ReplicationEngine
{
  public:
    /**
     * Ordered endpoint indices holding @p key: first is the primary, the
     * rest are failover targets; Put fans out to all of them. Must be
     * deterministic, non-empty, and in range.
     */
    using Selector = std::function<std::vector<uint32_t>(uint64_t key)>;

    ReplicationEngine(sim::Simulator &sim,
                      std::vector<ReplicaEndpoint> endpoints,
                      Selector selector);

    /**
     * Install a membership-epoch source (cluster use). A Get snapshots
     * the epoch up front; when a replica attempt fails and the epoch has
     * moved meanwhile — the ring changed under the op — the get restarts
     * against fresh placement instead of walking a stale replica list.
     * Without a provider, placement is assumed static.
     */
    void
    set_epoch_provider(std::function<uint64_t()> provider)
    {
        epoch_provider_ = std::move(provider);
    }

    ReplicationEngine(const ReplicationEngine &) = delete;
    ReplicationEngine &operator=(const ReplicationEngine &) = delete;

    uint32_t endpoint_count() const
    {
        return static_cast<uint32_t>(endpoints_.size());
    }

    /**
     * Store @p key on every selected replica. @p done receives true when
     * at least one replica persisted the value (the others are repaired
     * by later degraded reads).
     */
    void Put(uint64_t key, uint32_t value_size, PutCallback done,
             std::shared_ptr<std::vector<uint8_t>> payload = nullptr,
             OpContext ctx = {});

    /**
     * Typed Put: like Put, but @p done receives the aggregated
     * disposition — kOk on at least one durable copy, otherwise the most
     * backpressure-actionable failure any replica reported (overload
     * beats deadline beats storage error; see WorseStatus).
     */
    void PutTyped(uint64_t key, uint32_t value_size, PutStatusCallback done,
                  std::shared_ptr<std::vector<uint8_t>> payload = nullptr,
                  OpContext ctx = {});

    /**
     * Read @p key with transparent failover: selected replicas are tried
     * in order until one serves the value. A miss on one replica also
     * fails over (a degraded-mode put may have landed on only some
     * replicas); the read is a miss only when every replica agrees. The
     * result's ok flag is false only when a replica failed at storage
     * level and none served the value; res.status then carries the worst
     * typed failure seen across the walk.
     */
    void Get(uint64_t key, GetCallback done, OpContext ctx = {});

    const ReplicatedKvStats &stats() const { return stats_; }

    /**
     * Latency from the primary replica's failure to the moment a
     * surviving replica served the value (per degraded read).
     */
    const util::LatencyRecorder &recovery_latencies() const
    {
        return recovery_latencies_;
    }

  private:
    void DoGet(uint64_t key, GetCallback done,
               std::shared_ptr<const std::vector<uint32_t>> order,
               uint32_t attempt, util::TimeNs first_fail, OpStatus worst,
               uint64_t epoch, OpContext ctx);
    void Repair(uint64_t key, const GetResult &good,
                const std::vector<uint32_t> &order, uint32_t failed_count);
    uint64_t CurrentEpoch() const
    {
        return epoch_provider_ ? epoch_provider_() : 0;
    }

    sim::Simulator &sim_;
    std::vector<ReplicaEndpoint> endpoints_;
    Selector selector_;
    std::function<uint64_t()> epoch_provider_;
    ReplicatedKvStats stats_;
    util::LatencyRecorder recovery_latencies_;
};

/**
 * R-way replication over independent local Store instances: every key on
 * every store, primary chosen by key hash. Thin policy wrapper over
 * ReplicationEngine.
 */
class ReplicatedKv
{
  public:
    /** @param replicas One Store per failure domain; all must outlive us. */
    ReplicatedKv(sim::Simulator &sim, std::vector<Store *> replicas);

    ReplicatedKv(const ReplicatedKv &) = delete;
    ReplicatedKv &operator=(const ReplicatedKv &) = delete;

    uint32_t replica_count() const { return replica_count_; }

    /** Primary replica index for @p key. */
    uint32_t PrimaryOf(uint64_t key) const
    {
        return static_cast<uint32_t>(key % replica_count_);
    }

    /** See ReplicationEngine::Put. */
    void
    Put(uint64_t key, uint32_t value_size, PutCallback done,
        std::shared_ptr<std::vector<uint8_t>> payload = nullptr)
    {
        engine_.Put(key, value_size, std::move(done), std::move(payload));
    }

    /** See ReplicationEngine::Get. */
    void Get(uint64_t key, GetCallback done)
    {
        engine_.Get(key, std::move(done));
    }

    const ReplicatedKvStats &stats() const { return engine_.stats(); }

    const util::LatencyRecorder &recovery_latencies() const
    {
        return engine_.recovery_latencies();
    }

  private:
    uint32_t replica_count_;
    ReplicationEngine engine_;
};

}  // namespace sdf::kv

#endif  // SDF_KV_REPLICATED_STORE_H
