#include "kv/slice.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/hub.h"
#include "util/assert.h"

namespace sdf::kv {

Slice::Slice(sim::Simulator &sim, PatchStorage &storage, IdAllocator &ids,
             const SliceConfig &config, SliceJournal *journal)
    : sim_(sim),
      storage_(storage),
      ids_(ids),
      config_(config),
      journal_(journal),
      mem_(storage.patch_bytes())
{
    SDF_CHECK(config_.compaction_trigger >= 2);
    SDF_CHECK(config_.max_levels >= 1);
    levels_.resize(1);

    if (obs::Hub *hub = sim.hub()) {
        hub_ = hub;
        obs::MetricsRegistry &m = hub->metrics();
        // One slice per channel: kv.slice, kv.slice.2, ... in channel order.
        metric_prefix_ = m.UniquePrefix("kv.slice");
        m.RegisterCounter(metric_prefix_ + ".puts", &stats_.puts);
        m.RegisterCounter(metric_prefix_ + ".gets", &stats_.gets);
        m.RegisterCounter(metric_prefix_ + ".gets_from_memtable",
                          &stats_.gets_from_memtable);
        m.RegisterCounter(metric_prefix_ + ".gets_not_found",
                          &stats_.gets_not_found);
        m.RegisterCounter(metric_prefix_ + ".deletes", &stats_.deletes);
        m.RegisterCounter(metric_prefix_ + ".flushes", &stats_.flushes);
        m.RegisterCounter(metric_prefix_ + ".compactions",
                          &stats_.compactions);
        m.RegisterCounter(metric_prefix_ + ".compaction_bytes_read",
                          &stats_.compaction_bytes_read);
        m.RegisterCounter(metric_prefix_ + ".compaction_bytes_written",
                          &stats_.compaction_bytes_written);
        m.RegisterCounter(metric_prefix_ + ".put_stalls",
                          &stats_.put_stalls);
        m.RegisterCounter(metric_prefix_ + ".get_retries",
                          &stats_.get_retries);
    }

    if (journal_ &&
        (!journal_->patches.empty() || !journal_->wal.empty())) {
        RecoverFromJournal();
    }
}

void
Slice::RecoverFromJournal()
{
    // Patch footers first: reinstall every level's runs and rebuild the
    // DRAM index. Ascending patch id reproduces install order; the
    // per-entry sequence numbers make UpdateIndex order-insensitive
    // anyway (newest seq wins).
    uint64_t max_seq = 0;
    for (const auto &[id, footer] : journal_->patches) {
        SDF_CHECK_MSG(footer.meta != nullptr, "footer without metadata");
        if (levels_.size() <= footer.level) levels_.resize(footer.level + 1);
        levels_[footer.level].push_back(footer.meta);
        if (footer.image) patch_images_[id] = footer.image;
        for (const PatchEntry &e : footer.meta->entries())
            max_seq = std::max(max_seq, e.seq);
    }
    for (const auto &[id, footer] : journal_->patches)
        UpdateIndex(*footer.meta);
    next_seq_ = max_seq + 1;

    // WAL replay: re-perform every logged put, without acks (they were
    // acked before the stop). Take the old log out first — replay goes
    // through the normal put path, which re-appends each record and may
    // trigger flushes exactly as the original puts did.
    std::deque<WalRecord> wal = std::move(journal_->wal);
    journal_->wal.clear();
    for (WalRecord &w : wal) {
        PutItem(KvItem{w.key, w.value_size, std::move(w.payload),
                       w.tombstone},
                nullptr);
    }
}

void
Slice::Detach()
{
    detached_ = true;
    journal_ = nullptr;
}

void
Slice::CollectLive(std::map<uint64_t, uint32_t> &out) const
{
    // Oldest layer first so newer versions overwrite: index (newest seq
    // already won there), then the flushing memtable, then the live one.
    for (const auto &[key, e] : index_) {
        if (e.tombstone) continue;
        out[key] = e.value_size;
    }
    for (const auto &[key, i] : imm_index_) {
        const KvItem &item = imm_items_[i];
        if (item.tombstone) {
            out.erase(key);
        } else {
            out[key] = item.value_size;
        }
    }
    mem_.ForEachNewest([&out](const KvItem &item) {
        if (item.tombstone) {
            out.erase(item.key);
        } else {
            out[item.key] = item.value_size;
        }
    });
}

void
Slice::CollectRange(uint64_t start_key, size_t limit,
                    std::map<uint64_t, uint32_t> &out,
                    const std::function<bool(uint64_t)> *filter) const
{
    // Same oldest-layer-first merge as CollectLive, bounded below by
    // start_key. Tombstone erases run unfiltered (erasing an absent key is
    // a no-op); inserts honor the ownership filter. The trim runs only
    // after all three layers merged — a memtable tombstone may erase an
    // indexed key inside the window, pulling a larger key back in.
    auto add = [&](uint64_t key, uint32_t value_size) {
        if (key < start_key) return;
        if (filter && *filter && !(*filter)(key)) return;
        out[key] = value_size;
    };
    for (const auto &[key, e] : index_) {
        if (e.tombstone) continue;
        add(key, e.value_size);
    }
    for (const auto &[key, i] : imm_index_) {
        const KvItem &item = imm_items_[i];
        if (item.tombstone) {
            out.erase(key);
        } else {
            add(key, item.value_size);
        }
    }
    mem_.ForEachNewest([&](const KvItem &item) {
        if (item.tombstone) {
            out.erase(item.key);
        } else {
            add(item.key, item.value_size);
        }
    });
    while (out.size() > limit) out.erase(std::prev(out.end()));
}

void
Slice::ReadValue(uint64_t key, GetCallback done)
{
    auto respond_mem = [this, &done](const KvItem &item) {
        GetResult r;
        r.found = !item.tombstone;
        r.value_size = item.value_size;
        r.payload = item.payload;
        sim_.Post([done = std::move(done), r]() { done(r); });
    };
    if (const KvItem *m = mem_.Lookup(key)) {
        respond_mem(*m);
        return;
    }
    if (auto it = imm_index_.find(key); it != imm_index_.end()) {
        respond_mem(imm_items_[it->second]);
        return;
    }
    auto idx = index_.find(key);
    if (idx == index_.end() || idx->second.tombstone) {
        sim_.Post([done = std::move(done)]() {
            done(GetResult{false, true, 0, nullptr});
        });
        return;
    }
    DoStorageGet(key, std::move(done), 3);
}

Slice::~Slice()
{
    if (hub_ != nullptr) hub_->metrics().UnregisterPrefix(metric_prefix_);
}

size_t
Slice::patch_count() const
{
    size_t n = 0;
    for (const auto &level : levels_) n += level.size();
    return n;
}

std::vector<uint64_t>
Slice::AllPatchIds() const
{
    std::vector<uint64_t> ids;
    for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
        for (const auto &meta : *it) ids.push_back(meta->id());
    }
    return ids;
}

void
Slice::ReadPatchFully(uint64_t id, PatchCallback done,
                      std::vector<uint8_t> *out)
{
    storage_.GetRange(id, 0, storage_.patch_bytes(), std::move(done), out,
                      blocklayer::kClientPriority);
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

void
Slice::Put(uint64_t key, uint32_t value_size, PutCallback done,
           std::shared_ptr<std::vector<uint8_t>> payload)
{
    ++stats_.puts;
    PutItem(KvItem{key, value_size, std::move(payload), false},
            std::move(done));
}

void
Slice::Delete(uint64_t key, PutCallback done)
{
    ++stats_.deletes;
    PutItem(KvItem{key, 0, nullptr, true}, std::move(done));
}

void
Slice::PutItem(KvItem item, PutCallback done)
{
    if (item.StorageCharge() > mem_.capacity_bytes()) {
        sim_.Post([done = std::move(done)]() {
            if (done) done(false);
        });
        return;
    }
    if (mem_.WouldOverflow(item.StorageCharge())) {
        if (flush_active_) {
            // Backpressure: the previous patch is still being written.
            ++stats_.put_stalls;
            stalled_puts_.emplace_back(std::move(item), std::move(done));
            return;
        }
        StartFlush();
    }
    AddPut(std::move(item), std::move(done));
}

void
Slice::AddPut(KvItem item, PutCallback done)
{
    // The log append is what makes the ack durable: mirror the item into
    // the WAL before acknowledging. Truncated once a flush covers it.
    if (journal_) {
        journal_->wal.push_back(WalRecord{item.key, item.value_size,
                                          item.tombstone, item.payload});
    }
    mem_.Add(std::move(item));
    // Acknowledge after the write-ahead log append (separate log device).
    sim_.Schedule(config_.log_latency, [done = std::move(done)]() {
        if (done) done(true);
    });
}

void
Slice::Flush()
{
    if (!mem_.empty() && !flush_active_) StartFlush();
}

bool
Slice::DebugPreloadPatch(std::vector<KvItem> items)
{
    SDF_CHECK_MSG(!config_.store_payloads,
                  "preloading is timing-only; payload mode unsupported");
    const uint64_t id = ids_.Next();
    if (!storage_.DebugInstallPatch(id)) return false;
    const uint64_t seq = next_seq_++;
    auto meta = std::make_shared<PatchMeta>(
        PatchMeta::Build(id, seq, std::move(items), storage_.patch_bytes()));
    // Preloaded patches are "already sorted" history: park them in the
    // last level so they do not trigger compaction (Figure 14's setup).
    if (levels_.size() < config_.max_levels)
        levels_.resize(config_.max_levels);
    levels_.back().push_back(meta);
    UpdateIndex(*meta);
    if (journal_) {
        journal_->patches[id] = PatchFooter{
            static_cast<uint32_t>(levels_.size() - 1), meta, nullptr};
    }
    return true;
}

void
Slice::StartFlush()
{
    SDF_CHECK(!flush_active_);
    flush_active_ = true;
    ++stats_.flushes;

    // Every WAL record so far describes an item now leaving the memtable
    // (newer versions of the same key shadow older records, so the whole
    // prefix is covered); truncate it when the patch lands.
    wal_mark_ = journal_ ? journal_->wal.size() : 0;

    imm_items_ = mem_.TakeAll();
    imm_index_.clear();
    for (size_t i = 0; i < imm_items_.size(); ++i)
        imm_index_[imm_items_[i].key] = i;

    const uint64_t seq = next_seq_++;
    const uint64_t id = ids_.Next();
    auto meta = std::make_shared<PatchMeta>(
        PatchMeta::Build(id, seq, imm_items_, storage_.patch_bytes()));

    const uint8_t *data = nullptr;
    if (config_.store_payloads) {
        auto image = std::make_shared<std::vector<uint8_t>>(
            PatchMeta::AssembleBuffer(*meta, imm_items_,
                                      storage_.patch_bytes()));
        data = image->data();
        patch_images_[id] = std::move(image);
    }

    storage_.PutPatch(id,
                      [this, meta](bool ok) { FinishFlush(ok, meta); }, data,
                      blocklayer::kClientPriority);
}

void
Slice::FinishFlush(bool ok, std::shared_ptr<PatchMeta> meta)
{
    if (detached_) {
        flush_active_ = false;
        return;
    }
    if (ok) {
        levels_[0].push_back(meta);
        UpdateIndex(*meta);
        if (journal_) {
            journal_->patches[meta->id()] = PatchFooter{
                0, meta,
                config_.store_payloads ? patch_images_[meta->id()] : nullptr};
            SDF_CHECK(journal_->wal.size() >= wal_mark_);
            journal_->wal.erase(
                journal_->wal.begin(),
                journal_->wal.begin() + static_cast<long>(wal_mark_));
        }
    } else {
        patch_images_.erase(meta->id());
        // Failed flush: the WAL keeps the covered records, so a restart
        // still recovers the items even though they were dropped from
        // memory here.
    }
    wal_mark_ = 0;
    imm_items_.clear();
    imm_index_.clear();
    flush_active_ = false;

    // Replay puts that stalled behind this flush.
    while (!stalled_puts_.empty()) {
        auto &[item, done] = stalled_puts_.front();
        if (mem_.WouldOverflow(item.StorageCharge())) {
            if (flush_active_) break;
            StartFlush();
            if (flush_active_) {
                // Re-check after the new flush drained the memtable.
                continue;
            }
        }
        AddPut(std::move(item), std::move(done));
        stalled_puts_.pop_front();
    }

    MaybeStartCompaction();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void
Slice::Get(uint64_t key, GetCallback done)
{
    ++stats_.gets;

    auto respond_mem = [this, &done](const KvItem &item) {
        ++stats_.gets_from_memtable;
        GetResult r;
        r.found = !item.tombstone;
        r.value_size = item.value_size;
        r.payload = item.payload;
        if (item.tombstone) ++stats_.gets_not_found;
        sim_.Post([done = std::move(done), r]() { done(r); });
    };

    if (const KvItem *m = mem_.Lookup(key)) {
        respond_mem(*m);
        return;
    }
    if (auto it = imm_index_.find(key); it != imm_index_.end()) {
        respond_mem(imm_items_[it->second]);
        return;
    }
    auto idx = index_.find(key);
    if (idx == index_.end() || idx->second.tombstone) {
        ++stats_.gets_not_found;
        sim_.Post([done = std::move(done)]() {
            done(GetResult{false, true, 0, nullptr});
        });
        return;
    }
    DoStorageGet(key, std::move(done), 3);
}

void
Slice::DoStorageGet(uint64_t key, GetCallback done, int attempts)
{
    auto it = index_.find(key);
    if (it == index_.end() || it->second.tombstone) {
        ++stats_.gets_not_found;
        sim_.Post([done = std::move(done)]() {
            done(GetResult{false, true, 0, nullptr});
        });
        return;
    }
    const IndexEntry loc = it->second;
    const uint64_t align = storage_.alignment();
    const uint64_t start = loc.offset / align * align;
    uint64_t end = loc.offset + loc.value_size;
    end = (end + align - 1) / align * align;
    end = std::min(end, storage_.patch_bytes());
    const uint64_t aligned_len = std::max<uint64_t>(end - start, align);

    auto out = config_.store_payloads
                   ? std::make_shared<std::vector<uint8_t>>()
                   : nullptr;
    storage_.GetRange(
        loc.patch_id, start, aligned_len,
        [this, key, loc, start, out, attempts, done = std::move(done)](
            bool ok) mutable {
            if (!ok) {
                // The patch may have been compacted away mid-read; retry
                // through the (updated) index.
                ++stats_.get_retries;
                if (attempts > 1) {
                    DoStorageGet(key, std::move(done), attempts - 1);
                } else {
                    done(GetResult{false, false, 0, nullptr});
                }
                return;
            }
            GetResult r;
            r.found = true;
            r.value_size = loc.value_size;
            if (out) {
                const size_t rel = static_cast<size_t>(loc.offset - start);
                r.payload = std::make_shared<std::vector<uint8_t>>(
                    out->begin() + static_cast<long>(rel),
                    out->begin() + static_cast<long>(rel + loc.value_size));
            }
            done(r);
        },
        out.get(), blocklayer::kClientPriority);
}

void
Slice::UpdateIndex(const PatchMeta &meta)
{
    for (const PatchEntry &e : meta.entries()) {
        auto it = index_.find(e.key);
        if (it != index_.end() && e.seq < it->second.seq) continue;
        index_[e.key] =
            IndexEntry{meta.id(), e.offset, e.value_size, e.seq, e.tombstone};
    }
}

// ---------------------------------------------------------------------------
// Compaction (tiered: merge a full level into one run of the next level)
// ---------------------------------------------------------------------------

void
Slice::MaybeStartCompaction()
{
    if (compaction_active_) return;
    for (uint32_t level = 0; level < levels_.size(); ++level) {
        if (level + 1 >= config_.max_levels) break;
        if (levels_[level].size() < config_.compaction_trigger) continue;

        compaction_active_ = true;
        compaction_level_ = level;
        compaction_inputs_ = levels_[level];  // Snapshot; stays readable.
        compaction_read_next_ = 0;
        compaction_io_inflight_ = 0;
        compaction_buffers_.assign(compaction_inputs_.size(), nullptr);
        compaction_outputs_.clear();
        compaction_out_bufs_.clear();
        compaction_write_next_ = 0;
        ++stats_.compactions;
        CompactionReadNext();
        return;
    }
}

void
Slice::CompactionReadNext()
{
    if (detached_) return;
    while (compaction_io_inflight_ < config_.compaction_io_concurrency &&
           compaction_read_next_ < compaction_inputs_.size()) {
        const size_t i = compaction_read_next_++;
        ++compaction_io_inflight_;
        auto buf = config_.store_payloads
                       ? std::make_shared<std::vector<uint8_t>>()
                       : nullptr;
        compaction_buffers_[i] = buf;
        stats_.compaction_bytes_read += storage_.patch_bytes();
        storage_.GetRange(
            compaction_inputs_[i]->id(), 0, storage_.patch_bytes(),
            [this](bool) {
                --compaction_io_inflight_;
                if (compaction_read_next_ == compaction_inputs_.size() &&
                    compaction_io_inflight_ == 0) {
                    CompactionMergeAndWrite();
                } else {
                    CompactionReadNext();
                }
            },
            buf.get(), blocklayer::kInternalPriority);
    }
}

void
Slice::CompactionMergeAndWrite()
{
    if (detached_) return;
    std::vector<const PatchMeta *> inputs;
    inputs.reserve(compaction_inputs_.size());
    uint64_t total_bytes = 0;
    for (const auto &m : compaction_inputs_) {
        inputs.push_back(m.get());
        total_bytes += m->data_bytes();
    }
    // Tombstones can be discarded only when nothing older can still hold
    // the key: the merge targets the bottom level AND that level has no
    // pre-existing runs outside this merge's inputs.
    const uint32_t target = compaction_level_ + 1;
    bool to_bottom = target + 1 >= config_.max_levels;
    if (to_bottom && target < levels_.size() && !levels_[target].empty()) {
        to_bottom = false;
    }
    compaction_dropped_tombstones_ = to_bottom;
    size_t entries_in = 0;
    for (const PatchMeta *m : inputs) entries_in += m->entries().size();
    auto parts = MergeEntries(inputs, storage_.patch_bytes(), to_bottom);
    if (to_bottom) {
        size_t entries_out = 0;
        for (const auto &p : parts) entries_out += p.size();
        // Everything removed beyond version dedup is a dropped tombstone
        // (and whatever it shadowed).
        stats_.tombstones_dropped += entries_in - entries_out;
    }

    for (auto &part : parts) {
        const uint64_t id = ids_.Next();
        auto meta = std::make_shared<PatchMeta>(
            PatchMeta::FromEntries(id, std::move(part), storage_.patch_bytes()));

        std::shared_ptr<std::vector<uint8_t>> out_buf;
        if (config_.store_payloads) {
            // Rebuild the output image from the input images.
            out_buf = std::make_shared<std::vector<uint8_t>>(
                storage_.patch_bytes(), 0);
            for (const PatchEntry &e : meta->entries()) {
                for (size_t i = 0; i < compaction_inputs_.size(); ++i) {
                    const PatchEntry *src =
                        compaction_inputs_[i]->Find(e.key);
                    if (!src || src->seq != e.seq) continue;
                    const auto &src_buf = compaction_buffers_[i];
                    if (src_buf && src_buf->size() >=
                                       src->offset + src->value_size) {
                        std::memcpy(out_buf->data() + e.offset,
                                    src_buf->data() + src->offset,
                                    e.value_size);
                    }
                    break;
                }
            }
        }
        compaction_outputs_.push_back(std::move(meta));
        compaction_out_bufs_.push_back(std::move(out_buf));
    }

    // Merge-sort CPU cost before the writes begin.
    const auto merge_cost = static_cast<TimeNs>(
        config_.merge_cpu_per_byte_ns * static_cast<double>(total_bytes));
    sim_.Schedule(merge_cost, [this]() { CompactionWriteNext(); });
}

void
Slice::CompactionWriteNext()
{
    // A detached slice must not issue new writes: the IDs it would use
    // were never recorded, and its successor store has already reconciled
    // the device.
    if (detached_) return;
    if (compaction_write_next_ == compaction_outputs_.size() &&
        compaction_io_inflight_ == 0) {
        FinishCompaction();
        return;
    }
    while (compaction_io_inflight_ < config_.compaction_io_concurrency &&
           compaction_write_next_ < compaction_outputs_.size()) {
        const size_t i = compaction_write_next_++;
        ++compaction_io_inflight_;
        const auto &meta = compaction_outputs_[i];
        const auto &buf = compaction_out_bufs_[i];
        if (buf) patch_images_[meta->id()] = buf;
        stats_.compaction_bytes_written += storage_.patch_bytes();
        storage_.PutPatch(meta->id(),
                          [this](bool) {
                              --compaction_io_inflight_;
                              CompactionWriteNext();
                          },
                          buf ? buf->data() : nullptr,
                          blocklayer::kInternalPriority);
    }
}

void
Slice::FinishCompaction()
{
    // A zombie compaction (process stopped mid-merge) must not delete its
    // input patches: the recovered store still indexes them.
    if (detached_) return;
    // Detach the inputs from their level (new flushes may have appended
    // more runs meanwhile; remove exactly the snapshot).
    auto &level = levels_[compaction_level_];
    for (const auto &input : compaction_inputs_) {
        level.erase(std::remove_if(level.begin(), level.end(),
                                   [&](const auto &m) {
                                       return m->id() == input->id();
                                   }),
                    level.end());
    }
    if (levels_.size() <= compaction_level_ + 1)
        levels_.resize(compaction_level_ + 2);
    for (const auto &out : compaction_outputs_) {
        levels_[compaction_level_ + 1].push_back(out);
        UpdateIndex(*out);
    }
    if (compaction_dropped_tombstones_) {
        // Tombstones discarded by this merge: remove their index shadows
        // (only if the index still points at exactly this marker — a
        // newer version may have arrived mid-compaction).
        for (const auto &input : compaction_inputs_) {
            for (const PatchEntry &e : input->entries()) {
                if (!e.tombstone) continue;
                auto it = index_.find(e.key);
                if (it != index_.end() && it->second.tombstone &&
                    it->second.seq == e.seq) {
                    index_.erase(it);
                }
            }
        }
    }
    if (journal_) {
        // Record the outputs before dropping the inputs: if both are
        // momentarily present the index's sequence numbers dedup them,
        // whereas the reverse order could lose coverage.
        for (size_t i = 0; i < compaction_outputs_.size(); ++i) {
            const auto &out = compaction_outputs_[i];
            journal_->patches[out->id()] =
                PatchFooter{compaction_level_ + 1, out,
                            config_.store_payloads
                                ? patch_images_[out->id()]
                                : nullptr};
        }
        for (const auto &input : compaction_inputs_)
            journal_->patches.erase(input->id());
    }
    for (const auto &input : compaction_inputs_) {
        storage_.DeletePatch(input->id());
        patch_images_.erase(input->id());
    }

    compaction_inputs_.clear();
    compaction_buffers_.clear();
    compaction_outputs_.clear();
    compaction_out_bufs_.clear();
    compaction_active_ = false;
    MaybeStartCompaction();
}

}  // namespace sdf::kv
