/**
 * @file
 * A CCDB slice: one LSM tree serving a key range (§2.4).
 *
 * Writes accumulate in an in-memory container (mirrored to a log on a
 * separate device) and flush as immutable 8 MB patches. Patches undergo
 * multiple merge-sorts (tiered compaction) before settling into large
 * sorted runs. All item metadata stays in DRAM, so a Get that misses the
 * memtables costs exactly one storage read. Client requests take priority
 * over compaction-incurred I/O — on SDF; a conventional SSD cannot tell
 * the two apart, which is half the story of the paper's Figure 14.
 */
#ifndef SDF_KV_SLICE_H
#define SDF_KV_SLICE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kv/memtable.h"
#include "kv/patch.h"
#include "kv/patch_storage.h"
#include "kv/recovery.h"
#include "kv/types.h"
#include "sim/simulator.h"

namespace sdf::obs {
class Hub;
}  // namespace sdf::obs

namespace sdf::kv {

using util::TimeNs;

/** Slice construction options. */
struct SliceConfig
{
    /** Runs in a level before they merge into the next (tiering factor). */
    uint32_t compaction_trigger = 4;
    /** Levels; the last level grows unboundedly. */
    uint32_t max_levels = 4;
    /** Concurrent patch reads/writes during one compaction. */
    uint32_t compaction_io_concurrency = 2;
    /** Host CPU cost of merge-sorting one byte. */
    double merge_cpu_per_byte_ns = 0.25;
    /** Latency of the write-ahead log append (separate log device). */
    TimeNs log_latency = util::UsToNs(100);
    /** Keep real payloads end-to-end (integrity tests). */
    bool store_payloads = false;
};

/** Cumulative slice statistics. */
struct SliceStats
{
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t gets_from_memtable = 0;
    uint64_t gets_not_found = 0;
    uint64_t deletes = 0;
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t tombstones_dropped = 0;
    uint64_t compaction_bytes_read = 0;
    uint64_t compaction_bytes_written = 0;
    uint64_t put_stalls = 0;
    uint64_t get_retries = 0;
};

/** One LSM-tree slice over a PatchStorage. */
class Slice
{
  public:
    /**
     * @param journal Optional durable mirror (WAL + patch footers). When
     *     it already holds state, the slice rebuilds its levels, index,
     *     and memtable from it before serving — the restart path.
     */
    Slice(sim::Simulator &sim, PatchStorage &storage, IdAllocator &ids,
          const SliceConfig &config, SliceJournal *journal = nullptr);
    ~Slice();

    Slice(const Slice &) = delete;
    Slice &operator=(const Slice &) = delete;

    /**
     * Store @p key with a value of @p value_size bytes. Acknowledged after
     * the log append; stalls (queues) when a memtable flush is backed up.
     */
    void Put(uint64_t key, uint32_t value_size, PutCallback done,
             std::shared_ptr<std::vector<uint8_t>> payload = nullptr);

    /**
     * Delete @p key: writes a tombstone that shadows older versions until
     * a bottom-level compaction discards it.
     */
    void Delete(uint64_t key, PutCallback done);

    /** Look up @p key: memtables first, then one storage read. */
    void Get(uint64_t key, GetCallback done);

    /** IDs of every on-storage patch, oldest level first (for scans). */
    std::vector<uint64_t> AllPatchIds() const;

    /**
     * Read patch @p id fully at client priority (index-building scans,
     * Figure 13). @p done receives storage success.
     */
    void ReadPatchFully(uint64_t id, PatchCallback done,
                        std::vector<uint8_t> *out = nullptr);

    /** Force the current memtable out as a patch (test hook). */
    void Flush();

    /**
     * Instantly install a sorted patch holding @p items (timing-only;
     * requires payload mode off). Used to preload slices with data before
     * read experiments, as the paper's production measurements assume.
     * @return false when the underlying storage is full.
     */
    bool DebugPreloadPatch(std::vector<KvItem> items);

    /**
     * Sever this slice from its journal and storage: the owning process
     * has stopped. In-flight flush/compaction callbacks become no-ops —
     * in particular a zombie compaction may no longer delete patches a
     * recovered successor store now indexes.
     */
    void Detach();

    /**
     * Merge this slice's live keys (newest version wins, tombstones
     * excluded) into @p out as key -> value_size. Drives rebalancing and
     * anti-entropy; metadata-only, so it charges no device reads.
     */
    void CollectLive(std::map<uint64_t, uint32_t> &out) const;

    /**
     * Range-bounded CollectLive for scans: merge live keys >= @p start_key
     * into @p out, then trim @p out to its @p limit smallest keys. @p out
     * may already hold other slices' results — the trim bounds the union.
     * An optional @p filter (ownership predicate shipped in a scan RPC)
     * drops keys before they count against the limit. Metadata-only: the
     * DRAM index answers range queries without device reads; the value
     * reads are charged separately via ReadValue.
     */
    void CollectRange(uint64_t start_key, size_t limit,
                      std::map<uint64_t, uint32_t> &out,
                      const std::function<bool(uint64_t)> *filter =
                          nullptr) const;

    /**
     * Charge the device read a scan pays for @p key's value: free when the
     * value is memtable-resident, one client-priority storage read when it
     * lives in a patch. Completion mirrors Get's result shape but does not
     * count as a get in the slice stats.
     */
    void ReadValue(uint64_t key, GetCallback done);

    /** Size of the patches this slice writes (the 8 MB unit). */
    uint64_t patch_bytes() const { return storage_.patch_bytes(); }

    bool compaction_active() const { return compaction_active_; }
    bool flush_active() const { return flush_active_; }
    const SliceStats &stats() const { return stats_; }
    size_t patch_count() const;
    uint64_t total_indexed_keys() const { return index_.size(); }

  private:
    struct IndexEntry
    {
        uint64_t patch_id;
        uint64_t offset;
        uint32_t value_size;
        uint64_t seq;
        /**
         * Deletion marker. Kept in the index (rather than erasing the
         * entry) so an in-flight compaction re-registering an older
         * version of the key cannot resurrect it; removed when the
         * marker itself is discarded at bottom-level compaction.
         */
        bool tombstone = false;
    };

    void AddPut(KvItem item, PutCallback done);
    void PutItem(KvItem item, PutCallback done);
    void RecoverFromJournal();
    void StartFlush();
    void FinishFlush(bool ok, std::shared_ptr<PatchMeta> meta);
    void MaybeStartCompaction();
    void CompactionReadNext();
    void CompactionMergeAndWrite();
    void CompactionWriteNext();
    void FinishCompaction();
    void UpdateIndex(const PatchMeta &meta);
    void DoStorageGet(uint64_t key, GetCallback done, int attempts);

    sim::Simulator &sim_;
    PatchStorage &storage_;
    IdAllocator &ids_;
    SliceConfig config_;
    SliceJournal *journal_ = nullptr;
    /** WAL records covered by the in-flight flush (truncated on success). */
    size_t wal_mark_ = 0;
    bool detached_ = false;

    MemTable mem_;
    std::vector<KvItem> imm_items_;            ///< Items being flushed.
    std::unordered_map<uint64_t, size_t> imm_index_;
    bool flush_active_ = false;
    std::deque<std::pair<KvItem, PutCallback>> stalled_puts_;

    uint64_t next_seq_ = 1;
    /** levels_[0] = freshest runs; each run is one patch. */
    std::vector<std::vector<std::shared_ptr<PatchMeta>>> levels_;
    std::unordered_map<uint64_t, IndexEntry> index_;
    /** Patch byte images, kept only in payload mode. */
    std::unordered_map<uint64_t, std::shared_ptr<std::vector<uint8_t>>>
        patch_images_;

    // ---- compaction job state --------------------------------------------
    bool compaction_active_ = false;
    uint32_t compaction_level_ = 0;
    std::vector<std::shared_ptr<PatchMeta>> compaction_inputs_;
    size_t compaction_read_next_ = 0;
    uint32_t compaction_io_inflight_ = 0;
    std::vector<std::shared_ptr<std::vector<uint8_t>>> compaction_buffers_;
    std::vector<std::shared_ptr<PatchMeta>> compaction_outputs_;
    std::vector<std::shared_ptr<std::vector<uint8_t>>> compaction_out_bufs_;
    size_t compaction_write_next_ = 0;
    bool compaction_dropped_tombstones_ = false;

    SliceStats stats_;

    obs::Hub *hub_ = nullptr;       ///< Metrics registration (see obs/hub.h).
    std::string metric_prefix_;
};

}  // namespace sdf::kv

#endif  // SDF_KV_SLICE_H
