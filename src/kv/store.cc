#include "kv/store.h"

#include <memory>
#include <set>
#include <utility>

#include "util/assert.h"

namespace sdf::kv {

Store::Store(sim::Simulator &sim, PatchStorage &storage,
             const StoreConfig &config, StoreJournal *journal)
    : sim_(sim), ids_(journal ? journal->next_patch_id : 0)
{
    SDF_CHECK(config.slice_count > 0);
    if (journal) {
        if (journal->slices.empty()) journal->slices.resize(config.slice_count);
        SDF_CHECK_MSG(journal->slices.size() == config.slice_count,
                      "journal slice count mismatch");
        ids_.BindWatermark(&journal->next_patch_id);
        // Reconcile the device against the journal: stored patches no
        // footer references were in flight at the stop — reclaim them
        // before the slices rebuild.
        std::set<uint64_t> known;
        for (const SliceJournal &sj : journal->slices) {
            for (const auto &[id, footer] : sj.patches) known.insert(id);
        }
        for (uint64_t id : storage.StoredIds()) {
            if (!known.count(id)) storage.DeletePatch(id);
        }
    }
    slices_.reserve(config.slice_count);
    for (uint32_t i = 0; i < config.slice_count; ++i) {
        slices_.push_back(std::make_unique<Slice>(
            sim, storage, ids_, config.slice,
            journal ? &journal->slices[i] : nullptr));
    }
}

void
Store::Scan(uint64_t start_key, uint32_t limit, ScanCallback done,
            std::function<bool(uint64_t)> filter)
{
    // Resolve the key set synchronously — no simulated time passes, so the
    // result is one consistent cut of the store even with writes in
    // flight. Each slice trims the shared map to the union's `limit`
    // smallest, bounding the merge.
    std::map<uint64_t, uint32_t> merged;
    for (const auto &s : slices_)
        s->CollectRange(start_key, limit, merged, &filter);

    auto result = std::make_shared<ScanResult>();
    result->entries.reserve(merged.size());
    for (const auto &[key, value_size] : merged) {
        result->entries.push_back(ScanEntry{key, value_size});
        result->scanned_bytes += value_size;
    }
    if (result->entries.empty()) {
        sim_.Post([done = std::move(done), result]() { done(*result); });
        return;
    }
    // Charge every selected value its device read; complete on the last.
    auto remaining = std::make_shared<size_t>(result->entries.size());
    auto boxed = std::make_shared<ScanCallback>(std::move(done));
    for (const ScanEntry &e : result->entries) {
        slice(SliceOf(e.key))
            .ReadValue(e.key,
                       [result, remaining, boxed](const GetResult &r) {
                           if (!r.ok) {
                               result->ok = false;
                               result->status = WorseStatus(
                                   result->status, OpStatus::kError);
                           }
                           if (--*remaining == 0) (*boxed)(*result);
                       });
    }
}

SliceStats
Store::TotalStats() const
{
    SliceStats total;
    for (const auto &s : slices_) {
        const SliceStats &t = s->stats();
        total.puts += t.puts;
        total.gets += t.gets;
        total.gets_from_memtable += t.gets_from_memtable;
        total.gets_not_found += t.gets_not_found;
        total.flushes += t.flushes;
        total.compactions += t.compactions;
        total.compaction_bytes_read += t.compaction_bytes_read;
        total.compaction_bytes_written += t.compaction_bytes_written;
        total.put_stalls += t.put_stalls;
        total.get_retries += t.get_retries;
    }
    return total;
}

uint64_t
FsView::SegmentKey(std::string_view path, uint32_t segment) const
{
    uint64_t s = util::Fingerprint(path) ^ (uint64_t{segment} << 32);
    return util::SplitMix64(s);
}

void
FsView::PutFile(std::string_view path, uint64_t size, PutCallback done)
{
    const uint32_t segments = std::max(SegmentCount(size), 1u);
    auto remaining = std::make_shared<uint32_t>(segments);
    auto all_ok = std::make_shared<bool>(true);
    auto done_box = std::make_shared<PutCallback>(std::move(done));
    for (uint32_t i = 0; i < segments; ++i) {
        const uint64_t seg_size =
            std::min<uint64_t>(segment_bytes_, size - uint64_t{i} * segment_bytes_);
        store_.Put(SegmentKey(path, i), static_cast<uint32_t>(seg_size),
                   [remaining, all_ok, done_box](bool ok) {
                       if (!ok) *all_ok = false;
                       if (--*remaining == 0 && *done_box) {
                           (*done_box)(*all_ok);
                       }
                   });
    }
}

void
FsView::GetFile(std::string_view path, uint64_t size,
                std::function<void(bool ok, uint64_t bytes)> done)
{
    const uint32_t segments = std::max(SegmentCount(size), 1u);
    auto remaining = std::make_shared<uint32_t>(segments);
    auto all_ok = std::make_shared<bool>(true);
    auto bytes = std::make_shared<uint64_t>(0);
    for (uint32_t i = 0; i < segments; ++i) {
        store_.Get(SegmentKey(path, i),
                   [remaining, all_ok, bytes, done](const GetResult &r) mutable {
                       if (!r.found || !r.ok) {
                           *all_ok = false;
                       } else {
                           *bytes += r.value_size;
                       }
                       if (--*remaining == 0 && done) done(*all_ok, *bytes);
                   });
    }
}

}  // namespace sdf::kv
