/**
 * @file
 * The multi-slice store and the three data-format subsystems built on it.
 *
 * Baidu's storage system presents Table, FS, and KV interfaces; internally
 * all three are key-value pairs hashed into slices (§2.4). Each slice is
 * an independent LSM tree hosted on one storage server.
 */
#ifndef SDF_KV_STORE_H
#define SDF_KV_STORE_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kv/slice.h"
#include "util/fingerprint.h"

namespace sdf::kv {

/** Store construction options. */
struct StoreConfig
{
    uint32_t slice_count = 8;
    SliceConfig slice;
};

/** A storage node: a set of slices over one PatchStorage. */
class Store
{
  public:
    /**
     * @param journal Optional durable mirror shared with any predecessor
     *     incarnation of this store. When it holds state, construction is
     *     a restart: the ID allocator resumes above its high-water mark,
     *     on-device patches no footer references are reclaimed as
     *     orphans, and each slice rebuilds itself from its journal.
     */
    Store(sim::Simulator &sim, PatchStorage &storage,
          const StoreConfig &config, StoreJournal *journal = nullptr);

    Store(const Store &) = delete;
    Store &operator=(const Store &) = delete;

    uint32_t slice_count() const { return static_cast<uint32_t>(slices_.size()); }
    Slice &slice(uint32_t i) { return *slices_[i]; }

    /** Slice owning @p key (hash sharding). */
    uint32_t
    SliceOf(uint64_t key) const
    {
        // Scramble so sequential keys spread over slices.
        uint64_t s = key;
        return static_cast<uint64_t>(util::SplitMix64(s)) % slices_.size();
    }

    void
    Put(uint64_t key, uint32_t value_size, PutCallback done,
        std::shared_ptr<std::vector<uint8_t>> payload = nullptr)
    {
        slice(SliceOf(key)).Put(key, value_size, std::move(done),
                                std::move(payload));
    }

    void
    Get(uint64_t key, GetCallback done)
    {
        slice(SliceOf(key)).Get(key, std::move(done));
    }

    /**
     * Range scan: up to @p limit live keys >= @p start_key, ascending,
     * merged across all slices (keys hash-scatter, so every slice can
     * contribute). The key set is resolved instantly from the DRAM
     * indexes — one consistent cut of the store — then each selected
     * value is charged its device read before @p done fires. An optional
     * @p filter (the cluster's ownership predicate) drops keys before
     * they count against the limit.
     */
    void Scan(uint64_t start_key, uint32_t limit, ScanCallback done,
              std::function<bool(uint64_t)> filter = nullptr);

    /** Aggregate statistics over all slices. */
    SliceStats TotalStats() const;

    /** Sever all slices from journal and storage (the process stopped). */
    void
    Detach()
    {
        for (auto &s : slices_) s->Detach();
    }

    /** All live keys (key -> value_size) across the slices. */
    void
    CollectLive(std::map<uint64_t, uint32_t> &out) const
    {
        for (const auto &s : slices_) s->CollectLive(out);
    }

  private:
    sim::Simulator &sim_;
    std::vector<std::unique_ptr<Slice>> slices_;
    IdAllocator ids_;
};

/**
 * Table subsystem: the key is the index of a table row, the value the
 * remaining fields (§2.4). Used by the web-page repository (Figure 9).
 */
class TableView
{
  public:
    explicit TableView(Store &store, std::string table_name)
        : store_(store), table_tag_(util::Fingerprint(table_name)) {}

    /** Deterministic row key within this table's key space. */
    uint64_t
    RowKey(uint64_t row) const
    {
        uint64_t s = table_tag_ ^ row;
        return util::SplitMix64(s);
    }

    void
    PutRow(uint64_t row, uint32_t value_size, PutCallback done,
           std::shared_ptr<std::vector<uint8_t>> payload = nullptr)
    {
        store_.Put(RowKey(row), value_size, std::move(done),
                   std::move(payload));
    }

    void
    GetRow(uint64_t row, GetCallback done)
    {
        store_.Get(RowKey(row), std::move(done));
    }

  private:
    Store &store_;
    uint64_t table_tag_;
};

/**
 * FS subsystem: the path name is the key; file data is stored in fixed
 * segments so large files span multiple KV pairs (§2.4).
 */
class FsView
{
  public:
    /** @param segment_bytes Maximum value size per file segment. */
    explicit FsView(Store &store, uint32_t segment_bytes = 512 * 1024)
        : store_(store), segment_bytes_(segment_bytes) {}

    /** Number of segments a file of @p size occupies. */
    uint32_t
    SegmentCount(uint64_t size) const
    {
        return static_cast<uint32_t>((size + segment_bytes_ - 1) /
                                     segment_bytes_);
    }

    uint64_t SegmentKey(std::string_view path, uint32_t segment) const;

    /** Store a file of @p size bytes; @p done fires after all segments. */
    void PutFile(std::string_view path, uint64_t size, PutCallback done);

    /** Read back all segments; @p done receives overall success + size. */
    void GetFile(std::string_view path, uint64_t size,
                 std::function<void(bool ok, uint64_t bytes)> done);

  private:
    Store &store_;
    uint32_t segment_bytes_;
};

}  // namespace sdf::kv

#endif  // SDF_KV_STORE_H
