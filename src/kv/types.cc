#include "kv/types.h"

namespace sdf::kv {

const char *
OpStatusName(OpStatus s)
{
    switch (s) {
        case OpStatus::kOk: return "ok";
        case OpStatus::kError: return "error";
        case OpStatus::kDeadlineExceeded: return "deadline_exceeded";
        case OpStatus::kOverloaded: return "overloaded";
    }
    return "unknown";
}

}  // namespace sdf::kv
