/**
 * @file
 * Core types for CCDB, Baidu's LSM-tree KV store (§2.4).
 *
 * Keys are 64-bit integers (the production system hashes string keys into
 * ranges; benches use integer keys directly — the facades in store.h map
 * table rows and file paths onto them). Values are modeled by size and an
 * optional payload for data-integrity tests.
 */
#ifndef SDF_KV_TYPES_H
#define SDF_KV_TYPES_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/span.h"
#include "sim/callback.h"
#include "obs/trace_context.h"

namespace sdf::kv {

/** A key-value record as it flows through memtables and patches. */
struct KvItem
{
    uint64_t key = 0;
    uint32_t value_size = 0;
    /** Optional real payload (tests only; benches run timing-only). */
    std::shared_ptr<std::vector<uint8_t>> payload;
    /** Deletion marker: shadows older versions until compacted away. */
    bool tombstone = false;

    /** Bytes this record charges against the memtable/patch budget. */
    uint32_t
    StorageCharge() const
    {
        // A tombstone still costs an index entry's worth of space.
        return tombstone ? 64 : value_size;
    }
};

/** Where a record lives on storage. */
struct ItemLocation
{
    uint64_t patch_id = 0;
    uint64_t offset = 0;       ///< Byte offset within the patch.
    uint32_t value_size = 0;
};

/**
 * Typed disposition of a KV front-door operation. Overload control needs
 * failures to say *why*: a shed request (kOverloaded) tells the client to
 * back off, a blown deadline (kDeadlineExceeded) tells it the work may
 * still complete server-side, and a storage error (kError) tells it to
 * fail over. Ranked by how actionable the signal is for backpressure.
 */
enum class OpStatus : uint8_t
{
    kOk = 0,              ///< Served (or an authoritative miss).
    kError,               ///< Storage-level failure on every replica tried.
    kDeadlineExceeded,    ///< Deadline or RPC retry budget exhausted.
    kOverloaded,          ///< Shed by admission control (server or client).
};

const char *OpStatusName(OpStatus s);

/** The more backpressure-actionable of two failure dispositions. */
inline OpStatus
WorseStatus(OpStatus a, OpStatus b)
{
    return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

/**
 * Per-operation context threaded from the front door down to the RPC
 * layer. `deadline` is an absolute simulated time; 0 means none — the
 * transport's own timeout/retry ladder still bounds the attempt.
 *
 * `trace` is the distributed-trace identity (0 = untraced) every layer
 * tags its trace events with, and `path` is the request's critical-path
 * span: the layer that currently owns the request marks milestones on it
 * (client queue, wire, admission, storage, ...) and the segments tile the
 * client-observed latency exactly. The span has a single writer at a
 * time — fan-out paths (put replication, hedges, batch members past the
 * first) strip `path` and keep only `trace`, so duplicates stay linked
 * in the trace without two writers corrupting one timeline.
 */
struct OpContext
{
    uint64_t deadline = 0;  ///< util::TimeNs; absolute, 0 = no deadline.
    obs::TraceContext trace;
    std::shared_ptr<obs::IoSpan> path;
};

/** Completion of a Get: found + size (+ data when payloads are on). */
struct GetResult
{
    bool found = false;
    bool ok = true;            ///< Storage-level success.
    uint32_t value_size = 0;
    std::shared_ptr<std::vector<uint8_t>> payload;
    /** Why ok is false (kOk whenever ok is true, even on a miss). */
    OpStatus status = OpStatus::kOk;
};

using GetCallback = sim::Func<void(const GetResult &)>;
using PutCallback = sim::Func<void(bool ok)>;
/** Typed put completion for admission-aware paths. */
using PutStatusCallback = sim::Func<void(OpStatus)>;

/** One record returned by a range scan: a live key and its value size. */
struct ScanEntry
{
    uint64_t key = 0;
    uint32_t value_size = 0;
};

/**
 * Completion of a Scan(start_key, limit): up to `limit` live keys >=
 * start_key in ascending order. `scanned_bytes` sums the entry value
 * sizes — the bytes a real scan streams back to the client.
 */
struct ScanResult
{
    bool ok = true;
    OpStatus status = OpStatus::kOk;
    std::vector<ScanEntry> entries;
    uint64_t scanned_bytes = 0;
};

using ScanCallback = sim::Func<void(const ScanResult &)>;

/**
 * Issues unique 64-bit block IDs. The production system runs a counter
 * service that clients request IDs from (§2.4); consecutive IDs land on
 * consecutive channels through the block layer's round-robin hash.
 */
class IdAllocator
{
  public:
    explicit IdAllocator(uint64_t first = 0) : next_(first) {}

    /**
     * Mirror every allocation into @p watermark. Models the counter
     * service's durable high-water mark: a restarted node resumes above
     * every ID ever issued, including ones whose writes never completed.
     */
    void
    BindWatermark(uint64_t *watermark)
    {
        watermark_ = watermark;
        if (watermark_) *watermark_ = std::max(*watermark_, next_);
    }

    uint64_t
    Next()
    {
        const uint64_t id = next_++;
        if (watermark_) *watermark_ = next_;
        return id;
    }
    uint64_t issued() const { return next_; }

  private:
    uint64_t next_;
    uint64_t *watermark_ = nullptr;
};

}  // namespace sdf::kv

#endif  // SDF_KV_TYPES_H
