/**
 * @file
 * Core types for CCDB, Baidu's LSM-tree KV store (§2.4).
 *
 * Keys are 64-bit integers (the production system hashes string keys into
 * ranges; benches use integer keys directly — the facades in store.h map
 * table rows and file paths onto them). Values are modeled by size and an
 * optional payload for data-integrity tests.
 */
#ifndef SDF_KV_TYPES_H
#define SDF_KV_TYPES_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace sdf::kv {

/** A key-value record as it flows through memtables and patches. */
struct KvItem
{
    uint64_t key = 0;
    uint32_t value_size = 0;
    /** Optional real payload (tests only; benches run timing-only). */
    std::shared_ptr<std::vector<uint8_t>> payload;
    /** Deletion marker: shadows older versions until compacted away. */
    bool tombstone = false;

    /** Bytes this record charges against the memtable/patch budget. */
    uint32_t
    StorageCharge() const
    {
        // A tombstone still costs an index entry's worth of space.
        return tombstone ? 64 : value_size;
    }
};

/** Where a record lives on storage. */
struct ItemLocation
{
    uint64_t patch_id = 0;
    uint64_t offset = 0;       ///< Byte offset within the patch.
    uint32_t value_size = 0;
};

/** Completion of a Get: found + size (+ data when payloads are on). */
struct GetResult
{
    bool found = false;
    bool ok = true;            ///< Storage-level success.
    uint32_t value_size = 0;
    std::shared_ptr<std::vector<uint8_t>> payload;
};

using GetCallback = std::function<void(const GetResult &)>;
using PutCallback = std::function<void(bool ok)>;

/**
 * Issues unique 64-bit block IDs. The production system runs a counter
 * service that clients request IDs from (§2.4); consecutive IDs land on
 * consecutive channels through the block layer's round-robin hash.
 */
class IdAllocator
{
  public:
    explicit IdAllocator(uint64_t first = 0) : next_(first) {}

    /**
     * Mirror every allocation into @p watermark. Models the counter
     * service's durable high-water mark: a restarted node resumes above
     * every ID ever issued, including ones whose writes never completed.
     */
    void
    BindWatermark(uint64_t *watermark)
    {
        watermark_ = watermark;
        if (watermark_) *watermark_ = std::max(*watermark_, next_);
    }

    uint64_t
    Next()
    {
        const uint64_t id = next_++;
        if (watermark_) *watermark_ = next_;
        return id;
    }
    uint64_t issued() const { return next_; }

  private:
    uint64_t next_;
    uint64_t *watermark_ = nullptr;
};

}  // namespace sdf::kv

#endif  // SDF_KV_TYPES_H
