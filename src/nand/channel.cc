#include "nand/channel.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/assert.h"

namespace sdf::nand {

Channel::Channel(sim::Simulator &sim, const Geometry &geo,
                 const TimingSpec &timing, const ErrorModel &errors,
                 util::Rng rng, bool store_payloads,
                 uint32_t ecc_correctable_bits, uint32_t retry_extra_bits)
    : sim_(sim),
      geo_(geo),
      timing_(timing),
      errors_(errors),
      rng_(rng),
      store_payloads_(store_payloads),
      ecc_correctable_bits_(ecc_correctable_bits),
      retry_extra_bits_(retry_extra_bits),
      bus_(sim),
      blocks_(geo.BlocksPerChannel())
{
    geo_.Validate();
    planes_.reserve(geo_.PlanesPerChannel());
    for (uint32_t p = 0; p < geo_.PlanesPerChannel(); ++p)
        planes_.push_back(std::make_unique<sim::FifoResource>(sim));
}

bool
Channel::ValidBlock(const BlockAddr &a) const
{
    return a.plane < geo_.PlanesPerChannel() && a.block < geo_.blocks_per_plane;
}

bool
Channel::ValidPage(const PageAddr &a) const
{
    return ValidBlock(a.BlockOf()) && a.page < geo_.pages_per_block;
}

BlockMeta &
Channel::Meta(const BlockAddr &a)
{
    return blocks_[FlatBlockIndex(geo_, a)];
}

const BlockMeta &
Channel::block_meta(const BlockAddr &addr) const
{
    SDF_CHECK(ValidBlock(addr));
    return blocks_[FlatBlockIndex(geo_, addr)];
}

void
Channel::MarkBad(const BlockAddr &addr)
{
    SDF_CHECK(ValidBlock(addr));
    Meta(addr).bad = true;
}

void
Channel::EnableTrace(obs::TraceSink *sink, uint32_t channel_index)
{
    trace_ = sink;
    char name[32];
    std::snprintf(name, sizeof name, "ch%02u.bus", channel_index);
    bus_track_ = sink->RegisterTrack("flash", name);
    plane_tracks_.clear();
    for (uint32_t p = 0; p < geo_.PlanesPerChannel(); ++p) {
        std::snprintf(name, sizeof name, "ch%02u.p%u", channel_index, p);
        plane_tracks_.push_back(sink->RegisterTrack("flash", name));
    }
}

void
Channel::InjectStall(util::TimeNs duration)
{
    TraceOp(bus_track_, "stall", bus_.Submit(duration, nullptr), duration);
    for (size_t p = 0; p < planes_.size(); ++p) {
        const util::TimeNs end = planes_[p]->Submit(duration, nullptr);
        if (trace_ != nullptr) {
            TraceOp(plane_tracks_[p], "stall", end, duration);
        }
    }
}

void
Channel::CorruptPage(const PageAddr &addr)
{
    SDF_CHECK(ValidPage(addr));
    corrupted_.insert(FlatPageIndex(geo_, addr));
}

void
Channel::InjectTransientErrors(util::TimeNs duration, double probability)
{
    transient_until_ = std::max(transient_until_, sim_.Now() + duration);
    transient_prob_ = probability;
}

void
Channel::ElevateRber(const BlockAddr &addr, double factor)
{
    SDF_CHECK(ValidBlock(addr));
    Meta(addr).rber_boost *= factor;
}

void
Channel::DebugSetProgrammed(const BlockAddr &addr, uint32_t pages)
{
    SDF_CHECK(ValidBlock(addr));
    SDF_CHECK(pages <= geo_.pages_per_block);
    BlockMeta &meta = Meta(addr);
    SDF_CHECK_MSG(!meta.bad && meta.state == BlockState::kErased,
                  "preconditioning a non-erased block");
    meta.next_page = pages;
    meta.state = pages == geo_.pages_per_block ? BlockState::kFull
                 : pages == 0                  ? BlockState::kErased
                                               : BlockState::kOpen;
}

void
Channel::CompleteAt(util::TimeNs when, OpCallback done, OpStatus status)
{
    if (!done) return;
    // Same-time completions (validation failures, dead channels) ride the
    // completion ring instead of paying for a timed-queue slot.
    if (when == sim_.Now()) {
        sim_.Post([done = std::move(done), status]() { done(status); });
        return;
    }
    sim_.ScheduleAt(when, [done = std::move(done), status]() { done(status); });
}

void
Channel::ReadPage(const PageAddr &addr, OpCallback done,
                  std::vector<uint8_t> *out, uint32_t retry_level,
                  obs::IoSpan *span)
{
    if (!ValidPage(addr)) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kOutOfRange);
        return;
    }
    if (dead_) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kChannelDead);
        return;
    }
    BlockMeta &meta = Meta(addr.BlockOf());
    if (meta.bad) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kBadBlock);
        return;
    }
    if (retry_level > 0) ++stats_.retry_reads;

    // Resolve data and status at submit time; plane/bus ordering makes this
    // consistent with completion-time semantics.
    OpStatus status = OpStatus::kOk;
    const bool programmed =
        meta.state != BlockState::kErased && addr.page < meta.next_page;
    if (!programmed) {
        status = OpStatus::kOkErased;
        if (out) {
            out->assign(geo_.page_size, 0xFF);
        }
    } else {
        if (out) {
            out->assign(geo_.page_size, 0);
            if (store_payloads_) {
                auto it = data_.find(FlatPageIndex(geo_, addr));
                if (it != data_.end()) {
                    std::memcpy(out->data(), it->second.data(),
                                std::min(out->size(), it->second.size()));
                }
            }
        }
        // Each retry level re-senses with shifted read voltages, buying
        // extra correction margin; latent corruption defeats all levels.
        const uint32_t budget =
            ecc_correctable_bits_ + retry_level * retry_extra_bits_;
        const uint32_t errs = errors_.SampleBitErrors(
            rng_, geo_.page_size, meta.erase_count, meta.rber_boost);
        const bool corrupted =
            corrupted_.count(FlatPageIndex(geo_, addr)) != 0;
        bool transient = false;
        if (sim_.Now() < transient_until_ &&
            rng_.NextBool(transient_prob_)) {
            transient = true;
            ++stats_.transient_errors;
        }
        if (corrupted || transient || errs > budget) {
            status = OpStatus::kReadUncorrectable;
            ++stats_.uncorrectable_reads;
        } else {
            stats_.corrected_bit_errors += errs;
        }
    }

    ++stats_.reads;
    stats_.read_bytes += geo_.page_size;

    // Array read on the plane, then data transfer out over the shared bus.
    const util::TimeNs array_done =
        PlaneRes(addr.plane).Submit(timing_.read_page, nullptr);
    const util::TimeNs bus_time = timing_.BusTime(geo_.page_size);
    const util::TimeNs decode = timing_.bch_decode;
    const util::TimeNs bus_done = bus_.SubmitAfter(
        array_done, bus_time,
        [this, done = std::move(done), status, decode]() mutable {
            if (decode > 0) {
                sim_.Schedule(decode,
                              [done = std::move(done), status]() mutable {
                                  if (done) done(status);
                              });
            } else if (done) {
                done(status);
            }
        });

    if (trace_ != nullptr) {
        TraceOp(plane_tracks_[addr.plane], "tR", array_done,
                timing_.read_page);
        TraceOp(bus_track_, "xfer", bus_done, bus_time);
    }
    if (span != nullptr) {
        if (retry_level == 0) {
            // The flow is serial for one page, so cut points are faithful:
            // wait for the plane, sense, wait for the bus, transfer, decode.
            span->Enter(obs::Stage::kQueue, sim_.Now());
            span->Enter(obs::Stage::kFlashOp, array_done - timing_.read_page);
            span->Enter(obs::Stage::kQueue, array_done);
            span->Enter(obs::Stage::kChannelBus, bus_done - bus_time);
            span->Enter(obs::Stage::kBchDecode, bus_done);
        } else {
            // A retry rung repeats the whole sequence; attribute it whole.
            span->Enter(obs::Stage::kRetry, sim_.Now());
        }
    }
}

void
Channel::ProgramPage(const PageAddr &addr, OpCallback done,
                     const uint8_t *payload)
{
    if (!ValidPage(addr)) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kOutOfRange);
        return;
    }
    if (dead_) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kChannelDead);
        return;
    }
    BlockMeta &meta = Meta(addr.BlockOf());
    if (meta.bad) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kBadBlock);
        return;
    }
    if (meta.state == BlockState::kFull ||
        (meta.state == BlockState::kOpen && addr.page < meta.next_page)) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kWriteNotErased);
        return;
    }
    if (addr.page != meta.next_page) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kWriteSequenceError);
        return;
    }

    // Commit state at submit time; per-plane FIFO keeps this consistent.
    meta.next_page = addr.page + 1;
    meta.state = meta.next_page == geo_.pages_per_block ? BlockState::kFull
                                                        : BlockState::kOpen;
    if (store_payloads_) {
        auto &slot = data_[FlatPageIndex(geo_, addr)];
        slot.assign(geo_.page_size, 0);
        if (payload) std::memcpy(slot.data(), payload, geo_.page_size);
    }

    ++stats_.programs;
    stats_.programmed_bytes += geo_.page_size;

    // Data in over the bus, then the plane programs the array.
    const util::TimeNs bus_time = timing_.BusTime(geo_.page_size);
    const util::TimeNs data_in = bus_.Submit(bus_time, nullptr);
    const util::TimeNs prog_done =
        PlaneRes(addr.plane)
            .SubmitAfter(data_in, timing_.program_page,
                         [done = std::move(done)]() mutable {
                             if (done) done(OpStatus::kOk);
                         });
    if (trace_ != nullptr) {
        TraceOp(bus_track_, "din", data_in, bus_time);
        TraceOp(plane_tracks_[addr.plane], "tPROG", prog_done,
                timing_.program_page);
    }
}

void
Channel::EraseBlock(const BlockAddr &addr, OpCallback done)
{
    if (!ValidBlock(addr)) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kOutOfRange);
        return;
    }
    if (dead_) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kChannelDead);
        return;
    }
    BlockMeta &meta = Meta(addr);
    if (meta.bad) {
        CompleteAt(sim_.Now(), std::move(done), OpStatus::kBadBlock);
        return;
    }

    ++meta.erase_count;
    OpStatus status = OpStatus::kOk;
    if (errors_.SampleWearOut(rng_, meta.erase_count)) {
        meta.bad = true;
        ++stats_.blocks_gone_bad;
        status = OpStatus::kWornOut;
    } else {
        meta.state = BlockState::kErased;
        meta.next_page = 0;
        meta.rber_boost = 1.0;  // Injected RBER elevation clears on erase.
        const PageAddr base{addr.plane, addr.block, 0};
        const uint64_t first = FlatPageIndex(geo_, base);
        for (uint32_t p = 0; p < geo_.pages_per_block; ++p) {
            corrupted_.erase(first + p);
            if (store_payloads_) data_.erase(first + p);
        }
    }

    ++stats_.erases;

    const util::TimeNs cmd_done = bus_.Submit(timing_.bus_cmd_overhead, nullptr);
    const util::TimeNs erase_done =
        PlaneRes(addr.plane)
            .SubmitAfter(cmd_done, timing_.erase_block,
                         [done = std::move(done), status]() mutable {
                             if (done) done(status);
                         });
    if (trace_ != nullptr) {
        TraceOp(bus_track_, "cmd", cmd_done, timing_.bus_cmd_overhead);
        TraceOp(plane_tracks_[addr.plane], "tBERS", erase_done,
                timing_.erase_block);
    }
}

bool
Channel::Busy() const
{
    if (bus_.Busy()) return true;
    for (const auto &p : planes_)
        if (p->Busy()) return true;
    return false;
}

util::TimeNs
Channel::DrainTime() const
{
    util::TimeNs t = bus_.free_at();
    for (const auto &p : planes_) t = std::max(t, p->free_at());
    return t;
}

}  // namespace sdf::nand
