/**
 * @file
 * One NAND flash channel: a shared command/data bus serving the planes of
 * the dies attached to it.
 *
 * Timing model:
 *  - Read:    plane array read (tR), then bus transfer out (pipelines with
 *             other planes' array reads).
 *  - Program: bus transfer in, then plane program (tPROG); bus frees as
 *             soon as the data is latched, so four planes pipeline.
 *  - Erase:   short bus command, then plane busy for tBERS.
 *
 * State machine: blocks must be erased before programming, and pages within
 * a block must be programmed sequentially (real NAND constraint that the
 * SDF interface design leans on). Violations complete with an error status.
 */
#ifndef SDF_NAND_CHANNEL_H
#define SDF_NAND_CHANNEL_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nand/error_model.h"
#include "nand/geometry.h"
#include "nand/timing.h"
#include "nand/types.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sim/fifo_resource.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace sdf::nand {

/** Lifecycle state of an erase block. */
enum class BlockState : uint8_t
{
    kErased,  ///< Ready for programming from page 0.
    kOpen,    ///< Partially programmed; next_page is the write pointer.
    kFull,    ///< All pages programmed; must be erased before reuse.
};

/** Per-block bookkeeping kept by the channel. */
struct BlockMeta
{
    BlockState state = BlockState::kErased;
    uint32_t next_page = 0;
    uint32_t erase_count = 0;
    bool bad = false;
    /** RBER multiplier for this block (fault injection; reset on erase). */
    double rber_boost = 1.0;
};

/** Cumulative operation counters for one channel. */
struct ChannelStats
{
    uint64_t reads = 0;
    uint64_t programs = 0;
    uint64_t erases = 0;
    uint64_t read_bytes = 0;
    uint64_t programmed_bytes = 0;
    uint64_t corrected_bit_errors = 0;
    uint64_t uncorrectable_reads = 0;
    uint64_t blocks_gone_bad = 0;
    uint64_t retry_reads = 0;        ///< Reads issued at retry level > 0.
    uint64_t transient_errors = 0;   ///< Injected link-CRC read failures.
};

/** One flash channel with its dies, planes, bus, and block state. */
class Channel
{
  public:
    /**
     * @param sim Shared simulator.
     * @param geo Full device geometry (channel uses the per-channel parts).
     * @param timing Channel timing spec.
     * @param errors Reliability model (disabled by default).
     * @param rng Channel-private RNG stream.
     * @param store_payloads When true, programmed page contents are kept
     *     and returned by reads (needed for data-integrity tests; benches
     *     run timing-only with this off).
     * @param ecc_correctable_bits BCH correction budget per page.
     * @param retry_extra_bits Additional correction budget gained per
     *     read-retry level (retry voltage shifts recover margin).
     */
    Channel(sim::Simulator &sim, const Geometry &geo, const TimingSpec &timing,
            const ErrorModel &errors, util::Rng rng, bool store_payloads,
            uint32_t ecc_correctable_bits, uint32_t retry_extra_bits = 10);

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /**
     * Read one page. If @p out is non-null and payload storage is enabled,
     * the stored payload is copied into it (erased pages read as 0xFF).
     *
     * @p retry_level models the controller's read-retry voltage ladder:
     * each level above 0 re-senses the page and widens the effective BCH
     * correction budget by `retry_extra_bits` (set at construction), at
     * the cost of another full array read. Level 0 is a normal read.
     *
     * @p span, when non-null, receives fine-grained stage milestones
     * (queue / flash_op / channel_bus / bch_decode for level 0; the whole
     * rung is attributed to `retry` for levels above 0). The channel can
     * mark known-future milestones because FifoResource schedules
     * deterministically at submit time.
     */
    void ReadPage(const PageAddr &addr, OpCallback done,
                  std::vector<uint8_t> *out = nullptr,
                  uint32_t retry_level = 0, obs::IoSpan *span = nullptr);

    /**
     * Program one page. @p payload may be null (timing-only mode); when
     * payload storage is enabled a null payload stores a zero page.
     */
    void ProgramPage(const PageAddr &addr, OpCallback done,
                     const uint8_t *payload = nullptr);

    /** Erase one block. */
    void EraseBlock(const BlockAddr &addr, OpCallback done);

    /** Mark a block bad (factory defects, FTL decisions). */
    void MarkBad(const BlockAddr &addr);

    // ---- fault-injection hooks (driven by sdf::fault::FaultInjector) ----

    /**
     * Kill the channel: every subsequent operation completes immediately
     * with kChannelDead. Models controller/chip death; irreversible.
     */
    void InjectDeath() { dead_ = true; }

    /** True once InjectDeath() has been called. */
    bool dead() const { return dead_; }

    /**
     * Stall the channel for @p duration: the bus and every plane are
     * occupied with dummy work, delaying all queued and future operations
     * (models firmware hiccups / chip-level retries blocking the bus).
     */
    void InjectStall(util::TimeNs duration);

    /**
     * Latent corruption of one page: reads of it fail uncorrectably at
     * every retry level until the containing block is erased. Models
     * retention loss / program disturb beyond any read-retry voltage.
     */
    void CorruptPage(const PageAddr &addr);

    /**
     * For @p duration from now, each read additionally fails with
     * probability @p probability (transient link CRC errors; a plain
     * re-read at any retry level can succeed).
     */
    void InjectTransientErrors(util::TimeNs duration, double probability);

    /** Multiply @p addr's RBER by @p factor (sticky until erase). */
    void ElevateRber(const BlockAddr &addr, double factor);

    /**
     * Instantly mark @p pages pages of @p addr as programmed, bypassing
     * timing and payload storage. Simulation backdoor used only to
     * precondition devices before experiments (the paper's "almost full
     * at the beginning" setup); never called on the data path.
     */
    void DebugSetProgrammed(const BlockAddr &addr, uint32_t pages);

    /** Block metadata (valid address required). */
    const BlockMeta &block_meta(const BlockAddr &addr) const;

    const ChannelStats &stats() const { return stats_; }
    const Geometry &geometry() const { return geo_; }
    const TimingSpec &timing() const { return timing_; }

    /**
     * Attach a trace sink: registers one track for the channel bus
     * ("chNN.bus") and one per plane ("chNN.pK") under process "flash",
     * then emits an event for every array read/program/erase and bus
     * transfer. @p channel_index names the tracks.
     */
    void EnableTrace(obs::TraceSink *sink, uint32_t channel_index);

    /** Bus utilization in [0,1] over [0, now]. */
    double BusUtilization() const { return bus_.Utilization(sim_.Now()); }

    /** Accumulated bus service time (utilization numerator). */
    util::TimeNs bus_busy_ns() const { return bus_.busy_time(); }

    /** True if any plane or the bus has outstanding work. */
    bool Busy() const;

    /** Earliest time at which the whole channel will be idle. */
    util::TimeNs DrainTime() const;

  private:
    bool ValidBlock(const BlockAddr &a) const;
    bool ValidPage(const PageAddr &a) const;
    BlockMeta &Meta(const BlockAddr &a);
    sim::FifoResource &PlaneRes(uint32_t plane) { return *planes_[plane]; }

    /** Deliver @p status via @p done at bus/plane completion time @p when. */
    void CompleteAt(util::TimeNs when, OpCallback done, OpStatus status);

    /** Emit a trace event on @p track if tracing is attached. */
    void
    TraceOp(int32_t track, const char *name, util::TimeNs end,
            util::TimeNs dur) const
    {
        if (trace_ != nullptr) trace_->Complete(track, name, end - dur, dur);
    }

    sim::Simulator &sim_;
    Geometry geo_;
    TimingSpec timing_;
    ErrorModel errors_;
    util::Rng rng_;
    bool store_payloads_;
    uint32_t ecc_correctable_bits_;
    uint32_t retry_extra_bits_;

    sim::FifoResource bus_;
    std::vector<std::unique_ptr<sim::FifoResource>> planes_;
    std::vector<BlockMeta> blocks_;  ///< Indexed by FlatBlockIndex.
    std::unordered_map<uint64_t, std::vector<uint8_t>> data_;
    std::unordered_set<uint64_t> corrupted_;  ///< Flat indices of bad pages.
    bool dead_ = false;
    util::TimeNs transient_until_ = 0;
    double transient_prob_ = 0.0;
    ChannelStats stats_;

    obs::TraceSink *trace_ = nullptr;          ///< Owned by the Hub.
    int32_t bus_track_ = -1;
    std::vector<int32_t> plane_tracks_;        ///< One per plane.
};

}  // namespace sdf::nand

#endif  // SDF_NAND_CHANNEL_H
