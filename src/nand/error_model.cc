#include "nand/error_model.h"

#include <cmath>

namespace sdf::nand {

double
ErrorModel::RberAt(uint32_t erase_count) const
{
    const double wear = static_cast<double>(erase_count) /
                        static_cast<double>(endurance_cycles);
    return base_rber * (1.0 + wear_rber_factor * wear * wear);
}

uint32_t
ErrorModel::SampleBitErrors(util::Rng &rng, uint32_t page_bytes,
                            uint32_t erase_count, double rber_scale) const
{
    if (!enabled) return 0;
    const double bits = 8.0 * page_bytes;
    const double lambda = bits * RberAt(erase_count) * rber_scale;
    // Poisson approximation of Binomial(bits, rber); rber is tiny.
    if (lambda <= 0.0) return 0;
    if (lambda < 30.0) {
        // Knuth's algorithm.
        const double limit = std::exp(-lambda);
        double p = 1.0;
        uint32_t k = 0;
        do {
            ++k;
            p *= rng.NextDouble();
        } while (p > limit);
        return k - 1;
    }
    // Gaussian approximation for large lambda (deep wear-out).
    const double u1 = rng.NextDouble();
    const double u2 = rng.NextDouble();
    const double z =
        std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
    const double v = lambda + std::sqrt(lambda) * z;
    return v <= 0 ? 0 : static_cast<uint32_t>(v);
}

bool
ErrorModel::SampleWearOut(util::Rng &rng, uint32_t erase_count) const
{
    if (!enabled || erase_count <= endurance_cycles) return false;
    const double over = static_cast<double>(erase_count - endurance_cycles) /
                        static_cast<double>(endurance_cycles);
    return rng.NextBool(wearout_fail_scale * over);
}

}  // namespace sdf::nand
