/**
 * @file
 * Flash reliability model: raw bit errors that grow with wear, and
 * wear-out failures past rated endurance.
 *
 * The paper's SDF relies on per-chip BCH ECC (plus system-level replication)
 * instead of inter-channel parity; this model gives the ECC something to do
 * in tests and lets fault-injection suites exercise the bad-block paths.
 */
#ifndef SDF_NAND_ERROR_MODEL_H
#define SDF_NAND_ERROR_MODEL_H

#include <cstdint>

#include "util/rng.h"

namespace sdf::nand {

/** Parameters and sampling for flash bit errors and wear-out. */
struct ErrorModel
{
    /** Master switch; when false all operations succeed error-free. */
    bool enabled = false;

    /** Raw bit error rate of a fresh block. */
    double base_rber = 2e-8;

    /** RBER multiplier at rated endurance (quadratic growth in between). */
    double wear_rber_factor = 50.0;

    /** Rated program/erase cycles for 25 nm MLC. */
    uint32_t endurance_cycles = 3000;

    /**
     * Per-erase probability of permanent failure once past endurance,
     * scaled by how far past endurance the block is.
     */
    double wearout_fail_scale = 0.02;

    /** Raw bit error rate for a block with @p erase_count cycles. */
    double RberAt(uint32_t erase_count) const;

    /**
     * Sample the number of raw bit errors in a page of @p page_bytes read
     * from a block with @p erase_count cycles. @p rber_scale multiplies the
     * block's RBER (1.0 = nominal; fault injection elevates it per block).
     */
    uint32_t SampleBitErrors(util::Rng &rng, uint32_t page_bytes,
                             uint32_t erase_count,
                             double rber_scale = 1.0) const;

    /** Sample whether an erase at @p erase_count cycles bricks the block. */
    bool SampleWearOut(util::Rng &rng, uint32_t erase_count) const;
};

}  // namespace sdf::nand

#endif  // SDF_NAND_ERROR_MODEL_H
