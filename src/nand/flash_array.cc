#include "nand/flash_array.h"

#include <algorithm>

#include "util/assert.h"

namespace sdf::nand {

FlashArray::FlashArray(sim::Simulator &sim, const FlashArrayConfig &config)
    : sim_(sim), config_(config)
{
    config_.geometry.Validate();
    util::Rng seeder(config_.seed);
    channels_.reserve(config_.geometry.channels);
    for (uint32_t c = 0; c < config_.geometry.channels; ++c) {
        channels_.push_back(std::make_unique<Channel>(
            sim, config_.geometry, config_.timing, config_.errors,
            seeder.Fork(), config_.store_payloads,
            config_.ecc_correctable_bits,
            config_.retry_extra_correctable_bits));
    }

    // Factory defect injection: mark a random sprinkle of blocks bad.
    if (config_.factory_bad_per_mille > 0.0) {
        util::Rng defects(config_.seed ^ 0xbadb10c5ULL);
        const double p = config_.factory_bad_per_mille / 1000.0;
        for (auto &ch : channels_) {
            for (uint32_t pl = 0; pl < config_.geometry.PlanesPerChannel(); ++pl) {
                for (uint32_t b = 0; b < config_.geometry.blocks_per_plane; ++b) {
                    if (defects.NextBool(p)) ch->MarkBad(BlockAddr{pl, b});
                }
            }
        }
    }
}

ChannelStats
FlashArray::TotalStats() const
{
    ChannelStats total;
    for (const auto &ch : channels_) {
        const ChannelStats &s = ch->stats();
        total.reads += s.reads;
        total.programs += s.programs;
        total.erases += s.erases;
        total.read_bytes += s.read_bytes;
        total.programmed_bytes += s.programmed_bytes;
        total.corrected_bit_errors += s.corrected_bit_errors;
        total.uncorrectable_reads += s.uncorrectable_reads;
        total.blocks_gone_bad += s.blocks_gone_bad;
        total.retry_reads += s.retry_reads;
        total.transient_errors += s.transient_errors;
    }
    return total;
}

double
FlashArray::RawReadBandwidth() const
{
    const Geometry &g = config_.geometry;
    const TimingSpec &t = config_.timing;
    // With >= 2 planes, array reads hide behind bus transfers: bus-limited.
    const double per_page_sec = util::NsToSec(t.BusTime(g.page_size));
    const double per_channel = static_cast<double>(g.page_size) / per_page_sec;
    return per_channel * g.channels;
}

double
FlashArray::RawWriteBandwidth() const
{
    const Geometry &g = config_.geometry;
    const TimingSpec &t = config_.timing;
    const uint32_t planes = g.PlanesPerChannel();
    // Steady state: each batch of `planes` pages costs max(bus-in for the
    // batch, one program time) once the pipeline is full.
    const double bus_batch =
        util::NsToSec(t.BusTime(g.page_size)) * planes;
    const double prog = util::NsToSec(t.program_page);
    const double batch_sec = std::max(bus_batch, prog);
    const double per_channel =
        static_cast<double>(g.page_size) * planes / batch_sec;
    return per_channel * g.channels;
}

}  // namespace sdf::nand
