/**
 * @file
 * A complete flash array: the set of channels behind one device controller.
 * Both the conventional SSD baseline and the SDF build on this class.
 */
#ifndef SDF_NAND_FLASH_ARRAY_H
#define SDF_NAND_FLASH_ARRAY_H

#include <memory>
#include <vector>

#include "nand/channel.h"
#include "nand/error_model.h"
#include "nand/geometry.h"
#include "nand/timing.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace sdf::nand {

/** Construction options for a FlashArray. */
struct FlashArrayConfig
{
    Geometry geometry;
    TimingSpec timing;
    ErrorModel errors;
    /** Keep page payloads for read-back (tests); off for timing-only runs. */
    bool store_payloads = false;
    /** BCH correction budget per page (bits). */
    uint32_t ecc_correctable_bits = 40;
    /** Extra correction bits gained per read-retry voltage level. */
    uint32_t retry_extra_correctable_bits = 10;
    /** Expected factory bad blocks per thousand (defect injection). */
    double factory_bad_per_mille = 0.0;
    /** RNG seed for error injection and factory defects. */
    uint64_t seed = 1;
};

/** All flash channels of one device. */
class FlashArray
{
  public:
    explicit FlashArray(sim::Simulator &sim, const FlashArrayConfig &config);

    FlashArray(const FlashArray &) = delete;
    FlashArray &operator=(const FlashArray &) = delete;

    Channel &channel(uint32_t idx) { return *channels_[idx]; }
    const Channel &channel(uint32_t idx) const { return *channels_[idx]; }
    uint32_t channel_count() const { return static_cast<uint32_t>(channels_.size()); }

    const Geometry &geometry() const { return config_.geometry; }
    const TimingSpec &timing() const { return config_.timing; }
    const FlashArrayConfig &config() const { return config_; }

    /** Aggregate stats across all channels. */
    ChannelStats TotalStats() const;

    /**
     * Theoretical raw read bandwidth in bytes/s: every channel streaming
     * page transfers back-to-back (bus-limited).
     */
    double RawReadBandwidth() const;

    /**
     * Theoretical raw write bandwidth in bytes/s: all planes programming
     * continuously, accounting for bus/program pipelining.
     */
    double RawWriteBandwidth() const;

  private:
    sim::Simulator &sim_;
    FlashArrayConfig config_;
    std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace sdf::nand

#endif  // SDF_NAND_FLASH_ARRAY_H
