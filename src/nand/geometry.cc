#include "nand/geometry.h"

#include <cstdio>

#include "util/assert.h"

namespace sdf::nand {

void
Geometry::Validate() const
{
    if (channels == 0 || dies_per_channel == 0 || planes_per_die == 0 ||
        blocks_per_plane == 0 || pages_per_block == 0 || page_size == 0) {
        SDF_FATAL("flash geometry has a zero dimension");
    }
}

std::string
Geometry::Describe() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%u ch x %u die x %u plane x %u blk x %u pg x %s = %s raw",
                  channels, dies_per_channel, planes_per_die, blocks_per_plane,
                  pages_per_block, util::FormatBytes(page_size).c_str(),
                  util::FormatBytes(TotalBytes()).c_str());
    return buf;
}

Geometry
BaiduSdfGeometry()
{
    // Table 3: 44 channels, 2 chips/channel, 2 planes/chip, 16 GB/channel,
    // 8 KB pages, 2 MB blocks -> 2048 blocks per plane, 704 GB raw.
    return Geometry{};
}

Geometry
Intel320Geometry()
{
    // Table 1: 10 channels, 4 planes/channel, 160 GB raw. The Intel 320's
    // 25 nm MLC uses 4 KB pages (Figure 1 does 4 KB random writes).
    Geometry g;
    g.channels = 10;
    g.dies_per_channel = 2;
    g.planes_per_die = 2;
    g.blocks_per_plane = 1907;  // ~160 GB raw total
    g.pages_per_block = 512;
    g.page_size = 4 * util::kKiB;
    return g;
}

Geometry
TinyTestGeometry()
{
    Geometry g;
    g.channels = 4;
    g.dies_per_channel = 2;
    g.planes_per_die = 2;
    g.blocks_per_plane = 8;
    g.pages_per_block = 8;
    g.page_size = 4096;
    return g;
}

}  // namespace sdf::nand
