/**
 * @file
 * Physical organization of a NAND flash array.
 *
 * The default geometry mirrors the paper's Table 3: 44 channels, two 8 GB
 * Micron 25 nm MLC dies per channel, two planes per die, 8 KB pages and
 * 2 MB erase blocks — 704 GB raw for the whole device.
 */
#ifndef SDF_NAND_GEOMETRY_H
#define SDF_NAND_GEOMETRY_H

#include <cstdint>
#include <string>

#include "util/units.h"

namespace sdf::nand {

/** Static shape of a flash array; all counts per enclosing unit. */
struct Geometry
{
    uint32_t channels = 44;
    uint32_t dies_per_channel = 2;
    uint32_t planes_per_die = 2;
    uint32_t blocks_per_plane = 2048;
    uint32_t pages_per_block = 256;
    uint32_t page_size = 8 * util::kKiB;

    // ---- Derived quantities -------------------------------------------
    uint32_t PlanesPerChannel() const { return dies_per_channel * planes_per_die; }
    uint32_t BlocksPerChannel() const { return PlanesPerChannel() * blocks_per_plane; }
    uint64_t BlockBytes() const { return uint64_t{pages_per_block} * page_size; }
    uint64_t PlaneBytes() const { return uint64_t{blocks_per_plane} * BlockBytes(); }
    uint64_t ChannelBytes() const { return uint64_t{PlanesPerChannel()} * PlaneBytes(); }
    uint64_t TotalBytes() const { return uint64_t{channels} * ChannelBytes(); }
    uint64_t TotalBlocks() const { return uint64_t{channels} * BlocksPerChannel(); }
    uint64_t PagesPerChannel() const
    {
        return uint64_t{BlocksPerChannel()} * pages_per_block;
    }
    uint64_t TotalPages() const { return uint64_t{channels} * PagesPerChannel(); }

    /** Abort with SDF_FATAL if any field is zero or inconsistent. */
    void Validate() const;

    /** Human-readable description for logs and bench headers. */
    std::string Describe() const;
};

/** Geometry of the paper's SDF / Huawei Gen3 boards (Table 3): 704 GB raw. */
Geometry BaiduSdfGeometry();

/** Geometry approximating the Intel 320 (Table 1): 10 channels, 160 GB raw. */
Geometry Intel320Geometry();

/** Small geometry for unit tests: a few MB so tests can fill the device. */
Geometry TinyTestGeometry();

}  // namespace sdf::nand

#endif  // SDF_NAND_GEOMETRY_H
