/**
 * @file
 * NAND timing specifications.
 *
 * The numbers are calibrated so the aggregate device bandwidths match the
 * paper's measurements for the 44-channel board (Section 3.2): raw read
 * 1.67 GB/s (channel-bus-limited) and raw write 1.01 GB/s (program-limited
 * with four planes pipelining against the bus).
 */
#ifndef SDF_NAND_TIMING_H
#define SDF_NAND_TIMING_H

#include "util/units.h"

namespace sdf::nand {

using util::TimeNs;

/** Operation latencies and bus rates for one flash channel. */
struct TimingSpec
{
    /** Cell-to-register array read time (tR). */
    TimeNs read_page = util::UsToNs(60);
    /** Register-to-cell program time (tPROG). */
    TimeNs program_page = util::UsToNs(1400);
    /** Block erase time (tBERS); the paper quotes ~3 ms for a 2 MB block. */
    TimeNs erase_block = util::MsToNs(3.0);
    /** Channel bus transfer rate (async 40 MHz x 8 bit = 40 MB/s). */
    double bus_bytes_per_sec = 40e6;
    /** Fixed command/address overhead per bus transaction. */
    TimeNs bus_cmd_overhead = util::UsToNs(11);
    /**
     * BCH decode latency after a page's bus transfer. Defaults to 0: the
     * paper's bandwidth calibration folds decode into the pipelined bus
     * rate, but the stage exists so experiments can price it explicitly
     * (it then shows up as `bch_decode` in latency-stage attribution).
     */
    TimeNs bch_decode = 0;

    /** Bus occupancy to move @p bytes of data plus command overhead. */
    TimeNs
    BusTime(uint64_t bytes) const
    {
        return bus_cmd_overhead + util::TransferTimeNs(bytes, bus_bytes_per_sec);
    }
};

/**
 * Micron 25 nm MLC on an asynchronous 40 MHz channel — the chips used by
 * both the Baidu SDF and the Huawei Gen3 (Tables 1 and 3).
 */
inline TimingSpec
Micron25nmMlcTiming()
{
    return TimingSpec{};
}

/**
 * ONFI 2.x synchronous flash as in the low-end Intel 320 (Table 1). The
 * device is SATA-limited, so a faster bus with similar array times.
 */
inline TimingSpec
Onfi2Timing()
{
    TimingSpec t;
    t.read_page = util::UsToNs(55);
    t.program_page = util::UsToNs(1300);
    t.erase_block = util::MsToNs(3.0);
    t.bus_bytes_per_sec = 133e6;
    t.bus_cmd_overhead = util::UsToNs(8);
    return t;
}

/** Fast timing for unit tests (keeps simulated runs tiny). */
inline TimingSpec
FastTestTiming()
{
    TimingSpec t;
    t.read_page = util::UsToNs(2);
    t.program_page = util::UsToNs(10);
    t.erase_block = util::UsToNs(30);
    t.bus_bytes_per_sec = 1e9;
    t.bus_cmd_overhead = util::UsToNs(1);
    return t;
}

}  // namespace sdf::nand

#endif  // SDF_NAND_TIMING_H
