#include "nand/types.h"

namespace sdf::nand {

const char *
OpStatusName(OpStatus s)
{
    switch (s) {
      case OpStatus::kOk: return "ok";
      case OpStatus::kOkErased: return "ok-erased";
      case OpStatus::kReadUncorrectable: return "read-uncorrectable";
      case OpStatus::kWriteNotErased: return "write-not-erased";
      case OpStatus::kWriteSequenceError: return "write-sequence-error";
      case OpStatus::kBadBlock: return "bad-block";
      case OpStatus::kWornOut: return "worn-out";
      case OpStatus::kOutOfRange: return "out-of-range";
      case OpStatus::kChannelDead: return "channel-dead";
    }
    return "unknown";
}

}  // namespace sdf::nand
