/**
 * @file
 * Addressing and status types shared across the NAND substrate and the
 * controllers built on top of it.
 */
#ifndef SDF_NAND_TYPES_H
#define SDF_NAND_TYPES_H

#include <cstdint>
#include <functional>

#include "nand/geometry.h"
#include "sim/callback.h"

namespace sdf::nand {

/** Physical address of one erase block within a channel. */
struct BlockAddr
{
    uint32_t plane = 0;  ///< Flat plane index within the channel (die*planes+plane).
    uint32_t block = 0;  ///< Block index within the plane.

    bool operator==(const BlockAddr &) const = default;
};

/** Physical address of one page within a channel. */
struct PageAddr
{
    uint32_t plane = 0;
    uint32_t block = 0;
    uint32_t page = 0;  ///< Page index within the block.

    BlockAddr BlockOf() const { return BlockAddr{plane, block}; }
    bool operator==(const PageAddr &) const = default;
};

/** Flat page index within a channel, for data-store keys. */
inline uint64_t
FlatPageIndex(const Geometry &geo, const PageAddr &a)
{
    return (uint64_t{a.plane} * geo.blocks_per_plane + a.block) *
               geo.pages_per_block +
           a.page;
}

/** Flat block index within a channel. */
inline uint32_t
FlatBlockIndex(const Geometry &geo, const BlockAddr &a)
{
    return a.plane * geo.blocks_per_plane + a.block;
}

/** Inverse of FlatBlockIndex. */
inline BlockAddr
BlockFromFlat(const Geometry &geo, uint32_t flat)
{
    return BlockAddr{flat / geo.blocks_per_plane, flat % geo.blocks_per_plane};
}

/** Outcome of a NAND operation, delivered with its completion callback. */
enum class OpStatus : uint8_t
{
    kOk = 0,
    kOkErased,            ///< Read of a never-programmed page (all 0xFF).
    kReadUncorrectable,   ///< Bit errors exceeded the ECC correction budget.
    kWriteNotErased,      ///< Program targeted a page in a non-erased block.
    kWriteSequenceError,  ///< Program violated sequential-page order.
    kBadBlock,            ///< Operation on a block marked bad.
    kWornOut,             ///< Erase/program failed; block newly marked bad.
    kOutOfRange,          ///< Address outside the geometry.
    kChannelDead,         ///< Channel controller/chips dead (injected fault).
};

/** True for statuses that indicate usable completion. */
inline bool
IsOk(OpStatus s)
{
    return s == OpStatus::kOk || s == OpStatus::kOkErased;
}

/** Printable name for an OpStatus. */
const char *OpStatusName(OpStatus s);

/** Completion callback for asynchronous NAND operations. */
using OpCallback = sim::Func<void(OpStatus)>;

}  // namespace sdf::nand

#endif  // SDF_NAND_TYPES_H
