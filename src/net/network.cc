#include "net/network.h"

#include <utility>

#include "obs/hub.h"
#include "util/assert.h"
#include "util/units.h"

namespace sdf::net {

namespace {

/** Response size for a transport-generated deadline nack. */
constexpr uint64_t kDropReplyBytes = 16;

}  // namespace

const char *
RpcCodeName(RpcCode code)
{
    switch (code) {
        case RpcCode::kOk: return "ok";
        case RpcCode::kOverloaded: return "overloaded";
        case RpcCode::kDeadlineExceeded: return "deadline_exceeded";
    }
    return "unknown";
}

Network::Network(sim::Simulator &sim, const NetworkSpec &spec,
                 uint32_t clients)
    : sim_(sim), spec_(spec), server_nic_(sim), server_cpu_(sim)
{
    SDF_CHECK(clients > 0);
    client_nics_.reserve(clients);
    workers_.reserve(clients);
    for (uint32_t i = 0; i < clients; ++i) {
        client_nics_.push_back(std::make_unique<sim::FifoResource>(sim));
        workers_.push_back(std::make_unique<sim::FifoResource>(sim));
    }

    if (obs::Hub *hub = sim.hub()) {
        hub_ = hub;
        obs::MetricsRegistry &m = hub->metrics();
        metric_prefix_ = m.UniquePrefix("net");
        m.RegisterCounter(metric_prefix_ + ".messages", &messages_);
        m.RegisterCounter(metric_prefix_ + ".bytes_to_clients",
                          &bytes_to_clients_);
        m.RegisterCounter(metric_prefix_ + ".rpc_timeouts",
                          &rpc_stats_.timeouts);
        m.RegisterCounter(metric_prefix_ + ".rpc_retries",
                          &rpc_stats_.retries);
        m.RegisterCounter(metric_prefix_ + ".rpc_failures",
                          &rpc_stats_.failures);
        m.RegisterCounter(metric_prefix_ + ".rpc_late_responses",
                          &rpc_stats_.late_responses);
        m.RegisterCounter(metric_prefix_ + ".rpc_overload_replies",
                          &rpc_stats_.overload_replies);
        m.RegisterCounter(metric_prefix_ + ".rpc_deadline_drops",
                          &rpc_stats_.deadline_drops);
        m.RegisterGauge(metric_prefix_ + ".service_time_multiplier",
                        [this]() { return service_mult_; });
        m.RegisterCounter(metric_prefix_ + ".bulk_messages",
                          &bulk_messages_);
        m.RegisterCounter(metric_prefix_ + ".bulk_bytes", &bulk_bytes_);
        m.RegisterGauge(metric_prefix_ + ".server_cpu_utilization", [this]() {
            return server_cpu_.Utilization(sim_.Now());
        });
    }
}

Network::~Network()
{
    if (hub_ != nullptr) hub_->metrics().UnregisterPrefix(metric_prefix_);
}

void
Network::ClientToServer(uint32_t client, uint64_t bytes,
                        sim::Callback at_server)
{
    SDF_CHECK(client < client_nics_.size());
    ++messages_;
    const TimeNs wire =
        util::TransferTimeNs(bytes, spec_.client_nic_bytes_per_sec);
    client_nics_[client]->Submit(wire, nullptr);
    const TimeNs arrival = sim_.Now() + wire + spec_.one_way_delay;
    sim_.ScheduleAt(arrival, [this, at_server = std::move(at_server)]() mutable {
        server_cpu_.Submit(Scaled(spec_.server_per_message),
                           std::move(at_server));
    });
}

void
Network::Push(uint32_t client, uint64_t bytes, sim::Callback delivered)
{
    SDF_CHECK(client < client_nics_.size());
    ++messages_;
    const auto worker_cost = Scaled(
        spec_.server_per_message +
        static_cast<TimeNs>(spec_.worker_per_byte_ns *
                            static_cast<double>(bytes)));
    workers_[client]->Submit(worker_cost, [this, client, bytes,
                                           delivered = std::move(
                                               delivered)]() mutable {
        bytes_to_clients_ += bytes;
        const TimeNs srv_wire =
            util::TransferTimeNs(bytes, spec_.server_nic_bytes_per_sec);
        const TimeNs srv_done = server_nic_.Submit(srv_wire, nullptr);
        const TimeNs cli_wire =
            util::TransferTimeNs(bytes, spec_.client_nic_bytes_per_sec);
        client_nics_[client]->SubmitAfter(srv_done + spec_.one_way_delay,
                                          cli_wire, std::move(delivered));
    });
}

void
Network::Bulk(uint32_t client, uint64_t bytes, sim::Callback at_server,
              std::shared_ptr<obs::IoSpan> span)
{
    SDF_CHECK(client < client_nics_.size());
    ++bulk_messages_;
    bulk_bytes_ += bytes;
    const TimeNs cli_wire =
        util::TransferTimeNs(bytes, spec_.client_nic_bytes_per_sec);
    client_nics_[client]->Submit(cli_wire, nullptr);
    const TimeNs arrival = sim_.Now() + cli_wire + spec_.one_way_delay;
    if (span) span->Enter(obs::Stage::kAdmission, arrival);
    sim_.ScheduleAt(arrival, [this, bytes, at_server = std::move(at_server),
                              span = std::move(span)]() mutable {
        const TimeNs srv_wire =
            util::TransferTimeNs(bytes, spec_.server_nic_bytes_per_sec);
        server_nic_.Submit(srv_wire, [this, at_server = std::move(at_server),
                                      span = std::move(span)]() mutable {
            server_cpu_.Submit(
                Scaled(spec_.server_per_message),
                [at_server = std::move(at_server),
                 span = std::move(span), this]() mutable {
                    if (span)
                        span->Enter(obs::Stage::kServerHandle, sim_.Now());
                    at_server();
                });
        });
    });
}

void
Network::Rpc(uint32_t client, uint64_t request_bytes, Handler handler,
             sim::Callback delivered, std::shared_ptr<obs::IoSpan> span)
{
    SDF_CHECK(client < client_nics_.size());
    ++messages_;

    // The reply channel handed to the handler is a copyable std::function,
    // so the move-only delivered callback rides in a pooled shared box.
    auto boxed = sim::MakePooledShared<sim::Callback>(delivered_pool_,
                                                      std::move(delivered));

    // Request: client NIC -> wire -> server NIC -> server CPU dispatch.
    const TimeNs req_wire =
        util::TransferTimeNs(request_bytes, spec_.client_nic_bytes_per_sec);
    client_nics_[client]->Submit(req_wire, nullptr);
    const TimeNs at_server = sim_.Now() + req_wire + spec_.one_way_delay;
    // The arrival time is known now; the span clamps it monotonic.
    if (span) span->Enter(obs::Stage::kAdmission, at_server);

    sim_.ScheduleAt(at_server, [this, client, handler = std::move(handler),
                                boxed = std::move(boxed),
                                span = std::move(span)]() mutable {
        server_cpu_.Submit(Scaled(spec_.server_per_message),
                           [this, client,
                            handler = std::move(handler),
                            boxed = std::move(boxed),
                            span = std::move(span)]() mutable {
            if (span) span->Enter(obs::Stage::kServerHandle, sim_.Now());
            handler([this, client, boxed,
                     span = std::move(span)](
                        uint64_t response_bytes) mutable {
                if (span) span->Enter(obs::Stage::kRpcWire, sim_.Now());
                // Response: payload handled on the connection's serving
                // worker, then both NICs.
                const auto payload_cpu = Scaled(
                    spec_.server_per_message +
                    static_cast<TimeNs>(spec_.worker_per_byte_ns *
                                        static_cast<double>(response_bytes)));
                workers_[client]->Submit(
                    payload_cpu,
                    [this, client, response_bytes,
                     boxed = std::move(boxed)]() mutable {
                        bytes_to_clients_ += response_bytes;
                        const TimeNs srv_wire = util::TransferTimeNs(
                            response_bytes, spec_.server_nic_bytes_per_sec);
                        const util::TimeNs srv_done = server_nic_.Submit(
                            srv_wire, nullptr);
                        const TimeNs cli_wire = util::TransferTimeNs(
                            response_bytes, spec_.client_nic_bytes_per_sec);
                        client_nics_[client]->SubmitAfter(
                            srv_done + spec_.one_way_delay, cli_wire,
                            [boxed = std::move(boxed)]() { (*boxed)(); });
                    });
            });
        });
    });
}

void
Network::RpcWithRetry(uint32_t client, uint64_t request_bytes,
                      Handler handler, sim::Func<void(bool ok)> done)
{
    AttemptRpc(client, request_bytes, std::move(handler),
               sim::MakePooledShared<sim::Func<void(bool)>>(
                   done_bool_pool_, std::move(done)),
               0);
}

void
Network::AttemptRpc(uint32_t client, uint64_t request_bytes, Handler handler,
                    std::shared_ptr<sim::Func<void(bool)>> done,
                    uint32_t attempt)
{
    // Both the response and the timeout race on this record; whichever
    // fires second becomes a no-op, so no event cancellation is needed
    // and the schedule stays deterministic.
    auto settled = sim::MakePooledShared<Settle>(settle_pool_);
    Rpc(client, request_bytes, handler, [this, settled, done]() {
        if (settled->settled) {
            ++rpc_stats_.late_responses;
            return;
        }
        settled->settled = true;
        if (*done) (*done)(true);
    });
    if (spec_.rpc_timeout == 0) return;

    sim_.Schedule(spec_.rpc_timeout, [this, client, request_bytes,
                                      handler = std::move(handler), done,
                                      settled, attempt]() mutable {
        if (settled->settled) return;
        settled->settled = true;
        ++rpc_stats_.timeouts;
        if (attempt >= spec_.rpc_max_retries) {
            ++rpc_stats_.failures;
            if (*done) (*done)(false);
            return;
        }
        ++rpc_stats_.retries;
        const TimeNs backoff = spec_.rpc_backoff_base << attempt;
        sim_.Schedule(backoff, [this, client, request_bytes,
                                handler = std::move(handler), done,
                                attempt]() mutable {
            AttemptRpc(client, request_bytes, std::move(handler),
                       std::move(done), attempt + 1);
        });
    });
}

void
Network::RpcTyped(uint32_t client, uint64_t request_bytes, TimeNs deadline,
                  TypedHandler handler, sim::Func<void(RpcCode)> done,
                  std::shared_ptr<obs::IoSpan> span)
{
    AttemptTyped(client, request_bytes, deadline, std::move(handler),
                 sim::MakePooledShared<sim::Func<void(RpcCode)>>(
                     done_typed_pool_, std::move(done)),
                 0, std::move(span));
}

void
Network::AttemptTyped(uint32_t client, uint64_t request_bytes,
                      TimeNs deadline, TypedHandler handler,
                      std::shared_ptr<sim::Func<void(RpcCode)>> done,
                      uint32_t attempt, std::shared_ptr<obs::IoSpan> span)
{
    // A request already past its deadline never hits the wire.
    if (deadline != 0 && sim_.Now() >= deadline) {
        ++rpc_stats_.failures;
        sim_.Post([done]() {
            if (*done) (*done)(RpcCode::kDeadlineExceeded);
        });
        return;
    }

    // Same settled-record race as AttemptRpc; the record also carries the
    // server's typed disposition back past the size-only reply path.
    auto settled = sim::MakePooledShared<Settle>(settle_pool_);
    Handler plain = [this, deadline, handler,
                     settled](std::function<void(uint64_t)> reply) {
        if (deadline != 0 && sim_.Now() > deadline) {
            // Expired in flight or in the server queue: nack without
            // touching the handler — the work would be wasted anyway.
            ++rpc_stats_.deadline_drops;
            settled->code = RpcCode::kDeadlineExceeded;
            reply(kDropReplyBytes);
            return;
        }
        handler(deadline,
                [settled, reply = std::move(reply)](uint64_t bytes,
                                                    RpcCode c) mutable {
                    settled->code = c;
                    reply(bytes);
                });
    };
    Rpc(client, request_bytes, std::move(plain),
        [this, settled, done]() {
            if (settled->settled) {
                ++rpc_stats_.late_responses;
                return;
            }
            settled->settled = true;
            if (settled->code == RpcCode::kOverloaded)
                ++rpc_stats_.overload_replies;
            if (*done) (*done)(settled->code);
        },
        std::move(span));

    // Per-attempt timer: the usual RPC timeout, clipped to the deadline.
    TimeNs wait = spec_.rpc_timeout;
    if (deadline != 0) {
        const TimeNs remaining = deadline - sim_.Now();
        if (wait == 0 || remaining < wait) wait = remaining;
    }
    if (wait == 0) return;

    sim_.Schedule(wait, [this, client, request_bytes, deadline,
                         handler = std::move(handler), done, settled,
                         attempt]() mutable {
        if (settled->settled) return;
        settled->settled = true;
        ++rpc_stats_.timeouts;
        const TimeNs backoff = spec_.rpc_backoff_base << attempt;
        const bool budget_left = attempt < spec_.rpc_max_retries;
        const bool deadline_left =
            deadline == 0 || sim_.Now() + backoff < deadline;
        if (!budget_left || !deadline_left) {
            ++rpc_stats_.failures;
            if (*done) (*done)(RpcCode::kDeadlineExceeded);
            return;
        }
        ++rpc_stats_.retries;
        sim_.Schedule(backoff, [this, client, request_bytes, deadline,
                                handler = std::move(handler), done,
                                attempt]() mutable {
            // Retries carry no span: the first attempt owns the timeline
            // (its server side may still be running), and a settle's
            // Finish() makes any late milestone a no-op.
            AttemptTyped(client, request_bytes, deadline, std::move(handler),
                         std::move(done), attempt + 1, nullptr);
        });
    });
}

}  // namespace sdf::net
