/**
 * @file
 * Client/server network model for the production-workload experiments.
 *
 * The evaluation setup (Table 2) connects each client to the cluster switch
 * with one 10 GbE NIC and the storage server with two. We model each NIC as
 * a FIFO pipe and charge a fixed propagation/switching delay per message,
 * plus a per-message server CPU cost for request handling and payload
 * memory copies (which bounds small-batch throughput).
 */
#ifndef SDF_NET_NETWORK_H
#define SDF_NET_NETWORK_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/span.h"
#include "sim/callback.h"
#include "sim/fifo_resource.h"
#include "sim/pool.h"
#include "sim/simulator.h"

namespace sdf::obs {
class Hub;
}  // namespace sdf::obs

namespace sdf::net {

using util::TimeNs;

/** Link and processing parameters. */
struct NetworkSpec
{
    /** Client NIC bandwidth (10 GbE ~ 1.25 GB/s line rate). */
    double client_nic_bytes_per_sec = 1.18e9;
    /** Server aggregate NIC bandwidth (2 x 10 GbE). */
    double server_nic_bytes_per_sec = 2.36e9;
    /** One-way propagation + switching delay. */
    TimeNs one_way_delay = util::UsToNs(50);
    /** Shared server CPU cost per message (RPC dispatch). */
    TimeNs server_per_message = util::UsToNs(15);
    /**
     * Per-connection worker cost per payload byte (checksum + copies on
     * the slice's serving thread); bounds per-slice throughput at
     * ~1/per_byte GB/s independent of the device.
     */
    double worker_per_byte_ns = 1.3;  // ~770 MB/s per slice connection
    /**
     * Client-side RPC timeout per attempt for RpcWithRetry; 0 disables
     * timeouts (an attempt then waits forever, as plain Rpc does).
     */
    TimeNs rpc_timeout = util::MsToNs(50);
    /** Retries after the first attempt before giving up. */
    uint32_t rpc_max_retries = 3;
    /** First retry delay; doubles each further attempt (exponential). */
    TimeNs rpc_backoff_base = util::MsToNs(1);
};

/** Client-side reliability counters for RpcWithRetry / RpcTyped. */
struct RpcStats
{
    uint64_t timeouts = 0;        ///< Attempts abandoned at the deadline.
    uint64_t retries = 0;         ///< Re-issued attempts.
    uint64_t failures = 0;        ///< Requests failed after all retries.
    uint64_t late_responses = 0;  ///< Responses that raced a timeout.
    uint64_t overload_replies = 0;   ///< Typed kOverloaded responses seen.
    uint64_t deadline_drops = 0;     ///< Requests expired before dispatch.
};

/**
 * Typed outcome of an RPC. Distinguishes a server that shed the request
 * under overload (back off, don't retry — the work was never queued) from
 * a deadline that expired (the attempt may still complete server-side).
 */
enum class RpcCode : uint8_t
{
    kOk = 0,
    kOverloaded,        ///< Server refused at admission; retrying is fuel on the fire.
    kDeadlineExceeded,  ///< Deadline passed or the retry budget ran out.
};

const char *RpcCodeName(RpcCode code);

/**
 * Request/response transport between N clients and one storage server.
 *
 * The server-side handler receives a reply function; invoking it with the
 * response payload size sends the response back to the client.
 */
class Network
{
  public:
    /** Handler: process a request, then call reply(response_bytes). */
    using Handler = std::function<void(std::function<void(uint64_t)> reply)>;

    /** Typed reply channel: response size plus a disposition code. */
    using TypedReply = std::function<void(uint64_t bytes, RpcCode code)>;
    /**
     * Typed handler: receives the request's absolute deadline (0 = none)
     * so the server can shed work it cannot finish in time, and a typed
     * reply channel for admission-control nacks.
     */
    using TypedHandler = std::function<void(TimeNs deadline, TypedReply reply)>;

    Network(sim::Simulator &sim, const NetworkSpec &spec, uint32_t clients);
    ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /**
     * Send a request of @p request_bytes from @p client; the server runs
     * @p handler; @p delivered fires at the client when the full response
     * has arrived.
     *
     * When @p span is non-null the transport marks the request's
     * critical-path milestones on it: kAdmission when the request reaches
     * the server (closing the caller's kRpcWire segment), kServerHandle
     * when the dispatch CPU grants and the handler runs, and kRpcWire
     * again the moment the handler replies — so the server queue, the
     * handler, and the reply transfer each land in their own segment.
     */
    void Rpc(uint32_t client, uint64_t request_bytes, Handler handler,
             sim::Callback delivered,
             std::shared_ptr<obs::IoSpan> span = {});

    /**
     * Rpc with client-side fault tolerance: each attempt is abandoned
     * after spec.rpc_timeout and re-issued after an exponentially growing
     * backoff (spec.rpc_backoff_base << attempt), up to
     * spec.rpc_max_retries retries. @p done receives true when some
     * attempt's response arrives before its deadline, false after the
     * final attempt times out. The handler must be idempotent: an
     * attempt that already reached the server keeps running and its late
     * response is discarded.
     */
    void RpcWithRetry(uint32_t client, uint64_t request_bytes,
                      Handler handler, sim::Func<void(bool ok)> done);

    /**
     * Typed variant of RpcWithRetry with deadline propagation. The
     * absolute @p deadline (0 = none) rides with the request: the
     * transport drops it server-side once expired (counted in
     * deadline_drops), the handler sees it, and no retry is scheduled
     * that could not complete before it. Retries fire only on timeouts;
     * a typed kOverloaded reply settles immediately — a shed request
     * must not be hammered back into the queue it was shed from. @p done
     * receives kDeadlineExceeded when the retry budget or the deadline
     * runs out.
     */
    void RpcTyped(uint32_t client, uint64_t request_bytes, TimeNs deadline,
                  TypedHandler handler, sim::Func<void(RpcCode)> done,
                  std::shared_ptr<obs::IoSpan> span = {});

    /**
     * Fail-slow injection knob: scales every server-side service time
     * (CPU dispatch and per-byte worker cost) by @p m. 1.0 = healthy.
     * Wire/NIC times are unaffected — a fail-slow node's links are fine,
     * its compute is not.
     */
    void
    SetServiceTimeMultiplier(double m)
    {
        service_mult_ = m < 0.0 ? 0.0 : m;
    }
    double service_time_multiplier() const { return service_mult_; }

    /**
     * One-way client -> server message; @p at_server fires when the
     * server has dispatched it. Used with Push() to model streamed
     * responses (sub-request results flow back as they complete instead
     * of as one giant message).
     */
    void ClientToServer(uint32_t client, uint64_t bytes,
                        sim::Callback at_server);

    /** One-way server -> client payload push through the connection's
     *  worker and both NICs; @p delivered fires at the client. */
    void Push(uint32_t client, uint64_t bytes, sim::Callback delivered);

    /**
     * Bulk transfer into the server (rebalance/anti-entropy streaming):
     * charges both NICs for the full payload and one CPU dispatch, but no
     * per-item worker cost — the receiver ingests the stream in batches.
     * @p at_server fires when the payload has fully arrived. A non-null
     * @p span gets kAdmission marked at wire arrival and kServerHandle
     * when the ingest dispatch runs.
     */
    void Bulk(uint32_t client, uint64_t bytes, sim::Callback at_server,
              std::shared_ptr<obs::IoSpan> span = {});

    uint64_t messages() const { return messages_; }
    uint64_t bytes_to_clients() const { return bytes_to_clients_; }
    uint64_t bulk_messages() const { return bulk_messages_; }
    uint64_t bulk_bytes() const { return bulk_bytes_; }
    const NetworkSpec &spec() const { return spec_; }
    const RpcStats &rpc_stats() const { return rpc_stats_; }

  private:
    /** Per-attempt settle record (the response/timeout race flag plus the
     *  server's typed disposition); pooled — one per RPC attempt. */
    struct Settle
    {
        bool settled = false;
        RpcCode code = RpcCode::kOk;
    };

    void AttemptRpc(uint32_t client, uint64_t request_bytes, Handler handler,
                    std::shared_ptr<sim::Func<void(bool)>> done,
                    uint32_t attempt);
    void AttemptTyped(uint32_t client, uint64_t request_bytes,
                      TimeNs deadline, TypedHandler handler,
                      std::shared_ptr<sim::Func<void(RpcCode)>> done,
                      uint32_t attempt, std::shared_ptr<obs::IoSpan> span);
    /** Server-side service time under the fail-slow multiplier. */
    TimeNs
    Scaled(TimeNs t) const
    {
        if (service_mult_ == 1.0) return t;
        return static_cast<TimeNs>(static_cast<double>(t) * service_mult_);
    }

    sim::Simulator &sim_;
    NetworkSpec spec_;
    double service_mult_ = 1.0;
    /**
     * Hot-path allocation pools (declared before anything that can hold a
     * pooled pointer, so they are destroyed last). One pool per pooled
     * type: the RPC settle record, the delivered-callback box the reply
     * std::function shares, and the retry ladders' done-callback boxes.
     */
    sim::BlockPool settle_pool_;
    sim::BlockPool delivered_pool_;
    sim::BlockPool done_bool_pool_;
    sim::BlockPool done_typed_pool_;
    std::vector<std::unique_ptr<sim::FifoResource>> client_nics_;
    /** One serving worker per client connection (slice thread). */
    std::vector<std::unique_ptr<sim::FifoResource>> workers_;
    sim::FifoResource server_nic_;
    sim::FifoResource server_cpu_;
    uint64_t messages_ = 0;
    uint64_t bytes_to_clients_ = 0;
    uint64_t bulk_messages_ = 0;
    uint64_t bulk_bytes_ = 0;
    RpcStats rpc_stats_;

    obs::Hub *hub_ = nullptr;       ///< Metrics registration (see obs/hub.h).
    std::string metric_prefix_;
};

}  // namespace sdf::net

#endif  // SDF_NET_NETWORK_H
