#include "obs/hub.h"

#include <cstdio>

namespace sdf::obs {

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
JsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Fixed-format double rendering so same-seed runs are byte-identical.
 * %.9g round-trips every value the simulator produces (ns-derived means)
 * without locale dependence.
 */
std::string
Num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

std::string
Num(uint64_t v)
{
    return std::to_string(v);
}

std::string
Num(int64_t v)
{
    return std::to_string(v);
}

/** Emit `"key":value` pairs of @p map as one JSON object into @p out. */
template <typename Map, typename Fn>
void
JsonObject(std::string &out, const Map &map, Fn &&value)
{
    out += "{";
    bool first = true;
    for (const auto &[k, v] : map) {
        if (!first) out += ",";
        first = false;
        out += "\n    \"" + JsonEscape(k) + "\": " + value(v);
    }
    out += first ? "}" : "\n  }";
}

void
AppendHistogramStats(std::string &out, const HistogramStats &h)
{
    out += "{\"count\": " + Num(h.count);
    out += ", \"min\": " + Num(h.min);
    out += ", \"max\": " + Num(h.max);
    out += ", \"mean\": " + Num(h.mean);
    out += ", \"p50\": " + Num(h.p50);
    out += ", \"p99\": " + Num(h.p99);
    out += ", \"p999\": " + Num(h.p999);
    out += "}";
}

}  // namespace

std::string
StatsJson(const Hub &hub, const MetaMap &meta, const DerivedMap &derived)
{
    const MetricsRegistry::Snapshot snap = hub.metrics().Take();
    std::string out;
    out.reserve(4096);
    out += "{\n  \"meta\": ";
    JsonObject(out, meta, [](const std::string &v) {
        return "\"" + JsonEscape(v) + "\"";
    });
    out += ",\n  \"derived\": ";
    JsonObject(out, derived, [](double v) { return Num(v); });
    out += ",\n  \"counters\": ";
    JsonObject(out, snap.counters, [](uint64_t v) { return Num(v); });
    out += ",\n  \"gauges\": ";
    JsonObject(out, snap.gauges, [](double v) { return Num(v); });
    out += ",\n  \"histograms\": ";
    JsonObject(out, snap.histograms, [](const HistogramStats &h) {
        std::string s;
        AppendHistogramStats(s, h);
        return s;
    });

    // Per-request stage attribution. Stages with zero accumulated time are
    // omitted; the emitted means still sum to end_to_end_ns_mean exactly
    // because spans tile the request lifetime (see span.h).
    out += ",\n  \"stages\": {";
    bool first_op = true;
    for (const auto &[op, s] : hub.stages().ops()) {
        if (!first_op) out += ",";
        first_op = false;
        out += "\n    \"" + JsonEscape(op) + "\": {";
        out += "\n      \"count\": " + Num(s.count);
        out += ",\n      \"end_to_end_ns_mean\": " + Num(s.TotalMeanNs());
        const util::Histogram &h = s.end_to_end.histogram();
        out += ",\n      \"end_to_end_ns_p50\": " + Num(h.Percentile(50.0));
        out += ",\n      \"end_to_end_ns_p99\": " + Num(h.Percentile(99.0));
        out += ",\n      \"end_to_end_ns_max\": " +
               Num(static_cast<int64_t>(h.max()));
        out += ",\n      \"stage_ns_mean\": {";
        bool first_stage = true;
        for (size_t i = 0; i < kStageCount; ++i) {
            if (s.stage_sum_ns[i] == 0) continue;
            if (!first_stage) out += ",";
            first_stage = false;
            out += "\n        \"";
            out += StageName(static_cast<Stage>(i));
            out += "\": " + Num(s.StageMeanNs(static_cast<Stage>(i)));
        }
        out += first_stage ? "}" : "\n      }";
        out += "\n    }";
    }
    out += first_op ? "}" : "\n  }";
    out += "\n}\n";
    return out;
}

std::string
StatsCsv(const Hub &hub, const MetaMap &meta, const DerivedMap &derived)
{
    const MetricsRegistry::Snapshot snap = hub.metrics().Take();
    std::string out = "key,value\n";
    for (const auto &[k, v] : meta) out += "meta." + k + "," + v + "\n";
    for (const auto &[k, v] : derived) {
        out += "derived." + k + "," + Num(v) + "\n";
    }
    for (const auto &[k, v] : snap.counters) {
        out += k + "," + Num(v) + "\n";
    }
    for (const auto &[k, v] : snap.gauges) out += k + "," + Num(v) + "\n";
    for (const auto &[k, h] : snap.histograms) {
        out += k + ".count," + Num(h.count) + "\n";
        out += k + ".mean," + Num(h.mean) + "\n";
        out += k + ".p99," + Num(h.p99) + "\n";
    }
    for (const auto &[op, s] : hub.stages().ops()) {
        out += "stages." + op + ".count," + Num(s.count) + "\n";
        out += "stages." + op + ".end_to_end_ns_mean," +
               Num(s.TotalMeanNs()) + "\n";
        for (size_t i = 0; i < kStageCount; ++i) {
            if (s.stage_sum_ns[i] == 0) continue;
            out += "stages." + op + ".";
            out += StageName(static_cast<Stage>(i));
            out += "_ns_mean," + Num(s.StageMeanNs(static_cast<Stage>(i))) +
                   "\n";
        }
    }
    return out;
}

bool
WriteFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const size_t n = std::fwrite(content.data(), 1, content.size(), f);
    const bool closed = std::fclose(f) == 0;
    return n == content.size() && closed;
}

}  // namespace sdf::obs
