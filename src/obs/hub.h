/**
 * @file
 * The observability hub: one object bundling the metrics registry, the
 * per-request stage collector, and the (optional) trace sink.
 *
 * A hub is installed on the Simulator (`sim.set_hub(&hub)`) *before* the
 * components are constructed; every layer already holds a `Simulator &`,
 * so each component self-registers its metrics from its constructor and
 * unregisters in its destructor — no constructor signature in the stack
 * changes. With no hub installed (the default) every check is a null
 * pointer test and the system behaves exactly as before.
 */
#ifndef SDF_OBS_HUB_H
#define SDF_OBS_HUB_H

#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace sdf::obs {

/** Per-run observability state shared by every layer. */
class Hub
{
  public:
    Hub() = default;
    Hub(const Hub &) = delete;
    Hub &operator=(const Hub &) = delete;

    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    StageCollector &stages() { return stages_; }
    const StageCollector &stages() const { return stages_; }

    /** Null unless EnableTrace() was called (tracing is opt-in: volume). */
    TraceSink *trace() { return trace_.get(); }
    const TraceSink *trace() const { return trace_.get(); }

    /** Turn on trace collection (idempotent). */
    TraceSink &
    EnableTrace(size_t max_events = TraceSink::kDefaultMaxEvents)
    {
        if (!trace_) trace_ = std::make_unique<TraceSink>(max_events);
        return *trace_;
    }

  private:
    MetricsRegistry metrics_;
    StageCollector stages_;
    std::unique_ptr<TraceSink> trace_;
};

// ---------------------------------------------------------------------------
// Structured exporters. Output is deterministic: keys are sorted, numbers
// are printed with fixed formats, and all values derive from the simulated
// clock — two same-seed runs produce byte-identical files.
// ---------------------------------------------------------------------------

/** Free-form run description ("device" -> "sdf", ...), emitted verbatim. */
using MetaMap = std::map<std::string, std::string>;
/** Derived numeric results ("result.mbps" -> 1542.3, ...). */
using DerivedMap = std::map<std::string, double>;

/** Render the full stats document (meta + counters + stages) as JSON. */
std::string StatsJson(const Hub &hub, const MetaMap &meta,
                      const DerivedMap &derived);

/** Render the same document flattened to "path,value" CSV rows. */
std::string StatsCsv(const Hub &hub, const MetaMap &meta,
                     const DerivedMap &derived);

/** Write @p content to @p path. @return false on I/O error. */
bool WriteFile(const std::string &path, const std::string &content);

}  // namespace sdf::obs

#endif  // SDF_OBS_HUB_H
