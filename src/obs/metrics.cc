#include "obs/metrics.h"

#include <utility>

#include "util/assert.h"

namespace sdf::obs {

namespace {

/** True when @p path is @p prefix or lies under "<prefix>.". */
bool
UnderPrefix(const std::string &path, const std::string &prefix)
{
    if (path.size() < prefix.size()) return false;
    if (path.compare(0, prefix.size(), prefix) != 0) return false;
    return path.size() == prefix.size() || path[prefix.size()] == '.';
}

/** Read each source under @p prefix into @p out, then erase it. */
template <typename Map, typename Out, typename Capture>
void
RetireAndErasePrefix(Map &map, const std::string &prefix, Out &out,
                     Capture capture)
{
    for (auto it = map.lower_bound(prefix); it != map.end();) {
        if (!UnderPrefix(it->first, prefix)) break;
        out[it->first] = capture(it->second);
        it = map.erase(it);
    }
}

HistogramStats
CaptureHistogram(const MetricsRegistry::HistogramFn &fn)
{
    HistogramStats s;
    const util::Histogram *h = fn();
    if (h != nullptr) {
        s.count = h->count();
        s.min = h->min();
        s.max = h->max();
        s.mean = h->Mean();
        s.p50 = h->Percentile(50);
        s.p99 = h->Percentile(99);
        s.p999 = h->Percentile(99.9);
    }
    return s;
}

}  // namespace

RegisterStatus
MetricsRegistry::RegisterCounter(const std::string &path, CounterFn fn)
{
    if (!counters_.emplace(path, std::move(fn)).second)
        return RefuseDuplicate(path);
    return RegisterStatus::kOk;
}

RegisterStatus
MetricsRegistry::RegisterGauge(const std::string &path, GaugeFn fn)
{
    if (!gauges_.emplace(path, std::move(fn)).second)
        return RefuseDuplicate(path);
    return RegisterStatus::kOk;
}

RegisterStatus
MetricsRegistry::RegisterHistogram(const std::string &path, HistogramFn fn)
{
    if (!histograms_.emplace(path, std::move(fn)).second)
        return RefuseDuplicate(path);
    return RegisterStatus::kOk;
}

RegisterStatus
MetricsRegistry::RefuseDuplicate(const std::string &path)
{
#ifndef NDEBUG
    SDF_PANIC(("duplicate metric registration: " + path).c_str());
#endif
    (void)path;
    ++duplicates_refused_;
    return RegisterStatus::kDuplicatePath;
}

std::map<std::string, const util::Histogram *>
MetricsRegistry::LiveHistograms() const
{
    std::map<std::string, const util::Histogram *> out;
    for (const auto &[path, fn] : histograms_) {
        if (const util::Histogram *h = fn(); h != nullptr) out[path] = h;
    }
    return out;
}

void
MetricsRegistry::UnregisterPrefix(const std::string &prefix)
{
    RetireAndErasePrefix(counters_, prefix, retired_.counters,
                         [](const CounterFn &fn) { return fn(); });
    RetireAndErasePrefix(gauges_, prefix, retired_.gauges,
                         [](const GaugeFn &fn) { return fn(); });
    RetireAndErasePrefix(histograms_, prefix, retired_.histograms,
                         &CaptureHistogram);
}

std::string
MetricsRegistry::UniquePrefix(const std::string &base)
{
    const std::string scoped = Scoped(base);
    const uint32_t n = ++instance_counts_[scoped];
    if (n == 1) return scoped;
    return scoped + "." + std::to_string(n);
}

void
MetricsRegistry::PushScope(const std::string &scope)
{
    scopes_.push_back(scope);
}

void
MetricsRegistry::PopScope()
{
    scopes_.pop_back();
}

std::string
MetricsRegistry::Scoped(const std::string &path) const
{
    std::string full;
    for (const std::string &s : scopes_) {
        full += s;
        full += '.';
    }
    full += path;
    return full;
}

MetricsRegistry::Snapshot
MetricsRegistry::Take() const
{
    Snapshot snap = retired_;
    for (const auto &[path, fn] : counters_) snap.counters[path] = fn();
    for (const auto &[path, fn] : gauges_) snap.gauges[path] = fn();
    for (const auto &[path, fn] : histograms_)
        snap.histograms[path] = CaptureHistogram(fn);
    return snap;
}

}  // namespace sdf::obs
