/**
 * @file
 * Hierarchical metrics registry — the cross-layer observability seam.
 *
 * Components register *pull sources* (a lambda reading a counter they
 * already maintain) under dotted paths such as `nand.ch07.page_reads` or
 * `kv.slice0.compaction_bytes_read`. Nothing happens on the hot path:
 * registration is construction-time, and values are only read when a
 * snapshot is taken. With no hub installed the cost is exactly zero; with
 * one installed it is a handful of map insertions per component lifetime.
 *
 * Sources must outlive every snapshot that reads them; components
 * therefore unregister their prefix in their destructor (see
 * UnregisterPrefix), which makes scoped benches safe: a destroyed device
 * simply disappears from later snapshots.
 */
#ifndef SDF_OBS_METRICS_H
#define SDF_OBS_METRICS_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace sdf::obs {

/** Point-in-time summary of one registered histogram. */
struct HistogramStats
{
    uint64_t count = 0;
    int64_t min = 0;
    int64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};

/** Outcome of a Register* call. */
enum class RegisterStatus : uint8_t
{
    kOk,
    /** Path already live: the first registration is kept, the new source
     *  refused. Silent shadowing would make two components fight over one
     *  exported name; debug builds abort instead. */
    kDuplicatePath,
};

/** Registry of named metric sources, snapshot-able at any simulated time. */
class MetricsRegistry
{
  public:
    using CounterFn = std::function<uint64_t()>;
    using GaugeFn = std::function<double()>;
    using HistogramFn = std::function<const util::Histogram *()>;

    /**
     * Monotonic counter source under @p path. A path may hold one live
     * source at a time: re-registering while the first is still live is a
     * bug (two components fighting over one exported name) and fails
     * loudly — abort in debug builds, `kDuplicatePath` (first source kept)
     * in release builds. Unregistered (retired) paths may be reused.
     */
    RegisterStatus RegisterCounter(const std::string &path, CounterFn fn);

    /** Convenience: counter backed directly by a component's field. */
    RegisterStatus
    RegisterCounter(const std::string &path, const uint64_t *value)
    {
        return RegisterCounter(path, [value]() { return *value; });
    }

    /** Floating-point gauge source (ratios, utilizations). */
    RegisterStatus RegisterGauge(const std::string &path, GaugeFn fn);

    /** Histogram source (latency/size distributions). */
    RegisterStatus RegisterHistogram(const std::string &path, HistogramFn fn);

    /**
     * Remove @p prefix itself and every metric under "<prefix>.". Called by
     * component destructors so snapshots never read freed memory. The
     * sources' *final values* are read one last time and retained, so a
     * bench that scopes a device per configuration still exports its
     * counters afterwards (UniquePrefix never reuses an instance name, so
     * successive configurations do not collide).
     */
    void UnregisterPrefix(const std::string &prefix);

    /**
     * Deterministically disambiguate component instances: the first caller
     * for @p base gets "base", the next "base.2", then "base.3", ...
     * Construction order is deterministic, so names are stable across
     * same-seed runs. The active scope (PushScope) is prepended first, so
     * a device built inside scope "node3" lands at "node3.sdf".
     */
    std::string UniquePrefix(const std::string &base);

    /**
     * Nest subsequent UniquePrefix names under "<scope>." — the mechanism
     * by which a cluster node namespaces every component it builds
     * (device, block layer, slices, network) as `node<N>.*` without those
     * components knowing they live in a node. Scopes stack; instance
     * disambiguation is per scoped name, so "node0.sdf" and "node1.sdf"
     * both get the unsuffixed form.
     */
    void PushScope(const std::string &scope);

    /** Leave the innermost scope. */
    void PopScope();

    /** @p path with the active scope stack prepended. */
    std::string Scoped(const std::string &path) const;

    /** Registered source count (all kinds). */
    size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /** Duplicate registrations refused so far (release builds). */
    uint64_t duplicates_refused() const { return duplicates_refused_; }

    /**
     * Live histogram sources as raw pointers, for consumers that need the
     * full distribution rather than summary stats (the series recorder
     * diffs consecutive copies to get per-window percentiles). Sources
     * returning null are omitted. Pointers are only valid until the owning
     * component unregisters its prefix.
     */
    std::map<std::string, const util::Histogram *> LiveHistograms() const;

    /** Values of every registered source at the moment of the call. */
    struct Snapshot
    {
        std::map<std::string, uint64_t> counters;
        std::map<std::string, double> gauges;
        std::map<std::string, HistogramStats> histograms;
    };

    Snapshot Take() const;

  private:
    /** Debug: abort. Release: count and keep the first registration. */
    RegisterStatus RefuseDuplicate(const std::string &path);

    std::map<std::string, CounterFn> counters_;
    std::map<std::string, GaugeFn> gauges_;
    std::map<std::string, HistogramFn> histograms_;
    std::map<std::string, uint32_t> instance_counts_;
    std::vector<std::string> scopes_;  ///< Active PushScope stack.
    uint64_t duplicates_refused_ = 0;
    /** Final values of unregistered sources; live sources shadow them. */
    Snapshot retired_;
};

/** RAII metric scope: pushes on a (possibly null) registry, pops on exit. */
class MetricsScope
{
  public:
    MetricsScope(MetricsRegistry *m, const std::string &scope) : m_(m)
    {
        if (m_ != nullptr) m_->PushScope(scope);
    }
    ~MetricsScope()
    {
        if (m_ != nullptr) m_->PopScope();
    }
    MetricsScope(const MetricsScope &) = delete;
    MetricsScope &operator=(const MetricsScope &) = delete;

  private:
    MetricsRegistry *m_;
};

}  // namespace sdf::obs

#endif  // SDF_OBS_METRICS_H
