/**
 * @file
 * Observability CLI flags shared by every binary that runs a simulation:
 * the bench suite, sdfsim, and the examples. Header-only so a binary only
 * pays for it when it links nothing else from obs.
 *
 * Flags: --stats-json=<path>, --stats-csv=<path>, --trace=<path>,
 * --trace-limit=<n>, --stats-series=<path> and --series-interval-ms=<f>.
 * When any export is requested the helper owns an obs::Hub ready to
 * install on a Simulator (before device construction); otherwise hub()
 * stays null and the run is unchanged. Workloads with a time axis call
 * StartSeries(sim, label, horizon) once their load phase begins; the call
 * is inert unless --stats-series was given.
 */
#ifndef SDF_OBS_OBS_CLI_H
#define SDF_OBS_OBS_CLI_H

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/hub.h"
#include "obs/series.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace sdf::obs {

/** Parses the obs flags and performs the end-of-run exports. */
class ObsCli
{
  public:
    /** One --key=value pair; @return true when it was an obs flag. */
    bool
    TryFlag(const std::string &key, const std::string &val)
    {
        if (key == "--stats-json") stats_json_ = val;
        else if (key == "--stats-csv") stats_csv_ = val;
        else if (key == "--trace") trace_path_ = val;
        else if (key == "--trace-limit") trace_limit_ = std::stoull(val);
        else if (key == "--stats-series") series_path_ = val;
        else if (key == "--series-interval-ms")
            series_interval_ = util::MsToNs(std::stod(val));
        else if (key == "--engine") {
            // Selects the event-queue implementation process-wide; every
            // default-constructed Simulator picks it up. Deliberately NOT
            // recorded in the exported meta: same-seed runs on either
            // engine must produce byte-identical documents (DESIGN.md §14).
            sim::EngineKind kind;
            if (!sim::ParseEngineName(val.c_str(), &kind)) {
                std::fprintf(stderr,
                             "--engine=%s: unknown engine "
                             "(heap|calendar)\n",
                             val.c_str());
                std::exit(2);
            }
            sim::SetDefaultEngine(kind);
        }
        else return false;
        return true;
    }

    /** Consume recognised "--key=value" args, compacting argv in place. */
    void
    ParseAndStrip(int &argc, char **argv)
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto eq = arg.find('=');
            const std::string key = arg.substr(0, eq);
            const std::string val =
                eq == std::string::npos ? "" : arg.substr(eq + 1);
            if (!TryFlag(key, val)) argv[out++] = argv[i];
        }
        argc = out;
    }

    bool
    enabled() const
    {
        return !stats_json_.empty() || !stats_csv_.empty() ||
               !trace_path_.empty() || !series_path_.empty();
    }

    /** The hub to install with sim.set_hub(), or null when disabled. */
    obs::Hub *
    hub()
    {
        if (!enabled()) return nullptr;
        if (!hub_) {
            hub_ = std::make_unique<obs::Hub>();
            if (!trace_path_.empty()) hub_->EnableTrace(trace_limit_);
            // Registered whether or not tracing is on (it reads 0 when
            // off) so a --trace run exports the same stats document as a
            // run without it.
            obs::Hub *h = hub_.get();
            h->metrics().RegisterCounter("obs.trace.dropped", [h]() {
                return h->trace() != nullptr ? h->trace()->dropped() : 0;
            });
        }
        return hub_.get();
    }

    /**
     * Begin the windowed time series for the load phase starting now and
     * lasting @p horizon. No-op unless --stats-series was requested. Safe
     * to call once per run in a multi-run bench; each call opens a new
     * labelled segment in the exported document.
     */
    void
    StartSeries(sim::Simulator &sim, const std::string &label,
                util::TimeNs horizon)
    {
        if (series_path_.empty()) return;
        series_.Start(sim, hub()->metrics(), label, series_interval_,
                      horizon);
    }

    void AddMeta(const std::string &k, const std::string &v) { meta_[k] = v; }
    void AddDerived(const std::string &k, double v) { derived_[k] = v; }

    /** Write the requested files. @return 0 on success. */
    int
    Export()
    {
        if (!enabled()) return 0;
        int rc = 0;
        obs::Hub &h = *hub();
        if (!stats_json_.empty() &&
            !obs::WriteFile(stats_json_, obs::StatsJson(h, meta_, derived_))) {
            std::fprintf(stderr, "cannot write %s\n", stats_json_.c_str());
            rc = 1;
        }
        if (!stats_csv_.empty() &&
            !obs::WriteFile(stats_csv_, obs::StatsCsv(h, meta_, derived_))) {
            std::fprintf(stderr, "cannot write %s\n", stats_csv_.c_str());
            rc = 1;
        }
        if (!trace_path_.empty()) {
            if (!h.trace()->WriteJson(trace_path_)) {
                std::fprintf(stderr, "cannot write %s\n", trace_path_.c_str());
                rc = 1;
            } else if (h.trace()->dropped() > 0) {
                std::fprintf(stderr,
                             "trace: dropped %llu events past the "
                             "--trace-limit cap\n",
                             static_cast<unsigned long long>(
                                 h.trace()->dropped()));
            }
        }
        if (!series_path_.empty() && !series_.WriteJson(series_path_)) {
            std::fprintf(stderr, "cannot write %s\n", series_path_.c_str());
            rc = 1;
        }
        return rc;
    }

    static const char *
    HelpText()
    {
        return "observability:\n"
               "  --stats-json=<file>  export metrics+stage stats as JSON\n"
               "  --stats-csv=<file>   same document as key,value CSV\n"
               "  --trace=<file>       Perfetto/chrome://tracing JSON trace\n"
               "  --trace-limit=<n>    trace event cap (default 1048576);\n"
               "                       overflow is counted, not silent\n"
               "  --stats-series=<file>      windowed time-series JSON\n"
               "  --series-interval-ms=<f>   window width (default 50 ms)\n"
               "  --engine=<heap|calendar>   event-queue engine (default\n"
               "                             calendar; heap = reference)\n";
    }

  private:
    std::string stats_json_;
    std::string stats_csv_;
    std::string trace_path_;
    size_t trace_limit_ = obs::TraceSink::kDefaultMaxEvents;
    std::string series_path_;
    util::TimeNs series_interval_ = util::MsToNs(50.0);
    obs::SeriesRecorder series_;
    std::unique_ptr<obs::Hub> hub_;
    obs::MetaMap meta_;
    obs::DerivedMap derived_;
};

/**
 * Process-wide ObsCli. main() calls ParseAndStrip(argc, argv) on it, every
 * Simulator creation site calls BindObs(sim), and main() ends with
 * GlobalObs().Export(). With no obs flags on the command line all of it
 * is inert.
 */
inline ObsCli &
GlobalObs()
{
    static ObsCli cli;
    return cli;
}

/** Install the global hub (when exports were requested) on @p sim. */
inline void
BindObs(sim::Simulator &sim)
{
    if (obs::Hub *hub = GlobalObs().hub()) sim.set_hub(hub);
}

}  // namespace sdf::obs

#endif  // SDF_OBS_OBS_CLI_H
