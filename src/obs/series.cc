#include "obs/series.h"

#include <algorithm>
#include <cstdio>

namespace sdf::obs {

namespace {

/** Same fixed format as the stats exporter: byte-identical across runs. */
std::string
Num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

HistogramStats
StatsOf(const util::Histogram &h)
{
    HistogramStats s;
    s.count = h.count();
    s.min = h.min();
    s.max = h.max();
    s.mean = h.Mean();
    s.p50 = h.Percentile(50);
    s.p99 = h.Percentile(99);
    s.p999 = h.Percentile(99.9);
    return s;
}

}  // namespace

void
SeriesRecorder::Start(sim::Simulator &sim, MetricsRegistry &metrics,
                      const std::string &label, TimeNs interval,
                      TimeNs horizon)
{
    if (interval <= 0 || horizon <= 0) return;
    Segment seg;
    seg.label = label;
    seg.interval = interval;
    segments_.push_back(std::move(seg));

    window_start_ = sim.Now();
    prev_ = metrics.Take();
    prev_hists_.clear();
    for (const auto &[path, h] : metrics.LiveHistograms())
        prev_hists_.emplace(path, *h);

    ScheduleNext(sim, metrics, segments_.size() - 1,
                 sim.Now() + horizon);
}

void
SeriesRecorder::ScheduleNext(sim::Simulator &sim, MetricsRegistry &metrics,
                             size_t segment, TimeNs horizon_end)
{
    const TimeNs interval = segments_[segment].interval;
    const TimeNs when = std::min(window_start_ + interval, horizon_end);
    sim.ScheduleAt(when, [this, &sim, &metrics, segment, horizon_end]() {
        Tick(sim, metrics, segment, horizon_end);
    });
}

void
SeriesRecorder::Tick(sim::Simulator &sim, MetricsRegistry &metrics,
                     size_t segment, TimeNs horizon_end)
{
    // A Start() for a newer segment supersedes this chain (bench binaries
    // run several configurations; only the latest segment ticks).
    if (segment + 1 != segments_.size()) return;

    const TimeNs now = sim.Now();
    Window w;
    w.start_ns = window_start_;
    w.end_ns = now;

    const MetricsRegistry::Snapshot snap = metrics.Take();
    for (const auto &[path, v] : snap.counters) {
        const auto it = prev_.counters.find(path);
        const uint64_t before = it == prev_.counters.end() ? 0 : it->second;
        if (v > before) w.counters[path] = v - before;
    }
    w.gauges = snap.gauges;

    std::map<std::string, util::Histogram> cur_hists;
    for (const auto &[path, h] : metrics.LiveHistograms())
        cur_hists.emplace(path, *h);
    for (const auto &[path, cur] : cur_hists) {
        const auto it = prev_hists_.find(path);
        const util::Histogram d = it == prev_hists_.end()
                                      ? cur
                                      : util::Histogram::Delta(it->second, cur);
        if (d.count() > 0) w.histograms[path] = StatsOf(d);
    }

    segments_[segment].windows.push_back(std::move(w));
    prev_ = snap;
    prev_hists_ = std::move(cur_hists);
    window_start_ = now;
    if (now < horizon_end) ScheduleNext(sim, metrics, segment, horizon_end);
}

std::string
SeriesRecorder::ToJson() const
{
    std::string out;
    out.reserve(1024 + window_count() * 512);
    out += "{\n \"series\": [";
    bool first_seg = true;
    for (const Segment &seg : segments_) {
        if (!first_seg) out += ",";
        first_seg = false;
        out += "\n  {\n   \"label\": \"" + seg.label + "\",";
        out += "\n   \"interval_ns\": " + std::to_string(seg.interval) + ",";
        out += "\n   \"windows\": [";
        bool first_win = true;
        for (const Window &w : seg.windows) {
            if (!first_win) out += ",";
            first_win = false;
            out += "\n    {\"start_ns\": " + std::to_string(w.start_ns);
            out += ", \"end_ns\": " + std::to_string(w.end_ns);
            out += ",\n     \"counters\": {";
            bool first = true;
            for (const auto &[k, v] : w.counters) {
                if (!first) out += ", ";
                first = false;
                out += "\"" + k + "\": " + std::to_string(v);
            }
            out += "},\n     \"gauges\": {";
            first = true;
            for (const auto &[k, v] : w.gauges) {
                if (!first) out += ", ";
                first = false;
                out += "\"" + k + "\": " + Num(v);
            }
            out += "},\n     \"histograms\": {";
            first = true;
            for (const auto &[k, h] : w.histograms) {
                if (!first) out += ", ";
                first = false;
                out += "\"" + k + "\": {\"count\": " +
                       std::to_string(h.count);
                out += ", \"mean\": " + Num(h.mean);
                out += ", \"p50\": " + Num(h.p50);
                out += ", \"p99\": " + Num(h.p99);
                out += ", \"p999\": " + Num(h.p999);
                out += "}";
            }
            out += "}}";
        }
        out += first_win ? "]" : "\n   ]";
        out += "\n  }";
    }
    out += first_seg ? "]" : "\n ]";
    out += "\n}\n";
    return out;
}

bool
SeriesRecorder::WriteJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const std::string json = ToJson();
    const size_t n = std::fwrite(json.data(), 1, json.size(), f);
    const bool closed = std::fclose(f) == 0;
    return n == json.size() && closed;
}

}  // namespace sdf::obs
