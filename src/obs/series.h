/**
 * @file
 * Windowed time-series metrics on the simulated clock.
 *
 * An end-of-run stats export smears a storm, a breaker trip, and the
 * recovery after it into one aggregate. The SeriesRecorder answers
 * "when": started on a Simulator with a fixed interval and a horizon, it
 * snapshots the metrics registry at every window boundary and stores
 * per-window *deltas* — counter increments, gauge values at the window's
 * end, and windowed histogram percentiles obtained by diffing consecutive
 * copies of each live histogram (util::Histogram::Delta). A storm's shed
 * burst therefore lands in exactly the windows it happened in, and a
 * breaker trip shows as the `cluster.breaker.open_nodes` gauge stepping
 * up in one window and back down later.
 *
 * The tick chain is horizon-bounded: the recorder schedules the next tick
 * only while inside [start, start + horizon], so a drained simulator
 * still reaches queue-empty and `sim.Run()` terminates. Everything is
 * driven by the simulated clock and rendered with fixed number formats,
 * so same-seed runs export byte-identical series.
 */
#ifndef SDF_OBS_SERIES_H
#define SDF_OBS_SERIES_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/histogram.h"
#include "util/units.h"

namespace sdf::obs {

using util::TimeNs;

/** Records per-window metric deltas; one segment per Start() call. */
class SeriesRecorder
{
  public:
    /** One window's worth of change, [start_ns, end_ns) on the sim clock. */
    struct Window
    {
        TimeNs start_ns = 0;
        TimeNs end_ns = 0;
        /** Counter increments inside the window (zero deltas omitted). */
        std::map<std::string, uint64_t> counters;
        /** Gauge values sampled at the window's end. */
        std::map<std::string, double> gauges;
        /** Stats of the samples recorded inside the window only. */
        std::map<std::string, HistogramStats> histograms;
    };

    /** All windows of one Start() call (one run / one labelled phase). */
    struct Segment
    {
        std::string label;
        TimeNs interval = 0;
        std::vector<Window> windows;
    };

    /**
     * Begin a new segment: tick every @p interval from now until
     * `now + horizon` (the final window is clipped to the horizon).
     * @p sim and @p metrics must outlive the run. Calling Start again
     * (the bench binaries run several configurations per process) closes
     * the previous segment and opens a new one.
     */
    void Start(sim::Simulator &sim, MetricsRegistry &metrics,
               const std::string &label, TimeNs interval, TimeNs horizon);

    const std::vector<Segment> &segments() const { return segments_; }

    size_t
    window_count() const
    {
        size_t n = 0;
        for (const Segment &s : segments_) n += s.windows.size();
        return n;
    }

    /** Deterministic JSON document (`{"series": [...]}`). */
    std::string ToJson() const;

    /** Serialize to @p path. @return false on I/O error. */
    bool WriteJson(const std::string &path) const;

  private:
    void Tick(sim::Simulator &sim, MetricsRegistry &metrics, size_t segment,
              TimeNs horizon_end);
    void ScheduleNext(sim::Simulator &sim, MetricsRegistry &metrics,
                      size_t segment, TimeNs horizon_end);

    std::vector<Segment> segments_;
    // State of the segment currently ticking (one at a time).
    MetricsRegistry::Snapshot prev_;
    std::map<std::string, util::Histogram> prev_hists_;
    TimeNs window_start_ = 0;
};

}  // namespace sdf::obs

#endif  // SDF_OBS_SERIES_H
