#include "obs/span.h"

namespace sdf::obs {

const char *
StageName(Stage s)
{
    switch (s) {
      case Stage::kHostIssue: return "host_issue";
      case Stage::kQueue: return "queue";
      case Stage::kLinkTransfer: return "link_transfer";
      case Stage::kFlashOp: return "flash_op";
      case Stage::kChannelBus: return "channel_bus";
      case Stage::kBchDecode: return "bch_decode";
      case Stage::kRetry: return "retry";
      case Stage::kEraseOp: return "erase_op";
      case Stage::kInterrupt: return "interrupt";
      case Stage::kHostComplete: return "host_complete";
      case Stage::kDevice: return "device";
      case Stage::kClientQueue: return "client_queue";
      case Stage::kRpcWire: return "rpc_wire";
      case Stage::kAdmission: return "admission";
      case Stage::kServerHandle: return "server_handle";
      case Stage::kStorage: return "storage";
      case Stage::kHedgeWait: return "hedge_wait";
      case Stage::kCount: break;
    }
    return "?";
}

void
StageCollector::Record(const std::string &op, const IoSpan &span)
{
    OpStats &s = ops_[op];
    ++s.count;
    for (size_t i = 0; i < kStageCount; ++i) {
        s.stage_sum_ns[i] +=
            static_cast<uint64_t>(span.stage_ns(static_cast<Stage>(i)));
    }
    s.total_sum_ns += static_cast<uint64_t>(span.total_ns());
    s.end_to_end.Record(span.total_ns());
}

}  // namespace sdf::obs
