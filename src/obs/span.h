/**
 * @file
 * Per-request latency-stage attribution.
 *
 * Each instrumented I/O carries an IoSpan. Components mark *milestones* on
 * it — "the request is now waiting in the engine queue", "the flash phase
 * started", "the completion interrupt is pending" — and the span turns
 * consecutive milestones into disjoint time segments, one per Stage. By
 * construction the segments tile the request's lifetime exactly, so
 *
 *     sum over stages of stage_ns(s)  ==  total_ns()
 *
 * holds for every span (the property `tools/validate_stats.py` checks on
 * exported stats). That is what lets a bench print "where did the
 * microseconds go": the paper's Figure 8 write spikes show up as kEraseOp
 * time, and Table 4's read-vs-write gaps split into queue / link / flash.
 *
 * Serial request flows (every SDF request is serial at the orchestration
 * level: engine queue -> DMA -> flash phase -> interrupt -> host) get a
 * faithful breakdown. Phases that are internally parallel (a multi-page
 * read pipelining array reads, bus transfers, and DMA) are attributed to
 * the stage of the phase's critical path (kFlashOp up to the last flash
 * page, then kLinkTransfer for the DMA tail); single-page reads get the
 * full fine-grained bus/decode/retry split from the channel itself.
 */
#ifndef SDF_OBS_SPAN_H
#define SDF_OBS_SPAN_H

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "util/latency_recorder.h"
#include "util/units.h"

namespace sdf::obs {

using util::TimeNs;

/** Stage taxonomy for request-latency attribution (DESIGN.md §9). */
enum class Stage : uint8_t
{
    kHostIssue,     ///< Host software stack, submission side.
    kQueue,         ///< Waiting: engine FIFO, plane/bus contention.
    kLinkTransfer,  ///< Host-link DMA (write upload / read DMA tail).
    kFlashOp,       ///< Array read/program phase (incl. pipelined bus).
    kChannelBus,    ///< Channel bus transfer (single-page reads).
    kBchDecode,     ///< BCH decode after the bus transfer.
    kRetry,         ///< Read-retry ladder re-senses.
    kEraseOp,       ///< Explicit erase on the write critical path.
    kInterrupt,     ///< Completion waiting for the coalesced interrupt.
    kHostComplete,  ///< Host software stack, completion side.
    kDevice,        ///< Uninstrumented device interior (conventional SSD).
    // Cluster-level stages: one request's life across RPC hops, marked by
    // the client front door, the transport, and the storage node. They tile
    // the client-observed end-to-end latency the same way the device stages
    // above tile a device request (DESIGN.md §13).
    kClientQueue,   ///< Waiting in the client submit queue / window.
    kRpcWire,       ///< On the wire: request + reply NIC/link transfer.
    kAdmission,     ///< Server-side dispatch queue up to the admission gate.
    kServerHandle,  ///< Server handler bookkeeping + fail-slow deferral.
    kStorage,       ///< The node-local storage operation itself.
    kHedgeWait,     ///< Parent request waiting on a launched hedge.
    kCount
};

inline constexpr size_t kStageCount = static_cast<size_t>(Stage::kCount);

/** Stable lower-case name used in exports ("host_issue", "queue", ...). */
const char *StageName(Stage s);

/** One request's stage timeline. */
class IoSpan
{
  public:
    /** Begin the span at @p now in Stage::kHostIssue. */
    void
    Start(TimeNs now)
    {
        start_ = last_ = now;
        current_ = Stage::kHostIssue;
        active_ = true;
        finished_ = false;
        acc_.fill(0);
    }

    /**
     * Milestone: close the current stage's segment at @p t and continue in
     * @p s. Timestamps may be "known future" times (a channel computes its
     * bus schedule at submit time); they are clamped to be monotonic, so a
     * late marker can never make a segment negative.
     */
    void
    Enter(Stage s, TimeNs t)
    {
        if (!active_ || finished_) return;
        if (t < last_) t = last_;
        acc_[static_cast<size_t>(current_)] += t - last_;
        last_ = t;
        current_ = s;
    }

    /** Close the final segment at @p now; the span stops accumulating. */
    void
    Finish(TimeNs now)
    {
        if (!active_ || finished_) return;
        Enter(current_, now);
        finished_ = true;
    }

    TimeNs stage_ns(Stage s) const { return acc_[static_cast<size_t>(s)]; }
    TimeNs total_ns() const { return last_ - start_; }
    TimeNs start_ns() const { return start_; }
    bool finished() const { return finished_; }

  private:
    TimeNs start_ = 0;
    TimeNs last_ = 0;
    Stage current_ = Stage::kHostIssue;
    bool active_ = false;
    bool finished_ = false;
    std::array<TimeNs, kStageCount> acc_{};
};

/**
 * Aggregates finished spans per operation class ("read", "write", ...):
 * per-stage time sums plus an end-to-end latency histogram. Because each
 * span's segments tile its lifetime, `sum_s stage_sum_ns[s] ==` the sum of
 * end-to-end latencies — additivity survives aggregation exactly.
 */
class StageCollector
{
  public:
    struct OpStats
    {
        uint64_t count = 0;
        std::array<uint64_t, kStageCount> stage_sum_ns{};
        uint64_t total_sum_ns = 0;
        util::LatencyRecorder end_to_end{false};

        double
        StageMeanNs(Stage s) const
        {
            if (count == 0) return 0.0;
            return static_cast<double>(
                       stage_sum_ns[static_cast<size_t>(s)]) /
                   static_cast<double>(count);
        }

        double
        TotalMeanNs() const
        {
            if (count == 0) return 0.0;
            return static_cast<double>(total_sum_ns) /
                   static_cast<double>(count);
        }
    };

    /** Fold a finished span into @p op's aggregate. */
    void Record(const std::string &op, const IoSpan &span);

    const std::map<std::string, OpStats> &ops() const { return ops_; }
    bool empty() const { return ops_.empty(); }

  private:
    std::map<std::string, OpStats> ops_;
};

}  // namespace sdf::obs

#endif  // SDF_OBS_SPAN_H
