#include "obs/trace.h"

#include <cstdio>
#include <set>

namespace sdf::obs {

int32_t
TraceSink::RegisterTrack(const std::string &process, const std::string &thread)
{
    const std::string key = process + "/" + thread;
    if (auto it = track_by_name_.find(key); it != track_by_name_.end()) {
        return it->second;
    }
    auto [pit, inserted] =
        pids_.emplace(process, static_cast<uint32_t>(pids_.size() + 1));
    (void)inserted;
    Track t;
    t.process = process;
    t.thread = thread;
    t.pid = pit->second;
    t.tid = static_cast<uint32_t>(tracks_.size() + 1);
    tracks_.push_back(t);
    const auto idx = static_cast<int32_t>(tracks_.size() - 1);
    track_by_name_[key] = idx;
    return idx;
}

namespace {

/** Append @p ns as fractional microseconds (trace-event "ts"/"dur" unit). */
void
AppendUs(std::string &out, TimeNs ns)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    out += buf;
}

}  // namespace

std::string
TraceSink::ToJson() const
{
    std::string out;
    out.reserve(128 + events_.size() * 96 + tracks_.size() * 160);
    out += "{\"displayTimeUnit\":\"ns\",\"dropped_events\":";
    out += std::to_string(dropped_);
    out += ",\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&]() {
        if (!first) out += ",\n";
        first = false;
    };

    // Metadata: name each process once and each thread track.
    std::set<uint32_t> named_pids;
    for (const Track &t : tracks_) {
        if (named_pids.insert(t.pid).second) {
            sep();
            out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
            out += std::to_string(t.pid);
            out += ",\"tid\":0,\"args\":{\"name\":\"" + t.process + "\"}}";
        }
        sep();
        out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
        out += std::to_string(t.pid);
        out += ",\"tid\":" + std::to_string(t.tid);
        out += ",\"args\":{\"name\":\"" + t.thread + "\"}}";
    }

    for (const Event &e : events_) {
        const Track &t = tracks_[static_cast<size_t>(e.track)];
        sep();
        out += "{\"ph\":\"X\",\"name\":\"";
        out += e.name;
        out += "\",\"cat\":\"";
        out += t.process;
        out += "\",\"pid\":" + std::to_string(t.pid);
        out += ",\"tid\":" + std::to_string(t.tid);
        out += ",\"ts\":";
        AppendUs(out, e.start);
        out += ",\"dur\":";
        AppendUs(out, e.dur);
        if (e.trace_id != 0) {
            out += ",\"args\":{\"trace\":" + std::to_string(e.trace_id) + "}";
        }
        out += "}";
    }
    out += "\n]}\n";
    return out;
}

bool
TraceSink::WriteJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const std::string json = ToJson();
    const size_t n = std::fwrite(json.data(), 1, json.size(), f);
    const bool closed = std::fclose(f) == 0;
    return n == json.size() && closed;
}

}  // namespace sdf::obs
