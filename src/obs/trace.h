/**
 * @file
 * Chrome-trace-event / Perfetto-compatible trace sink.
 *
 * Events are recorded on the *simulated* clock and dumped as the JSON
 * object format (`{"traceEvents": [...]}`) that `chrome://tracing` and
 * ui.perfetto.dev load directly. Tracks map onto the trace model as
 * process ("flash", "host") / thread ("ch07.bus", "ch07.p2", "req.ch07")
 * pairs with `process_name`/`thread_name` metadata, so a 44-channel run
 * shows one lane per channel resource: erase stalls, bus convoys, and the
 * read/write overlap the paper's Figure 8 explains become visible.
 *
 * Event names must be string literals (or otherwise outlive the sink);
 * the sink stores the pointer, not a copy. A configurable cap bounds
 * memory; events beyond it are counted as dropped rather than recorded.
 */
#ifndef SDF_OBS_TRACE_H
#define SDF_OBS_TRACE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/units.h"

namespace sdf::obs {

using util::TimeNs;

/** Buffering trace-event sink; write-once at end of run. */
class TraceSink
{
  public:
    static constexpr size_t kDefaultMaxEvents = 1u << 20;

    explicit TraceSink(size_t max_events = kDefaultMaxEvents)
        : max_events_(max_events)
    {
    }

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /**
     * Create (or look up) the track named @p process / @p thread and return
     * its handle. Tracks are cheap; register one per channel resource.
     */
    int32_t RegisterTrack(const std::string &process,
                          const std::string &thread);

    struct Track
    {
        std::string process;
        std::string thread;
        uint32_t pid;
        uint32_t tid;
    };

    struct Event
    {
        const char *name;
        TimeNs start;
        TimeNs dur;
        int32_t track;
        uint64_t trace_id;  ///< Distributed-request id; 0 = untagged.
    };

    /**
     * Record a complete ("X") event of @p dur starting at @p start. A
     * nonzero @p trace_id tags the event with its distributed request
     * (exported as `args.trace`), linking e.g. a hedge duplicate on one
     * node's track to its parent on the client track.
     */
    void
    Complete(int32_t track, const char *name, TimeNs start, TimeNs dur,
             uint64_t trace_id = 0)
    {
        if (events_.size() >= max_events_) {
            ++dropped_;
            return;
        }
        events_.push_back(Event{name, start, dur, track, trace_id});
    }

    /** Serialize all events to @p path. @return false on I/O error. */
    bool WriteJson(const std::string &path) const;

    /** Serialize to a string (tests, in-memory validation). */
    std::string ToJson() const;

    size_t events() const { return events_.size(); }
    size_t tracks() const { return tracks_.size(); }
    uint64_t dropped() const { return dropped_; }

    /** Recorded events in order (tests: trace-id linkage assertions). */
    const std::vector<Event> &event_list() const { return events_; }

    /** Track metadata for a handle returned by RegisterTrack. */
    const Track &
    track_info(int32_t track) const
    {
        return tracks_[static_cast<size_t>(track)];
    }

  private:
    std::vector<Track> tracks_;
    std::map<std::string, uint32_t> pids_;           ///< process -> pid.
    std::map<std::string, int32_t> track_by_name_;   ///< "proc/thread" -> idx.
    std::vector<Event> events_;
    size_t max_events_;
    uint64_t dropped_ = 0;
};

}  // namespace sdf::obs

#endif  // SDF_OBS_TRACE_H
