/**
 * @file
 * Dapper-style trace context propagated across RPC hops.
 *
 * A TraceContext is minted once per client-visible operation (a Get, a
 * Put, a coalesced batch) by the front door and carried by value inside
 * `kv::OpContext` through the router, the replication engine, the RPC
 * envelope, and the storage node's handler. Every trace event a layer
 * emits for that operation tags the same `trace_id`, which is how a
 * hedged read's duplicate attempt on a second node is linked back to its
 * parent request when the Perfetto export is inspected.
 *
 * Ids are allocated from a per-client monotonic counter, so they are
 * deterministic for a fixed seed: two same-seed runs assign the same id
 * to the same operation, and trace exports stay byte-identical.
 */
#ifndef SDF_OBS_TRACE_CONTEXT_H
#define SDF_OBS_TRACE_CONTEXT_H

#include <cstdint>

namespace sdf::obs {

/** Identity of one distributed request; 0 means "not traced". */
struct TraceContext
{
    uint64_t trace_id = 0;     ///< Request identity across all hops.
    uint64_t parent_span = 0;  ///< Parent op id (hedges: the primary's id).

    bool valid() const { return trace_id != 0; }
};

}  // namespace sdf::obs

#endif  // SDF_OBS_TRACE_CONTEXT_H
