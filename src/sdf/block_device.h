/**
 * @file
 * The pluggable device seam: everything above the device (block layer,
 * patch storage, benches, the cluster) talks to this interface, never to a
 * concrete device class.
 *
 * The interface is deliberately shaped like the SDF contract — (channel,
 * unit) addressing, asymmetric read/write units, explicit erase — because
 * that is the narrowest interface the paper's stack needs. A conventional
 * SSD adapts *into* this shape (see ssd::SsdBlockDevice): it carves its
 * flat logical space into synthetic channels and units and reports
 * `explicit_erase = false`, since its erase is a trim hint rather than a
 * physical erasure the host controls.
 */
#ifndef SDF_SDF_BLOCK_DEVICE_H
#define SDF_SDF_BLOCK_DEVICE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sdf/io_status.h"

namespace sdf::obs {
class IoSpan;
}  // namespace sdf::obs

namespace sdf::core {

/** Lifecycle of one logical write unit within a channel. */
enum class UnitState : uint8_t
{
    kUnwritten,  ///< Never erased or written; no physical mapping yet.
    kErased,     ///< Erased and ready for a full-unit write.
    kWritten,    ///< Holds data; must be erased before rewriting.
    kDead,       ///< Lost to wear-out with no spare left.
};

/**
 * Capability descriptor: the static geometry and contract of one device.
 * Filled once at construction; everything here is invariant for the
 * device's lifetime (channel death is dynamic state, see ChannelDead()).
 */
struct DeviceCaps
{
    std::string name;                ///< Human-readable model name.
    uint32_t channels = 0;           ///< Independently schedulable channels.
    uint32_t units_per_channel = 0;  ///< Logical write/erase units per channel.
    uint64_t unit_bytes = 0;         ///< Bytes in one write/erase unit.
    uint32_t read_unit_bytes = 0;    ///< Bytes in one read unit (one page).
    /**
     * True when the device exposes a real erase command the host must
     * issue before rewriting a unit (the SDF contract). False for
     * conventional SSDs, where EraseUnit is a trim-backed emulation and
     * the erase-before-write discipline is enforced only by the adapter.
     */
    bool explicit_erase = true;
    uint64_t user_capacity = 0;  ///< Host-visible bytes.
    uint64_t raw_capacity = 0;   ///< Raw flash bytes underneath.
};

/**
 * Abstract asynchronous block device addressed as (channel, unit).
 *
 * All operations complete through an IoCallback on the simulator's event
 * loop; none complete inline. Implementations: core::SdfDevice (the
 * paper's device) and ssd::SsdBlockDevice (adapter over ConventionalSsd).
 */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    /** Static geometry/contract descriptor (stable for the lifetime). */
    virtual const DeviceCaps &caps() const = 0;

    /**
     * Read @p length bytes at @p offset within (@p channel, @p unit).
     * Offset and length must be multiples of caps().read_unit_bytes.
     * @p span, when non-null, receives latency-stage milestones.
     */
    virtual void Read(uint32_t channel, uint32_t unit, uint64_t offset,
                      uint64_t length, IoCallback done,
                      std::vector<uint8_t> *out = nullptr,
                      obs::IoSpan *span = nullptr) = 0;

    /**
     * Write one full unit. The unit must be in the erased state
     * (erase-before-write contract); otherwise completes with
     * IoError::kContractViolation.
     */
    virtual void WriteUnit(uint32_t channel, uint32_t unit, IoCallback done,
                           const uint8_t *data = nullptr,
                           obs::IoSpan *span = nullptr) = 0;

    /** Erase (or, for adapters, trim and logically reset) one unit. */
    virtual void EraseUnit(uint32_t channel, uint32_t unit, IoCallback done,
                           obs::IoSpan *span = nullptr) = 0;

    /** Current state of a unit. */
    virtual UnitState unit_state(uint32_t channel, uint32_t unit) const = 0;

    /**
     * True once a channel's hardware has failed (fault injection): every
     * operation on it completes with IoError::kChannelDead. Hosts poll
     * this to steer writes and reads to surviving channels.
     */
    virtual bool ChannelDead(uint32_t channel) const = 0;

    /**
     * Instantly (zero simulated time, no payload) bring a unit to the
     * written state. Simulation backdoor for preconditioning only.
     */
    virtual void DebugForceWritten(uint32_t channel, uint32_t unit) = 0;

    // ---- Convenience accessors over caps() -------------------------------

    uint32_t channel_count() const { return caps().channels; }
    uint32_t units_per_channel() const { return caps().units_per_channel; }
    uint64_t unit_bytes() const { return caps().unit_bytes; }
    uint32_t read_unit_bytes() const { return caps().read_unit_bytes; }
    uint64_t user_capacity() const { return caps().user_capacity; }
    uint64_t raw_capacity() const { return caps().raw_capacity; }
};

}  // namespace sdf::core

#endif  // SDF_SDF_BLOCK_DEVICE_H
