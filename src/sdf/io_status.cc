#include "sdf/io_status.h"

namespace sdf::core {

const char *
IoErrorName(IoError e)
{
    switch (e) {
      case IoError::kOk: return "ok";
      case IoError::kContractViolation: return "contract-violation";
      case IoError::kReadUncorrectable: return "read-uncorrectable";
      case IoError::kChannelDead: return "channel-dead";
      case IoError::kUnitDead: return "unit-dead";
      case IoError::kNoSpace: return "no-space";
      case IoError::kWriteFailed: return "write-failed";
      case IoError::kNotFound: return "not-found";
      case IoError::kTimedOut: return "timed-out";
    }
    return "unknown";
}

}  // namespace sdf::core
