/**
 * @file
 * Typed I/O completion status for the device and block-layer paths.
 *
 * The original prototype completed every operation with a bare `bool ok`,
 * which collapses "uncorrectable read after the full retry ladder" and
 * "channel controller died" into the same bit. Recovery code above the
 * device (block layer failover, KV replication) needs the distinction:
 * a dead channel means *re-route*, an uncorrectable read means *the data
 * is gone — fail over to a replica and re-replicate*.
 *
 * IoStatus converts implicitly to and from bool so the many call sites
 * that only care about success keep working; recovery-aware callers
 * inspect `.error`.
 */
#ifndef SDF_SDF_IO_STATUS_H
#define SDF_SDF_IO_STATUS_H

#include <cstdint>
#include <functional>

#include "sim/callback.h"

namespace sdf::core {

/** Why an I/O operation failed (kOk when it did not). */
enum class IoError : uint8_t
{
    kOk = 0,
    kContractViolation,   ///< Malformed request (alignment, state, range).
    kReadUncorrectable,   ///< Data lost: retry ladder exhausted, block retired.
    kChannelDead,         ///< The channel controller/chips no longer respond.
    kUnitDead,            ///< Unit lost to wear-out with no spare left.
    kNoSpace,             ///< No erased/spare unit available for the write.
    kWriteFailed,         ///< Program/erase failure not covered above.
    kNotFound,            ///< Block layer: unknown (or dropped) block ID.
    kTimedOut,            ///< Network: no response within the retry budget.
};

/** Printable name for an IoError. */
const char *IoErrorName(IoError e);

/**
 * Completion status carried by IoCallback. Implicitly interchangeable
 * with bool for legacy call sites: truthiness means success, and a bare
 * `false` maps to the generic kWriteFailed/kNotFound-agnostic failure.
 */
struct IoStatus
{
    IoError error = IoError::kOk;

    constexpr IoStatus() = default;
    constexpr IoStatus(IoError e) : error(e) {}  // NOLINT(runtime/explicit)
    constexpr IoStatus(bool ok)                  // NOLINT(runtime/explicit)
        : error(ok ? IoError::kOk : IoError::kWriteFailed)
    {
    }

    constexpr bool ok() const { return error == IoError::kOk; }
    constexpr operator bool() const { return ok(); }  // NOLINT
};

/** Completion callback for device and block-layer operations. */
using IoCallback = sim::Func<void(IoStatus)>;

}  // namespace sdf::core

#endif  // SDF_SDF_IO_STATUS_H
