#include "sdf/sdf_device.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "nand/timing.h"
#include "obs/hub.h"
#include "util/assert.h"

namespace sdf::core {

namespace {

/** Pages per DMA descriptor on the read path (512 KB with 8 KB pages). */
constexpr uint32_t kChunkPages = 64;

}  // namespace

SdfDevice::SdfDevice(sim::Simulator &sim, const SdfConfig &config)
    : sim_(sim),
      config_(config),
      flash_(std::make_unique<nand::FlashArray>(sim, config.flash)),
      link_(std::make_unique<controller::Link>(sim, config.link)),
      irq_(std::make_unique<controller::InterruptCoalescer>(
          sim, config.irq, config.flash.geometry.channels))
{
    const nand::Geometry &geo = flash_->geometry();
    unit_bytes_ = uint64_t{geo.PlanesPerChannel()} * geo.BlockBytes();

    // Per-plane bad-block managers take ownership of the factory-bad list
    // and the spare pool; the free pool only ever holds usable blocks.
    // Logical sizing: a unit needs one block in every plane, so the number
    // of exposed units is bounded by the worst plane's usable-block count.
    uint32_t min_usable = geo.blocks_per_plane;
    channels_.resize(geo.channels);
    for (uint32_t c = 0; c < geo.channels; ++c) {
        ChannelEngine &ce = channels_[c];
        ce.engine = std::make_unique<sim::FifoResource>(sim);
        ce.planes.resize(geo.PlanesPerChannel());
        for (uint32_t pl = 0; pl < geo.PlanesPerChannel(); ++pl) {
            PlaneEngine &pe = ce.planes[pl];
            std::vector<uint32_t> factory_bad;
            for (uint32_t b = 0; b < geo.blocks_per_plane; ++b) {
                if (flash_->channel(c).block_meta(nand::BlockAddr{pl, b}).bad)
                    factory_bad.push_back(b);
            }
            SDF_CHECK_MSG(geo.blocks_per_plane - factory_bad.size() >
                              config_.spare_blocks_per_plane,
                          "too many factory bad blocks");
            pe.bbm = std::make_unique<ftl::BadBlockManager>(
                geo.blocks_per_plane, factory_bad,
                config_.spare_blocks_per_plane);
            for (uint32_t b : pe.bbm->usable_blocks()) pe.free_pool.Release(b, 0);
            min_usable = std::min(
                min_usable,
                static_cast<uint32_t>(pe.bbm->usable_blocks().size()));
        }
    }
    units_per_channel_ = min_usable;
    for (auto &ce : channels_) {
        ce.units.assign(units_per_channel_, UnitState::kUnwritten);
        for (auto &pe : ce.planes) {
            pe.map = std::make_unique<ftl::BlockMap>(units_per_channel_);
        }
    }

    caps_.name = config_.name;
    caps_.channels = geo.channels;
    caps_.units_per_channel = units_per_channel_;
    caps_.unit_bytes = unit_bytes_;
    caps_.read_unit_bytes = geo.page_size;
    caps_.explicit_erase = true;
    caps_.user_capacity =
        uint64_t{geo.channels} * units_per_channel_ * unit_bytes_;
    caps_.raw_capacity = geo.TotalBytes();

    RegisterMetrics();
}

SdfDevice::~SdfDevice()
{
    if (hub_ != nullptr) {
        for (const std::string &p : metric_prefixes_) {
            hub_->metrics().UnregisterPrefix(p);
        }
    }
}

void
SdfDevice::RegisterMetrics()
{
    hub_ = sim_.hub();
    if (hub_ == nullptr) return;
    obs::MetricsRegistry &m = hub_->metrics();

    const std::string dev = m.UniquePrefix("sdf");
    metric_prefixes_.push_back(dev);
    m.RegisterCounter(dev + ".unit_writes", &stats_.unit_writes);
    m.RegisterCounter(dev + ".unit_erases", &stats_.unit_erases);
    m.RegisterCounter(dev + ".physical_block_erases",
                      &stats_.physical_block_erases);
    m.RegisterCounter(dev + ".page_reads", &stats_.page_reads);
    m.RegisterCounter(dev + ".read_bytes", &stats_.read_bytes);
    m.RegisterCounter(dev + ".written_bytes", &stats_.written_bytes);
    m.RegisterCounter(dev + ".contract_violations",
                      &stats_.contract_violations);
    m.RegisterCounter(dev + ".blocks_retired", &stats_.blocks_retired);
    m.RegisterCounter(dev + ".read_failures", &stats_.read_failures);
    m.RegisterCounter(dev + ".read_retries", &stats_.read_retries);
    m.RegisterCounter(dev + ".retry_recoveries", &stats_.retry_recoveries);
    m.RegisterCounter(dev + ".read_retirements", &stats_.read_retirements);
    m.RegisterCounter(dev + ".units_lost", &stats_.units_lost);
    m.RegisterHistogram(dev + ".recovery_latency_ns", [this]() {
        return &recovery_latencies_.histogram();
    });

    const std::string link = m.UniquePrefix("link");
    metric_prefixes_.push_back(link);
    m.RegisterCounter(link + ".to_host_bytes",
                      [this]() { return link_->to_host_bytes(); });
    m.RegisterCounter(link + ".to_device_bytes",
                      [this]() { return link_->to_device_bytes(); });

    const std::string irq = m.UniquePrefix("irq");
    metric_prefixes_.push_back(irq);
    m.RegisterCounter(irq + ".completions",
                      [this]() { return irq_->completions(); });
    m.RegisterCounter(irq + ".interrupts",
                      [this]() { return irq_->interrupts(); });
    m.RegisterGauge(irq + ".merge_factor",
                    [this]() { return irq_->MergeFactor(); });

    // Per-channel flash metrics, e.g. nand.ch07.page_reads. A second
    // device instance lands under nand.2.chNN so prefixes never collide.
    const std::string nand = m.UniquePrefix("nand");
    metric_prefixes_.push_back(nand);
    const uint32_t channels = flash_->geometry().channels;
    for (uint32_t c = 0; c < channels; ++c) {
        char chname[16];
        std::snprintf(chname, sizeof chname, "ch%02u", c);
        const std::string ch = nand + "." + chname;
        const nand::ChannelStats &cs = flash_->channel(c).stats();
        m.RegisterCounter(ch + ".page_reads", &cs.reads);
        m.RegisterCounter(ch + ".page_programs", &cs.programs);
        m.RegisterCounter(ch + ".block_erases", &cs.erases);
        m.RegisterCounter(ch + ".read_bytes", &cs.read_bytes);
        m.RegisterCounter(ch + ".programmed_bytes", &cs.programmed_bytes);
        m.RegisterCounter(ch + ".corrected_bit_errors",
                          &cs.corrected_bit_errors);
        m.RegisterCounter(ch + ".uncorrectable_reads",
                          &cs.uncorrectable_reads);
        m.RegisterCounter(ch + ".retry_reads", &cs.retry_reads);
        m.RegisterGauge(ch + ".bus_utilization", [this, c]() {
            return flash_->channel(c).BusUtilization();
        });
    }

    if (hub_->trace() != nullptr) {
        for (uint32_t c = 0; c < channels; ++c) {
            flash_->channel(c).EnableTrace(hub_->trace(), c);
        }
    }
}

bool
SdfDevice::ValidUnit(uint32_t channel, uint32_t unit) const
{
    return channel < channels_.size() && unit < units_per_channel_;
}

UnitState
SdfDevice::unit_state(uint32_t channel, uint32_t unit) const
{
    SDF_CHECK(ValidUnit(channel, unit));
    return channels_[channel].units[unit];
}

void
SdfDevice::DebugForceWritten(uint32_t channel, uint32_t unit)
{
    SDF_CHECK(ValidUnit(channel, unit));
    ChannelEngine &ce = channels_[channel];
    SDF_CHECK_MSG(ce.units[unit] == UnitState::kUnwritten,
                  "preconditioning a unit already in use");
    const nand::Geometry &geo = flash_->geometry();
    for (uint32_t plane = 0; plane < geo.PlanesPerChannel(); ++plane) {
        PlaneEngine &pe = ce.planes[plane];
        SDF_CHECK(!pe.free_pool.Empty());
        const uint32_t block = pe.free_pool.Allocate();
        pe.map->Set(unit, block);
        flash_->channel(channel).DebugSetProgrammed(
            nand::BlockAddr{plane, block}, geo.pages_per_block);
    }
    ce.units[unit] = UnitState::kWritten;
}

void
SdfDevice::Complete(uint32_t channel, IoCallback done, IoStatus status,
                    obs::IoSpan *span)
{
    if (!done) return;
    // From here the request waits for the (coalesced) completion interrupt.
    if (span != nullptr) span->Enter(obs::Stage::kInterrupt, sim_.Now());
    irq_->OnCompletion(channel,
                       [done = std::move(done), status]() { done(status); });
}

uint32_t
SdfDevice::RetireAndRemap(uint32_t channel, uint32_t plane, uint32_t unit,
                          uint32_t block)
{
    ChannelEngine &ce = channels_[channel];
    PlaneEngine &pe = ce.planes[plane];
    flash_->channel(channel).MarkBad(nand::BlockAddr{plane, block});
    ++stats_.blocks_retired;
    const uint32_t spare = pe.bbm->RetireBlock(block);
    if (spare != ftl::kNoSpare) {
        const uint32_t ec = flash_->channel(channel)
                                .block_meta(nand::BlockAddr{plane, spare})
                                .erase_count;
        pe.free_pool.Release(spare, ec);
    }
    if (!pe.free_pool.Empty()) {
        const uint32_t fresh = pe.free_pool.Allocate();
        pe.map->Set(unit, fresh);
        return fresh;
    }
    // Spares and pool both exhausted: the logical unit is lost.
    pe.map->Clear(unit);
    if (ce.units[unit] != UnitState::kDead) {
        ce.units[unit] = UnitState::kDead;
        ++stats_.units_lost;
    }
    return ftl::kUnmappedBlock;
}

void
SdfDevice::ReadPageLadder(uint32_t channel, uint32_t unit, uint32_t plane,
                          uint32_t block, uint32_t page_in_block,
                          uint32_t level, TimeNs first_fail,
                          std::function<void(IoStatus)> done,
                          std::vector<uint8_t> *buf, obs::IoSpan *span)
{
    flash_->channel(channel).ReadPage(
        nand::PageAddr{plane, block, page_in_block},
        [this, channel, unit, plane, block, page_in_block, level, first_fail,
         done = std::move(done), buf, span](nand::OpStatus status) mutable {
            if (nand::IsOk(status)) {  // kOk or kOkErased (unprogrammed).
                if (level > 0) {
                    ++stats_.retry_recoveries;
                    recovery_latencies_.Record(sim_.Now() - first_fail);
                }
                done(IoStatus());
                return;
            }
            if (status == nand::OpStatus::kChannelDead) {
                done(IoError::kChannelDead);
                return;
            }
            // BCH-uncorrectable: climb the retry-voltage ladder.
            const TimeNs t0 = level == 0 ? sim_.Now() : first_fail;
            if (level < config_.read_retry_levels) {
                ++stats_.read_retries;
                ReadPageLadder(channel, unit, plane, block, page_in_block,
                               level + 1, t0, std::move(done), buf, span);
                return;
            }
            // Ladder exhausted: data is lost; retire the block so future
            // writes land on healthy flash. The host sees a typed error
            // and must recover from a replica.
            ++stats_.read_failures;
            ++stats_.read_retirements;
            RetireAndRemap(channel, plane, unit, block);
            done(IoError::kReadUncorrectable);
        },
        buf, level, span);
}

void
SdfDevice::Read(uint32_t channel, uint32_t unit, uint64_t offset,
                uint64_t length, IoCallback done, std::vector<uint8_t> *out,
                obs::IoSpan *span)
{
    const nand::Geometry &geo = flash_->geometry();
    const uint32_t page = geo.page_size;
    if (!ValidUnit(channel, unit) || length == 0 || offset % page != 0 ||
        length % page != 0 || offset + length > unit_bytes_) {
        ++stats_.contract_violations;
        sim_.Post([done = std::move(done)]() {
            if (done) done(IoError::kContractViolation);
        });
        return;
    }

    const auto pages = static_cast<uint32_t>(length / page);
    stats_.page_reads += pages;
    stats_.read_bytes += length;
    if (out) out->assign(length, 0);

    struct ReadState
    {
        uint32_t total_pages;
        uint32_t flash_done = 0;
        uint32_t transferred = 0;
        IoStatus status;  ///< First page-level error wins.
        IoCallback done;
        std::vector<uint8_t> *out;
        obs::IoSpan *span;
    };
    auto state = std::make_shared<ReadState>();
    state->total_pages = pages;
    state->done = std::move(done);
    state->out = out;
    state->span = span;

    // Everything until the engine picks the command up is queueing.
    if (span != nullptr) span->Enter(obs::Stage::kQueue, sim_.Now());

    ChannelEngine &ce = channels_[channel];
    ce.engine->Submit(config_.engine_op_cost, [this, channel, unit, offset,
                                               page, pages, state]() {
        const nand::Geometry &geo2 = flash_->geometry();
        const uint64_t block_bytes = geo2.BlockBytes();
        ChannelEngine &ce2 = channels_[channel];

        // A multi-page read pipelines planes, bus, and DMA; attribute its
        // critical path (flash until the last page, then the DMA tail).
        // Single-page reads instead get fine cuts inside Channel::ReadPage.
        const bool fine_cuts = pages == 1;
        if (state->span != nullptr && !fine_cuts) {
            state->span->Enter(obs::Stage::kFlashOp, sim_.Now());
        }

        // DMA pages to the host in chunks as they come off the flash, so
        // the PCIe transfer pipelines with the channel-bus reads (the
        // controller stages data in its DDR3 buffers; §2.1).
        auto page_complete = [this, channel, page, state]() {
            ++state->flash_done;
            while (state->transferred < state->flash_done &&
                   (state->flash_done - state->transferred >= kChunkPages ||
                    state->flash_done == state->total_pages)) {
                const uint32_t n = std::min(kChunkPages,
                                            state->flash_done -
                                                state->transferred);
                state->transferred += n;
                const bool final_chunk =
                    state->transferred == state->total_pages;
                if (final_chunk && state->span != nullptr) {
                    state->span->Enter(obs::Stage::kLinkTransfer, sim_.Now());
                }
                link_->TransferToHost(
                    sim_.Now(), uint64_t{n} * page,
                    final_chunk
                        ? sim::Callback([this, channel, state]() {
                              Complete(channel, std::move(state->done),
                                       state->status, state->span);
                          })
                        : nullptr);
            }
        };

        for (uint32_t i = 0; i < pages; ++i) {
            const uint64_t byte_off = offset + uint64_t{i} * page;
            const auto plane = static_cast<uint32_t>(byte_off / block_bytes);
            const auto page_in_block =
                static_cast<uint32_t>((byte_off % block_bytes) / page);
            const size_t out_pos = static_cast<size_t>(uint64_t{i} * page);
            const uint32_t block = ce2.planes[plane].map->Lookup(unit);
            if (block == ftl::kUnmappedBlock) {
                // Unwritten unit: reads as erased flash (0xFF).
                if (state->out) {
                    std::memset(state->out->data() + out_pos, 0xFF, page);
                }
                page_complete();
                continue;
            }
            auto buf = state->out ? std::make_shared<std::vector<uint8_t>>()
                                  : nullptr;
            ReadPageLadder(
                channel, unit, plane, block, page_in_block, 0, 0,
                [state, buf, out_pos, page, page_complete](IoStatus st) {
                    if (!st.ok() && state->status.ok()) state->status = st;
                    if (state->out && buf && !buf->empty()) {
                        std::memcpy(state->out->data() + out_pos, buf->data(),
                                    std::min<size_t>(page, buf->size()));
                    }
                    page_complete();
                },
                buf.get(), fine_cuts ? state->span : nullptr);
        }
    });
}

void
SdfDevice::WriteUnit(uint32_t channel, uint32_t unit, IoCallback done,
                     const uint8_t *data, obs::IoSpan *span)
{
    if (!ValidUnit(channel, unit) ||
        channels_[channel].units[unit] != UnitState::kErased) {
        ++stats_.contract_violations;
        sim_.Post([done = std::move(done)]() {
            if (done) done(IoError::kContractViolation);
        });
        return;
    }

    ChannelEngine &ce = channels_[channel];
    ce.units[unit] = UnitState::kWritten;
    ++stats_.unit_writes;
    stats_.written_bytes += unit_bytes_;

    if (span != nullptr) span->Enter(obs::Stage::kQueue, sim_.Now());

    ce.engine->Submit(config_.engine_op_cost, [this, channel, unit, data, span,
                                               done = std::move(done)]() mutable {
        // Stage the whole unit into the on-board DRAM buffers, then program.
        if (span != nullptr) {
            span->Enter(obs::Stage::kLinkTransfer, sim_.Now());
        }
        link_->TransferToDevice(
            sim_.Now(), unit_bytes_,
            [this, channel, unit, data, span,
             done = std::move(done)]() mutable {
                if (span != nullptr) {
                    span->Enter(obs::Stage::kFlashOp, sim_.Now());
                }
                const nand::Geometry &geo = flash_->geometry();
                const uint32_t ppb = geo.pages_per_block;
                const uint32_t planes = geo.PlanesPerChannel();
                const uint32_t page = geo.page_size;
                const uint64_t block_bytes = geo.BlockBytes();
                ChannelEngine &ce2 = channels_[channel];

                auto remaining = std::make_shared<uint32_t>(planes * ppb);
                auto write_st = std::make_shared<IoStatus>();
                // Joined from planes*ppb program completions: the join
                // closure owns the move-only `done`, so it lives behind one
                // shared allocation and each branch holds a reference.
                auto finish = std::make_shared<sim::Callback>(
                    [this, channel, remaining, write_st, span,
                     done = std::move(done)]() mutable {
                        if (--*remaining > 0) return;
                        Complete(channel, std::move(done), *write_st, span);
                    });

                // Interleave planes page-by-page so all four program
                // pipelines stay fed (§2.3: 2 MB striping within a unit).
                for (uint32_t p = 0; p < ppb; ++p) {
                    for (uint32_t plane = 0; plane < planes; ++plane) {
                        const uint32_t block =
                            ce2.planes[plane].map->Lookup(unit);
                        SDF_CHECK(block != ftl::kUnmappedBlock);
                        const uint8_t *payload =
                            data ? data + plane * block_bytes +
                                       uint64_t{p} * page
                                 : nullptr;
                        flash_->channel(channel).ProgramPage(
                            nand::PageAddr{plane, block, p},
                            [finish, write_st](nand::OpStatus status) {
                                if (!nand::IsOk(status) && write_st->ok()) {
                                    *write_st =
                                        status == nand::OpStatus::kChannelDead
                                            ? IoError::kChannelDead
                                            : IoError::kWriteFailed;
                                }
                                (*finish)();
                            },
                            payload);
                    }
                }
            });
    });
}

void
SdfDevice::EraseUnit(uint32_t channel, uint32_t unit, IoCallback done,
                     obs::IoSpan *span)
{
    if (!ValidUnit(channel, unit)) {
        ++stats_.contract_violations;
        sim_.Post([done = std::move(done)]() {
            if (done) done(IoError::kContractViolation);
        });
        return;
    }
    if (channels_[channel].units[unit] == UnitState::kDead) {
        // Not a software bug: the unit was lost to wear-out. Report it as
        // such so hosts can distinguish "stop using this" from "you
        // violated the contract".
        sim_.Post([done = std::move(done)]() {
            if (done) done(IoError::kUnitDead);
        });
        return;
    }

    ChannelEngine &ce = channels_[channel];
    ++stats_.unit_erases;

    if (span != nullptr) span->Enter(obs::Stage::kQueue, sim_.Now());

    ce.engine->Submit(config_.engine_op_cost, [this, channel, unit, span,
                                               done = std::move(done)]() mutable {
        const nand::Geometry &geo = flash_->geometry();
        const uint32_t planes = geo.PlanesPerChannel();
        ChannelEngine &ce2 = channels_[channel];

        if (span != nullptr) span->Enter(obs::Stage::kEraseOp, sim_.Now());

        auto remaining = std::make_shared<uint32_t>(planes);
        auto st = std::make_shared<IoStatus>();
        auto finish = std::make_shared<sim::Callback>(
            [this, channel, unit, remaining, st, span,
             done = std::move(done)]() mutable {
                if (--*remaining > 0) return;
                ChannelEngine &ce3 = channels_[channel];
                if (st->ok() && ce3.units[unit] != UnitState::kDead) {
                    ce3.units[unit] = UnitState::kErased;
                }
                Complete(channel, std::move(done), *st, span);
            });

        for (uint32_t plane = 0; plane < planes; ++plane) {
            PlaneEngine &pe = ce2.planes[plane];
            const uint32_t old_block = pe.map->Lookup(unit);
            if (old_block == ftl::kUnmappedBlock) {
                // First use: just map a pre-erased block from the pool.
                if (pe.free_pool.Empty()) {
                    *st = IoStatus(IoError::kUnitDead);
                    if (ce2.units[unit] != UnitState::kDead) {
                        ce2.units[unit] = UnitState::kDead;
                        ++stats_.units_lost;
                    }
                    sim_.Post([finish]() { (*finish)(); });
                    continue;
                }
                pe.map->Set(unit, pe.free_pool.Allocate());
                sim_.Post([finish]() { (*finish)(); });
                continue;
            }
            ++stats_.physical_block_erases;
            flash_->channel(channel).EraseBlock(
                nand::BlockAddr{plane, old_block},
                [this, channel, plane, unit, old_block, st,
                 finish](nand::OpStatus status) mutable {
                    ChannelEngine &ce3 = channels_[channel];
                    PlaneEngine &pe2 = ce3.planes[plane];
                    if (status == nand::OpStatus::kOk) {
                        // Dynamic wear leveling: rotate through the pool.
                        const uint32_t ec =
                            flash_->channel(channel)
                                .block_meta(nand::BlockAddr{plane, old_block})
                                .erase_count;
                        pe2.free_pool.Release(old_block, ec);
                        pe2.map->Set(unit, pe2.free_pool.Allocate());
                    } else if (status == nand::OpStatus::kChannelDead) {
                        // The whole channel is gone; keep the mapping so a
                        // post-mortem sees where the data lived.
                        if (st->ok()) *st = IoError::kChannelDead;
                    } else {
                        // Wear-out: retire the block, remap via the spare
                        // pool; the unit dies only when spares run out.
                        if (RetireAndRemap(channel, plane, unit, old_block) ==
                                ftl::kUnmappedBlock &&
                            st->ok()) {
                            *st = IoError::kUnitDead;
                        }
                    }
                    (*finish)();
                });
        }
    });
}

void
SdfDevice::ScanUnit(uint32_t channel, uint32_t unit, double selectivity,
                    std::function<void(bool ok, uint64_t matched)> done)
{
    if (!ValidUnit(channel, unit) || selectivity < 0.0 || selectivity > 1.0) {
        ++stats_.contract_violations;
        sim_.Post([done = std::move(done)]() {
            if (done) done(false, 0);
        });
        return;
    }
    const nand::Geometry &geo = flash_->geometry();
    const uint32_t page = geo.page_size;
    const uint64_t block_bytes = geo.BlockBytes();
    const auto pages = static_cast<uint32_t>(unit_bytes_ / page);
    const auto matched =
        static_cast<uint64_t>(static_cast<double>(unit_bytes_) * selectivity);
    stats_.page_reads += pages;
    stats_.read_bytes += matched;

    ChannelEngine &ce = channels_[channel];
    ce.engine->Submit(config_.engine_op_cost, [this, channel, unit, page,
                                               pages, block_bytes, matched,
                                               done = std::move(done)]() mutable {
        ChannelEngine &ce2 = channels_[channel];
        auto remaining = std::make_shared<uint32_t>(pages);
        auto ok = std::make_shared<bool>(true);
        auto finish = [this, channel, matched, remaining, ok,
                       done = std::move(done)]() mutable {
            if (--*remaining > 0) return;
            // Only the matching bytes cross the PCIe link.
            link_->TransferToHost(sim_.Now(), matched,
                                  [this, channel, matched, ok,
                                   done = std::move(done)]() mutable {
                                      Complete(channel,
                                               [done = std::move(done), ok,
                                                matched](bool) {
                                                   done(*ok, matched);
                                               },
                                               *ok);
                                  });
        };
        for (uint32_t i = 0; i < pages; ++i) {
            const uint64_t byte_off = uint64_t{i} * page;
            const auto plane = static_cast<uint32_t>(byte_off / block_bytes);
            const auto page_in_block =
                static_cast<uint32_t>((byte_off % block_bytes) / page);
            const uint32_t block = ce2.planes[plane].map->Lookup(unit);
            if (block == ftl::kUnmappedBlock) {
                finish();  // Unwritten plane stripe: nothing to scan.
                continue;
            }
            flash_->channel(channel).ReadPage(
                nand::PageAddr{plane, block, page_in_block},
                [ok, finish](nand::OpStatus status) mutable {
                    if (!nand::IsOk(status)) *ok = false;
                    finish();
                });
        }
    });
}

SdfDevice::WearReport
SdfDevice::GetWearReport() const
{
    WearReport report;
    report.rated_endurance = config_.flash.errors.endurance_cycles;
    report.blocks_retired = stats_.blocks_retired;
    uint64_t total_ec = 0;
    uint64_t blocks = 0;
    bool first = true;
    const nand::Geometry &geo = flash_->geometry();
    for (uint32_t c = 0; c < geo.channels; ++c) {
        for (uint32_t pl = 0; pl < geo.PlanesPerChannel(); ++pl) {
            for (uint32_t b = 0; b < geo.blocks_per_plane; ++b) {
                const auto &meta =
                    flash_->channel(c).block_meta(nand::BlockAddr{pl, b});
                if (meta.bad) continue;
                const uint32_t ec = meta.erase_count;
                if (first) {
                    report.min_erase_count = report.max_erase_count = ec;
                    first = false;
                } else {
                    report.min_erase_count =
                        std::min(report.min_erase_count, ec);
                    report.max_erase_count =
                        std::max(report.max_erase_count, ec);
                }
                total_ec += ec;
                ++blocks;
            }
        }
        for (uint32_t u = 0; u < units_per_channel_; ++u) {
            if (channels_[c].units[u] == UnitState::kDead) ++report.dead_units;
        }
    }
    if (blocks > 0) {
        report.mean_erase_count =
            static_cast<double>(total_ec) / static_cast<double>(blocks);
    }
    if (report.rated_endurance > 0) {
        report.life_used =
            report.mean_erase_count / report.rated_endurance;
    }
    return report;
}

SdfConfig
BaiduSdfConfig(double capacity_scale)
{
    SdfConfig c;
    c.flash.geometry = nand::BaiduSdfGeometry();
    const auto scaled = static_cast<uint32_t>(
        c.flash.geometry.blocks_per_plane * capacity_scale);
    c.flash.geometry.blocks_per_plane = std::max(scaled, 16u);
    c.flash.timing = nand::Micron25nmMlcTiming();
    c.link = controller::Pcie11x8Spec();
    return c;
}

}  // namespace sdf::core
