/**
 * @file
 * The SDF device — the paper's primary contribution (§2).
 *
 * SDF exposes each of its 44 flash channels to software as an independent
 * device with an asymmetric interface:
 *
 *   - read unit:       8 KB (one flash page), any page-aligned offset;
 *   - write unit:      8 MB (one "unit" = one erase block per plane, data
 *                      striped 2 MB per plane over the channel's 4 planes),
 *                      and writes must target an erased unit;
 *   - erase:           an explicit per-unit command issued by software.
 *
 * Each channel has its own engine implementing block-level mapping
 * (LA2PA), dynamic wear leveling (least-worn-first allocation), and bad
 * block management. There is no garbage collection, no inter-channel
 * parity, no on-board DRAM cache, and no over-provisioning: only a few
 * spare blocks per plane for bad-block replacement are withheld, so ~99 %
 * of the raw capacity is user-visible.
 */
#ifndef SDF_SDF_SDF_DEVICE_H
#define SDF_SDF_SDF_DEVICE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "controller/interrupts.h"
#include "controller/link.h"
#include "ftl/bad_block_manager.h"
#include "ftl/block_map.h"
#include "ftl/wear_leveler.h"
#include "nand/flash_array.h"
#include "obs/span.h"
#include "sdf/block_device.h"
#include "sdf/io_status.h"
#include "sim/fifo_resource.h"
#include "sim/simulator.h"
#include "util/latency_recorder.h"

namespace sdf::obs {
class Hub;
}  // namespace sdf::obs

namespace sdf::core {

using util::TimeNs;

/** Construction parameters for an SDF device. */
struct SdfConfig
{
    std::string name = "Baidu SDF";
    nand::FlashArrayConfig flash;
    controller::LinkSpec link;
    controller::InterruptConfig irq;
    /** Good blocks reserved per plane for bad-block replacement. */
    uint32_t spare_blocks_per_plane = 8;
    /** Channel-engine processing cost per command (FPGA pipeline). */
    TimeNs engine_op_cost = util::UsToNs(1);
    /**
     * Read-retry ladder depth: on a BCH-uncorrectable read the engine
     * re-senses the page up to this many times with escalating correction
     * strength before declaring the data lost and retiring the block.
     * 0 disables retries (the original error-counting-only behaviour).
     */
    uint32_t read_retry_levels = 4;
};

/** Cumulative device statistics. */
struct SdfStats
{
    uint64_t unit_writes = 0;
    uint64_t unit_erases = 0;
    uint64_t physical_block_erases = 0;
    uint64_t page_reads = 0;
    uint64_t read_bytes = 0;
    uint64_t written_bytes = 0;
    uint64_t contract_violations = 0;  ///< e.g. write to a non-erased unit.
    uint64_t blocks_retired = 0;
    uint64_t read_failures = 0;     ///< Terminal (post-ladder) page failures.
    uint64_t read_retries = 0;      ///< Ladder re-reads issued.
    uint64_t retry_recoveries = 0;  ///< Pages recovered by the ladder.
    uint64_t read_retirements = 0;  ///< Blocks retired by persistent reads.
    uint64_t units_lost = 0;        ///< Units gone kDead (no spare left).
};

/**
 * The software-defined flash device.
 *
 * All operations address (channel, unit) pairs; there is deliberately no
 * cross-channel logical space — exploiting channel parallelism is the
 * host software's job (that is the point of the design).
 */
class SdfDevice : public BlockDevice
{
  public:
    SdfDevice(sim::Simulator &sim, const SdfConfig &config);
    ~SdfDevice() override;

    SdfDevice(const SdfDevice &) = delete;
    SdfDevice &operator=(const SdfDevice &) = delete;

    /** Geometry descriptor: 44 channels x 8 MB units, explicit erase. */
    const DeviceCaps &caps() const override { return caps_; }

    /**
     * Read @p length bytes at @p offset within (@p channel, @p unit).
     * Offset and length must be multiples of the read unit (8 KB).
     * Reading an unwritten unit succeeds and returns 0xFF bytes.
     *
     * @p span, when non-null, receives latency-stage milestones. A
     * single-page read gets the channel's fine-grained breakdown (queue /
     * flash_op / channel_bus / bch_decode / retry); a multi-page read is
     * attributed by critical path: flash_op until the last page leaves
     * the flash, then link_transfer for the DMA tail.
     */
    void Read(uint32_t channel, uint32_t unit, uint64_t offset,
              uint64_t length, IoCallback done,
              std::vector<uint8_t> *out = nullptr,
              obs::IoSpan *span = nullptr) override;

    /**
     * Write one full unit (8 MB). The unit must be in the erased state
     * (software contract: erase-before-write); otherwise completes false
     * and counts a contract violation. @p span, when non-null, splits the
     * latency into queue / link_transfer / flash_op / interrupt.
     */
    void WriteUnit(uint32_t channel, uint32_t unit, IoCallback done,
                   const uint8_t *data = nullptr,
                   obs::IoSpan *span = nullptr) override;

    /**
     * Erase a unit: the explicit erase command SDF adds to the device
     * interface. Erases the unit's mapped physical blocks (if any) and
     * remaps the unit to the least-worn free blocks (dynamic wear
     * leveling through the free pool). @p span attribution: queue /
     * erase_op / interrupt.
     */
    void EraseUnit(uint32_t channel, uint32_t unit, IoCallback done,
                   obs::IoSpan *span = nullptr) override;

    /** Current state of a unit. */
    UnitState unit_state(uint32_t channel, uint32_t unit) const override;

    /**
     * In-storage scan (§5 future work, "moving compute to the storage"):
     * the channel engine streams a whole unit off the flash, applies a
     * filter inside the controller, and DMAs only the matching fraction
     * to the host. @p selectivity in [0, 1] is the fraction of bytes that
     * match; @p done receives the matched byte count. With 44 engines
     * scanning in parallel, aggregate scan bandwidth is bounded by the
     * flash (1.67 GB/s), not by PCIe.
     */
    void ScanUnit(uint32_t channel, uint32_t unit, double selectivity,
                  std::function<void(bool ok, uint64_t matched)> done);

    /**
     * Device wear and reliability summary (§5 future work: "incorporate,
     * and expose, a data reliability model"). Lets the host reason about
     * remaining endurance and retire devices proactively.
     */
    struct WearReport
    {
        uint32_t min_erase_count = 0;
        uint32_t max_erase_count = 0;
        double mean_erase_count = 0.0;
        uint64_t blocks_retired = 0;
        uint64_t dead_units = 0;
        uint32_t rated_endurance = 0;
        /** mean_erase_count / rated_endurance; > 1 means living on spares. */
        double life_used = 0.0;
    };

    /** Compute the current wear report (walks all block metadata). */
    WearReport GetWearReport() const;

    /**
     * True once the channel's hardware has failed (fault injection):
     * every operation on it completes with IoError::kChannelDead. Hosts
     * poll this to steer writes and reads to surviving channels.
     */
    bool ChannelDead(uint32_t channel) const override
    {
        return flash_->channel(channel).dead();
    }

    /**
     * Latency from the first uncorrectable sense of a page to its
     * recovery by the read-retry ladder (per recovered page).
     */
    const util::LatencyRecorder &recovery_latencies() const
    {
        return recovery_latencies_;
    }

    /** Bad-block spares remaining in one plane's pool. */
    uint32_t SparesLeft(uint32_t channel, uint32_t plane) const
    {
        return channels_[channel].planes[plane].bbm->spares_left();
    }

    /** Grown (post-factory) bad blocks recorded in one plane. */
    uint32_t GrownBadCount(uint32_t channel, uint32_t plane) const
    {
        return channels_[channel].planes[plane].bbm->grown_bad_count();
    }

    /**
     * Instantly (zero simulated time, no payload) bring a unit to the
     * written state: maps physical blocks and marks them programmed.
     * Simulation backdoor for preconditioning experiments only.
     */
    void DebugForceWritten(uint32_t channel, uint32_t unit) override;

    const SdfStats &stats() const { return stats_; }
    const SdfConfig &config() const { return config_; }
    nand::FlashArray &flash() { return *flash_; }
    const controller::InterruptCoalescer &irq() const { return *irq_; }

  private:
    struct PlaneEngine
    {
        std::unique_ptr<ftl::BlockMap> map;        ///< unit -> physical block.
        std::unique_ptr<ftl::BadBlockManager> bbm; ///< Bad blocks + spares.
        ftl::DynamicWearLeveler free_pool;         ///< Erased usable blocks.
    };

    struct ChannelEngine
    {
        std::vector<PlaneEngine> planes;
        std::vector<UnitState> units;
        std::unique_ptr<sim::FifoResource> engine;  ///< FPGA command pipe.
    };

    bool ValidUnit(uint32_t channel, uint32_t unit) const;
    void Complete(uint32_t channel, IoCallback done, IoStatus status,
                  obs::IoSpan *span = nullptr);

    /** Register pull-metrics with the simulator's hub, if one is set. */
    void RegisterMetrics();

    /**
     * One rung of the read-retry ladder: read the page at @p level; on
     * kReadUncorrectable escalate up to config_.read_retry_levels, then
     * retire the block and report kReadUncorrectable. @p first_fail is
     * the sim time of the first failed sense (0 while level == 0).
     */
    void ReadPageLadder(uint32_t channel, uint32_t unit, uint32_t plane,
                        uint32_t block, uint32_t page_in_block, uint32_t level,
                        TimeNs first_fail, std::function<void(IoStatus)> done,
                        std::vector<uint8_t> *buf,
                        obs::IoSpan *span = nullptr);

    /**
     * Retire @p block (grown bad) in (@p channel, @p plane): mark it bad,
     * pull a spare from the plane's BadBlockManager into the free pool,
     * and remap @p unit to a fresh block. If no block is available the
     * unit goes kDead. Returns the new physical block or kUnmappedBlock.
     */
    uint32_t RetireAndRemap(uint32_t channel, uint32_t plane, uint32_t unit,
                            uint32_t block);

    sim::Simulator &sim_;
    SdfConfig config_;
    std::unique_ptr<nand::FlashArray> flash_;
    std::unique_ptr<controller::Link> link_;
    std::unique_ptr<controller::InterruptCoalescer> irq_;
    std::vector<ChannelEngine> channels_;
    DeviceCaps caps_;
    uint32_t units_per_channel_ = 0;
    uint64_t unit_bytes_ = 0;
    SdfStats stats_;
    util::LatencyRecorder recovery_latencies_;

    /** Hub (from the simulator) this device registered metrics with. */
    obs::Hub *hub_ = nullptr;
    std::vector<std::string> metric_prefixes_;  ///< For dtor unregistration.
};

/**
 * The production SDF board (Table 3): 44 channels, 704 GB raw, PCIe 1.1 x8.
 * @p capacity_scale in (0, 1] shrinks blocks-per-plane for memory-friendly
 * simulation; per-channel structure and ratios are preserved.
 */
SdfConfig BaiduSdfConfig(double capacity_scale = 1.0);

}  // namespace sdf::core

#endif  // SDF_SDF_SDF_DEVICE_H
