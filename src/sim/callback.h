/**
 * @file
 * Small-buffer-optimized callables for simulation events.
 *
 * The event engine dispatches tens of millions of callbacks per run, so the
 * callback type is a measured artifact in its own right. Compared to
 * `std::function`:
 *
 *  - move-only: completion callbacks fire exactly once, so nothing ever
 *    needs the copy constructor — and dropping it lets callers capture
 *    move-only state (unique_ptr payloads, pooled handles, further
 *    callbacks) directly;
 *  - 48 bytes of inline storage (vs libstdc++'s 16): the common captures
 *    on the hot path (`this` + a couple of words, a shared_ptr or two,
 *    a nested continuation) never touch the heap; larger closures fall
 *    back to one allocation;
 *  - a three-pointer dispatch record instead of vtable-ish type erasure:
 *    invoke, relocate and destroy are separate function pointers, so
 *    firing an event is a single indirect call with no virtual dispatch.
 *
 * `Func<Sig>` is the general template; `Callback` (= Func<void()>) is the
 * engine's event type, and the device/KV layers alias their completion
 * signatures onto Func so a request's continuation chain crosses every
 * layer without a single std::function heap allocation.
 */
#ifndef SDF_SIM_CALLBACK_H
#define SDF_SIM_CALLBACK_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.h"

namespace sdf::sim {

template <typename Sig, size_t InlineBytes = 48>
class Func;  // Only the R(Args...) specialization exists.

/**
 * Move-only callable with small-buffer optimization.
 *
 * Drop-in for the hot paths' former `std::function` uses: null-
 * constructible, truthiness-testable, invocable. Copying is deleted — a
 * completion fires once, and the dispatch path must never be forced to
 * copy a closure (see Simulator::FireTimedHead in the heap reference
 * engine).
 */
template <typename R, typename... Args, size_t InlineBytes>
class Func<R(Args...), InlineBytes>
{
  public:
    /** Inline closure capacity; larger closures take one heap allocation. */
    static constexpr size_t kInlineBytes = InlineBytes;

    Func() noexcept = default;
    Func(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

    Func(const Func &) = delete;
    Func &operator=(const Func &) = delete;

    Func(Func &&other) noexcept { MoveFrom(other); }

    Func &
    operator=(Func &&other) noexcept
    {
        if (this != &other) {
            Reset();
            MoveFrom(other);
        }
        return *this;
    }

    Func &
    operator=(std::nullptr_t) noexcept
    {
        Reset();
        return *this;
    }

    /** Wrap any matching callable (moved in; may itself be move-only). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Func> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    Func(F &&f)  // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &InlineOps<Fn>::ops;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            ops_ = &HeapOps<Fn>::ops;
        }
    }

    ~Func() { Reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Const-invocable like std::function, so non-mutable lambda captures
     *  can fire it; the closure itself is still invoked non-const. */
    R
    operator()(Args... args) const
    {
        SDF_CHECK_MSG(ops_ != nullptr, "invoking a null sim::Func");
        return ops_->invoke(const_cast<unsigned char *>(buf_),
                            std::forward<Args>(args)...);
    }

    friend bool
    operator==(const Func &f, std::nullptr_t) noexcept
    {
        return f.ops_ == nullptr;
    }
    friend bool
    operator!=(const Func &f, std::nullptr_t) noexcept
    {
        return f.ops_ != nullptr;
    }

  private:
    struct Ops
    {
        R (*invoke)(unsigned char *buf, Args &&...args);
        /** Move the closure from @p src into @p dst (raw, uninitialized). */
        void (*relocate)(unsigned char *src, unsigned char *dst) noexcept;
        void (*destroy)(unsigned char *buf) noexcept;
    };

    template <typename Fn>
    struct InlineOps
    {
        static R
        Invoke(unsigned char *buf, Args &&...args)
        {
            return (*std::launder(reinterpret_cast<Fn *>(buf)))(
                std::forward<Args>(args)...);
        }
        static void
        Relocate(unsigned char *src, unsigned char *dst) noexcept
        {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (static_cast<void *>(dst)) Fn(std::move(*f));
            f->~Fn();
        }
        static void
        Destroy(unsigned char *buf) noexcept
        {
            std::launder(reinterpret_cast<Fn *>(buf))->~Fn();
        }
        static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
    };

    template <typename Fn>
    struct HeapOps
    {
        static Fn *&
        Slot(unsigned char *buf) noexcept
        {
            return *reinterpret_cast<Fn **>(buf);
        }
        static R
        Invoke(unsigned char *buf, Args &&...args)
        {
            return (*Slot(buf))(std::forward<Args>(args)...);
        }
        static void
        Relocate(unsigned char *src, unsigned char *dst) noexcept
        {
            Slot(dst) = Slot(src);
        }
        static void
        Destroy(unsigned char *buf) noexcept
        {
            delete Slot(buf);
        }
        static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
    };

    void
    Reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    void
    MoveFrom(Func &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(other.buf_, buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

/**
 * The event engine's `void()` callable.
 *
 * Its buffer is deliberately larger than the typed completions': the last
 * hop before the engine usually captures one typed Func (56 bytes with
 * the default buffer) plus a word or two of context, and this is the one
 * place where that nesting must stay allocation-free — the closure lands
 * in a pooled engine slot and never relocates again. (A uniform buffer
 * size can never absorb its own nesting: a Func capturing a same-size
 * Func overflows by construction.)
 */
using Callback = Func<void(), 96>;

}  // namespace sdf::sim

#endif  // SDF_SIM_CALLBACK_H
