/**
 * @file
 * Serially shared resources for the simulation.
 *
 * FifoResource models anything that serves one request at a time in FIFO
 * order — a NAND plane, a channel bus, a DMA engine. Submitters specify a
 * service duration; the resource tracks its own "free at" horizon, so
 * back-to-back submissions pipeline naturally without explicit queues.
 */
#ifndef SDF_SIM_FIFO_RESOURCE_H
#define SDF_SIM_FIFO_RESOURCE_H

#include <algorithm>
#include <cstdint>

#include "sim/simulator.h"

namespace sdf::sim {

/** A resource that serves submissions one at a time, FIFO. */
class FifoResource
{
  public:
    explicit FifoResource(Simulator &sim) : sim_(sim) {}

    FifoResource(const FifoResource &) = delete;
    FifoResource &operator=(const FifoResource &) = delete;

    /**
     * Occupy the resource for @p service_time starting as soon as all
     * previously submitted work has drained. @p done fires at completion.
     * @return the simulated completion time.
     */
    TimeNs
    Submit(TimeNs service_time, Callback done)
    {
        const TimeNs start = std::max(sim_.Now(), free_at_);
        const TimeNs end = start + service_time;
        busy_time_ += service_time;
        free_at_ = end;
        Complete(end, std::move(done));
        return end;
    }

    /**
     * Like Submit() but the work cannot start before @p earliest (used to
     * model data that only becomes available later, e.g. a flash read that
     * must finish before its bus transfer starts).
     */
    TimeNs
    SubmitAfter(TimeNs earliest, TimeNs service_time, Callback done)
    {
        const TimeNs start = std::max({sim_.Now(), free_at_, earliest});
        const TimeNs end = start + service_time;
        busy_time_ += service_time;
        free_at_ = end;
        Complete(end, std::move(done));
        return end;
    }

    /** Time at which all queued work will have drained. */
    TimeNs free_at() const { return free_at_; }

    /** True if work is queued or in service. */
    bool Busy() const { return free_at_ > sim_.Now(); }

    /** Accumulated service time (for utilization accounting). */
    TimeNs busy_time() const { return busy_time_; }

    /** Utilization in [0, 1] over the interval [0, now]. */
    double
    Utilization(TimeNs now) const
    {
        if (now <= 0) return 0.0;
        return std::min(1.0, static_cast<double>(busy_time_) /
                                 static_cast<double>(now));
    }

  private:
    /**
     * Completion dispatch. The callback goes to the engine as-is — no
     * bookkeeping wrapper, so a Callback-in-Callback nesting (which can
     * never fit any inline buffer) is avoided and the common completion
     * stays allocation-free. Zero-cost work on an idle resource is done
     * *now* and rides the completion ring (no queue slot).
     */
    void
    Complete(TimeNs end, Callback done)
    {
        if (end == sim_.Now()) {
            if (done) sim_.Post(std::move(done));
            return;
        }
        // Null completions still take a timed marker event: Run() must
        // advance the clock past this resource's horizon (utilization and
        // duration accounting depend on it).
        sim_.ScheduleAt(end, std::move(done));
    }

    Simulator &sim_;
    TimeNs free_at_ = 0;
    TimeNs busy_time_ = 0;
};

}  // namespace sdf::sim

#endif  // SDF_SIM_FIFO_RESOURCE_H
