/**
 * @file
 * Object pools for per-request allocations on the simulation hot path.
 *
 * A cluster run makes millions of short-lived allocations: RPC settle
 * records, per-read GetOp state, IoSpan timelines. Each one is a
 * malloc/free pair on the critical path plus cache pollution from the
 * allocator's metadata. BlockPool recycles fixed-size blocks through a
 * free list carved out of slab allocations; PoolAllocator adapts it to
 * `std::allocate_shared`, so even the shared_ptr control block and the
 * payload land in one pooled block.
 */
#ifndef SDF_SIM_POOL_H
#define SDF_SIM_POOL_H

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace sdf::sim {

/**
 * Recycles raw blocks of one fixed size (fixed at first Alloc). Blocks
 * come from slab allocations of kSlabBlocks at a time; freed blocks go on
 * an embedded free list. Not thread-safe — like the simulator itself.
 *
 * The slab storage is shared-owned: every PoolAllocator (and thus every
 * pooled shared_ptr control block) co-owns it, so an allocation may
 * outlive the pool object itself. This matters at teardown — a pending
 * simulator event can hold a pooled shared_ptr whose pool (e.g. inside
 * net::Network) is destroyed before the Simulator; the slabs stay alive
 * until the last outstanding block returns.
 */
class BlockPool
{
  public:
    static constexpr size_t kSlabBlocks = 64;

    /** Slab storage + free list; kept alive by outstanding allocations. */
    struct State
    {
        void *
        Alloc(size_t bytes)
        {
            bytes = bytes < sizeof(void *) ? sizeof(void *) : bytes;
            if (block_size == 0) block_size = bytes;
            SDF_CHECK_MSG(bytes == block_size,
                          "BlockPool serves exactly one block size");
            if (free_list == nullptr) Grow();
            void *p = free_list;
            free_list = *static_cast<void **>(p);
            return p;
        }

        void
        Free(void *p) noexcept
        {
            *static_cast<void **>(p) = free_list;
            free_list = p;
        }

        void
        Grow()
        {
            // operator new guarantees max_align_t alignment; rounding the
            // stride up keeps every block in the slab on that boundary.
            const size_t stride =
                (block_size + alignof(std::max_align_t) - 1) &
                ~(alignof(std::max_align_t) - 1);
            slabs.emplace_back(static_cast<unsigned char *>(
                ::operator new(stride * kSlabBlocks)));
            unsigned char *base = slabs.back().get();
            for (size_t i = 0; i < kSlabBlocks; ++i) Free(base + i * stride);
        }

        struct Deleter
        {
            void
            operator()(unsigned char *p) const noexcept
            {
                ::operator delete(p);
            }
        };

        size_t block_size = 0;
        void *free_list = nullptr;  ///< Intrusive list through the blocks.
        std::vector<std::unique_ptr<unsigned char, Deleter>> slabs;
    };

    BlockPool() : state_(std::make_shared<State>()) {}
    BlockPool(const BlockPool &) = delete;
    BlockPool &operator=(const BlockPool &) = delete;

    void *Alloc(size_t bytes) { return state_->Alloc(bytes); }
    void Free(void *p) noexcept { state_->Free(p); }

    /** Blocks handed out across the pool's lifetime (slab occupancy). */
    size_t capacity() const { return state_->slabs.size() * kSlabBlocks; }

    const std::shared_ptr<State> &state() const { return state_; }

  private:
    std::shared_ptr<State> state_;
};

/**
 * Minimal allocator over a BlockPool for `std::allocate_shared`: the
 * combined control-block+payload node is the pool's one block size, so a
 * pooled shared_ptr costs zero heap traffic after warmup. The allocator
 * copy stored in each control block co-owns the pool's State, which is
 * what makes pooled shared_ptrs safe past the pool's destruction.
 */
template <typename T>
struct PoolAllocator
{
    using value_type = T;

    explicit PoolAllocator(BlockPool *pool) noexcept : state(pool->state()) {}
    template <typename U>
    PoolAllocator(const PoolAllocator<U> &other) noexcept : state(other.state)
    {
    }

    T *
    allocate(size_t n)
    {
        SDF_CHECK_MSG(n == 1, "PoolAllocator serves single objects");
        return static_cast<T *>(state->Alloc(sizeof(T)));
    }
    void
    deallocate(T *p, size_t) noexcept
    {
        state->Free(p);
    }

    template <typename U>
    bool
    operator==(const PoolAllocator<U> &o) const noexcept
    {
        return state == o.state;
    }
    template <typename U>
    bool
    operator!=(const PoolAllocator<U> &o) const noexcept
    {
        return state != o.state;
    }

    std::shared_ptr<BlockPool::State> state;
};

/**
 * allocate_shared through @p pool. One pool instance per (T, call site):
 * the node size must stay constant, which SDF_CHECKs if violated.
 */
template <typename T, typename... Args>
std::shared_ptr<T>
MakePooledShared(BlockPool &pool, Args &&...args)
{
    return std::allocate_shared<T>(PoolAllocator<T>(&pool),
                                   std::forward<Args>(args)...);
}

}  // namespace sdf::sim

#endif  // SDF_SIM_POOL_H
