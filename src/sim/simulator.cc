#include "sim/simulator.h"

#include <utility>

#include "util/assert.h"

namespace sdf::sim {

EventId
Simulator::Schedule(TimeNs delay, Callback cb)
{
    SDF_CHECK_MSG(delay >= 0, "negative event delay");
    return ScheduleAt(now_ + delay, std::move(cb));
}

EventId
Simulator::ScheduleAt(TimeNs when, Callback cb)
{
    SDF_CHECK_MSG(when >= now_, "scheduling into the past");
    const EventId id = next_id_++;
    queue_.push(Entry{when, id, std::move(cb)});
    return id;
}

void
Simulator::Cancel(EventId id)
{
    if (id != kInvalidEvent) cancelled_.insert(id);
}

void
Simulator::Step()
{
    Entry e = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        return;
    }
    now_ = e.when;
    ++events_processed_;
    e.cb();
}

void
Simulator::Run()
{
    while (!queue_.empty()) Step();
}

bool
Simulator::RunUntil(TimeNs deadline)
{
    while (!queue_.empty() && queue_.top().when <= deadline) Step();
    if (deadline > now_) now_ = deadline;
    // Drop any cancelled entries at the head so PendingEvents() is accurate.
    while (!queue_.empty() && cancelled_.count(queue_.top().id)) {
        cancelled_.erase(queue_.top().id);
        queue_.pop();
    }
    return !queue_.empty();
}

bool
Simulator::RunWhileNot(const std::function<bool()> &predicate)
{
    while (!predicate()) {
        if (queue_.empty()) return false;
        Step();
    }
    return true;
}

}  // namespace sdf::sim
