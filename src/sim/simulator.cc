#include "sim/simulator.h"

#include <utility>

#include "util/assert.h"

namespace sdf::sim {

EventId
Simulator::Schedule(TimeNs delay, Callback cb)
{
    SDF_CHECK_MSG(delay >= 0, "negative event delay");
    return ScheduleAt(now_ + delay, std::move(cb));
}

EventId
Simulator::ScheduleAt(TimeNs when, Callback cb)
{
    SDF_CHECK_MSG(when >= now_, "scheduling into the past");
    const EventId id = next_id_++;
    queue_.push(Entry{when, id, std::move(cb)});
    live_.insert(id);
    return id;
}

void
Simulator::Cancel(EventId id)
{
    // Erasing from the live set is naturally idempotent: cancelling an id
    // that already fired (or a garbage id) is a no-op rather than a
    // permanent bookkeeping leak.
    live_.erase(id);
}

void
Simulator::Step()
{
    Entry e = queue_.top();
    queue_.pop();
    if (live_.erase(e.id) == 0) return;  // cancelled
    now_ = e.when;
    ++events_processed_;
    e.cb();
}

void
Simulator::Run()
{
    while (!queue_.empty()) Step();
}

bool
Simulator::RunUntil(TimeNs deadline)
{
    while (!queue_.empty() && queue_.top().when <= deadline) Step();
    if (deadline > now_) now_ = deadline;
    // Drop cancelled entries at the head so "events remain" is accurate.
    while (!queue_.empty() && live_.count(queue_.top().id) == 0) {
        queue_.pop();
    }
    return !queue_.empty();
}

bool
Simulator::RunWhileNot(const std::function<bool()> &predicate)
{
    while (!predicate()) {
        if (queue_.empty()) return false;
        Step();
    }
    return true;
}

}  // namespace sdf::sim
