#include "sim/simulator.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "util/assert.h"

namespace sdf::sim {

namespace {

/** Process-wide default for default-constructed Simulators. */
EngineKind &
MutableDefaultEngine()
{
    static EngineKind kind = EngineKind::kCalendar;
    return kind;
}

}  // namespace

const char *
EngineName(EngineKind kind)
{
    return kind == EngineKind::kHeap ? "heap" : "calendar";
}

bool
ParseEngineName(const char *name, EngineKind *out)
{
    if (std::strcmp(name, "heap") == 0) {
        *out = EngineKind::kHeap;
        return true;
    }
    if (std::strcmp(name, "calendar") == 0) {
        *out = EngineKind::kCalendar;
        return true;
    }
    return false;
}

EngineKind
DefaultEngine()
{
    return MutableDefaultEngine();
}

void
SetDefaultEngine(EngineKind kind)
{
    MutableDefaultEngine() = kind;
}

Simulator::Simulator(EngineKind engine) : Simulator(engine, CalendarConfig{})
{
}

Simulator::Simulator(EngineKind engine, const CalendarConfig &calendar)
    : engine_(engine),
      width_log2_(calendar.bucket_width_log2),
      bucket_count_(calendar.bucket_count)
{
    if (engine_ == EngineKind::kCalendar) {
        SDF_CHECK_MSG(bucket_count_ > 0 &&
                          (bucket_count_ & (bucket_count_ - 1)) == 0,
                      "calendar bucket count must be a power of two");
        SDF_CHECK_MSG(width_log2_ > 0 && width_log2_ < 32,
                      "calendar bucket width out of range");
        buckets_.resize(bucket_count_);
        occupied_.resize((bucket_count_ + 63) / 64, 0);
    }
}

EventId
Simulator::Schedule(TimeNs delay, Callback cb)
{
    SDF_CHECK_MSG(delay >= 0, "negative event delay");
    return ScheduleAt(now_ + delay, std::move(cb));
}

EventId
Simulator::ScheduleAt(TimeNs when, Callback cb)
{
    SDF_CHECK_MSG(when >= now_, "scheduling into the past");
    ++live_count_;
    if (engine_ == EngineKind::kHeap) {
        const uint64_t id = next_seq_++;
        heap_.push_back(HeapEntry{when, id, std::move(cb)});
        std::push_heap(heap_.begin(), heap_.end(), EntryLater{});
        heap_live_.insert(id);
        return id;
    }
    const uint32_t idx = AcquireSlot();
    Slot &s = slots_[idx];
    s.when = when;
    s.seq = next_seq_++;
    s.next = kNil;
    s.armed = true;
    s.cb = std::move(cb);
    CalendarInsert(idx);
    return IdOf(idx);
}

void
Simulator::Post(Callback cb)
{
    ring_.push_back(RingItem{next_seq_++, std::move(cb)});
}

void
Simulator::Cancel(EventId id)
{
    if (engine_ == EngineKind::kHeap) {
        // Erasing from the live set is naturally idempotent: cancelling an
        // id that already fired (or a garbage id) is a no-op rather than a
        // permanent bookkeeping leak. The heap entry itself is discarded
        // lazily when it reaches the top.
        if (heap_live_.erase(id) != 0) --live_count_;
        return;
    }
    // Calendar ids are (slot+1, generation); a stale or foreign id fails
    // one of the checks below and cancels nothing. The slot stays in its
    // bucket/heap as a tombstone (discarded at pop), but the callback's
    // resources are released immediately.
    const uint64_t slot_part = id >> 32;
    if (slot_part == 0 || slot_part > slots_.size()) return;
    Slot &s = slots_[static_cast<uint32_t>(slot_part - 1)];
    if (s.gen != static_cast<uint32_t>(id) || !s.armed) return;
    s.armed = false;
    s.cb = nullptr;
    --live_count_;
}

uint32_t
Simulator::AcquireSlot()
{
    if (free_slots_.empty()) {
        slots_.emplace_back();
        return static_cast<uint32_t>(slots_.size() - 1);
    }
    const uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
}

void
Simulator::FreeSlot(uint32_t idx)
{
    Slot &s = slots_[idx];
    ++s.gen;  // Stale EventIds for this slot stop matching.
    s.armed = false;
    s.next = kNil;
    free_slots_.push_back(idx);
}

EventId
Simulator::IdOf(uint32_t idx) const
{
    return (static_cast<uint64_t>(idx) + 1) << 32 | slots_[idx].gen;
}

void
Simulator::CalendarInsert(uint32_t slot_idx)
{
    const Slot &s = slots_[slot_idx];
    const TimeNs span = static_cast<TimeNs>(bucket_count_) << width_log2_;
    if (s.when >= window_start_ + span) {
        overflow_.push_back(HeapRef{s.when, s.seq, slot_idx});
        std::push_heap(overflow_.begin(), overflow_.end(), RefLater{});
        return;
    }
    // The window can sit ahead of the clock right after a rotation (the
    // earliest event then was far in the future); anything scheduled
    // before it joins the near heap, which tolerates any timestamp.
    const uint64_t bucket =
        s.when < window_start_
            ? 0
            : static_cast<uint64_t>(s.when - window_start_) >> width_log2_;
    if (bucket <= cur_bucket_) {
        near_.push_back(HeapRef{s.when, s.seq, slot_idx});
        std::push_heap(near_.begin(), near_.end(), RefLater{});
        return;
    }
    Bucket &b = buckets_[bucket];
    if (b.tail == kNil) {
        b.head = b.tail = slot_idx;
        occupied_[bucket >> 6] |= uint64_t{1} << (bucket & 63);
    } else {
        slots_[b.tail].next = slot_idx;
        b.tail = slot_idx;
    }
    ++wheel_count_;
}

bool
Simulator::CalendarSettle()
{
    for (;;) {
        // Tombstones (cancelled slots) are discarded here so the heap top
        // is always a live event — PendingEvents() never depends on them.
        while (!near_.empty() && !slots_[near_.front().slot].armed) {
            std::pop_heap(near_.begin(), near_.end(), RefLater{});
            FreeSlot(near_.back().slot);
            near_.pop_back();
        }
        if (!near_.empty()) return true;
        if (wheel_count_ > 0) {
            // Skip-scan the occupancy bitmap to the next loaded bucket,
            // then splice its whole list into the near heap at once.
            uint64_t b = cur_bucket_ + 1;
            uint64_t word_idx = b >> 6;
            uint64_t word = occupied_[word_idx] & (~uint64_t{0} << (b & 63));
            while (word == 0) {
                ++word_idx;
                SDF_CHECK_MSG(word_idx < occupied_.size(),
                              "calendar occupancy desynced");
                word = occupied_[word_idx];
            }
            b = (word_idx << 6) +
                static_cast<uint64_t>(__builtin_ctzll(word));
            cur_bucket_ = static_cast<uint32_t>(b);
            Bucket &bucket = buckets_[b];
            for (uint32_t idx = bucket.head; idx != kNil;) {
                const Slot &s = slots_[idx];
                near_.push_back(HeapRef{s.when, s.seq, idx});
                --wheel_count_;
                idx = s.next;
            }
            bucket.head = bucket.tail = kNil;
            occupied_[word_idx] &= ~(uint64_t{1} << (b & 63));
            std::make_heap(near_.begin(), near_.end(), RefLater{});
            continue;
        }
        if (!overflow_.empty()) {
            RotateWindow();
            continue;
        }
        return false;
    }
}

void
Simulator::RotateWindow()
{
    // The wheel is empty; restart it at the earliest far-future event and
    // migrate everything that now fits. Migration is a single O(n)
    // partition of the raw overflow vector — a rotation typically moves
    // a large fraction of the heap, so per-event pop_heap (k log n) loses
    // badly. Migration order is arbitrary; FIFO correctness never depends
    // on bucket-list order — the near heap's (when, seq) comparator is
    // the single source of ordering truth.
    const TimeNs width_mask = (TimeNs{1} << width_log2_) - 1;
    window_start_ = overflow_.front().when & ~width_mask;
    cur_bucket_ = 0;
    const TimeNs span = static_cast<TimeNs>(bucket_count_) << width_log2_;
    const TimeNs window_end = window_start_ + span;
    size_t keep = 0;
    for (const HeapRef ref : overflow_) {
        if (!slots_[ref.slot].armed) {
            FreeSlot(ref.slot);  // Tombstone: drop it during the sweep.
        } else if (ref.when < window_end) {
            CalendarInsert(ref.slot);
        } else {
            overflow_[keep++] = ref;
        }
    }
    overflow_.resize(keep);
    std::make_heap(overflow_.begin(), overflow_.end(), RefLater{});
}

bool
Simulator::PeekTimed(TimeNs *when, uint64_t *seq)
{
    if (engine_ == EngineKind::kHeap) {
        HeapDropCancelledHead();
        if (heap_.empty()) return false;
        *when = heap_.front().when;
        *seq = heap_.front().seq;
        return true;
    }
    if (!CalendarSettle()) return false;
    *when = near_.front().when;
    *seq = near_.front().seq;
    return true;
}

void
Simulator::HeapDropCancelledHead()
{
    while (!heap_.empty() && heap_live_.count(heap_.front().seq) == 0) {
        std::pop_heap(heap_.begin(), heap_.end(), EntryLater{});
        heap_.pop_back();
    }
}

void
Simulator::FireTimedHead()
{
    if (engine_ == EngineKind::kHeap) {
        // The owned vector heap is what lets dispatch MOVE the entry out;
        // the seed's priority_queue::top() is const and forced a copy of
        // every callback here.
        std::pop_heap(heap_.begin(), heap_.end(), EntryLater{});
        HeapEntry e = std::move(heap_.back());
        heap_.pop_back();
        heap_live_.erase(e.seq);
        --live_count_;
        now_ = e.when;
        ++events_processed_;
        if (e.cb) e.cb();
        return;
    }
    std::pop_heap(near_.begin(), near_.end(), RefLater{});
    const HeapRef ref = near_.back();
    near_.pop_back();
    Slot &s = slots_[ref.slot];
    now_ = ref.when;
    ++events_processed_;
    --live_count_;
    // Free the slot before invoking so the callback can recycle it; its
    // own EventId goes stale first, making self-cancel a harmless no-op.
    Callback cb = std::move(s.cb);
    FreeSlot(ref.slot);
    if (cb) cb();
}

void
Simulator::FireRingHead()
{
    RingItem item = std::move(ring_[ring_head_]);
    ++ring_head_;
    if (ring_head_ == ring_.size()) {
        ring_.clear();
        ring_head_ = 0;
    }
    ++events_processed_;
    if (item.cb) item.cb();
}

bool
Simulator::PopNext()
{
    const bool have_ring = ring_head_ < ring_.size();
    TimeNs when = 0;
    uint64_t seq = 0;
    const bool have_timed = PeekTimed(&when, &seq);
    if (!have_ring && !have_timed) return false;
    // Ring items are due at the current time; a timed event wins only if
    // it is also due now and was scheduled earlier (smaller sequence).
    if (have_ring &&
        (!have_timed || when > now_ || seq > ring_[ring_head_].seq)) {
        FireRingHead();
    } else {
        FireTimedHead();
    }
    return true;
}

void
Simulator::Run()
{
    while (PopNext()) {
    }
}

bool
Simulator::RunUntil(TimeNs deadline)
{
    for (;;) {
        const bool have_ring = ring_head_ < ring_.size();
        TimeNs when = 0;
        uint64_t seq = 0;
        const bool have_timed = PeekTimed(&when, &seq);
        const bool ring_due = have_ring && now_ <= deadline;
        const bool timed_due = have_timed && when <= deadline;
        if (!ring_due && !timed_due) break;
        if (ring_due &&
            (!timed_due || when > now_ || seq > ring_[ring_head_].seq)) {
            FireRingHead();
        } else {
            FireTimedHead();
        }
    }
    if (deadline > now_) now_ = deadline;
    return PendingEvents() > 0;
}

bool
Simulator::RunWhileNot(const std::function<bool()> &predicate)
{
    while (!predicate()) {
        if (!PopNext()) return false;
    }
    return true;
}

}  // namespace sdf::sim
