/**
 * @file
 * The discrete-event simulation core.
 *
 * Every component in the SDF reproduction — flash planes, channel buses,
 * host links, LSM compaction, client actors — advances by scheduling
 * callbacks on a single Simulator. Simulated time is in nanoseconds and
 * totally ordered: events with equal timestamps fire in scheduling order,
 * which makes every run deterministic.
 *
 * Two interchangeable engines implement the queue (same dispatch order,
 * byte-identical runs — see DESIGN.md §14):
 *
 *  - kCalendar (default): a bucketed calendar queue. Near-future events
 *    land in fixed-width time buckets (O(1) insert), the bucket being
 *    drained is kept in a small binary heap, and far-future events wait
 *    in an overflow heap until the window rotates over them. Event state
 *    lives in a pooled slot array; EventIds carry a generation stamp so
 *    Cancel() and PendingEvents() are O(1) with no hash table.
 *  - kHeap: the seed engine kept as a reference implementation — a binary
 *    heap ordered by (time, sequence) plus a live-id set. Slower, but
 *    structurally simple; `--engine=heap` selects it for A/B debugging.
 *
 * Both engines share the completion ring (Post()): a FIFO of callbacks
 * due at the current timestamp, drained in sequence order interleaved
 * with the timed queue. A completion that needs no further delay rides
 * the ring instead of paying for a queue slot — the PureFlash-style
 * polling seam the device, network and client layers batch through.
 */
#ifndef SDF_SIM_SIMULATOR_H
#define SDF_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/callback.h"
#include "util/units.h"

namespace sdf::obs {
class Hub;
}  // namespace sdf::obs

namespace sdf::sim {

using util::TimeNs;

/** Opaque handle for cancelling a scheduled event. */
using EventId = uint64_t;

/** Sentinel for "no event". */
inline constexpr EventId kInvalidEvent = 0;

/** Which event-queue implementation a Simulator runs on. */
enum class EngineKind : uint8_t
{
    kHeap = 0,      ///< Reference binary heap + live-id set (seed engine).
    kCalendar = 1,  ///< Bucketed calendar queue with pooled slots (fast).
};

/** "heap" / "calendar". */
const char *EngineName(EngineKind kind);

/** Parse an --engine= value; @return false on an unknown name. */
bool ParseEngineName(const char *name, EngineKind *out);

/**
 * Engine used by default-constructed Simulators. Defaults to kCalendar;
 * the shared CLI's --engine flag overrides it process-wide so every
 * binary can A/B the engines without threading a parameter through each
 * construction site.
 */
EngineKind DefaultEngine();
void SetDefaultEngine(EngineKind kind);

/**
 * Single-threaded discrete-event simulator.
 *
 * Callbacks may schedule further events (including at the current time);
 * they must not block. Exceptions escaping a callback propagate out of
 * Run()/RunUntil().
 */
class Simulator
{
  public:
    /** Calendar-queue geometry (ignored by the heap engine). */
    struct CalendarConfig
    {
        /** log2 of the bucket width in ns (13 -> 8.192 us buckets). */
        uint32_t bucket_width_log2 = 13;
        /** Bucket count; power of two. Window = width * count (~67 ms at
         *  the defaults) — delays beyond it take the overflow heap. The
         *  window is sized to swallow RPC-timeout-scale delays (50 ms):
         *  they are the dominant far-future events, and keeping them in
         *  the wheel makes rotations (and the overflow round trips of
         *  events scheduled near the window's end) rare. */
        uint32_t bucket_count = 8192;
    };

    explicit Simulator(EngineKind engine = DefaultEngine());
    Simulator(EngineKind engine, const CalendarConfig &calendar);
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    TimeNs Now() const { return now_; }

    /** Engine this instance runs on. */
    EngineKind engine() const { return engine_; }

    /** Schedule @p cb to run @p delay ns from now (delay >= 0). */
    EventId Schedule(TimeNs delay, Callback cb);

    /** Schedule @p cb at absolute time @p when (when >= Now()). */
    EventId ScheduleAt(TimeNs when, Callback cb);

    /**
     * Completion ring: run @p cb at the current timestamp, after every
     * event already scheduled for this timestamp, in post order —
     * exactly the dispatch order of `Schedule(0, cb)`, without a queue
     * slot, a handle, or cancellation support. The batched-completion
     * seam: device completions, RPC settles and client sheds that need
     * no further simulated delay ride the ring and are drained once per
     * dispatch step.
     */
    void Post(Callback cb);

    /** Cancel a pending event; no-op if already fired or invalid. */
    void Cancel(EventId id);

    /** Run until the event queue is empty. */
    void Run();

    /**
     * Run all events with timestamp <= @p deadline, then advance the clock
     * to @p deadline.
     * @return true if events remain pending after the deadline.
     */
    bool RunUntil(TimeNs deadline);

    /**
     * Fire events one at a time until @p predicate() returns true or the
     * queue drains.
     * @return true if the predicate was satisfied.
     */
    bool RunWhileNot(const std::function<bool()> &predicate);

    /** Total events dispatched (for stats and microbenchmarks). */
    uint64_t events_processed() const { return events_processed_; }

    /** Number of pending (uncancelled) events, including posted ones. */
    size_t
    PendingEvents() const
    {
        return live_count_ + (ring_.size() - ring_head_);
    }

    /**
     * Observability hub for this run, or null (the default). Components
     * hold a `Simulator &` already, so the hub rides on it: install it
     * *before* constructing the stack and every layer self-registers its
     * metrics. The simulator never reads the hub itself.
     */
    obs::Hub *hub() const { return hub_; }
    void set_hub(obs::Hub *hub) { hub_ = hub; }

  private:
    static constexpr uint32_t kNil = 0xFFFFFFFFu;

    /** Pooled event state; index + generation form the EventId. */
    struct Slot
    {
        TimeNs when = 0;
        uint64_t seq = 0;    ///< Global insertion order (FIFO tiebreak).
        uint32_t gen = 1;    ///< Bumped on free; stale ids never match.
        uint32_t next = kNil;  ///< Intrusive bucket-list link.
        bool armed = false;  ///< False once fired or cancelled.
        Callback cb;
    };

    /** Heap item for the near / overflow heaps (min by when, then seq). */
    struct HeapRef
    {
        TimeNs when;
        uint64_t seq;
        uint32_t slot;
    };
    struct RefLater
    {
        bool
        operator()(const HeapRef &a, const HeapRef &b) const
        {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    struct Bucket
    {
        uint32_t head = kNil;
        uint32_t tail = kNil;
    };

    /** Completion-ring entry: due at its post-time (== now forever). */
    struct RingItem
    {
        uint64_t seq;
        Callback cb;
    };

    // ---- shared plumbing ----
    uint32_t AcquireSlot();
    void FreeSlot(uint32_t idx);
    EventId IdOf(uint32_t idx) const;
    /** Fire the next due item (ring or queue). @return false when empty. */
    bool PopNext();
    /** Earliest (when, seq) in the timed queue; false when empty. */
    bool PeekTimed(TimeNs *when, uint64_t *seq);
    /** Pop the timed-queue head (must exist) and fire it. */
    void FireTimedHead();
    void FireRingHead();

    // ---- calendar engine ----
    void CalendarInsert(uint32_t slot_idx);
    /** Refill near_ so its top is the queue minimum; false when empty. */
    bool CalendarSettle();
    void RotateWindow();

    // ---- heap engine ----
    void HeapDropCancelledHead();

    EngineKind engine_;
    TimeNs now_ = 0;
    uint64_t next_seq_ = 1;
    uint64_t events_processed_ = 0;
    size_t live_count_ = 0;
    obs::Hub *hub_ = nullptr;

    /** Calendar engine's slot pool. */
    std::vector<Slot> slots_;
    std::vector<uint32_t> free_slots_;

    /** Completion ring: FIFO, drained by seq against the timed queue. */
    std::vector<RingItem> ring_;
    size_t ring_head_ = 0;

    // Calendar engine state.
    uint32_t width_log2_;
    uint32_t bucket_count_;     ///< Power of two.
    TimeNs window_start_ = 0;   ///< Aligned to the bucket width.
    uint32_t cur_bucket_ = 0;
    uint64_t wheel_count_ = 0;  ///< Events in bucket lists (not near_).
    std::vector<Bucket> buckets_;
    std::vector<uint64_t> occupied_;   ///< One bit per bucket.
    std::vector<HeapRef> near_;        ///< Heap: current bucket's events.
    std::vector<HeapRef> overflow_;    ///< Heap: events past the window.

    /**
     * Heap reference engine state, structurally the seed design: whole
     * entries (callback included) sift through one binary heap, and a
     * hash set of live ids backs Cancel()/PendingEvents(). Kept as the
     * baseline the calendar engine is measured against; the one seed bug
     * fixed here is the forced callback copy on dispatch — the owned
     * vector heap lets Step() move the entry out instead.
     */
    struct HeapEntry
    {
        TimeNs when;
        uint64_t seq;  ///< Doubles as the EventId in this engine.
        Callback cb;
    };
    struct EntryLater
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::vector<HeapEntry> heap_;
    std::unordered_set<uint64_t> heap_live_;
};

}  // namespace sdf::sim

#endif  // SDF_SIM_SIMULATOR_H
