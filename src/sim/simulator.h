/**
 * @file
 * The discrete-event simulation core.
 *
 * Every component in the SDF reproduction — flash planes, channel buses,
 * host links, LSM compaction, client actors — advances by scheduling
 * callbacks on a single Simulator. Simulated time is in nanoseconds and
 * totally ordered: events with equal timestamps fire in scheduling order,
 * which makes every run deterministic.
 */
#ifndef SDF_SIM_SIMULATOR_H
#define SDF_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace sdf::obs {
class Hub;
}  // namespace sdf::obs

namespace sdf::sim {

using util::TimeNs;

/** Callback invoked when an event fires. */
using Callback = std::function<void()>;

/** Opaque handle for cancelling a scheduled event. */
using EventId = uint64_t;

/** Sentinel for "no event". */
inline constexpr EventId kInvalidEvent = 0;

/**
 * Single-threaded discrete-event simulator.
 *
 * Callbacks may schedule further events (including at the current time);
 * they must not block. Exceptions escaping a callback propagate out of
 * Run()/RunUntil().
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    TimeNs Now() const { return now_; }

    /** Schedule @p cb to run @p delay ns from now (delay >= 0). */
    EventId Schedule(TimeNs delay, Callback cb);

    /** Schedule @p cb at absolute time @p when (when >= Now()). */
    EventId ScheduleAt(TimeNs when, Callback cb);

    /** Cancel a pending event; no-op if already fired or invalid. */
    void Cancel(EventId id);

    /** Run until the event queue is empty. */
    void Run();

    /**
     * Run all events with timestamp <= @p deadline, then advance the clock
     * to @p deadline.
     * @return true if events remain pending after the deadline.
     */
    bool RunUntil(TimeNs deadline);

    /**
     * Fire events one at a time until @p predicate() returns true or the
     * queue drains.
     * @return true if the predicate was satisfied.
     */
    bool RunWhileNot(const std::function<bool()> &predicate);

    /** Total events dispatched (for stats and microbenchmarks). */
    uint64_t events_processed() const { return events_processed_; }

    /** Number of pending (uncancelled) events. */
    size_t PendingEvents() const { return live_.size(); }

    /**
     * Observability hub for this run, or null (the default). Components
     * hold a `Simulator &` already, so the hub rides on it: install it
     * *before* constructing the stack and every layer self-registers its
     * metrics. The simulator never reads the hub itself.
     */
    obs::Hub *hub() const { return hub_; }
    void set_hub(obs::Hub *hub) { hub_ = hub; }

  private:
    struct Entry
    {
        TimeNs when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when) return a.when > b.when;
            return a.id > b.id;  // equal timestamps: FIFO by insertion order
        }
    };

    /** Pop and run the earliest pending event. Pre: queue not empty. */
    void Step();

    TimeNs now_ = 0;
    EventId next_id_ = 1;
    uint64_t events_processed_ = 0;
    obs::Hub *hub_ = nullptr;
    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    /**
     * Ids of scheduled-but-not-yet-fired events. Tracking the *live* set
     * (rather than a cancelled set) makes Cancel() a no-op for ids that
     * already fired or were never issued — a stale id can no longer leave
     * permanent residue that skews PendingEvents().
     */
    std::unordered_set<EventId> live_;
};

}  // namespace sdf::sim

#endif  // SDF_SIM_SIMULATOR_H
