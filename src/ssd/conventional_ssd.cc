#include "ssd/conventional_ssd.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "nand/timing.h"
#include "obs/hub.h"
#include "util/assert.h"

namespace sdf::ssd {

namespace {

/** Flat per-channel block id -> NAND block address. */
nand::BlockAddr
FlatToBlockAddr(const nand::Geometry &geo, uint32_t flat)
{
    return nand::BlockFromFlat(geo, flat);
}

/** Flat per-channel page id -> NAND page address. */
nand::PageAddr
FlatToPageAddr(const nand::Geometry &geo, uint32_t ppn)
{
    const uint32_t ppb = geo.pages_per_block;
    const nand::BlockAddr b = nand::BlockFromFlat(geo, ppn / ppb);
    return nand::PageAddr{b.plane, b.block, ppn % ppb};
}

}  // namespace

ConventionalSsd::ConventionalSsd(sim::Simulator &sim,
                                 const ConventionalSsdConfig &config)
    : sim_(sim),
      config_(config),
      flash_(std::make_unique<nand::FlashArray>(sim, config.flash)),
      link_(std::make_unique<controller::Link>(sim, config.link)),
      firmware_(sim),
      striping_(config.flash.geometry.channels, config.stripe_bytes)
{
    const nand::Geometry &geo = flash_->geometry();
    SDF_CHECK_MSG(config_.stripe_bytes % geo.page_size == 0,
                  "stripe unit must be a multiple of the page size");
    SDF_CHECK(config_.op_ratio >= 0.0 && config_.op_ratio < 1.0);
    SDF_CHECK(config_.gc_high_watermark > config_.gc_low_watermark);

    const uint32_t planes = geo.PlanesPerChannel();
    const uint32_t ppb = geo.pages_per_block;
    const uint32_t channels = geo.channels;

    // Logical sizing: identical across channels (striping requires it), so
    // use the worst channel's good-block count.
    uint32_t min_good = geo.BlocksPerChannel();
    for (uint32_t c = 0; c < channels; ++c) {
        uint32_t good = 0;
        for (uint32_t f = 0; f < geo.BlocksPerChannel(); ++f) {
            if (!flash_->channel(c).block_meta(FlatToBlockAddr(geo, f)).bad)
                ++good;
        }
        min_good = std::min(min_good, good);
    }

    // Reserve: one host frontier and one GC frontier per plane, plus GC
    // headroom. Over-provisioning comes out of what remains.
    const uint32_t reserve = 2 * planes + config_.gc_high_watermark;
    SDF_CHECK_MSG(min_good > reserve, "geometry too small for reserves");
    const auto usable = static_cast<uint32_t>(min_good - reserve);
    auto logical_blocks =
        static_cast<uint32_t>(usable * (1.0 - config_.op_ratio));
    SDF_CHECK_MSG(logical_blocks > 0, "over-provisioning leaves no space");

    uint32_t data_blocks = logical_blocks;
    uint32_t parity_blocks = 0;
    if (config_.parity && channels > 1) {
        data_blocks = logical_blocks * (channels - 1) / channels;
        parity_blocks = logical_blocks - data_blocks;
    }
    data_lpns_per_channel_ = data_blocks * ppb;
    parity_lpns_per_channel_ = parity_blocks * ppb;
    user_capacity_ =
        uint64_t{channels} * data_lpns_per_channel_ * geo.page_size;

    channels_.resize(channels);
    for (uint32_t c = 0; c < channels; ++c) {
        ChannelFtl &cf = channels_[c];
        cf.map = std::make_unique<ftl::PageMap>(
            data_lpns_per_channel_ + parity_lpns_per_channel_,
            static_cast<uint32_t>(geo.PagesPerChannel()), ppb);
        cf.planes.resize(planes);
        for (uint32_t f = 0; f < geo.BlocksPerChannel(); ++f) {
            const nand::BlockAddr addr = FlatToBlockAddr(geo, f);
            if (flash_->channel(c).block_meta(addr).bad) continue;
            cf.planes[addr.plane].free_pool.Release(f, 0);
        }
    }

    if (obs::Hub *hub = sim.hub()) {
        hub_ = hub;
        obs::MetricsRegistry &m = hub->metrics();
        metric_prefix_ = m.UniquePrefix("ssd");
        m.RegisterCounter(metric_prefix_ + ".host_reads", &stats_.host_reads);
        m.RegisterCounter(metric_prefix_ + ".host_writes",
                          &stats_.host_writes);
        m.RegisterCounter(metric_prefix_ + ".host_read_bytes",
                          &stats_.host_read_bytes);
        m.RegisterCounter(metric_prefix_ + ".host_written_bytes",
                          &stats_.host_written_bytes);
        m.RegisterCounter(metric_prefix_ + ".gc_pages_moved",
                          &stats_.gc_pages_moved);
        m.RegisterCounter(metric_prefix_ + ".parity_pages_written",
                          &stats_.parity_pages_written);
        m.RegisterCounter(metric_prefix_ + ".gc_erases", &stats_.gc_erases);
        m.RegisterCounter(metric_prefix_ + ".swl_migrations",
                          &stats_.swl_migrations);
        m.RegisterCounter(metric_prefix_ + ".cache_hit_pages",
                          &stats_.cache_hit_pages);
        m.RegisterCounter(metric_prefix_ + ".read_errors",
                          &stats_.read_errors);
        m.RegisterGauge(metric_prefix_ + ".write_amplification",
                        [this]() { return stats_.WriteAmplification(); });
    }
}

ConventionalSsd::~ConventionalSsd()
{
    if (hub_ != nullptr) hub_->metrics().UnregisterPrefix(metric_prefix_);
}

uint32_t
ConventionalSsd::FreeBlocks(uint32_t channel) const
{
    return TotalFree(channel);
}

uint32_t
ConventionalSsd::TotalFree(uint32_t ch) const
{
    uint32_t total = 0;
    for (const PlaneState &ps : channels_[ch].planes)
        total += static_cast<uint32_t>(ps.free_pool.FreeCount());
    return total;
}

bool
ConventionalSsd::GcActive() const
{
    for (const ChannelFtl &cf : channels_)
        if (cf.gc_active) return true;
    return false;
}

// ---------------------------------------------------------------------------
// Request admission
// ---------------------------------------------------------------------------

void
ConventionalSsd::Read(uint64_t offset, uint64_t length, IoCallback done,
                      std::vector<uint8_t> *out)
{
    Admit(PendingRequest{false, offset, length, std::move(done), nullptr, out});
}

void
ConventionalSsd::Write(uint64_t offset, uint64_t length, IoCallback done,
                       const uint8_t *data)
{
    Admit(PendingRequest{true, offset, length, std::move(done), data, nullptr});
}

void
ConventionalSsd::Admit(PendingRequest req)
{
    const uint32_t page = PageSize();
    if (req.length == 0 || req.offset % page != 0 || req.length % page != 0 ||
        req.offset + req.length > user_capacity_) {
        if (req.done) {
            sim_.Post([done = std::move(req.done)]() { done(false); });
        }
        return;
    }
    if (outstanding_ >= config_.max_outstanding) {
        admission_queue_.push_back(std::move(req));
        return;
    }
    ++outstanding_;
    if (req.is_write) {
        StartWrite(std::move(req));
    } else {
        StartRead(std::move(req));
    }
}

void
ConventionalSsd::FinishRequest()
{
    SDF_CHECK(outstanding_ > 0);
    --outstanding_;
    while (outstanding_ < config_.max_outstanding && !admission_queue_.empty()) {
        PendingRequest next = std::move(admission_queue_.front());
        admission_queue_.pop_front();
        ++outstanding_;
        if (next.is_write) {
            StartWrite(std::move(next));
        } else {
            StartRead(std::move(next));
        }
    }
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void
ConventionalSsd::StartRead(PendingRequest req)
{
    ++stats_.host_reads;
    stats_.host_read_bytes += req.length;

    const uint32_t page = PageSize();
    const auto pages = static_cast<uint32_t>(req.length / page);
    if (req.out) req.out->assign(req.length, 0);

    // Shared completion state for the scatter of per-page reads.
    struct ReadState
    {
        uint32_t remaining;
        bool ok = true;
        IoCallback done;
        std::vector<uint8_t> *out;
        uint64_t offset;
        uint64_t length;
    };
    auto state = std::make_shared<ReadState>();
    state->remaining = pages;
    state->done = std::move(req.done);
    state->out = req.out;
    state->offset = req.offset;
    state->length = req.length;

    auto page_complete = [this, state]() {
        if (--state->remaining > 0) return;
        // All flash pages in; stream the payload to the host.
        link_->TransferToHost(
            sim_.Now(), state->length,
            [this, state]() {
                if (state->done) state->done(state->ok);
                FinishRequest();
            });
    };

    firmware_.Submit(config_.fw_cost_per_read_request, [this, state, page,
                                                        pages, page_complete]() {
        for (uint32_t i = 0; i < pages; ++i) {
            const uint64_t byte_off = state->offset + uint64_t{i} * page;
            const uint32_t ch = striping_.ChannelOf(byte_off);
            const auto lpn = static_cast<uint32_t>(
                striping_.ChannelOffset(byte_off) / page);
            const size_t out_pos = static_cast<size_t>(uint64_t{i} * page);

            firmware_.Submit(config_.fw_cost_read_page, [this, state, ch, lpn,
                                                         out_pos, page,
                                                         page_complete]() {
                ChannelFtl &cf = channels_[ch];
                // DRAM cache hit: data still dirty in the write-back buffer.
                auto dirty = dirty_pages_.find(DirtyKey(ch, lpn));
                if (dirty != dirty_pages_.end()) {
                    ++stats_.cache_hit_pages;
                    if (state->out && dirty->second.payload) {
                        std::memcpy(state->out->data() + out_pos,
                                    dirty->second.payload->data(),
                                    std::min<size_t>(page,
                                        dirty->second.payload->size()));
                    }
                    page_complete();
                    return;
                }
                const uint32_t ppn = cf.map->Lookup(lpn);
                if (ppn == ftl::kUnmappedPage) {
                    // Never written: zeros, no flash access.
                    page_complete();
                    return;
                }
                auto buf = state->out
                               ? std::make_shared<std::vector<uint8_t>>()
                               : nullptr;
                flash_->channel(ch).ReadPage(
                    FlatToPageAddr(flash_->geometry(), ppn),
                    [this, state, buf, out_pos, page,
                     page_complete](nand::OpStatus status) {
                        if (status == nand::OpStatus::kReadUncorrectable) {
                            state->ok = false;
                            ++stats_.read_errors;
                        }
                        if (state->out && buf) {
                            std::memcpy(state->out->data() + out_pos,
                                        buf->data(),
                                        std::min<size_t>(page, buf->size()));
                        }
                        page_complete();
                    },
                    buf.get());
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Write path (write-back through the DRAM cache)
// ---------------------------------------------------------------------------

void
ConventionalSsd::StartWrite(PendingRequest req)
{
    ++stats_.host_writes;
    stats_.host_written_bytes += req.length;

    const uint64_t offset = req.offset;
    const uint64_t length = req.length;
    const uint8_t *data = req.data;
    auto done = std::move(req.done);

    firmware_.Submit(config_.fw_cost_per_write_request,
                     [this, offset, length, data,
                      done = std::move(done)]() mutable {
        link_->TransferToDevice(sim_.Now(), length, [this, offset, length,
                                                     data,
                                                     done = std::move(done)]() mutable {
            // Data has landed in device DRAM; now claim write-back space.
            auto admit = [this, offset, length, data,
                          done = std::move(done)]() mutable {
                cache_used_ += length;
                const uint32_t page = PageSize();
                const auto pages = static_cast<uint32_t>(length / page);
                for (uint32_t i = 0; i < pages; ++i) {
                    const uint64_t byte_off = offset + uint64_t{i} * page;
                    const uint32_t ch = striping_.ChannelOf(byte_off);
                    const auto lpn = static_cast<uint32_t>(
                        striping_.ChannelOffset(byte_off) / page);
                    std::shared_ptr<std::vector<uint8_t>> payload;
                    if (data && config_.flash.store_payloads) {
                        payload = std::make_shared<std::vector<uint8_t>>(
                            data + uint64_t{i} * page,
                            data + uint64_t{i + 1} * page);
                    }
                    DirtyEntry &entry = dirty_pages_[DirtyKey(ch, lpn)];
                    ++entry.refs;
                    if (payload) entry.payload = payload;
                    channels_[ch].dirty_queue.emplace_back(lpn, payload);
                    PumpDrain(ch);
                }
                // Write-back: acknowledge as soon as the cache holds it.
                if (done) done(true);
                FinishRequest();
            };
            // Requests larger than the cache are admitted once the cache
            // is empty (they stream through; the cache briefly overshoots).
            if (cache_used_ + length <= config_.dram_cache_bytes ||
                (cache_used_ == 0 && cache_waiters_.empty())) {
                admit();
            } else {
                cache_waiters_.emplace_back(length, std::move(admit));
            }
        });
    });
}

void
ConventionalSsd::TryAdmitCacheWaiters()
{
    while (!cache_waiters_.empty() &&
           (cache_used_ + cache_waiters_.front().first <=
                config_.dram_cache_bytes ||
            cache_used_ == 0)) {
        auto admit = std::move(cache_waiters_.front().second);
        cache_waiters_.pop_front();
        admit();
    }
}

void
ConventionalSsd::ReleaseCache(uint64_t bytes)
{
    SDF_CHECK(cache_used_ >= bytes);
    cache_used_ -= bytes;
    TryAdmitCacheWaiters();
}

// ---------------------------------------------------------------------------
// Drain: dirty pages -> flash programs
// ---------------------------------------------------------------------------

void
ConventionalSsd::PumpDrain(uint32_t ch)
{
    ChannelFtl &cf = channels_[ch];
    const uint32_t window = 2 * flash_->geometry().PlanesPerChannel();
    while (cf.drain_inflight < window && !cf.dirty_queue.empty()) {
        auto [lpn, payload] = cf.dirty_queue.front();
        cf.dirty_queue.pop_front();
        ++cf.drain_inflight;
        firmware_.Submit(
            config_.fw_cost_write_page,
            [this, ch, lpn, payload = std::move(payload)]() {
                const PageKind kind = lpn >= data_lpns_per_channel_
                                          ? PageKind::kParity
                                          : PageKind::kHost;
                if (!IssueProgram(ch, lpn, kind, payload)) {
                    // No frontier space anywhere: requeue and wait for GC.
                    ChannelFtl &cf2 = channels_[ch];
                    cf2.dirty_queue.emplace_front(lpn, payload);
                    --cf2.drain_inflight;
                    MaybeStartGc(ch);
                }
            });
    }
    MaybeStartGc(ch);
}

bool
ConventionalSsd::IssueProgram(uint32_t ch, uint32_t lpn, PageKind kind,
                              std::shared_ptr<std::vector<uint8_t>> payload)
{
    const nand::Geometry &geo = flash_->geometry();
    const uint32_t ppb = geo.pages_per_block;
    const uint32_t planes = geo.PlanesPerChannel();
    ChannelFtl &cf = channels_[ch];
    const bool is_gc = kind == PageKind::kGc;

    // Blocks withheld from host allocation so GC can always finish its
    // current victim (one victim never needs more than one fresh block).
    constexpr uint32_t kGcReserveBlocks = 2;

    // Find a plane with frontier space, starting from the rotation cursor.
    uint32_t &cursor = is_gc ? cf.gc_plane_cursor : cf.drain_plane_cursor;
    uint32_t chosen = ftl::kUnmappedBlock;
    for (uint32_t probe = 0; probe < planes; ++probe) {
        const uint32_t plane = (cursor + probe) % planes;
        PlaneState &ps = cf.planes[plane];
        uint32_t &frontier = is_gc ? ps.gc_frontier : ps.frontier;
        uint32_t &next = is_gc ? ps.gc_frontier_next : ps.frontier_next;
        if (frontier != ftl::kUnmappedBlock && next >= ppb) {
            // Close the filled block; it becomes a GC candidate.
            cf.full_blocks.push_back(frontier);
            cf.full_ages.push_back(static_cast<uint64_t>(sim_.Now()));
            frontier = ftl::kUnmappedBlock;
        }
        if (frontier == ftl::kUnmappedBlock) {
            if (ps.free_pool.Empty()) continue;
            if (!is_gc && TotalFree(ch) <= kGcReserveBlocks) continue;
            frontier = ps.free_pool.Allocate();
            next = 0;
        }
        chosen = plane;
        break;
    }
    if (chosen == ftl::kUnmappedBlock) return false;
    cursor = (chosen + 1) % planes;

    PlaneState &ps = cf.planes[chosen];
    uint32_t &frontier = is_gc ? ps.gc_frontier : ps.frontier;
    uint32_t &next = is_gc ? ps.gc_frontier_next : ps.frontier_next;
    const uint32_t ppn = frontier * ppb + next;
    ++next;

    cf.map->Update(lpn, ppn);

    flash_->channel(ch).ProgramPage(
        FlatToPageAddr(geo, ppn),
        [this, ch, lpn, kind](nand::OpStatus) {
            ChannelFtl &cf2 = channels_[ch];
            switch (kind) {
              case PageKind::kHost: {
                ++stats_.host_pages_written;
                ++parity_row_counter_;
                auto it = dirty_pages_.find(DirtyKey(ch, lpn));
                SDF_CHECK(it != dirty_pages_.end());
                if (--it->second.refs == 0) dirty_pages_.erase(it);
                --cf2.drain_inflight;
                ReleaseCache(PageSize());
                MaybeEmitParity();
                PumpDrain(ch);
                break;
              }
              case PageKind::kGc:
                ++stats_.gc_pages_moved;
                --cf2.gc_inflight;
                GcPump(ch);
                break;
              case PageKind::kParity:
                ++stats_.parity_pages_written;
                --cf2.drain_inflight;
                PumpDrain(ch);
                break;
            }
        },
        payload ? payload->data() : nullptr);

    MaybeStartGc(ch);
    return true;
}

void
ConventionalSsd::MaybeEmitParity()
{
    if (!config_.parity || parity_lpns_per_channel_ == 0) return;
    const uint32_t channels = flash_->geometry().channels;
    if (channels < 2) return;
    while (parity_row_counter_ >= channels - 1) {
        parity_row_counter_ -= channels - 1;
        // Rotate the parity page over channels, and over each channel's
        // parity lpn space so old parity is invalidated (GC load).
        const uint32_t ch =
            static_cast<uint32_t>(stats_.parity_pages_written % channels);
        ChannelFtl &cf = channels_[ch];
        const uint32_t lpn =
            data_lpns_per_channel_ +
            static_cast<uint32_t>(cf.parity_cursor++ % parity_lpns_per_channel_);
        cf.dirty_queue.emplace_back(lpn, nullptr);
        PumpDrain(ch);
    }
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

void
ConventionalSsd::MaybeStartGc(uint32_t ch)
{
    ChannelFtl &cf = channels_[ch];
    if (cf.gc_active || TotalFree(ch) >= config_.gc_low_watermark) return;
    if (cf.full_blocks.empty()) return;
    cf.gc_active = true;
    GcPickVictim(ch);
}

void
ConventionalSsd::GcPickVictim(uint32_t ch)
{
    ChannelFtl &cf = channels_[ch];
    if (cf.full_blocks.empty()) {
        cf.gc_active = false;
        return;
    }
    size_t idx;
    ++cf.gc_victims_picked;
    if (config_.static_wear_leveling &&
        cf.gc_victims_picked % config_.swl_period == 0) {
        // Static wear leveling turn: migrate the coldest closed block,
        // whatever its valid count (the sporadic burst the paper blames
        // for conventional-SSD latency variation).
        idx = 0;
        uint32_t min_ec = UINT32_MAX;
        const nand::Geometry &geo = flash_->geometry();
        for (size_t i = 0; i < cf.full_blocks.size(); ++i) {
            const uint32_t ec =
                flash_->channel(ch)
                    .block_meta(FlatToBlockAddr(geo, cf.full_blocks[i]))
                    .erase_count;
            if (ec < min_ec) {
                min_ec = ec;
                idx = i;
            }
        }
        ++stats_.swl_migrations;
    } else if (config_.gc_policy == GcPolicy::kGreedy) {
        idx = ftl::PickGreedyVictim(*cf.map, cf.full_blocks);
    } else {
        std::vector<uint64_t> ages(cf.full_blocks.size());
        const auto now = static_cast<uint64_t>(sim_.Now());
        for (size_t i = 0; i < ages.size(); ++i)
            ages[i] = now - cf.full_ages[i] + 1;
        idx = ftl::PickCostBenefitVictim(*cf.map, cf.full_blocks, ages,
                                         PagesPerBlock());
    }
    const uint32_t victim = cf.full_blocks[idx];
    cf.full_blocks[idx] = cf.full_blocks.back();
    cf.full_blocks.pop_back();
    cf.full_ages[idx] = cf.full_ages.back();
    cf.full_ages.pop_back();

    cf.gc_victim = victim;
    cf.gc_pending = cf.map->ValidLogicalPages(victim);
    GcPump(ch);
}

void
ConventionalSsd::GcPump(uint32_t ch)
{
    ChannelFtl &cf = channels_[ch];
    if (!cf.gc_active) return;
    const nand::Geometry &geo = flash_->geometry();
    const uint32_t ppb = geo.pages_per_block;

    while (cf.gc_inflight < config_.gc_inflight_window &&
           !cf.gc_pending.empty()) {
        const uint32_t lpn = cf.gc_pending.back();
        cf.gc_pending.pop_back();
        const uint32_t ppn = cf.map->Lookup(lpn);
        if (ppn == ftl::kUnmappedPage || ppn / ppb != cf.gc_victim) {
            continue;  // Rewritten or trimmed since the victim was chosen.
        }
        ++cf.gc_inflight;
        auto buf = config_.flash.store_payloads
                       ? std::make_shared<std::vector<uint8_t>>()
                       : nullptr;
        firmware_.Submit(config_.fw_cost_write_page, [this, ch, lpn, ppn,
                                                      buf]() {
            flash_->channel(ch).ReadPage(
                FlatToPageAddr(flash_->geometry(), ppn),
                [this, ch, lpn, ppn, buf](nand::OpStatus) {
                    ChannelFtl &cf2 = channels_[ch];
                    const uint32_t ppb2 = flash_->geometry().pages_per_block;
                    // Re-validate: the host may have overwritten the page
                    // while the GC read was in flight.
                    const uint32_t cur = cf2.map->Lookup(lpn);
                    if (cur != ppn || cur / ppb2 != cf2.gc_victim) {
                        --cf2.gc_inflight;
                        GcPump(ch);
                        return;
                    }
                    // The relocation program is firmware work too (mapping
                    // update + command issue), like the read before it.
                    firmware_.Submit(
                        config_.fw_cost_write_page,
                        [this, ch, lpn, ppn, buf]() {
                            // Re-validate again after the firmware delay.
                            ChannelFtl &cf3 = channels_[ch];
                            const uint32_t cur2 = cf3.map->Lookup(lpn);
                            if (cur2 != ppn) {
                                --cf3.gc_inflight;
                                GcPump(ch);
                                return;
                            }
                            const bool issued =
                                IssueProgram(ch, lpn, PageKind::kGc, buf);
                            SDF_CHECK_MSG(
                                issued,
                                "GC ran out of frontier space mid-victim");
                        });
                },
                buf.get());
        });
    }
    if (cf.gc_pending.empty() && cf.gc_inflight == 0) GcFinishVictim(ch);
}

void
ConventionalSsd::GcFinishVictim(uint32_t ch)
{
    ChannelFtl &cf = channels_[ch];
    const uint32_t victim = cf.gc_victim;
    SDF_CHECK(victim != ftl::kUnmappedBlock);
    SDF_CHECK_MSG(cf.map->ValidCount(victim) == 0,
                  "erasing a block with valid data");
    cf.gc_victim = ftl::kUnmappedBlock;

    const nand::Geometry &geo = flash_->geometry();
    const nand::BlockAddr addr = FlatToBlockAddr(geo, victim);
    flash_->channel(ch).EraseBlock(addr, [this, ch, victim,
                                          addr](nand::OpStatus status) {
        ChannelFtl &cf2 = channels_[ch];
        ++stats_.gc_erases;
        if (status == nand::OpStatus::kOk) {
            const uint32_t ec =
                flash_->channel(ch).block_meta(addr).erase_count;
            cf2.planes[addr.plane].free_pool.Release(victim, ec);
        }
        // A stalled drain may now be able to make progress.
        PumpDrain(ch);
        TryAdmitCacheWaiters();
        if (TotalFree(ch) < config_.gc_high_watermark &&
            !cf2.full_blocks.empty()) {
            GcPickVictim(ch);
        } else {
            cf2.gc_active = false;
        }
    });
}

// ---------------------------------------------------------------------------
// Trim and preconditioning
// ---------------------------------------------------------------------------

void
ConventionalSsd::Trim(uint64_t offset, uint64_t length)
{
    const uint32_t page = PageSize();
    SDF_CHECK(offset % page == 0 && length % page == 0);
    SDF_CHECK(offset + length <= user_capacity_);
    // Advisory: pages still dirty in the cache are not cancelled; callers
    // must not trim ranges with writes in flight.
    for (uint64_t b = offset; b < offset + length; b += page) {
        const uint32_t ch = striping_.ChannelOf(b);
        const auto lpn =
            static_cast<uint32_t>(striping_.ChannelOffset(b) / page);
        channels_[ch].map->Invalidate(lpn);
    }
}

void
ConventionalSsd::PreconditionFill(double fraction)
{
    SDF_CHECK(fraction >= 0.0 && fraction <= 1.0);
    const nand::Geometry &geo = flash_->geometry();
    const uint32_t ppb = geo.pages_per_block;
    const uint32_t planes = geo.PlanesPerChannel();
    const auto fill_lpns =
        static_cast<uint32_t>(data_lpns_per_channel_ * fraction);

    for (uint32_t ch = 0; ch < geo.channels; ++ch) {
        ChannelFtl &cf = channels_[ch];
        uint32_t lpn = 0;
        uint32_t plane_rr = 0;
        while (lpn < fill_lpns) {
            // Rotate planes for an even fill.
            PlaneState *ps = nullptr;
            uint32_t plane = 0;
            for (uint32_t probe = 0; probe < planes; ++probe) {
                plane = (plane_rr + probe) % planes;
                if (!cf.planes[plane].free_pool.Empty()) {
                    ps = &cf.planes[plane];
                    break;
                }
            }
            SDF_CHECK_MSG(ps != nullptr, "precondition ran out of blocks");
            plane_rr = (plane + 1) % planes;

            const uint32_t block = ps->free_pool.Allocate();
            const uint32_t pages = std::min(ppb, fill_lpns - lpn);
            flash_->channel(ch).DebugSetProgrammed(FlatToBlockAddr(geo, block),
                                                   pages);
            for (uint32_t p = 0; p < pages; ++p)
                cf.map->Update(lpn++, block * ppb + p);
            if (pages == ppb) {
                cf.full_blocks.push_back(block);
                cf.full_ages.push_back(0);
            } else {
                // Leave the partial block as the host write frontier.
                ps->frontier = block;
                ps->frontier_next = pages;
            }
        }
    }
}

void
ConventionalSsd::PreconditionFillRandom(double fraction, uint64_t seed)
{
    SDF_CHECK(fraction >= 0.0 && fraction <= 1.0);
    const nand::Geometry &geo = flash_->geometry();
    const uint32_t ppb = geo.pages_per_block;
    const uint32_t planes = geo.PlanesPerChannel();
    util::Rng rng(seed);

    const uint32_t total_lpns =
        data_lpns_per_channel_ + parity_lpns_per_channel_;
    const auto fill_lpns = static_cast<uint32_t>(total_lpns * fraction);

    for (uint32_t ch = 0; ch < geo.channels; ++ch) {
        ChannelFtl &cf = channels_[ch];
        // Keep only the frontier blocks and a sliver of pool; everything
        // else participates in the fragmented layout.
        const uint32_t keep = 2 * planes + 2;
        std::vector<uint32_t> used_blocks;
        uint32_t kept = 0;
        // Drain pools round-robin so the kept blocks spread over planes.
        for (uint32_t plane = 0; plane < planes; ++plane) {
            PlaneState &ps = cf.planes[plane];
            std::vector<uint32_t> back;
            while (!ps.free_pool.Empty()) {
                const uint32_t b = ps.free_pool.Allocate();
                if (kept < keep && back.size() < (keep + planes - 1) / planes) {
                    back.push_back(b);
                    ++kept;
                } else {
                    used_blocks.push_back(b);
                }
            }
            for (uint32_t b : back) ps.free_pool.Release(b, 0);
        }
        SDF_CHECK_MSG(uint64_t{used_blocks.size()} * ppb >= fill_lpns,
                      "random precondition lacks physical space");

        // All slots of the used blocks, shuffled; the first fill_lpns get
        // live data, the rest are stale garbage.
        std::vector<uint32_t> slots;
        slots.reserve(used_blocks.size() * ppb);
        for (uint32_t b : used_blocks) {
            flash_->channel(ch).DebugSetProgrammed(
                nand::BlockFromFlat(geo, b), ppb);
            cf.full_blocks.push_back(b);
            cf.full_ages.push_back(0);
            for (uint32_t p = 0; p < ppb; ++p) slots.push_back(b * ppb + p);
        }
        for (size_t i = slots.size(); i > 1; --i) {
            std::swap(slots[i - 1], slots[rng.NextBelow(i)]);
        }
        for (uint32_t lpn = 0; lpn < fill_lpns; ++lpn) {
            cf.map->Update(lpn, slots[lpn]);
        }
    }
}

// ---------------------------------------------------------------------------
// Factory configurations (Table 1 / Table 3 devices)
// ---------------------------------------------------------------------------

namespace {

uint32_t
ScaledBlocks(uint32_t blocks, double scale)
{
    const auto scaled = static_cast<uint32_t>(blocks * scale);
    return std::max(scaled, 24u);
}

/** Scale the DRAM write-back cache with the device so short simulated
 *  runs reach the drain-limited steady state quickly. */
uint64_t
ScaledCache(uint64_t cache, double scale)
{
    const auto scaled = static_cast<uint64_t>(cache * scale);
    return std::max<uint64_t>(scaled, 16 * util::kMiB);
}

}  // namespace

ConventionalSsdConfig
HuaweiGen3Config(double capacity_scale)
{
    ConventionalSsdConfig c;
    c.name = "Huawei Gen3";
    c.flash.geometry = nand::BaiduSdfGeometry();  // same board as SDF
    c.flash.geometry.blocks_per_plane =
        ScaledBlocks(c.flash.geometry.blocks_per_plane, capacity_scale);
    c.flash.timing = nand::Micron25nmMlcTiming();
    c.link = controller::Pcie11x8Spec();
    c.op_ratio = 0.25;  // §3.1: 25 % reserved in the evaluation
    c.stripe_bytes = 8 * util::kKiB;
    c.max_outstanding = 128;  // Deep PCIe command queues.
    c.parity = true;
    c.dram_cache_bytes = ScaledCache(util::kGiB, capacity_scale);
    c.fw_cost_per_read_request = util::UsToNs(1.6);
    c.fw_cost_per_write_request = util::UsToNs(30);
    c.fw_cost_read_page = util::UsToNs(6.8);
    c.fw_cost_write_page = util::UsToNs(11.9);
    return c;
}

ConventionalSsdConfig
Intel320Config(double capacity_scale)
{
    ConventionalSsdConfig c;
    c.name = "Intel 320";
    c.flash.geometry = nand::Intel320Geometry();
    c.flash.geometry.blocks_per_plane =
        ScaledBlocks(c.flash.geometry.blocks_per_plane, capacity_scale);
    c.flash.timing = nand::Onfi2Timing();
    c.link = controller::Sata2Spec();
    c.op_ratio = 0.125;  // 20 of 160 GB reserved (§3.1)
    c.stripe_bytes = c.flash.geometry.page_size;
    c.parity = true;
    c.dram_cache_bytes = ScaledCache(64 * util::kMiB, capacity_scale * 4);
    // Low-end SATA controller: modest per-page handling, expensive
    // per-write-request mapping persistence (limits small random writes).
    c.fw_cost_per_read_request = util::UsToNs(25);
    c.fw_cost_per_write_request = util::UsToNs(300);
    c.fw_cost_read_page = util::UsToNs(17.5);
    c.fw_cost_write_page = util::UsToNs(20);
    return c;
}

ConventionalSsdConfig
MemblazeQ520Config(double capacity_scale)
{
    ConventionalSsdConfig c;
    c.name = "Memblaze Q520";
    // Table 1: 32 channels x 16 planes, 34 nm MLC, ONFI 1.x async.
    nand::Geometry g;
    g.channels = 32;
    g.dies_per_channel = 8;
    g.planes_per_die = 2;
    g.blocks_per_plane = 512;
    g.pages_per_block = 256;
    g.page_size = 8 * util::kKiB;
    c.name = "Memblaze Q520";
    c.flash.geometry = g;
    c.flash.geometry.blocks_per_plane =
        ScaledBlocks(c.flash.geometry.blocks_per_plane, capacity_scale);
    nand::TimingSpec t;
    t.read_page = util::UsToNs(75);
    t.program_page = util::MsToNs(1.5);
    t.erase_block = util::MsToNs(3.0);
    t.bus_bytes_per_sec = 52e6;  // raw read ~1.6 GB/s over 32 channels
    t.bus_cmd_overhead = util::UsToNs(6);
    c.flash.timing = t;
    c.link = controller::Pcie11x8Spec();
    c.op_ratio = 0.25;
    c.stripe_bytes = 8 * util::kKiB;
    c.max_outstanding = 128;  // Deep PCIe command queues.
    c.parity = true;
    c.dram_cache_bytes = ScaledCache(util::kGiB, capacity_scale);
    c.fw_cost_per_read_request = util::UsToNs(2.0);
    c.fw_cost_per_write_request = util::UsToNs(20);
    c.fw_cost_read_page = util::UsToNs(6.3);
    c.fw_cost_write_page = util::UsToNs(12.5);
    return c;
}

}  // namespace sdf::ssd
