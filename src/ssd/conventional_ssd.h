/**
 * @file
 * Conventional SSD model — the baseline architecture SDF replaces.
 *
 * Structure (paper §2, Figure 5a): one controller fronts all flash
 * channels; the logical address space is striped round-robin over the
 * channels with a small unit (8 KB on the Huawei Gen3); a page-level FTL
 * per channel handles out-of-place writes; background garbage collection
 * reclaims space from over-provisioned capacity; an on-board DRAM
 * write-back cache absorbs bursts; optional RAID-5-style parity across
 * channels consumes ~1/channels of capacity; a single embedded firmware
 * CPU processes every per-channel sub-request (the split/merge overhead
 * the paper blames for the baseline's bandwidth loss).
 *
 * The device is asynchronous: Read/Write complete via callback in
 * simulated time. Writes are acknowledged when their data is accepted
 * into the DRAM cache (write-back), which is why the paper's Figure 8
 * sees 7 ms best-case and 650 ms worst-case latency on the same device.
 */
#ifndef SDF_SSD_CONVENTIONAL_SSD_H
#define SDF_SSD_CONVENTIONAL_SSD_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "controller/link.h"
#include "ftl/block_map.h"
#include "ftl/page_map.h"
#include "ftl/striping.h"
#include "ftl/wear_leveler.h"
#include "nand/flash_array.h"
#include "sim/callback.h"
#include "sim/fifo_resource.h"
#include "sim/simulator.h"

namespace sdf::obs {
class Hub;
}  // namespace sdf::obs

namespace sdf::ssd {

using util::TimeNs;

/** Completion callback: ok=false on device-level failure. */
using IoCallback = sim::Func<void(bool ok)>;

/** GC victim selection policy (ablation knob). */
enum class GcPolicy : uint8_t
{
    kGreedy,       ///< Fewest valid pages (default, what vendors ship).
    kCostBenefit,  ///< Age-weighted cost-benefit.
};

/** Construction parameters for a conventional SSD. */
struct ConventionalSsdConfig
{
    std::string name = "conventional";
    nand::FlashArrayConfig flash;
    controller::LinkSpec link;

    /** Fraction of raw capacity withheld for GC headroom. */
    double op_ratio = 0.25;
    /** Striping unit over channels (bytes, multiple of page size). */
    uint32_t stripe_bytes = 8 * util::kKiB;
    /** RAID-5-style parity across channels (costs 1/channels capacity). */
    bool parity = true;
    /** On-board DRAM write-back cache (bytes). */
    uint64_t dram_cache_bytes = util::kGiB;
    /** Max requests in service (NCQ-style queue depth). */
    uint32_t max_outstanding = 32;

    /** Firmware CPU cost charged once per read request. */
    TimeNs fw_cost_per_read_request = util::UsToNs(20);
    /**
     * Firmware CPU cost charged once per write request (covers mapping
     * persistence; dominates small random writes on low-end devices).
     */
    TimeNs fw_cost_per_write_request = util::UsToNs(25);
    /** Firmware CPU cost charged per per-page sub-operation (read). */
    TimeNs fw_cost_read_page = util::UsToNs(6.8);
    /** Firmware CPU cost charged per per-page sub-operation (write/GC). */
    TimeNs fw_cost_write_page = util::UsToNs(11.9);

    /** Start GC when a channel's free pool drops below this many blocks. */
    uint32_t gc_low_watermark = 6;
    /** Stop GC once the free pool recovers to this many blocks. */
    uint32_t gc_high_watermark = 10;
    GcPolicy gc_policy = GcPolicy::kGreedy;
    /** Concurrent page migrations per channel during GC. */
    uint32_t gc_inflight_window = 8;

    /**
     * Static wear leveling: periodically pick the *coldest* (least-worn)
     * closed block as the GC victim regardless of its valid count, so
     * long-lived data rotates off low-wear blocks. SDF removed this
     * (§2.2); on the conventional device it is a source of sporadic
     * latency spikes — a nearly fully valid block gets migrated.
     */
    bool static_wear_leveling = true;
    /** One SWL migration per this many GC victim selections. */
    uint32_t swl_period = 24;
};

/** Cumulative device statistics. */
struct SsdStats
{
    uint64_t host_reads = 0;
    uint64_t host_writes = 0;
    uint64_t host_read_bytes = 0;
    uint64_t host_written_bytes = 0;
    uint64_t host_pages_written = 0;
    uint64_t gc_pages_moved = 0;
    uint64_t parity_pages_written = 0;
    uint64_t gc_erases = 0;
    uint64_t swl_migrations = 0;
    uint64_t cache_hit_pages = 0;
    uint64_t read_errors = 0;

    /** (host + gc + parity) page programs per host page program. */
    double
    WriteAmplification() const
    {
        if (host_pages_written == 0) return 0.0;
        return static_cast<double>(host_pages_written + gc_pages_moved +
                                   parity_pages_written) /
               static_cast<double>(host_pages_written);
    }
};

/** The conventional SSD device model. */
class ConventionalSsd
{
  public:
    ConventionalSsd(sim::Simulator &sim, const ConventionalSsdConfig &config);
    ~ConventionalSsd();

    ConventionalSsd(const ConventionalSsd &) = delete;
    ConventionalSsd &operator=(const ConventionalSsd &) = delete;

    /** Bytes of logical space exposed to the host. */
    uint64_t user_capacity() const { return user_capacity_; }

    /** Raw flash bytes underneath. */
    uint64_t raw_capacity() const { return flash_->geometry().TotalBytes(); }

    /**
     * Read @p length bytes at @p offset (page-aligned). Completes through
     * the callback in simulated time. When @p out is non-null and the
     * flash stores payloads, the data read is copied into it.
     */
    void Read(uint64_t offset, uint64_t length, IoCallback done,
              std::vector<uint8_t> *out = nullptr);

    /**
     * Write @p length bytes at @p offset (page-aligned). Write-back: the
     * callback fires when the data is accepted into the DRAM cache.
     * @p data may be null for timing-only runs.
     */
    void Write(uint64_t offset, uint64_t length, IoCallback done,
               const uint8_t *data = nullptr);

    /** Drop mappings for a page-aligned range (TRIM; extension). */
    void Trim(uint64_t offset, uint64_t length);

    /**
     * Instantly (zero simulated time) fill the first @p fraction of the
     * logical space, as a fresh sequential write would. Used to bring a
     * device to "almost full" before experiments, as the paper does.
     */
    void PreconditionFill(double fraction);

    /**
     * Instantly fill the first @p fraction of the logical space (data and
     * parity) with a *random* physical layout: logical pages scattered
     * uniformly over nearly all physical blocks, every used block fully
     * programmed. This reproduces the fragmented steady state that a long
     * random-write history produces, so GC experiments (Figure 1) start
     * from realistic write amplification instead of a pristine layout.
     */
    void PreconditionFillRandom(double fraction, uint64_t seed = 99);

    const SsdStats &stats() const { return stats_; }
    const ConventionalSsdConfig &config() const { return config_; }
    nand::FlashArray &flash() { return *flash_; }

    /** Pages of user space per channel (for tests). */
    uint32_t data_lpns_per_channel() const { return data_lpns_per_channel_; }

    /** Free blocks currently pooled in @p channel (all planes). */
    uint32_t FreeBlocks(uint32_t channel) const;

    /** True while any channel's GC is running. */
    bool GcActive() const;

    /** Total dirty bytes waiting in the DRAM cache. */
    uint64_t CacheUsed() const { return cache_used_; }

  private:
    struct PlaneState
    {
        ftl::DynamicWearLeveler free_pool;
        uint32_t frontier = ftl::kUnmappedBlock;      ///< Host-write block.
        uint32_t frontier_next = 0;
        uint32_t gc_frontier = ftl::kUnmappedBlock;   ///< GC destination.
        uint32_t gc_frontier_next = 0;
    };

    struct ChannelFtl
    {
        std::unique_ptr<ftl::PageMap> map;
        std::vector<PlaneState> planes;
        std::vector<uint32_t> full_blocks;   ///< GC candidates (flat ids).
        std::vector<uint64_t> full_ages;     ///< Close time per candidate.
        /** lpns awaiting drain, with optional page payloads. */
        std::deque<std::pair<uint32_t, std::shared_ptr<std::vector<uint8_t>>>>
            dirty_queue;
        uint32_t drain_inflight = 0;
        uint32_t drain_plane_cursor = 0;
        uint32_t gc_plane_cursor = 0;
        bool gc_active = false;
        std::vector<uint32_t> gc_pending;    ///< lpns left to migrate.
        uint32_t gc_victim = ftl::kUnmappedBlock;
        uint32_t gc_inflight = 0;
        uint64_t gc_victims_picked = 0;      ///< For the SWL cadence.
        uint64_t parity_cursor = 0;          ///< Rotates parity lpns.
    };

    /** What kind of page program is being issued. */
    enum class PageKind : uint8_t { kHost, kGc, kParity };

    struct PendingRequest
    {
        bool is_write;
        uint64_t offset;
        uint64_t length;
        IoCallback done;
        const uint8_t *data;
        std::vector<uint8_t> *out;
    };

    /** Cached dirty page: drain refcount plus the freshest payload. */
    struct DirtyEntry
    {
        uint32_t refs = 0;
        std::shared_ptr<std::vector<uint8_t>> payload;
    };

    // ---- request admission ------------------------------------------
    void Admit(PendingRequest req);
    void FinishRequest();
    void StartRead(PendingRequest req);
    void StartWrite(PendingRequest req);

    // ---- cache ---------------------------------------------------------
    void TryAdmitCacheWaiters();
    void ReleaseCache(uint64_t bytes);

    // ---- drain / program ------------------------------------------------
    void PumpDrain(uint32_t ch);
    /** @return false if no frontier space exists (caller must retry). */
    bool IssueProgram(uint32_t ch, uint32_t lpn, PageKind kind,
                      std::shared_ptr<std::vector<uint8_t>> payload);
    void MaybeEmitParity();

    // ---- garbage collection ---------------------------------------------
    uint32_t TotalFree(uint32_t ch) const;
    void MaybeStartGc(uint32_t ch);
    void GcPickVictim(uint32_t ch);
    void GcPump(uint32_t ch);
    void GcFinishVictim(uint32_t ch);

    // ---- helpers ----------------------------------------------------------
    uint32_t PagesPerBlock() const { return flash_->geometry().pages_per_block; }
    uint32_t PageSize() const { return flash_->geometry().page_size; }
    uint64_t DirtyKey(uint32_t ch, uint32_t lpn) const
    {
        return (uint64_t{ch} << 32) | lpn;
    }

    sim::Simulator &sim_;
    ConventionalSsdConfig config_;
    std::unique_ptr<nand::FlashArray> flash_;
    std::unique_ptr<controller::Link> link_;
    sim::FifoResource firmware_;

    ftl::StripingLayout striping_;
    std::vector<ChannelFtl> channels_;
    uint32_t data_lpns_per_channel_ = 0;
    uint32_t parity_lpns_per_channel_ = 0;
    uint64_t user_capacity_ = 0;

    uint32_t outstanding_ = 0;
    std::deque<PendingRequest> admission_queue_;

    uint64_t cache_used_ = 0;
    std::deque<std::pair<uint64_t, sim::Callback>> cache_waiters_;
    std::unordered_map<uint64_t, DirtyEntry> dirty_pages_;
    uint64_t parity_row_counter_ = 0;

    SsdStats stats_;

    obs::Hub *hub_ = nullptr;       ///< Metrics registration (see obs/hub.h).
    std::string metric_prefix_;
};

/**
 * Factory configs for the paper's comparison devices. @p capacity_scale in
 * (0, 1] shrinks blocks-per-plane to keep simulations memory-friendly;
 * per-channel structure and all ratios are preserved.
 */
ConventionalSsdConfig HuaweiGen3Config(double capacity_scale = 1.0);
ConventionalSsdConfig Intel320Config(double capacity_scale = 1.0);
ConventionalSsdConfig MemblazeQ520Config(double capacity_scale = 1.0);

}  // namespace sdf::ssd

#endif  // SDF_SSD_CONVENTIONAL_SSD_H
