#include "ssd/ssd_block_device.h"

#include <utility>

#include "util/assert.h"

namespace sdf::ssd {

SsdBlockDevice::SsdBlockDevice(sim::Simulator &sim, ConventionalSsd &ssd,
                               Options opt)
    : sim_(sim), ssd_(ssd)
{
    const uint32_t channels =
        opt.channels != 0 ? opt.channels : ssd.config().flash.geometry.channels;
    SDF_CHECK_MSG(channels > 0, "adapter needs at least one channel");
    SDF_CHECK_MSG(opt.unit_bytes > 0 &&
                      opt.unit_bytes % ssd.config().flash.geometry.page_size ==
                          0,
                  "unit size must be page-aligned");
    const uint64_t total_units = ssd.user_capacity() / opt.unit_bytes;
    const uint32_t units_per_channel =
        static_cast<uint32_t>(total_units / channels);
    SDF_CHECK_MSG(units_per_channel > 0,
                  "SSD too small for one unit per synthetic channel");

    caps_.name = ssd.config().name + " (block-device adapter)";
    caps_.channels = channels;
    caps_.units_per_channel = units_per_channel;
    caps_.unit_bytes = opt.unit_bytes;
    caps_.read_unit_bytes = ssd.config().flash.geometry.page_size;
    caps_.explicit_erase = false;
    caps_.user_capacity =
        uint64_t{channels} * units_per_channel * opt.unit_bytes;
    caps_.raw_capacity = ssd.raw_capacity();

    units_.assign(uint64_t{channels} * units_per_channel,
                  core::UnitState::kUnwritten);
}

uint64_t
SsdBlockDevice::ExtentOf(uint32_t channel, uint32_t unit) const
{
    return (uint64_t{channel} * caps_.units_per_channel + unit) *
           caps_.unit_bytes;
}

bool
SsdBlockDevice::ValidUnit(uint32_t channel, uint32_t unit) const
{
    return channel < caps_.channels && unit < caps_.units_per_channel;
}

void
SsdBlockDevice::Read(uint32_t channel, uint32_t unit, uint64_t offset,
                     uint64_t length, core::IoCallback done,
                     std::vector<uint8_t> *out, obs::IoSpan *span)
{
    (void)span;  // The SSD models its own internal latency stages.
    if (!ValidUnit(channel, unit) || length == 0 ||
        offset + length > caps_.unit_bytes ||
        offset % caps_.read_unit_bytes != 0 ||
        length % caps_.read_unit_bytes != 0) {
        sim_.Post([done = std::move(done)]() {
            done(core::IoStatus(core::IoError::kContractViolation));
        });
        return;
    }
    ssd_.Read(ExtentOf(channel, unit) + offset, length,
              [done = std::move(done)](bool ok) {
                  done(ok ? core::IoStatus()
                          : core::IoStatus(core::IoError::kReadUncorrectable));
              },
              out);
}

void
SsdBlockDevice::WriteUnit(uint32_t channel, uint32_t unit,
                          core::IoCallback done, const uint8_t *data,
                          obs::IoSpan *span)
{
    (void)span;
    if (!ValidUnit(channel, unit) ||
        unit_state(channel, unit) != core::UnitState::kErased) {
        sim_.Post([done = std::move(done)]() {
            done(core::IoStatus(core::IoError::kContractViolation));
        });
        return;
    }
    const uint64_t idx = uint64_t{channel} * caps_.units_per_channel + unit;
    ssd_.Write(ExtentOf(channel, unit), caps_.unit_bytes,
               [this, idx, done = std::move(done)](bool ok) {
                   if (ok) units_[idx] = core::UnitState::kWritten;
                   done(ok ? core::IoStatus()
                           : core::IoStatus(core::IoError::kWriteFailed));
               },
               data);
}

void
SsdBlockDevice::EraseUnit(uint32_t channel, uint32_t unit,
                          core::IoCallback done, obs::IoSpan *span)
{
    (void)span;
    if (!ValidUnit(channel, unit)) {
        sim_.Post([done = std::move(done)]() {
            done(core::IoStatus(core::IoError::kContractViolation));
        });
        return;
    }
    // Emulated erase: TRIM the extent so the FTL drops the mappings (and
    // GC stops migrating the stale data), then logically reset the unit.
    // Completes asynchronously like a real command, but with no flash
    // erase cost — the SSD pays that cost later, inside its own GC.
    ssd_.Trim(ExtentOf(channel, unit), caps_.unit_bytes);
    ++synthetic_erases_;
    const uint64_t idx = uint64_t{channel} * caps_.units_per_channel + unit;
    units_[idx] = core::UnitState::kErased;
    sim_.Post([done = std::move(done)]() { done(core::IoStatus()); });
}

core::UnitState
SsdBlockDevice::unit_state(uint32_t channel, uint32_t unit) const
{
    SDF_CHECK(ValidUnit(channel, unit));
    return units_[uint64_t{channel} * caps_.units_per_channel + unit];
}

void
SsdBlockDevice::DebugForceWritten(uint32_t channel, uint32_t unit)
{
    SDF_CHECK(ValidUnit(channel, unit));
    units_[uint64_t{channel} * caps_.units_per_channel + unit] =
        core::UnitState::kWritten;
}

}  // namespace sdf::ssd
