/**
 * @file
 * Adapter that presents a ConventionalSsd as a core::BlockDevice so the
 * block layer and the KV stack run unchanged on either backend.
 *
 * The SSD's flat logical space is carved into synthetic channels x units:
 * unit (c, u) maps to the extent [(c * units_per_channel + u) * unit_bytes,
 * + unit_bytes). "Channels" here are purely a logical partitioning for the
 * host's allocator — the SSD's own FTL still stripes pages over its real
 * channels underneath, which is exactly the paper's point about the layers
 * a conventional device hides.
 *
 * EraseUnit is emulated: the extent is TRIMmed (dropping FTL mappings so
 * GC does not migrate stale data) and the unit is logically reset to
 * kErased. caps().explicit_erase is false so callers can tell the
 * contract apart from real software-managed erasure.
 */
#ifndef SDF_SSD_SSD_BLOCK_DEVICE_H
#define SDF_SSD_SSD_BLOCK_DEVICE_H

#include <cstdint>
#include <vector>

#include "sdf/block_device.h"
#include "sim/simulator.h"
#include "ssd/conventional_ssd.h"

namespace sdf::ssd {

/** Carving parameters for the synthetic (channel, unit) space. */
struct SsdBlockDeviceOptions
{
    /** Synthetic write/erase unit (default matches SDF's 8 MB). */
    uint64_t unit_bytes = 8 * util::kMiB;
    /** Synthetic channel count; 0 = the SSD's real flash channels. */
    uint32_t channels = 0;
};

/** ConventionalSsd viewed through the pluggable device interface. */
class SsdBlockDevice : public core::BlockDevice
{
  public:
    using Options = SsdBlockDeviceOptions;

    SsdBlockDevice(sim::Simulator &sim, ConventionalSsd &ssd,
                   Options opt = Options());

    SsdBlockDevice(const SsdBlockDevice &) = delete;
    SsdBlockDevice &operator=(const SsdBlockDevice &) = delete;

    const core::DeviceCaps &caps() const override { return caps_; }

    void Read(uint32_t channel, uint32_t unit, uint64_t offset,
              uint64_t length, core::IoCallback done,
              std::vector<uint8_t> *out = nullptr,
              obs::IoSpan *span = nullptr) override;

    void WriteUnit(uint32_t channel, uint32_t unit, core::IoCallback done,
                   const uint8_t *data = nullptr,
                   obs::IoSpan *span = nullptr) override;

    void EraseUnit(uint32_t channel, uint32_t unit, core::IoCallback done,
                   obs::IoSpan *span = nullptr) override;

    core::UnitState unit_state(uint32_t channel, uint32_t unit) const override;

    /** A conventional SSD has no host-visible channel failure domain. */
    bool ChannelDead(uint32_t) const override { return false; }

    void DebugForceWritten(uint32_t channel, uint32_t unit) override;

    ConventionalSsd &ssd() { return ssd_; }
    uint64_t synthetic_erases() const { return synthetic_erases_; }

  private:
    uint64_t ExtentOf(uint32_t channel, uint32_t unit) const;
    bool ValidUnit(uint32_t channel, uint32_t unit) const;

    sim::Simulator &sim_;
    ConventionalSsd &ssd_;
    core::DeviceCaps caps_;
    std::vector<core::UnitState> units_;  ///< channel-major unit states.
    uint64_t synthetic_erases_ = 0;
};

}  // namespace sdf::ssd

#endif  // SDF_SSD_SSD_BLOCK_DEVICE_H
