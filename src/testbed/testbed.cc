#include "testbed/testbed.h"

#include <algorithm>

#include "util/assert.h"
#include "util/units.h"
#include "workload/kv_driver.h"

namespace sdf::testbed {

StorageStack
BuildStorageStack(sim::Simulator &sim, const StackConfig &cfg)
{
    StorageStack out;
    if (cfg.backend == Backend::kBaiduSdf) {
        core::SdfConfig dc = core::BaiduSdfConfig(cfg.capacity_scale);
        if (cfg.tune_sdf) cfg.tune_sdf(dc);
        out.sdf = std::make_unique<core::SdfDevice>(sim, dc);
        out.layer = std::make_unique<blocklayer::BlockLayer>(sim, *out.sdf,
                                                             cfg.layer);
        if (cfg.with_io_stack) {
            out.io_stack = std::make_unique<host::IoStack>(
                sim, host::SdfUserStackSpec());
        }
        out.storage = std::make_unique<kv::BlockPatchStorage>(
            *out.layer, out.io_stack.get());
        return out;
    }

    ssd::ConventionalSsdConfig sc = cfg.backend == Backend::kHuaweiGen3
                                        ? ssd::HuaweiGen3Config(
                                              cfg.capacity_scale)
                                        : ssd::Intel320Config(
                                              cfg.capacity_scale);
    if (cfg.tune_ssd) cfg.tune_ssd(sc);
    out.ssd = std::make_unique<ssd::ConventionalSsd>(sim, sc);
    if (cfg.with_io_stack) {
        out.io_stack =
            std::make_unique<host::IoStack>(sim, host::KernelIoStackSpec());
    }
    if (cfg.ssd_through_block_layer) {
        // The pluggable-device seam: the SSD adapts into a BlockDevice
        // and the very same block-layer + patch-storage code runs on it.
        out.adapter = std::make_unique<ssd::SsdBlockDevice>(sim, *out.ssd);
        out.layer = std::make_unique<blocklayer::BlockLayer>(
            sim, *out.adapter, cfg.layer);
        out.storage = std::make_unique<kv::BlockPatchStorage>(
            *out.layer, out.io_stack.get());
    } else {
        out.storage = std::make_unique<kv::SsdPatchStorage>(
            *out.ssd, 8 * util::kMiB, out.io_stack.get());
    }
    return out;
}

KvStack
BuildKvStack(sim::Simulator &sim, const KvStackConfig &cfg,
             kv::StoreJournal *journal)
{
    KvStack out;
    out.storage = BuildStorageStack(sim, cfg.stack);
    out.store = std::make_unique<kv::Store>(sim, *out.storage.storage,
                                            cfg.store, journal);
    return out;
}

KvTestbed::KvTestbed(Backend kind, uint32_t slice_count, uint32_t clients,
                     double capacity_scale, kv::SliceConfig slice_cfg,
                     obs::Hub *hub)
    : hub_bind_(sim_, hub != nullptr ? hub : obs::GlobalObs().hub()),
      net_(sim_, net::NetworkSpec{}, clients)
{
    KvStackConfig kc;
    kc.stack.backend = kind;
    kc.stack.capacity_scale = capacity_scale;
    kc.store.slice_count = slice_count;
    kc.store.slice = slice_cfg;
    kv_ = BuildKvStack(sim_, kc);
}

std::vector<std::vector<uint64_t>>
KvTestbed::Preload(uint64_t bytes_per_slice, uint32_t value_size)
{
    auto keys =
        workload::PreloadSlices(SlicePtrs(), bytes_per_slice, value_size);
    if (ssd_device() != nullptr) {
        const double fill =
            static_cast<double>(bytes_per_slice) * store().slice_count() /
            static_cast<double>(ssd_device()->user_capacity());
        ssd_device()->PreconditionFill(std::min(fill * 1.02, 1.0));
    }
    return keys;
}

std::vector<kv::Slice *>
KvTestbed::SlicePtrs()
{
    std::vector<kv::Slice *> out;
    out.reserve(store().slice_count());
    for (uint32_t s = 0; s < store().slice_count(); ++s) {
        out.push_back(&store().slice(s));
    }
    return out;
}

}  // namespace sdf::testbed
