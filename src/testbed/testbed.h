/**
 * @file
 * The one place that knows how to assemble a storage stack.
 *
 * Every consumer — the bench suite, the fault campaign, sdfsim, the
 * examples, and each cluster StorageNode — used to hand-wire device +
 * block layer + I/O stack + patch storage + slices with small copy-paste
 * variations. BuildStorageStack/BuildKvStack centralise that wiring
 * behind a config struct; KvTestbed remains the convenient all-in-one
 * (simulator + stack + store + network) used by the figure benches.
 *
 * Backends:
 *  - kBaiduSdf: SdfDevice -> BlockLayer -> BlockPatchStorage (the paper's
 *    stack, user-space I/O costs);
 *  - kHuaweiGen3 / kIntel320: ConventionalSsd. By default through the
 *    legacy flat extent allocator (SsdPatchStorage, kernel I/O costs) for
 *    the paper's comparisons; with `ssd_through_block_layer` the SSD is
 *    adapted into a core::BlockDevice and runs the *same* block-layer
 *    path as SDF — the pluggable-device seam.
 */
#ifndef SDF_TESTBED_TESTBED_H
#define SDF_TESTBED_TESTBED_H

#include <functional>
#include <memory>
#include <vector>

#include "blocklayer/block_layer.h"
#include "host/io_stack.h"
#include "kv/patch_storage.h"
#include "kv/store.h"
#include "net/network.h"
#include "obs/obs_cli.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "ssd/conventional_ssd.h"
#include "ssd/ssd_block_device.h"

namespace sdf::testbed {

/** Which storage device backs the stack. */
enum class Backend
{
    kBaiduSdf,
    kHuaweiGen3,
    kIntel320,
};

inline const char *
BackendName(Backend kind)
{
    switch (kind) {
      case Backend::kBaiduSdf: return "Baidu SDF";
      case Backend::kHuaweiGen3: return "Huawei Gen3";
      case Backend::kIntel320: return "Intel 320";
    }
    return "?";
}

/** How to build one storage stack (device through patch storage). */
struct StackConfig
{
    Backend backend = Backend::kBaiduSdf;
    double capacity_scale = 0.05;
    /** Charge per-request host I/O-stack costs (user-space spec on SDF,
     *  kernel spec on a conventional SSD). */
    bool with_io_stack = true;
    /**
     * Run a conventional SSD through the SsdBlockDevice adapter and the
     * block layer — the unified code path — instead of the legacy flat
     * extent allocator the paper's comparisons use.
     */
    bool ssd_through_block_layer = false;
    blocklayer::BlockLayerConfig layer;
    /** Post-hoc device config tweaks (error model, seeds, retry depth). */
    std::function<void(core::SdfConfig &)> tune_sdf;
    std::function<void(ssd::ConventionalSsdConfig &)> tune_ssd;
};

/** An assembled stack; null members depend on backend/config. */
struct StorageStack
{
    std::unique_ptr<core::SdfDevice> sdf;
    std::unique_ptr<ssd::ConventionalSsd> ssd;
    std::unique_ptr<ssd::SsdBlockDevice> adapter;
    std::unique_ptr<blocklayer::BlockLayer> layer;
    std::unique_ptr<host::IoStack> io_stack;
    std::unique_ptr<kv::PatchStorage> storage;

    /** The pluggable-interface view, or null on the legacy SSD path. */
    core::BlockDevice *
    device()
    {
        if (sdf) return sdf.get();
        return adapter.get();
    }
};

/** Build device + (block layer) + I/O stack + patch storage on @p sim. */
StorageStack BuildStorageStack(sim::Simulator &sim, const StackConfig &cfg);

/** How to build a full single-node KV stack. */
struct KvStackConfig
{
    StackConfig stack;
    kv::StoreConfig store;
};

/** A storage stack with a multi-slice Store on top. */
struct KvStack
{
    StorageStack storage;
    std::unique_ptr<kv::Store> store;
};

/**
 * @param journal Optional durable store mirror (see kv/recovery.h): pass
 *     a node's journal so the store can be rebuilt from it on restart.
 */
KvStack BuildKvStack(sim::Simulator &sim, const KvStackConfig &cfg,
                     kv::StoreJournal *journal = nullptr);

/** A complete single-node CCDB deployment for one experiment run. */
class KvTestbed
{
  public:
    /**
     * @param kind Backing device.
     * @param slice_count Slices hosted on the node.
     * @param clients Network clients (usually == slice_count).
     * @param capacity_scale Device scale factor.
     * @param hub Optional observability hub, installed on the testbed's
     *     simulator before any component is built so that every layer
     *     self-registers its metrics. Defaults to the process-wide
     *     ObsCli hub (null when no export flags were given).
     */
    KvTestbed(Backend kind, uint32_t slice_count, uint32_t clients,
              double capacity_scale, kv::SliceConfig slice_cfg = {},
              obs::Hub *hub = nullptr);

    /**
     * Preload each slice with @p bytes_per_slice of @p value_size values;
     * conventional devices are also brought to a matching fill level.
     * @return per-slice key lists.
     */
    std::vector<std::vector<uint64_t>> Preload(uint64_t bytes_per_slice,
                                               uint32_t value_size);

    std::vector<kv::Slice *> SlicePtrs();

    sim::Simulator &sim() { return sim_; }
    net::Network &net() { return net_; }
    kv::Store &store() { return *kv_.store; }
    core::SdfDevice *sdf_device() { return kv_.storage.sdf.get(); }
    ssd::ConventionalSsd *ssd_device() { return kv_.storage.ssd.get(); }

  private:
    /** Installs the hub on the simulator before later members construct. */
    struct HubBind
    {
        HubBind(sim::Simulator &sim, obs::Hub *hub)
        {
            if (hub != nullptr) sim.set_hub(hub);
        }
    };

    sim::Simulator sim_;
    HubBind hub_bind_;
    net::Network net_;
    KvStack kv_;
};

}  // namespace sdf::testbed

#endif  // SDF_TESTBED_TESTBED_H
