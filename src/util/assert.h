/**
 * @file
 * Internal invariant checking. Following the gem5 convention, SDF_PANIC is
 * for "this should never happen regardless of user input" (a bug in the
 * simulator) and SDF_FATAL is for unusable configuration supplied by the
 * caller. SDF_CHECK is a convenience wrapper around SDF_PANIC.
 */
#ifndef SDF_UTIL_ASSERT_H
#define SDF_UTIL_ASSERT_H

#include <cstdio>
#include <cstdlib>

namespace sdf::util {

[[noreturn]] inline void
PanicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

[[noreturn]] inline void
FatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

}  // namespace sdf::util

#define SDF_PANIC(msg) ::sdf::util::PanicImpl(__FILE__, __LINE__, msg)
#define SDF_FATAL(msg) ::sdf::util::FatalImpl(__FILE__, __LINE__, msg)

#define SDF_CHECK(cond)                                                      \
    do {                                                                     \
        if (!(cond)) SDF_PANIC("check failed: " #cond);                      \
    } while (0)

#define SDF_CHECK_MSG(cond, msg)                                             \
    do {                                                                     \
        if (!(cond)) SDF_PANIC("check failed: " #cond " — " msg);            \
    } while (0)

#endif  // SDF_UTIL_ASSERT_H
