#include "util/fingerprint.h"

#include "util/rng.h"

namespace sdf::util {

uint64_t
Fingerprint(const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
FillDeterministic(std::vector<uint8_t> &buf, uint64_t seed)
{
    uint64_t s = seed;
    size_t i = 0;
    while (i + 8 <= buf.size()) {
        const uint64_t w = SplitMix64(s);
        for (int b = 0; b < 8; ++b) buf[i + b] = static_cast<uint8_t>(w >> (8 * b));
        i += 8;
    }
    if (i < buf.size()) {
        const uint64_t w = SplitMix64(s);
        for (int b = 0; i < buf.size(); ++i, ++b)
            buf[i] = static_cast<uint8_t>(w >> (8 * b));
    }
}

std::vector<uint8_t>
MakeDeterministicPayload(size_t len, uint64_t seed)
{
    std::vector<uint8_t> buf(len);
    FillDeterministic(buf, seed);
    return buf;
}

}  // namespace sdf::util
