/**
 * @file
 * 64-bit data fingerprints for end-to-end integrity checking in tests: the
 * KV store and device tests verify that what is read back equals what was
 * written without retaining full payload copies everywhere.
 */
#ifndef SDF_UTIL_FINGERPRINT_H
#define SDF_UTIL_FINGERPRINT_H

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace sdf::util {

/** FNV-1a 64-bit hash over a byte range. */
uint64_t Fingerprint(const void *data, size_t len);

/** FNV-1a over a string view. */
inline uint64_t
Fingerprint(std::string_view s)
{
    return Fingerprint(s.data(), s.size());
}

/**
 * Deterministically fill @p buf with bytes derived from @p seed; used by
 * tests and examples to generate verifiable payloads.
 */
void FillDeterministic(std::vector<uint8_t> &buf, uint64_t seed);

/** Build a deterministic payload of @p len bytes from @p seed. */
std::vector<uint8_t> MakeDeterministicPayload(size_t len, uint64_t seed);

}  // namespace sdf::util

#endif  // SDF_UTIL_FINGERPRINT_H
