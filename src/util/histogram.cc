#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace sdf::util {

namespace {

// Sub-buckets per power of two: 16 gives <= 1/16 relative bucket width.
constexpr int kSubBucketBits = 4;
constexpr int kSubBuckets = 1 << kSubBucketBits;

}  // namespace

Histogram::Histogram() = default;

size_t
Histogram::BucketFor(int64_t value)
{
    if (value < kSubBuckets) return static_cast<size_t>(std::max<int64_t>(value, 0));
    const auto v = static_cast<uint64_t>(value);
    const int log2 = 63 - std::countl_zero(v);
    const int sub = static_cast<int>((v >> (log2 - kSubBucketBits)) & (kSubBuckets - 1));
    return static_cast<size_t>(kSubBuckets + (log2 - kSubBucketBits) * kSubBuckets + sub);
}

int64_t
Histogram::BucketLow(size_t idx)
{
    if (idx < kSubBuckets) return static_cast<int64_t>(idx);
    const size_t rel = idx - kSubBuckets;
    const int log2 = static_cast<int>(rel / kSubBuckets) + kSubBucketBits;
    const int sub = static_cast<int>(rel % kSubBuckets);
    return (int64_t{1} << log2) + (int64_t{sub} << (log2 - kSubBucketBits));
}

int64_t
Histogram::BucketHigh(size_t idx)
{
    if (idx < kSubBuckets) return static_cast<int64_t>(idx) + 1;
    const size_t rel = idx - kSubBuckets;
    const int log2 = static_cast<int>(rel / kSubBuckets) + kSubBucketBits;
    return BucketLow(idx) + (int64_t{1} << (log2 - kSubBucketBits));
}

void
Histogram::Add(int64_t value)
{
    if (value < 0) value = 0;
    const size_t idx = BucketFor(value);
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
    ++buckets_[idx];
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const auto v = static_cast<double>(value);
    sum_ += v;
    sum_sq_ += v * v;
}

void
Histogram::Merge(const Histogram &other)
{
    if (other.count_ == 0) return;
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
}

Histogram
Histogram::Delta(const Histogram &prev, const Histogram &cur)
{
    if (prev.count_ == 0) return cur;
    if (cur.count_ < prev.count_ ||
        prev.buckets_.size() > cur.buckets_.size()) {
        return cur;
    }
    Histogram d;
    d.buckets_.assign(cur.buckets_.size(), 0);
    bool any = false;
    size_t lo = 0, hi = 0;
    for (size_t i = 0; i < cur.buckets_.size(); ++i) {
        const uint64_t p = i < prev.buckets_.size() ? prev.buckets_[i] : 0;
        if (cur.buckets_[i] < p) return cur;
        d.buckets_[i] = cur.buckets_[i] - p;
        if (d.buckets_[i] != 0) {
            if (!any) lo = i;
            hi = i;
            any = true;
        }
    }
    d.count_ = cur.count_ - prev.count_;
    if (!any || d.count_ == 0) return Histogram();
    d.sum_ = cur.sum_ - prev.sum_;
    d.sum_sq_ = cur.sum_sq_ - prev.sum_sq_;
    d.min_ = BucketLow(lo);
    d.max_ = BucketHigh(hi) - 1;
    if (d.count_ == 1) {
        // One-sample window: the sum difference recovers the sample exactly
        // (integer-valued doubles stay exact below 2^53), so pin min/max to
        // it — Quantile()'s clamp then reports the true value at every q
        // instead of a mid-bucket interpolation up to 1/16 off.
        const auto v = static_cast<int64_t>(std::llround(d.sum_));
        if (v >= BucketLow(lo) && v < BucketHigh(lo)) d.min_ = d.max_ = v;
    }
    return d;
}

void
Histogram::Reset()
{
    buckets_.clear();
    count_ = 0;
    min_ = max_ = 0;
    sum_ = sum_sq_ = 0.0;
}

double
Histogram::Mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::StdDev() const
{
    if (count_ < 2) return 0.0;
    const double n = static_cast<double>(count_);
    const double var = std::max(0.0, (sum_sq_ - sum_ * sum_ / n) / (n - 1));
    return std::sqrt(var);
}

double
Histogram::Quantile(double q) const
{
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    double seen = 0.0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0) continue;
        const double next = seen + static_cast<double>(buckets_[i]);
        if (next >= target) {
            // Linear interpolation inside the bucket, clamped to observed
            // extremes so Quantile(0)/Quantile(1) equal min/max.
            const double frac =
                buckets_[i] ? (target - seen) / static_cast<double>(buckets_[i]) : 0.0;
            const double lo = static_cast<double>(BucketLow(i));
            const double hi = static_cast<double>(BucketHigh(i));
            const double v = lo + frac * (hi - lo);
            return std::clamp(v, static_cast<double>(min_), static_cast<double>(max_));
        }
        seen = next;
    }
    return static_cast<double>(max_);
}

std::string
Histogram::Summary() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu mean=%.1f p50=%.1f p99=%.1f min=%lld max=%lld",
                  static_cast<unsigned long long>(count_), Mean(), Quantile(0.5),
                  Quantile(0.99), static_cast<long long>(min()),
                  static_cast<long long>(max()));
    return buf;
}

}  // namespace sdf::util
