/**
 * @file
 * Log-bucketed histogram for latency and size distributions.
 *
 * Buckets grow geometrically so that a single histogram can capture values
 * from nanoseconds to seconds with bounded memory and ~4 % relative error,
 * which is ample for reproducing the paper's latency figures.
 */
#ifndef SDF_UTIL_HISTOGRAM_H
#define SDF_UTIL_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace sdf::util {

/** Geometric-bucket histogram over non-negative 64-bit samples. */
class Histogram
{
  public:
    Histogram();

    /** Add one sample. Negative samples are clamped to zero. */
    void Add(int64_t value);

    /** Merge another histogram into this one. */
    void Merge(const Histogram &other);

    /**
     * Distribution of the samples added to @p cur after @p prev was copied
     * from it — bucket-wise subtraction, the primitive behind windowed
     * time-series percentiles (copy at window start, diff at window end).
     * min/max are approximated by the bounds of the lowest/highest
     * non-empty delta bucket. If @p cur does not contain @p prev (it was
     * Reset or replaced in between), @p cur is returned unchanged.
     */
    static Histogram Delta(const Histogram &prev, const Histogram &cur);

    /** Remove all samples. */
    void Reset();

    uint64_t count() const { return count_; }
    int64_t min() const { return count_ ? min_ : 0; }
    int64_t max() const { return count_ ? max_ : 0; }
    double Mean() const;
    double StdDev() const;

    /**
     * Value at quantile q in [0, 1], interpolated within the containing
     * bucket. Returns 0 for an empty histogram.
     */
    double Quantile(double q) const;

    /** Convenience percentile (p in [0, 100]). */
    double Percentile(double p) const { return Quantile(p / 100.0); }

    /** One-line summary ("n=... mean=... p50=... p99=... max=..."). */
    std::string Summary() const;

  private:
    static size_t BucketFor(int64_t value);
    static int64_t BucketLow(size_t idx);
    static int64_t BucketHigh(size_t idx);

    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    int64_t min_ = 0;
    int64_t max_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
};

}  // namespace sdf::util

#endif  // SDF_UTIL_HISTOGRAM_H
