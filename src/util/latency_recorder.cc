// LatencyRecorder is header-only; this translation unit exists so the
// header is compiled standalone at least once (include hygiene check).
#include "util/latency_recorder.h"
