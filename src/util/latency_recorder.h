/**
 * @file
 * Per-operation latency capture: keeps both a histogram (for percentiles)
 * and, optionally, the raw sample series (for time-series plots such as the
 * paper's Figure 8 write-latency traces).
 */
#ifndef SDF_UTIL_LATENCY_RECORDER_H
#define SDF_UTIL_LATENCY_RECORDER_H

#include <vector>

#include "util/histogram.h"
#include "util/units.h"

namespace sdf::util {

/** Records operation latencies in simulated nanoseconds. */
class LatencyRecorder
{
  public:
    /**
     * @param keep_series When true the raw per-sample series is retained
     *     (needed for latency-over-time plots); otherwise only the histogram.
     */
    explicit LatencyRecorder(bool keep_series = false)
        : keep_series_(keep_series) {}

    /** Record one completed operation's latency. */
    void
    Record(TimeNs latency)
    {
        hist_.Add(latency);
        if (keep_series_) series_.push_back(latency);
    }

    void
    Reset()
    {
        hist_.Reset();
        series_.clear();
    }

    const Histogram &histogram() const { return hist_; }
    const std::vector<TimeNs> &series() const { return series_; }

    uint64_t count() const { return hist_.count(); }
    double MeanMs() const { return NsToMs(static_cast<TimeNs>(hist_.Mean())); }
    double MinMs() const { return NsToMs(hist_.min()); }
    double MaxMs() const { return NsToMs(hist_.max()); }
    double PercentileMs(double p) const
    {
        return NsToMs(static_cast<TimeNs>(hist_.Percentile(p)));
    }
    double StdDevMs() const { return NsToMs(static_cast<TimeNs>(hist_.StdDev())); }

  private:
    bool keep_series_;
    Histogram hist_;
    std::vector<TimeNs> series_;
};

}  // namespace sdf::util

#endif  // SDF_UTIL_LATENCY_RECORDER_H
