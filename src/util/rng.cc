#include "util/rng.h"

#include <cmath>

#include "util/assert.h"

namespace sdf::util {

uint64_t
SplitMix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

constexpr uint64_t
Rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed)
{
    // xoshiro state must not be all-zero; SplitMix64 guarantees good spread.
    uint64_t s = seed;
    for (auto &w : state_) w = SplitMix64(s);
}

uint64_t
Rng::Next()
{
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::NextBelow(uint64_t bound)
{
    SDF_CHECK(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
        const uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            m = static_cast<__uint128_t>(Next()) * bound;
            lo = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::NextInRange(int64_t lo, int64_t hi)
{
    SDF_CHECK(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextBelow(span));
}

double
Rng::NextDouble()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool
Rng::NextBool(double p)
{
    return NextDouble() < p;
}

double
Rng::NextExponential(double mean)
{
    SDF_CHECK(mean > 0.0);
    double u = NextDouble();
    // Avoid log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
}

Rng
Rng::Fork()
{
    return Rng(Next());
}

}  // namespace sdf::util
