/**
 * @file
 * Deterministic pseudo-random number generation for the simulation.
 *
 * Everything in the SDF reproduction that needs randomness (workload key
 * choice, bit-error injection, factory bad blocks, ...) draws from an
 * explicitly seeded Rng so that every test and benchmark is reproducible
 * bit-for-bit. The generator is xoshiro256**, seeded via SplitMix64.
 */
#ifndef SDF_UTIL_RNG_H
#define SDF_UTIL_RNG_H

#include <cstdint>

namespace sdf::util {

/** Deterministic xoshiro256** PRNG with convenience distributions. */
class Rng
{
  public:
    /** Construct with a seed; equal seeds produce equal streams. */
    explicit Rng(uint64_t seed = 0x5df5df5dULL);

    /** Next raw 64-bit value. */
    uint64_t Next();

    /** Uniform integer in [0, bound) using Lemire's method; bound > 0. */
    uint64_t NextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t NextInRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double NextDouble();

    /** Bernoulli trial with probability p in [0, 1]. */
    bool NextBool(double p);

    /**
     * Exponentially distributed double with the given mean (> 0). Used for
     * inter-arrival jitter in open-loop generators.
     */
    double NextExponential(double mean);

    /** Derive an independent child generator (for per-actor streams). */
    Rng Fork();

  private:
    uint64_t state_[4];
};

/** SplitMix64 step, exposed for hashing-style uses (ID scrambling). */
uint64_t SplitMix64(uint64_t &state);

}  // namespace sdf::util

#endif  // SDF_UTIL_RNG_H
