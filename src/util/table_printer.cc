#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace sdf::util {

void
TablePrinter::SetHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::AddRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::Num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::Int(int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
}

std::string
TablePrinter::ToString() const
{
    // Compute column widths over header + all rows.
    size_t cols = header_.size();
    for (const auto &r : rows_) cols = std::max(cols, r.size());
    std::vector<size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    widen(header_);
    for (const auto &r : rows_) widen(r);

    auto render_row = [&](const std::vector<std::string> &r) {
        std::string line = "  ";
        for (size_t i = 0; i < cols; ++i) {
            const std::string &cell = i < r.size() ? r[i] : std::string();
            line += cell;
            line.append(width[i] - cell.size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ') line.pop_back();
        line += '\n';
        return line;
    };

    std::string out;
    out += "== " + title_ + " ==\n";
    if (!header_.empty()) {
        out += render_row(header_);
        size_t total = 2;
        for (size_t w : width) total += w + 2;
        out += "  " + std::string(total - 2, '-') + "\n";
    }
    for (const auto &r : rows_) out += render_row(r);
    return out;
}

void
TablePrinter::Print() const
{
    std::fputs(ToString().c_str(), stdout);
    std::fputs("\n", stdout);
    std::fflush(stdout);
}

}  // namespace sdf::util
