/**
 * @file
 * Aligned ASCII table output used by the benchmark binaries to print the
 * paper's tables and figure series.
 */
#ifndef SDF_UTIL_TABLE_PRINTER_H
#define SDF_UTIL_TABLE_PRINTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace sdf::util {

/** Collects rows of string cells and prints them column-aligned. */
class TablePrinter
{
  public:
    /** @param title Caption printed above the table. */
    explicit TablePrinter(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void SetHeader(std::vector<std::string> header);

    /** Append a data row (cells may be fewer than header columns). */
    void AddRow(std::vector<std::string> row);

    /** Format helpers for numeric cells. */
    static std::string Num(double v, int precision = 1);
    static std::string Int(int64_t v);

    /** Render the table to a string. */
    std::string ToString() const;

    /** Print the table to stdout. */
    void Print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdf::util

#endif  // SDF_UTIL_TABLE_PRINTER_H
