#include "util/throughput_meter.h"

namespace sdf::util {

void
ThroughputMeter::Start(TimeNs now)
{
    start_ = now;
    window_start_ = now;
    window_bytes_ = 0;
    total_bytes_ = 0;
    operations_ = 0;
    series_.clear();
}

void
ThroughputMeter::RollWindows(TimeNs now)
{
    if (window_ <= 0) return;
    while (now >= window_start_ + window_) {
        series_.push_back(BandwidthMBps(window_bytes_, window_));
        window_start_ += window_;
        window_bytes_ = 0;
    }
}

void
ThroughputMeter::Account(TimeNs now, uint64_t bytes)
{
    RollWindows(now);
    total_bytes_ += bytes;
    window_bytes_ += bytes;
    ++operations_;
}

double
ThroughputMeter::MBps(TimeNs now) const
{
    return BandwidthMBps(total_bytes_, now - start_);
}

}  // namespace sdf::util
