/**
 * @file
 * Throughput accounting over simulated time, with optional fixed-window
 * time series for plots of sustained bandwidth.
 */
#ifndef SDF_UTIL_THROUGHPUT_METER_H
#define SDF_UTIL_THROUGHPUT_METER_H

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace sdf::util {

/**
 * Accumulates bytes moved against simulated time and reports MB/s.
 *
 * Usage: call Start(now) once, Account(now, bytes) per completion, then
 * read MBps(now). If a window is configured, per-window MB/s samples are
 * kept for time-series output.
 */
class ThroughputMeter
{
  public:
    /** @param window Window length for the time series; 0 disables it. */
    explicit ThroughputMeter(TimeNs window = 0) : window_(window) {}

    /** Begin (or restart) measurement at simulated time @p now. */
    void Start(TimeNs now);

    /** Account @p bytes completed at simulated time @p now. */
    void Account(TimeNs now, uint64_t bytes);

    /** Mean throughput in MB/s from Start() to @p now. */
    double MBps(TimeNs now) const;

    uint64_t total_bytes() const { return total_bytes_; }
    uint64_t operations() const { return operations_; }
    TimeNs start_time() const { return start_; }

    /** Completed fixed-window samples in MB/s (excludes the partial tail). */
    const std::vector<double> &window_series() const { return series_; }

  private:
    void RollWindows(TimeNs now);

    TimeNs window_;
    TimeNs start_ = 0;
    TimeNs window_start_ = 0;
    uint64_t window_bytes_ = 0;
    uint64_t total_bytes_ = 0;
    uint64_t operations_ = 0;
    std::vector<double> series_;
};

}  // namespace sdf::util

#endif  // SDF_UTIL_THROUGHPUT_METER_H
