#include "util/units.h"

#include <cstdio>

namespace sdf::util {

std::string
FormatBytes(uint64_t bytes)
{
    char buf[48];
    if (bytes >= kGB && bytes % kGB == 0) {
        std::snprintf(buf, sizeof(buf), "%llu GB",
                      static_cast<unsigned long long>(bytes / kGB));
    } else if (bytes >= kMB && bytes % kMB == 0) {
        std::snprintf(buf, sizeof(buf), "%llu MB",
                      static_cast<unsigned long long>(bytes / kMB));
    } else if (bytes >= kGiB) {
        std::snprintf(buf, sizeof(buf), "%.1f GiB",
                      static_cast<double>(bytes) / static_cast<double>(kGiB));
    } else if (bytes >= kMiB) {
        std::snprintf(buf, sizeof(buf), "%.1f MiB",
                      static_cast<double>(bytes) / static_cast<double>(kMiB));
    } else if (bytes >= kKiB) {
        std::snprintf(buf, sizeof(buf), "%.1f KiB",
                      static_cast<double>(bytes) / static_cast<double>(kKiB));
    } else {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

}  // namespace sdf::util
