/**
 * @file
 * Size and time unit constants and small formatting helpers used across the
 * SDF reproduction. Sizes are in bytes; simulated time is in nanoseconds.
 */
#ifndef SDF_UTIL_UNITS_H
#define SDF_UTIL_UNITS_H

#include <cstdint>
#include <string>

namespace sdf::util {

// -------------------------------------------------------------------------
// Sizes (bytes).
// -------------------------------------------------------------------------
inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;

// Decimal units: vendors (and the paper) quote bandwidth in MB/s = 1e6 B/s.
inline constexpr uint64_t kKB = 1000ULL;
inline constexpr uint64_t kMB = 1000ULL * kKB;
inline constexpr uint64_t kGB = 1000ULL * kMB;

// -------------------------------------------------------------------------
// Time (nanoseconds of simulated time).
// -------------------------------------------------------------------------
using TimeNs = int64_t;

inline constexpr TimeNs kNsPerUs = 1000;
inline constexpr TimeNs kNsPerMs = 1000 * kNsPerUs;
inline constexpr TimeNs kNsPerSec = 1000 * kNsPerMs;

/** Convert microseconds to simulated nanoseconds. */
constexpr TimeNs UsToNs(double us) { return static_cast<TimeNs>(us * kNsPerUs); }
/** Convert milliseconds to simulated nanoseconds. */
constexpr TimeNs MsToNs(double ms) { return static_cast<TimeNs>(ms * kNsPerMs); }
/** Convert seconds to simulated nanoseconds. */
constexpr TimeNs SecToNs(double s) { return static_cast<TimeNs>(s * kNsPerSec); }

/** Convert simulated nanoseconds to (double) milliseconds. */
constexpr double NsToMs(TimeNs ns) { return static_cast<double>(ns) / kNsPerMs; }
/** Convert simulated nanoseconds to (double) microseconds. */
constexpr double NsToUs(TimeNs ns) { return static_cast<double>(ns) / kNsPerUs; }
/** Convert simulated nanoseconds to (double) seconds. */
constexpr double NsToSec(TimeNs ns) { return static_cast<double>(ns) / kNsPerSec; }

/**
 * Time needed to move @p bytes at @p bytes_per_sec, rounded up to a whole
 * nanosecond. A zero rate yields zero time (infinite-speed link).
 */
constexpr TimeNs TransferTimeNs(uint64_t bytes, double bytes_per_sec)
{
    if (bytes_per_sec <= 0.0) return 0;
    const double sec = static_cast<double>(bytes) / bytes_per_sec;
    return static_cast<TimeNs>(sec * kNsPerSec + 0.5);
}

/** Bandwidth in MB/s (decimal) given bytes moved over a simulated duration. */
constexpr double BandwidthMBps(uint64_t bytes, TimeNs duration)
{
    if (duration <= 0) return 0.0;
    return static_cast<double>(bytes) / NsToSec(duration) / kMB;
}

/** Render a byte count as a human-readable string ("8 KB", "704 GB", ...). */
std::string FormatBytes(uint64_t bytes);

}  // namespace sdf::util

#endif  // SDF_UTIL_UNITS_H
