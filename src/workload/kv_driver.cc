#include "workload/kv_driver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "host/io_stack.h"
#include "util/assert.h"
#include "util/latency_recorder.h"

namespace sdf::workload {

std::vector<std::vector<uint64_t>>
PreloadSlices(const std::vector<kv::Slice *> &slices, uint64_t bytes_per_slice,
              uint32_t value_size)
{
    SDF_CHECK(value_size > 0);
    std::vector<std::vector<uint64_t>> keys(slices.size());
    for (size_t s = 0; s < slices.size(); ++s) {
        kv::Slice *slice = slices[s];
        uint64_t loaded = 0;
        uint64_t next_key = uint64_t{s} << 40;
        const uint64_t patch_bytes = slice->patch_bytes();
        while (loaded < bytes_per_slice) {
            // One full patch of values.
            std::vector<kv::KvItem> items;
            uint64_t patch_fill = 0;
            const uint64_t patch_cap = bytes_per_slice - loaded;
            while (patch_fill + value_size <= patch_bytes &&
                   patch_fill + value_size <= patch_cap) {
                items.push_back(kv::KvItem{next_key, value_size, nullptr});
                keys[s].push_back(next_key);
                ++next_key;
                patch_fill += value_size;
            }
            if (items.empty()) break;
            if (!slice->DebugPreloadPatch(std::move(items))) {
                // Storage full: stop loading this slice.
                break;
            }
            loaded += patch_fill;
        }
        SDF_CHECK_MSG(!keys[s].empty(), "slice preload produced no keys");
    }
    return keys;
}

KvRunResult
RunBatchedRandomReads(sim::Simulator &sim, net::Network &net,
                      const std::vector<kv::Slice *> &slices,
                      const std::vector<std::vector<uint64_t>> &keys,
                      uint32_t batch_size, const KvRunConfig &run)
{
    SDF_CHECK(!slices.empty());
    SDF_CHECK(keys.size() == slices.size());
    SDF_CHECK(batch_size >= 1);

    struct Meter
    {
        bool measuring = false;
        uint64_t bytes = 0;
        uint64_t requests = 0;
    };
    auto meter = std::make_shared<Meter>();
    auto rng = std::make_shared<util::Rng>(run.seed);

    std::vector<std::unique_ptr<host::ClosedLoopActor>> clients;
    for (size_t s = 0; s < slices.size(); ++s) {
        kv::Slice *slice = slices[s];
        const auto &slice_keys = keys[s];
        const auto client = static_cast<uint32_t>(s);
        clients.push_back(std::make_unique<host::ClosedLoopActor>(
            sim, [&net, slice, &slice_keys, client, batch_size, meter,
                  rng](sim::Callback done) {
                // One batched request; each sub-request's value streams
                // back to the client as soon as it is read, and the batch
                // completes when the last value lands at the client.
                net.ClientToServer(client, 256, [&net, slice, &slice_keys,
                                                 client, batch_size, meter,
                                                 rng,
                                                 done = std::move(done)]() mutable {
                    auto remaining = std::make_shared<uint32_t>(batch_size);
                    auto finish = std::make_shared<sim::Callback>(
                        std::move(done));
                    for (uint32_t b = 0; b < batch_size; ++b) {
                        const uint64_t key =
                            slice_keys[rng->NextBelow(slice_keys.size())];
                        slice->Get(key, [&net, client, remaining, finish,
                                         meter](const kv::GetResult &r) {
                            const uint64_t bytes =
                                r.found && r.ok ? r.value_size : 64;
                            net.Push(client, bytes, [remaining, finish,
                                                     meter]() {
                                if (--*remaining == 0) {
                                    if (meter->measuring) ++meter->requests;
                                    (*finish)();
                                }
                            });
                        });
                    }
                });
            }));
    }

    for (auto &c : clients) c->Start();
    sim.RunUntil(sim.Now() + run.warmup);
    meter->measuring = true;
    const uint64_t bytes_before = net.bytes_to_clients();
    const TimeNs t0 = sim.Now();
    sim.RunUntil(t0 + run.duration);
    const uint64_t delivered = net.bytes_to_clients() - bytes_before;
    meter->measuring = false;
    for (auto &c : clients) c->Stop();

    KvRunResult result;
    result.client_mbps = util::BandwidthMBps(delivered, run.duration);
    result.requests = meter->requests;
    return result;
}

KvRunResult
RunSequentialScan(sim::Simulator &sim, const std::vector<kv::Slice *> &slices,
                  uint32_t threads_per_slice, const KvRunConfig &run)
{
    SDF_CHECK(!slices.empty());
    SDF_CHECK(threads_per_slice >= 1);

    struct Meter
    {
        bool measuring = false;
        uint64_t bytes = 0;
        uint64_t requests = 0;
    };
    auto meter = std::make_shared<Meter>();

    std::vector<std::unique_ptr<host::ClosedLoopActor>> threads;
    for (kv::Slice *slice : slices) {
        // The scan walks all patches in key order, cycling for the run's
        // duration; threads share one cursor (six per slice in §3.3.2).
        auto patch_ids =
            std::make_shared<std::vector<uint64_t>>(slice->AllPatchIds());
        SDF_CHECK_MSG(!patch_ids->empty(), "scan over an empty slice");
        auto cursor = std::make_shared<size_t>(0);
        for (uint32_t t = 0; t < threads_per_slice; ++t) {
            threads.push_back(std::make_unique<host::ClosedLoopActor>(
                sim, [slice, patch_ids, cursor, meter](sim::Callback done) {
                    const uint64_t id =
                        (*patch_ids)[(*cursor)++ % patch_ids->size()];
                    const uint64_t bytes = 8 * util::kMiB;
                    auto dp =
                        std::make_shared<sim::Callback>(std::move(done));
                    slice->ReadPatchFully(id, [meter, bytes, dp](bool ok) {
                        if (ok && meter->measuring) {
                            meter->bytes += bytes;
                            ++meter->requests;
                        }
                        (*dp)();
                    });
                }));
        }
    }

    for (auto &t : threads) t->Start();
    sim.RunUntil(sim.Now() + run.warmup);
    meter->measuring = true;
    const TimeNs t0 = sim.Now();
    sim.RunUntil(t0 + run.duration);
    meter->measuring = false;
    for (auto &t : threads) t->Stop();

    KvRunResult result;
    result.client_mbps = util::BandwidthMBps(meter->bytes, run.duration);
    result.device_read_mbps = result.client_mbps;
    result.requests = meter->requests;
    result.scanned_bytes = meter->bytes;
    result.ops_per_sec = static_cast<double>(meter->requests) /
                         (static_cast<double>(run.duration) * 1e-9);
    return result;
}

KvRunResult
RunKvWrites(sim::Simulator &sim, net::Network &net,
            const std::vector<kv::Slice *> &slices, uint32_t value_min,
            uint32_t value_max, const KvRunConfig &run)
{
    SDF_CHECK(!slices.empty());
    SDF_CHECK(value_min > 0 && value_min <= value_max);

    auto rng = std::make_shared<util::Rng>(run.seed);
    auto next_key = std::make_shared<uint64_t>(uint64_t{1} << 50);
    auto requests = std::make_shared<uint64_t>(0);

    std::vector<std::unique_ptr<host::ClosedLoopActor>> clients;
    for (size_t s = 0; s < slices.size(); ++s) {
        kv::Slice *slice = slices[s];
        const auto client = static_cast<uint32_t>(s);
        clients.push_back(std::make_unique<host::ClosedLoopActor>(
            sim, [&net, slice, client, value_min, value_max, rng, next_key,
                  requests](sim::Callback done) {
                const auto size = static_cast<uint32_t>(rng->NextInRange(
                    value_min, value_max));
                net.Rpc(
                    client, /*request_bytes=*/size,
                    [slice, size, next_key,
                     requests](std::function<void(uint64_t)> reply) {
                        slice->Put((*next_key)++, size,
                                   [reply, requests](bool) {
                                       ++*requests;
                                       reply(64);  // Small ack message.
                                   });
                    },
                    std::move(done));
            }));
    }

    auto slice_writes = [&slices]() {
        uint64_t flushed = 0, cread = 0, cwrite = 0;
        for (const kv::Slice *s : slices) {
            flushed += s->stats().flushes * 8 * util::kMiB;
            cread += s->stats().compaction_bytes_read;
            cwrite += s->stats().compaction_bytes_written;
        }
        return std::tuple{flushed, cread, cwrite};
    };

    for (auto &c : clients) c->Start();
    sim.RunUntil(sim.Now() + run.warmup);
    const auto [f0, r0, w0] = slice_writes();
    const uint64_t req0 = *requests;
    const TimeNs t0 = sim.Now();
    sim.RunUntil(t0 + run.duration);
    const auto [f1, r1, w1] = slice_writes();
    for (auto &c : clients) c->Stop();

    KvRunResult result;
    result.device_write_mbps =
        util::BandwidthMBps((f1 - f0) + (w1 - w0), run.duration);
    result.device_read_mbps = util::BandwidthMBps(r1 - r0, run.duration);
    result.client_mbps = result.device_write_mbps -
        util::BandwidthMBps(w1 - w0, run.duration);  // flush share
    result.requests = *requests - req0;
    return result;
}

KvService
ServiceFor(kv::Store &store)
{
    KvService svc;
    svc.put = [&store](uint64_t key, uint32_t value_size,
                       kv::PutCallback done) {
        store.Put(key, value_size, std::move(done));
    };
    svc.get = [&store](uint64_t key, kv::GetCallback done) {
        store.Get(key, std::move(done));
    };
    svc.scan = [&store](uint64_t start_key, uint32_t limit,
                        std::function<void(const kv::ScanResult &)> done) {
        store.Scan(start_key, limit,
                   [done = std::move(done)](const kv::ScanResult &r) {
                       done(r);
                   });
    };
    return svc;
}

MixedRunResult
RunMixedLoad(sim::Simulator &sim, const KvService &svc,
             const std::vector<uint64_t> &keys, const MixedRunConfig &cfg)
{
    SDF_CHECK(svc.put != nullptr && svc.get != nullptr);
    SDF_CHECK(cfg.actors > 0);

    MixedRunResult result;
    std::vector<uint64_t> population = keys;  // Grows as writes ack.
    uint64_t next_key = cfg.first_write_key;
    uint64_t acked_bytes = 0;
    util::LatencyRecorder read_lat, write_lat;
    std::vector<util::Rng> rngs;
    rngs.reserve(cfg.actors);
    for (uint32_t a = 0; a < cfg.actors; ++a) {
        rngs.emplace_back(cfg.seed ^ (0xac700000ULL + a));
    }

    const TimeNs t_end = sim.Now() + cfg.duration;
    // One closed loop per actor: issue, wait for the ack, repeat. All
    // state lives on this frame; RunMixedLoad drains the simulator before
    // returning, so the references the callbacks capture stay valid.
    std::function<void(uint32_t)> step = [&](uint32_t a) {
        if (sim.Now() >= t_end) return;
        util::Rng &rng = rngs[a];
        const bool do_read =
            !population.empty() && rng.NextDouble() < cfg.read_fraction;
        const TimeNs t0 = sim.Now();
        if (do_read) {
            const uint64_t key = population[rng.NextBelow(population.size())];
            svc.get(key, [&, a, t0](const kv::GetResult &res) {
                ++result.reads;
                if (!res.ok) {
                    ++result.read_errors;
                } else if (!res.found) {
                    ++result.read_misses;
                } else {
                    result.read_bytes += res.value_size;
                }
                read_lat.Record(sim.Now() - t0);
                step(a);
            });
        } else {
            const uint64_t key = next_key++;
            svc.put(key, cfg.value_bytes, [&, a, key, t0](bool ok) {
                ++result.writes;
                if (ok) {
                    result.acked_writes.push_back(key);
                    population.push_back(key);
                    acked_bytes += cfg.value_bytes;
                } else {
                    ++result.write_errors;
                }
                write_lat.Record(sim.Now() - t0);
                step(a);
            });
        }
    };
    for (uint32_t a = 0; a < cfg.actors; ++a) {
        sim.Post([&step, a]() { step(a); });
    }
    sim.RunUntil(t_end);
    sim.Run();  // Drain the last in-flight op of every actor.

    const double secs = util::NsToSec(cfg.duration);
    result.ops_per_sec =
        secs > 0 ? static_cast<double>(result.reads + result.writes) / secs
                 : 0;
    result.read_mbps = util::BandwidthMBps(result.read_bytes, cfg.duration);
    result.write_mbps = util::BandwidthMBps(acked_bytes, cfg.duration);
    if (read_lat.count() > 0) {
        result.read_mean_ms = read_lat.MeanMs();
        result.read_p99_ms = read_lat.PercentileMs(99);
    }
    if (write_lat.count() > 0) {
        result.write_mean_ms = write_lat.MeanMs();
        result.write_p99_ms = write_lat.PercentileMs(99);
    }
    return result;
}

OpenRunResult
RunOpenLoad(sim::Simulator &sim, const KvService &svc,
            const std::vector<uint64_t> &keys, const OpenRunConfig &cfg)
{
    SDF_CHECK(svc.get != nullptr);
    SDF_CHECK(svc.put != nullptr || svc.put_typed != nullptr);
    SDF_CHECK(cfg.arrival_rate > 0);

    // Always go through the typed put path so sheds are attributable;
    // plain-put services get a wrapper that can only say ok/error.
    auto put_typed = svc.put_typed;
    if (!put_typed) {
        put_typed = [put = svc.put](uint64_t key, uint32_t value_size,
                                    kv::PutStatusCallback done) {
            put(key, value_size, [done = std::move(done)](bool ok) {
                done(ok ? kv::OpStatus::kOk : kv::OpStatus::kError);
            });
        };
    }

    OpenRunResult result;
    util::LatencyRecorder all_lat, read_lat;
    util::Rng rng(cfg.seed ^ 0x09e41007ULL);
    uint64_t next_key = cfg.first_write_key;

    const TimeNs t_start = sim.Now();
    const TimeNs t_end = t_start + cfg.duration;
    const TimeNs storm_start = t_start + cfg.storm_start;
    const TimeNs storm_end = t_start + cfg.storm_end;

    auto count_status = [&](kv::OpStatus s) {
        switch (s) {
            case kv::OpStatus::kOk: break;
            case kv::OpStatus::kOverloaded: ++result.shed_overloaded; break;
            case kv::OpStatus::kDeadlineExceeded:
                ++result.shed_deadline;
                break;
            case kv::OpStatus::kError: ++result.errors; break;
        }
    };

    auto issue_one = [&]() {
        ++result.issued;
        const TimeNs t0 = sim.Now();
        const bool do_read =
            !keys.empty() && rng.NextDouble() < cfg.read_fraction;
        if (do_read) {
            const uint64_t key = keys[rng.NextBelow(keys.size())];
            svc.get(key, [&, t0](const kv::GetResult &res) {
                ++result.completed;
                const TimeNs lat = sim.Now() - t0;
                all_lat.Record(lat);
                if (!res.ok) {
                    count_status(res.status == kv::OpStatus::kOk
                                     ? kv::OpStatus::kError
                                     : res.status);
                } else if (!res.found) {
                    ++result.misses;
                } else {
                    ++result.ok_reads;
                    read_lat.Record(lat);
                }
            });
        } else {
            const uint64_t key = next_key++;
            put_typed(key, cfg.value_bytes, [&, key, t0](kv::OpStatus s) {
                ++result.completed;
                all_lat.Record(sim.Now() - t0);
                if (s == kv::OpStatus::kOk) {
                    ++result.ok_writes;
                    result.acked_writes.push_back(key);
                } else {
                    count_status(s);
                }
            });
        }
    };

    // The arrival process: each arrival issues one op fire-and-forget and
    // schedules the next on a seeded exponential clock. The storm window
    // multiplies the *rate* (divides the gap), so a 2x storm really offers
    // 2x the load rather than just reshuffling arrival times.
    std::function<void()> arrive = [&]() {
        if (sim.Now() >= t_end) return;
        issue_one();
        double rate = cfg.arrival_rate;
        if (cfg.storm_factor != 1.0 && sim.Now() >= storm_start &&
            sim.Now() < storm_end) {
            rate *= cfg.storm_factor;
        }
        const double u = rng.NextDouble();
        const double gap_sec = -std::log(1.0 - u) / rate;
        TimeNs gap = static_cast<TimeNs>(gap_sec * 1e9);
        if (gap == 0) gap = 1;  // Never two arrivals at the same tick.
        sim.Schedule(gap, arrive);
    };
    sim.Post([&arrive]() { arrive(); });
    sim.RunUntil(t_end);
    sim.Run();  // Drain everything still in flight (or pending shed).

    const double secs = util::NsToSec(cfg.duration);
    if (secs > 0) {
        result.offered_ops_per_sec =
            static_cast<double>(result.issued) / secs;
        result.goodput_ops_per_sec =
            static_cast<double>(result.ok_reads + result.ok_writes +
                                result.misses) /
            secs;
    }
    if (all_lat.count() > 0) {
        result.p50_ms = all_lat.PercentileMs(50);
        result.p99_ms = all_lat.PercentileMs(99);
        result.p999_ms = all_lat.PercentileMs(99.9);
    }
    if (read_lat.count() > 0) result.read_p99_ms = read_lat.PercentileMs(99);
    return result;
}

}  // namespace sdf::workload
