/**
 * @file
 * CCDB workload drivers for the production-system experiments
 * (Figures 10-14): slice preloading, batched random reads over the
 * network, index-building sequential scans, and the write+compaction mix.
 */
#ifndef SDF_WORKLOAD_KV_DRIVER_H
#define SDF_WORKLOAD_KV_DRIVER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "kv/slice.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace sdf::workload {

using util::TimeNs;

/**
 * Preload @p slices with @p bytes_per_slice of values of @p value_size,
 * installed instantly as sorted patches (no simulated time).
 * @return per-slice key lists for the read drivers.
 */
std::vector<std::vector<uint64_t>>
PreloadSlices(const std::vector<kv::Slice *> &slices, uint64_t bytes_per_slice,
              uint32_t value_size);

/** Result of a KV workload run. */
struct KvRunResult
{
    double client_mbps = 0.0;       ///< Payload delivered to clients.
    double device_read_mbps = 0.0;  ///< Compaction/scan reads at the store.
    double device_write_mbps = 0.0; ///< Patch writes (flush + compaction).
    uint64_t requests = 0;
};

/** Run parameters shared by the KV drivers. */
struct KvRunConfig
{
    TimeNs warmup = util::MsToNs(300);
    TimeNs duration = util::SecToNs(2.0);
    uint64_t seed = 7;
};

/**
 * Figures 10-12: one synchronous client per slice sends batched random
 * read requests of @p batch_size sub-requests over the network; the next
 * request leaves only when the previous response arrived.
 */
KvRunResult RunBatchedRandomReads(
    sim::Simulator &sim, net::Network &net,
    const std::vector<kv::Slice *> &slices,
    const std::vector<std::vector<uint64_t>> &keys, uint32_t batch_size,
    const KvRunConfig &run);

/**
 * Figure 13: index-building scans — @p threads_per_slice synchronous
 * server-side threads per slice sequentially reading whole patches.
 */
KvRunResult RunSequentialScan(sim::Simulator &sim,
                              const std::vector<kv::Slice *> &slices,
                              uint32_t threads_per_slice,
                              const KvRunConfig &run);

/**
 * Figure 14: one synchronous client per slice writes values uniformly
 * sized in [@p value_min, @p value_max]; patch flushes and compaction run
 * underneath. Reports client write goodput plus device-level compaction
 * traffic.
 */
KvRunResult RunKvWrites(sim::Simulator &sim, net::Network &net,
                        const std::vector<kv::Slice *> &slices,
                        uint32_t value_min, uint32_t value_max,
                        const KvRunConfig &run);

}  // namespace sdf::workload

#endif  // SDF_WORKLOAD_KV_DRIVER_H
