/**
 * @file
 * CCDB workload drivers for the production-system experiments
 * (Figures 10-14): slice preloading, batched random reads over the
 * network, index-building sequential scans, and the write+compaction mix.
 */
#ifndef SDF_WORKLOAD_KV_DRIVER_H
#define SDF_WORKLOAD_KV_DRIVER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "kv/slice.h"
#include "kv/store.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace sdf::workload {

using util::TimeNs;

/**
 * Preload @p slices with @p bytes_per_slice of values of @p value_size,
 * installed instantly as sorted patches (no simulated time).
 * @return per-slice key lists for the read drivers.
 */
std::vector<std::vector<uint64_t>>
PreloadSlices(const std::vector<kv::Slice *> &slices, uint64_t bytes_per_slice,
              uint32_t value_size);

/** Result of a KV workload run. */
struct KvRunResult
{
    double client_mbps = 0.0;       ///< Payload delivered to clients.
    double device_read_mbps = 0.0;  ///< Compaction/scan reads at the store.
    double device_write_mbps = 0.0; ///< Patch writes (flush + compaction).
    uint64_t requests = 0;
    /** Scan drivers: completed requests per second and the bytes they
     *  scanned, so scan profiles stay comparable across value-size
     *  distributions (bytes/sec) and batch shapes (ops/sec) at once. */
    double ops_per_sec = 0.0;
    uint64_t scanned_bytes = 0;
};

/** Run parameters shared by the KV drivers. */
struct KvRunConfig
{
    TimeNs warmup = util::MsToNs(300);
    TimeNs duration = util::SecToNs(2.0);
    uint64_t seed = 7;
};

/**
 * Figures 10-12: one synchronous client per slice sends batched random
 * read requests of @p batch_size sub-requests over the network; the next
 * request leaves only when the previous response arrived.
 */
KvRunResult RunBatchedRandomReads(
    sim::Simulator &sim, net::Network &net,
    const std::vector<kv::Slice *> &slices,
    const std::vector<std::vector<uint64_t>> &keys, uint32_t batch_size,
    const KvRunConfig &run);

/**
 * Figure 13: index-building scans — @p threads_per_slice synchronous
 * server-side threads per slice sequentially reading whole patches.
 */
KvRunResult RunSequentialScan(sim::Simulator &sim,
                              const std::vector<kv::Slice *> &slices,
                              uint32_t threads_per_slice,
                              const KvRunConfig &run);

/**
 * Figure 14: one synchronous client per slice writes values uniformly
 * sized in [@p value_min, @p value_max]; patch flushes and compaction run
 * underneath. Reports client write goodput plus device-level compaction
 * traffic.
 */
KvRunResult RunKvWrites(sim::Simulator &sim, net::Network &net,
                        const std::vector<kv::Slice *> &slices,
                        uint32_t value_min, uint32_t value_max,
                        const KvRunConfig &run);

/**
 * A put/get frontend the generic drivers can target: a single Store, an
 * R-way ReplicatedKv, or a whole cluster::ClusterRouter — the driver does
 * not care where the keys live. `put` must ack durability; `get` must
 * deliver the stored value size (res.found) or a typed failure (res.ok).
 */
struct KvService
{
    std::function<void(uint64_t key, uint32_t value_size,
                       kv::PutCallback done)>
        put;
    std::function<void(uint64_t key, kv::GetCallback done)> get;
    /**
     * Typed put for admission-aware front doors (cluster router, client):
     * the callback says *why* a write failed (overload/deadline/error).
     * Optional — drivers that need it fall back to wrapping `put`.
     */
    std::function<void(uint64_t key, uint32_t value_size,
                       kv::PutStatusCallback done)>
        put_typed;
    /**
     * Range scan: up to `limit` live keys >= start_key in ascending
     * order (see kv::ScanResult). Optional — drivers treat a missing
     * scan as an error outcome for scan ops.
     */
    std::function<void(uint64_t start_key, uint32_t limit,
                       std::function<void(const kv::ScanResult &)> done)>
        scan;
};

/** KvService over a local Store (no network). */
KvService ServiceFor(kv::Store &store);

/** Parameters for the closed-loop mixed read/write driver. */
struct MixedRunConfig
{
    double read_fraction = 0.9;   ///< Probability an op is a read.
    uint32_t actors = 8;          ///< Concurrent closed-loop clients.
    uint32_t value_bytes = 64 * util::kKiB;
    TimeNs duration = util::SecToNs(0.5);
    uint64_t seed = 7;
    /** Fresh-write keys are allocated upward from here (must not collide
     *  with the preloaded population). */
    uint64_t first_write_key = uint64_t{1} << 32;
};

/** Outcome of a mixed run. */
struct MixedRunResult
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t read_errors = 0;   ///< res.ok == false (all replicas failed).
    uint64_t read_misses = 0;   ///< res.ok but key not found.
    uint64_t write_errors = 0;  ///< Put acked false (no durable copy).
    uint64_t read_bytes = 0;
    double ops_per_sec = 0;
    double read_mbps = 0;   ///< Payload bytes delivered to clients.
    double write_mbps = 0;  ///< Acked payload bytes written.
    double read_mean_ms = 0;
    double read_p99_ms = 0;
    double write_mean_ms = 0;
    double write_p99_ms = 0;
    /** Keys whose Put was acknowledged — the audit set for fault runs. */
    std::vector<uint64_t> acked_writes;
};

/**
 * Closed-loop mixed read/write load against any KvService: @p actors
 * clients each keep exactly one op in flight for cfg.duration. Reads pick
 * uniformly from @p keys plus every key already written and acked by this
 * run; writes allocate fresh keys upward from cfg.first_write_key.
 * Deterministic for a given (service, keys, cfg). Drives the simulator
 * internally and returns once all in-flight ops have drained.
 */
MixedRunResult RunMixedLoad(sim::Simulator &sim, const KvService &svc,
                            const std::vector<uint64_t> &keys,
                            const MixedRunConfig &cfg);

/** Parameters for the open-loop (arrival-process) driver. */
struct OpenRunConfig
{
    /** Mean request arrival rate, ops/sec (Poisson process). */
    double arrival_rate = 50000.0;
    double read_fraction = 0.9;
    uint32_t value_bytes = 4 * util::kKiB;
    TimeNs duration = util::SecToNs(0.5);
    uint64_t seed = 7;
    uint64_t first_write_key = uint64_t{1} << 32;
    /** Arrival-rate multiplier inside [storm_start, storm_end): models a
     *  traffic storm. 1.0 (or an empty window) = steady load. */
    double storm_factor = 1.0;
    TimeNs storm_start = 0;
    TimeNs storm_end = 0;
};

/** Outcome of an open-loop run. */
struct OpenRunResult
{
    uint64_t issued = 0;      ///< Arrivals handed to the service.
    uint64_t completed = 0;   ///< Callbacks that came back (all outcomes).
    uint64_t ok_reads = 0;    ///< Found + delivered.
    uint64_t ok_writes = 0;   ///< Durably acked.
    uint64_t misses = 0;      ///< Clean read misses.
    uint64_t shed_overloaded = 0;  ///< Typed kOverloaded outcomes.
    uint64_t shed_deadline = 0;    ///< Typed kDeadlineExceeded outcomes.
    uint64_t errors = 0;           ///< Untyped failures.
    double offered_ops_per_sec = 0;  ///< issued / duration.
    double goodput_ops_per_sec = 0;  ///< (ok_reads+ok_writes+misses) / duration.
    double p50_ms = 0;   ///< Completed-op latency, all ops.
    double p99_ms = 0;
    double p999_ms = 0;
    double read_p99_ms = 0;  ///< Successful reads only.
    /** Keys whose Put was acked — the consistency-audit set. */
    std::vector<uint64_t> acked_writes;
};

/**
 * Open-loop Poisson load against any KvService: requests arrive on a
 * seeded exponential clock regardless of how many are already in flight —
 * the regime where overload happens. Inside the storm window the arrival
 * rate is multiplied by cfg.storm_factor. Issue is fire-and-forget; the
 * run drains all in-flight ops before returning. Deterministic for a
 * given (service, keys, cfg).
 */
OpenRunResult RunOpenLoad(sim::Simulator &sim, const KvService &svc,
                          const std::vector<uint64_t> &keys,
                          const OpenRunConfig &cfg);

}  // namespace sdf::workload

#endif  // SDF_WORKLOAD_KV_DRIVER_H
