#include "workload/raw_device.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "obs/hub.h"
#include "util/assert.h"

namespace sdf::workload {

namespace {

/** Shared measurement bookkeeping across all drivers. */
struct Meter
{
    TimeNs window_start = 0;
    uint64_t bytes = 0;
    uint64_t ops = 0;
    bool measuring = false;
};

/**
 * Per-actor observability context. A closed-loop actor has exactly one
 * request in flight, so a single reusable IoSpan per actor suffices; when
 * tracing is on each actor also owns a request track ("host"/"req.chNN")
 * showing its requests end to end.
 */
struct ActorObs
{
    obs::Hub *hub = nullptr;
    obs::IoSpan span;
    int32_t track = -1;

    static std::shared_ptr<ActorObs>
    Make(sim::Simulator &sim, const char *kind, uint32_t idx)
    {
        auto a = std::make_shared<ActorObs>();
        a->hub = sim.hub();
        if (a->hub != nullptr && a->hub->trace() != nullptr) {
            char name[24];
            std::snprintf(name, sizeof name, "req.%s%02u", kind, idx);
            a->track = a->hub->trace()->RegisterTrack("host", name);
        }
        return a;
    }

    /** Span pointer to thread through the stack (null when no hub). */
    obs::IoSpan *span_ptr() { return hub != nullptr ? &span : nullptr; }

    /** Close the span and fold it into the per-op aggregates. */
    void
    FinishRequest(sim::Simulator &sim, const char *op, bool measuring)
    {
        if (hub == nullptr) return;
        span.Finish(sim.Now());
        if (measuring) hub->stages().Record(op, span);
        if (track >= 0) {
            hub->trace()->Complete(track, op, span.start_ns(),
                                   span.total_ns());
        }
    }
};

/**
 * Run @p actors for warmup + duration; count only the measurement window.
 * Actor starts are staggered over a few milliseconds so identical
 * closed-loop cycles don't run in lockstep (convoy effects would bias the
 * fixed measurement window).
 */
RawResult
Measure(sim::Simulator &sim, std::vector<std::unique_ptr<host::ClosedLoopActor>> &actors,
        Meter &meter, const RawRunConfig &run)
{
    util::Rng stagger(run.seed ^ 0x57a66e4ULL);
    for (auto &a : actors) {
        sim.Schedule(static_cast<TimeNs>(stagger.NextBelow(
                         static_cast<uint64_t>(util::MsToNs(10)))),
                     [actor = a.get()]() { actor->Start(); });
    }
    sim.RunUntil(sim.Now() + run.warmup);
    meter.measuring = true;
    meter.window_start = sim.Now();
    meter.bytes = 0;
    meter.ops = 0;
    sim.RunUntil(meter.window_start + run.duration);
    meter.measuring = false;
    for (auto &a : actors) a->Stop();

    RawResult result;
    result.mbps = util::BandwidthMBps(meter.bytes, run.duration);
    result.operations = meter.ops;
    return result;
}

}  // namespace

void
PreconditionSdf(core::SdfDevice &device)
{
    for (uint32_t ch = 0; ch < device.channel_count(); ++ch) {
        for (uint32_t u = 0; u < device.units_per_channel(); ++u) {
            if (device.unit_state(ch, u) == core::UnitState::kUnwritten)
                device.DebugForceWritten(ch, u);
        }
    }
}

RawResult
RunSdfRandomReads(sim::Simulator &sim, core::SdfDevice &device,
                  host::IoStack &stack, uint32_t channels_used,
                  uint64_t request_bytes, const RawRunConfig &run)
{
    SDF_CHECK(channels_used >= 1 && channels_used <= device.channel_count());
    SDF_CHECK(request_bytes % device.read_unit_bytes() == 0);
    SDF_CHECK(request_bytes <= device.unit_bytes());

    auto meter = std::make_shared<Meter>();
    auto rng = std::make_shared<util::Rng>(run.seed);
    const uint64_t slots = device.unit_bytes() / request_bytes;

    std::vector<std::unique_ptr<host::ClosedLoopActor>> actors;
    for (uint32_t ch = 0; ch < channels_used; ++ch) {
        auto aobs = ActorObs::Make(sim, "ch", ch);
        actors.push_back(std::make_unique<host::ClosedLoopActor>(
            sim, [&sim, &device, &stack, meter, rng, aobs, ch, request_bytes,
                  slots](sim::Callback done) {
                const auto unit = static_cast<uint32_t>(
                    rng->NextBelow(device.units_per_channel()));
                const uint64_t offset =
                    rng->NextBelow(slots) * request_bytes;
                obs::IoSpan *span = aobs->span_ptr();
                if (span != nullptr) span->Start(sim.Now());
                stack.Issue(
                    [&device, ch, unit, offset, request_bytes,
                     span](sim::Callback d) {
                        // Device callbacks are copyable std::functions;
                        // box the move-only stack completion.
                        auto dp =
                            std::make_shared<sim::Callback>(std::move(d));
                        device.Read(ch, unit, offset, request_bytes,
                                    [dp](bool) { (*dp)(); }, nullptr, span);
                    },
                    [&sim, meter, aobs, request_bytes,
                     done = std::move(done)]() {
                        aobs->FinishRequest(sim, "read", meter->measuring);
                        if (meter->measuring) {
                            meter->bytes += request_bytes;
                            ++meter->ops;
                        }
                        done();
                    },
                    span);
            }));
    }
    return Measure(sim, actors, *meter, run);
}

RawResult
RunSdfSequentialReads(sim::Simulator &sim, core::SdfDevice &device,
                      host::IoStack &stack, uint32_t channels_used,
                      uint64_t request_bytes, const RawRunConfig &run)
{
    SDF_CHECK(channels_used >= 1 && channels_used <= device.channel_count());
    SDF_CHECK(request_bytes % device.read_unit_bytes() == 0);
    SDF_CHECK(request_bytes <= device.unit_bytes());

    auto meter = std::make_shared<Meter>();
    const uint64_t slots = device.unit_bytes() / request_bytes;

    std::vector<std::unique_ptr<host::ClosedLoopActor>> actors;
    for (uint32_t ch = 0; ch < channels_used; ++ch) {
        auto cursor = std::make_shared<uint64_t>(0);
        auto aobs = ActorObs::Make(sim, "ch", ch);
        actors.push_back(std::make_unique<host::ClosedLoopActor>(
            sim, [&sim, &device, &stack, meter, cursor, aobs, ch,
                  request_bytes, slots](sim::Callback done) {
                const uint64_t pos = (*cursor)++;
                const auto unit = static_cast<uint32_t>(
                    (pos / slots) % device.units_per_channel());
                const uint64_t offset = pos % slots * request_bytes;
                obs::IoSpan *span = aobs->span_ptr();
                if (span != nullptr) span->Start(sim.Now());
                stack.Issue(
                    [&device, ch, unit, offset, request_bytes,
                     span](sim::Callback d) {
                        // Device callbacks are copyable std::functions;
                        // box the move-only stack completion.
                        auto dp =
                            std::make_shared<sim::Callback>(std::move(d));
                        device.Read(ch, unit, offset, request_bytes,
                                    [dp](bool) { (*dp)(); }, nullptr, span);
                    },
                    [&sim, meter, aobs, request_bytes,
                     done = std::move(done)]() {
                        aobs->FinishRequest(sim, "read", meter->measuring);
                        if (meter->measuring) {
                            meter->bytes += request_bytes;
                            ++meter->ops;
                        }
                        done();
                    },
                    span);
            }));
    }
    return Measure(sim, actors, *meter, run);
}

RawResult
RunSdfWrites(sim::Simulator &sim, core::SdfDevice &device,
             host::IoStack &stack, uint32_t channels_used,
             const RawRunConfig &run)
{
    SDF_CHECK(channels_used >= 1 && channels_used <= device.channel_count());
    auto meter = std::make_shared<Meter>();
    auto result = std::make_shared<RawResult>();
    const uint64_t unit_bytes = device.unit_bytes();

    std::vector<std::unique_ptr<host::ClosedLoopActor>> actors;
    for (uint32_t ch = 0; ch < channels_used; ++ch) {
        auto cursor = std::make_shared<uint32_t>(0);
        auto aobs = ActorObs::Make(sim, "ch", ch);
        actors.push_back(std::make_unique<host::ClosedLoopActor>(
            sim, [&sim, &device, &stack, meter, result, cursor, aobs, ch,
                  unit_bytes](sim::Callback done) {
                const uint32_t unit = *cursor;
                *cursor = (*cursor + 1) % device.units_per_channel();
                const TimeNs start = sim.Now();
                // One span covers the whole erase+write cycle: the explicit
                // erase is on the write's critical path (Figure 8).
                obs::IoSpan *span = aobs->span_ptr();
                if (span != nullptr) span->Start(start);
                stack.Issue(
                    [&device, ch, unit, span](sim::Callback d) {
                        auto dp =
                            std::make_shared<sim::Callback>(std::move(d));
                        // Explicit erase immediately before the write.
                        device.EraseUnit(
                            ch, unit,
                            [&device, ch, unit, span, dp](bool ok) {
                                if (!ok) {
                                    (*dp)();
                                    return;
                                }
                                device.WriteUnit(ch, unit,
                                                 [dp](bool) { (*dp)(); },
                                                 nullptr, span);
                            },
                            span);
                    },
                    [&sim, meter, result, aobs, unit_bytes, start,
                     done = std::move(done)]() {
                        aobs->FinishRequest(sim, "write", meter->measuring);
                        if (meter->measuring) {
                            meter->bytes += unit_bytes;
                            ++meter->ops;
                            result->latencies.Record(sim.Now() - start);
                        }
                        done();
                    },
                    span);
            }));
    }
    RawResult measured = Measure(sim, actors, *meter, run);
    measured.latencies = std::move(result->latencies);
    return measured;
}

namespace {

RawResult
RunConv(sim::Simulator &sim, ssd::ConventionalSsd &device,
        host::IoStack &stack, uint32_t queue_depth, uint64_t request_bytes,
        Pattern pattern, bool is_write, const RawRunConfig &run)
{
    SDF_CHECK(queue_depth >= 1);
    SDF_CHECK(request_bytes > 0 && request_bytes <= device.user_capacity());

    auto meter = std::make_shared<Meter>();
    auto result = std::make_shared<RawResult>();
    auto rng = std::make_shared<util::Rng>(run.seed);
    auto cursor = std::make_shared<uint64_t>(0);
    const uint64_t slots = device.user_capacity() / request_bytes;
    SDF_CHECK(slots > 0);

    // One submitting thread with an async queue: modeled as `queue_depth`
    // independent closed loops sharing one offset stream.
    std::vector<std::unique_ptr<host::ClosedLoopActor>> actors;
    for (uint32_t q = 0; q < queue_depth; ++q) {
        auto aobs = ActorObs::Make(sim, "q", q);
        actors.push_back(std::make_unique<host::ClosedLoopActor>(
            sim, [&sim, &device, &stack, meter, result, rng, cursor, aobs,
                  slots, request_bytes, pattern,
                  is_write](sim::Callback done) {
                uint64_t slot;
                if (pattern == Pattern::kSequential) {
                    slot = (*cursor)++ % slots;
                } else {
                    slot = rng->NextBelow(slots);
                }
                const uint64_t offset = slot * request_bytes;
                const TimeNs start = sim.Now();
                // The conventional SSD is a black box: its whole interior
                // lands in the `device` stage (host costs still split out).
                obs::IoSpan *span = aobs->span_ptr();
                if (span != nullptr) span->Start(start);
                stack.Issue(
                    [&device, offset, request_bytes, is_write](
                        sim::Callback d) {
                        auto dp =
                            std::make_shared<sim::Callback>(std::move(d));
                        if (is_write) {
                            device.Write(offset, request_bytes,
                                         [dp](bool) { (*dp)(); });
                        } else {
                            device.Read(offset, request_bytes,
                                        [dp](bool) { (*dp)(); });
                        }
                    },
                    [&sim, meter, result, aobs, request_bytes, start,
                     is_write, done = std::move(done)]() {
                        aobs->FinishRequest(sim, is_write ? "write" : "read",
                                            meter->measuring);
                        if (meter->measuring) {
                            meter->bytes += request_bytes;
                            ++meter->ops;
                            result->latencies.Record(sim.Now() - start);
                        }
                        done();
                    },
                    span);
            }));
    }
    RawResult measured = Measure(sim, actors, *meter, run);
    measured.latencies = std::move(result->latencies);
    return measured;
}

}  // namespace

RawResult
RunConvReads(sim::Simulator &sim, ssd::ConventionalSsd &device,
             host::IoStack &stack, uint32_t queue_depth,
             uint64_t request_bytes, Pattern pattern, const RawRunConfig &run)
{
    return RunConv(sim, device, stack, queue_depth, request_bytes, pattern,
                   /*is_write=*/false, run);
}

RawResult
RunConvWrites(sim::Simulator &sim, ssd::ConventionalSsd &device,
              host::IoStack &stack, uint32_t queue_depth,
              uint64_t request_bytes, Pattern pattern, const RawRunConfig &run)
{
    return RunConv(sim, device, stack, queue_depth, request_bytes, pattern,
                   /*is_write=*/true, run);
}

}  // namespace sdf::workload
