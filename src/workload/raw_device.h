/**
 * @file
 * Raw-device benchmark drivers: the microbenchmark workloads of the
 * paper's §3.2 (Tables 1 and 4, Figures 7 and 8) and the
 * over-provisioning sweep of Figure 1.
 *
 * SDF is driven by one synchronous thread per channel (the paper's setup);
 * conventional SSDs by one thread issuing asynchronous requests at a fixed
 * queue depth. All drivers run the workload for a simulated duration after
 * a warmup and report steady-state throughput.
 */
#ifndef SDF_WORKLOAD_RAW_DEVICE_H
#define SDF_WORKLOAD_RAW_DEVICE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "host/io_stack.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "ssd/conventional_ssd.h"
#include "util/latency_recorder.h"
#include "util/rng.h"

namespace sdf::workload {

using util::TimeNs;

/** Outcome of one raw-device run. */
struct RawResult
{
    double mbps = 0.0;            ///< Steady-state throughput (MB/s).
    uint64_t operations = 0;      ///< Requests completed in the window.
    util::LatencyRecorder latencies{true};
};

/** Common run parameters. */
struct RawRunConfig
{
    TimeNs warmup = util::MsToNs(200);
    TimeNs duration = util::SecToNs(2.0);
    uint64_t seed = 42;
};

/**
 * Random reads on SDF: @p channels_used synchronous actors, one per
 * channel, each reading @p request_bytes at a random aligned offset of a
 * random (pre-written) unit. Requires the device to be preconditioned.
 */
RawResult RunSdfRandomReads(sim::Simulator &sim, core::SdfDevice &device,
                            host::IoStack &stack, uint32_t channels_used,
                            uint64_t request_bytes, const RawRunConfig &run);

/**
 * Sequential reads on SDF: per-channel actors walking units in order,
 * @p request_bytes at a time (Figure 7a uses 8 MB whole units).
 */
RawResult RunSdfSequentialReads(sim::Simulator &sim, core::SdfDevice &device,
                                host::IoStack &stack, uint32_t channels_used,
                                uint64_t request_bytes,
                                const RawRunConfig &run);

/**
 * Writes on SDF: per-channel actors erasing and then writing whole units
 * round-robin — the explicit erase is on the write's critical path, as in
 * the paper's latency measurements (Figure 8, right).
 */
RawResult RunSdfWrites(sim::Simulator &sim, core::SdfDevice &device,
                       host::IoStack &stack, uint32_t channels_used,
                       const RawRunConfig &run);

/** Access pattern for the conventional-SSD driver. */
enum class Pattern : uint8_t { kSequential, kRandom };

/**
 * Reads on a conventional SSD: one thread, asynchronous requests at queue
 * depth @p queue_depth, @p request_bytes each.
 */
RawResult RunConvReads(sim::Simulator &sim, ssd::ConventionalSsd &device,
                       host::IoStack &stack, uint32_t queue_depth,
                       uint64_t request_bytes, Pattern pattern,
                       const RawRunConfig &run);

/** Writes on a conventional SSD (same driver shape as RunConvReads). */
RawResult RunConvWrites(sim::Simulator &sim, ssd::ConventionalSsd &device,
                        host::IoStack &stack, uint32_t queue_depth,
                        uint64_t request_bytes, Pattern pattern,
                        const RawRunConfig &run);

/** Mark every unit of an SDF device written (zero simulated time). */
void PreconditionSdf(core::SdfDevice &device);

}  // namespace sdf::workload

#endif  // SDF_WORKLOAD_RAW_DEVICE_H
