#include "workload/trace.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/assert.h"

namespace sdf::workload {

std::vector<TraceOp>
GenerateTrace(const std::vector<TracePhase> &phases, uint32_t slice_count,
              uint64_t keys_per_slice, uint64_t seed)
{
    SDF_CHECK(slice_count > 0 && keys_per_slice > 0);
    util::Rng rng(seed);
    std::vector<TraceOp> trace;
    util::TimeNs clock = 0;
    // Highest key written so far per slice (puts extend the space).
    std::vector<uint64_t> next_new_key(slice_count, keys_per_slice);

    for (const TracePhase &phase : phases) {
        SDF_CHECK(phase.put_fraction + phase.delete_fraction <= 1.0);
        const util::TimeNs end = clock + phase.duration;
        while (clock < end) {
            TraceOp op;
            op.issue_at = clock;
            op.slice = static_cast<uint32_t>(rng.NextBelow(slice_count));

            const double mix = rng.NextDouble();
            const uint64_t written = next_new_key[op.slice];
            // Zipf-ish: hot ops hit the most recent 10 % of keys.
            uint64_t key_range = written;
            uint64_t key_base = 0;
            if (rng.NextDouble() < phase.hot_fraction) {
                key_range = std::max<uint64_t>(written / 10, 1);
                key_base = written - key_range;
            }
            if (mix < phase.put_fraction) {
                op.kind = TraceOp::Kind::kPut;
                op.key = next_new_key[op.slice]++;
                op.value_size = static_cast<uint32_t>(rng.NextInRange(
                    phase.value_min, phase.value_max));
            } else if (mix < phase.put_fraction + phase.delete_fraction) {
                op.kind = TraceOp::Kind::kDelete;
                op.key = key_base + rng.NextBelow(key_range);
            } else {
                op.kind = TraceOp::Kind::kGet;
                op.key = key_base + rng.NextBelow(key_range);
            }
            // Tag the key with the slice (PreloadSlices numbering).
            op.key += uint64_t{op.slice} << 40;
            trace.push_back(op);

            clock += static_cast<util::TimeNs>(
                rng.NextExponential(1e9 / phase.ops_per_sec));
        }
        clock = end;
    }
    return trace;
}

std::vector<PhaseResult>
ReplayTrace(sim::Simulator &sim, const std::vector<kv::Slice *> &slices,
            const std::vector<TracePhase> &phases,
            const std::vector<TraceOp> &trace)
{
    auto results = std::make_shared<std::vector<PhaseResult>>();
    results->reserve(phases.size());
    std::vector<util::TimeNs> phase_end;
    util::TimeNs clock = 0;
    for (const TracePhase &p : phases) {
        PhaseResult r;
        r.name = p.name;
        results->push_back(std::move(r));
        clock += p.duration;
        phase_end.push_back(clock);
    }
    auto phase_of = [phase_end](util::TimeNs t) {
        for (size_t i = 0; i < phase_end.size(); ++i) {
            if (t < phase_end[i]) return i;
        }
        return phase_end.size() - 1;
    };

    const util::TimeNs base = sim.Now();
    for (const TraceOp &op : trace) {
        sim.ScheduleAt(base + op.issue_at, [&sim, &slices, op, results,
                                            phase_of]() {
            const size_t ph = phase_of(op.issue_at);
            PhaseResult &r = (*results)[ph];
            kv::Slice *slice = slices[op.slice];
            const util::TimeNs start = sim.Now();
            switch (op.kind) {
              case TraceOp::Kind::kGet:
                ++r.gets;
                slice->Get(op.key, [&sim, &r, start](const kv::GetResult &g) {
                    if (!g.found) {
                        ++r.get_misses;
                    } else {
                        r.read_mbps += g.value_size;  // Bytes for now.
                    }
                    r.get_latency.Record(sim.Now() - start);
                });
                break;
              case TraceOp::Kind::kPut:
                ++r.puts;
                slice->Put(op.key, op.value_size,
                           [&sim, &r, start, size = op.value_size](bool ok) {
                               if (ok) r.write_mbps += size;
                               r.put_latency.Record(sim.Now() - start);
                           });
                break;
              case TraceOp::Kind::kDelete:
                ++r.deletes;
                slice->Delete(op.key, nullptr);
                break;
            }
        });
    }
    sim.Run();

    // Convert accumulated bytes into MB/s per phase.
    for (size_t i = 0; i < results->size(); ++i) {
        const double secs = util::NsToSec(phases[i].duration);
        (*results)[i].read_mbps = (*results)[i].read_mbps / 1e6 / secs;
        (*results)[i].write_mbps = (*results)[i].write_mbps / 1e6 / secs;
    }
    return std::move(*results);
}

std::vector<TracePhase>
ProductionDayPhases(double scale)
{
    // A compressed "day": overnight crawl ingestion, morning index scans
    // interleave as reads, daytime query serving, an evening hot-spot.
    std::vector<TracePhase> phases(4);
    phases[0].name = "overnight-crawl";
    phases[0].duration = util::SecToNs(4);
    phases[0].ops_per_sec = 400 * scale;
    phases[0].put_fraction = 0.85;
    phases[0].delete_fraction = 0.05;

    phases[1].name = "morning-mixed";
    phases[1].duration = util::SecToNs(4);
    phases[1].ops_per_sec = 900 * scale;
    phases[1].put_fraction = 0.3;
    phases[1].delete_fraction = 0.02;

    phases[2].name = "daytime-serving";
    phases[2].duration = util::SecToNs(4);
    phases[2].ops_per_sec = 1800 * scale;
    phases[2].put_fraction = 0.05;

    phases[3].name = "evening-hotspot";
    phases[3].duration = util::SecToNs(4);
    phases[3].ops_per_sec = 1500 * scale;
    phases[3].put_fraction = 0.1;
    phases[3].hot_fraction = 0.8;
    return phases;
}

}  // namespace sdf::workload
