/**
 * @file
 * Synthetic production traces.
 *
 * The paper's SDFs serve Baidu's web-page and image repositories, whose
 * traffic is a diurnal mix of batched reads (query serving, index
 * building) and write bursts (crawl ingestion). This module generates
 * deterministic multi-phase traces of KV operations and replays them
 * against a slice set, reporting per-phase throughput and latency — the
 * kind of day-in-production run the paper's deployment numbers summarize.
 */
#ifndef SDF_WORKLOAD_TRACE_H
#define SDF_WORKLOAD_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "kv/slice.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/latency_recorder.h"
#include "util/rng.h"

namespace sdf::workload {

/** One operation in a trace. */
struct TraceOp
{
    enum class Kind : uint8_t { kGet, kPut, kDelete };
    Kind kind = Kind::kGet;
    uint32_t slice = 0;
    uint64_t key = 0;
    uint32_t value_size = 0;   ///< For puts.
    util::TimeNs issue_at = 0; ///< Absolute issue time (open loop).
};

/** One phase of a synthetic day: a traffic mix at a target rate. */
struct TracePhase
{
    std::string name;
    util::TimeNs duration = util::SecToNs(1);
    double ops_per_sec = 1000;
    /** Mix fractions; must sum to <= 1, remainder are gets. */
    double put_fraction = 0.0;
    double delete_fraction = 0.0;
    /** Value size range for puts. */
    uint32_t value_min = 10 * 1024;
    uint32_t value_max = 200 * 1024;
    /** Keys drawn Zipf-ish: this fraction of ops target 10 % of keys. */
    double hot_fraction = 0.0;
};

/**
 * Generate a deterministic trace over @p slice_count slices and
 * @p keys_per_slice preloaded keys. Put keys extend beyond the preloaded
 * range; get/delete keys stay within known-written keys.
 */
std::vector<TraceOp> GenerateTrace(const std::vector<TracePhase> &phases,
                                   uint32_t slice_count,
                                   uint64_t keys_per_slice, uint64_t seed);

/** Per-phase replay outcome. */
struct PhaseResult
{
    std::string name;
    uint64_t gets = 0;
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t get_misses = 0;
    double read_mbps = 0.0;
    double write_mbps = 0.0;
    util::LatencyRecorder get_latency{false};
    util::LatencyRecorder put_latency{false};
};

/**
 * Replay a trace open-loop against @p slices (ops fire at their issue
 * times regardless of completions, as production traffic does).
 * Preloaded keys are (slice s, key k < keys_per_slice) via
 * PreloadSlices-style numbering: key = (s << 40) + k.
 */
std::vector<PhaseResult>
ReplayTrace(sim::Simulator &sim, const std::vector<kv::Slice *> &slices,
            const std::vector<TracePhase> &phases,
            const std::vector<TraceOp> &trace);

/** The default "production day" phase list used by the example. */
std::vector<TracePhase> ProductionDayPhases(double scale = 1.0);

}  // namespace sdf::workload

#endif  // SDF_WORKLOAD_TRACE_H
