#include "workload/ycsb.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.h"
#include "util/latency_recorder.h"

namespace sdf::workload {

// ---------------------------------------------------------------------------
// Zipfian sampler (Gray et al. rejection-inversion)
// ---------------------------------------------------------------------------

namespace {

/** log(1+x)/x, stable near 0. */
double
Helper1(double x)
{
    if (std::abs(x) > 1e-8) return std::log1p(x) / x;
    return 1.0 - x / 2.0 + x * x / 3.0 - x * x * x / 4.0;
}

/** (e^x - 1)/x, stable near 0. */
double
Helper2(double x)
{
    if (std::abs(x) > 1e-8) return std::expm1(x) / x;
    return 1.0 + x / 2.0 + x * x / 6.0 + x * x * x / 24.0;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    SDF_CHECK(n >= 1);
    SDF_CHECK(theta > 0.0);
    h_integral_x1_ = HIntegral(1.5) - 1.0;
    h_integral_n_ = HIntegral(static_cast<double>(n) + 0.5);
    s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

/** Integral of the hat function h(x) = x^-theta. */
double
ZipfianGenerator::HIntegral(double x) const
{
    const double log_x = std::log(x);
    return Helper2((1.0 - theta_) * log_x) * log_x;
}

double
ZipfianGenerator::H(double x) const
{
    return std::exp(-theta_ * std::log(x));
}

double
ZipfianGenerator::HIntegralInverse(double x) const
{
    double t = x * (1.0 - theta_);
    // Limit to the range where the inverse is defined (t -> -1 as the
    // integral approaches its theta > 1 asymptote).
    if (t < -1.0) t = -1.0;
    return std::exp(Helper1(t) * x);
}

uint64_t
ZipfianGenerator::Next(util::Rng &rng) const
{
    if (n_ == 1) return 1;
    while (true) {
        const double u =
            h_integral_n_ +
            rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
        const double x = HIntegralInverse(u);
        uint64_t k = static_cast<uint64_t>(
            std::max(1.0, std::min(static_cast<double>(n_), x + 0.5)));
        // Accept quickly inside the shifted hat; otherwise take the exact
        // rejection test against the pmf's integral.
        if (static_cast<double>(k) - x <= s_ ||
            u >= HIntegral(static_cast<double>(k) + 0.5) -
                     H(static_cast<double>(k))) {
            return k;
        }
    }
}

double
ZipfianGenerator::Pmf(uint64_t k) const
{
    SDF_CHECK(k >= 1 && k <= n_);
    if (zeta_ == 0.0) {
        for (uint64_t i = 1; i <= n_; ++i)
            zeta_ += std::pow(static_cast<double>(i), -theta_);
    }
    return std::pow(static_cast<double>(k), -theta_) / zeta_;
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

YcsbConfig
YcsbProfile(const std::string &name, YcsbConfig base)
{
    base.phases.clear();
    YcsbPhase p;
    if (name == "a") {
        p.mix = OpMix{0.5, 0.5, 0.0, 0.0};
        base.phases.push_back(p);
    } else if (name == "b") {
        p.mix = OpMix{0.95, 0.05, 0.0, 0.0};
        base.phases.push_back(p);
    } else if (name == "c") {
        p.mix = OpMix{1.0, 0.0, 0.0, 0.0};
        base.phases.push_back(p);
    } else if (name == "e") {
        p.mix = OpMix{0.0, 0.0, 0.05, 0.95};
        base.phases.push_back(p);
    } else if (name == "storm") {
        // Flash crowd: steady B-mix traffic, then 3x arrivals focused on
        // a 5%-of-keyspace hot range, then recovery at the base rate.
        // SLO violations should localize in (and just after) the spike.
        YcsbPhase steady;
        steady.name = "steady";
        steady.duration_fraction = 0.4;
        steady.mix = OpMix{0.95, 0.05, 0.0, 0.0};
        YcsbPhase spike;
        spike.name = "spike";
        spike.duration_fraction = 0.2;
        spike.rate_multiplier = 3.0;
        spike.mix = OpMix{0.95, 0.05, 0.0, 0.0};
        spike.chooser = KeyChooser::kHotRange;
        spike.hot = HotRange{0.05, 0.25, 0.9};
        YcsbPhase recovery;
        recovery.name = "recovery";
        recovery.duration_fraction = 0.4;
        recovery.mix = OpMix{0.95, 0.05, 0.0, 0.0};
        base.phases = {steady, spike, recovery};
    } else if (name == "diurnal") {
        // Rate ramp through the day plus the read-mostly -> write-heavy
        // shift in the evening window (batch ingest after peak reads).
        YcsbPhase night;
        night.name = "night";
        night.duration_fraction = 0.25;
        night.rate_multiplier = 0.5;
        night.mix = OpMix{0.95, 0.05, 0.0, 0.0};
        YcsbPhase morning;
        morning.name = "morning";
        morning.duration_fraction = 0.25;
        morning.rate_multiplier = 1.0;
        morning.mix = OpMix{0.9, 0.1, 0.0, 0.0};
        YcsbPhase noon;
        noon.name = "noon";
        noon.duration_fraction = 0.25;
        noon.rate_multiplier = 2.0;
        noon.mix = OpMix{0.9, 0.1, 0.0, 0.0};
        YcsbPhase evening;
        evening.name = "evening";
        evening.duration_fraction = 0.25;
        evening.rate_multiplier = 1.0;
        evening.mix = OpMix{0.3, 0.6, 0.1, 0.0};
        base.phases = {night, morning, noon, evening};
    } else {
        SDF_CHECK_MSG(false, "unknown ycsb profile");
    }
    return base;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

namespace {

/** Mutable per-phase accumulators (folded into YcsbPhaseResult). */
struct PhaseAcc
{
    YcsbPhaseResult out;
    util::LatencyRecorder lat;
};

}  // namespace

YcsbResult
RunYcsb(sim::Simulator &sim, const KvService &svc,
        const std::vector<uint64_t> &keys, const YcsbConfig &cfg)
{
    SDF_CHECK(svc.get != nullptr);
    SDF_CHECK(svc.put != nullptr || svc.put_typed != nullptr);
    SDF_CHECK(cfg.arrival_rate > 0);
    SDF_CHECK(!keys.empty());

    auto put_typed = svc.put_typed;
    if (!put_typed) {
        put_typed = [put = svc.put](uint64_t key, uint32_t value_size,
                                    kv::PutStatusCallback done) {
            put(key, value_size, [done = std::move(done)](bool ok) {
                done(ok ? kv::OpStatus::kOk : kv::OpStatus::kError);
            });
        };
    }

    // ---- phase schedule -------------------------------------------------
    std::vector<YcsbPhase> phases = cfg.phases;
    if (phases.empty()) phases.push_back(YcsbPhase{});
    double frac_sum = 0.0;
    for (const YcsbPhase &p : phases) {
        SDF_CHECK(p.duration_fraction > 0.0);
        frac_sum += p.duration_fraction;
    }
    const TimeNs t_start = sim.Now();
    const TimeNs t_end = t_start + cfg.duration;
    // starts[i] .. starts[i+1] is phase i's window; attribution is by
    // issue time, so the boundaries are exact on the simulated clock.
    std::vector<TimeNs> starts(phases.size() + 1, t_start);
    double acc = 0.0;
    for (size_t i = 0; i < phases.size(); ++i) {
        starts[i] = t_start + static_cast<TimeNs>(
                                  static_cast<double>(cfg.duration) *
                                  (acc / frac_sum));
        acc += phases[i].duration_fraction;
    }
    starts.back() = t_end;

    auto phase_of = [&](TimeNs now) -> size_t {
        size_t i = phases.size() - 1;
        while (i > 0 && now < starts[i]) --i;
        return i;
    };

    if (cfg.on_phase_start) {
        for (size_t i = 0; i < phases.size(); ++i) {
            sim.Schedule(starts[i] - sim.Now(),
                         [&cfg, &phases, &starts, i]() {
                             cfg.on_phase_start(i, phases[i], starts[i],
                                                starts[i + 1] - starts[i]);
                         });
        }
    }

    // ---- samplers -------------------------------------------------------
    util::Rng rng(cfg.seed ^ 0x9c5b0000ULL);
    const uint64_t n0 = keys.size();
    ZipfianGenerator zipf(n0, cfg.theta);
    // Latest: Zipf over recency against the *current* population size.
    // The Gray sampler's setup is O(1), so it is rebuilt whenever an
    // insert grows the population.
    auto latest_zipf = std::make_unique<ZipfianGenerator>(n0, cfg.theta);
    uint32_t field_levels = 1;
    while ((uint64_t{cfg.value_bytes} << field_levels) <= cfg.value_max &&
           field_levels < 16) {
        ++field_levels;
    }
    ZipfianGenerator field_zipf(field_levels, cfg.field_theta);

    std::vector<uint64_t> population = keys;  // Grows as inserts issue.
    uint64_t next_insert_key = cfg.first_insert_key;

    auto choose_index = [&](const YcsbPhase &p) -> size_t {
        const size_t n = population.size();
        switch (p.chooser) {
            case KeyChooser::kUniform: return rng.NextBelow(n);
            case KeyChooser::kZipfian: {
                // Ranks are drawn over the initial population (the
                // preloaded working set); scrambling spreads the hot
                // ranks across the key space deterministically.
                const uint64_t r = zipf.Next(rng);
                if (!cfg.scramble) return static_cast<size_t>(r - 1);
                uint64_t s = r;
                return static_cast<size_t>(util::SplitMix64(s) % n0);
            }
            case KeyChooser::kLatest: {
                const uint64_t r = latest_zipf->Next(rng);
                return n - static_cast<size_t>(r);
            }
            case KeyChooser::kHotRange: {
                const auto hot_len = static_cast<size_t>(std::max<double>(
                    1.0, p.hot.key_fraction * static_cast<double>(n)));
                const auto hot_lo = std::min<size_t>(
                    static_cast<size_t>(p.hot.start_fraction *
                                        static_cast<double>(n)),
                    n - 1);
                if (rng.NextDouble() < p.hot.op_fraction) {
                    return std::min<size_t>(
                        hot_lo + rng.NextBelow(hot_len), n - 1);
                }
                return rng.NextBelow(n);
            }
        }
        return 0;
    };

    auto value_size = [&]() -> uint32_t {
        switch (cfg.value_dist) {
            case ValueDist::kFixed: return cfg.value_bytes;
            case ValueDist::kUniform:
                return static_cast<uint32_t>(rng.NextInRange(
                    cfg.value_min, cfg.value_max));
            case ValueDist::kFieldZipf: {
                const uint64_t rank = field_zipf.Next(rng);
                return cfg.value_bytes << (rank - 1);
            }
        }
        return cfg.value_bytes;
    };

    // ---- accounting -----------------------------------------------------
    YcsbResult result;
    util::LatencyRecorder total_lat;
    std::vector<PhaseAcc> accs(phases.size());
    for (size_t i = 0; i < phases.size(); ++i) {
        accs[i].out.name = phases[i].name;
        accs[i].out.start = starts[i];
        accs[i].out.end = starts[i + 1];
    }

    auto fail_status = [&](PhaseAcc &a, kv::OpStatus s) {
        switch (s) {
            case kv::OpStatus::kOverloaded: ++a.out.shed_overloaded; break;
            case kv::OpStatus::kDeadlineExceeded:
                ++a.out.shed_deadline;
                break;
            default: ++a.out.errors; break;
        }
    };

    // Completion bookkeeping shared by every op type: latency into the
    // issue phase's recorder, SLO check (failures always violate; slow
    // successes violate past cfg.slo).
    auto complete = [&](size_t phase, TimeNs t0, bool failed) {
        PhaseAcc &a = accs[phase];
        ++a.out.completed;
        const TimeNs lat = sim.Now() - t0;
        a.lat.Record(lat);
        total_lat.Record(lat);
        if (failed || lat > cfg.slo) ++a.out.slo_violations;
    };

    auto issue_one = [&]() {
        const TimeNs now = sim.Now();
        const size_t pi = phase_of(now);
        const YcsbPhase &phase = phases[pi];
        PhaseAcc &a = accs[pi];
        ++a.out.issued;

        const OpMix &m = phase.mix;
        const double mix_sum = m.read + m.update + m.insert + m.scan;
        SDF_CHECK(mix_sum > 0.0);
        double u = rng.NextDouble() * mix_sum;
        const TimeNs t0 = now;

        if (u < m.read) {
            const uint64_t key = population[choose_index(phase)];
            svc.get(key, [&, pi, t0](const kv::GetResult &res) {
                PhaseAcc &pa = accs[pi];
                if (!res.ok) {
                    complete(pi, t0, true);
                    fail_status(pa, res.status == kv::OpStatus::kOk
                                        ? kv::OpStatus::kError
                                        : res.status);
                } else if (!res.found) {
                    complete(pi, t0, false);
                    ++pa.out.misses;
                } else {
                    complete(pi, t0, false);
                    ++pa.out.ok_reads;
                }
            });
            return;
        }
        u -= m.read;
        if (u < m.update) {
            const uint64_t key = population[choose_index(phase)];
            put_typed(key, value_size(), [&, pi, t0,
                                          key](kv::OpStatus s) {
                if (s == kv::OpStatus::kOk) {
                    complete(pi, t0, false);
                    ++accs[pi].out.ok_updates;
                    result.acked_writes.push_back(key);
                } else {
                    complete(pi, t0, true);
                    fail_status(accs[pi], s);
                }
            });
            return;
        }
        u -= m.update;
        if (u < m.insert) {
            const uint64_t key = next_insert_key++;
            // Visible to the latest chooser immediately (issue order is
            // the recency order YCSB's latest distribution follows).
            population.push_back(key);
            latest_zipf = std::make_unique<ZipfianGenerator>(
                population.size(), cfg.theta);
            put_typed(key, value_size(), [&, pi, t0,
                                          key](kv::OpStatus s) {
                if (s == kv::OpStatus::kOk) {
                    complete(pi, t0, false);
                    ++accs[pi].out.ok_inserts;
                    result.acked_writes.push_back(key);
                } else {
                    complete(pi, t0, true);
                    fail_status(accs[pi], s);
                }
            });
            return;
        }
        // Scan: start key from the chooser, length uniform in
        // [1, scan_limit_max]. A service without a scan path fails the
        // op typed (kError) instead of crashing the run.
        const uint32_t limit = 1 + static_cast<uint32_t>(rng.NextBelow(
                                       cfg.scan_limit_max));
        if (!svc.scan) {
            sim.Post([&, pi, t0]() {
                complete(pi, t0, true);
                ++accs[pi].out.errors;
            });
            return;
        }
        const uint64_t start_key = population[choose_index(phase)];
        svc.scan(start_key, limit,
                 [&, pi, t0](const kv::ScanResult &r) {
                     PhaseAcc &pa = accs[pi];
                     if (r.ok) {
                         complete(pi, t0, false);
                         ++pa.out.ok_scans;
                         pa.out.scanned_keys += r.entries.size();
                         pa.out.scanned_bytes += r.scanned_bytes;
                     } else {
                         complete(pi, t0, true);
                         fail_status(pa, r.status);
                     }
                 });
    };

    // The arrival process: one seeded exponential clock, fire-and-forget
    // issue, with the *rate* scaled by the current phase's multiplier so
    // a 3x spike really offers 3x the load (same shape as RunOpenLoad's
    // storm window).
    std::function<void()> arrive = [&]() {
        if (sim.Now() >= t_end) return;
        issue_one();
        const double rate =
            cfg.arrival_rate * phases[phase_of(sim.Now())].rate_multiplier;
        const double u = rng.NextDouble();
        const double gap_sec = -std::log(1.0 - u) / rate;
        TimeNs gap = static_cast<TimeNs>(gap_sec * 1e9);
        if (gap == 0) gap = 1;  // Never two arrivals at the same tick.
        sim.Schedule(gap, arrive);
    };
    sim.Post([&arrive]() { arrive(); });
    sim.RunUntil(t_end);
    sim.Run();  // Drain in-flight ops so phase counts sum to totals.

    // ---- fold -----------------------------------------------------------
    for (size_t i = 0; i < phases.size(); ++i) {
        PhaseAcc &a = accs[i];
        if (a.lat.count() > 0) {
            a.out.p50_ms = a.lat.PercentileMs(50);
            a.out.p99_ms = a.lat.PercentileMs(99);
            a.out.p999_ms = a.lat.PercentileMs(99.9);
        }
        result.issued += a.out.issued;
        result.completed += a.out.completed;
        result.ok_reads += a.out.ok_reads;
        result.ok_updates += a.out.ok_updates;
        result.ok_inserts += a.out.ok_inserts;
        result.ok_scans += a.out.ok_scans;
        result.scanned_keys += a.out.scanned_keys;
        result.scanned_bytes += a.out.scanned_bytes;
        result.misses += a.out.misses;
        result.shed_overloaded += a.out.shed_overloaded;
        result.shed_deadline += a.out.shed_deadline;
        result.errors += a.out.errors;
        result.slo_violations += a.out.slo_violations;
        result.phases.push_back(a.out);
    }
    const double secs = util::NsToSec(cfg.duration);
    if (secs > 0) {
        result.offered_ops_per_sec =
            static_cast<double>(result.issued) / secs;
        result.goodput_ops_per_sec =
            static_cast<double>(result.ok_reads + result.ok_updates +
                                result.ok_inserts + result.ok_scans +
                                result.misses) /
            secs;
    }
    if (total_lat.count() > 0) {
        result.p50_ms = total_lat.PercentileMs(50);
        result.p99_ms = total_lat.PercentileMs(99);
        result.p999_ms = total_lat.PercentileMs(99.9);
    }
    return result;
}

}  // namespace sdf::workload
