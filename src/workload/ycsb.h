/**
 * @file
 * YCSB-style workload engine: skewed key choice, mixed op types
 * including range scans, and dynamic phase schedules over the open-loop
 * Poisson arrival process.
 *
 * The paper's premise is web-scale traffic — hot keys, scans, diurnal
 * swings and flash crowds — while the older drivers here generate only
 * uniform closed-loop mixes. This engine reproduces the YCSB core
 * distributions (Cooper et al.) on the simulated clock:
 *
 *  - key choosers: uniform, Zipfian via Gray et al.'s rejection-
 *    inversion (O(1) per sample after an O(1) setup), latest (Zipfian
 *    over recency), and hot-range (a fraction of ops concentrated on a
 *    contiguous slice of the key population — the flash-crowd shape);
 *  - value-size distributions: fixed, uniform, and a field-like Zipf
 *    ladder (most values small, sizes doubling with Zipf-decaying
 *    probability);
 *  - op mixes over read / update / insert / scan, where scans go
 *    through KvService::scan (kv::Store locally, the single-owner
 *    fan-out cluster path behind client::KvClient);
 *  - a phase schedule: consecutive time windows, each with its own
 *    arrival-rate multiplier, op mix and key chooser, layered on the
 *    same seeded Poisson arrival clock RunOpenLoad uses. Ops are
 *    attributed to the phase that *issued* them, so per-phase counts
 *    sum exactly to the run totals whenever every arrival drains.
 *
 * Everything is driven by one seeded util::Rng on the simulated clock,
 * so a (service, keys, config) triple replays byte-identically — the
 * determinism contract every export downstream relies on.
 */
#ifndef SDF_WORKLOAD_YCSB_H
#define SDF_WORKLOAD_YCSB_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/kv_driver.h"

namespace sdf::workload {

/**
 * Zipfian sampler over ranks [1, n] with exponent @p theta > 0:
 * P(k) ∝ k^-theta. Gray et al.'s rejection-inversion — constant-time
 * setup (no harmonic-sum precomputation) and O(1) expected work per
 * sample at any theta, unlike the classic inversion table (O(n) setup)
 * or naive rejection (unbounded at high skew).
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(uint64_t n, double theta);

    /** Next rank in [1, n]; consumes one or more rng doubles. */
    uint64_t Next(util::Rng &rng) const;

    /** Analytic pmf of rank @p k (for goodness-of-fit tests); the O(n)
     *  normalization is computed once on first use. */
    double Pmf(uint64_t k) const;

    uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    double HIntegral(double x) const;
    double H(double x) const;
    double HIntegralInverse(double x) const;

    uint64_t n_;
    double theta_;
    double h_integral_x1_;
    double h_integral_n_;
    double s_;
    mutable double zeta_ = 0.0;  ///< Generalized harmonic sum, lazy.
};

/** How a phase picks keys from the population. */
enum class KeyChooser : uint8_t
{
    kUniform,   ///< Every key equally likely.
    kZipfian,   ///< Zipf over the initial population (scrambled spread).
    kLatest,    ///< Zipf over recency: newest keys hottest.
    kHotRange,  ///< Most ops inside one contiguous population slice.
};

/** How value sizes are drawn for updates/inserts. */
enum class ValueDist : uint8_t
{
    kFixed,     ///< Always value_bytes.
    kUniform,   ///< Uniform in [value_min, value_max].
    kFieldZipf, ///< value_min << (rank-1), rank Zipf-distributed.
};

/** Hot-range parameters (used when the chooser is kHotRange). */
struct HotRange
{
    double key_fraction = 0.05;   ///< Slice width, as population fraction.
    double start_fraction = 0.0;  ///< Slice start, as population fraction.
    double op_fraction = 0.9;     ///< Ops that hit the slice.
};

/** Op-type weights; normalized by their sum. */
struct OpMix
{
    double read = 1.0;
    double update = 0.0;
    double insert = 0.0;
    double scan = 0.0;
};

/** One window of the phase schedule. */
struct YcsbPhase
{
    std::string name = "steady";
    /** Share of the run's duration (normalized across phases). */
    double duration_fraction = 1.0;
    /** Arrival-rate multiplier during this phase. */
    double rate_multiplier = 1.0;
    OpMix mix;
    KeyChooser chooser = KeyChooser::kZipfian;
    HotRange hot;
};

/** Engine parameters. */
struct YcsbConfig
{
    /** Base mean arrival rate, ops/sec (Poisson; phases scale it). */
    double arrival_rate = 50000.0;
    util::TimeNs duration = util::SecToNs(0.5);
    uint64_t seed = 7;
    /** Zipfian exponent for the kZipfian / kLatest choosers. */
    double theta = 0.99;
    /** Spread Zipf ranks over the key space (SplitMix64), so the hot
     *  set is scattered like hashed production keys rather than a
     *  prefix. Tests turn this off to pin raw rank sequences. */
    bool scramble = true;
    ValueDist value_dist = ValueDist::kFixed;
    uint32_t value_bytes = 4 * util::kKiB;   ///< kFixed / kFieldZipf base.
    uint32_t value_min = 512;                ///< kUniform low bound.
    uint32_t value_max = 16 * util::kKiB;    ///< kUniform / ladder cap.
    /** Zipf exponent of the field-size ladder (kFieldZipf). */
    double field_theta = 0.99;
    /** Scan lengths are uniform in [1, scan_limit_max]. */
    uint32_t scan_limit_max = 50;
    /** Completed ops slower than this — or failed — violate the SLO. */
    util::TimeNs slo = util::MsToNs(5);
    /** Inserts allocate fresh keys upward from here (must not collide
     *  with the preloaded population). */
    uint64_t first_insert_key = uint64_t{1} << 32;
    /** The schedule; empty = one steady phase with the defaults. */
    std::vector<YcsbPhase> phases;
    /**
     * Called at each phase boundary on the simulated clock, before the
     * first arrival of the phase: (index, phase, absolute start,
     * duration). sdfsim uses it to open one labelled SeriesRecorder
     * segment per phase.
     */
    std::function<void(size_t, const YcsbPhase &, util::TimeNs,
                       util::TimeNs)>
        on_phase_start;
};

/** Per-phase accounting: ops are attributed to their issue phase. */
struct YcsbPhaseResult
{
    std::string name;
    util::TimeNs start = 0;  ///< Absolute phase window on the sim clock.
    util::TimeNs end = 0;
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t ok_reads = 0;
    uint64_t ok_updates = 0;
    uint64_t ok_inserts = 0;
    uint64_t ok_scans = 0;
    uint64_t scanned_keys = 0;
    uint64_t scanned_bytes = 0;
    uint64_t misses = 0;
    uint64_t shed_overloaded = 0;
    uint64_t shed_deadline = 0;
    uint64_t errors = 0;
    uint64_t slo_violations = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double p999_ms = 0;
};

/** Whole-run outcome: totals plus the per-phase breakdown. */
struct YcsbResult
{
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t ok_reads = 0;
    uint64_t ok_updates = 0;
    uint64_t ok_inserts = 0;
    uint64_t ok_scans = 0;
    uint64_t scanned_keys = 0;
    uint64_t scanned_bytes = 0;
    uint64_t misses = 0;
    uint64_t shed_overloaded = 0;
    uint64_t shed_deadline = 0;
    uint64_t errors = 0;
    uint64_t slo_violations = 0;
    double offered_ops_per_sec = 0;
    double goodput_ops_per_sec = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double p999_ms = 0;
    /** Keys whose insert/update acked — the consistency-audit set. */
    std::vector<uint64_t> acked_writes;
    std::vector<YcsbPhaseResult> phases;
};

/**
 * Build the named profile over @p base (rate/duration/seed/value knobs
 * are taken from base; mix, chooser and phases are set by the profile):
 * a (50/50 read/update, Zipfian), b (95/5), c (read-only),
 * e (95% scans / 5% inserts), storm (B-mix steady -> flash-crowd spike
 * on a hot range at 3x arrivals -> recovery), diurnal (night/morning/
 * noon/evening rate ramp with a read-mostly -> write-heavy shift in the
 * evening phase). Throws nothing; SDF_CHECKs on unknown names.
 */
YcsbConfig YcsbProfile(const std::string &name, YcsbConfig base);

/**
 * Open-loop YCSB run against any KvService. Arrivals follow a seeded
 * Poisson process whose rate is cfg.arrival_rate times the current
 * phase's multiplier; issue is fire-and-forget and the run drains all
 * in-flight ops before returning, so per-phase counts sum to the run
 * totals exactly. @p keys is the preloaded population (ascending order
 * recommended so scans cover contiguous ranges); inserts grow it.
 * Deterministic for a given (service, keys, cfg).
 */
YcsbResult RunYcsb(sim::Simulator &sim, const KvService &svc,
                   const std::vector<uint64_t> &keys,
                   const YcsbConfig &cfg);

}  // namespace sdf::workload

#endif  // SDF_WORKLOAD_YCSB_H
