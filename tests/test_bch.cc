/**
 * @file
 * Unit tests for the BCH codec: field arithmetic, encode/decode round
 * trips, correction up to t errors, and detected failure beyond t.
 */
#include <gtest/gtest.h>

#include "controller/bch.h"
#include "util/rng.h"

namespace sdf::controller {
namespace {

std::vector<uint8_t>
RandomMessage(util::Rng &rng, int k)
{
    std::vector<uint8_t> msg(k);
    for (auto &b : msg) b = static_cast<uint8_t>(rng.NextBelow(2));
    return msg;
}

TEST(GaloisField, ExpLogInverse)
{
    GaloisField gf(8);
    for (int i = 1; i <= gf.n(); ++i) {
        const auto x = static_cast<uint32_t>(i);
        EXPECT_EQ(gf.Exp(gf.Log(x)), x);
        EXPECT_EQ(gf.Mul(x, gf.Inv(x)), 1u);
    }
}

TEST(GaloisField, MulByZeroIsZero)
{
    GaloisField gf(8);
    EXPECT_EQ(gf.Mul(0, 123), 0u);
    EXPECT_EQ(gf.Mul(123, 0), 0u);
}

TEST(GaloisField, MulIsCommutativeAndAssociative)
{
    GaloisField gf(8);
    util::Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const auto a = static_cast<uint32_t>(rng.NextBelow(256));
        const auto b = static_cast<uint32_t>(rng.NextBelow(256));
        const auto c = static_cast<uint32_t>(rng.NextBelow(256));
        EXPECT_EQ(gf.Mul(a, b), gf.Mul(b, a));
        EXPECT_EQ(gf.Mul(a, gf.Mul(b, c)), gf.Mul(gf.Mul(a, b), c));
    }
}

TEST(Bch, CodeDimensionsSane)
{
    // Classic BCH(15, 7, t=2).
    BchCodec code(4, 2);
    EXPECT_EQ(code.n(), 15);
    EXPECT_EQ(code.k(), 7);
    // BCH(255, 231, t=3).
    BchCodec code2(8, 3);
    EXPECT_EQ(code2.n(), 255);
    EXPECT_EQ(code2.k(), 231);
}

TEST(Bch, CleanCodewordDecodesWithZeroCorrections)
{
    BchCodec code(8, 3);
    util::Rng rng(2);
    auto msg = RandomMessage(rng, code.k());
    auto cw = code.Encode(msg);
    const auto result = code.Decode(cw);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.corrected, 0);
    EXPECT_EQ(code.ExtractMessage(cw), msg);
}

class BchErrorTest : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BchErrorTest, CorrectsUpToTErrors)
{
    const auto [m, t] = GetParam();
    BchCodec code(m, t);
    util::Rng rng(42 + m * 10 + t);
    for (int trial = 0; trial < 20; ++trial) {
        auto msg = RandomMessage(rng, code.k());
        auto cw = code.Encode(msg);
        // Inject exactly `errs` distinct bit flips for each errs <= t.
        const int errs = 1 + static_cast<int>(rng.NextBelow(t));
        std::vector<int> positions;
        while (static_cast<int>(positions.size()) < errs) {
            const int p = static_cast<int>(rng.NextBelow(code.n()));
            bool dup = false;
            for (int q : positions) dup |= q == p;
            if (!dup) positions.push_back(p);
        }
        for (int p : positions) cw[p] ^= 1;
        const auto result = code.Decode(cw);
        ASSERT_TRUE(result.ok) << "m=" << m << " t=" << t << " errs=" << errs;
        EXPECT_EQ(result.corrected, errs);
        EXPECT_EQ(code.ExtractMessage(cw), msg);
    }
}

INSTANTIATE_TEST_SUITE_P(Codes, BchErrorTest,
                         ::testing::Values(std::tuple{4, 2}, std::tuple{5, 3},
                                           std::tuple{8, 2}, std::tuple{8, 5},
                                           std::tuple{10, 4},
                                           std::tuple{13, 4}));

TEST(Bch, DetectsUncorrectableOverload)
{
    BchCodec code(8, 2);
    util::Rng rng(7);
    int detected = 0;
    const int trials = 50;
    for (int trial = 0; trial < trials; ++trial) {
        auto msg = RandomMessage(rng, code.k());
        auto cw = code.Encode(msg);
        const auto original = cw;
        // Far more errors than t=2 can handle.
        for (int e = 0; e < 12; ++e) {
            cw[rng.NextBelow(code.n())] ^= 1;
        }
        if (cw == original) continue;
        const auto result = code.Decode(cw);
        if (!result.ok) {
            ++detected;
        } else {
            // Miscorrection is possible but the result must be a valid
            // codeword (decoding it again yields no further corrections).
            auto again = cw;
            const auto r2 = code.Decode(again);
            EXPECT_TRUE(r2.ok);
            EXPECT_EQ(r2.corrected, 0);
        }
    }
    // The overwhelming majority of 12-error patterns must be detected.
    EXPECT_GT(detected, trials / 2);
}

TEST(Bch, ParityBitsMatchGeneratorDegree)
{
    BchCodec code(8, 4);
    EXPECT_EQ(code.parity_bits(), code.n() - code.k());
    EXPECT_GT(code.parity_bits(), 0);
    // t*m is the classic upper bound on parity bits.
    EXPECT_LE(code.parity_bits(), 4 * 8);
}

TEST(Bch, FlashStrengthCodeRoundTrips)
{
    // A code in the class the SDF's per-chip ECC uses: long codeword,
    // correcting several bit errors (m=13 -> n=8191, one flash page's
    // worth of bits).
    BchCodec code(13, 4);
    EXPECT_EQ(code.n(), 8191);
    util::Rng rng(11);
    auto msg = RandomMessage(rng, code.k());
    auto cw = code.Encode(msg);
    for (int p : {17, 4000, 8000, 8190}) cw[p] ^= 1;
    const auto result = code.Decode(cw);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.corrected, 4);
    EXPECT_EQ(code.ExtractMessage(cw), msg);
}

}  // namespace
}  // namespace sdf::controller
