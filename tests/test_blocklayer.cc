/**
 * @file
 * Unit tests for the user-space block layer: ID hashing, erase
 * scheduling policies, priority classes, and data integrity.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "blocklayer/block_layer.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "util/fingerprint.h"

namespace sdf::blocklayer {
namespace {

core::SdfConfig
TinyConfig(bool payloads = false)
{
    core::SdfConfig c;
    c.flash.geometry = nand::TinyTestGeometry();
    c.flash.timing = nand::FastTestTiming();
    c.flash.store_payloads = payloads;
    c.link = controller::UnlimitedLinkSpec();
    c.spare_blocks_per_plane = 2;
    return c;
}

struct Fixture
{
    sim::Simulator sim;
    core::SdfDevice device;
    BlockLayer layer;

    explicit Fixture(BlockLayerConfig cfg = {}, bool payloads = false)
        : device(sim, TinyConfig(payloads)), layer(sim, device, cfg) {}
};

TEST(BlockLayer, ConsecutiveIdsRoundRobinOverChannels)
{
    Fixture f;
    const uint32_t channels = f.device.channel_count();
    for (uint64_t id = 0; id < 2 * channels; ++id) {
        EXPECT_EQ(f.layer.ChannelOf(id), id % channels);
    }
}

TEST(BlockLayer, PutThenGetRoundTrips)
{
    Fixture f({}, /*payloads=*/true);
    const auto payload =
        util::MakeDeterministicPayload(f.layer.block_bytes(), 5);
    bool put_ok = false;
    f.layer.Put(7, [&](bool ok) { put_ok = ok; }, payload.data());
    f.sim.Run();
    EXPECT_TRUE(put_ok);
    EXPECT_TRUE(f.layer.Exists(7));

    std::vector<uint8_t> out;
    bool get_ok = false;
    f.layer.Get(7, 0, f.layer.block_bytes(), [&](bool ok) { get_ok = ok; },
                &out);
    f.sim.Run();
    EXPECT_TRUE(get_ok);
    EXPECT_EQ(out, payload);
}

TEST(BlockLayer, IdsAreWriteOnce)
{
    Fixture f;
    f.layer.Put(1, nullptr);
    f.sim.Run();
    bool second_ok = true;
    f.layer.Put(1, [&](bool ok) { second_ok = ok; });
    f.sim.Run();
    EXPECT_FALSE(second_ok);
    EXPECT_EQ(f.layer.stats().failed_ops, 1u);
}

TEST(BlockLayer, GetOfMissingIdFails)
{
    Fixture f;
    bool ok = true;
    f.layer.Get(99, 0, 8192, [&](bool s) { ok = s; });
    f.sim.Run();
    EXPECT_FALSE(ok);
}

TEST(BlockLayer, DeleteFreesSpaceForReuse)
{
    Fixture f;
    const uint64_t free_before = f.layer.FreeUnits();
    f.layer.Put(3, nullptr);
    f.sim.Run();
    EXPECT_EQ(f.layer.FreeUnits(), free_before - 1);
    EXPECT_TRUE(f.layer.Delete(3));
    EXPECT_EQ(f.layer.FreeUnits(), free_before);
    EXPECT_FALSE(f.layer.Delete(3));
    EXPECT_FALSE(f.layer.Exists(3));
}

TEST(BlockLayer, ReusedUnitsGetInlineErase)
{
    BlockLayerConfig cfg;
    cfg.erase_policy = ErasePolicy::kEraseOnWrite;
    Fixture f(cfg);
    const uint32_t channels = f.device.channel_count();
    const uint32_t units = f.device.units_per_channel();

    // Fill channel 0 completely, then delete and rewrite: the rewrite's
    // erase runs inline.
    for (uint32_t u = 0; u < units; ++u) {
        f.layer.Put(uint64_t{u} * channels, nullptr);  // All to channel 0.
    }
    f.sim.Run();
    for (uint32_t u = 0; u < units; ++u) {
        f.layer.Delete(uint64_t{u} * channels);
    }
    const uint64_t inline_before = f.layer.stats().inline_erases;
    f.layer.Put(uint64_t{units} * channels, nullptr);
    f.sim.Run();
    EXPECT_GT(f.layer.stats().inline_erases, inline_before);
}

TEST(BlockLayer, BackgroundPolicyErasesDuringIdle)
{
    BlockLayerConfig cfg;
    cfg.erase_policy = ErasePolicy::kBackground;
    Fixture f(cfg);
    f.layer.Put(0, nullptr);
    f.sim.Run();
    f.layer.Delete(0);
    f.sim.Run();  // Idle: the background erase should run now.
    EXPECT_EQ(f.layer.stats().background_erases, 1u);
    EXPECT_EQ(f.layer.FreeUnits(),
              uint64_t{f.device.channel_count()} *
                  f.device.units_per_channel());
}

TEST(BlockLayer, ChannelFullFailsPut)
{
    Fixture f;
    const uint32_t channels = f.device.channel_count();
    const uint32_t units = f.device.units_per_channel();
    for (uint32_t u = 0; u < units; ++u) {
        f.layer.Put(uint64_t{u} * channels, nullptr);
    }
    f.sim.Run();
    bool ok = true;
    f.layer.Put(uint64_t{units} * channels, [&](bool s) { ok = s; });
    f.sim.Run();
    EXPECT_FALSE(ok);
}

TEST(BlockLayer, ClientPriorityOvertakesInternal)
{
    BlockLayerConfig cfg;
    cfg.read_concurrency = 1;  // Serialize reads so ordering is visible.
    Fixture f(cfg);
    // Preload two blocks on channel 0.
    ASSERT_TRUE(f.layer.DebugInstall(0));
    ASSERT_TRUE(f.layer.DebugInstall(4));  // 4 % 4 == 0: same channel.

    // Occupy the channel with a write, then queue an internal read and a
    // client read behind it; the client read must finish first.
    f.layer.Put(8, nullptr);
    util::TimeNs internal_done = 0, client_done = 0;
    f.layer.Get(0, 0, 8192, [&](bool) { internal_done = f.sim.Now(); },
                nullptr, kInternalPriority);
    f.layer.Get(4, 0, 8192, [&](bool) { client_done = f.sim.Now(); },
                nullptr, kClientPriority);
    f.sim.Run();
    EXPECT_LT(client_done, internal_done);
}

TEST(BlockLayer, ReadPriorityPolicyLetsReadsOvertakeWrites)
{
    BlockLayerConfig cfg;
    cfg.sched_policy = SchedPolicy::kReadPriority;
    Fixture f(cfg);
    ASSERT_TRUE(f.layer.DebugInstall(0));

    // Queue: running write, then a queued write, then a read. Under
    // kReadPriority the read overtakes the queued write.
    f.layer.Put(4, nullptr);
    util::TimeNs write_done = 0, read_done = 0;
    f.layer.Put(8, [&](bool) { write_done = f.sim.Now(); });
    f.layer.Get(0, 0, 8192, [&](bool) { read_done = f.sim.Now(); });
    f.sim.Run();
    EXPECT_LT(read_done, write_done);
}

TEST(BlockLayer, FifoPolicyKeepsArrivalOrder)
{
    BlockLayerConfig cfg;
    cfg.sched_policy = SchedPolicy::kPriorityFifo;
    Fixture f(cfg);
    ASSERT_TRUE(f.layer.DebugInstall(0));
    f.layer.Put(4, nullptr);
    util::TimeNs write_done = 0, read_done = 0;
    f.layer.Put(8, [&](bool) { write_done = f.sim.Now(); });
    f.layer.Get(0, 0, 8192, [&](bool) { read_done = f.sim.Now(); });
    f.sim.Run();
    EXPECT_GT(read_done, write_done);
}

TEST(BlockLayer, PartialRangeGet)
{
    Fixture f({}, /*payloads=*/true);
    const auto payload =
        util::MakeDeterministicPayload(f.layer.block_bytes(), 21);
    f.layer.Put(2, nullptr, payload.data());
    f.sim.Run();

    const uint32_t page = f.device.read_unit_bytes();
    std::vector<uint8_t> out;
    bool ok = false;
    f.layer.Get(2, 3 * page, 2 * page, [&](bool s) { ok = s; }, &out);
    f.sim.Run();
    ASSERT_TRUE(ok);
    ASSERT_EQ(out.size(), 2u * page);
    EXPECT_EQ(0, std::memcmp(out.data(), payload.data() + 3 * page, 2 * page));
}

TEST(BlockLayer, DebugInstallBypassesTime)
{
    Fixture f;
    EXPECT_TRUE(f.layer.DebugInstall(10));
    EXPECT_EQ(f.sim.Now(), 0);
    EXPECT_TRUE(f.layer.Exists(10));
    EXPECT_FALSE(f.layer.DebugInstall(10));  // Duplicate.
}

}  // namespace
}  // namespace sdf::blocklayer
