/**
 * @file
 * Calibration tests: lock the device models to the paper's headline
 * measurements (Tables 1 and 4, §3.2) within generous tolerance bands.
 * If a model change moves a device out of its band, a benchmark table
 * would silently drift — these tests catch that at ctest time.
 *
 * Devices are capacity-scaled (structure and ratios preserved) to keep
 * the simulations fast; bandwidth does not depend on capacity.
 */
#include <gtest/gtest.h>

#include <memory>

#include "host/io_stack.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "ssd/conventional_ssd.h"
#include "workload/raw_device.h"

namespace sdf::workload {
namespace {

constexpr double kScale = 0.04;

RawRunConfig
QuickRun()
{
    RawRunConfig run;
    run.warmup = util::MsToNs(150);
    run.duration = util::MsToNs(600);
    return run;
}

// ---------------------------------------------------------------------------
// SDF (Table 4 row 1 + Figure 8 right)
// ---------------------------------------------------------------------------

TEST(CalibrationSdf, SequentialRead8MbNearPcieLimit)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, core::BaiduSdfConfig(kScale));
    host::IoStack stack(sim, host::SdfUserStackSpec());
    PreconditionSdf(device);
    RawRunConfig run = QuickRun();
    run.warmup = util::MsToNs(500);  // > 2 request cycles: reach steady state.
    run.duration = util::SecToNs(2.0);
    const RawResult r = RunSdfSequentialReads(sim, device, stack, 44,
                                              8 * util::kMiB, run);
    // Paper: 1.59 GB/s (99 % of the PCIe effective read bandwidth).
    EXPECT_GE(r.mbps, 1450.0);
    EXPECT_LE(r.mbps, 1650.0);
}

TEST(CalibrationSdf, RandomRead8KbThroughput)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, core::BaiduSdfConfig(kScale));
    host::IoStack stack(sim, host::SdfUserStackSpec());
    PreconditionSdf(device);
    const RawResult r = RunSdfRandomReads(sim, device, stack, 44,
                                          8 * util::kKiB, QuickRun());
    // Paper: 1.23 GB/s for 8 KB random reads.
    EXPECT_GE(r.mbps, 1050.0);
    EXPECT_LE(r.mbps, 1400.0);
}

TEST(CalibrationSdf, WriteThroughputNearFlashRawLimit)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, core::BaiduSdfConfig(kScale));
    host::IoStack stack(sim, host::SdfUserStackSpec());
    PreconditionSdf(device);
    RawRunConfig run = QuickRun();
    run.warmup = util::MsToNs(400);
    run.duration = util::SecToNs(1.5);
    const RawResult r = RunSdfWrites(sim, device, stack, 44, run);
    // Paper: 0.96 GB/s (94 % of the 1.01 GB/s raw write bandwidth).
    EXPECT_GE(r.mbps, 850.0);
    EXPECT_LE(r.mbps, 1050.0);
}

TEST(CalibrationSdf, ErasePlusWriteLatencyStable)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, core::BaiduSdfConfig(kScale));
    host::IoStack stack(sim, host::SdfUserStackSpec());
    PreconditionSdf(device);
    RawRunConfig run = QuickRun();
    run.duration = util::SecToNs(3.0);
    const RawResult r = RunSdfWrites(sim, device, stack, 1, run);
    // Paper Figure 8: ~383 ms per 8 MB erase+write, with little variation.
    EXPECT_GE(r.latencies.MeanMs(), 330.0);
    EXPECT_LE(r.latencies.MeanMs(), 430.0);
    EXPECT_LE(r.latencies.StdDevMs(), 0.05 * r.latencies.MeanMs());
}

// ---------------------------------------------------------------------------
// Huawei Gen3 (Table 4 row 2)
// ---------------------------------------------------------------------------

TEST(CalibrationHuawei, SequentialRead8Mb)
{
    sim::Simulator sim;
    ssd::ConventionalSsd device(sim, ssd::HuaweiGen3Config(kScale));
    host::IoStack stack(sim, host::KernelIoStackSpec());
    device.PreconditionFill(0.9);
    const RawResult r = RunConvReads(sim, device, stack, 32, 8 * util::kMiB,
                                     Pattern::kSequential, QuickRun());
    // Paper: 1.20 GB/s.
    EXPECT_GE(r.mbps, 1050.0);
    EXPECT_LE(r.mbps, 1350.0);
}

TEST(CalibrationHuawei, SequentialWrite8Mb)
{
    sim::Simulator sim;
    ssd::ConventionalSsd device(sim, ssd::HuaweiGen3Config(kScale));
    host::IoStack stack(sim, host::KernelIoStackSpec());
    RawRunConfig run = QuickRun();
    run.warmup = util::MsToNs(500);
    run.duration = util::SecToNs(1.5);
    const RawResult r = RunConvWrites(sim, device, stack, 8, 8 * util::kMiB,
                                      Pattern::kSequential, run);
    // Paper: 0.67 GB/s.
    EXPECT_GE(r.mbps, 550.0);
    EXPECT_LE(r.mbps, 800.0);
}

TEST(CalibrationHuawei, SmallReadsLoseToSplitOverhead)
{
    sim::Simulator sim;
    ssd::ConventionalSsd device(sim, ssd::HuaweiGen3Config(kScale));
    host::IoStack stack(sim, host::KernelIoStackSpec());
    device.PreconditionFill(0.9);
    const RawResult r = RunConvReads(sim, device, stack, 64, 8 * util::kKiB,
                                     Pattern::kRandom, QuickRun());
    // Paper: 0.92 GB/s for 8 KB reads — clearly below the 1.2 GB/s peak.
    EXPECT_GE(r.mbps, 740.0);
    EXPECT_LE(r.mbps, 1080.0);
}

// ---------------------------------------------------------------------------
// Intel 320 (Table 4 row 3)
// ---------------------------------------------------------------------------

TEST(CalibrationIntel, SequentialRead8Mb)
{
    sim::Simulator sim;
    ssd::ConventionalSsd device(sim, ssd::Intel320Config(kScale));
    host::IoStack stack(sim, host::KernelIoStackSpec());
    device.PreconditionFill(0.9);
    const RawResult r = RunConvReads(sim, device, stack, 32, 8 * util::kMiB,
                                     Pattern::kSequential, QuickRun());
    // Paper: 0.22 GB/s.
    EXPECT_GE(r.mbps, 180.0);
    EXPECT_LE(r.mbps, 260.0);
}

TEST(CalibrationIntel, SequentialWrite8Mb)
{
    sim::Simulator sim;
    ssd::ConventionalSsd device(sim, ssd::Intel320Config(kScale));
    host::IoStack stack(sim, host::KernelIoStackSpec());
    RawRunConfig run = QuickRun();
    run.warmup = util::MsToNs(500);
    run.duration = util::SecToNs(1.5);
    const RawResult r = RunConvWrites(sim, device, stack, 8, 8 * util::kMiB,
                                      Pattern::kSequential, run);
    // Paper: 0.13 GB/s.
    EXPECT_GE(r.mbps, 100.0);
    EXPECT_LE(r.mbps, 170.0);
}

}  // namespace
}  // namespace sdf::workload
