/**
 * @file
 * Tests for the async client front door (client::KvClient): the bounded
 * outstanding-request window, client-side queue-cap shedding, read
 * coalescing under pressure, hedged-read accounting, typed deadline
 * outcomes, and same-seed determinism of the whole open-loop path.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "client/kv_client.h"
#include "cluster/cluster.h"
#include "obs/hub.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"
#include "workload/kv_driver.h"

namespace sdf {
namespace {

cluster::ClusterConfig
TinyCluster(uint32_t nodes, uint32_t replication)
{
    cluster::ClusterConfig cc;
    cc.nodes = nodes;
    cc.replication = replication;
    cc.node.kv.stack.capacity_scale = 0.02;
    cc.node.kv.stack.with_io_stack = false;
    cc.node.kv.store.slice_count = 2;
    cc.node.kv.stack.tune_sdf = [](core::SdfConfig &dc) {
        dc.flash.timing = nand::FastTestTiming();
    };
    return cc;
}

/** Write @p count keys through the router and push them to flash, so
 *  client reads exercise real device time (memtable reads settle in zero
 *  simulated time and would never build window pressure). */
std::vector<uint64_t>
Preload(sim::Simulator &sim, cluster::Cluster &cl, uint64_t count)
{
    std::vector<uint64_t> keys;
    uint64_t acked = 0;
    for (uint64_t k = 1; k <= count; ++k) {
        keys.push_back(k);
        cl.router().Put(k, 16 * util::kKiB,
                        [&acked](bool ok) { acked += ok; });
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();
    EXPECT_EQ(acked, count);
    return keys;
}

TEST(KvClient, WindowQueuesExcessSubmitsAndServesThemAll)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, TinyCluster(1, 1));
    const auto keys = Preload(sim, cl, 20);

    client::KvClientConfig kc;
    kc.window_per_node = 2;
    kc.batch_max = 1;   // Isolate the window from coalescing.
    kc.queue_cap = 0;   // Unbounded queue: nothing sheds.
    kc.hedge_reads = false;
    client::KvClient client(sim, cl.router(), kc);

    uint64_t served = 0;
    for (uint64_t k : keys) {
        client.Get(k, [&](const kv::GetResult &r) {
            served += r.ok && r.found;
        });
    }
    sim.Run();
    EXPECT_EQ(served, keys.size());
    // 20 simultaneous submits into a window of 2: the first two dispatch,
    // the other 18 wait for a slot.
    EXPECT_EQ(client.stats().queued, 18u);
    EXPECT_EQ(client.stats().shed_queue_full, 0u);
    EXPECT_EQ(client.stats().batches, 0u);
}

TEST(KvClient, FullQueueShedsClientSideWithTypedOverload)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, TinyCluster(1, 1));
    const auto keys = Preload(sim, cl, 20);

    client::KvClientConfig kc;
    kc.window_per_node = 1;
    kc.queue_cap = 4;
    kc.batch_max = 1;
    kc.hedge_reads = false;
    client::KvClient client(sim, cl.router(), kc);

    const uint64_t wire_before = cl.node(0).net().messages();
    uint64_t served = 0, shed = 0, other = 0;
    for (uint64_t k : keys) {
        client.Get(k, [&](const kv::GetResult &r) {
            if (r.ok && r.found) {
                ++served;
            } else if (!r.ok && r.status == kv::OpStatus::kOverloaded) {
                ++shed;
            } else {
                ++other;
            }
        });
    }
    sim.Run();
    // 1 in flight + 4 queued admitted; the other 15 are refused at the
    // client — typed, and without costing a NIC or an admission slot.
    EXPECT_EQ(served, 5u);
    EXPECT_EQ(shed, 15u);
    EXPECT_EQ(other, 0u);
    EXPECT_EQ(client.stats().shed_queue_full, 15u);
    // A client-side shed is free for everyone else: only the 5 admitted
    // reads ever touched the wire.
    EXPECT_EQ(cl.node(0).net().messages() - wire_before, 5u);
}

TEST(KvClient, QueuedReadsCoalesceIntoBatches)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, TinyCluster(1, 1));
    const auto keys = Preload(sim, cl, 17);

    client::KvClientConfig kc;
    kc.window_per_node = 1;
    kc.batch_max = 8;
    kc.queue_cap = 0;
    kc.hedge_reads = false;
    client::KvClient client(sim, cl.router(), kc);

    uint64_t served = 0;
    for (uint64_t k : keys) {
        client.Get(k, [&](const kv::GetResult &r) {
            served += r.ok && r.found;
        });
    }
    sim.Run();
    EXPECT_EQ(served, keys.size());
    // The first read dispatches solo (empty queue); the 16 that piled up
    // behind the full window drain as two full batches — pressure makes
    // batches, not stalls.
    EXPECT_EQ(client.stats().batches, 2u);
    EXPECT_EQ(client.stats().batched_gets, 16u);
}

TEST(KvClient, HedgeAccountingStaysConsistentWithAFailSlowReplica)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, TinyCluster(2, 2));
    const auto keys = Preload(sim, cl, 40);

    client::KvClientConfig kc;
    kc.window_per_node = 4;
    kc.batch_max = 1;
    kc.hedge_reads = true;
    kc.hedge_min_samples = 16;
    client::KvClient client(sim, cl.router(), kc);

    uint64_t served = 0;
    auto drive = [&](int reads) {
        int next = 0;
        std::function<void()> step = [&]() {
            if (next >= reads) return;
            client.Get(keys[next++ % keys.size()],
                       [&](const kv::GetResult &r) {
                           served += r.ok && r.found;
                           step();
                       });
        };
        for (int s = 0; s < 4; ++s) step();
        sim.Run();
    };

    // Warm the latency histogram while healthy, then degrade one node.
    drive(64);
    cl.node(0).SetFailSlow(10.0);
    drive(200);

    EXPECT_EQ(served, 264u);
    const client::HedgeStats &hs = client.hedge_stats();
    // Reads through the slow primary cross the threshold and hedge to the
    // healthy replica, which answers first.
    EXPECT_GT(hs.launched, 0u);
    EXPECT_GT(hs.wins, 0u);
    // Every launched hedge resolves as exactly one win or loss, and a
    // cancelled timer means the hedge never launched.
    EXPECT_EQ(hs.launched, hs.wins + hs.losses);
    EXPECT_GT(hs.cancelled, 0u);
}

TEST(KvClient, DeadlineOutcomesAreTyped)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, TinyCluster(1, 1));
    const auto keys = Preload(sim, cl, 8);

    client::KvClientConfig kc;
    // Tighter than the one-way propagation delay: nothing can finish.
    kc.deadline = util::UsToNs(20);
    kc.hedge_reads = false;
    client::KvClient client(sim, cl.router(), kc);

    uint64_t get_deadline = 0, put_deadline = 0, other = 0;
    for (uint64_t k : keys) {
        client.Get(k, [&](const kv::GetResult &r) {
            if (!r.ok && r.status == kv::OpStatus::kDeadlineExceeded) {
                ++get_deadline;
            } else {
                ++other;
            }
        });
    }
    client.Put(keys.front(), 16 * util::kKiB, [&](kv::OpStatus s) {
        if (s == kv::OpStatus::kDeadlineExceeded) {
            ++put_deadline;
        } else {
            ++other;
        }
    });
    sim.Run();
    EXPECT_EQ(get_deadline, keys.size());
    EXPECT_EQ(put_deadline, 1u);
    EXPECT_EQ(other, 0u);
    EXPECT_EQ(client.stats().deadline_exceeded, keys.size() + 1);
}

TEST(KvClient, SameSeedOpenLoopRunsExportByteIdenticalStats)
{
    auto run_once = []() {
        obs::Hub hub;
        sim::Simulator sim;
        sim.set_hub(&hub);
        cluster::Cluster cl(sim, TinyCluster(2, 2));
        std::vector<uint64_t> keys;
        uint64_t acked = 0;
        for (uint64_t k = 1; k <= 30; ++k) {
            keys.push_back(k);
            cl.router().Put(k, 16 * util::kKiB,
                            [&acked](bool ok) { acked += ok; });
        }
        sim.Run();
        cl.FlushAll();
        sim.Run();
        EXPECT_EQ(acked, 30u);

        client::KvClientConfig kc;
        kc.window_per_node = 8;
        kc.queue_cap = 32;
        kc.deadline = util::MsToNs(10.0);
        client::KvClient client(sim, cl.router(), kc);

        workload::OpenRunConfig oc;
        oc.arrival_rate = 15000;
        oc.value_bytes = 16 * util::kKiB;
        oc.duration = util::MsToNs(40);
        oc.storm_factor = 3.0;
        oc.storm_start = util::MsToNs(15);
        oc.storm_end = util::MsToNs(25);
        oc.seed = 42;
        workload::RunOpenLoad(sim, client.Service(), keys, oc);
        return obs::StatsJson(hub, {{"run", "client"}}, {});
    };
    const std::string a = run_once();
    const std::string b = run_once();
    EXPECT_GT(a.size(), 100u);
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sdf
