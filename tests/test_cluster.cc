/**
 * @file
 * Tests for the pluggable device interface and the sharded cluster:
 * consistent-hash ring properties, the SSD block-device adapter behind
 * the unified BlockLayer path, storage-node metric scoping, router
 * sharding/replication, and degraded-mode durability of acked writes.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "blocklayer/block_layer.h"
#include "cluster/cluster.h"
#include "cluster/hash_ring.h"
#include "fault/fault.h"
#include "net/network.h"
#include "obs/hub.h"
#include "sdf/block_device.h"
#include "sim/simulator.h"
#include "ssd/conventional_ssd.h"
#include "ssd/ssd_block_device.h"
#include "testbed/testbed.h"
#include "workload/kv_driver.h"

namespace sdf {
namespace {

// ---------------------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------------------

TEST(HashRing, DeterministicAcrossInstances)
{
    cluster::HashRing a(5, 64), b(5, 64);
    for (uint64_t key = 0; key < 500; ++key) {
        EXPECT_EQ(a.ReplicasFor(key, 3), b.ReplicasFor(key, 3)) << key;
    }
}

TEST(HashRing, ReplicasAreDistinctAndInRange)
{
    cluster::HashRing ring(4, 64);
    for (uint64_t key = 0; key < 1000; ++key) {
        const auto reps = ring.ReplicasFor(key, 3);
        ASSERT_EQ(reps.size(), 3u);
        std::set<uint32_t> distinct(reps.begin(), reps.end());
        EXPECT_EQ(distinct.size(), 3u) << "duplicate replica for " << key;
        for (uint32_t n : reps) EXPECT_LT(n, 4u);
    }
}

TEST(HashRing, PrimariesReasonablyBalanced)
{
    const uint32_t nodes = 4;
    cluster::HashRing ring(nodes, 64);
    std::vector<uint64_t> counts(nodes, 0);
    const uint64_t keys = 8000;
    for (uint64_t key = 0; key < keys; ++key) ++counts[ring.PrimaryOf(key)];
    const double fair = static_cast<double>(keys) / nodes;
    for (uint32_t n = 0; n < nodes; ++n) {
        EXPECT_GT(counts[n], fair * 0.5) << "node " << n << " starved";
        EXPECT_LT(counts[n], fair * 1.7) << "node " << n << " overloaded";
    }
}

TEST(HashRing, AddingANodeMovesFewKeys)
{
    cluster::HashRing before(4, 64), after(5, 64);
    uint64_t moved = 0;
    const uint64_t keys = 4000;
    for (uint64_t key = 0; key < keys; ++key) {
        if (before.PrimaryOf(key) != after.PrimaryOf(key)) ++moved;
    }
    // The consistent-hashing property: ~1/(N+1) = 20 % expected; far
    // below the ~80 % a mod-N scheme would reshuffle.
    EXPECT_LT(static_cast<double>(moved) / keys, 0.4);
    EXPECT_GT(moved, 0u);
}

// ---------------------------------------------------------------------------
// The SSD block-device adapter
// ---------------------------------------------------------------------------

struct AdapterFixture
{
    sim::Simulator sim;
    std::unique_ptr<ssd::ConventionalSsd> drive;
    std::unique_ptr<ssd::SsdBlockDevice> dev;

    AdapterFixture()
    {
        ssd::ConventionalSsdConfig cfg = ssd::HuaweiGen3Config(0.02);
        cfg.flash.timing = nand::FastTestTiming();
        drive = std::make_unique<ssd::ConventionalSsd>(sim, cfg);
        dev = std::make_unique<ssd::SsdBlockDevice>(sim, *drive);
    }
};

TEST(SsdBlockDevice, CapsDescribeTheAdaptedDevice)
{
    AdapterFixture f;
    const core::DeviceCaps &caps = f.dev->caps();
    EXPECT_FALSE(caps.explicit_erase);  // Erase is synthesized via Trim.
    EXPECT_GT(caps.channels, 0u);
    EXPECT_GT(caps.units_per_channel, 0u);
    EXPECT_EQ(caps.unit_bytes, 8 * util::kMiB);
    EXPECT_EQ(caps.user_capacity, uint64_t{caps.channels} *
                                      caps.units_per_channel *
                                      caps.unit_bytes);
    EXPECT_LE(caps.user_capacity, f.drive->user_capacity());
    // The interface accessors read the same descriptor.
    EXPECT_EQ(f.dev->channel_count(), caps.channels);
    EXPECT_EQ(f.dev->unit_bytes(), caps.unit_bytes);
}

TEST(SsdBlockDevice, EnforcesEraseBeforeWriteContract)
{
    AdapterFixture f;
    core::IoStatus write_status;
    f.dev->WriteUnit(0, 0, [&](core::IoStatus s) { write_status = s; });
    f.sim.Run();
    EXPECT_FALSE(write_status.ok());
    EXPECT_EQ(write_status.error, core::IoError::kContractViolation);

    // Erase -> write -> read round-trips through the flat SSD space.
    bool erased = false, written = false, read_ok = false;
    f.dev->EraseUnit(0, 0, [&](core::IoStatus s) { erased = s.ok(); });
    f.sim.Run();
    ASSERT_TRUE(erased);
    EXPECT_EQ(f.dev->unit_state(0, 0), core::UnitState::kErased);
    f.dev->WriteUnit(0, 0, [&](core::IoStatus s) { written = s.ok(); });
    f.sim.Run();
    ASSERT_TRUE(written);
    EXPECT_EQ(f.dev->unit_state(0, 0), core::UnitState::kWritten);
    f.dev->Read(0, 0, 64 * util::kKiB, f.dev->read_unit_bytes(),
                [&](core::IoStatus s) { read_ok = s.ok(); });
    f.sim.Run();
    EXPECT_TRUE(read_ok);
    EXPECT_GT(f.dev->synthetic_erases(), 0u);
}

TEST(SsdBlockDevice, RejectsMisalignedReads)
{
    AdapterFixture f;
    core::IoStatus status;
    f.dev->Read(0, 0, 1234 /* misaligned */, f.dev->read_unit_bytes(),
                [&](core::IoStatus s) { status = s; });
    f.sim.Run();
    EXPECT_EQ(status.error, core::IoError::kContractViolation);
}

TEST(BlockLayer, RunsUnchangedOnTheAdapter)
{
    AdapterFixture f;
    blocklayer::BlockLayer layer(f.sim, *f.dev,
                                 blocklayer::BlockLayerConfig{});
    // The block layer only sees core::BlockDevice; puts/gets/deletes must
    // behave exactly as on SDF.
    std::set<uint64_t> stored;
    for (uint64_t id = 0; id < 12; ++id) {
        layer.Put(id, [&stored, id](bool ok) {
            if (ok) stored.insert(id);
        });
    }
    f.sim.Run();
    EXPECT_EQ(stored.size(), 12u);
    int reads_ok = 0;
    for (uint64_t id : stored) {
        layer.Get(id, 0, f.dev->read_unit_bytes(),
                  [&reads_ok](bool ok) { reads_ok += ok; });
    }
    f.sim.Run();
    EXPECT_EQ(reads_ok, 12);
    EXPECT_TRUE(layer.Delete(3));
    EXPECT_FALSE(layer.Exists(3));
}

// ---------------------------------------------------------------------------
// One code path over both backends
// ---------------------------------------------------------------------------

TEST(Testbed, SameKvWorkloadRunsOnEitherBackend)
{
    // The same closed-loop put/get sequence against the *same* stack
    // shape (device -> BlockLayer -> BlockPatchStorage -> Store), only
    // the backend differs.
    for (const bool on_ssd : {false, true}) {
        sim::Simulator sim;
        testbed::KvStackConfig kc;
        kc.stack.backend = on_ssd ? testbed::Backend::kHuaweiGen3
                                  : testbed::Backend::kBaiduSdf;
        kc.stack.ssd_through_block_layer = true;
        kc.stack.capacity_scale = 0.02;
        kc.stack.with_io_stack = false;
        kc.store.slice_count = 2;
        testbed::KvStack stack = testbed::BuildKvStack(sim, kc);
        ASSERT_NE(stack.storage.device(), nullptr);
        EXPECT_EQ(stack.storage.device()->caps().explicit_erase, !on_ssd);

        const workload::KvService svc = workload::ServiceFor(*stack.store);
        int acked = 0, found = 0;
        for (uint64_t key = 1; key <= 40; ++key) {
            svc.put(key, 32 * util::kKiB, [&](bool ok) { acked += ok; });
        }
        sim.Run();
        for (uint32_t s = 0; s < stack.store->slice_count(); ++s) {
            stack.store->slice(s).Flush();
        }
        sim.Run();
        for (uint64_t key = 1; key <= 40; ++key) {
            svc.get(key, [&](const kv::GetResult &r) {
                found += r.ok && r.found;
            });
        }
        sim.Run();
        EXPECT_EQ(acked, 40) << (on_ssd ? "ssd" : "sdf");
        EXPECT_EQ(found, 40) << (on_ssd ? "ssd" : "sdf");
    }
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

cluster::ClusterConfig
SmallCluster(uint32_t nodes, uint32_t replication)
{
    cluster::ClusterConfig cc;
    cc.nodes = nodes;
    cc.replication = replication;
    cc.node.kv.stack.capacity_scale = 0.02;
    cc.node.kv.stack.with_io_stack = false;
    cc.node.kv.store.slice_count = 2;
    cc.node.kv.stack.tune_sdf = [](core::SdfConfig &dc) {
        dc.flash.timing = nand::FastTestTiming();
    };
    return cc;
}

TEST(Cluster, PutGetSpreadsAcrossNodes)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, SmallCluster(3, 2));
    int acked = 0;
    const uint64_t keys = 60;
    for (uint64_t key = 1; key <= keys; ++key) {
        cl.router().Put(key, 16 * util::kKiB, [&](bool ok) { acked += ok; });
    }
    sim.Run();
    EXPECT_EQ(acked, static_cast<int>(keys));
    int found = 0;
    for (uint64_t key = 1; key <= keys; ++key) {
        cl.router().Get(key, [&](const kv::GetResult &r) {
            found += r.ok && r.found;
        });
    }
    sim.Run();
    EXPECT_EQ(found, static_cast<int>(keys));
    // Sharding actually used every node, over the real RPC path.
    for (uint32_t n = 0; n < cl.node_count(); ++n) {
        EXPECT_GT(cl.router().node_puts(n), 0u) << "node " << n;
        EXPECT_GT(cl.node(n).net().messages(), 0u) << "node " << n;
    }
    EXPECT_EQ(cl.router().stats().put_failures, 0u);
}

TEST(Cluster, MissesAreAuthoritativeOnlyWhenAllReplicasAgree)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, SmallCluster(3, 2));
    kv::GetResult res;
    cl.router().Get(0xdeadbeef, [&](const kv::GetResult &r) { res = r; });
    sim.Run();
    EXPECT_TRUE(res.ok);
    EXPECT_FALSE(res.found);
    EXPECT_EQ(cl.router().stats().failed_reads, 0u);
}

TEST(Cluster, NodeMetricsAreScopedPerNode)
{
    obs::Hub hub;
    sim::Simulator sim;
    sim.set_hub(&hub);
    cluster::Cluster cl(sim, SmallCluster(2, 2));
    const auto snap = hub.metrics().Take();
    bool node0 = false, node1 = false, clusterwide = false;
    for (const auto &[name, value] : snap.counters) {
        node0 |= name.rfind("node0.", 0) == 0;
        node1 |= name.rfind("node1.", 0) == 0;
        clusterwide |= name.rfind("cluster.", 0) == 0;
    }
    EXPECT_TRUE(node0);
    EXPECT_TRUE(node1);
    EXPECT_TRUE(clusterwide);
    // Nothing from one node leaked into the other's namespace: both
    // nodes registered the same component set.
    size_t n0 = 0, n1 = 0;
    for (const auto &[name, value] : snap.counters) {
        n0 += name.rfind("node0.", 0) == 0;
        n1 += name.rfind("node1.", 0) == 0;
    }
    EXPECT_EQ(n0, n1);
}

TEST(Cluster, SameSeedRunsExportByteIdenticalStats)
{
    auto run_once = []() {
        obs::Hub hub;
        sim::Simulator sim;
        sim.set_hub(&hub);
        cluster::Cluster cl(sim, SmallCluster(3, 2));
        std::vector<uint64_t> keys;
        for (uint64_t k = 1; k <= 30; ++k) {
            keys.push_back(k);
            cl.router().Put(k, 16 * util::kKiB, [](bool) {});
        }
        sim.Run();
        cl.FlushAll();
        sim.Run();
        workload::MixedRunConfig mc;
        mc.actors = 4;
        mc.value_bytes = 16 * util::kKiB;
        mc.duration = util::MsToNs(120);
        mc.seed = 99;
        const workload::KvService svc = cl.Service();
        workload::RunMixedLoad(sim, svc, keys, mc);
        return obs::StatsJson(hub, {{"run", "cluster"}}, {});
    };
    const std::string a = run_once();
    const std::string b = run_once();
    EXPECT_GT(a.size(), 100u);
    EXPECT_EQ(a, b);
}

TEST(Cluster, NodeDeathLosesNoAcknowledgedWrites)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, SmallCluster(3, 2));
    std::vector<uint64_t> keys;
    for (uint64_t k = 1; k <= 30; ++k) {
        keys.push_back(k);
        cl.router().Put(k, 16 * util::kKiB, [](bool) {});
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();

    // Kill every channel of node 0's device shortly into the window.
    std::vector<fault::FaultEvent> events;
    for (uint32_t ch = 0; ch < cl.node(0).sdf_device()->channel_count();
         ++ch) {
        fault::FaultEvent e;
        e.when = sim.Now() + util::MsToNs(40);
        e.kind = fault::FaultKind::kChannelDeath;
        e.device = 0;
        e.channel = ch;
        events.push_back(e);
    }
    fault::FaultInjector injector(sim, cl.SdfDevices(),
                                  fault::FaultPlan(std::move(events)));

    workload::MixedRunConfig mc;
    mc.read_fraction = 0.5;
    mc.actors = 4;
    mc.value_bytes = 16 * util::kKiB;
    mc.duration = util::MsToNs(150);
    const workload::KvService svc = cl.Service();
    const auto r = workload::RunMixedLoad(sim, svc, keys, mc);
    ASSERT_EQ(injector.stats().deaths,
              cl.node(0).sdf_device()->channel_count());
    ASSERT_GT(r.acked_writes.size(), 0u);

    // Every acknowledged write must still be readable (closed-loop audit
    // so RPC queues don't overflow the timeout).
    uint64_t lost = 0, audited = 0;
    size_t next = 0;
    std::function<void()> audit = [&]() {
        if (next >= r.acked_writes.size()) return;
        cl.router().Get(r.acked_writes[next++],
                        [&](const kv::GetResult &res) {
                            ++audited;
                            if (!res.ok || !res.found) ++lost;
                            audit();
                        });
    };
    for (int s = 0; s < 4; ++s) audit();
    sim.Run();
    EXPECT_EQ(audited, r.acked_writes.size());
    EXPECT_EQ(lost, 0u);
}

// ---------------------------------------------------------------------------
// Typed RPC transport (net::Network::RpcTyped)
// ---------------------------------------------------------------------------

net::NetworkSpec
FastRpcSpec()
{
    net::NetworkSpec spec;
    spec.rpc_timeout = util::MsToNs(2);
    spec.rpc_max_retries = 2;
    spec.rpc_backoff_base = util::UsToNs(100);
    return spec;
}

TEST(RpcTyped, RetryExhaustionIsTypedDeadlineExceeded)
{
    sim::Simulator sim;
    net::Network net(sim, FastRpcSpec(), 1);
    // A server that swallows requests: every attempt must time out, and
    // after the retry budget the caller gets a typed disposition, not a
    // hang or a bare bool.
    int handled = 0;
    bool settled = false;
    net::RpcCode code = net::RpcCode::kOk;
    net.RpcTyped(
        0, 512, 0,
        [&](util::TimeNs, net::Network::TypedReply) { ++handled; },
        [&](net::RpcCode c) {
            settled = true;
            code = c;
        });
    sim.Run();
    EXPECT_TRUE(settled);
    EXPECT_EQ(code, net::RpcCode::kDeadlineExceeded);
    // First attempt + rpc_max_retries re-issues, every one abandoned.
    EXPECT_EQ(handled, 3);
    EXPECT_EQ(net.rpc_stats().timeouts, 3u);
    EXPECT_EQ(net.rpc_stats().retries, 2u);
    EXPECT_EQ(net.rpc_stats().failures, 1u);
}

TEST(RpcTyped, OverloadedReplySettlesWithoutRetry)
{
    sim::Simulator sim;
    net::Network net(sim, FastRpcSpec(), 1);
    // An admission nack is an answer, not a failure: retrying would hammer
    // the very queue the server just shed from.
    net::RpcCode code = net::RpcCode::kOk;
    net.RpcTyped(
        0, 512, 0,
        [&](util::TimeNs, net::Network::TypedReply reply) {
            reply(64, net::RpcCode::kOverloaded);
        },
        [&](net::RpcCode c) { code = c; });
    sim.Run();
    EXPECT_EQ(code, net::RpcCode::kOverloaded);
    EXPECT_EQ(net.rpc_stats().overload_replies, 1u);
    EXPECT_EQ(net.rpc_stats().retries, 0u);
    EXPECT_EQ(net.rpc_stats().timeouts, 0u);
}

TEST(RpcTyped, ExpiredDeadlineIsDroppedBeforeTheHandler)
{
    sim::Simulator sim;
    net::Network net(sim, FastRpcSpec(), 1);
    // Deadline shorter than the one-way propagation delay: the request
    // expires in flight, so the transport drops it server-side without
    // running the handler — the work would be wasted anyway.
    int handled = 0;
    net::RpcCode code = net::RpcCode::kOk;
    net.RpcTyped(
        0, 512, sim.Now() + util::UsToNs(10),
        [&](util::TimeNs, net::Network::TypedReply reply) {
            ++handled;
            reply(64, net::RpcCode::kOk);
        },
        [&](net::RpcCode c) { code = c; });
    sim.Run();
    EXPECT_EQ(handled, 0);
    EXPECT_EQ(code, net::RpcCode::kDeadlineExceeded);
    EXPECT_EQ(net.rpc_stats().deadline_drops, 1u);
    // No retry can beat a deadline that already passed.
    EXPECT_EQ(net.rpc_stats().retries, 0u);
}

// ---------------------------------------------------------------------------
// Admission control and the fail-slow breaker
// ---------------------------------------------------------------------------

TEST(Cluster, AdmissionCapShedsWithTypedOverload)
{
    sim::Simulator sim;
    cluster::ClusterConfig cc = SmallCluster(2, 2);
    cc.node.admission_cap = 2;
    cluster::Cluster cl(sim, cc);

    // Preload serially — one outstanding op never trips a cap of 2.
    const uint64_t keys = 12;
    uint64_t loaded = 0;
    std::function<void(uint64_t)> load = [&](uint64_t k) {
        if (k > keys) return;
        cl.router().Put(k, 16 * util::kKiB, [&, k](bool ok) {
            loaded += ok;
            load(k + 1);
        });
    };
    load(1);
    sim.Run();
    ASSERT_EQ(loaded, keys);
    // Push the values to flash: a memtable read settles in zero simulated
    // time, so only device-backed reads can stack up past the cap.
    cl.FlushAll();
    sim.Run();

    // Flood one node far past its cap with direct reads (no failover, so
    // the shed is visible instead of healed by another replica).
    uint64_t served = 0, shed = 0, other = 0;
    for (int i = 0; i < 80; ++i) {
        cl.router().GetAt(0, 1 + (i % keys), {},
                          [&](const kv::GetResult &r) {
                              if (r.ok) {
                                  ++served;
                              } else if (r.status ==
                                         kv::OpStatus::kOverloaded) {
                                  ++shed;
                              } else {
                                  ++other;
                              }
                          });
    }
    sim.Run();
    // Every request got an answer: served or a typed refusal, no hangs.
    EXPECT_EQ(served + shed + other, 80u);
    EXPECT_EQ(other, 0u);
    EXPECT_GT(served, 0u);
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(cl.node(0).admission().shed_overload, shed);
    EXPECT_GT(cl.node(0).admission().admitted, 0u);
    EXPECT_LE(cl.node(0).admission().peak_inflight, 2u);
}

TEST(Cluster, BreakerDemotesFailSlowNodeAndRecovers)
{
    sim::Simulator sim;
    cluster::ClusterConfig cc = SmallCluster(3, 2);
    cc.breaker.enabled = true;
    cc.breaker.min_samples = 16;
    cc.breaker.alpha = 0.3;
    // The router samples the whole RPC round trip, and the (unscaled)
    // wire delay dilutes the storage slowdown at this light closed-loop
    // load; 2x observed is already a badly degraded node.
    cc.breaker.trip_factor = 2.0;
    cc.breaker.reset_factor = 1.3;
    cluster::Cluster cl(sim, cc);

    std::vector<uint64_t> keys;
    for (uint64_t k = 1; k <= 60; ++k) {
        keys.push_back(k);
        cl.router().Put(k, 16 * util::kKiB, [](bool) {});
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();

    // Slow down whichever node is primary for the first key: that key's
    // reads walk the victim first unless the breaker demotes it.
    const uint64_t victim_key = keys.front();
    const uint32_t victim = cl.router().ReplicaNodes(victim_key).front();

    cl.node(victim).SetFailSlow(12.0);
    // Mixed closed-loop traffic: reads show the demotion working, writes
    // keep sampling the demoted node (they still replicate to it) so the
    // breaker can notice when it heals — demoted reads never would.
    auto drive = [&](int ops) {
        int next = 0;
        std::function<void()> step = [&]() {
            if (next >= ops) return;
            const uint64_t key = keys[next % keys.size()];
            if (next++ % 4 == 0) {
                cl.router().Put(key, 16 * util::kKiB,
                                [&](bool) { step(); });
            } else {
                cl.router().Get(key, [&](const kv::GetResult &) { step(); });
            }
        };
        for (int s = 0; s < 4; ++s) step();
        sim.Run();
    };
    drive(300);

    EXPECT_GE(cl.router().breaker().stats().trips, 1u);
    EXPECT_TRUE(cl.router().breaker().IsOpen(victim));
    // Demotion reorders reads away from the slow node but keeps it as a
    // last resort — its data stays reachable.
    const auto order = cl.router().ReadOrder(victim_key);
    ASSERT_GE(order.size(), 2u);
    EXPECT_NE(order.front(), victim);
    EXPECT_EQ(order.back(), victim);
    EXPECT_GT(cl.router().breaker().stats().reroutes, 0u);

    // Health returns -> hysteresis closes the breaker again.
    cl.node(victim).SetFailSlow(1.0);
    drive(300);
    EXPECT_GE(cl.router().breaker().stats().resets, 1u);
    EXPECT_FALSE(cl.router().breaker().IsOpen(victim));
    EXPECT_EQ(cl.router().ReadOrder(victim_key).front(), victim);
}

}  // namespace
}  // namespace sdf
