/**
 * @file
 * Tests for cluster-wide observability (DESIGN.md §13): trace-context
 * propagation from the client front door through the RPC transport to the
 * storage nodes, hedge duplicates linked to their parent by trace id
 * across tracks, the cluster critical-path tiling invariant
 * (sum of client.path.* stage segments == end-to-end latency, exactly),
 * windowed time-series metrics, and byte-identical same-seed exports of
 * all three documents (stats, trace, series).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "client/kv_client.h"
#include "cluster/cluster.h"
#include "obs/hub.h"
#include "obs/series.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"
#include "util/units.h"

namespace sdf {
namespace {

cluster::ClusterConfig
TinyCluster(uint32_t nodes, uint32_t replication)
{
    cluster::ClusterConfig cc;
    cc.nodes = nodes;
    cc.replication = replication;
    cc.node.kv.stack.capacity_scale = 0.02;
    cc.node.kv.stack.with_io_stack = false;
    cc.node.kv.store.slice_count = 2;
    cc.node.kv.stack.tune_sdf = [](core::SdfConfig &dc) {
        dc.flash.timing = nand::FastTestTiming();
    };
    return cc;
}

/** Preload @p count keys through the router and flush them to flash so
 *  reads exercise real (nonzero) device time. */
std::vector<uint64_t>
Preload(sim::Simulator &sim, cluster::Cluster &cl, uint64_t count)
{
    std::vector<uint64_t> keys;
    uint64_t acked = 0;
    for (uint64_t k = 1; k <= count; ++k) {
        keys.push_back(k);
        cl.router().Put(k, 16 * util::kKiB,
                        [&acked](bool ok) { acked += ok; });
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();
    EXPECT_EQ(acked, count);
    return keys;
}

/** Closed-loop read driver at width 4 (the test_client.cc idiom). */
void
DriveReads(sim::Simulator &sim, client::KvClient &client,
           const std::vector<uint64_t> &keys, int reads, uint64_t &served)
{
    int next = 0;
    std::function<void()> step = [&]() {
        if (next >= reads) return;
        client.Get(keys[next++ % keys.size()],
                   [&](const kv::GetResult &r) {
                       served += r.ok && r.found;
                       step();
                   });
    };
    for (int s = 0; s < 4; ++s) step();
    sim.Run();
}

// ---------------------------------------------------------------------------
// Trace-context propagation + hedge linkage
// ---------------------------------------------------------------------------

TEST(ClusterObs, HedgedReadEventsShareOneTraceIdAcrossTracks)
{
    obs::Hub hub;
    hub.EnableTrace();
    sim::Simulator sim;
    sim.set_hub(&hub);
    cluster::Cluster cl(sim, TinyCluster(2, 2));
    const auto keys = Preload(sim, cl, 40);

    client::KvClientConfig kc;
    kc.window_per_node = 4;
    kc.batch_max = 1;
    kc.hedge_reads = true;
    kc.hedge_min_samples = 16;
    client::KvClient client(sim, cl.router(), kc);

    // Warm the latency histogram while healthy, then degrade one node so
    // reads through it cross the hedge threshold.
    uint64_t served = 0;
    DriveReads(sim, client, keys, 64, served);
    cl.node(0).SetFailSlow(10.0);
    DriveReads(sim, client, keys, 200, served);
    EXPECT_EQ(served, 264u);
    EXPECT_GT(client.hedge_stats().wins, 0u);

    const obs::TraceSink &sink = *hub.trace();
    const auto thread_of = [&](const obs::TraceSink::Event &e) {
        return sink.track_info(e.track).thread;
    };

    // Find a hedged request that reached two servers, and check its whole
    // family: parent "get" + "hedge" on the client track, and "server.get"
    // handler events on two *different* node tracks — all carrying the
    // same trace id.
    bool found_linked_family = false;
    std::set<uint64_t> hedge_ids;
    for (const auto &e : sink.event_list()) {
        if (std::string(e.name) == "hedge") hedge_ids.insert(e.trace_id);
    }
    EXPECT_FALSE(hedge_ids.empty());
    for (const uint64_t id : hedge_ids) {
        ASSERT_NE(id, 0u);
        int client_get = 0, client_hedge = 0;
        std::set<std::string> server_tracks;
        for (const auto &e : sink.event_list()) {
            if (e.trace_id != id) continue;
            const std::string name = e.name;
            if (name == "get") {
                ++client_get;
                EXPECT_EQ(thread_of(e), "client");
            } else if (name == "hedge") {
                ++client_hedge;
                EXPECT_EQ(thread_of(e), "client");
            } else if (name == "server.get") {
                server_tracks.insert(thread_of(e));
            }
        }
        // Every hedged read has exactly one parent and one duplicate.
        EXPECT_EQ(client_get, 1);
        EXPECT_EQ(client_hedge, 1);
        if (server_tracks.size() >= 2) found_linked_family = true;
    }
    // At least one hedge raced the duplicate on a second node: its family
    // spans the client track and two node tracks under one trace id.
    EXPECT_TRUE(found_linked_family);
}

// ---------------------------------------------------------------------------
// Cluster critical-path tiling
// ---------------------------------------------------------------------------

TEST(ClusterObs, ClientPathStagesTileEndToEndExactly)
{
    obs::Hub hub;  // No trace: path attribution must not require tracing.
    sim::Simulator sim;
    sim.set_hub(&hub);
    cluster::Cluster cl(sim, TinyCluster(2, 2));
    const auto keys = Preload(sim, cl, 40);

    client::KvClientConfig kc;
    kc.window_per_node = 2;  // Force queueing: client_queue must be > 0.
    kc.batch_max = 4;        // And coalesced batches.
    client::KvClient client(sim, cl.router(), kc);

    uint64_t served = 0;
    DriveReads(sim, client, keys, 120, served);
    uint64_t put_acks = 0;
    for (uint64_t k : keys) {
        client.Put(k, 16 * util::kKiB, [&](kv::OpStatus s) {
            put_acks += s == kv::OpStatus::kOk;
        });
    }
    sim.Run();
    EXPECT_EQ(served, 120u);
    EXPECT_EQ(put_acks, keys.size());

    const auto &ops = hub.stages().ops();
    ASSERT_TRUE(ops.count("client.path.get"));
    ASSERT_TRUE(ops.count("client.path.put"));
    for (const auto &[op, st] : ops) {
        ASSERT_GT(st.count, 0u) << op;
        uint64_t stage_sum = 0;
        for (size_t s = 0; s < obs::kStageCount; ++s) {
            stage_sum += st.stage_sum_ns[s];
        }
        // The tiling invariant is exact by construction — integer
        // equality, not a tolerance — and it survives aggregation.
        EXPECT_EQ(stage_sum, st.total_sum_ns) << op;
    }
    const auto &get = ops.at("client.path.get");
    // The RPC hop always costs wire time, and a window of 2 under a
    // 4-wide closed loop must have produced client-queue waiting.
    EXPECT_GT(get.stage_sum_ns[static_cast<size_t>(obs::Stage::kRpcWire)],
              0u);
    EXPECT_GT(
        get.stage_sum_ns[static_cast<size_t>(obs::Stage::kClientQueue)],
        0u);
    // Server-side segments only exist because the context propagated.
    EXPECT_GT(get.stage_sum_ns[static_cast<size_t>(obs::Stage::kStorage)],
              0u);
}

// ---------------------------------------------------------------------------
// Windowed series + same-seed byte identity of every export
// ---------------------------------------------------------------------------

struct ClusterRunDocs
{
    std::string stats;
    std::string trace;
    std::string series;
    size_t windows = 0;
};

ClusterRunDocs
RunInstrumentedCluster(uint64_t seed)
{
    obs::Hub hub;
    hub.EnableTrace();
    obs::SeriesRecorder series;
    sim::Simulator sim;
    sim.set_hub(&hub);
    cluster::Cluster cl(sim, TinyCluster(2, 2));
    const auto keys = Preload(sim, cl, 40);

    client::KvClientConfig kc;
    kc.window_per_node = 4;
    kc.hedge_reads = true;
    kc.hedge_min_samples = 16;
    client::KvClient client(sim, cl.router(), kc);

    series.Start(sim, hub.metrics(), "load", util::MsToNs(1.0),
                 util::MsToNs(30.0));
    uint64_t served = 0;
    DriveReads(sim, client, keys, 64 + seed % 3, served);
    cl.node(0).SetFailSlow(8.0);
    DriveReads(sim, client, keys, 150, served);

    ClusterRunDocs docs;
    docs.stats = obs::StatsJson(hub, {{"seed", std::to_string(seed)}}, {});
    docs.trace = hub.trace()->ToJson();
    docs.series = series.ToJson();
    docs.windows = series.window_count();
    return docs;
}

TEST(ClusterObs, SameSeedRunsExportByteIdenticalDocuments)
{
    const ClusterRunDocs a = RunInstrumentedCluster(11);
    const ClusterRunDocs b = RunInstrumentedCluster(11);
    const ClusterRunDocs c = RunInstrumentedCluster(12);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.series, b.series);
    EXPECT_GT(a.windows, 0u);
    // And the seed actually matters (the documents are not constants).
    EXPECT_NE(a.stats, c.stats);
}

TEST(ClusterObs, SeriesWindowsAreContiguousAndLocalizeTheFault)
{
    obs::Hub hub;
    obs::SeriesRecorder series;
    sim::Simulator sim;
    sim.set_hub(&hub);
    cluster::Cluster cl(sim, TinyCluster(2, 2));
    const auto keys = Preload(sim, cl, 40);

    client::KvClientConfig kc;
    kc.window_per_node = 4;
    kc.hedge_reads = false;
    client::KvClient client(sim, cl.router(), kc);

    series.Start(sim, hub.metrics(), "load", util::MsToNs(1.0),
                 util::MsToNs(50.0));
    uint64_t served = 0;
    DriveReads(sim, client, keys, 200, served);

    ASSERT_EQ(series.segments().size(), 1u);
    const auto &seg = series.segments().front();
    ASSERT_GT(seg.windows.size(), 1u);
    uint64_t gets_in_windows = 0;
    for (size_t i = 0; i < seg.windows.size(); ++i) {
        const auto &w = seg.windows[i];
        EXPECT_LT(w.start_ns, w.end_ns);
        if (i > 0) {
            EXPECT_EQ(w.start_ns, seg.windows[i - 1].end_ns);
        }
        auto it = w.counters.find("client.gets");
        if (it != w.counters.end()) gets_in_windows += it->second;
    }
    // Counter deltas across windows reassemble the cumulative total that
    // was issued inside the series horizon.
    EXPECT_GT(gets_in_windows, 0u);
    EXPECT_LE(gets_in_windows, client.stats().gets);
    // Windowed histograms carry per-window latency percentiles.
    bool saw_latency_window = false;
    for (const auto &w : seg.windows) {
        auto h = w.histograms.find("client.read_latency_ns");
        if (h != w.histograms.end() && h->second.count > 0 &&
            h->second.p99 > 0) {
            saw_latency_window = true;
        }
    }
    EXPECT_TRUE(saw_latency_window);
}

}  // namespace
}  // namespace sdf
