/**
 * @file
 * Unit tests for the controller substrate: host links and interrupt
 * coalescing.
 */
#include <gtest/gtest.h>

#include "controller/interrupts.h"
#include "controller/link.h"
#include "sim/simulator.h"

namespace sdf::controller {
namespace {

TEST(Link, PcieSpecsMatchPaper)
{
    const LinkSpec s = Pcie11x8Spec();
    EXPECT_NEAR(s.to_host_bytes_per_sec / 1e9, 1.61, 0.01);
    EXPECT_NEAR(s.to_device_bytes_per_sec / 1e9, 1.40, 0.01);
    EXPECT_TRUE(s.full_duplex);
    EXPECT_FALSE(Sata2Spec().full_duplex);
}

TEST(Link, TransferTimeMatchesBandwidth)
{
    sim::Simulator sim;
    Link link(sim, Pcie11x8Spec());
    util::TimeNs done_at = 0;
    link.TransferToHost(0, static_cast<uint64_t>(1.61e9),
                        [&]() { done_at = sim.Now(); });
    sim.Run();
    // ~1 second plus DMA setup.
    EXPECT_NEAR(util::NsToSec(done_at), 1.0, 0.001);
    EXPECT_EQ(link.to_host_bytes(), static_cast<uint64_t>(1.61e9));
}

TEST(Link, FullDuplexDirectionsIndependent)
{
    sim::Simulator sim;
    LinkSpec spec = Pcie11x8Spec();
    spec.dma_setup = 0;
    Link link(sim, spec);
    util::TimeNs read_done = 0, write_done = 0;
    link.TransferToHost(0, static_cast<uint64_t>(1.61e9),
                        [&]() { read_done = sim.Now(); });
    link.TransferToDevice(0, static_cast<uint64_t>(1.40e9),
                          [&]() { write_done = sim.Now(); });
    sim.Run();
    EXPECT_NEAR(util::NsToSec(read_done), 1.0, 0.01);
    EXPECT_NEAR(util::NsToSec(write_done), 1.0, 0.01);
}

TEST(Link, HalfDuplexSerializesDirections)
{
    sim::Simulator sim;
    LinkSpec spec = Sata2Spec();
    spec.dma_setup = 0;
    Link link(sim, spec);
    const auto bytes = static_cast<uint64_t>(275e6);  // 1 s each way.
    util::TimeNs read_done = 0, write_done = 0;
    link.TransferToHost(0, bytes, [&]() { read_done = sim.Now(); });
    link.TransferToDevice(0, bytes, [&]() { write_done = sim.Now(); });
    sim.Run();
    EXPECT_NEAR(util::NsToSec(read_done), 1.0, 0.01);
    EXPECT_NEAR(util::NsToSec(write_done), 2.0, 0.01);
}

TEST(Link, EarliestConstraintRespected)
{
    sim::Simulator sim;
    LinkSpec spec = Pcie11x8Spec();
    spec.dma_setup = 0;
    Link link(sim, spec);
    util::TimeNs done_at = 0;
    link.TransferToHost(util::MsToNs(100), 1610,
                        [&]() { done_at = sim.Now(); });
    sim.Run();
    EXPECT_GE(done_at, util::MsToNs(100));
}

TEST(Interrupts, NoCoalescingDeliversImmediately)
{
    sim::Simulator sim;
    InterruptConfig cfg;
    cfg.coalesce = false;
    InterruptCoalescer irq(sim, cfg, 44);
    int delivered = 0;
    for (int i = 0; i < 10; ++i) irq.OnCompletion(0, [&]() { ++delivered; });
    EXPECT_EQ(delivered, 10);
    EXPECT_EQ(irq.interrupts(), 10u);
    EXPECT_DOUBLE_EQ(irq.MergeFactor(), 1.0);
}

TEST(Interrupts, MergesByCount)
{
    sim::Simulator sim;
    InterruptConfig cfg;
    cfg.merge_count = 4;
    InterruptCoalescer irq(sim, cfg, 44);
    int delivered = 0;
    for (int i = 0; i < 4; ++i) {
        irq.OnCompletion(0, [&]() { ++delivered; });
    }
    // Count threshold reached at level 1; the global stage flushes on its
    // own (shorter) window.
    sim.Run();
    EXPECT_EQ(delivered, 4);
    EXPECT_EQ(irq.interrupts(), 1u);
    EXPECT_DOUBLE_EQ(irq.MergeFactor(), 4.0);
    EXPECT_LE(sim.Now(), util::UsToNs(15));
}

TEST(Interrupts, TimerFlushesPartialBatch)
{
    sim::Simulator sim;
    InterruptConfig cfg;
    cfg.merge_count = 100;
    cfg.merge_window = util::UsToNs(50);
    InterruptCoalescer irq(sim, cfg, 44);
    int delivered = 0;
    irq.OnCompletion(0, [&]() { ++delivered; });
    EXPECT_EQ(delivered, 0);  // Held for the window.
    sim.Run();
    EXPECT_EQ(delivered, 1);
    EXPECT_GE(sim.Now(), util::UsToNs(50));
}

TEST(Interrupts, GroupsAreIndependent)
{
    sim::Simulator sim;
    InterruptConfig cfg;
    cfg.channels_per_group = 11;
    cfg.merge_count = 2;
    InterruptCoalescer irq(sim, cfg, 44);
    int delivered = 0;
    // One completion in each of the four Spartan-6 groups: none fires by
    // count; all flush on their timers.
    irq.OnCompletion(0, [&]() { ++delivered; });
    irq.OnCompletion(11, [&]() { ++delivered; });
    irq.OnCompletion(22, [&]() { ++delivered; });
    irq.OnCompletion(33, [&]() { ++delivered; });
    EXPECT_EQ(delivered, 0);
    sim.Run();
    EXPECT_EQ(delivered, 4);
    // Four level-1 batches merged further by the global (Virtex-5) stage.
    EXPECT_LE(irq.interrupts(), 4u);
    EXPECT_GE(irq.interrupts(), 1u);
}

TEST(Interrupts, MergeFactorInPaperRange)
{
    // §2.1: with merging, the interrupt rate is 1/5 to 1/4 of max IOPS.
    sim::Simulator sim;
    InterruptConfig cfg;
    cfg.merge_count = 4;
    cfg.merge_window = util::UsToNs(50);
    InterruptCoalescer irq(sim, cfg, 44);
    int delivered = 0;
    // A steady stream on each channel of one group.
    for (int burst = 0; burst < 100; ++burst) {
        for (uint32_t ch = 0; ch < 11; ++ch) {
            irq.OnCompletion(ch, [&]() { ++delivered; });
        }
    }
    sim.Run();
    EXPECT_EQ(delivered, 1100);
    // Two merge levels compound: >= the paper's 4-5x at saturation.
    EXPECT_GE(irq.MergeFactor(), 3.5);
    EXPECT_LE(irq.MergeFactor(), 16.0);
    EXPECT_GT(irq.cpu_time(), 0);
}

}  // namespace
}  // namespace sdf::controller
