/**
 * @file
 * Tests for the paper's future-work extensions implemented here: KV
 * deletion (tombstones), the load-balance-aware block-layer scheduler,
 * the in-storage scan offload, and the exposed wear/reliability report.
 */
#include <gtest/gtest.h>

#include <memory>

#include "blocklayer/block_layer.h"
#include "kv/patch_storage.h"
#include "kv/slice.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"

namespace sdf {
namespace {

core::SdfConfig
TinyConfig()
{
    core::SdfConfig c;
    c.flash.geometry = nand::TinyTestGeometry();
    c.flash.timing = nand::FastTestTiming();
    c.link = controller::UnlimitedLinkSpec();
    c.spare_blocks_per_plane = 2;
    c.irq.coalesce = false;
    return c;
}

// ---------------------------------------------------------------------------
// KV tombstones
// ---------------------------------------------------------------------------

struct SliceFixture
{
    sim::Simulator sim;
    core::SdfDevice device;
    blocklayer::BlockLayer layer;
    kv::SdfPatchStorage storage;
    kv::IdAllocator ids;
    kv::Slice slice;

    explicit SliceFixture(kv::SliceConfig cfg = {})
        : device(sim, MakeCfg()), layer(sim, device, {}), storage(layer),
          slice(sim, storage, ids, cfg)
    {
    }

    static core::SdfConfig
    MakeCfg()
    {
        core::SdfConfig c = core::BaiduSdfConfig(0.02);
        c.flash.timing = nand::FastTestTiming();
        return c;
    }

    kv::GetResult
    Get(uint64_t key)
    {
        kv::GetResult result;
        slice.Get(key, [&](const kv::GetResult &r) { result = r; });
        sim.Run();
        return result;
    }
};

TEST(Tombstones, DeleteHidesMemtableValue)
{
    SliceFixture f;
    f.slice.Put(1, 1000, nullptr);
    f.slice.Delete(1, nullptr);
    f.sim.Run();
    EXPECT_FALSE(f.Get(1).found);
    EXPECT_EQ(f.slice.stats().deletes, 1u);
}

TEST(Tombstones, DeleteShadowsFlushedValue)
{
    SliceFixture f;
    f.slice.Put(7, 100 * 1024, nullptr);
    f.slice.Flush();
    f.sim.Run();
    EXPECT_TRUE(f.Get(7).found);

    f.slice.Delete(7, nullptr);
    f.sim.Run();
    EXPECT_FALSE(f.Get(7).found);

    // Still deleted after the tombstone itself flushes.
    f.slice.Flush();
    f.sim.Run();
    EXPECT_FALSE(f.Get(7).found);
}

TEST(Tombstones, ReinsertAfterDeleteResurrects)
{
    SliceFixture f;
    f.slice.Put(3, 2048, nullptr);
    f.slice.Flush();
    f.sim.Run();
    f.slice.Delete(3, nullptr);
    f.slice.Flush();
    f.sim.Run();
    f.slice.Put(3, 4096, nullptr);
    f.sim.Run();
    const auto r = f.Get(3);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value_size, 4096u);
}

TEST(Tombstones, BottomLevelCompactionDropsMarkers)
{
    kv::SliceConfig cfg;
    cfg.compaction_trigger = 2;
    cfg.max_levels = 2;  // L0 compacts straight into the bottom level.
    SliceFixture f(cfg);

    for (uint64_t k = 0; k < 8; ++k) f.slice.Put(k, 100 * 1024, nullptr);
    f.slice.Flush();
    f.sim.Run();
    for (uint64_t k = 0; k < 4; ++k) f.slice.Delete(k, nullptr);
    f.slice.Flush();
    f.sim.Run();

    EXPECT_GE(f.slice.stats().compactions, 1u);
    EXPECT_GT(f.slice.stats().tombstones_dropped, 0u);
    for (uint64_t k = 0; k < 4; ++k) EXPECT_FALSE(f.Get(k).found);
    for (uint64_t k = 4; k < 8; ++k) EXPECT_TRUE(f.Get(k).found);
    // The index holds only the live keys.
    EXPECT_EQ(f.slice.total_indexed_keys(), 4u);
}

TEST(Tombstones, MemtableChargesForMarkers)
{
    kv::MemTable mt(1000);
    kv::KvItem tomb{1, 0, nullptr, true};
    EXPECT_EQ(tomb.StorageCharge(), 64u);
    mt.Add(tomb);
    EXPECT_EQ(mt.bytes(), 64u);
}

// ---------------------------------------------------------------------------
// Load-balance-aware placement (block layer)
// ---------------------------------------------------------------------------

TEST(LoadBalance, SkewedIdsSpreadOverChannels)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, TinyConfig());
    blocklayer::BlockLayerConfig cfg;
    cfg.placement_policy = blocklayer::PlacementPolicy::kLeastLoaded;
    blocklayer::BlockLayer layer(sim, device, cfg);

    // Pathological skew: every ID hashes to channel 0.
    const uint32_t channels = device.channel_count();
    const int blocks = 3 * static_cast<int>(channels);
    int ok_count = 0;
    for (int i = 0; i < blocks; ++i) {
        layer.Put(uint64_t{static_cast<uint32_t>(i)} * channels,
                  [&](bool ok) { ok_count += ok; });
    }
    sim.Run();
    EXPECT_EQ(ok_count, blocks);

    // With least-loaded placement the writes spread evenly.
    for (uint32_t c = 0; c < channels; ++c) {
        EXPECT_EQ(device.flash().channel(c).stats().programs,
                  device.flash().channel(0).stats().programs);
    }
}

TEST(LoadBalance, IdHashConcentratesTheSameSkew)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, TinyConfig());
    blocklayer::BlockLayer layer(sim, device, {});  // Default: kIdHash.
    const uint32_t channels = device.channel_count();
    for (int i = 0; i < 6; ++i) {
        layer.Put(uint64_t{static_cast<uint32_t>(i)} * channels, nullptr);
    }
    sim.Run();
    EXPECT_GT(device.flash().channel(0).stats().programs, 0u);
    for (uint32_t c = 1; c < channels; ++c) {
        EXPECT_EQ(device.flash().channel(c).stats().programs, 0u);
    }
}

TEST(LoadBalance, GetsStillFindRelocatedBlocks)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, TinyConfig());
    blocklayer::BlockLayerConfig cfg;
    cfg.placement_policy = blocklayer::PlacementPolicy::kLeastLoaded;
    blocklayer::BlockLayer layer(sim, device, cfg);
    const uint32_t channels = device.channel_count();
    for (int i = 0; i < 8; ++i) {
        layer.Put(uint64_t{static_cast<uint32_t>(i)} * channels, nullptr);
    }
    sim.Run();
    int found = 0;
    for (int i = 0; i < 8; ++i) {
        layer.Get(uint64_t{static_cast<uint32_t>(i)} * channels, 0, 8192,
                  [&](bool ok) { found += ok; });
    }
    sim.Run();
    EXPECT_EQ(found, 8);
}

// ---------------------------------------------------------------------------
// In-storage scan
// ---------------------------------------------------------------------------

TEST(InStorageScan, ReturnsMatchedFraction)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, TinyConfig());
    device.DebugForceWritten(0, 0);
    uint64_t matched = 0;
    bool ok = false;
    device.ScanUnit(0, 0, 0.25, [&](bool s, uint64_t m) {
        ok = s;
        matched = m;
    });
    sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(matched, device.unit_bytes() / 4);
    // The whole unit was read off the flash...
    EXPECT_EQ(device.stats().page_reads,
              device.unit_bytes() / device.read_unit_bytes());
    // ...but only the matches crossed the link (accounted as read bytes).
    EXPECT_EQ(device.stats().read_bytes, device.unit_bytes() / 4);
}

TEST(InStorageScan, RejectsBadSelectivity)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, TinyConfig());
    bool ok = true;
    device.ScanUnit(0, 0, 1.5, [&](bool s, uint64_t) { ok = s; });
    sim.Run();
    EXPECT_FALSE(ok);
}

TEST(InStorageScan, LowSelectivityScanBeatsFullReadOnSlowLink)
{
    // With a constrained link, scanning in storage avoids moving the
    // non-matching bytes — the §5 "move compute to storage" payoff.
    core::SdfConfig cfg = TinyConfig();
    cfg.link.to_host_bytes_per_sec = 50e6;  // Deliberately slow.
    cfg.link.name = "slow-link";

    sim::Simulator sim;
    core::SdfDevice device(sim, cfg);
    device.DebugForceWritten(0, 0);
    device.DebugForceWritten(0, 1);

    util::TimeNs scan_done = 0, read_done = 0;
    device.ScanUnit(0, 0, 0.01,
                    [&](bool, uint64_t) { scan_done = sim.Now(); });
    sim.Run();
    const util::TimeNs t0 = sim.Now();
    device.Read(0, 1, 0, device.unit_bytes(),
                [&](bool) { read_done = sim.Now() - t0; });
    sim.Run();
    EXPECT_LT(scan_done, read_done / 2);
}

// ---------------------------------------------------------------------------
// Wear report
// ---------------------------------------------------------------------------

TEST(WearReport, TracksEraseCountsAndLife)
{
    sim::Simulator sim;
    core::SdfConfig cfg = TinyConfig();
    cfg.flash.errors.endurance_cycles = 100;
    core::SdfDevice device(sim, cfg);

    const auto fresh = device.GetWearReport();
    EXPECT_EQ(fresh.max_erase_count, 0u);
    EXPECT_DOUBLE_EQ(fresh.life_used, 0.0);
    EXPECT_EQ(fresh.rated_endurance, 100u);

    for (int i = 0; i < 20; ++i) {
        device.EraseUnit(0, 0, nullptr);
        sim.Run();
        device.WriteUnit(0, 0, nullptr);
        sim.Run();
    }
    const auto worn = device.GetWearReport();
    EXPECT_GT(worn.max_erase_count, 0u);
    EXPECT_GT(worn.mean_erase_count, 0.0);
    EXPECT_GT(worn.life_used, 0.0);
    EXPECT_LT(worn.life_used, 1.0);
    EXPECT_EQ(worn.dead_units, 0u);
}

}  // namespace
}  // namespace sdf
